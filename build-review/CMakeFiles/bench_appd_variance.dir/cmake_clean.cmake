file(REMOVE_RECURSE
  "CMakeFiles/bench_appd_variance.dir/bench/bench_appd_variance.cc.o"
  "CMakeFiles/bench_appd_variance.dir/bench/bench_appd_variance.cc.o.d"
  "bench_appd_variance"
  "bench_appd_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appd_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
