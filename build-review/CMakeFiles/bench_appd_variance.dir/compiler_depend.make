# Empty compiler generated dependencies file for bench_appd_variance.
# This may be replaced when dependencies are built.
