# Empty dependencies file for bench_table7_featsel.
# This may be replaced when dependencies are built.
