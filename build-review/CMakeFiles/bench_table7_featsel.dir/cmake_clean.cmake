file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_featsel.dir/bench/bench_table7_featsel.cc.o"
  "CMakeFiles/bench_table7_featsel.dir/bench/bench_table7_featsel.cc.o.d"
  "bench_table7_featsel"
  "bench_table7_featsel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_featsel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
