# Empty compiler generated dependencies file for ps3_cli.
# This may be replaced when dependencies are built.
