file(REMOVE_RECURSE
  "CMakeFiles/ps3_cli.dir/examples/ps3_cli.cpp.o"
  "CMakeFiles/ps3_cli.dir/examples/ps3_cli.cpp.o.d"
  "ps3_cli"
  "ps3_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps3_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
