file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_clustering.dir/bench/bench_table6_clustering.cc.o"
  "CMakeFiles/bench_table6_clustering.dir/bench/bench_table6_clustering.cc.o.d"
  "bench_table6_clustering"
  "bench_table6_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
