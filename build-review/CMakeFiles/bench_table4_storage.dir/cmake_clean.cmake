file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_storage.dir/bench/bench_table4_storage.cc.o"
  "CMakeFiles/bench_table4_storage.dir/bench/bench_table4_storage.cc.o.d"
  "bench_table4_storage"
  "bench_table4_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
