# Empty dependencies file for bench_table4_storage.
# This may be replaced when dependencies are built.
