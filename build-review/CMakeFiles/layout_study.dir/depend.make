# Empty dependencies file for layout_study.
# This may be replaced when dependencies are built.
