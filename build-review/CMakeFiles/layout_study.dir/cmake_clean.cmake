file(REMOVE_RECURSE
  "CMakeFiles/layout_study.dir/examples/layout_study.cpp.o"
  "CMakeFiles/layout_study.dir/examples/layout_study.cpp.o.d"
  "layout_study"
  "layout_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
