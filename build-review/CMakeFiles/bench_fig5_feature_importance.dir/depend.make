# Empty dependencies file for bench_fig5_feature_importance.
# This may be replaced when dependencies are built.
