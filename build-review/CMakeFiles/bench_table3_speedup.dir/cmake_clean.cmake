file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_speedup.dir/bench/bench_table3_speedup.cc.o"
  "CMakeFiles/bench_table3_speedup.dir/bench/bench_table3_speedup.cc.o.d"
  "bench_table3_speedup"
  "bench_table3_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
