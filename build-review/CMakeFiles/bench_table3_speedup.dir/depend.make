# Empty dependencies file for bench_table3_speedup.
# This may be replaced when dependencies are built.
