# Empty compiler generated dependencies file for bench_ablation_sketches.
# This may be replaced when dependencies are built.
