file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sketches.dir/bench/bench_ablation_sketches.cc.o"
  "CMakeFiles/bench_ablation_sketches.dir/bench/bench_ablation_sketches.cc.o.d"
  "bench_ablation_sketches"
  "bench_ablation_sketches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sketches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
