# Empty compiler generated dependencies file for service_log_dashboard.
# This may be replaced when dependencies are built.
