file(REMOVE_RECURSE
  "CMakeFiles/service_log_dashboard.dir/examples/service_log_dashboard.cpp.o"
  "CMakeFiles/service_log_dashboard.dir/examples/service_log_dashboard.cpp.o.d"
  "service_log_dashboard"
  "service_log_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_log_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
