file(REMOVE_RECURSE
  "libps3_lib.a"
)
