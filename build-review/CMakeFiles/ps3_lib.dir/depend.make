# Empty dependencies file for ps3_lib.
# This may be replaced when dependencies are built.
