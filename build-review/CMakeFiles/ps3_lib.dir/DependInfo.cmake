
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerative.cc" "CMakeFiles/ps3_lib.dir/src/cluster/agglomerative.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/cluster/agglomerative.cc.o.d"
  "/root/repo/src/cluster/exemplar.cc" "CMakeFiles/ps3_lib.dir/src/cluster/exemplar.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/cluster/exemplar.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "CMakeFiles/ps3_lib.dir/src/cluster/kmeans.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/cluster/kmeans.cc.o.d"
  "/root/repo/src/common/hash.cc" "CMakeFiles/ps3_lib.dir/src/common/hash.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/common/hash.cc.o.d"
  "/root/repo/src/common/math_util.cc" "CMakeFiles/ps3_lib.dir/src/common/math_util.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/common/math_util.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/ps3_lib.dir/src/common/random.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/serialize.cc" "CMakeFiles/ps3_lib.dir/src/common/serialize.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/common/serialize.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/ps3_lib.dir/src/common/status.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/ps3_lib.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/core/cluster_select.cc" "CMakeFiles/ps3_lib.dir/src/core/cluster_select.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/cluster_select.cc.o.d"
  "/root/repo/src/core/feature_selection.cc" "CMakeFiles/ps3_lib.dir/src/core/feature_selection.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/feature_selection.cc.o.d"
  "/root/repo/src/core/labels.cc" "CMakeFiles/ps3_lib.dir/src/core/labels.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/labels.cc.o.d"
  "/root/repo/src/core/lss_picker.cc" "CMakeFiles/ps3_lib.dir/src/core/lss_picker.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/lss_picker.cc.o.d"
  "/root/repo/src/core/model_io.cc" "CMakeFiles/ps3_lib.dir/src/core/model_io.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/model_io.cc.o.d"
  "/root/repo/src/core/ps3_picker.cc" "CMakeFiles/ps3_lib.dir/src/core/ps3_picker.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/ps3_picker.cc.o.d"
  "/root/repo/src/core/ps3_trainer.cc" "CMakeFiles/ps3_lib.dir/src/core/ps3_trainer.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/ps3_trainer.cc.o.d"
  "/root/repo/src/core/random_picker.cc" "CMakeFiles/ps3_lib.dir/src/core/random_picker.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/random_picker.cc.o.d"
  "/root/repo/src/core/training_data.cc" "CMakeFiles/ps3_lib.dir/src/core/training_data.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/core/training_data.cc.o.d"
  "/root/repo/src/eval/cost_model.cc" "CMakeFiles/ps3_lib.dir/src/eval/cost_model.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/eval/cost_model.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "CMakeFiles/ps3_lib.dir/src/eval/experiment.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/eval/experiment.cc.o.d"
  "/root/repo/src/eval/report.cc" "CMakeFiles/ps3_lib.dir/src/eval/report.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/eval/report.cc.o.d"
  "/root/repo/src/featurize/feature_schema.cc" "CMakeFiles/ps3_lib.dir/src/featurize/feature_schema.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/featurize/feature_schema.cc.o.d"
  "/root/repo/src/featurize/featurizer.cc" "CMakeFiles/ps3_lib.dir/src/featurize/featurizer.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/featurize/featurizer.cc.o.d"
  "/root/repo/src/featurize/normalizer.cc" "CMakeFiles/ps3_lib.dir/src/featurize/normalizer.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/featurize/normalizer.cc.o.d"
  "/root/repo/src/featurize/selectivity.cc" "CMakeFiles/ps3_lib.dir/src/featurize/selectivity.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/featurize/selectivity.cc.o.d"
  "/root/repo/src/io/partition_cache.cc" "CMakeFiles/ps3_lib.dir/src/io/partition_cache.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/io/partition_cache.cc.o.d"
  "/root/repo/src/io/partition_file.cc" "CMakeFiles/ps3_lib.dir/src/io/partition_file.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/io/partition_file.cc.o.d"
  "/root/repo/src/io/partition_store.cc" "CMakeFiles/ps3_lib.dir/src/io/partition_store.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/io/partition_store.cc.o.d"
  "/root/repo/src/io/prefetch_pipeline.cc" "CMakeFiles/ps3_lib.dir/src/io/prefetch_pipeline.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/io/prefetch_pipeline.cc.o.d"
  "/root/repo/src/ml/binned.cc" "CMakeFiles/ps3_lib.dir/src/ml/binned.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/ml/binned.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "CMakeFiles/ps3_lib.dir/src/ml/gbdt.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/ml/gbdt.cc.o.d"
  "/root/repo/src/ml/tree.cc" "CMakeFiles/ps3_lib.dir/src/ml/tree.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/ml/tree.cc.o.d"
  "/root/repo/src/query/bitmap_evaluator.cc" "CMakeFiles/ps3_lib.dir/src/query/bitmap_evaluator.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/bitmap_evaluator.cc.o.d"
  "/root/repo/src/query/compiler.cc" "CMakeFiles/ps3_lib.dir/src/query/compiler.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/compiler.cc.o.d"
  "/root/repo/src/query/evaluator.cc" "CMakeFiles/ps3_lib.dir/src/query/evaluator.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/evaluator.cc.o.d"
  "/root/repo/src/query/expr.cc" "CMakeFiles/ps3_lib.dir/src/query/expr.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/expr.cc.o.d"
  "/root/repo/src/query/metrics.cc" "CMakeFiles/ps3_lib.dir/src/query/metrics.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/metrics.cc.o.d"
  "/root/repo/src/query/predicate.cc" "CMakeFiles/ps3_lib.dir/src/query/predicate.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "CMakeFiles/ps3_lib.dir/src/query/query.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/query/query.cc.o.d"
  "/root/repo/src/runtime/query_scheduler.cc" "CMakeFiles/ps3_lib.dir/src/runtime/query_scheduler.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/runtime/query_scheduler.cc.o.d"
  "/root/repo/src/runtime/simd.cc" "CMakeFiles/ps3_lib.dir/src/runtime/simd.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/runtime/simd.cc.o.d"
  "/root/repo/src/runtime/worker_pool.cc" "CMakeFiles/ps3_lib.dir/src/runtime/worker_pool.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/runtime/worker_pool.cc.o.d"
  "/root/repo/src/sketch/akmv.cc" "CMakeFiles/ps3_lib.dir/src/sketch/akmv.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/sketch/akmv.cc.o.d"
  "/root/repo/src/sketch/exact_freq.cc" "CMakeFiles/ps3_lib.dir/src/sketch/exact_freq.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/sketch/exact_freq.cc.o.d"
  "/root/repo/src/sketch/heavy_hitter.cc" "CMakeFiles/ps3_lib.dir/src/sketch/heavy_hitter.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/sketch/heavy_hitter.cc.o.d"
  "/root/repo/src/sketch/histogram.cc" "CMakeFiles/ps3_lib.dir/src/sketch/histogram.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/sketch/histogram.cc.o.d"
  "/root/repo/src/sketch/measures.cc" "CMakeFiles/ps3_lib.dir/src/sketch/measures.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/sketch/measures.cc.o.d"
  "/root/repo/src/stats/stats_builder.cc" "CMakeFiles/ps3_lib.dir/src/stats/stats_builder.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/stats/stats_builder.cc.o.d"
  "/root/repo/src/stats/table_stats.cc" "CMakeFiles/ps3_lib.dir/src/stats/table_stats.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/stats/table_stats.cc.o.d"
  "/root/repo/src/storage/column.cc" "CMakeFiles/ps3_lib.dir/src/storage/column.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/storage/column.cc.o.d"
  "/root/repo/src/storage/partition.cc" "CMakeFiles/ps3_lib.dir/src/storage/partition.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/storage/partition.cc.o.d"
  "/root/repo/src/storage/schema.cc" "CMakeFiles/ps3_lib.dir/src/storage/schema.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/storage/schema.cc.o.d"
  "/root/repo/src/storage/sharded_table.cc" "CMakeFiles/ps3_lib.dir/src/storage/sharded_table.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/storage/sharded_table.cc.o.d"
  "/root/repo/src/storage/table.cc" "CMakeFiles/ps3_lib.dir/src/storage/table.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/storage/table.cc.o.d"
  "/root/repo/src/workload/datasets_aria.cc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_aria.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_aria.cc.o.d"
  "/root/repo/src/workload/datasets_kdd.cc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_kdd.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_kdd.cc.o.d"
  "/root/repo/src/workload/datasets_tpcds.cc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_tpcds.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_tpcds.cc.o.d"
  "/root/repo/src/workload/datasets_tpch.cc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_tpch.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/workload/datasets_tpch.cc.o.d"
  "/root/repo/src/workload/generator.cc" "CMakeFiles/ps3_lib.dir/src/workload/generator.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/workload/generator.cc.o.d"
  "/root/repo/src/workload/tpch_queries.cc" "CMakeFiles/ps3_lib.dir/src/workload/tpch_queries.cc.o" "gcc" "CMakeFiles/ps3_lib.dir/src/workload/tpch_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
