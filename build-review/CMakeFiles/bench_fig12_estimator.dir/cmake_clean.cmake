file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_estimator.dir/bench/bench_fig12_estimator.cc.o"
  "CMakeFiles/bench_fig12_estimator.dir/bench/bench_fig12_estimator.cc.o.d"
  "bench_fig12_estimator"
  "bench_fig12_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
