# Empty compiler generated dependencies file for bench_fig4_lesion.
# This may be replaced when dependencies are built.
