file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lesion.dir/bench/bench_fig4_lesion.cc.o"
  "CMakeFiles/bench_fig4_lesion.dir/bench/bench_fig4_lesion.cc.o.d"
  "bench_fig4_lesion"
  "bench_fig4_lesion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lesion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
