file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_layouts.dir/bench/bench_fig6_layouts.cc.o"
  "CMakeFiles/bench_fig6_layouts.dir/bench/bench_fig6_layouts.cc.o.d"
  "bench_fig6_layouts"
  "bench_fig6_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
