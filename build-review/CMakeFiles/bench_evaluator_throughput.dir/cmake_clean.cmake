file(REMOVE_RECURSE
  "CMakeFiles/bench_evaluator_throughput.dir/bench/bench_evaluator_throughput.cc.o"
  "CMakeFiles/bench_evaluator_throughput.dir/bench/bench_evaluator_throughput.cc.o.d"
  "bench_evaluator_throughput"
  "bench_evaluator_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evaluator_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
