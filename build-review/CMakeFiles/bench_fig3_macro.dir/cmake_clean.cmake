file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_macro.dir/bench/bench_fig3_macro.cc.o"
  "CMakeFiles/bench_fig3_macro.dir/bench/bench_fig3_macro.cc.o.d"
  "bench_fig3_macro"
  "bench_fig3_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
