# Empty dependencies file for bench_fig3_macro.
# This may be replaced when dependencies are built.
