file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_generalization.dir/bench/bench_fig9_generalization.cc.o"
  "CMakeFiles/bench_fig9_generalization.dir/bench/bench_fig9_generalization.cc.o.d"
  "bench_fig9_generalization"
  "bench_fig9_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
