# Empty dependencies file for bench_fig9_generalization.
# This may be replaced when dependencies are built.
