file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_partition_count.dir/bench/bench_fig8_partition_count.cc.o"
  "CMakeFiles/bench_fig8_partition_count.dir/bench/bench_fig8_partition_count.cc.o.d"
  "bench_fig8_partition_count"
  "bench_fig8_partition_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_partition_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
