# Empty compiler generated dependencies file for bench_fig8_partition_count.
# This may be replaced when dependencies are built.
