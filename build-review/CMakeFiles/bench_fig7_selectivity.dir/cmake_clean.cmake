file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_selectivity.dir/bench/bench_fig7_selectivity.cc.o"
  "CMakeFiles/bench_fig7_selectivity.dir/bench/bench_fig7_selectivity.cc.o.d"
  "bench_fig7_selectivity"
  "bench_fig7_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
