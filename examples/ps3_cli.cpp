// ps3_cli — command-line driver for the full PS3 lifecycle.
//
// Subcommands:
//   train  --dataset <tpch|tpcds|aria|kdd> --model <path>
//          [--rows N] [--partitions N] [--train-queries N] [--seed N]
//       Generates the dataset, builds statistics, trains a picker and
//       saves the model file.
//   eval   --dataset <name> --model <path> [--budget FRAC] [--queries N]
//       Reloads the model and reports accuracy of PS3 vs uniform sampling
//       on freshly sampled queries.
//
// The dataset is regenerated deterministically from the seed, standing in
// for "the table already in the cluster"; only the *model* crosses the
// process boundary, as in a real deployment.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/model_io.h"
#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "core/random_picker.h"
#include "eval/experiment.h"
#include "eval/report.h"

using namespace ps3;

namespace {

struct Args {
  std::string command;
  std::string dataset = "aria";
  std::string model_path = "ps3_model.bin";
  size_t rows = 50000;
  size_t partitions = 250;
  size_t train_queries = 48;
  size_t eval_queries = 16;
  double budget = 0.05;
  uint64_t seed = 7;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  ps3_cli train --dataset <tpch|tpcds|aria|kdd> --model <path>\n"
      "                [--rows N] [--partitions N] [--train-queries N]\n"
      "                [--seed N]\n"
      "  ps3_cli eval  --dataset <name> --model <path> [--budget FRAC]\n"
      "                [--queries N] [--seed N]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 2) return false;
  out->command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--dataset") {
      out->dataset = value;
    } else if (flag == "--model") {
      out->model_path = value;
    } else if (flag == "--rows") {
      out->rows = std::strtoull(value, nullptr, 10);
    } else if (flag == "--partitions") {
      out->partitions = std::strtoull(value, nullptr, 10);
    } else if (flag == "--train-queries") {
      out->train_queries = std::strtoull(value, nullptr, 10);
    } else if (flag == "--queries") {
      out->eval_queries = std::strtoull(value, nullptr, 10);
    } else if (flag == "--budget") {
      out->budget = std::strtod(value, nullptr);
    } else if (flag == "--seed") {
      out->seed = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return out->command == "train" || out->command == "eval";
}

eval::ExperimentConfig MakeConfig(const Args& args) {
  eval::ExperimentConfig cfg;
  cfg.dataset = args.dataset;
  cfg.rows = args.rows;
  cfg.partitions = args.partitions;
  cfg.train_queries = args.train_queries;
  cfg.test_queries = args.eval_queries;
  cfg.seed = args.seed;
  cfg.ps3.feature_selection.restarts = 1;
  cfg.ps3.feature_selection.eval_queries = 4;
  cfg.lss.eval_queries = 4;
  return cfg;
}

int RunTrain(const Args& args) {
  std::printf("building %s (%zu rows, %zu partitions) ...\n",
              args.dataset.c_str(), args.rows, args.partitions);
  eval::Experiment exp(MakeConfig(args));
  std::printf("statistics: %.1f KB/partition; training on %zu queries "
              "...\n",
              exp.stats().ComputeStorageReport().total_kb,
              exp.training_data().num_queries());
  exp.TrainModels();
  Status s = core::SaveModel(exp.ps3_model(), args.model_path);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s (%zu regressors, alpha=%.1f)\n",
              args.model_path.c_str(), exp.ps3_model().regressors.size(),
              exp.ps3_model().options.alpha);
  return 0;
}

int RunEval(const Args& args) {
  auto loaded = core::LoadModel(args.model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  auto cfg = MakeConfig(args);
  cfg.train_queries = 1;  // only the held-out evaluation set is needed
  eval::Experiment exp(cfg);

  auto ps3 = exp.MakePs3With(&*loaded);
  auto random = exp.MakeRandomFilter();
  eval::Report report("PS3 vs uniform sampling on " + args.dataset + " at " +
                      eval::Pct(args.budget, 0) + " budget (" +
                      std::to_string(exp.tests().size()) + " queries)");
  report.SetHeader({"method", "missed_groups", "avg_rel_err",
                    "abs_over_true"});
  for (const auto& [name, picker] :
       std::vector<std::pair<std::string, core::PartitionPicker*>>{
           {"ps3", ps3.get()}, {"random+filter", random.get()}}) {
    auto m = exp.Evaluate(*picker, args.budget, name == "ps3" ? 1 : 3);
    report.AddRow({name, eval::Num(m.missed_groups),
                   eval::Num(m.avg_rel_error), eval::Num(m.abs_over_true)});
  }
  report.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  return args.command == "train" ? RunTrain(args) : RunEval(args);
}
