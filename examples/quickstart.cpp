// Quickstart: the full PS3 lifecycle in ~100 lines.
//
//   1. Ingest a partitioned table (here: the synthetic Aria service log).
//   2. Build per-partition summary statistics (one pass per partition).
//   3. Train the PS3 partition picker on a sampled workload.
//   4. Answer a query approximately by reading a handful of partitions,
//      and compare against the exact answer.
//
// Build: cmake --build build --target quickstart && ./build/examples/quickstart
#include <cstdio>

#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "query/metrics.h"
#include "stats/stats_builder.h"
#include "workload/datasets.h"
#include "workload/generator.h"

using namespace ps3;

int main() {
  // --- 1. Data: 40k-row service request log, laid out by TenantId, cut
  // into 200 partitions (the granularity the storage layer tracks).
  workload::DatasetBundle bundle = workload::MakeAria(40000, /*seed=*/1);
  auto sorted = bundle.table->SortedBy(bundle.default_sort);
  auto table = std::make_shared<storage::Table>(std::move(sorted).value());
  storage::PartitionedTable partitions(table, 200);
  std::printf("dataset: %zu rows, %zu partitions\n", table->num_rows(),
              partitions.num_partitions());

  // --- 2. Summary statistics: measures, histograms, AKMV distinct-value
  // sketches and heavy hitters per column per partition (~KBs each).
  stats::StatsOptions stats_opts;
  for (const auto& col : bundle.spec.groupby_columns) {
    stats_opts.grouping_columns.push_back(
        static_cast<size_t>(table->schema().FindColumn(col)));
  }
  stats::TableStats stats = stats::StatsBuilder(stats_opts).Build(partitions);
  auto storage = stats.ComputeStorageReport();
  std::printf("statistics: %.1f KB per partition\n", storage.total_kb);

  // --- 3. Train the picker on a workload sampled from the spec.
  featurize::Featurizer featurizer(table->schema(), &stats);
  core::PickerContext ctx{&partitions, &stats, &featurizer};
  workload::QueryGenerator generator(table.get(), bundle.spec);
  core::TrainingData training =
      core::BuildTrainingData(ctx, generator.GenerateSet(32, /*seed=*/7));
  core::Ps3Options options;  // k=4 funnel models, alpha=2, 10% outliers
  core::Ps3Model model = core::TrainPs3(ctx, training, options);
  core::Ps3Picker picker(ctx, &model);
  std::printf("trained: %zu funnel regressors on %zu queries\n",
              model.regressors.size(), training.num_queries());

  // --- 4. Approximate a query with a 5%% partition budget.
  query::Query q;
  q.aggregates = {
      query::Aggregate::Count("requests"),
      query::Aggregate::Sum(
          query::Expr::Column(static_cast<size_t>(
              table->schema().FindColumn("records_received_count"))),
          "records"),
  };
  q.group_by = {static_cast<size_t>(
      table->schema().FindColumn("DeviceInfo_NetworkType"))};
  std::printf("\nquery: %s\n", q.ToString(table->schema()).c_str());

  auto per_partition = query::EvaluateAllPartitions(q, partitions);
  auto exact = query::ExactAnswer(q, per_partition);

  RandomEngine rng(42);
  size_t budget = partitions.num_partitions() / 20;  // 5%
  core::Selection choice = picker.Pick(q, budget, &rng, nullptr);
  auto estimate = query::CombineWeighted(q, per_partition, choice.parts);

  std::printf("read %zu of %zu partitions (5%% budget)\n",
              choice.parts.size(), partitions.num_partitions());
  std::printf("%-24s %14s %14s\n", "group", "exact", "estimate");
  for (const auto& [key, truth] : exact) {
    auto it = estimate.find(key);
    const auto& net_col = *table->GetColumn("DeviceInfo_NetworkType").value();
    std::printf("%-24s %14.0f %14.0f\n",
                net_col.dict()->ValueOf(static_cast<int32_t>(key[0])).c_str(),
                truth[0], it == estimate.end() ? 0.0 : it->second[0]);
  }
  auto metrics = query::ComputeErrorMetrics(q, exact, estimate);
  std::printf("\navg relative error: %.2f%%  (missed groups: %.0f%%)\n",
              100.0 * metrics.avg_rel_error, 100.0 * metrics.missed_groups);
  return 0;
}
