// Scenario: approximate business reporting over a denormalized sales fact
// table (TPC-H* analog). Runs the pricing-summary (Q1-style) and revenue
// forecasting (Q6-style) reports at several sampling budgets, showing the
// accuracy/cost trade-off a report author would tune.
#include <cstdio>

#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "query/metrics.h"
#include "stats/stats_builder.h"
#include "workload/datasets.h"
#include "workload/generator.h"
#include "workload/tpch_queries.h"

using namespace ps3;

int main() {
  workload::DatasetBundle bundle = workload::MakeTpchStar(60000, 5);
  auto sorted = bundle.table->SortedBy(bundle.default_sort);  // l_shipdate
  auto table = std::make_shared<storage::Table>(std::move(sorted).value());
  storage::PartitionedTable partitions(table, 300);

  stats::StatsOptions stats_opts;
  for (const auto& col : bundle.spec.groupby_columns) {
    stats_opts.grouping_columns.push_back(
        static_cast<size_t>(table->schema().FindColumn(col)));
  }
  stats::TableStats stats = stats::StatsBuilder(stats_opts).Build(partitions);
  featurize::Featurizer featurizer(table->schema(), &stats);
  core::PickerContext ctx{&partitions, &stats, &featurizer};

  // Train once on the generic reporting workload.
  workload::QueryGenerator generator(table.get(), bundle.spec);
  core::TrainingData training =
      core::BuildTrainingData(ctx, generator.GenerateSet(48, 21));
  core::Ps3Model model = core::TrainPs3(ctx, training, core::Ps3Options{});
  core::Ps3Picker picker(ctx, &model);

  RandomEngine rng(7);
  for (int template_id : {1, 6}) {
    auto made = workload::MakeTpchQuery(*table, template_id, &rng);
    if (!made.ok()) {
      std::fprintf(stderr, "template error: %s\n",
                   made.status().ToString().c_str());
      return 1;
    }
    query::Query q = std::move(made).value();
    std::printf("=== TPC-H Q%d analog ===\n%s\n", template_id,
                q.ToString(table->schema()).c_str());
    auto answers = query::EvaluateAllPartitions(q, partitions);
    auto exact = query::ExactAnswer(q, answers);

    std::printf("%8s %12s %14s %14s\n", "budget", "partitions",
                "avg_rel_err", "missed_groups");
    for (double budget_frac : {0.02, 0.05, 0.10, 0.25}) {
      size_t budget = static_cast<size_t>(
          budget_frac * static_cast<double>(partitions.num_partitions()));
      core::Selection sel = picker.Pick(q, budget, &rng, nullptr);
      auto approx = query::CombineWeighted(q, answers, sel.parts);
      auto m = query::ComputeErrorMetrics(q, exact, approx);
      std::printf("%7.0f%% %12zu %13.2f%% %13.1f%%\n", 100.0 * budget_frac,
                  sel.parts.size(), 100.0 * m.avg_rel_error,
                  100.0 * m.missed_groups);
    }
    std::printf("\n");
  }
  return 0;
}
