// Scenario: an interactive dashboard over a production service request log
// (the paper's §1 motivation). A dashboard refresh issues a batch of
// group-by queries; with PS3 each one reads a few percent of partitions
// instead of the whole log, trading a bounded approximation error for a
// near-linear reduction in compute.
//
// The example prints, per dashboard panel, the exact vs approximate top
// groups and the error achieved at a 4% partition budget.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "eval/cost_model.h"
#include "query/metrics.h"
#include "stats/stats_builder.h"
#include "workload/datasets.h"
#include "workload/generator.h"

using namespace ps3;

namespace {

struct Panel {
  const char* title;
  query::Query query;
};

size_t Col(const storage::Table& t, const char* name) {
  return static_cast<size_t>(t.schema().FindColumn(name));
}

}  // namespace

int main() {
  // The log, in TenantId order (as ingested), 250 partitions.
  workload::DatasetBundle bundle = workload::MakeAria(50000, 3);
  auto sorted = bundle.table->SortedBy(bundle.default_sort);
  auto table = std::make_shared<storage::Table>(std::move(sorted).value());
  storage::PartitionedTable partitions(table, 250);

  stats::StatsOptions stats_opts;
  for (const auto& col : bundle.spec.groupby_columns) {
    stats_opts.grouping_columns.push_back(Col(*table, col.c_str()));
  }
  stats::TableStats stats = stats::StatsBuilder(stats_opts).Build(partitions);
  featurize::Featurizer featurizer(table->schema(), &stats);
  core::PickerContext ctx{&partitions, &stats, &featurizer};

  workload::QueryGenerator generator(table.get(), bundle.spec);
  core::TrainingData training =
      core::BuildTrainingData(ctx, generator.GenerateSet(40, 11));
  core::Ps3Model model = core::TrainPs3(ctx, training, core::Ps3Options{});
  core::Ps3Picker picker(ctx, &model);

  // Dashboard panels.
  std::vector<Panel> panels;
  {
    query::Query q;
    q.aggregates = {query::Aggregate::Count("requests")};
    q.group_by = {Col(*table, "DeviceInfo_NetworkType")};
    panels.push_back({"Requests by network type", q});
  }
  {
    query::Query q;
    q.aggregates = {query::Aggregate::Sum(
        query::Expr::Column(Col(*table, "olsize")), "payload_bytes")};
    q.group_by = {Col(*table, "AppInfo_Version")};
    panels.push_back({"Payload volume by app version", q});
  }
  {
    query::Query q;
    q.aggregates = {query::Aggregate::Avg(
        query::Expr::Column(Col(*table, "records_sent_count")),
        "avg_sent")};
    q.predicate = query::Predicate::NumericCompare(
        Col(*table, "records_received_count"), query::CompareOp::kGt, 50.0);
    q.group_by = {Col(*table, "UserInfo_TimeZone")};
    panels.push_back({"Send rate by timezone (busy senders)", q});
  }

  const size_t budget = 20;  // 8% of 250 partitions
  RandomEngine rng(99);
  double total_err = 0.0;
  for (const auto& panel : panels) {
    auto answers = query::EvaluateAllPartitions(panel.query, partitions);
    auto exact = query::ExactAnswer(panel.query, answers);
    core::Selection sel = picker.Pick(panel.query, budget, &rng, nullptr);
    auto approx = query::CombineWeighted(panel.query, answers, sel.parts);
    auto metrics = query::ComputeErrorMetrics(panel.query, exact, approx);
    total_err += metrics.avg_rel_error;

    std::printf("=== %s ===\n", panel.title);
    std::printf("  read %zu/%zu partitions; avg rel err %.1f%%, missed "
                "groups %.1f%%\n",
                sel.parts.size(), partitions.num_partitions(),
                100.0 * metrics.avg_rel_error,
                100.0 * metrics.missed_groups);
    // Top-3 groups by exact value vs their estimates.
    std::vector<std::pair<query::GroupKey, double>> ranked;
    for (const auto& [key, vals] : exact) ranked.emplace_back(key, vals[0]);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (size_t i = 0; i < std::min<size_t>(3, ranked.size()); ++i) {
      auto it = approx.find(ranked[i].first);
      std::printf("  top-%zu group: exact %.0f, estimate %.0f\n", i + 1,
                  ranked[i].second,
                  it == approx.end() ? 0.0 : it->second[0]);
    }
  }

  // What the 4% read means on a big cluster (cost model of Table 3).
  eval::ClusterModel cluster;
  auto full = eval::SimulateRead(cluster, 1.0);
  auto sampled = eval::SimulateRead(cluster, 0.08);
  std::printf("\ndashboard refresh at 8%% budget: avg rel err %.1f%%, "
              "compute %.1fx cheaper, latency %.1fx lower (cost model)\n",
              100.0 * total_err / static_cast<double>(panels.size()),
              full.compute_s / sampled.compute_s,
              full.latency_s / sampled.latency_s);
  return 0;
}
