// Scenario: a storage engineer evaluating whether PS3 is worth enabling
// for a dataset under its *current* layout (PS3 is layout-agnostic but its
// gains depend on how correlated the layout is, §5.5.1). The example
// compares PS3 vs uniform sampling on three layouts of the same intrusion
// -detection log: sorted by connection count (default), sorted by service
// and flag, and fully shuffled.
#include <cstdio>
#include <string>
#include <vector>

#include "eval/experiment.h"

using namespace ps3;

int main() {
  struct LayoutCase {
    const char* label;
    std::vector<std::string> sort_cols;
  };
  std::vector<LayoutCase> layouts = {
      {"sorted by count (default)", {}},
      {"sorted by service, flag", {"service", "flag"}},
      {"random layout", {"__random__"}},
  };

  for (const auto& layout : layouts) {
    eval::ExperimentConfig cfg;
    cfg.dataset = "kdd";
    cfg.rows = 30000;
    cfg.partitions = 150;
    cfg.train_queries = 32;
    cfg.test_queries = 16;
    cfg.layout = layout.sort_cols;
    cfg.ps3.feature_selection.restarts = 1;
    cfg.ps3.feature_selection.eval_queries = 4;
    cfg.lss.eval_queries = 4;
    eval::Experiment exp(cfg);
    exp.TrainModels();
    auto ps3 = exp.MakePs3();
    auto random = exp.MakeRandom();

    std::printf("=== KDD, %s ===\n", layout.label);
    std::printf("%8s %16s %16s %10s\n", "budget", "random_rel_err",
                "ps3_rel_err", "gain");
    for (double b : {0.02, 0.05, 0.1, 0.2}) {
      double rnd = exp.Evaluate(*random, b, 3).avg_rel_error;
      double ps = exp.Evaluate(*ps3, b, 1).avg_rel_error;
      std::printf("%7.0f%% %15.2f%% %15.2f%% %9.1fx\n", 100.0 * b,
                  100.0 * rnd, 100.0 * ps, rnd / std::max(1e-9, ps));
    }
    std::printf("\n");
  }
  std::printf("Takeaway: the more the layout correlates with query "
              "columns, the larger PS3's advantage; on a random layout "
              "uniform sampling is already near-optimal (Figure 8).\n");
  return 0;
}
