// Concurrency battery for runtime::QueryScheduler: randomized queries
// submitted concurrently from many threads must produce answers
// bit-identical to the same query run serially under ExecPolicy::kScalar
// (the bit-exactness reference) — extending the property-suite
// equivalence pattern to concurrent admission. Also covers per-query
// failure isolation and drain-on-destruction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/exact_picker.h"
#include "core/random_picker.h"
#include "io/cold_source.h"
#include "io/fault_injector.h"
#include "io/partition_store.h"
#include "query/evaluator.h"
#include "runtime/query_scheduler.h"
#include "storage/partition_source.h"
#include "storage/sharded_table.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace ps3 {
namespace {

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void ExpectAnswerBitIdentical(const query::QueryAnswer& expected,
                              const query::QueryAnswer& actual,
                              const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, vals] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << label;
    ASSERT_EQ(vals.size(), it->second.size()) << label;
    for (size_t a = 0; a < vals.size(); ++a) {
      EXPECT_EQ(BitsOf(vals[a]), BitsOf(it->second[a]))
          << label << " agg " << a;
    }
  }
}

/// Shared fixture data: a TPC-H-style table (13 partitions — not a
/// multiple of any shard count, so shard runs are uneven), a 4-shard view
/// of it, a randomized query set, and the serial scalar reference answer
/// for every query.
struct StreamFixture {
  static constexpr size_t kQueries = 12;

  StreamFixture() {
    bundle = workload::MakeTpchStar(4000, /*seed=*/29);
    pt = std::make_unique<storage::PartitionedTable>(bundle.table, 13);
    sharded = std::make_unique<storage::ShardedTable>(*pt, 4);
    workload::QueryGenerator gen(bundle.table.get(), bundle.spec);
    queries = gen.GenerateSet(kQueries, /*seed=*/97);
    serial.reserve(queries.size());
    for (const auto& q : queries) {
      query::ExecOptions ref;
      ref.policy = query::ExecPolicy::kScalar;
      ref.num_threads = 1;
      serial.push_back(
          query::ExactAnswer(q, query::EvaluateAllPartitions(q, *pt, ref)));
    }
  }

  workload::DatasetBundle bundle;
  std::unique_ptr<storage::PartitionedTable> pt;
  std::unique_ptr<storage::ShardedTable> sharded;
  std::vector<query::Query> queries;
  std::vector<query::QueryAnswer> serial;
};

StreamFixture& Fixture() {
  static StreamFixture* f = new StreamFixture();
  return *f;
}

class SchedulerEquivalence
    : public ::testing::TestWithParam<query::ExecPolicy> {};

TEST_P(SchedulerEquivalence, ConcurrentSubmissionBitIdenticalToSerial) {
  // >= 8 queries in flight, submitted from >= 4 threads (acceptance
  // floor), with varied per-query lane caps so admission is genuinely
  // concurrent and unevenly allotted. Repeated rounds shake out schedule-
  // dependent interleavings.
  StreamFixture& fx = Fixture();
  const query::ExecPolicy policy = GetParam();
  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 4;
  runtime::QueryScheduler scheduler(sopts);

  constexpr size_t kSubmitters = 4;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::vector<std::future<query::QueryAnswer>>> futures(
        kSubmitters);
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        // Each submitter owns queries t, t+kSubmitters, ... — 12 queries
        // across 4 threads, all in flight against 4 drivers at once.
        for (size_t i = t; i < fx.queries.size(); i += kSubmitters) {
          query::ExecOptions opts;
          opts.policy = policy;
          opts.num_threads = 1 + static_cast<int>(i % 3);
          // Alternate flat and sharded admission: both entry points must
          // meet the same determinism contract.
          futures[t].push_back(
              i % 2 == 0
                  ? scheduler.Submit(fx.queries[i], *fx.pt, opts)
                  : scheduler.Submit(fx.queries[i], *fx.sharded, opts));
        }
      });
    }
    for (auto& s : submitters) s.join();
    for (size_t t = 0; t < kSubmitters; ++t) {
      size_t k = 0;
      for (size_t i = t; i < fx.queries.size(); i += kSubmitters, ++k) {
        ExpectAnswerBitIdentical(fx.serial[i], futures[t][k].get(),
                                 policy == query::ExecPolicy::kScalar
                                     ? "concurrent-scalar"
                                     : "concurrent-vectorized");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerEquivalence,
                         ::testing::Values(query::ExecPolicy::kScalar,
                                           query::ExecPolicy::kVectorized),
                         [](const auto& info) {
                           return info.param == query::ExecPolicy::kScalar
                                      ? std::string("scalar")
                                      : std::string("vectorized");
                         });

TEST(QueryScheduler, PartialsMatchDirectEvaluation) {
  StreamFixture& fx = Fixture();
  runtime::QueryScheduler scheduler;
  std::vector<std::future<std::vector<query::PartitionAnswer>>> futures;
  for (size_t i = 0; i < fx.queries.size(); ++i) {
    futures.push_back(i % 2 == 0
                          ? scheduler.SubmitPartials(fx.queries[i], *fx.pt)
                          : scheduler.SubmitPartials(fx.queries[i],
                                                     *fx.sharded));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto partials = futures[i].get();
    ASSERT_EQ(partials.size(), fx.pt->num_partitions());
    ExpectAnswerBitIdentical(fx.serial[i],
                             query::ExactAnswer(fx.queries[i], partials),
                             "partials");
  }
}

TEST(QueryScheduler, ThrowingTaskFailsOnlyItsOwnFuture) {
  StreamFixture& fx = Fixture();
  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 3;
  runtime::QueryScheduler scheduler(sopts);

  // Poisoned tasks whose kernels throw mid-ParallelFor, interleaved with
  // healthy queries. Each poisoned future must rethrow; every healthy
  // future must still resolve bit-identically; the pool lanes and the
  // drivers must stay serviceable afterwards.
  std::vector<std::future<query::QueryAnswer>> good;
  std::vector<std::future<void>> poisoned;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < 4; ++i) {
      good.push_back(scheduler.Submit(fx.queries[i], *fx.pt));
      poisoned.push_back(scheduler.Defer([&scheduler] {
        scheduler.pool().ParallelFor(1024, [](size_t j) {
          if (j == 513) throw std::runtime_error("kernel fault");
        });
      }));
    }
  }
  for (auto& f : poisoned) {
    EXPECT_THROW(f.get(), std::runtime_error);
  }
  for (size_t k = 0; k < good.size(); ++k) {
    ExpectAnswerBitIdentical(fx.serial[k % 4], good[k].get(),
                             "healthy-sibling");
  }
  // Still serviceable: a fresh round after the faults.
  auto after = scheduler.Submit(fx.queries[5], *fx.sharded);
  ExpectAnswerBitIdentical(fx.serial[5], after.get(), "after-faults");
}

TEST(QueryScheduler, DestructorDrainsAdmittedWork) {
  StreamFixture& fx = Fixture();
  std::vector<std::future<query::QueryAnswer>> futures;
  std::atomic<int> ran{0};
  {
    runtime::QueryScheduler::Options sopts;
    sopts.num_drivers = 2;  // fewer drivers than admitted queries
    runtime::QueryScheduler scheduler(sopts);
    for (size_t i = 0; i < fx.queries.size(); ++i) {
      futures.push_back(scheduler.Submit(fx.queries[i], *fx.pt));
    }
    futures.push_back(scheduler.Defer([&] {
      ran.fetch_add(1);
      return query::QueryAnswer{};
    }));
  }  // destructor: every admitted task must have completed
  EXPECT_EQ(ran.load(), 1);
  for (size_t i = 0; i < fx.queries.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    ExpectAnswerBitIdentical(fx.serial[i], futures[i].get(), "drained");
  }
}

TEST(QueryScheduler, SubmitIsThreadSafeUnderChurn) {
  // Many short generic tasks admitted from many threads while queries run:
  // the admission path itself (queue + cv) must be race-free and lose
  // nothing.
  StreamFixture& fx = Fixture();
  runtime::QueryScheduler scheduler;
  std::atomic<size_t> ticks{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<size_t>>> futs(6);
  for (size_t t = 0; t < 6; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t k = 0; k < 40; ++k) {
        futs[t].push_back(scheduler.Defer(
            [&ticks] { return ticks.fetch_add(1) + 1; }));
      }
    });
  }
  auto q = scheduler.Submit(fx.queries[0], *fx.pt);
  for (auto& s : submitters) s.join();
  size_t collected = 0;
  for (auto& per_thread : futs) {
    for (auto& f : per_thread) {
      f.get();
      ++collected;
    }
  }
  EXPECT_EQ(collected, 240u);
  EXPECT_EQ(ticks.load(), 240u);
  ExpectAnswerBitIdentical(fx.serial[0], q.get(), "churn-query");
}

// ---------------------------------------------------------------------
// Multi-tenant admission: priority classes, deadlines, cancellation.

TEST(MultiTenant, MixedClassConcurrentBitIdenticalToSerial) {
  // Interactive and batch queries racing across drivers and shared lanes:
  // class affects when chunks run, never results — every answer must stay
  // bit-identical to the serial scalar reference.
  StreamFixture& fx = Fixture();
  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 4;
  runtime::QueryScheduler scheduler(sopts);

  constexpr size_t kSubmitters = 4;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<std::future<query::QueryAnswer>>> futures(
        kSubmitters);
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = t; i < fx.queries.size(); i += kSubmitters) {
          query::ExecOptions opts;
          opts.policy = i % 2 == 0 ? query::ExecPolicy::kScalar
                                   : query::ExecPolicy::kVectorized;
          opts.num_threads = 1 + static_cast<int>(i % 3);
          runtime::SubmitOptions submit;
          submit.query_class = (i + t) % 2 == 0 ? QueryClass::kInteractive
                                                : QueryClass::kBatch;
          // A generous deadline on some queries arms the whole deadline
          // machinery (token creation, chunk-boundary polls) without ever
          // firing.
          if (i % 3 == 0) submit.deadline = std::chrono::seconds(300);
          futures[t].push_back(
              i % 2 == 0
                  ? scheduler.Submit(fx.queries[i], *fx.pt, submit, opts)
                  : scheduler.Submit(fx.queries[i], *fx.sharded, submit,
                                     opts));
        }
      });
    }
    for (auto& s : submitters) s.join();
    for (size_t t = 0; t < kSubmitters; ++t) {
      size_t k = 0;
      for (size_t i = t; i < fx.queries.size(); i += kSubmitters, ++k) {
        ExpectAnswerBitIdentical(fx.serial[i], futures[t][k].get(),
                                 "mixed-class");
      }
    }
  }
}

TEST(MultiTenant, ExpiredDeadlineFailsFastWithoutPoisoningSiblings) {
  StreamFixture& fx = Fixture();
  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 3;
  runtime::QueryScheduler scheduler(sopts);

  std::vector<std::future<query::QueryAnswer>> dead;
  std::vector<std::future<query::QueryAnswer>> alive;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < 4; ++i) {
      runtime::SubmitOptions submit;
      submit.deadline = std::chrono::microseconds(-1);  // already expired
      dead.push_back(scheduler.Submit(fx.queries[i], *fx.pt, submit));
      alive.push_back(scheduler.Submit(fx.queries[i], *fx.sharded));
    }
  }
  for (auto& f : dead) {
    try {
      f.get();
      FAIL() << "expected QueryAborted";
    } catch (const QueryAborted& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
    }
  }
  for (size_t k = 0; k < alive.size(); ++k) {
    ExpectAnswerBitIdentical(fx.serial[k % 4], alive[k].get(),
                             "deadline-sibling");
  }
}

TEST(MultiTenant, CancelResolvesFutureAndSparesSiblings) {
  StreamFixture& fx = Fixture();
  runtime::QueryScheduler scheduler;

  // Deterministic shape: a token cancelled before submission resolves
  // with kCancelled (the admission gate fires before any partition is
  // touched).
  {
    runtime::SubmitOptions submit;
    submit.cancel = std::make_shared<CancelToken>();
    submit.cancel->Cancel();
    auto fut = scheduler.Submit(fx.queries[0], *fx.pt, submit);
    try {
      fut.get();
      FAIL() << "expected QueryAborted";
    } catch (const QueryAborted& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    }
  }

  // Racy shape (the TSan target): cancel fires from another thread while
  // the query may be anywhere between queued and finished. Either
  // outcome — a clean abort or a completed bit-exact answer — is legal;
  // a wrong answer, a hung future, or a poisoned sibling is not.
  for (int round = 0; round < 8; ++round) {
    runtime::SubmitOptions submit;
    submit.cancel = std::make_shared<CancelToken>();
    auto racy = scheduler.Submit(fx.queries[1], *fx.pt, submit);
    auto sibling = scheduler.Submit(fx.queries[2], *fx.sharded);
    std::thread canceller(
        [token = submit.cancel] { token->Cancel(); });
    try {
      ExpectAnswerBitIdentical(fx.serial[1], racy.get(), "racy-complete");
    } catch (const QueryAborted& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    }
    canceller.join();
    ExpectAnswerBitIdentical(fx.serial[2], sibling.get(), "racy-sibling");
  }

  // One token shared by a group cancels the whole group.
  {
    runtime::SubmitOptions submit;
    submit.cancel = std::make_shared<CancelToken>();
    submit.cancel->Cancel();
    std::vector<std::future<query::QueryAnswer>> group;
    for (size_t i = 0; i < 3; ++i) {
      group.push_back(scheduler.Submit(fx.queries[i], *fx.pt, submit));
    }
    for (auto& f : group) EXPECT_THROW(f.get(), QueryAborted);
  }
  // Scheduler still serviceable after all the aborts.
  ExpectAnswerBitIdentical(fx.serial[3],
                           scheduler.Submit(fx.queries[3], *fx.pt).get(),
                           "after-cancels");
}

TEST(MultiTenant, InteractiveJumpsTheDriverQueue) {
  // One driver, held busy by a gate task while a batch backlog and then
  // one interactive task are enqueued. When the gate opens, the driver
  // must pop the interactive task before any of the earlier-enqueued
  // batch tasks — the two-level queue, observed deterministically.
  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 1;
  runtime::QueryScheduler scheduler(sopts);

  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto held = scheduler.Defer([open] { open.wait(); });

  std::mutex order_mu;
  std::vector<int> order;
  std::vector<std::future<void>> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(scheduler.Defer([&order_mu, &order, i] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    }));
  }
  auto interactive = scheduler.Defer(
      [&order_mu, &order] {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(100);
      },
      QueryClass::kInteractive);

  gate.set_value();
  held.get();
  interactive.get();
  for (auto& f : batch) f.get();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order.front(), 100) << "interactive must run first";
}

void ExpectApproxBitIdentical(const runtime::ApproxAnswer& expected,
                              const runtime::ApproxAnswer& actual,
                              const char* label) {
  ExpectAnswerBitIdentical(expected.value, actual.value, label);
  ExpectAnswerBitIdentical(expected.error_estimate, actual.error_estimate,
                           label);
  EXPECT_EQ(expected.partitions_scanned, actual.partitions_scanned) << label;
  EXPECT_EQ(expected.partitions_total, actual.partitions_total) << label;
  EXPECT_EQ(expected.bytes_moved, actual.bytes_moved) << label;
}

TEST(QueryScheduler, ApproximateWithExactPickerMatchesSubmit) {
  // The approximate class with the degenerate "read everything" picker is
  // the exact scan: same value bit for bit, zero error estimate (every
  // stratum is read exactly), full scan accounting, and 0 bytes_moved on
  // a resident source.
  StreamFixture& fx = Fixture();
  storage::ResidentShardedSource src(*fx.sharded);
  core::ExactPicker picker(fx.pt->num_partitions());
  runtime::QueryScheduler scheduler;
  for (size_t i = 0; i < fx.queries.size(); ++i) {
    runtime::ApproxOptions aopts;
    aopts.sampling_fraction = 1.0;
    aopts.seed = 7;
    runtime::ApproxAnswer ans =
        scheduler.SubmitApproximate(fx.queries[i], src, picker, aopts).get();
    ExpectAnswerBitIdentical(fx.serial[i], ans.value, "approx-exact");
    EXPECT_EQ(ans.partitions_scanned, fx.pt->num_partitions());
    EXPECT_EQ(ans.partitions_total, fx.pt->num_partitions());
    EXPECT_EQ(ans.bytes_moved, 0u);
    ASSERT_EQ(ans.error_estimate.size(), ans.value.size());
    for (const auto& [key, errs] : ans.error_estimate) {
      for (double e : errs) EXPECT_EQ(e, 0.0) << "exact strata report 0";
    }
  }
}

TEST(QueryScheduler, ApproximateInvalidFractionPoisonsOnlyItsFuture) {
  StreamFixture& fx = Fixture();
  storage::ResidentShardedSource src(*fx.sharded);
  core::ExactPicker picker(fx.pt->num_partitions());
  runtime::QueryScheduler scheduler;
  for (double bad : {0.0, -0.25, 1.5,
                     std::numeric_limits<double>::quiet_NaN()}) {
    runtime::ApproxOptions aopts;
    aopts.sampling_fraction = bad;
    auto fut = scheduler.SubmitApproximate(fx.queries[0], src, picker, aopts);
    EXPECT_THROW(fut.get(), std::invalid_argument) << bad;
  }
  // The scheduler stays serviceable after the rejections.
  ExpectAnswerBitIdentical(
      fx.serial[1], scheduler.Submit(fx.queries[1], *fx.sharded).get(),
      "after-bad-fraction");
}

TEST(QueryScheduler, ConcurrentApproximateBitIdenticalToSerial) {
  // Determinism contract on the approximate path: same picker + seed +
  // fraction must produce a bit-identical ApproxAnswer (value, error
  // estimate, and accounting) whether the query runs alone or races
  // sibling approximate and exact queries across drivers — the picker
  // runs per-query with its own seeded RNG and the combine order is
  // canonical, so concurrency can't reorder anything observable.
  StreamFixture& fx = Fixture();
  storage::ResidentShardedSource src(*fx.sharded);
  core::PickerContext ctx;
  ctx.table = fx.pt.get();
  core::RandomPicker picker(ctx);

  auto approx_opts = [](size_t i) {
    runtime::ApproxOptions aopts;
    aopts.sampling_fraction = 0.25 + 0.15 * static_cast<double>(i % 3);
    aopts.seed = 100 + i;
    return aopts;
  };

  std::vector<runtime::ApproxAnswer> reference;
  {
    runtime::QueryScheduler::Options sopts;
    sopts.num_drivers = 1;
    runtime::QueryScheduler serial_sched(sopts);
    for (size_t i = 0; i < fx.queries.size(); ++i) {
      query::ExecOptions opts;
      opts.policy = query::ExecPolicy::kScalar;
      opts.num_threads = 1;
      reference.push_back(
          serial_sched
              .SubmitApproximate(fx.queries[i], src, picker, approx_opts(i),
                                 opts)
              .get());
    }
  }

  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 4;
  runtime::QueryScheduler scheduler(sopts);
  constexpr size_t kSubmitters = 4;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<std::future<runtime::ApproxAnswer>>> futures(
        kSubmitters);
    std::vector<std::future<query::QueryAnswer>> exact_siblings;
    std::vector<std::thread> submitters;
    std::mutex exact_mu;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = t; i < fx.queries.size(); i += kSubmitters) {
          query::ExecOptions opts;
          opts.policy = i % 2 == 0 ? query::ExecPolicy::kScalar
                                   : query::ExecPolicy::kVectorized;
          opts.num_threads = 1 + static_cast<int>(i % 3);
          futures[t].push_back(scheduler.SubmitApproximate(
              fx.queries[i], src, picker, approx_opts(i), opts));
          auto exact = scheduler.Submit(fx.queries[i], *fx.sharded, opts);
          std::lock_guard<std::mutex> lock(exact_mu);
          exact_siblings.push_back(std::move(exact));
        }
      });
    }
    for (auto& s : submitters) s.join();
    for (size_t t = 0; t < kSubmitters; ++t) {
      size_t k = 0;
      for (size_t i = t; i < fx.queries.size(); i += kSubmitters, ++k) {
        ExpectApproxBitIdentical(reference[i], futures[t][k].get(),
                                 "concurrent-approx");
      }
    }
    for (auto& f : exact_siblings) f.get();
  }
}

// ------------------------------------- degraded serving battery

/// Spills the fixture table once and hands out stores over it with
/// per-test fault plans.
std::string SpilledFixtureDir() {
  static std::string* dir = [] {
    std::string tmpl = ::testing::TempDir() + "ps3_sched_XXXXXX";
    EXPECT_NE(mkdtemp(tmpl.data()), nullptr);
    EXPECT_TRUE(io::PartitionStore::Spill(*Fixture().pt, tmpl).ok());
    return new std::string(tmpl);
  }();
  return *dir;
}

std::unique_ptr<io::PartitionStore> OpenFaulted(io::FaultPlan plan) {
  io::PartitionStore::Options opts;
  if (plan.AnyFaults()) {
    opts.faults = std::make_shared<io::FaultInjector>(std::move(plan));
  }
  opts.retry.max_attempts = 6;
  opts.retry.backoff_base_us = 50;
  opts.retry.backoff_cap_us = 500;
  auto store = io::PartitionStore::Open(SpilledFixtureDir(), opts);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

TEST(DegradedServing, ColdFaultyConcurrentBitIdenticalToSerial) {
  // A 1% transient fault rate under the full concurrency battery: the
  // retry loop must absorb every injected failure and each answer must
  // stay bit-identical to the fault-free serial scalar reference —
  // faults cost retries and latency, never bits.
  StreamFixture& fx = Fixture();
  io::FaultPlan plan;
  plan.seed = 17;
  plan.transient_rate = 0.01;
  auto store = OpenFaulted(plan);
  io::ColdShardedSource cold(store.get(), 4);

  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = 4;
  runtime::QueryScheduler scheduler(sopts);
  constexpr size_t kSubmitters = 4;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<std::future<query::QueryAnswer>>> futures(
        kSubmitters);
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = t; i < fx.queries.size(); i += kSubmitters) {
          query::ExecOptions opts;
          opts.policy = i % 2 == 0 ? query::ExecPolicy::kScalar
                                   : query::ExecPolicy::kVectorized;
          opts.num_threads = 1 + static_cast<int>(i % 3);
          futures[t].push_back(scheduler.Submit(fx.queries[i], cold, opts));
        }
      });
    }
    for (auto& s : submitters) s.join();
    for (size_t t = 0; t < kSubmitters; ++t) {
      size_t k = 0;
      for (size_t i = t; i < fx.queries.size(); i += kSubmitters, ++k) {
        ExpectAnswerBitIdentical(fx.serial[i], futures[t][k].get(),
                                 "cold-faulty");
      }
    }
  }
  // The plan actually fired (1% over this many cold segment reads) and
  // everything it threw was absorbed by retries.
  const io::StoreStats stats = store->store_stats();
  EXPECT_GT(stats.transient_errors, 0u);
  EXPECT_EQ(stats.transient_errors, stats.retries);
  EXPECT_EQ(stats.load_errors, 0u);
}

TEST(DegradedServing, ExactSubmitFailsFastNamingLostPartitions) {
  StreamFixture& fx = Fixture();
  io::FaultPlan plan;
  plan.lost_partitions = {2, 5};
  auto store = OpenFaulted(plan);
  io::ColdShardedSource cold(store.get(), 3);

  runtime::QueryScheduler scheduler;
  // Both the exact path and the degradable path in its default kFail
  // mode refuse to serve: the failure is structured, naming exactly the
  // lost set so the consumer can re-plan around it.
  auto exact = scheduler.Submit(fx.queries[0], cold);
  runtime::ApproxAnswer unused;
  auto degradable = scheduler.SubmitDegradable(fx.queries[0], cold);
  for (int which = 0; which < 2; ++which) {
    try {
      if (which == 0) {
        exact.get();
      } else {
        unused = degradable.get();
      }
      FAIL() << "lost partitions must fail the exact path";
    } catch (const QueryFailed& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kUnavailable);
      const std::string& msg = e.status().message();
      EXPECT_NE(msg.find("permanently lost"), std::string::npos) << msg;
      EXPECT_NE(msg.find(" 2"), std::string::npos) << msg;
      EXPECT_NE(msg.find(" 5"), std::string::npos) << msg;
      EXPECT_NE(msg.find("SubmitDegradable"), std::string::npos) << msg;
    }
  }
  // No byte moved for either refusal: the guard runs before any load.
  EXPECT_EQ(store->store_stats().cold_loads, 0u);

  // A healthy store over the same spill still serves the exact answer.
  auto healthy = OpenFaulted(io::FaultPlan{});
  io::ColdShardedSource healthy_cold(healthy.get(), 3);
  ExpectAnswerBitIdentical(fx.serial[0],
                           scheduler.Submit(fx.queries[0], healthy_cold).get(),
                           "healthy-sibling");
}

TEST(DegradedServing, ApproximateModeReweightsReachableSet) {
  // kApproximate over a store with lost partitions: the answer is the
  // Horvitz–Thompson reweighted combine over exactly the reachable set,
  // bit-identical to the same combine computed straight from resident
  // partials — and identical across shard counts and exec policies.
  StreamFixture& fx = Fixture();
  io::FaultPlan plan;
  plan.lost_partitions = {2, 5};
  auto store = OpenFaulted(plan);

  const size_t n = fx.pt->num_partitions();
  std::vector<size_t> reachable;
  for (size_t p = 0; p < n; ++p) {
    if (p != 2 && p != 5) reachable.push_back(p);
  }
  const std::vector<query::WeightedPartition> sel =
      query::DegradedSelection(reachable, n);

  for (size_t i = 0; i < 4; ++i) {
    const query::Query& q = fx.queries[i];
    // Reference combine from the resident scalar partials.
    query::ExecOptions ref;
    ref.policy = query::ExecPolicy::kScalar;
    ref.num_threads = 1;
    query::ApproxCombined expected = query::CombineWeightedWithError(
        q, query::EvaluateAllPartitions(q, *fx.pt, ref), sel);

    runtime::QueryScheduler scheduler;
    runtime::ApproxAnswer first;
    for (size_t shards : {size_t{2}, size_t{5}}) {
      io::ColdShardedSource cold(store.get(), shards);
      for (auto policy :
           {query::ExecPolicy::kScalar, query::ExecPolicy::kVectorized}) {
        runtime::SubmitOptions submit;
        submit.degraded_mode = runtime::DegradedMode::kApproximate;
        query::ExecOptions opts;
        opts.policy = policy;
        opts.num_threads = 2;
        runtime::ApproxAnswer ans =
            scheduler.SubmitDegradable(q, cold, submit, opts).get();
        ExpectAnswerBitIdentical(expected.value, ans.value, "degraded-value");
        ExpectAnswerBitIdentical(expected.error, ans.error_estimate,
                                 "degraded-error");
        EXPECT_EQ(ans.partitions_scanned, n - 2);
        EXPECT_EQ(ans.partitions_total, n);
        EXPECT_GT(ans.bytes_moved, 0u);
        if (shards == 2 && policy == query::ExecPolicy::kScalar) {
          first = ans;
        } else {
          ExpectApproxBitIdentical(first, ans, "degraded-across-configs");
        }
      }
    }
  }
}

TEST(DegradedServing, HealthyDegradableIsExactWithZeroError) {
  // Nothing lost: every HT weight is exactly 1, so the degradable path
  // costs nothing in fidelity — the exact bits, a zero error surface,
  // and full scan accounting.
  StreamFixture& fx = Fixture();
  auto store = OpenFaulted(io::FaultPlan{});
  io::ColdShardedSource cold(store.get(), 4);
  runtime::QueryScheduler scheduler;
  for (size_t i = 0; i < 4; ++i) {
    runtime::SubmitOptions submit;
    submit.degraded_mode = runtime::DegradedMode::kApproximate;
    runtime::ApproxAnswer ans =
        scheduler.SubmitDegradable(fx.queries[i], cold, submit).get();
    ExpectAnswerBitIdentical(fx.serial[i], ans.value, "healthy-degradable");
    EXPECT_EQ(ans.partitions_scanned, fx.pt->num_partitions());
    EXPECT_EQ(ans.partitions_total, fx.pt->num_partitions());
    ASSERT_EQ(ans.error_estimate.size(), ans.value.size());
    for (const auto& [key, errs] : ans.error_estimate) {
      for (double e : errs) EXPECT_EQ(e, 0.0) << "weight-1 strata report 0";
    }
  }
}

TEST(DegradedServing, ApproximateRePicksAroundLossDeterministically) {
  // SubmitApproximate on a store with lost partitions: the picker's
  // choices are re-drawn (or rescaled) around the lost set at unchanged
  // budget, the query succeeds without ever touching a lost partition,
  // and the whole dance replays bit-identically for the same seed.
  StreamFixture& fx = Fixture();
  io::FaultPlan plan;
  plan.lost_partitions = {1, 7, 11};
  auto store = OpenFaulted(plan);
  io::ColdShardedSource cold(store.get(), 4);

  core::PickerContext ctx;
  ctx.table = fx.pt.get();
  core::RandomPicker picker(ctx);
  runtime::ApproxOptions aopts;
  aopts.sampling_fraction = 0.5;
  aopts.seed = 23;
  query::ExecOptions opts;
  opts.policy = query::ExecPolicy::kScalar;
  opts.num_threads = 1;

  std::vector<runtime::ApproxAnswer> reference;
  {
    runtime::QueryScheduler scheduler;
    for (size_t i = 0; i < 4; ++i) {
      // Success alone proves no lost partition was acquired: acquiring
      // one fails the load, and the evaluation with it.
      reference.push_back(
          scheduler.SubmitApproximate(fx.queries[i], cold, picker, aopts, opts)
              .get());
      EXPECT_GT(reference.back().partitions_scanned, 0u);
      EXPECT_LE(reference.back().partitions_scanned,
                (fx.pt->num_partitions() + 1) / 2);
    }
  }
  EXPECT_EQ(store->store_stats().lost_errors, 0u)
      << "re-picking must never touch a lost partition";
  {
    runtime::QueryScheduler scheduler;
    for (size_t i = 0; i < 4; ++i) {
      ExpectApproxBitIdentical(
          reference[i],
          scheduler.SubmitApproximate(fx.queries[i], cold, picker, aopts, opts)
              .get(),
          "repick-replay");
    }
  }
}

}  // namespace
}  // namespace ps3
