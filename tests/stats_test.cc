#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/stats_builder.h"

namespace ps3::stats {
namespace {

using storage::ColumnType;
using storage::PartitionedTable;
using storage::Schema;
using storage::Table;

/// 4 partitions x 100 rows; categorical "group" takes one dominant value
/// per partition; numeric "x" ramps with the row index.
std::shared_ptr<Table> MakeTable() {
  Schema schema({{"x", ColumnType::kNumeric},
                 {"group", ColumnType::kCategorical}});
  auto t = std::make_shared<Table>(schema);
  const char* names[4] = {"alpha", "beta", "gamma", "delta"};
  for (int p = 0; p < 4; ++p) {
    for (int r = 0; r < 100; ++r) {
      t->AppendRow({static_cast<double>(p * 100 + r)}, {names[p]});
    }
  }
  t->Seal();
  return t;
}

StatsOptions OptionsWithGrouping() {
  StatsOptions o;
  o.grouping_columns = {1};
  return o;
}

TEST(StatsBuilder, BuildsPerPartitionColumnStats) {
  PartitionedTable pt(MakeTable(), 4);
  TableStats stats = StatsBuilder(OptionsWithGrouping()).Build(pt);
  ASSERT_EQ(stats.num_partitions(), 4u);
  ASSERT_EQ(stats.num_columns(), 2u);

  const ColumnStats& x0 = stats.partition(0).columns[0];
  EXPECT_FALSE(x0.categorical);
  EXPECT_DOUBLE_EQ(x0.measures.min(), 0.0);
  EXPECT_DOUBLE_EQ(x0.measures.max(), 99.0);
  EXPECT_EQ(x0.measures.count(), 100u);

  const ColumnStats& x3 = stats.partition(3).columns[0];
  EXPECT_DOUBLE_EQ(x3.measures.min(), 300.0);
}

TEST(StatsBuilder, CategoricalColumnStats) {
  PartitionedTable pt(MakeTable(), 4);
  TableStats stats = StatsBuilder(OptionsWithGrouping()).Build(pt);
  const ColumnStats& g = stats.partition(0).columns[1];
  EXPECT_TRUE(g.categorical);
  EXPECT_TRUE(g.exact_freq.valid());
  EXPECT_EQ(g.exact_freq.num_distinct(), 1u);
  EXPECT_DOUBLE_EQ(g.akmv.EstimateDistinct(), 1.0);
  // The single value is trivially a heavy hitter.
  EXPECT_EQ(g.heavy_hitters.NumHeavyHitters(), 1u);
}

TEST(StatsBuilder, GlobalHeavyHittersOnlyForGroupingColumns) {
  PartitionedTable pt(MakeTable(), 4);
  TableStats stats = StatsBuilder(OptionsWithGrouping()).Build(pt);
  EXPECT_FALSE(stats.has_bitmap(0));  // numeric column: not a grouping col
  EXPECT_TRUE(stats.has_bitmap(1));
  // Each partition's dominant value appears -> 4 global heavy hitters.
  EXPECT_EQ(stats.global_heavy_hitters(1).size(), 4u);
}

TEST(StatsBuilder, OccurrenceBitmapsDiscriminatePartitions) {
  PartitionedTable pt(MakeTable(), 4);
  TableStats stats = StatsBuilder(OptionsWithGrouping()).Build(pt);
  // Each partition holds exactly one of the 4 global heavy hitters, so
  // each bitmap has exactly one set bit and bitmaps differ pairwise.
  for (size_t p = 0; p < 4; ++p) {
    const auto& bm = stats.occurrence_bitmap(p, 1);
    ASSERT_EQ(bm.size(), 4u);
    int set = 0;
    for (uint8_t b : bm) set += b;
    EXPECT_EQ(set, 1);
  }
  EXPECT_NE(stats.occurrence_bitmap(0, 1), stats.occurrence_bitmap(1, 1));
}

TEST(StatsBuilder, BitmapCapRespected) {
  // 60 distinct dominant values but bitmap_k caps global HH at 25.
  Schema schema({{"g", ColumnType::kCategorical}});
  auto t = std::make_shared<Table>(schema);
  for (int p = 0; p < 60; ++p) {
    for (int r = 0; r < 50; ++r) {
      t->AppendRow({}, {"value_" + std::to_string(p)});
    }
  }
  t->Seal();
  PartitionedTable pt(t, 60);
  StatsOptions opts;
  opts.grouping_columns = {0};
  TableStats stats = StatsBuilder(opts).Build(pt);
  EXPECT_EQ(stats.global_heavy_hitters(0).size(), 25u);
}

TEST(TableStats, StorageReportPositiveAndBounded) {
  PartitionedTable pt(MakeTable(), 4);
  TableStats stats = StatsBuilder(OptionsWithGrouping()).Build(pt);
  StorageReport report = stats.ComputeStorageReport();
  EXPECT_GT(report.total_kb, 0.0);
  EXPECT_NEAR(report.total_kb,
              report.histogram_kb + report.heavy_hitter_kb +
                  report.akmv_kb + report.measure_kb,
              1e-9);
  // Tiny table: should be far below the paper's 12-103KB range.
  EXPECT_LT(report.total_kb, 103.0);
}

TEST(TableStats, AkmvDominatesForHighCardinality) {
  // High-cardinality numeric data: AKMV (128 x 12B) outweighs the other
  // sketches, as the paper observes (Table 4 discussion).
  Schema schema({{"x", ColumnType::kNumeric}});
  auto t = std::make_shared<Table>(schema);
  RandomEngine rng(3);
  for (int i = 0; i < 4000; ++i) t->AppendRow({rng.NextDouble()}, {});
  t->Seal();
  PartitionedTable pt(t, 4);
  TableStats stats = StatsBuilder(StatsOptions{}).Build(pt);
  StorageReport report = stats.ComputeStorageReport();
  EXPECT_GT(report.akmv_kb, report.histogram_kb);
  EXPECT_GT(report.akmv_kb, report.measure_kb);
}

}  // namespace
}  // namespace ps3::stats
