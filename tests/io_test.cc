// io/ subsystem tests: columnar partition-file roundtrip, checksum
// corruption detection, manifest verification, cache eviction + pinning
// (including under concurrent queries — the TSan CI job runs this file),
// single-flight cold loads, and prefetch staging.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/retry.h"
#include "common/serialize.h"
#include "io/cold_source.h"
#include "io/fault_injector.h"
#include "io/partition_file.h"
#include "io/partition_store.h"
#include "io/prefetch_pipeline.h"
#include "query/compiler.h"
#include "query/evaluator.h"
#include "runtime/query_scheduler.h"
#include "storage/column_set.h"
#include "storage/partition_source.h"
#include "storage/sharded_table.h"
#include "workload/datasets.h"

namespace ps3 {
namespace {

std::string MakeSpillDir() {
  std::string tmpl = ::testing::TempDir() + "ps3_io_XXXXXX";
  char* dir = mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return tmpl;
}

/// Flips one byte of a file in place.
void FlipByte(const std::string& path, long offset) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
}

std::string PartPath(const std::string& dir, size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "part-%06zu.ps3p", i);
  return dir + "/" + name;
}

query::Query CountSumQuery(const storage::Table& t) {
  query::Query q;
  q.aggregates.push_back(query::Aggregate::Count());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().IsNumeric(c)) {
      q.aggregates.push_back(query::Aggregate::Sum(query::Expr::Column(c)));
      break;
    }
  }
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().IsCategorical(c)) {
      q.group_by.push_back(c);
      break;
    }
  }
  return q;
}

std::vector<std::shared_ptr<storage::Dictionary>> SharedDicts(
    const storage::Table& t) {
  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      t.schema().num_columns());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().IsCategorical(c)) dicts[c] = t.column(c).dict_ptr();
  }
  return dicts;
}

/// Bitwise column-by-column comparison of a rehydrated partition table
/// against rows [begin_row, begin_row + loaded.num_rows()) of `t`.
void ExpectTableBitExact(const storage::Table& t, size_t begin_row,
                         const storage::Table& loaded) {
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    for (size_t r = 0; r < loaded.num_rows(); ++r) {
      if (t.schema().IsNumeric(c)) {
        uint64_t want, got;
        double wv = t.column(c).NumericAt(begin_row + r);
        double gv = loaded.column(c).NumericAt(r);
        std::memcpy(&want, &wv, sizeof(want));
        std::memcpy(&got, &gv, sizeof(got));
        ASSERT_EQ(want, got) << "col " << c << " row " << r;
      } else {
        ASSERT_EQ(loaded.column(c).CodeAt(r),
                  t.column(c).CodeAt(begin_row + r))
            << "col " << c << " row " << r;
      }
    }
  }
}

void ExpectAnswersEqual(const query::QueryAnswer& a,
                        const query::QueryAnswer& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, vals] : a) {
    auto it = b.find(key);
    ASSERT_NE(it, b.end());
    ASSERT_EQ(vals.size(), it->second.size());
    for (size_t i = 0; i < vals.size(); ++i) {
      uint64_t ba, bb;
      std::memcpy(&ba, &vals[i], sizeof(ba));
      std::memcpy(&bb, &it->second[i], sizeof(bb));
      EXPECT_EQ(ba, bb);
    }
  }
}

// ---------------------------------------------------------------- format

TEST(PartitionFile, RoundtripAllColumnsBitExact) {
  auto bundle = workload::MakeAria(600, /*seed=*/3);
  const storage::Table& t = *bundle.table;
  storage::PartitionedTable pt(bundle.table, 7);
  const std::string dir = MakeSpillDir();

  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      t.schema().num_columns());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().IsCategorical(c)) dicts[c] = t.column(c).dict_ptr();
  }
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    const storage::Partition part = pt.partition(p);
    auto info = io::WritePartitionFile(t, part.begin_row(), part.end_row(),
                                       PartPath(dir, p));
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_GT(info->file_bytes, 0u);

    auto loaded = io::ReadPartitionFile(PartPath(dir, p), t.schema(), dicts);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->num_rows(), part.num_rows());
    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      for (size_t r = 0; r < part.num_rows(); ++r) {
        if (t.schema().IsNumeric(c)) {
          uint64_t want, got;
          double wv = part.NumericAt(c, r);
          double gv = loaded->column(c).NumericAt(r);
          std::memcpy(&want, &wv, sizeof(want));
          std::memcpy(&got, &gv, sizeof(got));
          ASSERT_EQ(want, got) << "col " << c << " row " << r;
        } else {
          ASSERT_EQ(part.CodeAt(c, r), loaded->column(c).CodeAt(r));
          ASSERT_EQ(&loaded->column(c).StringAt(r),
                    &t.column(c).StringAt(part.begin_row() + r))
              << "dictionary must be shared, not copied";
        }
      }
    }
  }
}

TEST(PartitionFile, CorruptedSegmentIsDetected) {
  auto bundle = workload::MakeAria(200, /*seed=*/5);
  const storage::Table& t = *bundle.table;
  const std::string dir = MakeSpillDir();
  auto bytes = io::WritePartitionFile(t, 0, t.num_rows(), PartPath(dir, 0));
  ASSERT_TRUE(bytes.ok());

  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      t.schema().num_columns());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().IsCategorical(c)) dicts[c] = t.column(c).dict_ptr();
  }
  // Byte 24 sits inside the first column segment (the header is 20
  // bytes): the segment checksum must catch it.
  FlipByte(PartPath(dir, 0), 24);
  auto loaded = io::ReadPartitionFile(PartPath(dir, 0), t.schema(), dicts);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST(PartitionFile, TruncatedFileIsDetected) {
  auto bundle = workload::MakeAria(200, /*seed=*/6);
  const storage::Table& t = *bundle.table;
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(
      io::WritePartitionFile(t, 0, t.num_rows(), PartPath(dir, 0)).ok());
  // Truncate to half.
  FILE* f = std::fopen(PartPath(dir, 0).c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long half = std::ftell(f) / 2;
  std::fclose(f);
  ASSERT_EQ(truncate(PartPath(dir, 0).c_str(), half), 0);

  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      t.schema().num_columns());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    if (t.schema().IsCategorical(c)) dicts[c] = t.column(c).dict_ptr();
  }
  EXPECT_FALSE(
      io::ReadPartitionFile(PartPath(dir, 0), t.schema(), dicts).ok());
}

// ------------------------------------------------------------ encodings

TEST(PartitionFile, EncodingModesRoundtripBitExact) {
  auto bundle = workload::MakeTpchStar(700, /*seed=*/57);
  const storage::Table& t = *bundle.table;
  auto dicts = SharedDicts(t);
  const std::string dir = MakeSpillDir();

  const io::EncodingMode kModes[] = {
      io::EncodingMode::kRaw, io::EncodingMode::kBitpack,
      io::EncodingMode::kForDelta, io::EncodingMode::kAuto};
  size_t cat_payload_raw = 0;
  size_t cat_payload_auto = 0;
  for (io::EncodingMode mode : kModes) {
    const std::string path = PartPath(dir, static_cast<size_t>(mode));
    auto info = io::WritePartitionFile(t, 0, t.num_rows(), path, mode);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ASSERT_EQ(info->encodings.size(), t.schema().num_columns());
    ASSERT_EQ(info->column_bytes.size(), t.schema().num_columns());

    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      if (t.schema().IsNumeric(c)) {
        // Numeric segments spill raw under every mode.
        EXPECT_EQ(info->encodings[c], io::SegmentEncoding::kRaw)
            << "numeric col " << c << " under " << io::EncodingModeName(mode);
        continue;
      }
      // Forced modes must take effect on every categorical segment
      // (dictionary codes are never negative).
      if (mode == io::EncodingMode::kRaw) {
        EXPECT_EQ(info->encodings[c], io::SegmentEncoding::kRaw);
        cat_payload_raw += info->column_bytes[c];
      } else if (mode == io::EncodingMode::kBitpack) {
        EXPECT_EQ(info->encodings[c], io::SegmentEncoding::kBitpack);
      } else if (mode == io::EncodingMode::kForDelta) {
        EXPECT_EQ(info->encodings[c], io::SegmentEncoding::kForDelta);
      } else {
        cat_payload_auto += info->column_bytes[c];
      }
    }

    auto loaded = io::ReadPartitionFile(path, t.schema(), dicts);
    ASSERT_TRUE(loaded.ok())
        << io::EncodingModeName(mode) << ": " << loaded.status().ToString();
    ASSERT_EQ(loaded->num_rows(), t.num_rows());
    ExpectTableBitExact(t, 0, *loaded);
  }
  // The acceptance bar: dictionary-coded columns shrink at least 2x on
  // disk under auto relative to raw 4-byte codes.
  ASSERT_GT(cat_payload_raw, 0u);
  EXPECT_LE(cat_payload_auto * 2, cat_payload_raw);
}

TEST(PartitionFile, BitFlipInEncodedPayloadIsDetected) {
  auto bundle = workload::MakeAria(500, /*seed=*/59);
  const storage::Table& t = *bundle.table;
  auto dicts = SharedDicts(t);
  const std::string dir = MakeSpillDir();

  const io::EncodingMode kModes[] = {io::EncodingMode::kBitpack,
                                     io::EncodingMode::kForDelta};
  for (size_t m = 0; m < 2; ++m) {
    const std::string path = PartPath(dir, m);
    auto info = io::WritePartitionFile(t, 0, t.num_rows(), path, kModes[m]);
    ASSERT_TRUE(info.ok()) << info.status().ToString();

    // Locate the first categorical column's *encoded* segment: segments
    // are written back to back starting right after the 20-byte header.
    size_t cat = t.schema().num_columns();
    size_t offset = 20;
    for (size_t c = 0; c < t.schema().num_columns(); ++c) {
      if (t.schema().IsCategorical(c)) {
        cat = c;
        break;
      }
      offset += info->column_bytes[c];
    }
    ASSERT_LT(cat, t.schema().num_columns());
    ASSERT_NE(info->encodings[cat], io::SegmentEncoding::kRaw);
    FlipByte(path, static_cast<long>(offset + 1));

    // Decoding the corrupt encoded payload must fail the checksum before
    // any unpacked value is used — a Status, never a wrong answer.
    auto bad = io::ReadPartitionColumns(path, t.schema(), dicts,
                                        storage::ColumnSet::Of({cat}));
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("checksum"), std::string::npos)
        << bad.status().ToString();
    EXPECT_FALSE(io::ReadPartitionFile(path, t.schema(), dicts).ok());
  }
}

TEST(PartitionFile, CorruptFooterMetadataIsDetected) {
  auto bundle = workload::MakeAria(300, /*seed=*/61);
  const storage::Table& t = *bundle.table;
  auto dicts = SharedDicts(t);
  const std::string dir = MakeSpillDir();
  const size_t n_cols = t.schema().num_columns();
  size_t cat = n_cols;
  for (size_t c = 0; c < n_cols; ++c) {
    if (t.schema().IsCategorical(c)) {
      cat = c;
      break;
    }
  }
  ASSERT_LT(cat, n_cols);

  // v2 footer entries are 35 bytes: type, encoding, bit_width, then
  // offset / byte_len / checksum / base. The trailer is 12 bytes.
  const size_t kEntry = 35;
  const size_t kTrailer = 12;

  {  // A flipped bit_width can never reach the decoder.
    const std::string path = PartPath(dir, 0);
    auto info =
        io::WritePartitionFile(t, 0, t.num_rows(), path,
                               io::EncodingMode::kBitpack);
    ASSERT_TRUE(info.ok());
    const size_t footer_off = info->file_bytes - kTrailer - n_cols * kEntry;
    FlipByte(path, static_cast<long>(footer_off + cat * kEntry + 2));
    auto bad = io::ReadPartitionColumns(path, t.schema(), dicts,
                                        storage::ColumnSet::Of({cat}));
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("bit width"), std::string::npos)
        << bad.status().ToString();
  }
  {  // An unknown encoding tag is rejected at footer parse.
    const std::string path = PartPath(dir, 1);
    auto info =
        io::WritePartitionFile(t, 0, t.num_rows(), path,
                               io::EncodingMode::kBitpack);
    ASSERT_TRUE(info.ok());
    const size_t footer_off = info->file_bytes - kTrailer - n_cols * kEntry;
    FlipByte(path, static_cast<long>(footer_off + cat * kEntry + 1));
    auto bad = io::ReadPartitionFile(path, t.schema(), dicts);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("encoding"), std::string::npos)
        << bad.status().ToString();
  }
}

TEST(PartitionFile, V1RawFileStillReadable) {
  // Hand-write a version-1 file (raw-only segments, 25-byte footer
  // entries): v2 readers must keep opening spills from before the
  // encoding change.
  storage::Schema schema({{"n", storage::ColumnType::kNumeric},
                          {"c", storage::ColumnType::kCategorical}});
  auto dict = std::make_shared<storage::Dictionary>();
  dict->GetOrAdd("a");
  dict->GetOrAdd("b");
  dict->GetOrAdd("c");
  const std::vector<double> nums = {1.5, -2.25, 0.0, 1e9};
  const std::vector<int32_t> codes = {0, 1, 1, 2};

  BinaryWriter w;
  w.PutU32(0x50335350u);  // 'PS3P'
  w.PutU32(1u);           // version 1
  w.PutU64(nums.size());
  w.PutU32(2u);
  const uint64_t num_off = w.buffer().size();
  for (double v : nums) w.PutDouble(v);
  const uint64_t num_len = w.buffer().size() - num_off;
  const uint64_t cat_off = w.buffer().size();
  for (int32_t v : codes) w.PutI32(v);
  const uint64_t cat_len = w.buffer().size() - cat_off;
  const uint64_t footer_off = w.buffer().size();
  w.PutU8(0);  // numeric
  w.PutU64(num_off);
  w.PutU64(num_len);
  w.PutU64(Fnv1a64(w.buffer().data() + num_off, num_len));
  w.PutU8(1);  // categorical
  w.PutU64(cat_off);
  w.PutU64(cat_len);
  w.PutU64(Fnv1a64(w.buffer().data() + cat_off, cat_len));
  w.PutU64(footer_off);
  w.PutU32(0x50335350u);

  const std::string dir = MakeSpillDir();
  const std::string path = PartPath(dir, 0);
  ASSERT_TRUE(w.WriteFile(path).ok());

  std::vector<std::shared_ptr<storage::Dictionary>> dicts = {nullptr, dict};
  auto loaded = io::ReadPartitionFile(path, schema, dicts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), nums.size());
  for (size_t r = 0; r < nums.size(); ++r) {
    uint64_t want, got;
    const double gv = loaded->column(0).NumericAt(r);
    std::memcpy(&want, &nums[r], sizeof(want));
    std::memcpy(&got, &gv, sizeof(got));
    EXPECT_EQ(want, got) << "row " << r;
    EXPECT_EQ(loaded->column(1).CodeAt(r), codes[r]) << "row " << r;
  }
}

TEST(PartitionFile, V2UnknownEncodingIdIsRejected) {
  // Forward-compat: hand-write a well-formed v2 file (valid magic,
  // footer geometry, and FNV checksums) whose categorical segment
  // carries an encoding id from a future format revision. Today's
  // reader must surface Status at footer parse — never decode the
  // payload as some other encoding, and never crash — for both full
  // reads and reads pruned to the still-valid column.
  storage::Schema schema({{"n", storage::ColumnType::kNumeric},
                          {"c", storage::ColumnType::kCategorical}});
  auto dict = std::make_shared<storage::Dictionary>();
  dict->GetOrAdd("a");
  dict->GetOrAdd("b");
  const std::vector<double> nums = {3.5, -0.25, 42.0, 7e8};
  const std::vector<int32_t> codes = {1, 0, 1, 0};
  const uint8_t kFutureEncoding = 3;  // one past kForDelta

  BinaryWriter w;
  w.PutU32(0x50335350u);  // 'PS3P'
  w.PutU32(2u);           // version 2
  w.PutU64(nums.size());
  w.PutU32(2u);
  const uint64_t num_off = w.buffer().size();
  for (double v : nums) w.PutDouble(v);
  const uint64_t num_len = w.buffer().size() - num_off;
  const uint64_t cat_off = w.buffer().size();
  for (int32_t v : codes) w.PutI32(v);
  const uint64_t cat_len = w.buffer().size() - cat_off;
  const uint64_t footer_off = w.buffer().size();
  w.PutU8(0);  // numeric, raw encoding
  w.PutU8(0);
  w.PutU8(0);
  w.PutU64(num_off);
  w.PutU64(num_len);
  w.PutU64(Fnv1a64(w.buffer().data() + num_off, num_len));
  w.PutU64(0);  // base (unused for raw)
  w.PutU8(1);  // categorical, future encoding
  w.PutU8(kFutureEncoding);
  w.PutU8(0);
  w.PutU64(cat_off);
  w.PutU64(cat_len);
  w.PutU64(Fnv1a64(w.buffer().data() + cat_off, cat_len));
  w.PutU64(0);
  w.PutU64(footer_off);
  w.PutU32(0x50335350u);

  const std::string dir = MakeSpillDir();
  const std::string path = PartPath(dir, 0);
  ASSERT_TRUE(w.WriteFile(path).ok());

  std::vector<std::shared_ptr<storage::Dictionary>> dicts = {nullptr, dict};
  auto full = io::ReadPartitionFile(path, schema, dicts);
  ASSERT_FALSE(full.ok());
  EXPECT_NE(full.status().message().find("unknown segment encoding"),
            std::string::npos)
      << full.status().ToString();
  // Pruning to the valid numeric column does not rescue the file: the
  // footer is rejected as a whole, so a future-format spill can never
  // partially decode into a wrong answer.
  auto pruned = io::ReadPartitionColumns(path, schema, dicts,
                                         storage::ColumnSet::Of({0}));
  ASSERT_FALSE(pruned.ok());
  EXPECT_NE(pruned.status().message().find("unknown segment encoding"),
            std::string::npos)
      << pruned.status().ToString();

  // Same bytes with today's encoding id decode fine — the rejection
  // above is the unknown id, not some other malformation of the file.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(footer_off + 35 + 1), SEEK_SET),
            0);
  std::fputc(0, f);  // raw
  std::fclose(f);
  auto fixed = io::ReadPartitionFile(path, schema, dicts);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  ASSERT_EQ(fixed->num_rows(), nums.size());
  for (size_t r = 0; r < codes.size(); ++r) {
    EXPECT_EQ(fixed->column(1).CodeAt(r), codes[r]) << "row " << r;
  }
}

// ---------------------------------------------------------------- store

TEST(PartitionStore, SpillOpenFetchRoundtrip) {
  auto bundle = workload::MakeKdd(900, /*seed=*/11);
  storage::PartitionedTable pt(bundle.table, 9);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_partitions(), pt.num_partitions());
  EXPECT_EQ((*store)->num_rows(), bundle.table->num_rows());
  EXPECT_EQ((*store)->schema().num_columns(),
            bundle.table->schema().num_columns());

  size_t total = 0;
  for (size_t p = 0; p < (*store)->num_partitions(); ++p) {
    EXPECT_EQ((*store)->partition_rows(p), pt.partition_rows(p));
    total += (*store)->partition_bytes(p);
    auto pinned = (*store)->Fetch(p);
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
    EXPECT_EQ(pinned->view().num_rows(), pt.partition_rows(p));
  }
  EXPECT_EQ(total, (*store)->total_bytes());
}

TEST(PartitionStore, EncodedBytesAccountingSplitsDiskFromCache) {
  auto bundle = workload::MakeTpchStar(1200, /*seed=*/63);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir, {}).ok());  // kAuto
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const size_t n_cols = (*store)->schema().num_columns();

  size_t cat = n_cols;
  for (size_t c = 0; c < n_cols; ++c) {
    if ((*store)->schema().IsCategorical(c)) {
      cat = c;
      break;
    }
  }
  ASSERT_LT(cat, n_cols);

  for (size_t i = 0; i < (*store)->num_partitions(); ++i) {
    // Dictionary-coded segments must be at least 2x smaller on disk than
    // their decoded (cache-unit) size; decoded sizes never change.
    EXPECT_LE((*store)->encoded_column_bytes(i, cat) * 2,
              (*store)->column_bytes(i, cat))
        << "partition " << i;
    EXPECT_EQ((*store)->column_bytes(i, cat),
              (*store)->partition_rows(i) * 4);
  }

  // A single-column cold load reads exactly header + trailer + footer +
  // that segment's *encoded* bytes (20 + 12 + 35 * n_cols format
  // overhead), while the cache is charged the *decoded* size.
  {
    auto pinned = (*store)->Fetch(0, storage::ColumnSet::Of({cat}));
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  }
  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.segments_loaded, 1u);
  EXPECT_EQ(stats.bytes_loaded,
            20 + 12 + 35 * n_cols + (*store)->encoded_column_bytes(0, cat));
  EXPECT_EQ((*store)->cache().bytes_cached(),
            (*store)->column_bytes(0, cat));
}

TEST(PartitionStore, ForcedEncodingSpillsScanBitExact) {
  auto bundle = workload::MakeAria(700, /*seed=*/67);
  storage::PartitionedTable pt(bundle.table, 5);
  query::Query q = CountSumQuery(*bundle.table);
  const auto resident =
      query::ExactAnswer(q, query::EvaluateAllPartitions(q, pt, {}));

  for (io::EncodingMode mode :
       {io::EncodingMode::kRaw, io::EncodingMode::kBitpack,
        io::EncodingMode::kForDelta, io::EncodingMode::kAuto}) {
    const std::string dir = MakeSpillDir();
    io::PartitionStore::SpillOptions sopts;
    sopts.encoding = mode;
    ASSERT_TRUE(io::PartitionStore::Spill(pt, dir, sopts).ok());
    auto store = io::PartitionStore::Open(dir, {});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    io::ColdShardedSource cold(store->get(), 2);
    const auto spilled =
        query::ExactAnswer(q, query::EvaluateAllPartitions(q, cold, {}));
    ExpectAnswersEqual(resident, spilled);
  }
}

TEST(PartitionStore, CorruptManifestFailsOpen) {
  auto bundle = workload::MakeAria(300, /*seed=*/13);
  storage::PartitionedTable pt(bundle.table, 3);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  FlipByte(dir + "/manifest.ps3m", 30);
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().message().find("checksum"), std::string::npos);
}

TEST(PartitionStore, CorruptPartitionFailsFetchAndScan) {
  auto bundle = workload::MakeAria(400, /*seed=*/17);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  FlipByte(PartPath(dir, 2), 40);

  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Fetch(0).ok());
  EXPECT_FALSE((*store)->Fetch(2).ok());
  EXPECT_EQ((*store)->store_stats().load_errors, 1u);

  // A scan over the store fails that evaluation (thrown Status) without
  // poisoning the pool; a resident query afterwards still works.
  io::ColdShardedSource cold(store->get(), 2);
  query::Query q = CountSumQuery(*bundle.table);
  EXPECT_THROW(query::EvaluateAllPartitions(q, cold, {}), std::runtime_error);
  auto resident = query::EvaluateAllPartitions(q, pt, {});
  EXPECT_EQ(resident.size(), pt.num_partitions());

  // Through the scheduler: only the cold query's future is poisoned.
  runtime::QueryScheduler scheduler;
  storage::ShardedTable st(pt, 2);
  auto bad = scheduler.Submit(q, cold);
  auto good = scheduler.Submit(q, st);
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_FALSE(good.get().empty());
}

TEST(PartitionStore, FetchOutOfRange) {
  auto bundle = workload::MakeAria(100, /*seed=*/19);
  storage::PartitionedTable pt(bundle.table, 2);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->Fetch(99).ok());
  EXPECT_FALSE((*store)->Preload(99).ok());
}

// ---------------------------------------------------------------- cache

TEST(PartitionCache, EvictionKeepsBytesWithinBudget) {
  auto bundle = workload::MakeAria(1000, /*seed=*/23);
  storage::PartitionedTable pt(bundle.table, 10);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  io::PartitionStore::Options opts;
  auto probe = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(probe.ok());
  opts.cache_budget_bytes = (*probe)->total_bytes() / 3;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  for (size_t p = 0; p < (*store)->num_partitions(); ++p) {
    auto pinned = (*store)->Fetch(p);
    ASSERT_TRUE(pinned.ok());
    // Pin dropped at the end of each iteration: bytes must stay bounded.
    EXPECT_LE((*store)->cache().bytes_cached(),
              opts.cache_budget_bytes + (*store)->partition_bytes(p));
  }
  const io::CacheStats stats = (*store)->cache().stats();
  EXPECT_LE(stats.bytes_cached, opts.cache_budget_bytes);
  EXPECT_GT(stats.evictions, 0u);
  // Column-granular cache: one insert per (partition, column) segment.
  EXPECT_EQ(stats.inserts,
            (*store)->num_partitions() * (*store)->schema().num_columns());
  EXPECT_EQ(stats.bytes_pinned, 0u);
}

TEST(PartitionCache, PinnedEntriesSurviveEviction) {
  auto bundle = workload::MakeAria(800, /*seed=*/29);
  storage::PartitionedTable pt(bundle.table, 8);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  io::PartitionStore::Options opts;
  auto probe = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(probe.ok());
  // Budget of ~1.5 partitions: holding one pin forces inserts to evict
  // around it (and overshoot when nothing is evictable).
  opts.cache_budget_bytes = (*probe)->partition_bytes(0) * 3 / 2;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  auto pinned0 = (*store)->Fetch(0);
  ASSERT_TRUE(pinned0.ok());
  const double want = pinned0->view().NumericAt(0, 0);
  const std::vector<size_t> all_cols =
      storage::ColumnSet::All().Resolve((*store)->schema().num_columns());
  for (size_t p = 1; p < (*store)->num_partitions(); ++p) {
    ASSERT_TRUE((*store)->Fetch(p).ok());
    // The pinned partition's segments are never evicted and its view
    // stays valid.
    EXPECT_TRUE((*store)->cache().ContainsAll(0, all_cols));
    EXPECT_EQ(pinned0->view().NumericAt(0, 0), want);
  }
  EXPECT_GT((*store)->cache().stats().evictions, 0u);
  // Pinned bytes are the partition's *data* segments (format overhead —
  // header/footer — is not cached).
  EXPECT_EQ((*store)->cache().stats().bytes_pinned,
            (*store)->columns_bytes(0, all_cols));

  // Releasing the pin drains the overshoot back under budget.
  pinned0 = Status::Internal("replaced");  // drop the pin
  EXPECT_LE((*store)->cache().bytes_cached(), opts.cache_budget_bytes);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
}

TEST(PartitionStore, SingleFlightColdLoads) {
  auto bundle = workload::MakeAria(500, /*seed=*/31);
  storage::PartitionedTable pt(bundle.table, 2);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  io::PartitionStore::Options opts;
  opts.simulated_load_delay_us = 3000;  // widen the race window
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<size_t> rows(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto pinned = (*store)->Fetch(0);
      EXPECT_TRUE(pinned.ok());
      if (pinned.ok()) rows[i] = pinned->view().num_rows();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(rows[i], pt.partition_rows(0));
  // One cold load served every concurrent fetch.
  EXPECT_EQ((*store)->store_stats().cold_loads, 1u);
}

// ------------------------------------------------------------- prefetch

TEST(PrefetchPipeline, StagesPartitionsIntoCache) {
  auto bundle = workload::MakeKdd(600, /*seed=*/37);
  storage::PartitionedTable pt(bundle.table, 6);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline pipeline(store->get(), &scheduler);
  const size_t n_cols = (*store)->schema().num_columns();
  const std::vector<size_t> all_cols =
      storage::ColumnSet::All().Resolve(n_cols);
  pipeline.Stage({0, 1, 2});
  pipeline.Drain();
  EXPECT_TRUE((*store)->cache().ContainsAll(0, all_cols));
  EXPECT_TRUE((*store)->cache().ContainsAll(1, all_cols));
  EXPECT_TRUE((*store)->cache().ContainsAll(2, all_cols));
  EXPECT_EQ(pipeline.stats().staged, 3u);

  // A staged partition is a cache hit for the scan path (one hit per
  // column segment).
  const io::CacheStats before = (*store)->cache().stats();
  ASSERT_TRUE((*store)->Fetch(1).ok());
  EXPECT_EQ((*store)->cache().stats().hits, before.hits + n_cols);
  // Restaging cached partitions is a no-op.
  pipeline.Stage({0, 1, 2});
  pipeline.Drain();
  EXPECT_EQ(pipeline.stats().skipped_cached, 3u);
}

// ------------------------------------------------------ column pruning

TEST(PartitionFile, ColumnPrunedReadMatchesFullAndMovesFewerBytes) {
  auto bundle = workload::MakeTpchStar(700, /*seed=*/47);
  const storage::Table& t = *bundle.table;
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::WritePartitionFile(t, 0, t.num_rows(), PartPath(dir, 0)).ok());
  auto dicts = SharedDicts(t);

  size_t full_bytes = 0;
  auto full = io::ReadPartitionColumns(PartPath(dir, 0), t.schema(), dicts,
                                       storage::ColumnSet::All(),
                                       &full_bytes);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Prune to two columns: one numeric, one categorical.
  std::vector<size_t> keep;
  for (size_t c = 0; c < t.schema().num_columns() && keep.size() < 2; ++c) {
    if ((keep.empty() && t.schema().IsNumeric(c)) ||
        (keep.size() == 1 && t.schema().IsCategorical(c))) {
      keep.push_back(c);
    }
  }
  ASSERT_EQ(keep.size(), 2u);
  size_t pruned_bytes = 0;
  auto pruned = io::ReadPartitionColumns(PartPath(dir, 0), t.schema(), dicts,
                                         storage::ColumnSet::Of(keep),
                                         &pruned_bytes);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_LT(pruned_bytes, full_bytes);

  // Requested columns are bit-identical to the full read; unrequested
  // columns are empty but correctly typed; the row count survives.
  EXPECT_EQ(pruned->num_rows(), t.num_rows());
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    const bool kept = std::find(keep.begin(), keep.end(), c) != keep.end();
    if (!kept) {
      EXPECT_EQ(pruned->column(c).size(), 0u) << "col " << c;
      continue;
    }
    ASSERT_EQ(pruned->column(c).size(), t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.schema().IsNumeric(c)) {
        uint64_t want, got;
        double wv = full->column(c).NumericAt(r);
        double gv = pruned->column(c).NumericAt(r);
        std::memcpy(&want, &wv, sizeof(want));
        std::memcpy(&got, &gv, sizeof(got));
        ASSERT_EQ(want, got) << "col " << c << " row " << r;
      } else {
        ASSERT_EQ(pruned->column(c).CodeAt(r), full->column(c).CodeAt(r));
      }
    }
  }
}

TEST(PartitionFile, PrunedReadVerifiesOnlyWhatItDecodes) {
  auto bundle = workload::MakeAria(300, /*seed=*/49);
  const storage::Table& t = *bundle.table;
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::WritePartitionFile(t, 0, t.num_rows(), PartPath(dir, 0)).ok());
  auto dicts = SharedDicts(t);

  // Corrupt a byte inside column 0's segment (the header is 20 bytes).
  FlipByte(PartPath(dir, 0), 24);

  // A read that requests column 0 must surface the checksum mismatch as
  // a Status — never a wrong answer.
  auto bad = io::ReadPartitionColumns(PartPath(dir, 0), t.schema(), dicts,
                                      storage::ColumnSet::Of({0}));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("checksum"), std::string::npos)
      << bad.status().ToString();

  // A read that prunes column 0 away never decodes the corrupt bytes, so
  // it succeeds — and its requested column is intact.
  ASSERT_GE(t.schema().num_columns(), 2u);
  auto good = io::ReadPartitionColumns(PartPath(dir, 0), t.schema(), dicts,
                                       storage::ColumnSet::Of({1}));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good->column(1).size(), t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.schema().IsNumeric(1)) {
      EXPECT_EQ(good->column(1).NumericAt(r), t.column(1).NumericAt(r));
    } else {
      EXPECT_EQ(good->column(1).CodeAt(r), t.column(1).CodeAt(r));
    }
  }
}

TEST(PartitionStore, PartialResidencyUpgradeFetchesOnlyMissingSegments) {
  auto bundle = workload::MakeTpchStar(900, /*seed=*/53);
  storage::PartitionedTable pt(bundle.table, 3);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());
  const size_t n_cols = (*store)->schema().num_columns();
  ASSERT_GE(n_cols, 3u);

  // First scan reads columns {0, 1}.
  {
    auto pinned = (*store)->Fetch(0, storage::ColumnSet::Of({0, 1}));
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  }
  io::StoreStats after_first = (*store)->store_stats();
  EXPECT_EQ(after_first.segments_loaded, 2u);
  EXPECT_TRUE((*store)->cache().ContainsAll(0, {0, 1}));
  EXPECT_FALSE((*store)->cache().Contains(io::ColumnKey{0, 2}));

  // Second scan widens to {0, 1, 2}: only the missing segment loads.
  auto pinned = (*store)->Fetch(0, storage::ColumnSet::Of({0, 1, 2}));
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  io::StoreStats after_second = (*store)->store_stats();
  EXPECT_EQ(after_second.segments_loaded - after_first.segments_loaded, 1u);
  EXPECT_GT(after_second.bytes_loaded, after_first.bytes_loaded);
  EXPECT_TRUE((*store)->cache().ContainsAll(0, {0, 1, 2}));

  // The upgraded view is bit-identical to the resident partition on
  // every requested column.
  const storage::Partition resident = pt.partition(0);
  for (size_t c : {size_t{0}, size_t{1}, size_t{2}}) {
    for (size_t r = 0; r < resident.num_rows(); ++r) {
      if ((*store)->schema().IsNumeric(c)) {
        uint64_t want, got;
        double wv = resident.NumericAt(c, r);
        double gv = pinned->view().NumericAt(c, r);
        std::memcpy(&want, &wv, sizeof(want));
        std::memcpy(&got, &gv, sizeof(got));
        ASSERT_EQ(want, got) << "col " << c << " row " << r;
      } else {
        ASSERT_EQ(pinned->view().CodeAt(c, r), resident.CodeAt(c, r));
      }
    }
  }
}

TEST(ColdScan, EvaluatorPrunesToReferencedColumns) {
  auto bundle = workload::MakeTpchStar(2000, /*seed=*/59);
  storage::PartitionedTable pt(bundle.table, 8);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());
  const size_t n_cols = (*store)->schema().num_columns();

  query::Query q = CountSumQuery(*bundle.table);
  const storage::ColumnSet refs =
      query::ReferencedColumns(query::CompileQuery(q));
  const size_t n_refs = refs.Resolve(n_cols).size();
  ASSERT_LT(n_refs, n_cols) << "query must not reference every column";

  io::ColdShardedSource cold(store->get(), 2);
  auto cold_answers = query::EvaluateAllPartitions(q, cold, {});
  // The scan loaded only the referenced segments of each partition...
  EXPECT_EQ((*store)->store_stats().segments_loaded,
            n_refs * (*store)->num_partitions());
  // ...and the pruned answers are identical to the resident scan's.
  auto resident = query::EvaluateAllPartitions(q, pt, {});
  ExpectAnswersEqual(query::ExactAnswer(q, resident),
                     query::ExactAnswer(q, cold_answers));

  // COUNT(*) with no predicate references no columns at all: partition
  // row counts come from the manifest, so zero new segments load.
  const io::StoreStats before = (*store)->store_stats();
  query::Query count_star;
  count_star.aggregates.push_back(query::Aggregate::Count());
  auto counted = query::EvaluateAllPartitions(count_star, cold, {});
  EXPECT_EQ((*store)->store_stats().segments_loaded, before.segments_loaded);
  auto expected = query::ExactAnswer(
      count_star, query::EvaluateAllPartitions(count_star, pt, {}));
  ExpectAnswersEqual(expected, query::ExactAnswer(count_star, counted));
}

TEST(PrefetchPipeline, AdaptiveDistanceWidensWhenLoadsLagScans) {
  auto bundle = workload::MakeKdd(1200, /*seed=*/61);
  storage::PartitionedTable pt(bundle.table, 12);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  io::PartitionStore::Options opts;
  opts.simulated_load_delay_us = 20000;  // loads far slower than "scans"
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline pipeline(store->get(), &scheduler);
  EXPECT_EQ(pipeline.stats().ahead_shards, 1u);  // no samples yet

  const auto shards = storage::AssignShards(pt.num_partitions(), 12,
                                            storage::ShardAssignment::kRange);
  // First shard entry: fixed next-shard lookahead; draining it seeds the
  // load-latency EWMA with the 20ms staging pass.
  pipeline.StageAhead(shards, 0, storage::ColumnSet::All());
  pipeline.Drain();
  // Back-to-back shard entries (a scan far faster than the loads): the
  // scan-interval EWMA collapses toward zero while loads stay at ~20ms,
  // so the stage-ahead distance must widen beyond one shard. Many quick
  // entries, so the EWMA (alpha 1/4) decays structurally — a few
  // scheduler preemptions between iterations (sanitizer CI) can't hold
  // it at the load latency.
  for (int iter = 0; iter < 20; ++iter) {
    pipeline.StageAhead(shards, 1 + (iter % 8), storage::ColumnSet::All());
  }
  EXPECT_GT(pipeline.stats().ahead_shards, 1u);
  EXPECT_GT(pipeline.stats().staged, 2u);
  pipeline.Drain();
  EXPECT_EQ(pipeline.stats().load_errors, 0u);
}

// --------------------------------------------- cold scans, concurrency

TEST(ColdScan, BitExactWithResidentUnderBothPolicies) {
  auto bundle = workload::MakeTpchStar(3000, /*seed=*/41);
  storage::PartitionedTable pt(bundle.table, 11);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  io::PartitionStore::Options opts;
  auto probe = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(probe.ok());
  opts.cache_budget_bytes = (*probe)->total_bytes() / 4;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  query::Query q = CountSumQuery(*bundle.table);
  for (auto policy :
       {query::ExecPolicy::kScalar, query::ExecPolicy::kVectorized}) {
    query::ExecOptions eopts;
    eopts.policy = policy;
    eopts.num_threads = 3;
    auto resident = query::EvaluateAllPartitions(q, pt, eopts);
    io::ColdShardedSource cold(store->get(), 4);
    auto colded = query::EvaluateAllPartitions(q, cold, eopts);
    ExpectAnswersEqual(query::ExactAnswer(q, resident),
                       query::ExactAnswer(q, colded));
  }
}

TEST(ColdScan, ConcurrentQueriesSmallCachePinnedScans) {
  // Several queries in flight over one cold store whose budget is far
  // smaller than the table: pinning keeps every in-flight partition
  // valid while eviction churns around them. Run under TSan in CI.
  auto bundle = workload::MakeTpchStar(4000, /*seed=*/43);
  storage::PartitionedTable pt(bundle.table, 16);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  io::PartitionStore::Options opts;
  auto probe = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(probe.ok());
  opts.cache_budget_bytes = (*probe)->total_bytes() / 5;
  opts.simulated_load_delay_us = 200;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  query::Query q = CountSumQuery(*bundle.table);
  const auto expected = query::ExactAnswer(
      q, query::EvaluateAllPartitions(q, pt,
                                      {query::ExecPolicy::kScalar, 1}));

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline pipeline(store->get(), &scheduler);
  io::ColdShardedSource with_prefetch(store->get(), 4,
                                      storage::ShardAssignment::kRange,
                                      &pipeline);
  io::ColdShardedSource no_prefetch(store->get(), 4);

  std::vector<std::future<query::QueryAnswer>> futures;
  for (int i = 0; i < 8; ++i) {
    query::ExecOptions eopts;
    eopts.policy = (i % 2 == 0) ? query::ExecPolicy::kVectorized
                                : query::ExecPolicy::kScalar;
    eopts.num_threads = 2;
    futures.push_back(scheduler.Submit(
        q, (i % 3 == 0) ? no_prefetch : with_prefetch, eopts));
  }
  for (auto& f : futures) ExpectAnswersEqual(expected, f.get());
  EXPECT_EQ((*store)->store_stats().load_errors, 0u);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
}

// ------------------------------------- cancellation, pins, and budget

TEST(PartitionStoreCancel, CancelledFetchReturnsCancelledAndReleasesPins) {
  auto bundle = workload::MakeAria(500, /*seed=*/71);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());

  CancelToken token;
  token.Cancel();
  auto pinned = (*store)->Fetch(0, storage::ColumnSet::All(), &token);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), StatusCode::kCancelled);
  // An abort is not a load error — not in the aggregate counter and not
  // in any per-kind one — leaves no pins, and leaves the partition
  // fetchable by the next (healthy) caller.
  const io::StoreStats aborted = (*store)->store_stats();
  EXPECT_EQ(aborted.load_errors, 0u);
  EXPECT_EQ(aborted.transient_errors, 0u);
  EXPECT_EQ(aborted.corrupt_errors, 0u);
  EXPECT_EQ(aborted.lost_errors, 0u);
  EXPECT_EQ(aborted.retries, 0u);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
  auto healthy = (*store)->Fetch(0);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->view().num_rows(), pt.partition_rows(0));
}

TEST(PartitionStoreCancel, CancelledWaiterUnblocksWhileLoaderCompletes) {
  auto bundle = workload::MakeAria(600, /*seed=*/73);
  storage::PartitionedTable pt(bundle.table, 2);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  io::PartitionStore::Options opts;
  opts.simulated_load_delay_us = 30000;  // wide single-flight window
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  // The loader claims partition 0's segments and sleeps through the
  // simulated RTT; the waiter piggybacks on the same single-flight load,
  // then its token fires — it must unblock with kCancelled well before
  // the loader lands, and the loader must still complete cleanly.
  CancelToken token;
  std::promise<void> loader_started;
  std::thread loader([&] {
    loader_started.set_value();
    auto pinned = (*store)->Fetch(0);
    EXPECT_TRUE(pinned.ok());
  });
  loader_started.get_future().wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    token.Cancel();
  });
  {
    auto waiting = (*store)->Fetch(0, storage::ColumnSet::All(), &token);
    // Either the waiter lost the race and the load had already landed
    // (ok, pins dropped with this scope) or — the shape this test aims
    // at — it aborted out of the wait.
    if (!waiting.ok()) {
      EXPECT_EQ(waiting.status().code(), StatusCode::kCancelled);
    }
  }
  canceller.join();
  loader.join();
  EXPECT_EQ((*store)->store_stats().load_errors, 0u);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
}

TEST(ColdScanCancel, AbortedColdQueryReleasesEverythingAndSparesSiblings) {
  auto bundle = workload::MakeTpchStar(2000, /*seed=*/79);
  storage::PartitionedTable pt(bundle.table, 12);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  io::PartitionStore::Options opts;
  opts.simulated_load_delay_us = 500;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  query::Query q = CountSumQuery(*bundle.table);
  const auto expected = query::ExactAnswer(
      q, query::EvaluateAllPartitions(q, pt,
                                      {query::ExecPolicy::kScalar, 1}));

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline pipeline(store->get(), &scheduler);
  io::ColdShardedSource cold(store->get(), 4,
                             storage::ShardAssignment::kRange, &pipeline);

  // A cold query cancelled mid-flight (after its first chunks ran) and a
  // healthy sibling over the same store. The abort must resolve the
  // future with QueryAborted, release every cache pin and all read-ahead
  // budget, and leave the sibling's answer bit-exact.
  for (int round = 0; round < 3; ++round) {
    runtime::SubmitOptions submit;
    submit.cancel = std::make_shared<CancelToken>();
    if (round == 0) submit.cancel->Cancel();  // deterministic abort
    query::ExecOptions eopts;
    eopts.num_threads = 2;
    auto victim = scheduler.Submit(q, cold, submit, eopts);
    auto sibling = scheduler.Submit(q, cold, eopts);
    if (round != 0) submit.cancel->Cancel();  // racy abort
    try {
      ExpectAnswersEqual(expected, victim.get());
      EXPECT_NE(round, 0) << "pre-cancelled query must abort";
    } catch (const QueryAborted& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
    }
    ExpectAnswersEqual(expected, sibling.get());
  }
  pipeline.Drain();
  // The no-leak invariants the abort paths must uphold.
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
  EXPECT_EQ(pipeline.stats().inflight_bytes, 0u);
  EXPECT_EQ(pipeline.stats().inflight_batch_bytes, 0u);
  EXPECT_EQ(pipeline.stats().inflight_interactive_bytes, 0u);
  EXPECT_EQ((*store)->store_stats().load_errors, 0u);
}

TEST(PrefetchBudget, FailedColdLoadsReturnAllReservedBudget) {
  // A mid-table corrupt partition makes a slice of every staging pass
  // fail: reservations must come back on the error path too, and demand
  // fetches of the corrupt partition must not leak pins.
  auto bundle = workload::MakeKdd(1200, /*seed=*/83);
  storage::PartitionedTable pt(bundle.table, 8);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  FlipByte(PartPath(dir, 3), 40);
  auto store = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(store.ok());

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline pipeline(store->get(), &scheduler);
  pipeline.Stage({0, 1, 2, 3, 4, 5, 6, 7});
  pipeline.Drain();
  EXPECT_GE(pipeline.stats().load_errors, 1u);
  EXPECT_EQ(pipeline.stats().inflight_bytes, 0u);

  auto bad = (*store)->Fetch(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);

  // Budget and cache still serviceable: a second staging pass over the
  // healthy partitions and a demand fetch both proceed normally.
  pipeline.Stage({0, 1, 2});
  pipeline.Drain();
  EXPECT_EQ(pipeline.stats().inflight_bytes, 0u);
  auto good = (*store)->Fetch(1);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->view().num_rows(), pt.partition_rows(1));
}

TEST(PrefetchBudget, InteractiveReserveSurvivesBatchPressure) {
  // With the read-ahead pool sized to ~one partition's encoded bytes and
  // a 50% interactive reserve, batch staging must stop at its share while
  // interactive staging can still admit — the isolation the per-class
  // split exists for.
  auto bundle = workload::MakeKdd(1500, /*seed=*/89);
  storage::PartitionedTable pt(bundle.table, 10);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());
  io::PartitionStore::Options sopts;
  sopts.simulated_load_delay_us = 20000;  // loads stay in flight a while
  auto store = io::PartitionStore::Open(dir, sopts);
  ASSERT_TRUE(store.ok());

  const std::vector<size_t> all_cols =
      storage::ColumnSet::All().Resolve((*store)->schema().num_columns());
  size_t max_part = 0;
  for (size_t p = 0; p < (*store)->num_partitions(); ++p) {
    max_part = std::max(max_part,
                        (*store)->encoded_columns_bytes(p, all_cols));
  }

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline::Options popts;
  popts.readahead_bytes = max_part * 2;
  popts.interactive_reserve_fraction = 0.5;
  io::PrefetchPipeline pipeline(store->get(), &scheduler, popts);

  // Batch staging of everything: admission must cap batch in-flight
  // bytes at half the pool and skip the rest.
  pipeline.Stage({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_LE(pipeline.stats().inflight_batch_bytes, max_part * 2 / 2 + 1);
  EXPECT_GT(pipeline.stats().skipped_budget, 0u);
  // Interactive staging still admits into the reserved share while the
  // batch loads are in flight (pick a partition batch didn't claim; with
  // batch capped at half the pool, at least the last one is unclaimed).
  const io::PrefetchPipeline::PrefetchStats mid = pipeline.stats();
  pipeline.Stage({9}, storage::ColumnSet::All(), QueryClass::kInteractive);
  const io::PrefetchPipeline::PrefetchStats after = pipeline.stats();
  EXPECT_GT(after.staged + after.skipped_cached,
            mid.staged + mid.skipped_cached)
      << "interactive staging must not be starved by batch pressure";
  pipeline.Drain();
  EXPECT_EQ(pipeline.stats().inflight_bytes, 0u);
}

// ------------------------------------- fault injection battery

/// Store options with a seeded fault plan and a fast (but semantically
/// default) backoff schedule so the battery doesn't sleep for real.
io::PartitionStore::Options FaultOptions(io::FaultPlan plan) {
  io::PartitionStore::Options opts;
  opts.faults = std::make_shared<io::FaultInjector>(std::move(plan));
  opts.retry.backoff_base_us = 50;
  opts.retry.backoff_cap_us = 500;
  return opts;
}

/// Bitwise comparison of a fetched partition view against the resident
/// partition it was spilled from, over every column.
void ExpectPartitionBitExact(const storage::Schema& schema,
                             const storage::Partition& resident,
                             const storage::Partition& got) {
  ASSERT_EQ(got.num_rows(), resident.num_rows());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    for (size_t r = 0; r < resident.num_rows(); ++r) {
      if (schema.IsNumeric(c)) {
        uint64_t want, have;
        double wv = resident.NumericAt(c, r);
        double gv = got.NumericAt(c, r);
        std::memcpy(&want, &wv, sizeof(want));
        std::memcpy(&have, &gv, sizeof(have));
        ASSERT_EQ(want, have) << "col " << c << " row " << r;
      } else {
        ASSERT_EQ(got.CodeAt(c, r), resident.CodeAt(c, r))
            << "col " << c << " row " << r;
      }
    }
  }
}

/// A rule failing every column of `partition` on attempts
/// [attempt_begin, attempt_end) with `kind`.
io::FaultRule RuleFor(size_t partition, int attempt_begin, int attempt_end,
                      io::FaultKind kind) {
  io::FaultRule rule;
  rule.partition = partition;
  rule.attempt_begin = attempt_begin;
  rule.attempt_end = attempt_end;
  rule.kind = kind;
  return rule;
}

TEST(FaultInjector, SeedReplaysIdenticalSequence) {
  io::FaultPlan plan;
  plan.seed = 42;
  plan.transient_rate = 0.3;
  plan.corrupt_rate = 0.2;
  plan.latency_rate = 0.25;
  plan.lost_partitions = {7};

  io::FaultInjector a(plan);
  io::FaultInjector b(plan);
  bool any_fault = false;
  for (size_t p = 0; p < 8; ++p) {
    for (size_t c = 0; c < 4; ++c) {
      for (int attempt = 0; attempt < 6; ++attempt) {
        // Peek is pure and Next consumes exactly the peeked attempt.
        const io::FaultDecision peek = a.Peek(p, c, attempt);
        const io::FaultDecision next = a.Next(p, c);
        EXPECT_EQ(next.kind, peek.kind);
        EXPECT_EQ(next.extra_latency_us, peek.extra_latency_us);
        EXPECT_EQ(next.attempt, attempt);
        // A second injector over the same plan replays bit-identically.
        const io::FaultDecision other = b.Next(p, c);
        EXPECT_EQ(other.kind, next.kind);
        EXPECT_EQ(other.extra_latency_us, next.extra_latency_us);
        EXPECT_EQ(other.attempt, next.attempt);
        if (next.kind != io::FaultKind::kNone) any_fault = true;
      }
    }
  }
  EXPECT_TRUE(any_fault) << "rates this high must fire somewhere";

  // Lost dominates every rate draw, on every attempt.
  for (int attempt = 0; attempt < 6; ++attempt) {
    EXPECT_EQ(a.Peek(7, 0, attempt).kind, io::FaultKind::kLost);
  }
  EXPECT_TRUE(a.IsLost(7));
  EXPECT_FALSE(a.IsLost(6));

  // A different seed gives a different sequence somewhere.
  io::FaultPlan reseeded = plan;
  reseeded.seed = 43;
  io::FaultInjector c(reseeded);
  int diffs = 0;
  for (size_t p = 0; p < 7; ++p) {
    for (int attempt = 0; attempt < 6; ++attempt) {
      if (c.Peek(p, 0, attempt).kind != b.Peek(p, 0, attempt).kind) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0);

  // ResetAttempts replays the sequence from attempt 0.
  a.ResetAttempts();
  const io::FaultDecision replay = a.Next(3, 1);
  EXPECT_EQ(replay.attempt, 0);
  EXPECT_EQ(replay.kind, a.Peek(3, 1, 0).kind);
}

TEST(FaultInjector, CorruptBytesIsDeterministicAndSingleBit) {
  std::vector<uint8_t> buf(257, 0xA5);
  std::vector<uint8_t> ref = buf;
  io::FaultInjector::CorruptBytes(9, 2, 1, 0, buf.data(), buf.size());
  size_t flipped_bits = 0;
  for (size_t i = 0; i < buf.size(); ++i) {
    uint8_t delta = buf[i] ^ ref[i];
    while (delta != 0) {
      flipped_bits += delta & 1u;
      delta >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1u);
  // Same coordinate flips the same bit: corrupting twice restores.
  io::FaultInjector::CorruptBytes(9, 2, 1, 0, buf.data(), buf.size());
  EXPECT_EQ(buf, ref);
}

TEST(FaultBattery, TransientFailuresRetryAndRecoverBitExact) {
  auto bundle = workload::MakeKdd(700, /*seed=*/101);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Partition 1 fails transient on attempts 0 and 1 of every column,
  // then reads clean: the default 3-attempt policy must absorb it.
  io::FaultPlan plan;
  plan.rules.push_back(RuleFor(1, 0, 2, io::FaultKind::kTransient));
  auto store = io::PartitionStore::Open(dir, FaultOptions(plan));
  ASSERT_TRUE(store.ok());

  auto pinned = (*store)->Fetch(1);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->view().num_rows(), pt.partition_rows(1));

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.cold_loads, 1u);
  EXPECT_EQ(stats.transient_errors, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.load_errors, 0u);
  EXPECT_EQ(stats.corrupt_errors, 0u);
  EXPECT_EQ(stats.lost_errors, 0u);

  // The recovered data serves a scan bit-identical to the resident one.
  query::Query q = CountSumQuery(*bundle.table);
  const auto expected = query::ExactAnswer(
      q, query::EvaluateAllPartitions(q, pt,
                                      {query::ExecPolicy::kScalar, 1}));
  runtime::QueryScheduler scheduler;
  io::ColdShardedSource cold(store->get(), 2);
  ExpectAnswersEqual(expected, scheduler.Submit(q, cold).get());
}

TEST(FaultBattery, RetryExhaustionSurfacesUnavailable) {
  auto bundle = workload::MakeAria(500, /*seed=*/103);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Partition 0 never reads clean; the retry loop must give up after
  // max_attempts passes and surface the retryable class.
  io::FaultPlan plan;
  plan.rules.push_back(RuleFor(0, 0, 1000, io::FaultKind::kTransient));
  auto store = io::PartitionStore::Open(dir, FaultOptions(plan));
  ASSERT_TRUE(store.ok());

  auto pinned = (*store)->Fetch(0);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(pinned.status().message().find("transient"), std::string::npos)
      << pinned.status().ToString();

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.load_errors, 1u);  // one failed load *step*
  EXPECT_EQ(stats.transient_errors, 3u);  // three failed passes under it
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);

  // Other partitions are untouched by partition 0's bad luck.
  auto healthy = (*store)->Fetch(1);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kClosed);
}

TEST(FaultBattery, CorruptThenCleanRefetchRecovers) {
  auto bundle = workload::MakeKdd(900, /*seed=*/107);
  storage::PartitionedTable pt(bundle.table, 6);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // The first read of partition 2's column 0 comes back bit-flipped;
  // the real checksum machinery must catch it and the single
  // evict-and-refetch must read clean bytes.
  io::FaultRule rule = RuleFor(2, 0, 1, io::FaultKind::kCorrupt);
  rule.column = 0;
  io::FaultPlan plan;
  plan.rules.push_back(rule);
  auto store = io::PartitionStore::Open(dir, FaultOptions(plan));
  ASSERT_TRUE(store.ok());

  auto pinned = (*store)->Fetch(2);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.corrupt_errors, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.load_errors, 0u);
  EXPECT_EQ(stats.transient_errors, 0u);

  // The refetched data is the spilled data, bit for bit.
  ExpectPartitionBitExact((*store)->schema(), pt.partition(2),
                          pinned->view());
}

TEST(FaultBattery, PersistentCorruptionSurfacesAfterOneRefetch) {
  auto bundle = workload::MakeKdd(600, /*seed=*/109);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Every read of partition 2 corrupts: the file is bad, not the link.
  // Exactly one refetch, then the corruption surfaces as kInternal —
  // never a wrong answer, and never an infinite refetch loop.
  io::FaultPlan plan;
  plan.rules.push_back(RuleFor(2, 0, 1000, io::FaultKind::kCorrupt));
  auto store = io::PartitionStore::Open(dir, FaultOptions(plan));
  ASSERT_TRUE(store.ok());

  auto pinned = (*store)->Fetch(2);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), StatusCode::kInternal);

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.corrupt_errors, 2u);  // original pass + the one refetch
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.load_errors, 1u);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
}

TEST(FaultBattery, LostPartitionFailsFastAndSparesTheBreaker) {
  auto bundle = workload::MakeAria(800, /*seed=*/113);
  storage::PartitionedTable pt(bundle.table, 8);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  io::FaultPlan plan;
  plan.lost_partitions = {3, 5};
  auto store = io::PartitionStore::Open(dir, FaultOptions(plan));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->LostPartitions(), (std::vector<size_t>{3, 5}));

  // Lost fails fast: no retries, no attempt consumed, named kind.
  for (int round = 0; round < 4; ++round) {
    auto pinned = (*store)->Fetch(3);
    ASSERT_FALSE(pinned.ok());
    EXPECT_EQ(pinned.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(pinned.status().message().find("lost"), std::string::npos);
  }
  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.lost_errors, 4u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.transient_errors, 0u);
  EXPECT_EQ(stats.load_errors, 4u);

  // Repeated lost hits must not trip the breaker: the reachable set
  // keeps serving even on a store with a low threshold.
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kClosed);
  auto healthy = (*store)->Fetch(0);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->view().num_rows(), pt.partition_rows(0));
}

TEST(FaultBattery, HedgeFiresOnLatencySpikeAndWinnerCancelsLoser) {
  auto bundle = workload::MakeKdd(800, /*seed=*/127);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Attempt 0 of partition 0 pays a 250ms spike; attempt 1 is clean.
  // With a 2ms fixed hedge delay the duplicate read fires, lands first,
  // and cancels the spiking primary — the fetch returns long before the
  // spike would have drained, with no error counted anywhere.
  io::FaultRule spike = RuleFor(0, 0, 1, io::FaultKind::kLatency);
  spike.latency_us = 250000;
  io::FaultPlan plan;
  plan.rules.push_back(spike);
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.hedge.enabled = true;
  opts.hedge.fixed_delay_us = 2000;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  const auto start = std::chrono::steady_clock::now();
  auto pinned = (*store)->Fetch(0);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->view().num_rows(), pt.partition_rows(0));
  EXPECT_LT(elapsed.count(), 200) << "hedge must beat the 250ms spike";

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.hedged_loads, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.load_errors, 0u);
  EXPECT_EQ(stats.transient_errors, 0u);
  EXPECT_EQ(stats.retries, 0u);

  // The hedged read's data is the spilled data, bit for bit.
  ExpectPartitionBitExact((*store)->schema(), pt.partition(0),
                          pinned->view());
}

TEST(FaultBattery, BreakerOpensFailsFastHalfOpensAndCloses) {
  auto bundle = workload::MakeAria(600, /*seed=*/131);
  storage::PartitionedTable pt(bundle.table, 6);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Partitions 0 and 1 are hopeless (always transient); 2 is healthy.
  // Single-attempt policy so every fetch is one load step, threshold 2
  // so two hopeless steps open the circuit.
  io::FaultPlan plan;
  plan.rules.push_back(RuleFor(0, 0, 1000, io::FaultKind::kTransient));
  plan.rules.push_back(RuleFor(1, 0, 1000, io::FaultKind::kTransient));
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.retry.max_attempts = 1;
  opts.breaker.failure_threshold = 2;
  opts.breaker.open_duration_us = 500000;  // 500ms cooldown
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  EXPECT_FALSE((*store)->Fetch(0).ok());
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE((*store)->Fetch(1).ok());
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kOpen);

  // Open fails fast — even a healthy partition is rejected, cheaply.
  auto rejected = (*store)->Fetch(2);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("circuit breaker"),
            std::string::npos);
  {
    const io::StoreStats stats = (*store)->store_stats();
    EXPECT_EQ(stats.breaker_opens, 1u);
    EXPECT_EQ(stats.breaker_open_rejects, 1u);
    EXPECT_EQ(stats.transient_errors, 2u);  // the reject read nothing
  }

  // After the cooldown one half-open probe is admitted; a failing probe
  // re-opens the circuit for another cooldown.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_FALSE((*store)->Fetch(0).ok());
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ((*store)->store_stats().breaker_opens, 2u);

  // A succeeding probe closes it and normal service resumes.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  auto probe = (*store)->Fetch(2);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kClosed);
  auto after = (*store)->Fetch(3);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

TEST(FaultBattery, AbortedHalfOpenProbeDoesNotWedgeBreaker) {
  auto bundle = workload::MakeAria(600, /*seed=*/149);
  storage::PartitionedTable pt(bundle.table, 6);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Partitions 0 and 1 are hopeless and open the circuit; the half-open
  // probe targets partition 2, whose first attempt rides a 300ms spike
  // and gets cancelled mid-spike; partition 3 is healthy.
  io::FaultPlan plan;
  plan.rules.push_back(RuleFor(0, 0, 1000, io::FaultKind::kTransient));
  plan.rules.push_back(RuleFor(1, 0, 1000, io::FaultKind::kTransient));
  io::FaultRule spike = RuleFor(2, 0, 1, io::FaultKind::kLatency);
  spike.latency_us = 300000;
  plan.rules.push_back(spike);
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.retry.max_attempts = 1;
  opts.breaker.failure_threshold = 2;
  opts.breaker.open_duration_us = 0;  // next load after open is the probe
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  EXPECT_FALSE((*store)->Fetch(0).ok());
  EXPECT_FALSE((*store)->Fetch(1).ok());
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kOpen);

  // The probe aborts mid-load. The probe slot must be released — a
  // leaked slot left the breaker half-open with the probe marked
  // in-flight forever, failing every later load fast: the store's
  // whole cold path wedged shut exactly when deadlines were firing.
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.Cancel();
  });
  auto probe = (*store)->Fetch(2, storage::ColumnSet::All(), &token);
  canceller.join();
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kCancelled);
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kOpen)
      << "aborted probe must release the slot back to open";
  EXPECT_EQ((*store)->store_stats().breaker_opens, 1u)
      << "an aborted probe is not a re-open";

  // With the slot free and the cooldown already elapsed, the next load
  // becomes a fresh probe and a healthy partition closes the circuit.
  auto after = (*store)->Fetch(3);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kClosed);

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.transient_errors, 2u) << "the abort counts nowhere";
  EXPECT_EQ(stats.load_errors, 2u) << "only the two real failures count";
}

TEST(FaultBattery, BreakerIgnoresStaleResultsAndReleasesAbortedProbe) {
  // Unit-level breaker discipline, independent of the store plumbing.
  CircuitBreakerPolicy policy;
  policy.failure_threshold = 1;
  policy.open_duration_us = 0;  // the next Admit after open is the probe
  CircuitBreaker breaker(policy);

  // Two loads admitted while closed; the first fails and opens the
  // circuit, the second (slow, admitted pre-outage) lands late with a
  // success — which must not short-circuit the cooldown + probe
  // discipline. (Cooldown 0 means Admit would hand out a probe, so the
  // stale result is recorded before any Admit.)
  EXPECT_TRUE(breaker.Admit());
  EXPECT_TRUE(breaker.Admit());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  breaker.RecordSuccess();  // stale
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen)
      << "a pre-open success must not close an open circuit";
  EXPECT_EQ(breaker.opens(), 1u);

  // One probe slot: the claimer learns it holds it, a second load is
  // rejected, and a non-probe abort releases nothing.
  bool claimed = false;
  EXPECT_TRUE(breaker.Admit(&claimed));
  EXPECT_TRUE(claimed);
  bool second = true;
  EXPECT_FALSE(breaker.Admit(&second));
  EXPECT_FALSE(second);
  breaker.RecordAbort(/*claimed_probe=*/false);
  EXPECT_FALSE(breaker.Admit(&second)) << "slot still held by the probe";

  // The probe's own abort releases the slot without counting a re-open;
  // the next Admit claims a fresh probe whose success closes the
  // circuit.
  breaker.RecordAbort(/*claimed_probe=*/true);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_TRUE(breaker.Admit(&claimed));
  EXPECT_TRUE(claimed);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit());
}

TEST(FaultBattery, HedgeDelayEstimateSurvivesFastSamples) {
  auto bundle = workload::MakeAria(600, /*seed=*/151);
  storage::PartitionedTable pt(bundle.table, 6);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // One spiked pass seeds the latency EWMA high; the fast passes after
  // it must decay the estimate. The naive EWMA underflowed unsigned on
  // the first sample faster than the mean (mean ~2^62), so the adaptive
  // hedge delay clamped to garbage and hedging misfired forever.
  io::FaultRule spike = RuleFor(0, 0, 1, io::FaultKind::kLatency);
  spike.latency_us = 50000;
  io::FaultPlan plan;
  plan.rules.push_back(spike);
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.hedge.enabled = true;  // fixed_delay 0: adaptive estimate
  opts.hedge.max_delay_us = 10000000;  // wide clamp so garbage would show
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  ASSERT_TRUE((*store)->Fetch(0).ok());  // ~50ms pass seeds the mean
  const size_t seeded = (*store)->hedge_delay_us();
  EXPECT_GE(seeded, 50000u);
  for (size_t p = 1; p < pt.num_partitions(); ++p) {
    ASSERT_TRUE((*store)->Fetch(p).ok());  // fast spike-free passes
  }
  const size_t after = (*store)->hedge_delay_us();
  EXPECT_GT(after, 0u);
  EXPECT_LT(after, 1000000u)
      << "fast samples must decay the estimate, not wrap it";
}

TEST(FaultBattery, SingleFlightTimeoutStealsAndReclaims) {
  auto bundle = workload::MakeKdd(700, /*seed=*/137);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // The first loader of partition 0 rides out a 400ms spike while
  // holding the single-flight marks. A waiter bounded at 30ms must time
  // out, break the stale claim, re-claim the load itself (attempt 1 is
  // clean), and return long before the original loader lands.
  io::FaultRule spike = RuleFor(0, 0, 1, io::FaultKind::kLatency);
  spike.latency_us = 400000;
  io::FaultPlan plan;
  plan.rules.push_back(spike);
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.single_flight_wait_us = 30000;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  std::promise<void> loader_started;
  std::thread loader([&] {
    loader_started.set_value();
    auto slow = (*store)->Fetch(0);
    EXPECT_TRUE(slow.ok()) << slow.status().ToString();
  });
  loader_started.get_future().wait();
  // Let the loader claim its marks and enter the spike sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto start = std::chrono::steady_clock::now();
  {
    auto stolen = (*store)->Fetch(0);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    ASSERT_TRUE(stolen.ok()) << stolen.status().ToString();
    EXPECT_EQ(stolen->view().num_rows(), pt.partition_rows(0));
    EXPECT_LT(elapsed.count(), 300) << "waiter must not ride out the spike";
  }
  loader.join();

  EXPECT_GE((*store)->store_stats().single_flight_timeouts, 1u);
  EXPECT_EQ((*store)->store_stats().load_errors, 0u);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);
}

TEST(FaultBattery, AbortsCountInNoErrorCounter) {
  auto bundle = workload::MakeAria(500, /*seed=*/139);
  storage::PartitionedTable pt(bundle.table, 4);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Partition 0 always fails transient, with real backoffs between
  // attempts; the token fires mid-retry-loop. The abort must surface as
  // kCancelled and must not be folded into any failure statistic — only
  // the passes that actually failed before the abort count.
  io::FaultPlan plan;
  plan.rules.push_back(RuleFor(0, 0, 1000, io::FaultKind::kTransient));
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.retry.max_attempts = 50;
  opts.retry.backoff_base_us = 20000;  // wide backoff window to land in
  opts.retry.backoff_cap_us = 20000;
  opts.retry.retry_time_budget_us = 0;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());

  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.Cancel();
  });
  auto pinned = (*store)->Fetch(0, storage::ColumnSet::All(), &token);
  canceller.join();
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.status().code(), StatusCode::kCancelled);

  const io::StoreStats stats = (*store)->store_stats();
  EXPECT_EQ(stats.load_errors, 0u) << "an abort is not a load error";
  EXPECT_EQ(stats.corrupt_errors, 0u);
  EXPECT_EQ(stats.lost_errors, 0u);
  EXPECT_GE(stats.transient_errors, 1u);  // the real pre-abort failures
  EXPECT_EQ((*store)->breaker_state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ((*store)->cache().stats().bytes_pinned, 0u);

  // The partition is still loadable once the faults clear: a fresh
  // injector over the same directory reads it fine.
  auto clean = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(clean.ok());
  auto healthy = (*clean)->Fetch(0);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
}

TEST(FaultBattery, ZeroFaultPlanIsIdenticalToNoInjector) {
  auto bundle = workload::MakeKdd(900, /*seed=*/149);
  storage::PartitionedTable pt(bundle.table, 6);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  auto plain = io::PartitionStore::Open(dir, {});
  ASSERT_TRUE(plain.ok());
  io::PartitionStore::Options opts;
  opts.faults = std::make_shared<io::FaultInjector>(io::FaultPlan{});
  auto faulted = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(faulted.ok());

  query::Query q = CountSumQuery(*bundle.table);
  runtime::QueryScheduler scheduler;
  io::ColdShardedSource cold_plain(plain->get(), 2);
  io::ColdShardedSource cold_faulted(faulted->get(), 2);
  ExpectAnswersEqual(scheduler.Submit(q, cold_plain).get(),
                     scheduler.Submit(q, cold_faulted).get());

  const io::StoreStats a = (*plain)->store_stats();
  const io::StoreStats b = (*faulted)->store_stats();
  EXPECT_EQ(a.cold_loads, b.cold_loads);
  EXPECT_EQ(a.segments_loaded, b.segments_loaded);
  EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
  for (const io::StoreStats& s : {a, b}) {
    EXPECT_EQ(s.load_errors, 0u);
    EXPECT_EQ(s.transient_errors, 0u);
    EXPECT_EQ(s.corrupt_errors, 0u);
    EXPECT_EQ(s.lost_errors, 0u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.hedged_loads, 0u);
    EXPECT_EQ(s.breaker_opens, 0u);
    EXPECT_EQ(s.single_flight_timeouts, 0u);
  }
}

TEST(FaultBattery, SeededRatesReplayIdenticallyThroughStore) {
  auto bundle = workload::MakeKdd(1000, /*seed=*/151);
  storage::PartitionedTable pt(bundle.table, 8);
  const std::string dir = MakeSpillDir();
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir).ok());

  // Two independent stores over the same directory, each with its own
  // injector built from the same plan: every fetch outcome and every
  // counter must replay bit-identically — the hashed rates are a pure
  // function of (seed, partition, column, attempt), not a live RNG.
  io::FaultPlan plan;
  plan.seed = 7;
  plan.transient_rate = 0.02;
  plan.corrupt_rate = 0.005;
  io::PartitionStore::Options opts = FaultOptions(plan);
  opts.retry.max_attempts = 6;
  auto first = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(first.ok());
  io::PartitionStore::Options opts2 = FaultOptions(plan);
  opts2.retry.max_attempts = 6;
  auto second = io::PartitionStore::Open(dir, opts2);
  ASSERT_TRUE(second.ok());

  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    auto fa = (*first)->Fetch(p);
    auto fb = (*second)->Fetch(p);
    ASSERT_EQ(fa.ok(), fb.ok()) << "partition " << p;
    if (!fa.ok()) {
      EXPECT_EQ(fa.status().code(), fb.status().code()) << "partition " << p;
    } else {
      EXPECT_EQ(fa->view().num_rows(), fb->view().num_rows());
    }
  }
  const io::StoreStats sa = (*first)->store_stats();
  const io::StoreStats sb = (*second)->store_stats();
  EXPECT_EQ(sa.cold_loads, sb.cold_loads);
  EXPECT_EQ(sa.load_errors, sb.load_errors);
  EXPECT_EQ(sa.transient_errors, sb.transient_errors);
  EXPECT_EQ(sa.corrupt_errors, sb.corrupt_errors);
  EXPECT_EQ(sa.retries, sb.retries);
  EXPECT_EQ(sa.segments_loaded, sb.segments_loaded);
  EXPECT_EQ(sa.bytes_loaded, sb.bytes_loaded);
}

TEST(FaultBattery, DeterministicBackoffSchedule) {
  RetryPolicy policy;
  policy.backoff_base_us = 100;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap_us = 1000;
  // Same policy + retry + salt => identical sleep; different salts
  // decorrelate; the exponential envelope holds under the cap.
  for (int retry = 1; retry <= 5; ++retry) {
    const size_t a = BackoffUs(policy, retry, /*salt=*/11);
    const size_t b = BackoffUs(policy, retry, /*salt=*/11);
    EXPECT_EQ(a, b);
    const size_t base = std::min<size_t>(
        policy.backoff_cap_us,
        static_cast<size_t>(100 * std::pow(2.0, retry - 1)));
    EXPECT_GE(a, base);
    EXPECT_LE(a, static_cast<size_t>(
                     static_cast<double>(base) *
                     (1.0 + policy.jitter_fraction)) +
                     1);
  }
  size_t diff = 0;
  for (uint64_t salt = 0; salt < 8; ++salt) {
    if (BackoffUs(policy, 3, salt) != BackoffUs(policy, 3, salt + 100)) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0u) << "jitter must decorrelate across salts";
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(BackoffUs(policy, 1, 0), 100u);
  EXPECT_EQ(BackoffUs(policy, 2, 0), 200u);
  EXPECT_EQ(BackoffUs(policy, 5, 0), 1000u);  // capped
}

}  // namespace
}  // namespace ps3
