#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "query/bitmap_evaluator.h"
#include "query/compiler.h"
#include "query/evaluator.h"
#include "query/metrics.h"
#include "query/query.h"
#include "query/selection_bitmap.h"
#include "storage/table.h"

namespace ps3::query {
namespace {

using storage::ColumnType;
using storage::PartitionedTable;
using storage::Schema;
using storage::Table;

/// 10 partitions x 10 rows. x = row index (0..99), y = x^2, cat cycles
/// a/b/c with "a" twice as common.
std::shared_ptr<Table> MakeTable() {
  Schema schema({{"x", ColumnType::kNumeric},
                 {"y", ColumnType::kNumeric},
                 {"cat", ColumnType::kCategorical}});
  auto t = std::make_shared<Table>(schema);
  const char* cats[4] = {"a", "b", "a", "c"};
  for (int i = 0; i < 100; ++i) {
    t->AppendRow({double(i), double(i) * double(i)}, {cats[i % 4]});
  }
  t->Seal();
  return t;
}

TEST(Expr, Arithmetic) {
  auto t = MakeTable();
  PartitionedTable pt(t, 1);
  auto part = pt.partition(0);
  // (x + 1) * (y - x) at row 3: (3+1)*(9-3) = 24
  auto e = Expr::Mul(Expr::Add(Expr::Column(0), Expr::Const(1.0)),
                     Expr::Sub(Expr::Column(1), Expr::Column(0)));
  EXPECT_DOUBLE_EQ(e->Eval(part, 3), 24.0);
}

TEST(Expr, DivByZeroIsZero) {
  auto t = MakeTable();
  PartitionedTable pt(t, 1);
  auto e = Expr::Div(Expr::Const(5.0), Expr::Column(0));
  EXPECT_DOUBLE_EQ(e->Eval(pt.partition(0), 0), 0.0);  // x==0 at row 0
  EXPECT_DOUBLE_EQ(e->Eval(pt.partition(0), 5), 1.0);
}

TEST(Expr, CollectColumns) {
  std::set<size_t> cols;
  Expr::Mul(Expr::Column(2), Expr::Add(Expr::Column(0), Expr::Const(1)))
      ->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<size_t>{0, 2}));
}

TEST(Predicate, NumericOps) {
  auto t = MakeTable();
  PartitionedTable pt(t, 1);
  auto part = pt.partition(0);
  EXPECT_TRUE(
      Predicate::NumericCompare(0, CompareOp::kLt, 5.0)->Matches(part, 4));
  EXPECT_FALSE(
      Predicate::NumericCompare(0, CompareOp::kLt, 5.0)->Matches(part, 5));
  EXPECT_TRUE(
      Predicate::NumericCompare(0, CompareOp::kLe, 5.0)->Matches(part, 5));
  EXPECT_TRUE(
      Predicate::NumericCompare(0, CompareOp::kEq, 7.0)->Matches(part, 7));
  EXPECT_TRUE(
      Predicate::NumericCompare(0, CompareOp::kNe, 7.0)->Matches(part, 8));
}

TEST(Predicate, CategoricalIn) {
  auto t = MakeTable();
  PartitionedTable pt(t, 1);
  auto part = pt.partition(0);
  int32_t a = t->column(2).dict()->Find("a");
  int32_t c = t->column(2).dict()->Find("c");
  auto p = Predicate::CategoricalIn(2, {a, c});
  EXPECT_TRUE(p->Matches(part, 0));   // "a"
  EXPECT_FALSE(p->Matches(part, 1));  // "b"
  EXPECT_TRUE(p->Matches(part, 3));   // "c"
}

TEST(Predicate, BooleanCombinators) {
  auto t = MakeTable();
  PartitionedTable pt(t, 1);
  auto part = pt.partition(0);
  auto lt10 = Predicate::NumericCompare(0, CompareOp::kLt, 10.0);
  auto gt5 = Predicate::NumericCompare(0, CompareOp::kGt, 5.0);
  EXPECT_TRUE(Predicate::And({lt10, gt5})->Matches(part, 7));
  EXPECT_FALSE(Predicate::And({lt10, gt5})->Matches(part, 3));
  EXPECT_TRUE(Predicate::Or({lt10, gt5})->Matches(part, 3));
  EXPECT_FALSE(Predicate::Not(lt10)->Matches(part, 3));
  EXPECT_EQ(Predicate::And({lt10, gt5})->NumClauses(), 2u);
  EXPECT_EQ(Predicate::Not(Predicate::Or({lt10, gt5}))->NumClauses(), 2u);
}

TEST(Query, UsedColumnsAndToString) {
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(1), "sum_y")};
  q.predicate = Predicate::NumericCompare(0, CompareOp::kGt, 3.0);
  q.group_by = {2};
  EXPECT_EQ(q.UsedColumns(), (std::set<size_t>{0, 1, 2}));
  Schema schema({{"x", ColumnType::kNumeric},
                 {"y", ColumnType::kNumeric},
                 {"cat", ColumnType::kCategorical}});
  std::string s = q.ToString(schema);
  EXPECT_NE(s.find("SUM(y)"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY cat"), std::string::npos);
}

TEST(Evaluator, SumNoGroupBy) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "sum_x")};
  auto answers = EvaluateAllPartitions(q, pt);
  auto exact = ExactAnswer(q, answers);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_DOUBLE_EQ(exact.begin()->second[0], 99.0 * 100.0 / 2.0);
}

TEST(Evaluator, CountWithPredicate) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.predicate = Predicate::NumericCompare(0, CompareOp::kLt, 30.0);
  auto exact = ExactAnswer(q, EvaluateAllPartitions(q, pt));
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_DOUBLE_EQ(exact.begin()->second[0], 30.0);
}

TEST(Evaluator, GroupByCategorical) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.group_by = {2};
  auto exact = ExactAnswer(q, EvaluateAllPartitions(q, pt));
  ASSERT_EQ(exact.size(), 3u);  // a, b, c
  double total = 0.0;
  for (const auto& [key, vals] : exact) total += vals[0];
  EXPECT_DOUBLE_EQ(total, 100.0);
  // "a" occurs 50 times (positions 0 and 2 mod 4).
  int32_t a = t->column(2).dict()->Find("a");
  GroupKey ka{a};
  ASSERT_TRUE(exact.count(ka));
  EXPECT_DOUBLE_EQ(exact.at(ka)[0], 50.0);
}

TEST(Evaluator, AvgIsWeightedCorrectly) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Avg(Expr::Column(0), "avg_x")};
  auto answers = EvaluateAllPartitions(q, pt);
  // Take partitions 0 and 9 with weight 5 each: avg must be the weighted
  // sum / weighted count = plain average of the two partitions' rows,
  // not the average of their averages scaled.
  std::vector<WeightedPartition> sel{{0, 5.0}, {9, 5.0}};
  auto approx = CombineWeighted(q, answers, sel);
  ASSERT_EQ(approx.size(), 1u);
  // rows 0-9 and 90-99 -> mean = (4.5 + 94.5)/2
  EXPECT_DOUBLE_EQ(approx.begin()->second[0], 49.5);
}

TEST(Evaluator, WeightedSumScalesUp) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "sum_x")};
  auto answers = EvaluateAllPartitions(q, pt);
  // Uniform 50% sample of partitions (evens) with HT weight 2 is unbiased
  // here by symmetry up to the layout; just check the arithmetic.
  std::vector<WeightedPartition> sel;
  double expected = 0.0;
  for (size_t p = 0; p < 10; p += 2) {
    sel.push_back({p, 2.0});
    for (const auto& [key, accs] : answers[p]) expected += 2.0 * accs[0].sum;
  }
  auto approx = CombineWeighted(q, answers, sel);
  EXPECT_DOUBLE_EQ(approx.begin()->second[0], expected);
}

TEST(Evaluator, CombineWithErrorWeightOneEqualsExact) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "sum_x"),
                  Aggregate::Count("n"),
                  Aggregate::Avg(Expr::Column(1), "avg_y")};
  q.group_by = {2};
  auto answers = EvaluateAllPartitions(q, pt);
  auto exact = ExactAnswer(q, answers);
  std::vector<WeightedPartition> sel;
  for (size_t p = 0; p < 10; ++p) sel.push_back({p, 1.0});
  // A full selection at uniform weight 1 is the exact plan: values must
  // be bit-identical to ExactAnswer and every error entry exactly zero
  // (weight-1 strata contribute no sampling variance).
  auto combined = CombineWeightedWithError(q, answers, sel);
  ASSERT_EQ(combined.value.size(), exact.size());
  ASSERT_EQ(combined.error.size(), exact.size());
  for (const auto& [key, vals] : exact) {
    const auto& got = combined.value.at(key);
    ASSERT_EQ(got.size(), vals.size());
    for (size_t a = 0; a < vals.size(); ++a) {
      uint64_t want_bits, got_bits;
      std::memcpy(&want_bits, &vals[a], sizeof(want_bits));
      std::memcpy(&got_bits, &got[a], sizeof(got_bits));
      EXPECT_EQ(want_bits, got_bits) << "aggregate " << a;
    }
    for (double e : combined.error.at(key)) EXPECT_EQ(e, 0.0);
  }
}

TEST(Evaluator, CombineWithErrorMatchesHandComputedVariance) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "sum_x"),
                  Aggregate::Count("n")};
  auto answers = EvaluateAllPartitions(q, pt);
  // Partition p holds rows 10p..10p+9, so sum_p(x) = 100p + 45 and
  // count_p = 10: small enough to hand-compute the HT/Poisson estimator
  // V = sum_{w_j > 1} (1 - 1/w_j) * (w_j * t_j)^2 independently of the
  // accumulators the implementation folds.
  std::vector<WeightedPartition> sel{{1, 2.0}, {3, 4.0}, {5, 1.0}};
  auto combined = CombineWeightedWithError(q, answers, sel);
  ASSERT_EQ(combined.value.size(), 1u);
  const double s1 = 145.0, s3 = 345.0, s5 = 545.0;
  EXPECT_DOUBLE_EQ(combined.value.begin()->second[0],
                   2.0 * s1 + 4.0 * s3 + 1.0 * s5);
  EXPECT_DOUBLE_EQ(combined.value.begin()->second[1],
                   2.0 * 10 + 4.0 * 10 + 1.0 * 10);
  const double vs = 0.5 * (2.0 * s1) * (2.0 * s1) +
                    0.75 * (4.0 * s3) * (4.0 * s3);  // weight-1 drops out
  const double vc = 0.5 * 20.0 * 20.0 + 0.75 * 40.0 * 40.0;
  EXPECT_DOUBLE_EQ(combined.error.begin()->second[0], std::sqrt(vs));
  EXPECT_DOUBLE_EQ(combined.error.begin()->second[1], std::sqrt(vc));
}

TEST(Evaluator, CombineWithErrorAvgUsesDeltaMethod) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Avg(Expr::Column(0), "avg_x")};
  auto answers = EvaluateAllPartitions(q, pt);
  std::vector<WeightedPartition> sel{{1, 2.0}, {3, 4.0}, {5, 1.0}};
  auto combined = CombineWeightedWithError(q, answers, sel);
  ASSERT_EQ(combined.value.size(), 1u);
  // AVG is a ratio S/C of two correlated HT totals; its standard error
  // comes from the delta method:
  //   Var(S/C) ~= (Var(S) - 2 r Cov(S,C) + r^2 Var(C)) / C^2,  r = S/C.
  const double s1 = 145.0, s3 = 345.0, s5 = 545.0;
  const double S = 2.0 * s1 + 4.0 * s3 + 1.0 * s5;
  const double C = 20.0 + 40.0 + 10.0;
  const double r = S / C;
  const double vs = 0.5 * (2.0 * s1) * (2.0 * s1) +
                    0.75 * (4.0 * s3) * (4.0 * s3);
  const double vc = 0.5 * 20.0 * 20.0 + 0.75 * 40.0 * 40.0;
  const double cov = 0.5 * (2.0 * s1) * 20.0 + 0.75 * (4.0 * s3) * 40.0;
  const double var = (vs - 2.0 * r * cov + r * r * vc) / (C * C);
  EXPECT_DOUBLE_EQ(combined.value.begin()->second[0], r);
  EXPECT_DOUBLE_EQ(combined.error.begin()->second[0], std::sqrt(var));
}

TEST(Evaluator, CombineWithErrorMinMaxErrorIsZero) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Min(Expr::Column(0), "min_x"),
                  Aggregate::Max(Expr::Column(0), "max_x")};
  auto answers = EvaluateAllPartitions(q, pt);
  // Extrema are one-sided bounds under sampling, not reweighted
  // estimates: the error contract pins them to exactly zero even at
  // large weights, and the values stay weight-free.
  std::vector<WeightedPartition> sel{{2, 5.0}, {7, 5.0}};
  auto combined = CombineWeightedWithError(q, answers, sel);
  ASSERT_EQ(combined.value.size(), 1u);
  EXPECT_DOUBLE_EQ(combined.value.begin()->second[0], 20.0);
  EXPECT_DOUBLE_EQ(combined.value.begin()->second[1], 79.0);
  EXPECT_EQ(combined.error.begin()->second[0], 0.0);
  EXPECT_EQ(combined.error.begin()->second[1], 0.0);
}

TEST(Evaluator, CanonicalizeSelectionPinsCombineOrder) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(1), "sum_y")};
  q.group_by = {2};
  auto answers = EvaluateAllPartitions(q, pt);
  std::vector<WeightedPartition> shuffled{{7, 2.5}, {0, 3.0}, {4, 1.5}};
  std::vector<WeightedPartition> sorted{{0, 3.0}, {4, 1.5}, {7, 2.5}};
  CanonicalizeSelection(&shuffled);
  ASSERT_EQ(shuffled.size(), 3u);
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(shuffled[i].partition, sorted[i].partition);
    EXPECT_DOUBLE_EQ(shuffled[i].weight, sorted[i].weight);
  }
  // After canonicalization the FP merge order is pinned, so any
  // permutation of the same picks combines to bit-identical answers.
  auto a = CombineWeightedWithError(q, answers, shuffled);
  auto b = CombineWeightedWithError(q, answers, sorted);
  ASSERT_EQ(a.value.size(), b.value.size());
  for (const auto& [key, vals] : a.value) {
    const auto& other = b.value.at(key);
    for (size_t i = 0; i < vals.size(); ++i) {
      uint64_t ab, bb;
      std::memcpy(&ab, &vals[i], sizeof(ab));
      std::memcpy(&bb, &other[i], sizeof(bb));
      EXPECT_EQ(ab, bb);
    }
  }
}

TEST(Evaluator, CaseFilterAggregates) {
  auto t = MakeTable();
  PartitionedTable pt(t, 5);
  int32_t b = t->column(2).dict()->Find("b");
  Query q;
  q.aggregates = {
      Aggregate{AggFunc::kCount, nullptr,
                Predicate::CategoricalIn(2, {b}), "count_b"},
      Aggregate::Count("count_all"),
  };
  auto exact = ExactAnswer(q, EvaluateAllPartitions(q, pt));
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_DOUBLE_EQ(exact.begin()->second[0], 25.0);
  EXPECT_DOUBLE_EQ(exact.begin()->second[1], 100.0);
}

TEST(Evaluator, MinMaxBasicAndPolicyAgreement) {
  auto t = MakeTable();
  PartitionedTable pt(t, 5);
  Query q;
  q.aggregates = {Aggregate::Min(Expr::Column(0), "min_x"),
                  Aggregate::Max(Expr::Column(1), "max_y")};
  // Restrict to rows 10..89: extrema are interior, not the data bounds.
  q.predicate = Predicate::And(
      {Predicate::NumericCompare(0, CompareOp::kGe, 10.0),
       Predicate::NumericCompare(0, CompareOp::kLt, 90.0)});
  for (ExecPolicy policy : {ExecPolicy::kScalar, ExecPolicy::kVectorized}) {
    auto exact =
        ExactAnswer(q, EvaluateAllPartitions(q, pt, {policy, 1}));
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_DOUBLE_EQ(exact.begin()->second[0], 10.0);
    EXPECT_DOUBLE_EQ(exact.begin()->second[1], 89.0 * 89.0);
  }
}

TEST(Evaluator, MinMaxCombineIsWeightFree) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Min(Expr::Column(0), "min_x"),
                  Aggregate::Max(Expr::Column(0), "max_x")};
  auto answers = EvaluateAllPartitions(q, pt);
  // Partition weights scale sums and counts, never extrema: MIN/MAX over
  // the weighted union are still the smallest/largest observed values.
  std::vector<WeightedPartition> sel{{2, 5.0}, {7, 5.0}};
  auto approx = CombineWeighted(q, answers, sel);
  ASSERT_EQ(approx.size(), 1u);
  EXPECT_DOUBLE_EQ(approx.begin()->second[0], 20.0);  // rows 20-29, 70-79
  EXPECT_DOUBLE_EQ(approx.begin()->second[1], 79.0);
}

TEST(Evaluator, MinMaxOverEmptyRowSetIsZero) {
  auto t = MakeTable();
  PartitionedTable pt(t, 2);
  Query q;
  q.aggregates = {Aggregate::Min(Expr::Column(0), "min_x"),
                  Aggregate::Max(Expr::Column(0), "max_x"),
                  Aggregate::Count()};
  q.predicate = Predicate::NumericCompare(0, CompareOp::kLt, -1.0);
  q.group_by = {2};
  for (ExecPolicy policy : {ExecPolicy::kScalar, ExecPolicy::kVectorized}) {
    auto exact =
        ExactAnswer(q, EvaluateAllPartitions(q, pt, {policy, 1}));
    // No rows match: no groups at all (like SUM/COUNT/AVG).
    EXPECT_TRUE(exact.empty());
  }
  // With a filtered aggregate matching nothing, the group exists but the
  // extrema finalize to 0.0, like AVG over zero rows.
  Query q2;
  q2.aggregates = {
      Aggregate{AggFunc::kMin, Expr::Column(0),
                Predicate::NumericCompare(0, CompareOp::kLt, -1.0),
                "min_none"},
      Aggregate::Count()};
  for (ExecPolicy policy : {ExecPolicy::kScalar, ExecPolicy::kVectorized}) {
    auto exact =
        ExactAnswer(q2, EvaluateAllPartitions(q2, pt, {policy, 1}));
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_DOUBLE_EQ(exact.begin()->second[0], 0.0);
    EXPECT_DOUBLE_EQ(exact.begin()->second[1], 100.0);
  }
}

TEST(Evaluator, GroupByNumericColumn) {
  auto t = MakeTable();
  PartitionedTable pt(t, 4);
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.group_by = {0};  // x: 100 distinct values
  auto exact = ExactAnswer(q, EvaluateAllPartitions(q, pt));
  EXPECT_EQ(exact.size(), 100u);
}

TEST(Metrics, PerfectEstimateIsZeroError) {
  auto t = MakeTable();
  PartitionedTable pt(t, 10);
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "s")};
  q.group_by = {2};
  auto answers = EvaluateAllPartitions(q, pt);
  auto exact = ExactAnswer(q, answers);
  auto m = ComputeErrorMetrics(q, exact, exact);
  EXPECT_DOUBLE_EQ(m.missed_groups, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(m.abs_over_true, 0.0);
}

TEST(Metrics, MissedGroupCountsAsOne) {
  Query q;
  q.aggregates = {Aggregate::Count()};
  QueryAnswer exact;
  exact[{0}] = {10.0};
  exact[{1}] = {20.0};
  QueryAnswer est;
  est[{0}] = {10.0};
  auto m = ComputeErrorMetrics(q, exact, est);
  EXPECT_DOUBLE_EQ(m.missed_groups, 0.5);
  EXPECT_DOUBLE_EQ(m.avg_rel_error, 0.5);  // (0 + 1) / 2
}

TEST(Metrics, RelativeErrorMagnitude) {
  Query q;
  q.aggregates = {Aggregate::Count()};
  QueryAnswer exact, est;
  exact[{0}] = {100.0};
  est[{0}] = {150.0};
  auto m = ComputeErrorMetrics(q, exact, est);
  EXPECT_DOUBLE_EQ(m.avg_rel_error, 0.5);
  EXPECT_DOUBLE_EQ(m.abs_over_true, 0.5);
}

TEST(Metrics, AccumulateAndAverage) {
  ErrorMetrics a{0.2, 0.4, 0.6};
  ErrorMetrics b{0.0, 0.2, 0.0};
  a += b;
  a /= 2.0;
  EXPECT_DOUBLE_EQ(a.missed_groups, 0.1);
  EXPECT_DOUBLE_EQ(a.avg_rel_error, 0.3);
  EXPECT_DOUBLE_EQ(a.abs_over_true, 0.3);
}

// ---------------------------------------------------------------------
// GroupKeyHash bucket spread.

TEST(GroupKeyHash, SpreadsSmallSingleColumnCodes) {
  // Single-column GROUP BY keys are small dictionary codes; their hashes
  // must spread across buckets (the pre-fix constant-seeded HashCombine
  // clustered them). With 4096 keys into 4096 buckets, a uniform hash
  // occupies ~(1 - 1/e) ~ 63% distinct buckets.
  GroupKeyHash hasher;
  constexpr size_t kKeys = 4096;
  std::set<size_t> buckets;
  for (size_t v = 0; v < kKeys; ++v) {
    buckets.insert(hasher(GroupKey{static_cast<int64_t>(v)}) % kKeys);
  }
  EXPECT_GT(buckets.size(), kKeys * 55 / 100);
}

TEST(GroupKeyHash, LengthChangesHash) {
  // {0} vs {0,0} vs {} must not collide: the key length seeds the hash.
  GroupKeyHash hasher;
  size_t h0 = hasher(GroupKey{});
  size_t h1 = hasher(GroupKey{0});
  size_t h2 = hasher(GroupKey{0, 0});
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h0, h2);
}

TEST(GroupKeyHash, SpreadsTwoColumnKeys) {
  GroupKeyHash hasher;
  std::set<size_t> buckets;
  constexpr size_t kSide = 64;  // 64x64 = 4096 keys
  for (size_t a = 0; a < kSide; ++a) {
    for (size_t b = 0; b < kSide; ++b) {
      buckets.insert(hasher(GroupKey{static_cast<int64_t>(a),
                                     static_cast<int64_t>(b)}) %
                     (kSide * kSide));
    }
  }
  EXPECT_GT(buckets.size(), kSide * kSide * 55 / 100);
}

// ---------------------------------------------------------------------
// SelectionBitmap and the predicate compiler.

TEST(SelectionBitmap, TailMaskingAndCounts) {
  SelectionBitmap bm(70);  // deliberately not a multiple of 64
  EXPECT_EQ(bm.CountOnes(), 0u);
  bm.SetAll();
  EXPECT_EQ(bm.CountOnes(), 70u);
  bm.NotSelf();
  EXPECT_EQ(bm.CountOnes(), 0u);
  bm.Set(0);
  bm.Set(63);
  bm.Set(69);
  EXPECT_EQ(bm.CountOnes(), 3u);
  std::vector<size_t> rows;
  bm.ForEachSetBit([&](size_t r) { rows.push_back(r); });
  EXPECT_EQ(rows, (std::vector<size_t>{0, 63, 69}));
  bm.NotSelf();
  EXPECT_EQ(bm.CountOnes(), 67u);
}

TEST(SelectionBitmap, WordwiseAndOr) {
  SelectionBitmap a(100), b(100);
  for (size_t i = 0; i < 100; i += 2) a.Set(i);
  for (size_t i = 0; i < 100; i += 3) b.Set(i);
  SelectionBitmap both = a;
  both.AndWith(b);
  EXPECT_EQ(both.CountOnes(), 17u);  // multiples of 6 in [0, 100)
  SelectionBitmap either = a;
  either.OrWith(b);
  EXPECT_EQ(either.CountOnes(), 67u);  // incl-excl: 50 + 34 - 17
}

TEST(Compiler, MatchesScalarPredicatePerRow) {
  auto t = MakeTable();
  PartitionedTable pt(t, 3);
  // NOT(x < 20 AND (cat IN {a} OR y >= 900))
  auto pred = Predicate::Not(Predicate::And(
      {Predicate::NumericCompare(0, CompareOp::kLt, 20.0),
       Predicate::Or({Predicate::CategoricalIn(2, {0}),
                      Predicate::NumericCompare(1, CompareOp::kGe, 900.0)})}));
  PredProgram prog = CompilePredicate(pred);
  BitmapEvaluator be;
  SelectionBitmap bm;
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    auto part = pt.partition(p);
    be.EvalPredicate(prog, part, &bm);
    ASSERT_EQ(bm.num_bits(), part.num_rows());
    for (size_t r = 0; r < part.num_rows(); ++r) {
      EXPECT_EQ(bm.Test(r), pred->Matches(part, r)) << "row " << r;
    }
  }
}

TEST(Compiler, CompiledExprMatchesAstWalk) {
  auto t = MakeTable();
  PartitionedTable pt(t, 2);
  auto expr = Expr::Div(
      Expr::Mul(Expr::Add(Expr::Column(0), Expr::Const(1.0)), Expr::Column(1)),
      Expr::Sub(Expr::Column(0), Expr::Const(50.0)));  // zero at x == 50
  ExprProgram prog = CompileExpr(expr);
  BitmapEvaluator be;
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    auto part = pt.partition(p);
    std::vector<double> dense;
    be.EvalExprDense(prog, part, &dense);
    for (size_t r = 0; r < part.num_rows(); ++r) {
      double expected = expr->Eval(part, r);
      EXPECT_DOUBLE_EQ(be.EvalExprAt(prog, part, r), expected);
      EXPECT_DOUBLE_EQ(dense[r], expected);
    }
  }
}

TEST(Compiler, EmptyInListCompilesToNoMatch) {
  auto t = MakeTable();
  PartitionedTable pt(t, 1);
  PredProgram prog = CompilePredicate(Predicate::CategoricalIn(2, {}));
  BitmapEvaluator be;
  SelectionBitmap bm;
  be.EvalPredicate(prog, pt.partition(0), &bm);
  EXPECT_EQ(bm.CountOnes(), 0u);
}

TEST(ExecPolicy, SinglePartitionDispatchAgrees) {
  auto t = MakeTable();
  PartitionedTable pt(t, 4);
  Query q;
  q.aggregates = {Aggregate::Count(), Aggregate::Sum(Expr::Column(1))};
  q.predicate = Predicate::NumericCompare(0, CompareOp::kGe, 30.0);
  q.group_by = {2};
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    auto scalar =
        EvaluateOnPartition(q, pt.partition(p), ExecPolicy::kScalar);
    auto vec =
        EvaluateOnPartition(q, pt.partition(p), ExecPolicy::kVectorized);
    ASSERT_EQ(scalar.size(), vec.size());
    for (const auto& [key, accs] : scalar) {
      auto it = vec.find(key);
      ASSERT_NE(it, vec.end());
      for (size_t a = 0; a < accs.size(); ++a) {
        EXPECT_DOUBLE_EQ(accs[a].sum, it->second[a].sum);
        EXPECT_DOUBLE_EQ(accs[a].count, it->second[a].count);
      }
    }
  }
}

}  // namespace
}  // namespace ps3::query
