#include <gtest/gtest.h>

#include "eval/cost_model.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace ps3::eval {
namespace {

ExperimentConfig SmallConfig(const std::string& dataset) {
  ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.rows = 6000;
  cfg.partitions = 30;
  cfg.train_queries = 12;
  cfg.test_queries = 6;
  cfg.ps3.gbdt.num_trees = 6;
  cfg.ps3.feature_selection.enabled = false;
  cfg.lss.gbdt.num_trees = 6;
  cfg.lss.eval_queries = 3;
  return cfg;
}

TEST(CostModel, ComputeIsNearLinear) {
  ClusterModel model;
  auto full = SimulateRead(model, 1.0);
  auto one_pct = SimulateRead(model, 0.01);
  double speedup = full.compute_s / one_pct.compute_s;
  EXPECT_GT(speedup, 50.0);
  EXPECT_LT(speedup, 200.0);
}

TEST(CostModel, LatencyGainsAreSublinear) {
  ClusterModel model;
  auto full = SimulateRead(model, 1.0);
  auto one_pct = SimulateRead(model, 0.01);
  double latency_speedup = full.latency_s / one_pct.latency_s;
  double compute_speedup = full.compute_s / one_pct.compute_s;
  EXPECT_GT(latency_speedup, 1.0);
  EXPECT_LT(latency_speedup, compute_speedup);
}

TEST(CostModel, MonotoneInFraction) {
  ClusterModel model;
  double prev_latency = 0.0, prev_compute = 0.0;
  for (double f : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    auto est = SimulateRead(model, f);
    EXPECT_GE(est.latency_s, prev_latency);
    EXPECT_GT(est.compute_s, prev_compute);
    prev_latency = est.latency_s;
    prev_compute = est.compute_s;
  }
}

TEST(Report, RendersAlignedTable) {
  Report r("demo");
  r.SetHeader({"name", "value"});
  r.AddRow({"alpha", "1"});
  r.AddRow({"b", "22222"});
  std::string out = r.Render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(Report, Formatting) {
  EXPECT_EQ(Num(0.12345, 2), "0.12");
  EXPECT_EQ(Pct(0.125, 1), "12.5%");
}

TEST(Experiment, BuildsWithoutTraining) {
  Experiment exp(SmallConfig("aria"));
  EXPECT_EQ(exp.table().num_partitions(), 30u);
  EXPECT_EQ(exp.training_data().num_queries(), 12u);
  EXPECT_EQ(exp.tests().size(), 6u);
  EXPECT_GT(exp.stats().ComputeStorageReport().total_kb, 0.0);
}

TEST(Experiment, BudgetConversion) {
  Experiment exp(SmallConfig("aria"));
  EXPECT_EQ(exp.BudgetFromFraction(0.1), 3u);
  EXPECT_EQ(exp.BudgetFromFraction(0.0001), 1u);  // floor of 1
  EXPECT_EQ(exp.BudgetFromFraction(1.0), 30u);
}

TEST(Experiment, TestQueriesCarryTrueSelectivity) {
  Experiment exp(SmallConfig("aria"));
  for (const auto& t : exp.tests()) {
    EXPECT_GE(t.true_selectivity, 0.0);
    EXPECT_LE(t.true_selectivity, 1.0);
  }
}

TEST(Experiment, EndToEndPipelineOrdering) {
  Experiment exp(SmallConfig("aria"));
  exp.TrainModels();
  auto random = exp.MakeRandom();
  auto ps3 = exp.MakePs3();
  // At full budget both are exact.
  auto m_full = exp.Evaluate(*ps3, 1.0, 1);
  EXPECT_NEAR(m_full.avg_rel_error, 0.0, 1e-9);
  // At a small budget PS3 should not be wildly worse than random; at the
  // very least both produce finite errors and PS3 stays within [0, 1.5].
  auto m_small = exp.Evaluate(*ps3, 0.1, 2);
  EXPECT_GE(m_small.avg_rel_error, 0.0);
  EXPECT_LT(m_small.avg_rel_error, 1.5);
  auto m_rand = exp.Evaluate(*random, 0.1, 2);
  EXPECT_GE(m_rand.avg_rel_error, 0.0);
}

TEST(Experiment, RandomLayoutBuilds) {
  auto cfg = SmallConfig("aria");
  cfg.layout = {"__random__"};
  Experiment exp(cfg);
  EXPECT_EQ(exp.table().num_partitions(), 30u);
}

TEST(Experiment, ExplicitLayoutBuilds) {
  auto cfg = SmallConfig("aria");
  cfg.layout = {"AppInfo_Version"};
  Experiment exp(cfg);
  EXPECT_EQ(exp.tests().size(), 6u);
}

}  // namespace
}  // namespace ps3::eval
