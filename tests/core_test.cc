#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/cluster_select.h"
#include "core/feature_selection.h"
#include "core/labels.h"
#include "core/lss_picker.h"
#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "core/random_picker.h"
#include "core/training_data.h"
#include "query/metrics.h"
#include "stats/stats_builder.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace ps3::core {
namespace {

using query::Aggregate;
using query::CompareOp;
using query::Expr;
using query::Predicate;
using query::Query;

/// Small end-to-end fixture over the Aria analog dataset.
struct Fixture {
  workload::DatasetBundle bundle;
  std::shared_ptr<storage::Table> table;
  std::unique_ptr<storage::PartitionedTable> parts;
  std::unique_ptr<stats::TableStats> stats;
  std::unique_ptr<featurize::Featurizer> featurizer;
  PickerContext ctx;

  explicit Fixture(size_t rows = 8000, size_t partitions = 40) {
    bundle = workload::MakeAria(rows, 11);
    auto sorted = bundle.table->SortedBy(bundle.default_sort);
    table = std::make_shared<storage::Table>(std::move(sorted).value());
    parts = std::make_unique<storage::PartitionedTable>(table, partitions);
    stats::StatsOptions opts;
    for (const auto& name : bundle.spec.groupby_columns) {
      opts.grouping_columns.push_back(
          static_cast<size_t>(table->schema().FindColumn(name)));
    }
    stats = std::make_unique<stats::TableStats>(
        stats::StatsBuilder(opts).Build(*parts));
    featurizer = std::make_unique<featurize::Featurizer>(table->schema(),
                                                         stats.get());
    ctx = {parts.get(), stats.get(), featurizer.get()};
  }

  Query CountByNetwork() const {
    Query q;
    q.aggregates = {Aggregate::Count()};
    q.group_by = {static_cast<size_t>(
        table->schema().FindColumn("DeviceInfo_NetworkType"))};
    return q;
  }
};

TEST(Contributions, BoundedAndPositiveForActivePartitions) {
  Fixture f;
  Query q = f.CountByNetwork();
  auto answers = query::EvaluateAllPartitions(q, *f.parts);
  auto exact = query::ExactAnswer(q, answers);
  auto contrib = ComputeContributions(q, answers, exact);
  ASSERT_EQ(contrib.size(), f.parts->num_partitions());
  for (double c : contrib) {
    EXPECT_GT(c, 0.0);  // every partition has rows for this query
    EXPECT_LE(c, 10.0);
  }
}

TEST(Contributions, ZeroForFilteredOutPartitions) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  // TenantId sort => only some partitions contain tenant 0 rows.
  size_t tenant_col = static_cast<size_t>(
      f.table->schema().FindColumn("TenantId"));
  int32_t code = f.table->column(tenant_col).dict()->Find("Tenant_0");
  ASSERT_GE(code, 0);
  q.predicate = Predicate::CategoricalIn(tenant_col, {code});
  auto answers = query::EvaluateAllPartitions(q, *f.parts);
  auto exact = query::ExactAnswer(q, answers);
  auto contrib = ComputeContributions(q, answers, exact);
  size_t zero = 0;
  for (double c : contrib) {
    if (c == 0.0) ++zero;
  }
  EXPECT_GT(zero, 0u);
  EXPECT_LT(zero, contrib.size());
}

TEST(Thresholds, FirstIsZeroAndNonDecreasing) {
  std::vector<std::vector<double>> contributions = {
      {0.0, 0.0, 0.1, 0.2, 0.5, 0.9, 0.0, 0.05},
      {0.0, 0.3, 0.0, 0.0, 0.7, 0.01, 0.02, 0.0},
  };
  auto t = ChooseThresholds(contributions, 4);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  for (size_t i = 1; i < t.size(); ++i) EXPECT_GE(t[i], t[i - 1]);
}

TEST(Thresholds, PassCountsShrinkTowardTopPercent) {
  RandomEngine rng(3);
  std::vector<std::vector<double>> contributions(20);
  for (auto& c : contributions) {
    c.resize(100);
    for (auto& v : c) v = rng.NextBool(0.4) ? rng.NextDouble() : 0.0;
  }
  auto t = ChooseThresholds(contributions, 4);
  auto passing = [&](double thresh) {
    size_t n = 0;
    for (const auto& c : contributions) {
      for (double v : c) {
        if (v > thresh) ++n;
      }
    }
    return n;
  };
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(passing(t[i]), passing(t[i - 1]));
  }
  // Last model: ~top 1% of 2000 samples (some slack for quantile ties).
  EXPECT_LE(passing(t.back()), 60u);
}

TEST(FunnelLabels, ClassTotalsBalancedPerQuery) {
  std::vector<std::vector<double>> contributions = {
      {0.0, 0.0, 0.0, 0.5, 0.8, 0.0, 0.0, 0.0, 0.0, 0.0}};
  auto y = MakeFunnelLabels(contributions, 0.0);
  ASSERT_EQ(y.size(), 10u);
  double pos_total = 0.0, neg_total = 0.0;
  for (double v : y) {
    if (v > 0) {
      pos_total += v;
    } else {
      neg_total += -v;
    }
  }
  // 2 positives at sqrt(10/2), 8 negatives at sqrt(10/8): both classes
  // carry total weight sqrt(c * class_count) = sqrt(20) and sqrt(80).
  EXPECT_NEAR(pos_total, 2.0 * std::sqrt(5.0), 1e-9);
  EXPECT_NEAR(neg_total, 8.0 * std::sqrt(1.25), 1e-9);
}

TEST(FunnelLabels, DegenerateAllNegative) {
  std::vector<std::vector<double>> contributions = {{0.0, 0.0, 0.0}};
  auto y = MakeFunnelLabels(contributions, 0.5);
  for (double v : y) EXPECT_LT(v, 0.0);
}

TEST(ImportanceGroups, FunnelPartitionsCorrectly) {
  std::vector<size_t> parts{0, 1, 2, 3, 4, 5};
  // Partition p passes model m iff p > m + 2.
  auto groups = Ps3Picker::ImportanceGroups(
      parts, [](size_t p, size_t m) { return p > m + 2 ? 1.0 : -1.0; }, 3);
  // Model m passes p > m + 2: funnel stages peel off {0,1,2}, {3}, {4},
  // leaving {5} as the most important group.
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{3}));
  EXPECT_EQ(groups[2], (std::vector<size_t>{4}));
  EXPECT_EQ(groups[3], (std::vector<size_t>{5}));
}

TEST(AllocateSamples, ExactTotalAndCaps) {
  const std::vector<size_t> sizes{20, 10, 8, 2};
  for (size_t budget : {1ul, 5ul, 17ul, 40ul}) {
    auto alloc = Ps3Picker::AllocateSamples(sizes, budget, 2.0);
    size_t total = 0;
    for (size_t i = 0; i < alloc.size(); ++i) {
      EXPECT_LE(alloc[i], sizes[i]);
      total += alloc[i];
    }
    EXPECT_EQ(total, budget);
  }
}

TEST(AllocateSamples, MoreImportantGroupsGetHigherRates) {
  auto alloc = Ps3Picker::AllocateSamples({100, 100, 100}, 60, 2.0);
  double r0 = static_cast<double>(alloc[0]) / 100.0;
  double r2 = static_cast<double>(alloc[2]) / 100.0;
  EXPECT_GT(r2, r0);
  EXPECT_NEAR(r2 / std::max(0.01, r0), 4.0, 1.0);  // alpha^2
}

TEST(AllocateSamples, BudgetLargerThanTotal) {
  auto alloc = Ps3Picker::AllocateSamples({3, 4}, 100, 2.0);
  EXPECT_EQ(alloc[0], 3u);
  EXPECT_EQ(alloc[1], 4u);
}

TEST(AllocateSamples, AlphaOneIsProportional) {
  auto alloc = Ps3Picker::AllocateSamples({100, 100}, 50, 1.0);
  EXPECT_NEAR(static_cast<double>(alloc[0]), 25.0, 1.0);
  EXPECT_NEAR(static_cast<double>(alloc[1]), 25.0, 1.0);
}

TEST(RandomPicker, RespectsBudgetAndWeights) {
  Fixture f;
  RandomPicker picker(f.ctx);
  RandomEngine rng(5);
  Query q = f.CountByNetwork();
  Selection s = picker.Pick(q, 10, &rng, nullptr);
  EXPECT_EQ(s.parts.size(), 10u);
  std::set<size_t> distinct;
  double total_weight = 0.0;
  for (const auto& wp : s.parts) {
    EXPECT_DOUBLE_EQ(wp.weight, 4.0);  // 40 partitions / 10
    distinct.insert(wp.partition);
    total_weight += wp.weight;
  }
  EXPECT_EQ(distinct.size(), 10u);
  EXPECT_DOUBLE_EQ(total_weight, 40.0);
}

TEST(RandomPicker, CountEstimateIsUnbiased) {
  Fixture f;
  RandomPicker picker(f.ctx);
  Query q;
  q.aggregates = {Aggregate::Count()};
  auto answers = query::EvaluateAllPartitions(q, *f.parts);
  auto exact = query::ExactAnswer(q, answers);
  double truth = exact.begin()->second[0];
  double mean_est = 0.0;
  constexpr int kRuns = 300;
  for (int r = 0; r < kRuns; ++r) {
    RandomEngine rng(1000 + r);
    Selection s = picker.Pick(q, 8, &rng, nullptr);
    auto est = query::CombineWeighted(q, answers, s.parts);
    mean_est += est.begin()->second[0];
  }
  mean_est /= kRuns;
  EXPECT_NEAR(mean_est / truth, 1.0, 0.02);
}

TEST(RandomFilterPicker, OnlySelectsPassingPartitions) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  size_t tenant_col = static_cast<size_t>(
      f.table->schema().FindColumn("TenantId"));
  int32_t code = f.table->column(tenant_col).dict()->Find("Tenant_0");
  q.predicate = Predicate::CategoricalIn(tenant_col, {code});
  auto candidates = FilterBySelectivity(f.ctx, q);
  ASSERT_LT(candidates.size(), f.parts->num_partitions());
  std::set<size_t> cand_set(candidates.begin(), candidates.end());
  RandomFilterPicker picker(f.ctx);
  RandomEngine rng(9);
  Selection s = picker.Pick(q, 5, &rng, nullptr);
  for (const auto& wp : s.parts) {
    EXPECT_TRUE(cand_set.count(wp.partition));
  }
}

TEST(FilterBySelectivity, PerfectRecallOnNumericRange) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  size_t col = static_cast<size_t>(
      f.table->schema().FindColumn("records_received_count"));
  q.predicate = Predicate::NumericCompare(col, CompareOp::kGt, 100.0);
  auto candidates = FilterBySelectivity(f.ctx, q);
  std::set<size_t> cand_set(candidates.begin(), candidates.end());
  auto answers = query::EvaluateAllPartitions(q, *f.parts);
  for (size_t p = 0; p < answers.size(); ++p) {
    bool has_rows = !answers[p].empty() &&
                    answers[p].begin()->second[0].count > 0;
    if (has_rows) EXPECT_TRUE(cand_set.count(p)) << p;
  }
}

TEST(ClusterSelect, WeightsSumToMemberCount) {
  Fixture f;
  Query q = f.CountByNetwork();
  auto fm = f.featurizer->BuildFeatures(q);
  featurize::FeatureNormalizer norm;
  norm.Fit(f.featurizer->feature_schema(), {&fm});
  norm.Apply(&fm);
  std::vector<size_t> members;
  for (size_t p = 0; p < 30; ++p) members.push_back(p);
  RandomEngine rng(13);
  Selection s = ClusterSelect(fm, f.featurizer->feature_schema(), members, 6,
                              ClusterSelectOptions{}, &rng);
  EXPECT_EQ(s.parts.size(), 6u);
  double total = 0.0;
  for (const auto& wp : s.parts) total += wp.weight;
  EXPECT_DOUBLE_EQ(total, 30.0);
}

TEST(ClusterSelect, FullBudgetSelectsAll) {
  Fixture f;
  Query q = f.CountByNetwork();
  auto fm = f.featurizer->BuildFeatures(q);
  featurize::FeatureNormalizer norm;
  norm.Fit(f.featurizer->feature_schema(), {&fm});
  norm.Apply(&fm);
  std::vector<size_t> members{3, 5, 7};
  RandomEngine rng(13);
  Selection s = ClusterSelect(fm, f.featurizer->feature_schema(), members, 3,
                              ClusterSelectOptions{}, &rng);
  ASSERT_EQ(s.parts.size(), 3u);
  for (const auto& wp : s.parts) EXPECT_DOUBLE_EQ(wp.weight, 1.0);
}

TEST(ClusterSelect, AllAlgorithmsSatisfyInvariants) {
  Fixture f;
  Query q = f.CountByNetwork();
  auto fm = f.featurizer->BuildFeatures(q);
  featurize::FeatureNormalizer norm;
  norm.Fit(f.featurizer->feature_schema(), {&fm});
  norm.Apply(&fm);
  std::vector<size_t> members;
  for (size_t p = 0; p < 25; ++p) members.push_back(p);
  for (auto algo : {ClusterAlgo::kKMeans, ClusterAlgo::kHacSingle,
                    ClusterAlgo::kHacWard}) {
    ClusterSelectOptions opts;
    opts.algo = algo;
    RandomEngine rng(19);
    Selection s = ClusterSelect(fm, f.featurizer->feature_schema(), members,
                                5, opts, &rng);
    EXPECT_EQ(s.parts.size(), 5u);
    double total = 0.0;
    for (const auto& wp : s.parts) total += wp.weight;
    EXPECT_DOUBLE_EQ(total, 25.0);
  }
}

TEST(LssStratifiedSelect, BudgetAndWeightInvariants) {
  std::vector<size_t> candidates;
  std::vector<double> scores;
  RandomEngine rng(3);
  for (size_t i = 0; i < 50; ++i) {
    candidates.push_back(i);
    scores.push_back(rng.NextDouble());
  }
  RandomEngine pick_rng(4);
  Selection s =
      LssPicker::StratifiedSelect(candidates, scores, 10, 4, &pick_rng);
  EXPECT_EQ(s.parts.size(), 10u);
  double total = 0.0;
  for (const auto& wp : s.parts) total += wp.weight;
  EXPECT_NEAR(total, 50.0, 1e-9);
}

TEST(LssStratifiedSelect, ConstantScoresFallBackToUniform) {
  std::vector<size_t> candidates{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> scores(8, 0.5);
  RandomEngine rng(5);
  Selection s = LssPicker::StratifiedSelect(candidates, scores, 4, 4, &rng);
  EXPECT_EQ(s.parts.size(), 4u);
  for (const auto& wp : s.parts) EXPECT_DOUBLE_EQ(wp.weight, 2.0);
}

struct TrainedFixture : Fixture {
  TrainingData data;
  Ps3Model model;
  LssModel lss;

  explicit TrainedFixture(size_t rows = 8000, size_t partitions = 40)
      : Fixture(rows, partitions) {
    workload::QueryGenerator gen(table.get(), bundle.spec, {});
    data = BuildTrainingData(ctx, gen.GenerateSet(16, 77));
    Ps3Options opts;
    opts.gbdt.num_trees = 8;
    opts.feature_selection.enabled = false;
    model = TrainPs3(ctx, data, opts);
    LssOptions lss_opts;
    lss_opts.gbdt.num_trees = 8;
    lss_opts.eval_queries = 3;
    lss = TrainLss(ctx, data, lss_opts);
  }
};

TEST(Ps3Trainer, ProducesKRegressorsAndImportance) {
  TrainedFixture f;
  EXPECT_EQ(f.model.regressors.size(), 4u);
  EXPECT_EQ(f.model.thresholds.size(), 4u);
  double total = 0.0;
  for (double g : f.model.category_importance) {
    EXPECT_GE(g, 0.0);
    total += g;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(Ps3Picker, RespectsBudgetAndUniqueness) {
  TrainedFixture f;
  Ps3Picker picker(f.ctx, &f.model);
  for (size_t budget : {2ul, 5ul, 10ul, 20ul}) {
    for (size_t qi = 0; qi < 4; ++qi) {
      RandomEngine rng(31 + qi);
      Selection s = picker.Pick(f.data.queries[qi], budget, &rng, nullptr);
      EXPECT_LE(s.parts.size(), budget);
      std::set<size_t> distinct;
      for (const auto& wp : s.parts) {
        EXPECT_GT(wp.weight, 0.0);
        distinct.insert(wp.partition);
      }
      EXPECT_EQ(distinct.size(), s.parts.size()) << "duplicate partitions";
    }
  }
}

TEST(Ps3Picker, FullBudgetIsExact) {
  TrainedFixture f;
  Ps3Picker picker(f.ctx, &f.model);
  Query q = f.CountByNetwork();
  auto answers = query::EvaluateAllPartitions(q, *f.parts);
  auto exact = query::ExactAnswer(q, answers);
  RandomEngine rng(17);
  Selection s = picker.Pick(q, f.parts->num_partitions(), &rng, nullptr);
  auto est = query::CombineWeighted(q, answers, s.parts);
  auto m = query::ComputeErrorMetrics(q, exact, est);
  EXPECT_DOUBLE_EQ(m.avg_rel_error, 0.0);
}

TEST(Ps3Picker, BeatsRandomAtLowBudget) {
  // Needs enough partitions that a ~12% budget is meaningful after the
  // funnel splits it across importance groups.
  TrainedFixture f(24000, 80);
  Ps3Picker ps3(f.ctx, &f.model);
  RandomPicker random(f.ctx);
  double ps3_err = 0.0, rnd_err = 0.0;
  for (size_t qi = 0; qi < f.data.queries.size(); ++qi) {
    const Query& q = f.data.queries[qi];
    auto eval = [&](const PartitionPicker& p, uint64_t seed) {
      double err = 0.0;
      for (int r = 0; r < 3; ++r) {
        RandomEngine rng(seed + r);
        Selection s = p.Pick(q, 10, &rng, nullptr);
        auto est = query::CombineWeighted(q, f.data.answers[qi], s.parts);
        err += query::ComputeErrorMetrics(q, f.data.exact[qi], est)
                   .avg_rel_error;
      }
      return err / 3.0;
    };
    ps3_err += eval(ps3, 100);
    rnd_err += eval(random, 200);
  }
  // Training queries: the easiest possible comparison — PS3 must win.
  EXPECT_LT(ps3_err, rnd_err);
}

TEST(Ps3Picker, TelemetryPopulated) {
  TrainedFixture f;
  Ps3Picker picker(f.ctx, &f.model);
  RandomEngine rng(23);
  PickTelemetry t;
  picker.Pick(f.data.queries[0], 10, &rng, &t);
  EXPECT_GT(t.total_ms, 0.0);
  EXPECT_GE(t.total_ms, t.clustering_ms);
}

TEST(Ps3Picker, OracleModeRuns) {
  TrainedFixture f;
  Ps3Picker picker(f.ctx, &f.model);
  picker.set_oracle([&f](const Query& q) {
    auto answers = query::EvaluateAllPartitions(q, *f.parts);
    auto exact = query::ExactAnswer(q, answers);
    return ComputeContributions(q, answers, exact);
  });
  RandomEngine rng(29);
  Selection s = picker.Pick(f.data.queries[0], 8, &rng, nullptr);
  EXPECT_LE(s.parts.size(), 8u);
  EXPECT_GT(s.parts.size(), 0u);
}

TEST(Ps3Picker, LesionSwitchesRun) {
  TrainedFixture f;
  for (int lesion = 0; lesion < 3; ++lesion) {
    Ps3Model model = f.model;
    model.options.use_clustering = lesion != 0;
    model.options.use_outliers = lesion != 1;
    model.options.use_regressors = lesion != 2;
    Ps3Picker picker(f.ctx, &model);
    RandomEngine rng(37);
    Selection s = picker.Pick(f.data.queries[1], 10, &rng, nullptr);
    EXPECT_LE(s.parts.size(), 10u);
    EXPECT_GT(s.parts.size(), 0u);
  }
}

TEST(Ps3Picker, ComplexPredicateFallsBackToRandom) {
  TrainedFixture f;
  // >10 clauses forces the random fallback inside groups; the selection
  // must still satisfy the invariants.
  Query q;
  q.aggregates = {Aggregate::Count()};
  size_t col = static_cast<size_t>(
      f.table->schema().FindColumn("records_received_count"));
  std::vector<query::PredicatePtr> clauses;
  for (int i = 0; i < 12; ++i) {
    clauses.push_back(Predicate::NumericCompare(
        col, CompareOp::kGt, static_cast<double>(i)));
  }
  q.predicate = Predicate::And(std::move(clauses));
  Ps3Picker picker(f.ctx, &f.model);
  RandomEngine rng(43);
  Selection s = picker.Pick(q, 8, &rng, nullptr);
  EXPECT_LE(s.parts.size(), 8u);
  EXPECT_GT(s.parts.size(), 0u);
}

TEST(LssPicker, RespectsBudget) {
  TrainedFixture f;
  LssPicker picker(f.ctx, &f.lss);
  RandomEngine rng(41);
  Selection s = picker.Pick(f.data.queries[0], 10, &rng, nullptr);
  EXPECT_LE(s.parts.size(), 10u);
  EXPECT_GT(s.parts.size(), 0u);
}

TEST(LssModel, StrataSweepProducedEntries) {
  TrainedFixture f;
  EXPECT_FALSE(f.lss.strata_by_budget.empty());
  for (const auto& [budget, strata] : f.lss.strata_by_budget) {
    EXPECT_GT(strata, 1u);
  }
}

TEST(FeatureSelection, NeverExcludesEverythingAndHelps) {
  TrainedFixture f;
  FeatureSelectionOptions opts;
  opts.restarts = 1;
  opts.eval_queries = 3;
  auto excluded = SelectClusterFeatures(f.ctx, f.data, f.model.normalizer,
                                        ClusterAlgo::kKMeans, opts);
  ASSERT_EQ(excluded.size(), static_cast<size_t>(featurize::kNumStatKinds));
  bool all = true;
  for (bool b : excluded) all = all && b;
  EXPECT_FALSE(all);

  // The selected subset must score <= the full feature set on the
  // evaluation it optimized.
  RandomEngine rng(opts.seed);
  auto eval_queries =
      SampleWithoutReplacement(f.data.num_queries(), 3, &rng);
  std::vector<bool> none(featurize::kNumStatKinds, false);
  double with_all = EvaluateClusteringError(
      f.ctx, f.data, f.model.normalizer, ClusterAlgo::kKMeans, none,
      eval_queries, opts.budget_frac, opts.seed);
  double with_sel = EvaluateClusteringError(
      f.ctx, f.data, f.model.normalizer, ClusterAlgo::kKMeans, excluded,
      eval_queries, opts.budget_frac, opts.seed);
  EXPECT_LE(with_sel, with_all + 1e-9);
}

TEST(Outliers, SubsetOfCandidatesNoDuplicates) {
  TrainedFixture f;
  Query q = f.CountByNetwork();
  std::vector<size_t> all;
  for (size_t p = 0; p < f.parts->num_partitions(); ++p) all.push_back(p);
  Ps3Picker picker(f.ctx, &f.model);
  auto outliers = picker.FindOutliers(q, all);
  std::set<size_t> uniq(outliers.begin(), outliers.end());
  EXPECT_EQ(uniq.size(), outliers.size());
  EXPECT_LE(outliers.size(), all.size());
}

TEST(Outliers, NoneWithoutGroupBy) {
  TrainedFixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  std::vector<size_t> all{0, 1, 2, 3};
  Ps3Picker picker(f.ctx, &f.model);
  EXPECT_TRUE(picker.FindOutliers(q, all).empty());
}

}  // namespace
}  // namespace ps3::core
