#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/hash.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace ps3 {
namespace {

TEST(RandomEngine, Deterministic) {
  RandomEngine a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomEngine, DifferentSeedsDiffer) {
  RandomEngine a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomEngine, NextDoubleInUnitInterval) {
  RandomEngine rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomEngine, UniformMean) {
  RandomEngine rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RandomEngine, BoundedUniform) {
  RandomEngine rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextUint64(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RandomEngine, NextInt64Range) {
  RandomEngine rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomEngine, GaussianMoments) {
  RandomEngine rng(13);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kN, 1.0, 0.03);
}

TEST(RandomEngine, ExponentialMean) {
  RandomEngine rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double total = 0.0;
  for (size_t i = 0; i < 100; ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, RankOneDominates) {
  ZipfSampler z(167, 1.9);
  // Calibration used by the Aria generator: top version ~ half the data.
  EXPECT_GT(z.Pmf(0), 0.45);
  EXPECT_LT(z.Pmf(0), 0.6);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler z(50, 1.0);
  RandomEngine rng(23);
  std::vector<int> counts(50, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.Sample(&rng)];
  for (size_t r : {0ul, 1ul, 5ul, 20ul}) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, z.Pmf(r), 0.01);
  }
}

TEST(ZipfSampler, MonotoneDecreasingPmf) {
  ZipfSampler z(30, 0.8);
  for (size_t i = 1; i < 30; ++i) EXPECT_LE(z.Pmf(i), z.Pmf(i - 1) + 1e-12);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  RandomEngine rng(31);
  auto s = SampleWithoutReplacement(100, 30, &rng);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacement, FullDraw) {
  RandomEngine rng(37);
  auto s = SampleWithoutReplacement(10, 10, &rng);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(SampleWithoutReplacement, ApproximatelyUniform) {
  RandomEngine rng(41);
  std::vector<int> hits(20, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (size_t v : SampleWithoutReplacement(20, 5, &rng)) ++hits[v];
  }
  // Each element should be included ~ 5/20 of the time.
  for (int h : hits) EXPECT_NEAR(h / 20000.0, 0.25, 0.02);
}

TEST(Shuffle, Permutes) {
  RandomEngine rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  Shuffle(&v, &rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Hash, StringStability) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
}

TEST(Hash, SaltChangesHash) {
  EXPECT_NE(HashInt(5, 1), HashInt(5, 2));
  EXPECT_EQ(HashInt(5, 1), HashInt(5, 1));
}

TEST(Hash, DoubleNegZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
}

TEST(Hash, UnitRange) {
  RandomEngine rng(47);
  for (int i = 0; i < 1000; ++i) {
    double u = HashToUnit(rng.Next());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MathUtil, MeanAndStd) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(MathUtil, QuantileSorted) {
  std::vector<double> v{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(v, 0.25), 1.0);
}

TEST(MathUtil, ComponentwiseMedian) {
  std::vector<double> a{1, 10}, b{2, 20}, c{3, 0};
  auto median = ComponentwiseMedian({&a, &b, &c});
  EXPECT_DOUBLE_EQ(median[0], 2.0);
  EXPECT_DOUBLE_EQ(median[1], 10.0);
}

TEST(MathUtil, TrapezoidAuc) {
  EXPECT_DOUBLE_EQ(TrapezoidAuc({0, 1}, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(TrapezoidAuc({0, 1, 2}, {0, 1, 0}), 1.0);
}

TEST(MathUtil, SquaredL2) {
  EXPECT_DOUBLE_EQ(SquaredL2({0, 0}, {3, 4}), 25.0);
}

TEST(Status, RoundTrip) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ToString(), "InvalidArgument: nope");
}

TEST(Result, ValueAndError) {
  Result<int> r = 5;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  Result<int> e = Status::NotFound("x");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StringUtil, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(StringUtil, JoinSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("selectivity_upper", "selectivity"));
  EXPECT_FALSE(StartsWith("sel", "selectivity"));
}

}  // namespace
}  // namespace ps3
