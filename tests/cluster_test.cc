#include <gtest/gtest.h>

#include <set>

#include "cluster/agglomerative.h"
#include "cluster/exemplar.h"
#include "cluster/kmeans.h"
#include "common/random.h"

namespace ps3::cluster {
namespace {

/// Three well-separated 2D blobs of `per` points each.
std::vector<std::vector<double>> MakeBlobs(size_t per, uint64_t seed = 3) {
  RandomEngine rng(seed);
  std::vector<std::vector<double>> pts;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per; ++i) {
      pts.push_back({centers[b][0] + 0.5 * rng.NextGaussian(),
                     centers[b][1] + 0.5 * rng.NextGaussian()});
    }
  }
  return pts;
}

bool RecoversBlobs(const Clustering& c, size_t per) {
  // Every blob must map to a single cluster label and labels must differ.
  std::set<int> labels;
  for (int b = 0; b < 3; ++b) {
    int label = c.assignment[b * per];
    for (size_t i = 0; i < per; ++i) {
      if (c.assignment[b * per + i] != label) return false;
    }
    labels.insert(label);
  }
  return labels.size() == 3;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  auto pts = MakeBlobs(30);
  auto c = KMeans(pts, 3);
  EXPECT_TRUE(RecoversBlobs(c, 30));
}

TEST(KMeans, AllClustersNonEmpty) {
  auto pts = MakeBlobs(10);
  for (size_t k : {1ul, 2ul, 5ul, 10ul, 30ul}) {
    auto c = KMeans(pts, k);
    auto members = c.Members();
    ASSERT_EQ(members.size(), k);
    for (const auto& m : members) EXPECT_FALSE(m.empty());
  }
}

TEST(KMeans, KEqualsNIsIdentityPartition) {
  auto pts = MakeBlobs(4);
  auto c = KMeans(pts, pts.size());
  std::set<int> labels(c.assignment.begin(), c.assignment.end());
  EXPECT_EQ(labels.size(), pts.size());
}

TEST(KMeans, HandlesDuplicatePoints) {
  std::vector<std::vector<double>> pts(20, {1.0, 1.0});
  pts.push_back({5.0, 5.0});
  auto c = KMeans(pts, 3);
  auto members = c.Members();
  for (const auto& m : members) EXPECT_FALSE(m.empty());
}

TEST(Agglomerative, SingleLinkageRecoversBlobs) {
  auto pts = MakeBlobs(20);
  auto c = Agglomerative(pts, 3, Linkage::kSingle);
  EXPECT_TRUE(RecoversBlobs(c, 20));
}

TEST(Agglomerative, WardRecoversBlobs) {
  auto pts = MakeBlobs(20);
  auto c = Agglomerative(pts, 3, Linkage::kWard);
  EXPECT_TRUE(RecoversBlobs(c, 20));
}

TEST(Agglomerative, ExactClusterCount) {
  auto pts = MakeBlobs(10);
  for (size_t k : {1ul, 2ul, 7ul, 30ul}) {
    auto c = Agglomerative(pts, k, Linkage::kWard);
    std::set<int> labels(c.assignment.begin(), c.assignment.end());
    EXPECT_EQ(labels.size(), k);
  }
}

TEST(Agglomerative, SingleLinkageChains) {
  // A chain of near points plus one far point: single linkage groups the
  // chain at k=2, whereas Ward might split it — the classic difference.
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({static_cast<double>(i), 0.0});
  pts.push_back({100.0, 0.0});
  auto c = Agglomerative(pts, 2, Linkage::kSingle);
  int chain_label = c.assignment[0];
  for (int i = 1; i < 10; ++i) EXPECT_EQ(c.assignment[i], chain_label);
  EXPECT_NE(c.assignment[10], chain_label);
}

TEST(Exemplar, MedianPicksCentralMember) {
  std::vector<std::vector<double>> pts = {
      {0.0}, {1.0}, {2.0}, {100.0},  // outlier should not be exemplar
  };
  std::vector<size_t> members{0, 1, 2, 3};
  size_t ex = MedianExemplar(pts, members);
  EXPECT_EQ(ex, 1u);  // median ~1.5 -> closest is index 1 or 2
}

TEST(Exemplar, SingletonCluster) {
  std::vector<std::vector<double>> pts = {{3.0, 4.0}};
  std::vector<size_t> members{0};
  EXPECT_EQ(MedianExemplar(pts, members), 0u);
  RandomEngine rng(1);
  EXPECT_EQ(RandomExemplar(members, &rng), 0u);
}

TEST(Exemplar, RandomExemplarCoversMembers) {
  std::vector<size_t> members{4, 7, 9};
  RandomEngine rng(5);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(RandomExemplar(members, &rng));
  EXPECT_EQ(seen, (std::set<size_t>{4, 7, 9}));
}

/// Property: for any k, cluster sizes sum to n (weights in PS3 depend on
/// this invariant).
class ClusterSizeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ClusterSizeProperty, SizesSumToN) {
  auto pts = MakeBlobs(15, GetParam());
  size_t k = 1 + GetParam() % 12;
  auto members_of = [&](const Clustering& c) {
    size_t total = 0;
    for (const auto& m : c.Members()) total += m.size();
    return total;
  };
  EXPECT_EQ(members_of(KMeans(pts, k)), pts.size());
  EXPECT_EQ(members_of(Agglomerative(pts, k, Linkage::kWard)), pts.size());
  EXPECT_EQ(members_of(Agglomerative(pts, k, Linkage::kSingle)),
            pts.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterSizeProperty,
                         ::testing::Range<size_t>(1, 11));

}  // namespace
}  // namespace ps3::cluster
