// Cross-module property tests: statistical invariants checked over
// parameterized sweeps (TEST_P), plus edge/failure-injection cases that
// don't fit a single module's unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include <cstring>

#include <cstdlib>

#include "core/cluster_select.h"
#include "core/exact_picker.h"
#include "core/lss_picker.h"
#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "core/random_picker.h"
#include "core/training_data.h"
#include "featurize/featurizer.h"
#include "io/cold_source.h"
#include "io/fault_injector.h"
#include "io/partition_store.h"
#include "io/prefetch_pipeline.h"
#include "query/evaluator.h"
#include "query/metrics.h"
#include "runtime/query_scheduler.h"
#include "sketch/histogram.h"
#include "sketch/akmv.h"
#include "common/hash.h"
#include "runtime/simd.h"
#include "stats/stats_builder.h"
#include "storage/sharded_table.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace ps3 {
namespace {

// ---------------------------------------------------------------------
// Histogram CDF vs brute force under different data shapes.

struct DistCase {
  const char* name;
  double (*draw)(RandomEngine&);
};

double DrawUniform(RandomEngine& rng) { return rng.NextDouble() * 100.0; }
double DrawGaussian(RandomEngine& rng) { return 10.0 * rng.NextGaussian(); }
double DrawExponential(RandomEngine& rng) {
  return rng.NextExponential(0.05);
}
double DrawDiscrete(RandomEngine& rng) {
  return static_cast<double>(rng.NextUint64(8));
}
double DrawHeavyZero(RandomEngine& rng) {
  return rng.NextBool(0.7) ? 0.0 : rng.NextExponential(0.01);
}

class HistogramDistributions : public ::testing::TestWithParam<DistCase> {};

TEST_P(HistogramDistributions, CdfWithinBucketResolution) {
  RandomEngine rng(99);
  std::vector<double> values(4000);
  for (auto& v : values) v = GetParam().draw(rng);
  auto hist = sketch::EquiDepthHistogram::Build(values, 10);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.05, 0.2, 0.5, 0.77, 0.93}) {
    double x = sorted[static_cast<size_t>(q * 3999)];
    double truth = 0.0;
    for (double v : values) {
      if (v <= x) truth += 1.0;
    }
    truth /= 4000.0;
    // An equi-depth histogram with B buckets resolves the CDF to ~1/B.
    EXPECT_NEAR(hist.CdfLe(x), truth, 0.11) << GetParam().name << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramDistributions,
    ::testing::Values(DistCase{"uniform", DrawUniform},
                      DistCase{"gaussian", DrawGaussian},
                      DistCase{"exponential", DrawExponential},
                      DistCase{"discrete", DrawDiscrete},
                      DistCase{"heavy_zero", DrawHeavyZero}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// AKMV estimate accuracy across cardinalities.

class AkmvCardinality : public ::testing::TestWithParam<int> {};

TEST_P(AkmvCardinality, RelativeErrorBounded) {
  const int truth = GetParam();
  sketch::AkmvSketch sketch(128);
  for (int i = 0; i < truth * 3; ++i) {
    sketch.UpdateHash(HashInt(i % truth, /*salt=*/7));
  }
  double est = sketch.EstimateDistinct();
  if (truth < 128) {
    EXPECT_DOUBLE_EQ(est, truth);  // strictly below k: exact
  } else {
    // At or above k the sketch cannot distinguish "exactly k" from more
    // and falls back to the KMV estimator (~9% rel std at k=128).
    EXPECT_NEAR(est / truth, 1.0, 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, AkmvCardinality,
                         ::testing::Values(10, 100, 128, 500, 2000, 20000));

// ---------------------------------------------------------------------
// Horvitz-Thompson unbiasedness of uniform selection, multiple budgets.

class UniformUnbiased : public ::testing::TestWithParam<size_t> {};

TEST_P(UniformUnbiased, SumEstimatorCentersOnTruth) {
  const size_t budget = GetParam();
  constexpr size_t kN = 40;
  // Per-partition values with strong skew.
  std::vector<double> part_sums(kN);
  RandomEngine data_rng(5);
  for (auto& v : part_sums) v = data_rng.NextExponential(0.01);
  double truth = std::accumulate(part_sums.begin(), part_sums.end(), 0.0);

  std::vector<size_t> candidates(kN);
  std::iota(candidates.begin(), candidates.end(), 0);
  double mean = 0.0;
  constexpr int kRuns = 4000;
  RandomEngine rng(11);
  for (int r = 0; r < kRuns; ++r) {
    auto sel = core::UniformSelection(candidates, budget, &rng);
    double est = 0.0;
    for (const auto& wp : sel.parts) est += wp.weight * part_sums[wp.partition];
    mean += est;
  }
  mean /= kRuns;
  EXPECT_NEAR(mean / truth, 1.0, 0.05) << "budget " << budget;
}

INSTANTIATE_TEST_SUITE_P(Budgets, UniformUnbiased,
                         ::testing::Values(1, 4, 10, 20, 39, 40));

// ---------------------------------------------------------------------
// AllocateSamples invariants over a parameter sweep.

class AllocateSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(AllocateSweep, TotalExactAndRatesMonotone) {
  auto [budget, alpha] = GetParam();
  const std::vector<size_t> sizes{37, 0, 12, 55, 3};
  auto alloc = core::Ps3Picker::AllocateSamples(sizes, budget, alpha);
  size_t total = 0, cap = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LE(alloc[i], sizes[i]);
    total += alloc[i];
    cap += sizes[i];
  }
  EXPECT_EQ(total, std::min(budget, cap));
  // Sampling rates never decrease with importance (later groups), modulo
  // integer rounding of one sample on either side.
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    if (sizes[i] == 0 || sizes[i + 1] == 0) continue;
    double r_lo = static_cast<double>(alloc[i]) / sizes[i];
    double r_hi = static_cast<double>(alloc[i + 1]) / sizes[i + 1];
    double rounding = 1.0 / sizes[i] + 1.0 / sizes[i + 1];
    EXPECT_GE(r_hi + rounding + 1e-9, r_lo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetAlpha, AllocateSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 7, 25, 60, 107, 200),
                       ::testing::Values(1.0, 1.5, 2.0, 4.0)));

// ---------------------------------------------------------------------
// LSS stratified selection invariants across strata counts.

class LssStrataSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LssStrataSweep, WeightsAlwaysCoverPopulation) {
  const size_t n_strata = GetParam();
  RandomEngine rng(3);
  std::vector<size_t> candidates(60);
  std::iota(candidates.begin(), candidates.end(), 0);
  std::vector<double> scores(60);
  for (auto& s : scores) s = rng.NextGaussian();
  for (size_t budget : {5ul, 15ul, 30ul}) {
    RandomEngine pick_rng(budget * 31 + n_strata);
    auto sel = core::LssPicker::StratifiedSelect(candidates, scores, budget,
                                                 n_strata, &pick_rng);
    EXPECT_EQ(sel.parts.size(), budget);
    double total = 0.0;
    for (const auto& wp : sel.parts) total += wp.weight;
    EXPECT_NEAR(total, 60.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Strata, LssStrataSweep,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

// ---------------------------------------------------------------------
// Edge and failure-injection cases.

TEST(EdgeCases, EmptyInClauseMatchesNothing) {
  auto bundle = workload::MakeAria(500, 1);
  storage::PartitionedTable pt(bundle.table, 2);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  q.predicate = query::Predicate::CategoricalIn(
      static_cast<size_t>(bundle.table->schema().FindColumn("TenantId")),
      {});
  auto exact = query::ExactAnswer(q, query::EvaluateAllPartitions(q, pt));
  EXPECT_TRUE(exact.empty());
}

TEST(EdgeCases, SinglePartitionTable) {
  auto bundle = workload::MakeKdd(300, 2);
  storage::PartitionedTable pt(bundle.table, 1);
  stats::StatsOptions opts;
  auto stats = stats::StatsBuilder(opts).Build(pt);
  EXPECT_EQ(stats.num_partitions(), 1u);
  featurize::Featurizer fz(bundle.table->schema(), &stats);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  auto fm = fz.BuildFeatures(q);
  EXPECT_EQ(fm.n, 1u);
}

TEST(EdgeCases, PickBudgetZeroIsEmpty) {
  auto bundle = workload::MakeAria(1000, 3);
  storage::PartitionedTable pt(bundle.table, 5);
  stats::StatsOptions opts;
  auto stats = stats::StatsBuilder(opts).Build(pt);
  featurize::Featurizer fz(bundle.table->schema(), &stats);
  core::PickerContext ctx{&pt, &stats, &fz};
  core::RandomPicker picker(ctx);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  RandomEngine rng(1);
  EXPECT_TRUE(picker.Pick(q, 0, &rng, nullptr).parts.empty());
}

TEST(EdgeCases, MetricsWithEmptyExactAnswer) {
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  query::QueryAnswer exact, est;
  auto m = query::ComputeErrorMetrics(q, exact, est);
  EXPECT_DOUBLE_EQ(m.avg_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(m.missed_groups, 0.0);
}

TEST(EdgeCases, CombineWeightedEmptySelection) {
  auto bundle = workload::MakeAria(500, 5);
  storage::PartitionedTable pt(bundle.table, 4);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  auto answers = query::EvaluateAllPartitions(q, pt);
  auto est = query::CombineWeighted(q, answers, {});
  EXPECT_TRUE(est.empty());
}

TEST(EdgeCases, ZipfSingleValue) {
  ZipfSampler z(1, 1.0);
  RandomEngine rng(1);
  EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(z.Pmf(0), 1.0);
}

TEST(EdgeCases, ClusterSelectIdenticalFeatures) {
  // All partitions identical: the degenerate path must still produce the
  // requested number of exemplars with total weight == member count.
  featurize::FeatureMatrix fm(10, 4);  // all zeros
  storage::Schema schema({{"x", storage::ColumnType::kNumeric}});
  stats::TableStats empty_stats;
  auto fs = featurize::FeatureSchema::Build(schema, empty_stats);
  std::vector<size_t> members(10);
  std::iota(members.begin(), members.end(), 0);
  RandomEngine rng(2);
  // Note: schema/features dims differ; ClusterSelect only reads dims via
  // the schema, which here yields no varying dimension -> degenerate path.
  featurize::FeatureMatrix sized(10, fs.num_features());
  auto sel = core::ClusterSelect(sized, fs, members, 4,
                                 core::ClusterSelectOptions{}, &rng);
  EXPECT_EQ(sel.parts.size(), 4u);
  double total = 0.0;
  for (const auto& wp : sel.parts) total += wp.weight;
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(EdgeCases, HistogramSingleRow) {
  auto h = sketch::EquiDepthHistogram::Build({42.0}, 10);
  EXPECT_DOUBLE_EQ(h.CdfLe(42.0), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfLe(41.0), 0.0);
  auto b = h.RangeSelectivityBounds(40.0, 45.0);
  EXPECT_DOUBLE_EQ(b.upper, 1.0);
}

// ---------------------------------------------------------------------
// Scalar vs vectorized execution equivalence on randomized queries.
//
// The vectorized engine must be bit-identical to the scalar interpreter:
// same groups, and bitwise-equal (sum, count) accumulators, under any
// thread count. Queries are drawn adversarially: nested AND/OR/NOT trees,
// IN-lists (including empty and out-of-dictionary codes), all CompareOps,
// CASE-filtered aggregates, and compound arithmetic including division.

uint64_t BitsOf(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

query::PredicatePtr RandomPredicate(const storage::Table& t,
                                    RandomEngine* rng, int depth) {
  const auto& schema = t.schema();
  double roll = rng->NextDouble();
  if (depth <= 0 || roll < 0.45) {
    size_t col = rng->NextUint64(schema.num_columns());
    if (schema.IsCategorical(col)) {
      auto dict_size =
          static_cast<int64_t>(t.column(col).dict()->size());
      // 0 codes = empty IN-list; sets of 5+ take the membership-table
      // probe (AVX2 gather kernel) instead of the cmpeq chain, so both
      // dispatch tiers stay covered by the equivalence sweeps.
      size_t k = rng->NextBool(0.3) ? 5 + rng->NextUint64(8)
                                    : rng->NextUint64(5);
      std::vector<int32_t> codes;
      codes.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        // Range [-1, dict_size]: occasionally absent codes.
        codes.push_back(
            static_cast<int32_t>(rng->NextInt64(-1, dict_size)));
      }
      return query::Predicate::CategoricalIn(col, std::move(codes));
    }
    auto op = static_cast<query::CompareOp>(rng->NextUint64(6));
    double v = t.column(col).NumericAt(rng->NextUint64(t.num_rows()));
    if (rng->NextBool(0.2)) v += rng->NextGaussian();
    return query::Predicate::NumericCompare(col, op, v);
  }
  if (roll < 0.60) return query::Predicate::Not(RandomPredicate(t, rng, depth - 1));
  size_t n_children = 2 + rng->NextUint64(2);
  std::vector<query::PredicatePtr> children;
  children.reserve(n_children);
  for (size_t i = 0; i < n_children; ++i) {
    children.push_back(RandomPredicate(t, rng, depth - 1));
  }
  return roll < 0.80 ? query::Predicate::And(std::move(children))
                     : query::Predicate::Or(std::move(children));
}

query::Query RandomQuery(const storage::Table& t, RandomEngine* rng) {
  const auto& schema = t.schema();
  std::vector<size_t> numeric_cols;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) numeric_cols.push_back(c);
  }
  auto random_numeric = [&]() {
    return numeric_cols[rng->NextUint64(numeric_cols.size())];
  };

  query::Query q;
  q.aggregates.push_back(query::Aggregate::Count());
  if (!numeric_cols.empty()) {
    q.aggregates.push_back(
        query::Aggregate::Sum(query::Expr::Column(random_numeric())));
    // Compound expression with division (exercises the div-by-zero guard
    // in both the AST walk and the compiled kernels).
    auto expr = query::Expr::Div(
        query::Expr::Mul(query::Expr::Column(random_numeric()),
                         query::Expr::Sub(query::Expr::Const(1.0),
                                          query::Expr::Column(random_numeric()))),
        query::Expr::Add(query::Expr::Column(random_numeric()),
                         query::Expr::Const(rng->NextBool(0.5) ? 0.0 : 2.0)));
    q.aggregates.push_back(query::Aggregate::Avg(std::move(expr)));
    q.aggregates.push_back(query::Aggregate::SumCase(
        query::Expr::Column(random_numeric()),
        RandomPredicate(t, rng, 1)));
    // Extrema: plain column MIN plus MAX of a compound expression, so
    // both the gather-kernel fast path and the AST-walk fallback run.
    q.aggregates.push_back(
        query::Aggregate::Min(query::Expr::Column(random_numeric())));
    q.aggregates.push_back(query::Aggregate::Max(
        query::Expr::Sub(query::Expr::Column(random_numeric()),
                         query::Expr::Const(rng->NextGaussian()))));
  }
  if (rng->NextBool(0.8)) q.predicate = RandomPredicate(t, rng, 3);
  double group_roll = rng->NextDouble();
  if (group_roll > 0.4) {
    std::set<size_t> group_cols;
    size_t want = group_roll > 0.8 ? 2 : 1;
    while (group_cols.size() < want) {
      group_cols.insert(rng->NextUint64(schema.num_columns()));
    }
    q.group_by.assign(group_cols.begin(), group_cols.end());
  }
  return q;
}

void ExpectAnswersBitIdentical(
    const std::vector<query::PartitionAnswer>& expected,
    const std::vector<query::PartitionAnswer>& actual, const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t p = 0; p < expected.size(); ++p) {
    ASSERT_EQ(expected[p].size(), actual[p].size())
        << label << " partition " << p;
    for (const auto& [key, accs] : expected[p]) {
      auto it = actual[p].find(key);
      ASSERT_NE(it, actual[p].end()) << label << " partition " << p;
      ASSERT_EQ(accs.size(), it->second.size());
      for (size_t a = 0; a < accs.size(); ++a) {
        EXPECT_EQ(BitsOf(accs[a].sum), BitsOf(it->second[a].sum))
            << label << " partition " << p << " agg " << a;
        EXPECT_EQ(BitsOf(accs[a].count), BitsOf(it->second[a].count))
            << label << " partition " << p << " agg " << a;
        EXPECT_EQ(BitsOf(accs[a].min), BitsOf(it->second[a].min))
            << label << " partition " << p << " agg " << a;
        EXPECT_EQ(BitsOf(accs[a].max), BitsOf(it->second[a].max))
            << label << " partition " << p << " agg " << a;
      }
    }
  }
}

struct EquivCase {
  const char* name;
  workload::DatasetBundle (*make)(size_t, uint64_t);
  size_t rows;
  size_t partitions;  // deliberately not a multiple of 64 rows/partition
};

class ExecEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ExecEquivalence, RandomizedQueriesBitIdentical) {
  auto bundle = GetParam().make(GetParam().rows, /*seed=*/13);
  storage::PartitionedTable pt(bundle.table, GetParam().partitions);
  RandomEngine rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    query::Query q = RandomQuery(*bundle.table, &rng);
    auto scalar = query::EvaluateAllPartitions(
        q, pt, {query::ExecPolicy::kScalar, 1});
    auto vec1 = query::EvaluateAllPartitions(
        q, pt, {query::ExecPolicy::kVectorized, 1});
    auto vec4 = query::EvaluateAllPartitions(
        q, pt, {query::ExecPolicy::kVectorized, 4});
    ExpectAnswersBitIdentical(scalar, vec1, "vectorized-1t");
    ExpectAnswersBitIdentical(scalar, vec4, "vectorized-4t");

    // Kernel equivalence: the scalar word-packing kernels and (when the
    // host supports them) the explicit AVX2 kernels must produce the same
    // bitmaps, hence bit-identical answers.
    query::ExecOptions packed;
    packed.policy = query::ExecPolicy::kVectorized;
    packed.num_threads = 1;
    packed.simd = runtime::SimdLevel::kNone;
    auto vec_packed = query::EvaluateAllPartitions(q, pt, packed);
    ExpectAnswersBitIdentical(scalar, vec_packed, "vectorized-scalar-pack");
    if (runtime::Avx2Available()) {
      packed.simd = runtime::SimdLevel::kAvx2;
      auto vec_avx2 = query::EvaluateAllPartitions(q, pt, packed);
      ExpectAnswersBitIdentical(scalar, vec_avx2, "vectorized-avx2");
    }

    // The finalized answers agree too (same combine path, same inputs).
    auto exact_s = query::ExactAnswer(q, scalar);
    auto exact_v = query::ExactAnswer(q, vec1);
    ASSERT_EQ(exact_s.size(), exact_v.size());
    for (const auto& [key, vals] : exact_s) {
      auto it = exact_v.find(key);
      ASSERT_NE(it, exact_v.end());
      for (size_t a = 0; a < vals.size(); ++a) {
        EXPECT_EQ(BitsOf(vals[a]), BitsOf(it->second[a]));
      }
    }

    // Bitmap-popcount row counting agrees with the scalar interpreter.
    EXPECT_EQ(query::CountMatchingRows(q.predicate, pt,
                                       {query::ExecPolicy::kScalar, 1}),
              query::CountMatchingRows(q.predicate, pt,
                                       {query::ExecPolicy::kVectorized, 4}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, ExecEquivalence,
    ::testing::Values(EquivCase{"tpch", workload::MakeTpchStar, 4000, 7},
                      EquivCase{"aria", workload::MakeAria, 3000, 5},
                      EquivCase{"kdd", workload::MakeKdd, 2000, 3}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ExecEquivalence, FeaturesInvariantToThreadCount) {
  // Parallel stats build and parallel featurization must be bit-identical
  // to the sequential versions for every feature (including the four
  // query-specific selectivity features).
  auto bundle = workload::MakeTpchStar(3000, 17);
  storage::PartitionedTable pt(bundle.table, 6);
  stats::StatsOptions opts1;
  opts1.num_threads = 1;
  stats::StatsOptions opts4 = opts1;
  opts4.num_threads = 4;
  auto stats1 = stats::StatsBuilder(opts1).Build(pt);
  auto stats4 = stats::StatsBuilder(opts4).Build(pt);
  featurize::Featurizer f1(bundle.table->schema(), &stats1, /*num_threads=*/1);
  featurize::Featurizer f4(bundle.table->schema(), &stats4, /*num_threads=*/4);
  RandomEngine rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    query::Query q = RandomQuery(*bundle.table, &rng);
    auto sel1 = f1.ComputeSelectivity(q);
    auto sel4 = f4.ComputeSelectivity(q);
    ASSERT_EQ(sel1.size(), sel4.size());
    for (size_t p = 0; p < sel1.size(); ++p) {
      EXPECT_EQ(BitsOf(sel1[p].upper), BitsOf(sel4[p].upper));
      EXPECT_EQ(BitsOf(sel1[p].indep), BitsOf(sel4[p].indep));
      EXPECT_EQ(BitsOf(sel1[p].min_clause), BitsOf(sel4[p].min_clause));
      EXPECT_EQ(BitsOf(sel1[p].max_clause), BitsOf(sel4[p].max_clause));
      EXPECT_EQ(BitsOf(sel1[p].lower), BitsOf(sel4[p].lower));
    }
    auto fm1 = f1.BuildFeatures(q);
    auto fm4 = f4.BuildFeatures(q);
    ASSERT_EQ(fm1.data.size(), fm4.data.size());
    for (size_t i = 0; i < fm1.data.size(); ++i) {
      EXPECT_EQ(BitsOf(fm1.data[i]), BitsOf(fm4.data[i]));
    }
  }
}

// ---------------------------------------------------------------------
// Shard-count invariance: the same rows sharded 1/2/8 ways must produce
// bit-identical per-partition answers under both exec policies and both
// assignment schemes. Sharding assigns whole partitions, so the global
// partition set (and each accumulator's addition order) never changes.

struct ShardCase {
  const char* name;
  size_t shards;
  storage::ShardAssignment assignment;
};

class ShardInvariance : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardInvariance, BitIdenticalToFlatScan) {
  auto bundle = workload::MakeTpchStar(4000, /*seed=*/21);
  // 13 partitions: not a multiple of any shard count under test, so range
  // shards are uneven and hash shards can be empty.
  storage::PartitionedTable pt(bundle.table, 13);
  storage::ShardedTable sharded(pt, GetParam().shards, GetParam().assignment);
  ASSERT_EQ(sharded.num_partitions(), pt.num_partitions());

  RandomEngine rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    query::Query q = RandomQuery(*bundle.table, &rng);
    for (query::ExecPolicy policy :
         {query::ExecPolicy::kScalar, query::ExecPolicy::kVectorized}) {
      query::ExecOptions opts;
      opts.policy = policy;
      opts.num_threads = 1;
      auto flat = query::EvaluateAllPartitions(q, pt, opts);
      opts.num_threads = 3;  // fan-out parallelism must not matter either
      auto fanned = query::EvaluateAllPartitions(q, sharded, opts);
      ExpectAnswersBitIdentical(flat, fanned,
                                policy == query::ExecPolicy::kScalar
                                    ? "sharded-scalar"
                                    : "sharded-vectorized");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardCounts, ShardInvariance,
    ::testing::Values(
        ShardCase{"range1", 1, storage::ShardAssignment::kRange},
        ShardCase{"range2", 2, storage::ShardAssignment::kRange},
        ShardCase{"range8", 8, storage::ShardAssignment::kRange},
        ShardCase{"hash2", 2, storage::ShardAssignment::kHash},
        ShardCase{"hash8", 8, storage::ShardAssignment::kHash}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// Store-roundtrip invariance: spill → evict → rescan must be bit-exact
// with the resident scan, across shard counts, assignment schemes, cache
// budgets, both exec policies, and with/without prefetch — under budgets
// far smaller than the table, partitions (now: column segments) are
// genuinely evicted and reloaded mid-scan. Every scan through the
// PartitionSource seam is column-pruned (the evaluator passes the
// query's referenced-column hint), so this suite is also the pruned-
// cold-scan determinism contract.

struct StoreCase {
  const char* name;
  size_t shards;
  storage::ShardAssignment assignment;
  bool prefetch;
  /// Cache budget = table bytes / budget_divisor (1 = everything fits).
  size_t budget_divisor;
  /// Spill-time segment encoding; omitted = kAuto (the default policy).
  io::EncodingMode encoding;
};

class StoreRoundtripInvariance : public ::testing::TestWithParam<StoreCase> {
};

TEST_P(StoreRoundtripInvariance, ColdScanBitIdenticalToResident) {
  auto bundle = workload::MakeTpchStar(4000, /*seed=*/57);
  // 13 partitions: uneven shards, and partition sizes that are not a
  // multiple of 64 rows (bitmap tail words cross the file format).
  storage::PartitionedTable pt(bundle.table, 13);

  std::string dir = ::testing::TempDir() + "ps3_prop_XXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  io::PartitionStore::SpillOptions sopts;
  sopts.encoding = GetParam().encoding;
  ASSERT_TRUE(io::PartitionStore::Spill(pt, dir, sopts).ok());

  io::PartitionStore::Options opts;
  auto probe = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  opts.cache_budget_bytes =
      (*probe)->total_bytes() / GetParam().budget_divisor;
  auto store = io::PartitionStore::Open(dir, opts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  runtime::QueryScheduler scheduler;
  io::PrefetchPipeline pipeline(store->get(), &scheduler);
  io::ColdShardedSource cold(store->get(), GetParam().shards,
                             GetParam().assignment,
                             GetParam().prefetch ? &pipeline : nullptr);
  ASSERT_EQ(cold.num_partitions(), pt.num_partitions());

  RandomEngine rng(31337);
  for (int trial = 0; trial < 6; ++trial) {
    query::Query q = RandomQuery(*bundle.table, &rng);
    for (query::ExecPolicy policy :
         {query::ExecPolicy::kScalar, query::ExecPolicy::kVectorized}) {
      query::ExecOptions eopts;
      eopts.policy = policy;
      eopts.num_threads = 1;
      auto resident = query::EvaluateAllPartitions(q, pt, eopts);
      eopts.num_threads = 3;  // lane count must not matter cold either
      auto first_cold = query::EvaluateAllPartitions(q, cold, eopts);
      ExpectAnswersBitIdentical(resident, first_cold, "cold-scan");
      // Rescan: a mix of cache hits and evict-forced reloads must not
      // change a bit either.
      auto rescan = query::EvaluateAllPartitions(q, cold, eopts);
      ExpectAnswersBitIdentical(resident, rescan, "cold-rescan");
    }
  }
  // Tight budgets genuinely forced out-of-core behavior; the roomy one
  // (divisor 1) legitimately may not evict.
  if (GetParam().budget_divisor > 1) {
    EXPECT_GT((*store)->cache().stats().evictions, 0u);
  }
  EXPECT_LE((*store)->cache().bytes_cached(), opts.cache_budget_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Stores, StoreRoundtripInvariance,
    ::testing::Values(
        StoreCase{"range1", 1, storage::ShardAssignment::kRange, false, 5},
        StoreCase{"range2_prefetch", 2, storage::ShardAssignment::kRange,
                  true, 5},
        StoreCase{"range8", 8, storage::ShardAssignment::kRange, false, 5},
        StoreCase{"range8_prefetch", 8, storage::ShardAssignment::kRange,
                  true, 5},
        StoreCase{"hash8_prefetch", 8, storage::ShardAssignment::kHash, true,
                  5},
        // Budget sweep: everything fits / moderate pressure / brutal
        // (~1/20 of the table, segments churn constantly mid-scan).
        StoreCase{"range4_budget_full", 4, storage::ShardAssignment::kRange,
                  false, 1},
        StoreCase{"range4_prefetch_budget20", 4,
                  storage::ShardAssignment::kRange, true, 20},
        StoreCase{"hash4_budget20", 4, storage::ShardAssignment::kHash,
                  false, 20},
        // Encoding sweep: every forced segment encoding must rescan
        // bit-exactly too (kAuto is what every unsuffixed case above
        // exercises, since it is the spill default).
        StoreCase{"range4_raw", 4, storage::ShardAssignment::kRange, false,
                  5, io::EncodingMode::kRaw},
        StoreCase{"range4_bitpack_prefetch", 4,
                  storage::ShardAssignment::kRange, true, 5,
                  io::EncodingMode::kBitpack},
        StoreCase{"hash4_for_delta", 4, storage::ShardAssignment::kHash,
                  false, 5, io::EncodingMode::kForDelta}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// Grouped-aggregation SIMD kernels vs their scalar references. The AVX2
// variants only move data / do integer id math (sum stays scalar in the
// engine), so they must match the scalar kernels bit-for-bit; min/max
// reduce in lanes and must match exactly on NaN-free data.

#if defined(__x86_64__) || defined(__i386__)
TEST(AggregationKernels, GatherAndGroupIdKernelsMatchScalar) {
  if (!runtime::Avx2Available()) GTEST_SKIP() << "no AVX2 on this host";
  RandomEngine rng(20260730);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n_rows = 65 + rng.NextUint64(900);  // crosses lane tails
    const size_t n_sel = 1 + rng.NextUint64(n_rows);
    std::vector<double> values(n_rows);
    for (auto& v : values) v = rng.NextGaussian() * 1e3;
    std::vector<uint32_t> rows(n_sel);
    // Ascending selected rows, like a bitmap expansion.
    for (auto& r : rows) r = static_cast<uint32_t>(rng.NextUint64(n_rows));
    std::sort(rows.begin(), rows.end());

    // Gather.
    std::vector<double> got(n_sel), want(n_sel);
    runtime::GatherDoublesScalar(values.data(), rows.data(), n_sel,
                                 want.data());
    runtime::GatherDoublesAvx2(values.data(), rows.data(), n_sel,
                               got.data());
    for (size_t k = 0; k < n_sel; ++k) {
      EXPECT_EQ(BitsOf(want[k]), BitsOf(got[k])) << "gather k=" << k;
    }

    // Dense group ids over 1-3 group columns.
    const size_t n_gcols = 1 + rng.NextUint64(3);
    std::vector<std::vector<int32_t>> codes(n_gcols,
                                            std::vector<int32_t>(n_rows));
    std::vector<const int32_t*> code_ptrs(n_gcols);
    std::vector<uint32_t> strides(n_gcols);
    uint32_t space = 1;
    for (size_t g = 0; g < n_gcols; ++g) {
      const uint32_t dict = 2 + static_cast<uint32_t>(rng.NextUint64(30));
      for (auto& c : codes[g]) {
        c = static_cast<int32_t>(rng.NextUint64(dict));
      }
      code_ptrs[g] = codes[g].data();
      strides[g] = space;
      space *= dict;
    }
    std::vector<uint32_t> ids_want(n_sel), ids_got(n_sel);
    runtime::DenseGroupIdsScalar(code_ptrs.data(), strides.data(), n_gcols,
                                 rows.data(), n_sel, ids_want.data());
    runtime::DenseGroupIdsAvx2(code_ptrs.data(), strides.data(), n_gcols,
                               rows.data(), n_sel, ids_got.data());
    for (size_t k = 0; k < n_sel; ++k) {
      EXPECT_EQ(ids_want[k], ids_got[k]) << "group id k=" << k;
    }

    // Min / max lane reductions.
    EXPECT_EQ(BitsOf(runtime::MinGatherScalar(values.data(), rows.data(),
                                              n_sel)),
              BitsOf(runtime::MinGatherAvx2(values.data(), rows.data(),
                                            n_sel)));
    EXPECT_EQ(BitsOf(runtime::MaxGatherScalar(values.data(), rows.data(),
                                              n_sel)),
              BitsOf(runtime::MaxGatherAvx2(values.data(), rows.data(),
                                            n_sel)));
  }
}
#endif  // x86

// Compressed-segment decode kernels vs their scalar references: random
// widths 1..32, lengths crossing every lane tail, values saturating the
// width. BitPackScalar/BitUnpackScalar are the layout contract; the AVX2
// unpack and the FoR+delta prefix-sum reconstruct must match them
// bit-for-bit. Buffers carry kBitUnpackSlackBytes of readable slack past
// the payload, as the AVX2 kernel's contract requires (the reader's
// segment buffers do the same).
TEST(CompressionKernels, BitUnpackRoundtripAndForDeltaMatchScalar) {
  RandomEngine rng(20260808);
  for (int trial = 0; trial < 60; ++trial) {
    const unsigned width = 1 + static_cast<unsigned>(rng.NextUint64(32));
    const size_t n = 1 + rng.NextUint64(1200);
    const uint32_t mask =
        width == 32 ? 0xFFFFFFFFu : ((uint32_t{1} << width) - 1);
    std::vector<uint32_t> values(n);
    for (auto& v : values) {
      v = static_cast<uint32_t>(rng.NextUint64(uint64_t{1} << 32)) & mask;
    }
    if (n > 2) {
      values[0] = mask;  // saturate the width at both ends
      values[n - 1] = mask;
    }

    const size_t payload = runtime::BitPackedBytes(n, width);
    std::vector<uint8_t> packed(payload + runtime::kBitUnpackSlackBytes, 0);
    // Nonzero slack: the unpack kernels must mask it away.
    std::fill(packed.begin() + static_cast<long>(payload), packed.end(),
              0xAB);
    runtime::BitPackScalar(values.data(), n, width, packed.data());

    std::vector<uint32_t> want(n, 0);
    runtime::BitUnpackScalar(packed.data(), n, width, want.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(want[i], values[i])
          << "scalar roundtrip width=" << width << " i=" << i;
    }

    const uint32_t base =
        static_cast<uint32_t>(rng.NextUint64(uint64_t{1} << 32));
    std::vector<int32_t> rwant(n, 0);
    runtime::ForDeltaReconstructScalar(want.data(), n, base, rwant.data());

#if defined(__x86_64__) || defined(__i386__)
    if (runtime::Avx2Available()) {
      std::vector<uint32_t> got(n, 0);
      runtime::BitUnpackAvx2(packed.data(), n, width, got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i])
            << "avx2 unpack width=" << width << " i=" << i;
      }
      std::vector<int32_t> rgot(n, 0);
      runtime::ForDeltaReconstructAvx2(want.data(), n, base, rgot.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(rgot[i], rwant[i])
            << "avx2 reconstruct width=" << width << " i=" << i;
      }
    }
#endif  // x86
  }
}

// The evaluator's SIMD-assisted dense-group path engages only for
// filter-free grouped aggregates with dense expression values — a shape
// RandomQuery never produces (it always adds a CASE-filtered aggregate).
// Cover it directly: randomized filter-free GROUP BY queries must be
// bit-identical across scalar / pack64 / AVX2 at any thread count.
TEST(ExecEquivalence, FilterFreeGroupedSimdPathBitIdentical) {
  auto bundle = workload::MakeTpchStar(5000, /*seed=*/91);
  storage::PartitionedTable pt(bundle.table, 9);
  const auto& schema = bundle.table->schema();
  std::vector<size_t> numeric_cols, cat_cols;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    (schema.IsNumeric(c) ? numeric_cols : cat_cols).push_back(c);
  }
  ASSERT_FALSE(numeric_cols.empty());
  ASSERT_FALSE(cat_cols.empty());

  RandomEngine rng(777);
  for (int trial = 0; trial < 12; ++trial) {
    query::Query q;
    q.aggregates.push_back(query::Aggregate::Count());
    q.aggregates.push_back(query::Aggregate::Sum(query::Expr::Column(
        numeric_cols[rng.NextUint64(numeric_cols.size())])));
    q.aggregates.push_back(query::Aggregate::Avg(query::Expr::Mul(
        query::Expr::Column(
            numeric_cols[rng.NextUint64(numeric_cols.size())]),
        query::Expr::Const(1.0 + rng.NextDouble()))));
    q.aggregates.push_back(query::Aggregate::Min(query::Expr::Column(
        numeric_cols[rng.NextUint64(numeric_cols.size())])));
    q.aggregates.push_back(query::Aggregate::Max(query::Expr::Column(
        numeric_cols[rng.NextUint64(numeric_cols.size())])));
    q.group_by.push_back(cat_cols[rng.NextUint64(cat_cols.size())]);
    if (rng.NextBool(0.5) && cat_cols.size() > 1) {
      size_t extra = cat_cols[rng.NextUint64(cat_cols.size())];
      if (extra != q.group_by[0]) q.group_by.push_back(extra);
    }
    // Predicate selectivity spans sparse to dense, so both the
    // SIMD-assisted path (dense) and the per-bit fallback (sparse) run.
    if (rng.NextBool(0.7)) {
      q.predicate = RandomPredicate(*bundle.table, &rng, 2);
    }

    auto scalar = query::EvaluateAllPartitions(
        q, pt, {query::ExecPolicy::kScalar, 1});
    query::ExecOptions vopts;
    vopts.policy = query::ExecPolicy::kVectorized;
    vopts.num_threads = 1;
    vopts.simd = runtime::SimdLevel::kNone;
    ExpectAnswersBitIdentical(scalar,
                              query::EvaluateAllPartitions(q, pt, vopts),
                              "grouped-pack64");
    if (runtime::Avx2Available()) {
      vopts.simd = runtime::SimdLevel::kAvx2;
      ExpectAnswersBitIdentical(scalar,
                                query::EvaluateAllPartitions(q, pt, vopts),
                                "grouped-avx2");
      vopts.num_threads = 4;
      ExpectAnswersBitIdentical(scalar,
                                query::EvaluateAllPartitions(q, pt, vopts),
                                "grouped-avx2-4t");
    }
  }
}

TEST(EdgeCases, NotOfTruePredicateMatchesNothing) {
  auto bundle = workload::MakeAria(200, 7);
  storage::PartitionedTable pt(bundle.table, 2);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  q.predicate = query::Predicate::Not(query::Predicate::True());
  auto exact = query::ExactAnswer(q, query::EvaluateAllPartitions(q, pt));
  EXPECT_TRUE(exact.empty());
}

// ---------------------------------------------------------------------
// Approximate-serving determinism. The contract extends the exact-path
// one: for a fixed picker (model included), seed, and sampling fraction,
// SubmitApproximate must produce a bit-identical ApproxAnswer — value,
// error estimate, partition counts, AND planned bytes_moved — across
// shard counts, shard assignments, prefetch on/off, cache budgets, and
// both ExecPolicy modes. And the degenerate ends must collapse to the
// exact path: fraction 1.0 with uniform weights (ExactPicker, or
// RandomPicker whose budget covers every candidate) equals the exact
// resident answer bit for bit with a zero error estimate.

void ExpectQueryAnswerBits(const query::QueryAnswer& expected,
                           const query::QueryAnswer& actual,
                           const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, vals] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << label;
    ASSERT_EQ(vals.size(), it->second.size()) << label;
    for (size_t a = 0; a < vals.size(); ++a) {
      EXPECT_EQ(BitsOf(vals[a]), BitsOf(it->second[a]))
          << label << " agg " << a;
    }
  }
}

void ExpectApproxBits(const runtime::ApproxAnswer& expected,
                      const runtime::ApproxAnswer& actual,
                      const char* label) {
  ExpectQueryAnswerBits(expected.value, actual.value, label);
  ExpectQueryAnswerBits(expected.error_estimate, actual.error_estimate,
                        label);
  EXPECT_EQ(expected.partitions_scanned, actual.partitions_scanned) << label;
  EXPECT_EQ(expected.partitions_total, actual.partitions_total) << label;
  EXPECT_EQ(expected.bytes_moved, actual.bytes_moved) << label;
}

/// Shared fixture: TPC-H analog with per-partition stats, featurization,
/// and a small trained PS3 model (the real funnel, not a stub), plus one
/// spilled copy of the table that each case reopens under its own cache
/// budget.
struct ApproxFixture {
  workload::DatasetBundle bundle;
  std::shared_ptr<storage::Table> table;
  std::unique_ptr<storage::PartitionedTable> pt;
  std::unique_ptr<stats::TableStats> stats;
  std::unique_ptr<featurize::Featurizer> featurizer;
  core::PickerContext ctx;
  core::Ps3Model model;
  std::vector<query::Query> queries;
  std::string dir;
  size_t total_bytes = 0;

  ApproxFixture() {
    bundle = workload::MakeTpchStar(4000, /*seed=*/57);
    auto sorted = bundle.table->SortedBy(bundle.default_sort);
    table = std::make_shared<storage::Table>(std::move(sorted).value());
    // 13 partitions: uneven shards for every swept shard count.
    pt = std::make_unique<storage::PartitionedTable>(table, 13);
    stats::StatsOptions sopts;
    for (const auto& name : bundle.spec.groupby_columns) {
      sopts.grouping_columns.push_back(
          static_cast<size_t>(table->schema().FindColumn(name)));
    }
    stats = std::make_unique<stats::TableStats>(
        stats::StatsBuilder(sopts).Build(*pt));
    featurizer =
        std::make_unique<featurize::Featurizer>(table->schema(), stats.get());
    ctx = {pt.get(), stats.get(), featurizer.get()};

    workload::QueryGenerator gen(table.get(), bundle.spec);
    core::TrainingData tdata =
        core::BuildTrainingData(ctx, gen.GenerateSet(12, 77));
    core::Ps3Options popts;
    popts.gbdt.num_trees = 8;
    popts.feature_selection.enabled = false;
    model = core::TrainPs3(ctx, tdata, popts);
    // Held-out generator queries: shapes the featurizer understands (the
    // learned funnel consults selectivity sketches per predicate).
    queries = gen.GenerateSet(4, 91);

    dir = ::testing::TempDir() + "ps3_approx_XXXXXX";
    EXPECT_NE(mkdtemp(dir.data()), nullptr);
    EXPECT_TRUE(io::PartitionStore::Spill(*pt, dir).ok());
    io::PartitionStore::Options o;
    auto probe = io::PartitionStore::Open(dir, o);
    EXPECT_TRUE(probe.ok());
    total_bytes = (*probe)->total_bytes();
  }
};

ApproxFixture& SharedApproxFixture() {
  static ApproxFixture* f = new ApproxFixture();
  return *f;
}

TEST(ApproximateServing, BitIdenticalAcrossStoreConfigsAndPolicies) {
  ApproxFixture& fx = SharedApproxFixture();
  core::Ps3Picker ps3(fx.ctx, &fx.model);
  core::RandomFilterPicker rfilter(fx.ctx);
  const core::PartitionPicker* pickers[] = {&ps3, &rfilter};
  runtime::QueryScheduler scheduler;

  struct Cfg {
    const char* name;
    size_t shards;
    storage::ShardAssignment assignment;
    bool prefetch;
    size_t budget_divisor;
    query::ExecPolicy policy;
    int threads;
  };
  const Cfg cfgs[] = {
      // The reference: flat, roomy, scalar, single-lane.
      {"ref", 1, storage::ShardAssignment::kRange, false, 1,
       query::ExecPolicy::kScalar, 1},
      {"range4_vec", 4, storage::ShardAssignment::kRange, false, 1,
       query::ExecPolicy::kVectorized, 3},
      {"range7_prefetch_budget8", 7, storage::ShardAssignment::kRange, true,
       8, query::ExecPolicy::kVectorized, 3},
      {"hash4_budget8_scalar", 4, storage::ShardAssignment::kHash, false, 8,
       query::ExecPolicy::kScalar, 2},
      {"range13_prefetch", 13, storage::ShardAssignment::kRange, true, 1,
       query::ExecPolicy::kVectorized, 3},
  };

  // reference[q][p] filled by the first config, compared by the rest.
  std::vector<std::vector<runtime::ApproxAnswer>> reference(
      fx.queries.size());
  for (const Cfg& cfg : cfgs) {
    io::PartitionStore::Options o;
    o.cache_budget_bytes =
        std::max<size_t>(fx.total_bytes / cfg.budget_divisor, 1);
    auto store = io::PartitionStore::Open(fx.dir, o);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    io::PrefetchPipeline pipeline(store->get(), &scheduler);
    io::ColdShardedSource cold(store->get(), cfg.shards, cfg.assignment,
                               cfg.prefetch ? &pipeline : nullptr);

    query::ExecOptions eopts;
    eopts.policy = cfg.policy;
    eopts.num_threads = cfg.threads;
    for (size_t qi = 0; qi < fx.queries.size(); ++qi) {
      for (size_t pi = 0; pi < 2; ++pi) {
        runtime::ApproxOptions aopts;
        aopts.sampling_fraction = 0.4;
        aopts.seed = 500 + qi;
        runtime::ApproxAnswer ans =
            scheduler
                .SubmitApproximate(fx.queries[qi], cold, *pickers[pi], aopts,
                                   eopts)
                .get();
        if (reference[qi].size() <= pi) {
          EXPECT_LE(ans.partitions_scanned, ans.partitions_total);
          reference[qi].push_back(std::move(ans));
        } else {
          ExpectApproxBits(reference[qi][pi], ans, cfg.name);
        }
      }
    }
    pipeline.Drain();
  }
}

TEST(ApproximateServing, FullFractionUniformWeightsEqualsExact) {
  ApproxFixture& fx = SharedApproxFixture();
  core::ExactPicker exact_picker(fx.pt->num_partitions());
  core::RandomPicker random_picker(fx.ctx);
  runtime::QueryScheduler scheduler;

  io::PartitionStore::Options o;
  o.cache_budget_bytes = std::max<size_t>(fx.total_bytes / 5, 1);
  auto store = io::PartitionStore::Open(fx.dir, o);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  io::ColdShardedSource cold(store->get(), 4);

  for (size_t qi = 0; qi < fx.queries.size(); ++qi) {
    const query::Query& q = fx.queries[qi];
    for (query::ExecPolicy policy :
         {query::ExecPolicy::kScalar, query::ExecPolicy::kVectorized}) {
      query::ExecOptions eopts;
      eopts.policy = policy;
      eopts.num_threads = 2;
      const query::QueryAnswer exact =
          query::ExactAnswer(q, query::EvaluateAllPartitions(q, *fx.pt,
                                                             eopts));
      // At fraction 1.0 the uniform budget covers every candidate, so
      // both pickers return all partitions with weight 1 — the combine
      // degenerates to ExactAnswer and the error estimate vanishes.
      for (const core::PartitionPicker* picker :
           {static_cast<const core::PartitionPicker*>(&exact_picker),
            static_cast<const core::PartitionPicker*>(&random_picker)}) {
        runtime::ApproxOptions aopts;
        aopts.sampling_fraction = 1.0;
        aopts.seed = 11 + qi;
        runtime::ApproxAnswer ans =
            scheduler.SubmitApproximate(q, cold, *picker, aopts, eopts).get();
        ExpectQueryAnswerBits(exact, ans.value, picker->name().c_str());
        EXPECT_EQ(ans.partitions_scanned, fx.pt->num_partitions());
        for (const auto& [key, errs] : ans.error_estimate) {
          for (double e : errs) EXPECT_EQ(e, 0.0);
        }
      }
    }
  }
}

TEST(DegradedServing, BitIdenticalAcrossStoreConfigsAndPolicies) {
  // The degraded-serving property: with the same partitions lost, the
  // kApproximate answer — value, error surface, and accounting — is a
  // pure function of (query, lost set), bit-identical across shard
  // counts, shard assignments, prefetch on/off, cache budgets, exec
  // policies, and thread counts; and it equals the Horvitz–Thompson
  // reweighted combine computed directly from resident scalar partials.
  ApproxFixture& fx = SharedApproxFixture();
  runtime::QueryScheduler scheduler;

  const std::set<size_t> lost = {3, 8, 12};
  const size_t n = fx.pt->num_partitions();
  std::vector<size_t> reachable;
  for (size_t p = 0; p < n; ++p) {
    if (lost.count(p) == 0) reachable.push_back(p);
  }
  const std::vector<query::WeightedPartition> sel =
      query::DegradedSelection(reachable, n);

  struct Cfg {
    const char* name;
    size_t shards;
    storage::ShardAssignment assignment;
    bool prefetch;
    size_t budget_divisor;
    query::ExecPolicy policy;
    int threads;
  };
  const Cfg cfgs[] = {
      {"flat_scalar", 1, storage::ShardAssignment::kRange, false, 1,
       query::ExecPolicy::kScalar, 1},
      {"range4_vec", 4, storage::ShardAssignment::kRange, false, 1,
       query::ExecPolicy::kVectorized, 3},
      {"hash4_budget8", 4, storage::ShardAssignment::kHash, false, 8,
       query::ExecPolicy::kScalar, 2},
      {"range7_prefetch", 7, storage::ShardAssignment::kRange, true, 1,
       query::ExecPolicy::kVectorized, 3},
  };

  std::vector<runtime::ApproxAnswer> reference;
  for (const Cfg& cfg : cfgs) {
    io::PartitionStore::Options o;
    o.cache_budget_bytes =
        std::max<size_t>(fx.total_bytes / cfg.budget_divisor, 1);
    io::FaultPlan plan;
    plan.lost_partitions = lost;
    o.faults = std::make_shared<io::FaultInjector>(std::move(plan));
    auto store = io::PartitionStore::Open(fx.dir, o);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    io::PrefetchPipeline pipeline(store->get(), &scheduler);
    io::ColdShardedSource cold(store->get(), cfg.shards, cfg.assignment,
                               cfg.prefetch ? &pipeline : nullptr);

    query::ExecOptions eopts;
    eopts.policy = cfg.policy;
    eopts.num_threads = cfg.threads;
    runtime::SubmitOptions submit;
    submit.degraded_mode = runtime::DegradedMode::kApproximate;
    for (size_t qi = 0; qi < fx.queries.size(); ++qi) {
      runtime::ApproxAnswer ans =
          scheduler.SubmitDegradable(fx.queries[qi], cold, submit, eopts)
              .get();
      EXPECT_EQ(ans.partitions_scanned, reachable.size()) << cfg.name;
      EXPECT_EQ(ans.partitions_total, n) << cfg.name;
      if (reference.size() <= qi) {
        // Independent reference: the same HT combine from resident
        // scalar partials — the degraded path must reproduce it exactly.
        query::ExecOptions ref;
        ref.policy = query::ExecPolicy::kScalar;
        ref.num_threads = 1;
        query::ApproxCombined expected = query::CombineWeightedWithError(
            fx.queries[qi],
            query::EvaluateAllPartitions(fx.queries[qi], *fx.pt, ref), sel);
        ExpectQueryAnswerBits(expected.value, ans.value, cfg.name);
        ExpectQueryAnswerBits(expected.error, ans.error_estimate, cfg.name);
        reference.push_back(std::move(ans));
      } else {
        ExpectApproxBits(reference[qi], ans, cfg.name);
      }
    }
    pipeline.Drain();
    // Degraded planning routes around the lost set up front: no load
    // was ever even attempted against a lost partition.
    EXPECT_EQ((*store)->store_stats().lost_errors, 0u) << cfg.name;
  }
}

}  // namespace
}  // namespace ps3
