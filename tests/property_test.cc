// Cross-module property tests: statistical invariants checked over
// parameterized sweeps (TEST_P), plus edge/failure-injection cases that
// don't fit a single module's unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/cluster_select.h"
#include "core/lss_picker.h"
#include "core/ps3_picker.h"
#include "core/random_picker.h"
#include "query/metrics.h"
#include "sketch/histogram.h"
#include "sketch/akmv.h"
#include "common/hash.h"
#include "stats/stats_builder.h"
#include "workload/datasets.h"

namespace ps3 {
namespace {

// ---------------------------------------------------------------------
// Histogram CDF vs brute force under different data shapes.

struct DistCase {
  const char* name;
  double (*draw)(RandomEngine&);
};

double DrawUniform(RandomEngine& rng) { return rng.NextDouble() * 100.0; }
double DrawGaussian(RandomEngine& rng) { return 10.0 * rng.NextGaussian(); }
double DrawExponential(RandomEngine& rng) {
  return rng.NextExponential(0.05);
}
double DrawDiscrete(RandomEngine& rng) {
  return static_cast<double>(rng.NextUint64(8));
}
double DrawHeavyZero(RandomEngine& rng) {
  return rng.NextBool(0.7) ? 0.0 : rng.NextExponential(0.01);
}

class HistogramDistributions : public ::testing::TestWithParam<DistCase> {};

TEST_P(HistogramDistributions, CdfWithinBucketResolution) {
  RandomEngine rng(99);
  std::vector<double> values(4000);
  for (auto& v : values) v = GetParam().draw(rng);
  auto hist = sketch::EquiDepthHistogram::Build(values, 10);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.05, 0.2, 0.5, 0.77, 0.93}) {
    double x = sorted[static_cast<size_t>(q * 3999)];
    double truth = 0.0;
    for (double v : values) {
      if (v <= x) truth += 1.0;
    }
    truth /= 4000.0;
    // An equi-depth histogram with B buckets resolves the CDF to ~1/B.
    EXPECT_NEAR(hist.CdfLe(x), truth, 0.11) << GetParam().name << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HistogramDistributions,
    ::testing::Values(DistCase{"uniform", DrawUniform},
                      DistCase{"gaussian", DrawGaussian},
                      DistCase{"exponential", DrawExponential},
                      DistCase{"discrete", DrawDiscrete},
                      DistCase{"heavy_zero", DrawHeavyZero}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------
// AKMV estimate accuracy across cardinalities.

class AkmvCardinality : public ::testing::TestWithParam<int> {};

TEST_P(AkmvCardinality, RelativeErrorBounded) {
  const int truth = GetParam();
  sketch::AkmvSketch sketch(128);
  for (int i = 0; i < truth * 3; ++i) {
    sketch.UpdateHash(HashInt(i % truth, /*salt=*/7));
  }
  double est = sketch.EstimateDistinct();
  if (truth < 128) {
    EXPECT_DOUBLE_EQ(est, truth);  // strictly below k: exact
  } else {
    // At or above k the sketch cannot distinguish "exactly k" from more
    // and falls back to the KMV estimator (~9% rel std at k=128).
    EXPECT_NEAR(est / truth, 1.0, 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, AkmvCardinality,
                         ::testing::Values(10, 100, 128, 500, 2000, 20000));

// ---------------------------------------------------------------------
// Horvitz-Thompson unbiasedness of uniform selection, multiple budgets.

class UniformUnbiased : public ::testing::TestWithParam<size_t> {};

TEST_P(UniformUnbiased, SumEstimatorCentersOnTruth) {
  const size_t budget = GetParam();
  constexpr size_t kN = 40;
  // Per-partition values with strong skew.
  std::vector<double> part_sums(kN);
  RandomEngine data_rng(5);
  for (auto& v : part_sums) v = data_rng.NextExponential(0.01);
  double truth = std::accumulate(part_sums.begin(), part_sums.end(), 0.0);

  std::vector<size_t> candidates(kN);
  std::iota(candidates.begin(), candidates.end(), 0);
  double mean = 0.0;
  constexpr int kRuns = 4000;
  RandomEngine rng(11);
  for (int r = 0; r < kRuns; ++r) {
    auto sel = core::UniformSelection(candidates, budget, &rng);
    double est = 0.0;
    for (const auto& wp : sel.parts) est += wp.weight * part_sums[wp.partition];
    mean += est;
  }
  mean /= kRuns;
  EXPECT_NEAR(mean / truth, 1.0, 0.05) << "budget " << budget;
}

INSTANTIATE_TEST_SUITE_P(Budgets, UniformUnbiased,
                         ::testing::Values(1, 4, 10, 20, 39, 40));

// ---------------------------------------------------------------------
// AllocateSamples invariants over a parameter sweep.

class AllocateSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(AllocateSweep, TotalExactAndRatesMonotone) {
  auto [budget, alpha] = GetParam();
  const std::vector<size_t> sizes{37, 0, 12, 55, 3};
  auto alloc = core::Ps3Picker::AllocateSamples(sizes, budget, alpha);
  size_t total = 0, cap = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_LE(alloc[i], sizes[i]);
    total += alloc[i];
    cap += sizes[i];
  }
  EXPECT_EQ(total, std::min(budget, cap));
  // Sampling rates never decrease with importance (later groups), modulo
  // integer rounding of one sample on either side.
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    if (sizes[i] == 0 || sizes[i + 1] == 0) continue;
    double r_lo = static_cast<double>(alloc[i]) / sizes[i];
    double r_hi = static_cast<double>(alloc[i + 1]) / sizes[i + 1];
    double rounding = 1.0 / sizes[i] + 1.0 / sizes[i + 1];
    EXPECT_GE(r_hi + rounding + 1e-9, r_lo);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetAlpha, AllocateSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 7, 25, 60, 107, 200),
                       ::testing::Values(1.0, 1.5, 2.0, 4.0)));

// ---------------------------------------------------------------------
// LSS stratified selection invariants across strata counts.

class LssStrataSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(LssStrataSweep, WeightsAlwaysCoverPopulation) {
  const size_t n_strata = GetParam();
  RandomEngine rng(3);
  std::vector<size_t> candidates(60);
  std::iota(candidates.begin(), candidates.end(), 0);
  std::vector<double> scores(60);
  for (auto& s : scores) s = rng.NextGaussian();
  for (size_t budget : {5ul, 15ul, 30ul}) {
    RandomEngine pick_rng(budget * 31 + n_strata);
    auto sel = core::LssPicker::StratifiedSelect(candidates, scores, budget,
                                                 n_strata, &pick_rng);
    EXPECT_EQ(sel.parts.size(), budget);
    double total = 0.0;
    for (const auto& wp : sel.parts) total += wp.weight;
    EXPECT_NEAR(total, 60.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Strata, LssStrataSweep,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

// ---------------------------------------------------------------------
// Edge and failure-injection cases.

TEST(EdgeCases, EmptyInClauseMatchesNothing) {
  auto bundle = workload::MakeAria(500, 1);
  storage::PartitionedTable pt(bundle.table, 2);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  q.predicate = query::Predicate::CategoricalIn(
      static_cast<size_t>(bundle.table->schema().FindColumn("TenantId")),
      {});
  auto exact = query::ExactAnswer(q, query::EvaluateAllPartitions(q, pt));
  EXPECT_TRUE(exact.empty());
}

TEST(EdgeCases, SinglePartitionTable) {
  auto bundle = workload::MakeKdd(300, 2);
  storage::PartitionedTable pt(bundle.table, 1);
  stats::StatsOptions opts;
  auto stats = stats::StatsBuilder(opts).Build(pt);
  EXPECT_EQ(stats.num_partitions(), 1u);
  featurize::Featurizer fz(bundle.table->schema(), &stats);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  auto fm = fz.BuildFeatures(q);
  EXPECT_EQ(fm.n, 1u);
}

TEST(EdgeCases, PickBudgetZeroIsEmpty) {
  auto bundle = workload::MakeAria(1000, 3);
  storage::PartitionedTable pt(bundle.table, 5);
  stats::StatsOptions opts;
  auto stats = stats::StatsBuilder(opts).Build(pt);
  featurize::Featurizer fz(bundle.table->schema(), &stats);
  core::PickerContext ctx{&pt, &stats, &fz};
  core::RandomPicker picker(ctx);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  RandomEngine rng(1);
  EXPECT_TRUE(picker.Pick(q, 0, &rng, nullptr).parts.empty());
}

TEST(EdgeCases, MetricsWithEmptyExactAnswer) {
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  query::QueryAnswer exact, est;
  auto m = query::ComputeErrorMetrics(q, exact, est);
  EXPECT_DOUBLE_EQ(m.avg_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(m.missed_groups, 0.0);
}

TEST(EdgeCases, CombineWeightedEmptySelection) {
  auto bundle = workload::MakeAria(500, 5);
  storage::PartitionedTable pt(bundle.table, 4);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  auto answers = query::EvaluateAllPartitions(q, pt);
  auto est = query::CombineWeighted(q, answers, {});
  EXPECT_TRUE(est.empty());
}

TEST(EdgeCases, ZipfSingleValue) {
  ZipfSampler z(1, 1.0);
  RandomEngine rng(1);
  EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(z.Pmf(0), 1.0);
}

TEST(EdgeCases, ClusterSelectIdenticalFeatures) {
  // All partitions identical: the degenerate path must still produce the
  // requested number of exemplars with total weight == member count.
  featurize::FeatureMatrix fm(10, 4);  // all zeros
  storage::Schema schema({{"x", storage::ColumnType::kNumeric}});
  stats::TableStats empty_stats;
  auto fs = featurize::FeatureSchema::Build(schema, empty_stats);
  std::vector<size_t> members(10);
  std::iota(members.begin(), members.end(), 0);
  RandomEngine rng(2);
  // Note: schema/features dims differ; ClusterSelect only reads dims via
  // the schema, which here yields no varying dimension -> degenerate path.
  featurize::FeatureMatrix sized(10, fs.num_features());
  auto sel = core::ClusterSelect(sized, fs, members, 4,
                                 core::ClusterSelectOptions{}, &rng);
  EXPECT_EQ(sel.parts.size(), 4u);
  double total = 0.0;
  for (const auto& wp : sel.parts) total += wp.weight;
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(EdgeCases, HistogramSingleRow) {
  auto h = sketch::EquiDepthHistogram::Build({42.0}, 10);
  EXPECT_DOUBLE_EQ(h.CdfLe(42.0), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfLe(41.0), 0.0);
  auto b = h.RangeSelectivityBounds(40.0, 45.0);
  EXPECT_DOUBLE_EQ(b.upper, 1.0);
}

TEST(EdgeCases, NotOfTruePredicateMatchesNothing) {
  auto bundle = workload::MakeAria(200, 7);
  storage::PartitionedTable pt(bundle.table, 2);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};
  q.predicate = query::Predicate::Not(query::Predicate::True());
  auto exact = query::ExactAnswer(q, query::EvaluateAllPartitions(q, pt));
  EXPECT_TRUE(exact.empty());
}

}  // namespace
}  // namespace ps3
