#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "sketch/akmv.h"
#include "sketch/exact_freq.h"
#include "sketch/heavy_hitter.h"
#include "sketch/histogram.h"
#include "sketch/measures.h"

namespace ps3::sketch {
namespace {

TEST(Measures, Basic) {
  Measures m;
  for (double v : {1.0, 2.0, 3.0, 4.0}) m.Update(v);
  EXPECT_EQ(m.count(), 4u);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 4.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.mean_sq(), 7.5);
  EXPECT_NEAR(m.std_dev(), std::sqrt(1.25), 1e-12);
}

TEST(Measures, LogMeasuresForPositiveColumns) {
  Measures m;
  m.Update(std::exp(1.0));
  m.Update(std::exp(3.0));
  ASSERT_TRUE(m.has_log());
  EXPECT_NEAR(m.log_mean(), 2.0, 1e-12);
  EXPECT_NEAR(m.log_min(), 1.0, 1e-12);
  EXPECT_NEAR(m.log_max(), 3.0, 1e-12);
}

TEST(Measures, LogDisabledByNonPositive) {
  Measures m;
  m.Update(2.0);
  m.Update(0.0);
  EXPECT_FALSE(m.has_log());
  EXPECT_DOUBLE_EQ(m.log_mean(), 0.0);
}

TEST(Measures, EmptyIsZero) {
  Measures m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.std_dev(), 0.0);
  EXPECT_FALSE(m.has_log());
}

TEST(Histogram, CdfExactAtEdges) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i));
  auto h = EquiDepthHistogram::Build(v, 10);
  EXPECT_DOUBLE_EQ(h.CdfLe(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfLe(999.0), 1.0);
  EXPECT_NEAR(h.CdfLe(499.0), 0.5, 0.01);
}

TEST(Histogram, InterpolationMonotone) {
  RandomEngine rng(1);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.NextGaussian());
  auto h = EquiDepthHistogram::Build(v, 10);
  double prev = -1.0;
  for (double x = -4.0; x <= 4.0; x += 0.05) {
    double c = h.CdfLe(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST(Histogram, RangeSelectivityAccuracy) {
  RandomEngine rng(2);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.NextDouble() * 100.0);
  auto h = EquiDepthHistogram::Build(v, 10);
  double sel = h.RangeSelectivity(25.0, 75.0, true, true);
  EXPECT_NEAR(sel, 0.5, 0.02);
}

TEST(Histogram, BoundsAreSound) {
  RandomEngine rng(3);
  std::vector<double> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.NextExponential(0.1));
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  auto h = EquiDepthHistogram::Build(v, 10);
  for (auto [lo, hi] : std::vector<std::pair<double, double>>{
           {0.0, 5.0}, {5.0, 20.0}, {1.0, 2.0}, {50.0, 100.0}}) {
    double truth = 0.0;
    for (double x : v) {
      if (x >= lo && x <= hi) truth += 1.0;
    }
    truth /= static_cast<double>(v.size());
    auto b = h.RangeSelectivityBounds(lo, hi);
    EXPECT_LE(b.lower, truth + 1e-9) << lo << "," << hi;
    EXPECT_GE(b.upper, truth - 1e-9) << lo << "," << hi;
  }
}

TEST(Histogram, UpperBoundZeroMeansEmpty) {
  std::vector<double> v{10, 11, 12, 13, 14, 15};
  auto h = EquiDepthHistogram::Build(v, 3);
  auto b = h.RangeSelectivityBounds(20.0, 30.0);
  EXPECT_DOUBLE_EQ(b.upper, 0.0);
  b = h.RangeSelectivityBounds(0.0, 5.0);
  EXPECT_DOUBLE_EQ(b.upper, 0.0);
}

TEST(Histogram, DegenerateSingleValue) {
  std::vector<double> v(100, 7.0);
  auto h = EquiDepthHistogram::Build(v, 10);
  EXPECT_DOUBLE_EQ(h.CdfLe(7.0), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfLe(6.9), 0.0);
  EXPECT_DOUBLE_EQ(h.PointSelectivity(7.0), 1.0);
}

TEST(Histogram, EmptyInput) {
  auto h = EquiDepthHistogram::Build({}, 10);
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_DOUBLE_EQ(h.CdfLe(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.RangeSelectivity(0, 1, true, true), 0.0);
}

TEST(Histogram, PointSelectivityOnSkewedData) {
  // 90% zeros, 10% spread: the zero bucket should dominate.
  std::vector<double> v(900, 0.0);
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  auto h = EquiDepthHistogram::Build(v, 10);
  EXPECT_GT(h.PointSelectivity(0.0), 0.5);
}

TEST(Akmv, ExactBelowK) {
  AkmvSketch s(128);
  for (int i = 0; i < 50; ++i) s.UpdateHash(HashInt(i % 10));
  EXPECT_EQ(s.num_tracked(), 10u);
  EXPECT_DOUBLE_EQ(s.EstimateDistinct(), 10.0);
}

TEST(Akmv, EstimateAboveK) {
  AkmvSketch s(128);
  constexpr int kTrue = 10000;
  for (int i = 0; i < kTrue; ++i) s.UpdateHash(HashInt(i));
  EXPECT_TRUE(s.saturated());
  double est = s.EstimateDistinct();
  EXPECT_NEAR(est, kTrue, kTrue * 0.3);  // KMV with k=128: ~9% rel std
}

TEST(Akmv, FrequencyStatistics) {
  AkmvSketch s(16);
  // Values 0..7, value i appears i+1 times.
  for (int v = 0; v < 8; ++v) {
    for (int r = 0; r <= v; ++r) s.UpdateHash(HashInt(v));
  }
  EXPECT_DOUBLE_EQ(s.sum_frequency(), 36.0);
  EXPECT_DOUBLE_EQ(s.max_frequency(), 8.0);
  EXPECT_DOUBLE_EQ(s.min_frequency(), 1.0);
  EXPECT_DOUBLE_EQ(s.avg_frequency(), 4.5);
}

TEST(Akmv, EmptySketch) {
  AkmvSketch s;
  EXPECT_DOUBLE_EQ(s.EstimateDistinct(), 0.0);
  EXPECT_DOUBLE_EQ(s.avg_frequency(), 0.0);
}

TEST(Akmv, SizeBounded) {
  AkmvSketch s(64);
  for (int i = 0; i < 100000; ++i) s.UpdateHash(HashInt(i));
  EXPECT_EQ(s.num_tracked(), 64u);
  EXPECT_LE(s.SerializedBytes(), 64u * 12u + 4u);
}

TEST(HeavyHitters, FindsTrueHeavyHitters) {
  HeavyHitters hh(0.01);
  RandomEngine rng(7);
  // Value 0: 30%, value 1: 10%, rest uniform over 10k values.
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double u = rng.NextDouble();
    int64_t v = u < 0.3 ? 0 : (u < 0.4 ? 1 : 2 + int64_t(rng.NextUint64(10000)));
    hh.Update(v);
  }
  auto items = hh.Items();
  ASSERT_GE(items.size(), 2u);
  EXPECT_EQ(items[0].key, 0);
  EXPECT_EQ(items[1].key, 1);
  EXPECT_NEAR(hh.MaxFrequency(), 0.3, 0.02);
}

TEST(HeavyHitters, NoFalseNegatives) {
  // Lossy counting guarantee: any value with true frequency >= support
  // must be reported.
  HeavyHitters hh(0.05);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    hh.Update(i % 10 == 0 ? 777 : i);  // 777 has frequency 10% >= 5%
  }
  bool found = false;
  for (const auto& e : hh.Items()) {
    if (e.key == 777) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(HeavyHitters, DictionaryBounded) {
  HeavyHitters hh(0.01);
  RandomEngine rng(11);
  for (int i = 0; i < 200000; ++i) {
    hh.Update(static_cast<int64_t>(rng.NextUint64(1000000)));
  }
  // All-distinct stream: nothing qualifies at 1% support.
  EXPECT_EQ(hh.NumHeavyHitters(), 0u);
}

TEST(HeavyHitters, FrequencyAverages) {
  HeavyHitters hh(0.1);
  for (int i = 0; i < 100; ++i) hh.Update(i % 2);  // two values at 50%
  EXPECT_EQ(hh.NumHeavyHitters(), 2u);
  EXPECT_NEAR(hh.AvgFrequency(), 0.5, 0.05);
}

TEST(ExactFreq, ExactCounts) {
  ExactFrequencyTable t(16);
  for (int i = 0; i < 100; ++i) t.Update(i % 4);
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.num_distinct(), 4u);
  EXPECT_DOUBLE_EQ(t.Frequency(0), 0.25);
  EXPECT_DOUBLE_EQ(t.Frequency(99), 0.0);
}

TEST(ExactFreq, OverflowInvalidates) {
  ExactFrequencyTable t(8);
  for (int i = 0; i < 20; ++i) t.Update(i);
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.SerializedBytes(), 1u);
}

TEST(SketchSizes, WithinPaperBallpark) {
  // A single column's sketches should be a few KB at most (Table 4 reports
  // 12-103 KB per partition across all columns).
  AkmvSketch akmv(128);
  HeavyHitters hh(0.01);
  Measures m;
  std::vector<double> vals;
  RandomEngine rng(13);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextExponential(0.01);
    akmv.UpdateHash(HashDouble(v));
    hh.Update(static_cast<int64_t>(v));
    m.Update(v);
    vals.push_back(v);
  }
  auto hist = EquiDepthHistogram::Build(vals, 10);
  size_t total = akmv.SerializedBytes() + hh.SerializedBytes() +
                 m.SerializedBytes() + hist.SerializedBytes();
  EXPECT_LT(total, 4096u);
}

}  // namespace
}  // namespace ps3::sketch
