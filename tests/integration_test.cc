// End-to-end integration tests: full PS3 pipeline on each dataset, the
// headline ordering claims at modest scale, and cross-module invariants.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "workload/tpch_queries.h"

namespace ps3 {
namespace {

eval::ExperimentConfig Config(const std::string& dataset, size_t rows = 8000,
                              size_t parts = 40) {
  eval::ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.rows = rows;
  cfg.partitions = parts;
  cfg.train_queries = 20;
  cfg.test_queries = 8;
  cfg.ps3.gbdt.num_trees = 8;
  cfg.ps3.feature_selection.enabled = false;
  cfg.lss.gbdt.num_trees = 8;
  cfg.lss.eval_queries = 4;
  return cfg;
}

/// Every dataset runs the full pipeline: stats -> features -> training ->
/// picking -> weighted combination, and full budget is exact.
class DatasetPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetPipeline, FullBudgetExactAndSmallBudgetFinite) {
  eval::Experiment exp(Config(GetParam()));
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  auto m_full = exp.Evaluate(*ps3, 1.0, 1);
  EXPECT_NEAR(m_full.avg_rel_error, 0.0, 1e-9) << GetParam();
  EXPECT_NEAR(m_full.missed_groups, 0.0, 1e-9) << GetParam();
  auto m_small = exp.Evaluate(*ps3, 0.15, 1);
  EXPECT_GE(m_small.avg_rel_error, 0.0);
  EXPECT_LT(m_small.avg_rel_error, 2.0);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetPipeline,
                         ::testing::Values("tpch", "tpcds", "aria", "kdd"));

TEST(Integration, ErrorShrinksWithBudget) {
  eval::Experiment exp(Config("aria"));
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  double lo = exp.Evaluate(*ps3, 0.05, 2).avg_rel_error;
  double hi = exp.Evaluate(*ps3, 0.6, 2).avg_rel_error;
  EXPECT_LE(hi, lo + 0.02);
}

TEST(Integration, Ps3BeatsRandomOnSortedLayout) {
  // Large enough that the funnel budget split and the learned regressors
  // have signal; evaluated on held-out queries.
  auto cfg = Config("aria", 24000, 80);
  cfg.train_queries = 32;
  cfg.test_queries = 12;
  cfg.ps3.gbdt.num_trees = 12;
  eval::Experiment exp(cfg);
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  auto random = exp.MakeRandom();
  // Average over a couple of budgets for stability.
  double ps3_err = 0.0, rnd_err = 0.0;
  for (double b : {0.1, 0.2}) {
    ps3_err += exp.Evaluate(*ps3, b, 2).avg_rel_error;
    rnd_err += exp.Evaluate(*random, b, 4).avg_rel_error;
  }
  EXPECT_LT(ps3_err, rnd_err);
}

TEST(Integration, FilterNeverHurtsRandom) {
  eval::Experiment exp(Config("aria"));
  exp.TrainModels();
  auto random = exp.MakeRandom();
  auto filtered = exp.MakeRandomFilter();
  double rnd = 0.0, flt = 0.0;
  for (double b : {0.1, 0.3}) {
    rnd += exp.Evaluate(*random, b, 4).avg_rel_error;
    flt += exp.Evaluate(*filtered, b, 4).avg_rel_error;
  }
  EXPECT_LE(flt, rnd + 0.05);
}

TEST(Integration, OracleAtLeastAsGoodAsLearned) {
  eval::Experiment exp(Config("kdd"));
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  auto oracle = exp.MakeOracle(&exp.ps3_model());
  double learned = exp.Evaluate(*ps3, 0.1, 2).avg_rel_error;
  double oracled = exp.Evaluate(*oracle, 0.1, 2).avg_rel_error;
  // Slack: the oracle shares the rest of the pipeline, so it can tie.
  EXPECT_LE(oracled, learned + 0.1);
}

TEST(Integration, TpchTemplatesRunThroughPs3) {
  eval::Experiment exp(Config("tpch", 10000, 40));
  exp.TrainModels();
  // Replace the random test set with Q1 and Q6 template instantiations.
  std::vector<query::Query> tests;
  for (int tq : {1, 6}) {
    auto qs = workload::MakeTpchQuerySet(exp.table().table(), tq, 2, 91);
    tests.insert(tests.end(), qs.begin(), qs.end());
  }
  exp.SetTests(std::move(tests));
  auto ps3 = exp.MakePs3();
  auto m = exp.Evaluate(*ps3, 1.0, 1);
  EXPECT_NEAR(m.avg_rel_error, 0.0, 1e-9);
  auto m_small = exp.Evaluate(*ps3, 0.2, 1);
  EXPECT_LT(m_small.avg_rel_error, 1.0);
}

TEST(Integration, UnbiasedExemplarVariantRuns) {
  auto cfg = Config("aria");
  cfg.ps3.unbiased_exemplar = true;
  eval::Experiment exp(cfg);
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  auto m = exp.Evaluate(*ps3, 0.2, 2);
  EXPECT_GE(m.avg_rel_error, 0.0);
  EXPECT_LT(m.avg_rel_error, 1.5);
}

TEST(Integration, HacWardVariantRuns) {
  auto cfg = Config("aria");
  cfg.ps3.cluster_algo = core::ClusterAlgo::kHacWard;
  eval::Experiment exp(cfg);
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  auto m = exp.Evaluate(*ps3, 0.2, 1);
  EXPECT_LT(m.avg_rel_error, 1.5);
}

}  // namespace
}  // namespace ps3
