#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/sharded_table.h"
#include "storage/table.h"

namespace ps3::storage {
namespace {

Schema TwoColSchema() {
  return Schema({{"x", ColumnType::kNumeric},
                 {"cat", ColumnType::kCategorical}});
}

TEST(Dictionary, GetOrAddAndFind) {
  Dictionary d;
  int32_t a = d.GetOrAdd("apple");
  int32_t b = d.GetOrAdd("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.GetOrAdd("apple"), a);
  EXPECT_EQ(d.Find("banana"), b);
  EXPECT_EQ(d.Find("cherry"), -1);
  EXPECT_EQ(d.ValueOf(a), "apple");
  EXPECT_EQ(d.size(), 2u);
}

TEST(Column, NumericAppend) {
  Column c = Column::MakeNumeric();
  c.AppendNumeric(1.5);
  c.AppendNumeric(-2.0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.NumericAt(1), -2.0);
}

TEST(Column, CategoricalAppend) {
  Column c = Column::MakeCategorical();
  c.AppendCategorical("x");
  c.AppendCategorical("y");
  c.AppendCategorical("x");
  EXPECT_EQ(c.CodeAt(0), c.CodeAt(2));
  EXPECT_NE(c.CodeAt(0), c.CodeAt(1));
  EXPECT_EQ(c.StringAt(1), "y");
}

TEST(Column, PermuteSharesDictionary) {
  Column c = Column::MakeCategorical();
  c.AppendCategorical("a");
  c.AppendCategorical("b");
  Column p = c.Permute({1, 0});
  EXPECT_EQ(p.StringAt(0), "b");
  EXPECT_EQ(p.dict(), c.dict());
}

TEST(Schema, Lookup) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.FindColumn("x"), 0);
  EXPECT_EQ(s.FindColumn("nope"), -1);
  auto idx = s.GetColumnIndex("cat");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(s.GetColumnIndex("zz").ok());
  EXPECT_TRUE(s.IsNumeric(0));
  EXPECT_TRUE(s.IsCategorical(1));
}

TEST(Table, AppendAndAccess) {
  Table t(TwoColSchema());
  t.AppendRow({1.0}, {"a"});
  t.AppendRow({2.0}, {"b"});
  t.Seal();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(t.column(0).NumericAt(1), 2.0);
  auto col = t.GetColumn("cat");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->StringAt(0), "a");
}

TEST(Table, SortedByNumeric) {
  Table t(TwoColSchema());
  t.AppendRow({3.0}, {"c"});
  t.AppendRow({1.0}, {"a"});
  t.AppendRow({2.0}, {"b"});
  auto sorted = t.SortedBy({"x"});
  ASSERT_TRUE(sorted.ok());
  EXPECT_DOUBLE_EQ(sorted->column(0).NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(sorted->column(0).NumericAt(2), 3.0);
  EXPECT_EQ(sorted->column(1).StringAt(0), "a");
}

TEST(Table, SortedByIsStable) {
  Table t(TwoColSchema());
  t.AppendRow({1.0}, {"first"});
  t.AppendRow({1.0}, {"second"});
  t.AppendRow({0.0}, {"zero"});
  auto sorted = t.SortedBy({"x"});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->column(1).StringAt(1), "first");
  EXPECT_EQ(sorted->column(1).StringAt(2), "second");
}

TEST(Table, SortedByMissingColumn) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.SortedBy({"nope"}).ok());
}

TEST(Table, ShuffledPreservesMultiset) {
  Table t(TwoColSchema());
  for (int i = 0; i < 100; ++i) {
    t.AppendRow({static_cast<double>(i)}, {"v"});
  }
  RandomEngine rng(5);
  Table s = t.Shuffled(&rng);
  double sum = 0.0;
  for (size_t i = 0; i < s.num_rows(); ++i) sum += s.column(0).NumericAt(i);
  EXPECT_DOUBLE_EQ(sum, 99.0 * 100.0 / 2.0);
  // Not identity with overwhelming probability.
  bool moved = false;
  for (size_t i = 0; i < s.num_rows(); ++i) {
    if (s.column(0).NumericAt(i) != static_cast<double>(i)) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(PartitionedTable, NearEqualSplit) {
  auto t = std::make_shared<Table>(TwoColSchema());
  for (int i = 0; i < 103; ++i) t->AppendRow({double(i)}, {"v"});
  PartitionedTable pt(t, 10);
  EXPECT_EQ(pt.num_partitions(), 10u);
  size_t total = 0;
  for (size_t p = 0; p < 10; ++p) {
    size_t rows = pt.partition_rows(p);
    EXPECT_GE(rows, 10u);
    EXPECT_LE(rows, 11u);
    total += rows;
  }
  EXPECT_EQ(total, 103u);
}

TEST(PartitionedTable, ContiguousCoverage) {
  auto t = std::make_shared<Table>(TwoColSchema());
  for (int i = 0; i < 50; ++i) t->AppendRow({double(i)}, {"v"});
  PartitionedTable pt(t, 7);
  size_t next = 0;
  for (size_t p = 0; p < pt.num_partitions(); ++p) {
    Partition part = pt.partition(p);
    EXPECT_EQ(part.begin_row(), next);
    next = part.end_row();
  }
  EXPECT_EQ(next, 50u);
}

TEST(PartitionedTable, MorePartitionsThanRows) {
  auto t = std::make_shared<Table>(TwoColSchema());
  for (int i = 0; i < 3; ++i) t->AppendRow({double(i)}, {"v"});
  PartitionedTable pt(t, 10);
  EXPECT_EQ(pt.num_partitions(), 3u);
}

TEST(Partition, RowAccess) {
  auto t = std::make_shared<Table>(TwoColSchema());
  for (int i = 0; i < 20; ++i) {
    t->AppendRow({double(i)}, {i < 10 ? "lo" : "hi"});
  }
  PartitionedTable pt(t, 2);
  Partition second = pt.partition(1);
  EXPECT_EQ(second.num_rows(), 10u);
  EXPECT_DOUBLE_EQ(second.NumericAt(0, 0), 10.0);
  EXPECT_EQ(t->column(1).StringAt(second.begin_row()), "hi");
}

std::shared_ptr<Table> ShardFixture(size_t rows) {
  auto t = std::make_shared<Table>(TwoColSchema());
  for (size_t i = 0; i < rows; ++i) {
    t->AppendRow({double(i)}, {i % 2 == 0 ? "even" : "odd"});
  }
  return t;
}

TEST(ShardedTable, EveryPartitionOwnedExactlyOnce) {
  for (ShardAssignment a : {ShardAssignment::kRange, ShardAssignment::kHash}) {
    ShardedTable st(ShardFixture(130), /*num_partitions=*/13,
                    /*num_shards=*/4, a);
    EXPECT_EQ(st.num_partitions(), 13u);
    std::vector<int> owned(13, 0);
    for (size_t s = 0; s < st.num_shards(); ++s) {
      for (size_t p : st.shard(s)) owned[p]++;
    }
    for (size_t p = 0; p < owned.size(); ++p) {
      EXPECT_EQ(owned[p], 1) << "partition " << p;
    }
  }
}

TEST(ShardedTable, RangeShardsAreContiguousAndOrdered) {
  ShardedTable st(ShardFixture(100), 10, 3, ShardAssignment::kRange);
  size_t next = 0;
  for (size_t s = 0; s < st.num_shards(); ++s) {
    for (size_t p : st.shard(s)) {
      EXPECT_EQ(p, next);
      ++next;
    }
  }
  EXPECT_EQ(next, st.num_partitions());
}

TEST(ShardedTable, ShardCountClampedToPartitions) {
  ShardedTable st(ShardFixture(30), 3, 8, ShardAssignment::kRange);
  EXPECT_EQ(st.num_shards(), 3u);
  EXPECT_EQ(st.num_partitions(), 3u);
}

TEST(ShardedTable, GlobalPartitionAccessorMatchesFlatTable) {
  auto table = ShardFixture(120);
  PartitionedTable flat(table, 12);
  ShardedTable st(flat, 5, ShardAssignment::kHash);
  for (size_t p = 0; p < flat.num_partitions(); ++p) {
    EXPECT_EQ(st.partition(p).begin_row(), flat.partition(p).begin_row());
    EXPECT_EQ(st.partition(p).end_row(), flat.partition(p).end_row());
  }
}

}  // namespace
}  // namespace ps3::storage
