#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "featurize/featurizer.h"
#include "featurize/normalizer.h"
#include "featurize/selectivity.h"
#include "stats/stats_builder.h"

namespace ps3::featurize {
namespace {

using query::Aggregate;
using query::CompareOp;
using query::Expr;
using query::Predicate;
using query::Query;
using storage::ColumnType;
using storage::PartitionedTable;
using storage::Schema;
using storage::Table;

struct Fixture {
  std::shared_ptr<Table> table;
  std::unique_ptr<PartitionedTable> parts;
  std::unique_ptr<stats::TableStats> stats;
  std::unique_ptr<Featurizer> featurizer;

  // 8 partitions x 200 rows; x in [p*200, p*200+200); cat has a dominant
  // value per partition half; z uniform noise.
  Fixture() {
    Schema schema({{"x", ColumnType::kNumeric},
                   {"z", ColumnType::kNumeric},
                   {"cat", ColumnType::kCategorical}});
    table = std::make_shared<Table>(schema);
    RandomEngine rng(17);
    for (int p = 0; p < 8; ++p) {
      for (int r = 0; r < 200; ++r) {
        table->AppendRow(
            {double(p * 200 + r), rng.NextDouble() * 10.0},
            {p < 4 ? "left" : "right"});
      }
    }
    table->Seal();
    parts = std::make_unique<PartitionedTable>(table, 8);
    stats::StatsOptions opts;
    opts.grouping_columns = {2};
    stats = std::make_unique<stats::TableStats>(
        stats::StatsBuilder(opts).Build(*parts));
    featurizer = std::make_unique<Featurizer>(schema, stats.get());
  }

  bool RowMatches(const query::Query& q, size_t part, size_t row) const {
    return q.EffectivePredicate()->Matches(parts->partition(part), row);
  }

  double TrueSelectivity(const query::Query& q, size_t part) const {
    auto p = parts->partition(part);
    size_t matched = 0;
    for (size_t r = 0; r < p.num_rows(); ++r) {
      if (q.EffectivePredicate()->Matches(p, r)) ++matched;
    }
    return double(matched) / double(p.num_rows());
  }
};

TEST(FeatureSchema, LayoutContainsExpectedKinds) {
  Fixture f;
  const FeatureSchema& fs = f.featurizer->feature_schema();
  EXPECT_GT(fs.num_features(), 20u);
  // Selectivity features lead.
  EXPECT_EQ(fs.def(fs.sel_upper_index()).kind, StatKind::kSelUpper);
  // Categorical column carries no measure features.
  for (const auto& def : fs.defs()) {
    if (def.column == 2) {
      EXPECT_NE(CategoryOf(def.kind), FeatureCategory::kMeasure)
          << def.name;
    }
  }
  // Bitmap features exist for the grouping column.
  bool has_bitmap = false;
  for (const auto& def : fs.defs()) {
    if (def.kind == StatKind::kHhBitmap) {
      has_bitmap = true;
      EXPECT_EQ(def.column, 2);
    }
  }
  EXPECT_TRUE(has_bitmap);
}

TEST(FeatureSchema, KindNamesAndCategories) {
  EXPECT_STREQ(StatKindName(StatKind::kSelUpper), "selectivity_upper");
  EXPECT_EQ(CategoryOf(StatKind::kHhBitmap), FeatureCategory::kHeavyHitter);
  EXPECT_EQ(CategoryOf(StatKind::kNumDv), FeatureCategory::kDistinctValue);
  EXPECT_EQ(CategoryOf(StatKind::kLogMax), FeatureCategory::kMeasure);
  EXPECT_STREQ(FeatureCategoryName(FeatureCategory::kSelectivity),
               "selectivity");
}

TEST(Featurizer, StaticFeaturesMatchSketches) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "s")};
  q.group_by = {2};
  auto fm = f.featurizer->BuildFeatures(q);
  const FeatureSchema& fs = f.featurizer->feature_schema();
  for (size_t j = 0; j < fs.num_features(); ++j) {
    const auto& def = fs.def(j);
    if (def.kind == StatKind::kMax && def.column == 0) {
      EXPECT_DOUBLE_EQ(fm.At(3, j), 3.0 * 200 + 199);
    }
    if (def.kind == StatKind::kMean && def.column == 0) {
      EXPECT_NEAR(fm.At(0, j), 99.5, 1e-9);
    }
  }
}

TEST(Featurizer, MaskZeroesUnusedColumns) {
  Fixture f;
  Query q;  // uses only column 0
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "s")};
  auto fm = f.featurizer->BuildFeatures(q);
  const FeatureSchema& fs = f.featurizer->feature_schema();
  for (size_t j = 0; j < fs.num_features(); ++j) {
    const auto& def = fs.def(j);
    if (def.column >= 1) {
      for (size_t p = 0; p < fm.n; ++p) {
        EXPECT_DOUBLE_EQ(fm.At(p, j), 0.0) << def.name;
      }
    }
  }
}

TEST(Featurizer, NoPredicateHasUnitSelectivity) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  auto sel = f.featurizer->ComputeSelectivity(q);
  for (const auto& s : sel) {
    EXPECT_DOUBLE_EQ(s.upper, 1.0);
    EXPECT_DOUBLE_EQ(s.indep, 1.0);
    EXPECT_DOUBLE_EQ(s.lower, 1.0);
  }
}

TEST(Selectivity, RangeFilterHasPerfectRecall) {
  Fixture f;
  // x in [500, 700): only partitions 2 and 3 contain matching rows.
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.predicate = Predicate::And(
      {Predicate::NumericCompare(0, CompareOp::kGe, 500.0),
       Predicate::NumericCompare(0, CompareOp::kLt, 700.0)});
  auto sel = f.featurizer->ComputeSelectivity(q);
  for (size_t p = 0; p < 8; ++p) {
    double truth = f.TrueSelectivity(q, p);
    if (truth > 0.0) {
      EXPECT_GT(sel[p].upper, 0.0) << "partition " << p;
    }
    EXPECT_GE(sel[p].upper + 1e-9, truth) << "partition " << p;
    EXPECT_LE(sel[p].lower - 1e-9, truth) << "partition " << p;
  }
  EXPECT_DOUBLE_EQ(sel[0].upper, 0.0);
  EXPECT_DOUBLE_EQ(sel[7].upper, 0.0);
}

TEST(Selectivity, CategoricalExactForSmallDomains) {
  Fixture f;
  auto dict = f.table->column(2).dict();
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.predicate = Predicate::CategoricalIn(2, {dict->Find("left")});
  auto sel = f.featurizer->ComputeSelectivity(q);
  // Partitions 0-3 are 100% "left"; 4-7 contain none.
  for (size_t p = 0; p < 4; ++p) EXPECT_DOUBLE_EQ(sel[p].upper, 1.0);
  for (size_t p = 4; p < 8; ++p) EXPECT_DOUBLE_EQ(sel[p].upper, 0.0);
}

TEST(Selectivity, NegationBoundsStaySound) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.predicate = Predicate::Not(
      Predicate::NumericCompare(0, CompareOp::kLt, 800.0));
  auto sel = f.featurizer->ComputeSelectivity(q);
  for (size_t p = 0; p < 8; ++p) {
    double truth = f.TrueSelectivity(q, p);
    EXPECT_GE(sel[p].upper + 1e-9, truth) << p;
    EXPECT_LE(sel[p].lower - 1e-9, truth) << p;
  }
}

TEST(Selectivity, SameColumnClausesEvaluatedJointly) {
  Fixture f;
  // Contradictory range on the same column: upper bound must be 0 thanks
  // to the joint interval intersection.
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.predicate = Predicate::And(
      {Predicate::NumericCompare(0, CompareOp::kGt, 900.0),
       Predicate::NumericCompare(0, CompareOp::kLt, 100.0)});
  auto sel = f.featurizer->ComputeSelectivity(q);
  for (size_t p = 0; p < 8; ++p) {
    EXPECT_DOUBLE_EQ(sel[p].upper, 0.0) << p;
  }
}

TEST(Selectivity, OrOfDisjointRanges) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Count()};
  q.predicate = Predicate::Or(
      {Predicate::NumericCompare(0, CompareOp::kLt, 100.0),
       Predicate::NumericCompare(0, CompareOp::kGe, 1500.0)});
  auto sel = f.featurizer->ComputeSelectivity(q);
  for (size_t p = 0; p < 8; ++p) {
    double truth = f.TrueSelectivity(q, p);
    EXPECT_GE(sel[p].upper + 1e-9, truth) << p;
  }
  // Middle partitions match nothing.
  EXPECT_DOUBLE_EQ(sel[3].upper, 0.0);
}

/// Property sweep: on random conjunctive predicates the upper bound never
/// under-estimates and the lower bound never over-estimates.
class SelectivityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SelectivityProperty, BoundsAreSoundOnRandomPredicates) {
  Fixture f;
  RandomEngine rng(static_cast<uint64_t>(GetParam()));
  Query q;
  q.aggregates = {Aggregate::Count()};
  std::vector<query::PredicatePtr> clauses;
  size_t n_clauses = 1 + rng.NextUint64(3);
  for (size_t c = 0; c < n_clauses; ++c) {
    if (rng.NextBool(0.3)) {
      auto dict = f.table->column(2).dict();
      clauses.push_back(Predicate::CategoricalIn(
          2, {static_cast<int32_t>(rng.NextUint64(dict->size()))}));
    } else {
      size_t col = rng.NextUint64(2);
      double v = col == 0 ? rng.NextDouble() * 1600.0
                          : rng.NextDouble() * 10.0;
      auto op = rng.NextBool(0.5) ? CompareOp::kLt : CompareOp::kGe;
      clauses.push_back(Predicate::NumericCompare(col, op, v));
    }
  }
  q.predicate = rng.NextBool(0.3) ? Predicate::Or(std::move(clauses))
                                  : Predicate::And(std::move(clauses));
  auto sel = f.featurizer->ComputeSelectivity(q);
  for (size_t p = 0; p < 8; ++p) {
    double truth = f.TrueSelectivity(q, p);
    EXPECT_GE(sel[p].upper + 1e-9, truth)
        << "part " << p << " pred "
        << q.predicate->ToString(f.table->schema());
    EXPECT_LE(sel[p].lower - 1e-9, truth)
        << "part " << p << " pred "
        << q.predicate->ToString(f.table->schema());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPredicates, SelectivityProperty,
                         ::testing::Range(0, 40));

TEST(Normalizer, TransformShapes) {
  EXPECT_DOUBLE_EQ(FeatureNormalizer::Transform(StatKind::kSelUpper, 0.125),
                   0.5);
  EXPECT_DOUBLE_EQ(FeatureNormalizer::Transform(StatKind::kMean, 0.0), 0.0);
  EXPECT_NEAR(FeatureNormalizer::Transform(StatKind::kMean, std::exp(1) - 1),
              1.0, 1e-12);
  // Signed transform is odd.
  EXPECT_DOUBLE_EQ(FeatureNormalizer::Transform(StatKind::kMin, -3.0),
                   -FeatureNormalizer::Transform(StatKind::kMin, 3.0));
}

TEST(Normalizer, FitAndApply) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "s")};
  q.group_by = {2};
  auto fm = f.featurizer->BuildFeatures(q);
  FeatureNormalizer norm;
  norm.Fit(f.featurizer->feature_schema(), {&fm});
  ASSERT_TRUE(norm.fitted());
  auto fm2 = fm;
  norm.Apply(&fm2);
  // Normalized features should have mean |value| ~ 1 for non-constant dims.
  const FeatureSchema& fs = f.featurizer->feature_schema();
  for (size_t j = 0; j < fs.num_features(); ++j) {
    if (fs.def(j).kind != StatKind::kMean || fs.def(j).column != 0) continue;
    double acc = 0.0;
    for (size_t p = 0; p < fm2.n; ++p) acc += std::fabs(fm2.At(p, j));
    EXPECT_NEAR(acc / double(fm2.n), 1.0, 1e-9);
  }
}

TEST(Normalizer, TestTimeUsesTrainingScales) {
  Fixture f;
  Query q;
  q.aggregates = {Aggregate::Sum(Expr::Column(0), "s")};
  auto fm = f.featurizer->BuildFeatures(q);
  FeatureNormalizer norm;
  norm.Fit(f.featurizer->feature_schema(), {&fm});
  auto scales = norm.scales();
  // Fitting on the same data twice gives identical scales (deterministic).
  FeatureNormalizer norm2;
  norm2.Fit(f.featurizer->feature_schema(), {&fm});
  EXPECT_EQ(scales, norm2.scales());
}

}  // namespace
}  // namespace ps3::featurize
