#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "query/evaluator.h"
#include "workload/datasets.h"
#include "workload/generator.h"
#include "workload/tpch_queries.h"

namespace ps3::workload {
namespace {

TEST(Datasets, DispatchByName) {
  for (const char* name : {"tpch", "tpcds", "aria", "kdd"}) {
    auto made = MakeDataset(name, 2000, 1);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ(made->name, name);
    EXPECT_EQ(made->table->num_rows(), 2000u);
    EXPECT_FALSE(made->default_sort.empty());
    EXPECT_FALSE(made->spec.groupby_columns.empty());
    EXPECT_FALSE(made->spec.aggregates.empty());
  }
  EXPECT_FALSE(MakeDataset("nope", 10, 1).ok());
}

TEST(Datasets, SpecColumnsExist) {
  for (const char* name : {"tpch", "tpcds", "aria", "kdd"}) {
    auto bundle = MakeDataset(name, 1000, 2);
    ASSERT_TRUE(bundle.ok());
    const auto& schema = bundle->table->schema();
    for (const auto& col : bundle->spec.groupby_columns) {
      EXPECT_GE(schema.FindColumn(col), 0) << name << "." << col;
    }
    for (const auto& col : bundle->spec.predicate_columns) {
      EXPECT_GE(schema.FindColumn(col), 0) << name << "." << col;
    }
    for (const auto& col : bundle->default_sort) {
      EXPECT_GE(schema.FindColumn(col), 0) << name << "." << col;
    }
  }
}

TEST(Datasets, AriaVersionSkewMatchesPaper) {
  auto bundle = MakeAria(50000, 3);
  auto col = bundle.table->GetColumn("AppInfo_Version");
  ASSERT_TRUE(col.ok());
  std::unordered_map<int32_t, size_t> counts;
  for (size_t r = 0; r < bundle.table->num_rows(); ++r) {
    ++counts[(*col)->CodeAt(r)];
  }
  size_t max_count = 0;
  for (const auto& [code, c] : counts) max_count = std::max(max_count, c);
  double top_share =
      static_cast<double>(max_count) / double(bundle.table->num_rows());
  // §1: the most popular of the 167 versions accounts for ~half the data.
  EXPECT_GT(top_share, 0.35);
  EXPECT_LT(top_share, 0.65);
  EXPECT_LE(counts.size(), 167u);
  EXPECT_GT(counts.size(), 100u);
}

TEST(Datasets, TpchZipfSkewOnBrands) {
  auto bundle = MakeTpchStar(30000, 5);
  auto col = bundle.table->GetColumn("p_brand");
  ASSERT_TRUE(col.ok());
  std::unordered_map<int32_t, size_t> counts;
  for (size_t r = 0; r < bundle.table->num_rows(); ++r) {
    ++counts[(*col)->CodeAt(r)];
  }
  size_t max_count = 0, min_count = bundle.table->num_rows();
  for (const auto& [code, c] : counts) {
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  // Zipf part popularity must propagate into brand skew.
  EXPECT_GT(max_count, 4 * min_count);
}

TEST(Datasets, KddAttackMixIsSkewed) {
  auto bundle = MakeKdd(30000, 7);
  auto col = bundle.table->GetColumn("label");
  ASSERT_TRUE(col.ok());
  std::unordered_map<int32_t, size_t> counts;
  for (size_t r = 0; r < bundle.table->num_rows(); ++r) {
    ++counts[(*col)->CodeAt(r)];
  }
  EXPECT_GE(counts.size(), 8u);  // rare attack classes present
  size_t max_count = 0;
  for (const auto& [code, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(static_cast<double>(max_count) / 30000.0, 0.25);
}

TEST(Datasets, TpcdsDateColumnsInRange) {
  auto bundle = MakeTpcdsStar(5000, 9);
  auto year = bundle.table->GetColumn("d_year");
  ASSERT_TRUE(year.ok());
  for (size_t r = 0; r < 5000; ++r) {
    double y = (*year)->NumericAt(r);
    EXPECT_GE(y, 1999.0);
    EXPECT_LE(y, 2001.0);
  }
}

struct GeneratorFixture {
  DatasetBundle bundle = MakeAria(5000, 13);
  QueryGenerator gen{bundle.table.get(), bundle.spec, {}};
};

TEST(QueryGenerator, ProducesDistinctValidQueries) {
  GeneratorFixture f;
  auto queries = f.gen.GenerateSet(50, 21);
  EXPECT_EQ(queries.size(), 50u);
  std::set<std::string> rendered;
  for (const auto& q : queries) {
    EXPECT_GE(q.aggregates.size(), 1u);
    EXPECT_LE(q.aggregates.size(), 3u);
    EXPECT_LE(q.NumPredicateClauses(), 5u);
    rendered.insert(q.ToString(f.bundle.table->schema()));
  }
  EXPECT_EQ(rendered.size(), 50u);
}

TEST(QueryGenerator, GroupByColumnsComeFromSpec) {
  GeneratorFixture f;
  std::set<size_t> allowed;
  for (const auto& name : f.bundle.spec.groupby_columns) {
    allowed.insert(static_cast<size_t>(
        f.bundle.table->schema().FindColumn(name)));
  }
  auto queries = f.gen.GenerateSet(40, 23);
  for (const auto& q : queries) {
    for (size_t g : q.group_by) EXPECT_TRUE(allowed.count(g));
  }
}

TEST(QueryGenerator, SomeQueriesHaveNoGroupByOrPredicate) {
  GeneratorFixture f;
  auto queries = f.gen.GenerateSet(60, 29);
  size_t no_group = 0, no_pred = 0;
  for (const auto& q : queries) {
    if (q.group_by.empty()) ++no_group;
    if (!q.predicate) ++no_pred;
  }
  EXPECT_GT(no_group, 0u);
  EXPECT_GT(no_pred, 0u);
}

TEST(QueryGenerator, QueriesAreEvaluable) {
  GeneratorFixture f;
  storage::PartitionedTable pt(f.bundle.table, 8);
  auto queries = f.gen.GenerateSet(10, 31);
  for (const auto& q : queries) {
    auto answers = query::EvaluateAllPartitions(q, pt);
    auto exact = query::ExactAnswer(q, answers);
    // Evaluation must not crash; empty results are legal for very
    // selective predicates.
    (void)exact;
  }
  SUCCEED();
}

TEST(ResolveAggregate, AllKinds) {
  auto bundle = MakeAria(500, 17);
  using K = AggregateSpec::Kind;
  auto count = ResolveAggregate(*bundle.table, {K::kCount, "", ""});
  EXPECT_EQ(count.func, query::AggFunc::kCount);
  auto sum = ResolveAggregate(*bundle.table, {K::kSum, "olsize", ""});
  EXPECT_EQ(sum.func, query::AggFunc::kSum);
  ASSERT_NE(sum.expr, nullptr);
  auto avg = ResolveAggregate(*bundle.table, {K::kAvg, "olsize", ""});
  EXPECT_EQ(avg.func, query::AggFunc::kAvg);
  auto prod = ResolveAggregate(*bundle.table,
                               {K::kSumProduct, "olsize", "ol_w"});
  std::set<size_t> cols;
  prod.expr->CollectColumns(&cols);
  EXPECT_EQ(cols.size(), 2u);
}

struct TpchQueryFixture {
  DatasetBundle bundle = MakeTpchStar(20000, 19);
  storage::PartitionedTable pt{bundle.table, 20};
};

TEST(TpchQueries, AllTemplatesInstantiate) {
  TpchQueryFixture f;
  RandomEngine rng(37);
  for (int tq : kTpchTemplates) {
    auto made = MakeTpchQuery(*f.bundle.table, tq, &rng);
    ASSERT_TRUE(made.ok()) << "Q" << tq;
    EXPECT_GE(made->aggregates.size(), 1u) << "Q" << tq;
  }
  EXPECT_FALSE(MakeTpchQuery(*f.bundle.table, 4, &rng).ok());
}

TEST(TpchQueries, TemplatesAreEvaluable) {
  TpchQueryFixture f;
  for (int tq : {1, 6, 12}) {
    auto queries = MakeTpchQuerySet(*f.bundle.table, tq, 3, 41);
    for (const auto& q : queries) {
      auto exact =
          query::ExactAnswer(q, query::EvaluateAllPartitions(q, f.pt));
      if (tq == 1) {
        // Q1 groups by returnflag x linestatus: a handful of groups.
        EXPECT_GE(exact.size(), 2u);
        EXPECT_LE(exact.size(), 6u);
      }
    }
  }
}

TEST(TpchQueries, Q19HasComplexPredicate) {
  TpchQueryFixture f;
  RandomEngine rng(43);
  auto q = MakeTpchQuery(*f.bundle.table, 19, &rng);
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q->NumPredicateClauses(), 10u);
}

TEST(TpchQueries, Q8UsesCaseRewrite) {
  TpchQueryFixture f;
  RandomEngine rng(47);
  auto q = MakeTpchQuery(*f.bundle.table, 8, &rng);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->aggregates.size(), 2u);
  EXPECT_NE(q->aggregates[0].filter, nullptr);
  EXPECT_EQ(q->aggregates[1].filter, nullptr);
  // The filtered volume is a subset of the total volume.
  auto exact = query::ExactAnswer(
      *q, query::EvaluateAllPartitions(*q, f.pt));
  for (const auto& [key, vals] : exact) {
    EXPECT_LE(vals[0], vals[1] + 1e-9);
  }
}

/// Every template must instantiate to an evaluable query within the
/// paper's scope (bounded group count, valid columns).
class TpchTemplateSweep : public ::testing::TestWithParam<int> {};

TEST_P(TpchTemplateSweep, InstantiatesAndEvaluatesWithinScope) {
  static const TpchQueryFixture* fixture = new TpchQueryFixture();
  RandomEngine rng(1000 + static_cast<uint64_t>(GetParam()));
  auto made = MakeTpchQuery(*fixture->bundle.table, GetParam(), &rng);
  ASSERT_TRUE(made.ok());
  const query::Query& q = *made;
  // All referenced columns are valid.
  for (size_t c : q.UsedColumns()) {
    EXPECT_LT(c, fixture->bundle.table->schema().num_columns());
  }
  auto exact =
      query::ExactAnswer(q, query::EvaluateAllPartitions(q, fixture->pt));
  // Group counts stay within the paper's moderate-cardinality scope.
  EXPECT_LE(exact.size(), 1000u) << "Q" << GetParam();
  // Grouped templates must produce at least one group on this data.
  if (!q.group_by.empty() && GetParam() != 7) {
    // (Q7's two-nation filter may legitimately match nothing for some
    // random nation pairs.)
    EXPECT_GE(exact.size(), 1u) << "Q" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchTemplateSweep,
                         ::testing::ValuesIn(kTpchTemplates),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(TpchQueries, DistinctParametersAcrossInstantiations) {
  TpchQueryFixture f;
  auto queries = MakeTpchQuerySet(*f.bundle.table, 6, 5, 53);
  std::set<std::string> rendered;
  for (const auto& q : queries) {
    rendered.insert(q.ToString(f.bundle.table->schema()));
  }
  EXPECT_GE(rendered.size(), 4u);  // random params rarely collide
}

}  // namespace
}  // namespace ps3::workload
