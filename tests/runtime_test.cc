// Tests for the resident work-stealing WorkerPool: ParallelFor coverage
// and determinism, nested-call inlining, exception propagation, lazy lane
// growth, and — the property the pool exists for — per-lane scratch that
// survives across ParallelFor calls instead of being torn down with
// forked workers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "query/evaluator.h"
#include "runtime/worker_pool.h"
#include "workload/datasets.h"

namespace ps3 {
namespace {

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::WorkerPool pool(4);
  constexpr size_t kN = 1337;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ResultsIdenticalAcrossLaneCounts) {
  runtime::WorkerPool pool(8);
  constexpr size_t kN = 500;
  std::vector<double> out1(kN), out8(kN);
  pool.ParallelFor(kN, [&](size_t i) { out1[i] = 3.0 * i + 1.0; },
                   /*max_lanes=*/1);
  pool.ParallelFor(kN, [&](size_t i) { out8[i] = 3.0 * i + 1.0; },
                   /*max_lanes=*/8);
  EXPECT_EQ(out1, out8);
}

TEST(WorkerPool, NestedCallsRunInline) {
  runtime::WorkerPool pool(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    // A task fanning out on its own pool must not deadlock or explode.
    pool.ParallelFor(kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ExceptionRethrownOnCaller) {
  runtime::WorkerPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<size_t> done{0};
  pool.ParallelFor(50, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 50u);
}

TEST(WorkerPool, GrowsToRequestedLanes) {
  runtime::WorkerPool pool(1);
  EXPECT_EQ(pool.num_lanes(), 1u);
  std::atomic<size_t> done{0};
  pool.ParallelFor(64, [&](size_t) { done.fetch_add(1); },
                   /*max_lanes=*/4);
  EXPECT_EQ(done.load(), 64u);
  EXPECT_EQ(pool.num_lanes(), 4u);
}

struct CountingScratch {
  CountingScratch() { created.fetch_add(1); }
  static std::atomic<int> created;
  std::vector<double> buf;
};
std::atomic<int> CountingScratch::created{0};

TEST(WorkerPool, LocalScratchPersistsAcrossParallelForCalls) {
  // The ROADMAP-noted defect in the fork-per-call pool: worker threads
  // died between ParallelFor calls, so their scratch was reconstructed on
  // every call (~lanes new objects per query). On a resident pool, each
  // lane constructs its scratch at most once, ever — so across many
  // rounds the total stays bounded by the lane count instead of growing
  // by ~lanes per round.
  constexpr int kLanes = 4;
  constexpr int kRounds = 10;
  runtime::WorkerPool pool(kLanes);
  const int before = CountingScratch::created.load();
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(256, [&](size_t) {
      CountingScratch& s = pool.LocalScratch<CountingScratch>();
      if (s.buf.empty()) s.buf.resize(1024);
      s.buf[0] += 1.0;
    });
  }
  const int delta = CountingScratch::created.load() - before;
  EXPECT_GE(delta, 1);
  EXPECT_LE(delta, kLanes);  // fork-per-call behavior would give ~kLanes*kRounds
}

TEST(WorkerPool, VectorScratchReusedAcrossQueriesOnSamePool) {
  // End-to-end version of the teardown fix: two (and more) vectorized
  // whole-table evaluations on one resident pool must not reconstruct the
  // per-lane VectorScratch (bitmaps + dense group-id table) per query.
  auto bundle = workload::MakeTpchStar(4000, /*seed=*/3);
  storage::PartitionedTable pt(bundle.table, 16);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};

  runtime::WorkerPool pool(4);
  query::ExecOptions opts;
  opts.policy = query::ExecPolicy::kVectorized;
  opts.num_threads = 4;
  opts.pool = &pool;

  const size_t before = query::VectorScratchCreatedForTesting();
  for (int round = 0; round < 6; ++round) {
    auto answers = query::EvaluateAllPartitions(q, pt, opts);
    ASSERT_EQ(answers.size(), 16u);
  }
  const size_t delta = query::VectorScratchCreatedForTesting() - before;
  // At most one scratch per lane for all six queries combined; the
  // fork-per-call pool would have built ~(lanes-1) fresh scratches per
  // query on worker threads.
  EXPECT_LE(delta, 4u);
}

}  // namespace
}  // namespace ps3
