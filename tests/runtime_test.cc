// Tests for the resident work-stealing WorkerPool: ParallelFor coverage
// and determinism, nested-call inlining, exception propagation, lazy lane
// growth, per-lane scratch that survives across ParallelFor calls instead
// of being torn down with forked workers — and the multi-job model:
// concurrent top-level callers admitted side by side with per-job lane
// caps and per-job failure isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "query/evaluator.h"
#include "runtime/worker_pool.h"
#include "workload/datasets.h"

namespace ps3 {
namespace {

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::WorkerPool pool(4);
  constexpr size_t kN = 1337;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ResultsIdenticalAcrossLaneCounts) {
  runtime::WorkerPool pool(8);
  constexpr size_t kN = 500;
  std::vector<double> out1(kN), out8(kN);
  pool.ParallelFor(kN, [&](size_t i) { out1[i] = 3.0 * i + 1.0; },
                   /*max_lanes=*/1);
  pool.ParallelFor(kN, [&](size_t i) { out8[i] = 3.0 * i + 1.0; },
                   /*max_lanes=*/8);
  EXPECT_EQ(out1, out8);
}

TEST(WorkerPool, NestedCallsRunInline) {
  runtime::WorkerPool pool(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    // A task fanning out on its own pool must not deadlock or explode.
    pool.ParallelFor(kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ExceptionRethrownOnCaller) {
  runtime::WorkerPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<size_t> done{0};
  pool.ParallelFor(50, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 50u);
}

TEST(WorkerPool, GrowsToRequestedLanes) {
  runtime::WorkerPool pool(1);
  EXPECT_EQ(pool.num_lanes(), 1u);
  std::atomic<size_t> done{0};
  pool.ParallelFor(64, [&](size_t) { done.fetch_add(1); },
                   /*max_lanes=*/4);
  EXPECT_EQ(done.load(), 64u);
  EXPECT_EQ(pool.num_lanes(), 4u);
}

// ---------------------------------------------------------------------
// Concurrent multi-job admission: the one-job-at-a-time gate is gone, so
// several top-level ParallelFor callers share the resident lanes at chunk
// granularity. Every job must still cover exactly its own indices.

TEST(WorkerPoolConcurrent, ConcurrentJobsEachCoverTheirOwnIndices) {
  runtime::WorkerPool pool(8);
  constexpr size_t kJobs = 6;
  constexpr size_t kN = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kJobs);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> submitters;
  for (size_t j = 0; j < kJobs; ++j) {
    submitters.emplace_back([&, j] {
      for (int round = 0; round < 8; ++round) {
        pool.ParallelFor(kN, [&, j](size_t i) {
          hits[j][i].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (size_t j = 0; j < kJobs; ++j) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[j][i].load(), 8) << "job " << j << " index " << i;
    }
  }
}

TEST(WorkerPoolConcurrent, PerJobLaneCapHonoredWhileSiblingsRun) {
  runtime::WorkerPool pool(8);
  // A wide job keeps the lanes busy while a capped job runs; the capped
  // job must never have more than `max_lanes` lanes (submitter included)
  // inside its fn at once.
  constexpr int kCap = 2;
  std::atomic<int> capped_now{0};
  std::atomic<int> capped_peak{0};
  std::atomic<bool> wide_done{false};
  std::thread wide([&] {
    for (int round = 0; round < 20 && !wide_done.load(); ++round) {
      pool.ParallelFor(2048, [&](size_t) {
        volatile double x = 1.0;
        for (int k = 0; k < 50; ++k) x = x * 1.0000001;
        (void)x;
      });
    }
  });
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(
        512,
        [&](size_t) {
          int now = capped_now.fetch_add(1) + 1;
          int peak = capped_peak.load();
          while (now > peak && !capped_peak.compare_exchange_weak(peak, now)) {
          }
          volatile double x = 1.0;
          for (int k = 0; k < 50; ++k) x = x * 1.0000001;
          (void)x;
          capped_now.fetch_sub(1);
        },
        /*max_lanes=*/kCap);
  }
  wide_done.store(true);
  wide.join();
  EXPECT_GE(capped_peak.load(), 1);
  EXPECT_LE(capped_peak.load(), kCap);
}

TEST(WorkerPoolConcurrent, ExceptionFailsOnlyItsOwnJob) {
  runtime::WorkerPool pool(8);
  // One poisoned job per round among healthy siblings: the poison must be
  // rethrown on its own submitter only, the siblings' results must be
  // complete and correct, and the resident lanes must not wedge.
  constexpr size_t kGood = 4;
  constexpr size_t kN = 2048;
  constexpr int kRounds = 6;
  std::vector<std::vector<double>> out(kGood, std::vector<double>(kN));
  std::atomic<int> poison_caught{0};
  for (int round = 0; round < kRounds; ++round) {
    for (auto& o : out) std::fill(o.begin(), o.end(), 0.0);
    std::vector<std::thread> submitters;
    for (size_t j = 0; j < kGood; ++j) {
      submitters.emplace_back([&, j] {
        pool.ParallelFor(kN, [&, j](size_t i) {
          out[j][i] = static_cast<double>(j * kN + i);
        });
      });
    }
    submitters.emplace_back([&] {
      try {
        pool.ParallelFor(kN, [&](size_t i) {
          if (i == 1234) throw std::runtime_error("poisoned query");
        });
      } catch (const std::runtime_error&) {
        poison_caught.fetch_add(1);
      }
    });
    for (auto& t : submitters) t.join();
    for (size_t j = 0; j < kGood; ++j) {
      for (size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(out[j][i], static_cast<double>(j * kN + i))
            << "round " << round << " job " << j << " index " << i;
      }
    }
  }
  EXPECT_EQ(poison_caught.load(), kRounds);
  // Lanes stayed resident and serviceable.
  std::atomic<size_t> done{0};
  pool.ParallelFor(100, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 100u);
}

TEST(WorkerPoolConcurrent, ConcurrentFailuresDoNotCrossPollinate) {
  runtime::WorkerPool pool(4);
  // Every job throws a distinct type; each submitter must catch exactly
  // the type its own job threw.
  struct ErrA : std::runtime_error {
    ErrA() : std::runtime_error("A") {}
  };
  struct ErrB : std::runtime_error {
    ErrB() : std::runtime_error("B") {}
  };
  std::atomic<int> a_caught{0}, b_caught{0}, wrong{0};
  std::vector<std::thread> submitters;
  for (int r = 0; r < 4; ++r) {
    submitters.emplace_back([&] {
      try {
        pool.ParallelFor(512, [](size_t i) {
          if (i == 100) throw ErrA();
        });
      } catch (const ErrA&) {
        a_caught.fetch_add(1);
      } catch (...) {
        wrong.fetch_add(1);
      }
    });
    submitters.emplace_back([&] {
      try {
        pool.ParallelFor(512, [](size_t i) {
          if (i == 100) throw ErrB();
        });
      } catch (const ErrB&) {
        b_caught.fetch_add(1);
      } catch (...) {
        wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(a_caught.load(), 4);
  EXPECT_EQ(b_caught.load(), 4);
  EXPECT_EQ(wrong.load(), 0);
}

// ---------------------------------------------------------------------
// Query classes and cooperative cancellation: a fired token aborts only
// its own job with a structured Status; class weighting affects timing
// only, never coverage.

TEST(WorkerPoolCancel, PreCancelledTokenAbortsWithCancelledStatus) {
  runtime::WorkerPool pool(4);
  CancelToken token;
  token.Cancel();
  runtime::WorkerPool::TaskOptions topts;
  topts.cancel = &token;
  std::atomic<size_t> ran{0};
  try {
    pool.ParallelFor(
        4096, [&](size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
        topts);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
  // Cooperative: nothing promises zero items ran, but the abort must cut
  // the job short rather than draining all 4096 through the kernel.
  EXPECT_LT(ran.load(), 4096u);
  // The pool stays serviceable and isolated after the abort.
  std::atomic<size_t> done{0};
  pool.ParallelFor(128, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 128u);
}

TEST(WorkerPoolCancel, InlinePathPollsToken) {
  // max_lanes=1 runs fully inline on the caller; the token must still be
  // polled (every kInlineCancelStride items), not only on pool lanes.
  runtime::WorkerPool pool(2);
  CancelToken token;
  token.Cancel();
  runtime::WorkerPool::TaskOptions topts;
  topts.max_lanes = 1;
  topts.cancel = &token;
  EXPECT_THROW(pool.ParallelFor(512, [](size_t) {}, topts), QueryAborted);
}

TEST(WorkerPoolCancel, DeadlineExpiryAbortsMidFlight) {
  runtime::WorkerPool pool(4);
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(5));
  runtime::WorkerPool::TaskOptions topts;
  topts.cancel = &token;
  try {
    // Each item sleeps, so the job takes far longer than the deadline;
    // the chunk-boundary poll must fire DeadlineExceeded mid-flight.
    pool.ParallelFor(
        4096,
        [](size_t) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        },
        topts);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(WorkerPoolCancel, CancelMidFlightFromAnotherThread) {
  // The racy shape (cancel fires while chunks are executing): the job
  // must abort with kCancelled and co-resident jobs must complete fully.
  runtime::WorkerPool pool(4);
  CancelToken token;
  std::atomic<size_t> victim_ran{0};
  std::atomic<size_t> sibling_ran{0};
  std::thread sibling([&] {
    pool.ParallelFor(2048, [&](size_t) {
      sibling_ran.fetch_add(1, std::memory_order_relaxed);
      volatile double x = 1.0;
      for (int k = 0; k < 20; ++k) x = x * 1.0000001;
      (void)x;
    });
  });
  std::thread canceller([&] {
    while (victim_ran.load(std::memory_order_relaxed) < 64) {
      std::this_thread::yield();
    }
    token.Cancel();
  });
  runtime::WorkerPool::TaskOptions topts;
  topts.cancel = &token;
  try {
    pool.ParallelFor(
        1 << 20,
        [&](size_t) {
          victim_ran.fetch_add(1, std::memory_order_relaxed);
          volatile double x = 1.0;
          for (int k = 0; k < 20; ++k) x = x * 1.0000001;
          (void)x;
        },
        topts);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
  canceller.join();
  sibling.join();
  EXPECT_LT(victim_ran.load(), size_t{1} << 20);
  EXPECT_EQ(sibling_ran.load(), 2048u);
}

TEST(WorkerPoolClasses, InteractiveAndBatchJobsBothComplete) {
  // Class weighting is preemption, not starvation: with both classes in
  // flight continuously, every job still covers exactly its indices.
  runtime::WorkerPool pool(4);
  constexpr size_t kN = 4096;
  std::atomic<size_t> batch_done{0}, inter_done{0};
  std::vector<std::thread> submitters;
  for (int j = 0; j < 2; ++j) {
    submitters.emplace_back([&] {
      runtime::WorkerPool::TaskOptions topts;
      topts.query_class = QueryClass::kBatch;
      for (int round = 0; round < 6; ++round) {
        pool.ParallelFor(
            kN,
            [&](size_t) { batch_done.fetch_add(1, std::memory_order_relaxed); },
            topts);
      }
    });
    submitters.emplace_back([&] {
      runtime::WorkerPool::TaskOptions topts;
      topts.query_class = QueryClass::kInteractive;
      for (int round = 0; round < 6; ++round) {
        pool.ParallelFor(
            kN,
            [&](size_t) { inter_done.fetch_add(1, std::memory_order_relaxed); },
            topts);
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(batch_done.load(), 2 * 6 * kN);
  EXPECT_EQ(inter_done.load(), 2 * 6 * kN);
}

/// Runs `streams` identical concurrent submitters, each looping
/// ParallelFor jobs of identical work for a fixed wall-clock window, and
/// returns max/min of the per-stream completed-item counts — the
/// per-stream throughput spread (the unit BENCH_PR5 reported the skew
/// in). A windowed steady-state measure, so a brief OS preemption of one
/// submitter washes out instead of deciding the verdict.
double StreamSpread(size_t streams, int window_ms) {
  runtime::WorkerPool pool(4);
  constexpr size_t kN = 1024;
  std::atomic<bool> stop{false};
  std::vector<uint64_t> items(streams, 0);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < streams; ++s) {
    submitters.emplace_back([&, s] {
      while (!stop.load(std::memory_order_relaxed)) {
        pool.ParallelFor(kN, [](size_t) {
          volatile double x = 1.0;
          for (int k = 0; k < 60; ++k) x = x * 1.0000001;
          (void)x;
        });
        items[s] += kN;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  stop.store(true);
  for (auto& t : submitters) t.join();
  const auto [mn, mx] = std::minmax_element(items.begin(), items.end());
  return *mn > 0 ? static_cast<double>(*mx) / static_cast<double>(*mn)
                 : std::numeric_limits<double>::infinity();
}

// ThreadSanitizer's instrumentation slows and reshuffles thread timing
// by ~10x, which turns this throughput-ratio assertion into a coin
// flip; the races in the pick path are covered by the rest of the
// suite, so the fairness property is only asserted uninstrumented.
#if defined(__SANITIZE_THREAD__)
#define PS3_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PS3_TSAN_BUILD 1
#endif
#endif

TEST(WorkerPoolFairness, EqualStreamsGetEqualServiceAtLowStreamCounts) {
#ifdef PS3_TSAN_BUILD
  GTEST_SKIP() << "throughput ratios are not meaningful under TSan timing";
#endif
  // Regression for the per-stream unfairness BENCH_PR5 exposed at 2
  // streams (110M vs 65M rows/sec — a ~1.7x spread): the shared pick
  // cursor was reset to the registry head on every job retirement, so
  // under submit/finish churn whichever stream re-registered into the
  // head slot was served first, round after round. Least-served-first
  // picking is self-correcting, so equal streams must finish equal work
  // in near-equal time. Best-of-rounds guards against one unlucky OS
  // scheduling burst; the pre-fix skew was systematic and survived every
  // round.
  for (size_t streams : {size_t{2}, size_t{4}}) {
    double best = std::numeric_limits<double>::infinity();
    for (int attempt = 0; attempt < 3 && best >= 1.5; ++attempt) {
      best = std::min(best, StreamSpread(streams, /*window_ms=*/150));
    }
    EXPECT_LT(best, 1.5) << streams << " streams";
  }
}

struct CountingScratch {
  CountingScratch() { created.fetch_add(1); }
  static std::atomic<int> created;
  std::vector<double> buf;
};
std::atomic<int> CountingScratch::created{0};

TEST(WorkerPool, LocalScratchPersistsAcrossParallelForCalls) {
  // The ROADMAP-noted defect in the fork-per-call pool: worker threads
  // died between ParallelFor calls, so their scratch was reconstructed on
  // every call (~lanes new objects per query). On a resident pool, each
  // lane constructs its scratch at most once, ever — so across many
  // rounds the total stays bounded by the lane count instead of growing
  // by ~lanes per round.
  constexpr int kLanes = 4;
  constexpr int kRounds = 10;
  runtime::WorkerPool pool(kLanes);
  const int before = CountingScratch::created.load();
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(256, [&](size_t) {
      CountingScratch& s = pool.LocalScratch<CountingScratch>();
      if (s.buf.empty()) s.buf.resize(1024);
      s.buf[0] += 1.0;
    });
  }
  const int delta = CountingScratch::created.load() - before;
  EXPECT_GE(delta, 1);
  EXPECT_LE(delta, kLanes);  // fork-per-call behavior would give ~kLanes*kRounds
}

TEST(WorkerPool, VectorScratchReusedAcrossQueriesOnSamePool) {
  // End-to-end version of the teardown fix: two (and more) vectorized
  // whole-table evaluations on one resident pool must not reconstruct the
  // per-lane VectorScratch (bitmaps + dense group-id table) per query.
  auto bundle = workload::MakeTpchStar(4000, /*seed=*/3);
  storage::PartitionedTable pt(bundle.table, 16);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};

  runtime::WorkerPool pool(4);
  query::ExecOptions opts;
  opts.policy = query::ExecPolicy::kVectorized;
  opts.num_threads = 4;
  opts.pool = &pool;

  const size_t before = query::VectorScratchCreatedForTesting();
  for (int round = 0; round < 6; ++round) {
    auto answers = query::EvaluateAllPartitions(q, pt, opts);
    ASSERT_EQ(answers.size(), 16u);
  }
  const size_t delta = query::VectorScratchCreatedForTesting() - before;
  // At most one scratch per lane for all six queries combined; the
  // fork-per-call pool would have built ~(lanes-1) fresh scratches per
  // query on worker threads.
  EXPECT_LE(delta, 4u);
}

}  // namespace
}  // namespace ps3
