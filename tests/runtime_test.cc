// Tests for the resident work-stealing WorkerPool: ParallelFor coverage
// and determinism, nested-call inlining, exception propagation, lazy lane
// growth, per-lane scratch that survives across ParallelFor calls instead
// of being torn down with forked workers — and the multi-job model:
// concurrent top-level callers admitted side by side with per-job lane
// caps and per-job failure isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "query/evaluator.h"
#include "runtime/worker_pool.h"
#include "workload/datasets.h"

namespace ps3 {
namespace {

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::WorkerPool pool(4);
  constexpr size_t kN = 1337;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ResultsIdenticalAcrossLaneCounts) {
  runtime::WorkerPool pool(8);
  constexpr size_t kN = 500;
  std::vector<double> out1(kN), out8(kN);
  pool.ParallelFor(kN, [&](size_t i) { out1[i] = 3.0 * i + 1.0; },
                   /*max_lanes=*/1);
  pool.ParallelFor(kN, [&](size_t i) { out8[i] = 3.0 * i + 1.0; },
                   /*max_lanes=*/8);
  EXPECT_EQ(out1, out8);
}

TEST(WorkerPool, NestedCallsRunInline) {
  runtime::WorkerPool pool(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    // A task fanning out on its own pool must not deadlock or explode.
    pool.ParallelFor(kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkerPool, ExceptionRethrownOnCaller) {
  runtime::WorkerPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<size_t> done{0};
  pool.ParallelFor(50, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 50u);
}

TEST(WorkerPool, GrowsToRequestedLanes) {
  runtime::WorkerPool pool(1);
  EXPECT_EQ(pool.num_lanes(), 1u);
  std::atomic<size_t> done{0};
  pool.ParallelFor(64, [&](size_t) { done.fetch_add(1); },
                   /*max_lanes=*/4);
  EXPECT_EQ(done.load(), 64u);
  EXPECT_EQ(pool.num_lanes(), 4u);
}

// ---------------------------------------------------------------------
// Concurrent multi-job admission: the one-job-at-a-time gate is gone, so
// several top-level ParallelFor callers share the resident lanes at chunk
// granularity. Every job must still cover exactly its own indices.

TEST(WorkerPoolConcurrent, ConcurrentJobsEachCoverTheirOwnIndices) {
  runtime::WorkerPool pool(8);
  constexpr size_t kJobs = 6;
  constexpr size_t kN = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kJobs);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> submitters;
  for (size_t j = 0; j < kJobs; ++j) {
    submitters.emplace_back([&, j] {
      for (int round = 0; round < 8; ++round) {
        pool.ParallelFor(kN, [&, j](size_t i) {
          hits[j][i].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (size_t j = 0; j < kJobs; ++j) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[j][i].load(), 8) << "job " << j << " index " << i;
    }
  }
}

TEST(WorkerPoolConcurrent, PerJobLaneCapHonoredWhileSiblingsRun) {
  runtime::WorkerPool pool(8);
  // A wide job keeps the lanes busy while a capped job runs; the capped
  // job must never have more than `max_lanes` lanes (submitter included)
  // inside its fn at once.
  constexpr int kCap = 2;
  std::atomic<int> capped_now{0};
  std::atomic<int> capped_peak{0};
  std::atomic<bool> wide_done{false};
  std::thread wide([&] {
    for (int round = 0; round < 20 && !wide_done.load(); ++round) {
      pool.ParallelFor(2048, [&](size_t) {
        volatile double x = 1.0;
        for (int k = 0; k < 50; ++k) x = x * 1.0000001;
        (void)x;
      });
    }
  });
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(
        512,
        [&](size_t) {
          int now = capped_now.fetch_add(1) + 1;
          int peak = capped_peak.load();
          while (now > peak && !capped_peak.compare_exchange_weak(peak, now)) {
          }
          volatile double x = 1.0;
          for (int k = 0; k < 50; ++k) x = x * 1.0000001;
          (void)x;
          capped_now.fetch_sub(1);
        },
        /*max_lanes=*/kCap);
  }
  wide_done.store(true);
  wide.join();
  EXPECT_GE(capped_peak.load(), 1);
  EXPECT_LE(capped_peak.load(), kCap);
}

TEST(WorkerPoolConcurrent, ExceptionFailsOnlyItsOwnJob) {
  runtime::WorkerPool pool(8);
  // One poisoned job per round among healthy siblings: the poison must be
  // rethrown on its own submitter only, the siblings' results must be
  // complete and correct, and the resident lanes must not wedge.
  constexpr size_t kGood = 4;
  constexpr size_t kN = 2048;
  constexpr int kRounds = 6;
  std::vector<std::vector<double>> out(kGood, std::vector<double>(kN));
  std::atomic<int> poison_caught{0};
  for (int round = 0; round < kRounds; ++round) {
    for (auto& o : out) std::fill(o.begin(), o.end(), 0.0);
    std::vector<std::thread> submitters;
    for (size_t j = 0; j < kGood; ++j) {
      submitters.emplace_back([&, j] {
        pool.ParallelFor(kN, [&, j](size_t i) {
          out[j][i] = static_cast<double>(j * kN + i);
        });
      });
    }
    submitters.emplace_back([&] {
      try {
        pool.ParallelFor(kN, [&](size_t i) {
          if (i == 1234) throw std::runtime_error("poisoned query");
        });
      } catch (const std::runtime_error&) {
        poison_caught.fetch_add(1);
      }
    });
    for (auto& t : submitters) t.join();
    for (size_t j = 0; j < kGood; ++j) {
      for (size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(out[j][i], static_cast<double>(j * kN + i))
            << "round " << round << " job " << j << " index " << i;
      }
    }
  }
  EXPECT_EQ(poison_caught.load(), kRounds);
  // Lanes stayed resident and serviceable.
  std::atomic<size_t> done{0};
  pool.ParallelFor(100, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 100u);
}

TEST(WorkerPoolConcurrent, ConcurrentFailuresDoNotCrossPollinate) {
  runtime::WorkerPool pool(4);
  // Every job throws a distinct type; each submitter must catch exactly
  // the type its own job threw.
  struct ErrA : std::runtime_error {
    ErrA() : std::runtime_error("A") {}
  };
  struct ErrB : std::runtime_error {
    ErrB() : std::runtime_error("B") {}
  };
  std::atomic<int> a_caught{0}, b_caught{0}, wrong{0};
  std::vector<std::thread> submitters;
  for (int r = 0; r < 4; ++r) {
    submitters.emplace_back([&] {
      try {
        pool.ParallelFor(512, [](size_t i) {
          if (i == 100) throw ErrA();
        });
      } catch (const ErrA&) {
        a_caught.fetch_add(1);
      } catch (...) {
        wrong.fetch_add(1);
      }
    });
    submitters.emplace_back([&] {
      try {
        pool.ParallelFor(512, [](size_t i) {
          if (i == 100) throw ErrB();
        });
      } catch (const ErrB&) {
        b_caught.fetch_add(1);
      } catch (...) {
        wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(a_caught.load(), 4);
  EXPECT_EQ(b_caught.load(), 4);
  EXPECT_EQ(wrong.load(), 0);
}

struct CountingScratch {
  CountingScratch() { created.fetch_add(1); }
  static std::atomic<int> created;
  std::vector<double> buf;
};
std::atomic<int> CountingScratch::created{0};

TEST(WorkerPool, LocalScratchPersistsAcrossParallelForCalls) {
  // The ROADMAP-noted defect in the fork-per-call pool: worker threads
  // died between ParallelFor calls, so their scratch was reconstructed on
  // every call (~lanes new objects per query). On a resident pool, each
  // lane constructs its scratch at most once, ever — so across many
  // rounds the total stays bounded by the lane count instead of growing
  // by ~lanes per round.
  constexpr int kLanes = 4;
  constexpr int kRounds = 10;
  runtime::WorkerPool pool(kLanes);
  const int before = CountingScratch::created.load();
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(256, [&](size_t) {
      CountingScratch& s = pool.LocalScratch<CountingScratch>();
      if (s.buf.empty()) s.buf.resize(1024);
      s.buf[0] += 1.0;
    });
  }
  const int delta = CountingScratch::created.load() - before;
  EXPECT_GE(delta, 1);
  EXPECT_LE(delta, kLanes);  // fork-per-call behavior would give ~kLanes*kRounds
}

TEST(WorkerPool, VectorScratchReusedAcrossQueriesOnSamePool) {
  // End-to-end version of the teardown fix: two (and more) vectorized
  // whole-table evaluations on one resident pool must not reconstruct the
  // per-lane VectorScratch (bitmaps + dense group-id table) per query.
  auto bundle = workload::MakeTpchStar(4000, /*seed=*/3);
  storage::PartitionedTable pt(bundle.table, 16);
  query::Query q;
  q.aggregates = {query::Aggregate::Count()};

  runtime::WorkerPool pool(4);
  query::ExecOptions opts;
  opts.policy = query::ExecPolicy::kVectorized;
  opts.num_threads = 4;
  opts.pool = &pool;

  const size_t before = query::VectorScratchCreatedForTesting();
  for (int round = 0; round < 6; ++round) {
    auto answers = query::EvaluateAllPartitions(q, pt, opts);
    ASSERT_EQ(answers.size(), 16u);
  }
  const size_t delta = query::VectorScratchCreatedForTesting() - before;
  // At most one scratch per lane for all six queries combined; the
  // fork-per-call pool would have built ~(lanes-1) fresh scratches per
  // query on worker threads.
  EXPECT_LE(delta, 4u);
}

}  // namespace
}  // namespace ps3
