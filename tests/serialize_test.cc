#include <gtest/gtest.h>

#include <cstdio>

#include "common/serialize.h"
#include "core/model_io.h"
#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "ml/gbdt.h"
#include "stats/stats_builder.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace ps3 {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BinaryRoundTrip, Primitives) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI32(-42);
  w.PutDouble(3.14159);
  w.PutString("hello");
  w.PutDoubleVector({1.5, -2.5});
  w.PutBoolVector({true, false, true});

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*r.GetI32(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetDoubleVector(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(*r.GetBoolVector(), (std::vector<bool>{true, false, true}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryRoundTrip, TruncatedInputErrors) {
  BinaryWriter w;
  w.PutU32(100);  // claims a 100-element vector with no payload
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetDoubleVector().ok());
  BinaryReader r2(std::vector<uint8_t>{1, 2});
  EXPECT_FALSE(r2.GetU64().ok());
}

TEST(BinaryRoundTrip, FileIo) {
  BinaryWriter w;
  w.PutString("persisted");
  std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(w.WriteFile(path).ok());
  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->GetString(), "persisted");
  std::remove(path.c_str());
  EXPECT_FALSE(BinaryReader::FromFile(path).ok());
}

TEST(GbdtSerialization, PredictionsSurviveRoundTrip) {
  // Train a small model on a synthetic signal.
  constexpr size_t kN = 800;
  std::vector<double> X(kN * 2), y(kN);
  RandomEngine rng(3);
  for (size_t i = 0; i < kN; ++i) {
    X[i * 2] = rng.NextDouble();
    X[i * 2 + 1] = rng.NextDouble();
    y[i] = 2.0 * X[i * 2] - X[i * 2 + 1];
  }
  auto binned = ml::BinnedDataset::Build({X.data(), kN, 2});
  ml::Gbdt model = ml::Gbdt::Train(binned, y, ml::GbdtParams{});

  BinaryWriter w;
  model.Serialize(&w);
  BinaryReader r(w.buffer());
  auto loaded = ml::Gbdt::Deserialize(&r);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_trees(), model.num_trees());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(loaded->Predict(X.data() + i * 2),
                     model.Predict(X.data() + i * 2));
  }
  EXPECT_EQ(loaded->feature_gain(), model.feature_gain());
}

struct ModelFixture {
  workload::DatasetBundle bundle = workload::MakeAria(6000, 2);
  std::shared_ptr<storage::Table> table;
  std::unique_ptr<storage::PartitionedTable> parts;
  std::unique_ptr<stats::TableStats> stats;
  std::unique_ptr<featurize::Featurizer> featurizer;
  core::PickerContext ctx;
  core::TrainingData data;
  core::Ps3Model model;

  ModelFixture() {
    auto sorted = bundle.table->SortedBy(bundle.default_sort);
    table = std::make_shared<storage::Table>(std::move(sorted).value());
    parts = std::make_unique<storage::PartitionedTable>(table, 30);
    stats::StatsOptions opts;
    for (const auto& name : bundle.spec.groupby_columns) {
      opts.grouping_columns.push_back(
          static_cast<size_t>(table->schema().FindColumn(name)));
    }
    stats = std::make_unique<stats::TableStats>(
        stats::StatsBuilder(opts).Build(*parts));
    featurizer = std::make_unique<featurize::Featurizer>(table->schema(),
                                                         stats.get());
    ctx = {parts.get(), stats.get(), featurizer.get()};
    workload::QueryGenerator gen(table.get(), bundle.spec);
    data = core::BuildTrainingData(ctx, gen.GenerateSet(10, 5));
    core::Ps3Options options;
    options.gbdt.num_trees = 5;
    options.feature_selection.enabled = false;
    options.unbiased_exemplar = false;
    model = core::TrainPs3(ctx, data, options);
  }
};

TEST(ModelIo, RoundTripPreservesPicks) {
  ModelFixture f;
  std::string path = TempPath("ps3_model.bin");
  ASSERT_TRUE(core::SaveModel(f.model, path).ok());
  auto loaded = core::LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->thresholds, f.model.thresholds);
  EXPECT_EQ(loaded->excluded_kinds, f.model.excluded_kinds);
  EXPECT_EQ(loaded->options.alpha, f.model.options.alpha);

  // Identical rng seeds must produce identical selections.
  core::Ps3Picker original(f.ctx, &f.model);
  core::Ps3Picker restored(f.ctx, &*loaded);
  for (size_t qi = 0; qi < f.data.queries.size(); ++qi) {
    RandomEngine rng_a(77), rng_b(77);
    auto sel_a = original.Pick(f.data.queries[qi], 6, &rng_a, nullptr);
    auto sel_b = restored.Pick(f.data.queries[qi], 6, &rng_b, nullptr);
    ASSERT_EQ(sel_a.parts.size(), sel_b.parts.size());
    for (size_t i = 0; i < sel_a.parts.size(); ++i) {
      EXPECT_EQ(sel_a.parts[i].partition, sel_b.parts[i].partition);
      EXPECT_DOUBLE_EQ(sel_a.parts[i].weight, sel_b.parts[i].weight);
    }
  }
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsGarbageAndWrongMagic) {
  std::string path = TempPath("bad_model.bin");
  BinaryWriter w;
  w.PutU32(0x12345678);  // wrong magic
  ASSERT_TRUE(w.WriteFile(path).ok());
  auto loaded = core::LoadModel(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  EXPECT_FALSE(core::LoadModel(path).ok());  // missing file
}

TEST(ModelIo, RejectsTruncatedModel) {
  ModelFixture f;
  std::string path = TempPath("trunc_model.bin");
  ASSERT_TRUE(core::SaveModel(f.model, path).ok());
  auto full = BinaryReader::FromFile(path);
  ASSERT_TRUE(full.ok());
  // Rewrite only a prefix of the file.
  BinaryWriter prefix;
  prefix.PutU32(0x50533301);
  prefix.PutDouble(2.0);
  ASSERT_TRUE(prefix.WriteFile(path).ok());
  EXPECT_FALSE(core::LoadModel(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ps3
