#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/binned.h"
#include "ml/gbdt.h"
#include "ml/tree.h"

namespace ps3::ml {
namespace {

/// y = 3 * x0 + noise; x1 is irrelevant noise.
struct Synthetic {
  std::vector<double> X;
  std::vector<double> y;
  size_t n, m = 2;

  explicit Synthetic(size_t rows, uint64_t seed = 5, double noise = 0.1) {
    n = rows;
    RandomEngine rng(seed);
    X.resize(n * m);
    y.resize(n);
    for (size_t i = 0; i < n; ++i) {
      double x0 = rng.NextDouble();
      double x1 = rng.NextDouble();
      X[i * m] = x0;
      X[i * m + 1] = x1;
      y[i] = 3.0 * x0 + noise * rng.NextGaussian();
    }
  }

  ConstMatrixView view() const { return {X.data(), n, m}; }
};

TEST(BinnedDataset, BinsAreOrdinal) {
  Synthetic data(2000);
  auto binned = BinnedDataset::Build(data.view(), 16);
  EXPECT_EQ(binned.num_rows(), 2000u);
  EXPECT_EQ(binned.num_features(), 2u);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_GE(binned.NumBins(j), 8u);
    EXPECT_LE(binned.NumBins(j), 16u);
  }
  // Bin of a value below every edge is 0; above every edge is max.
  EXPECT_EQ(binned.BinOf(0, -1.0), 0);
  EXPECT_EQ(binned.BinOf(0, 2.0), binned.NumBins(0) - 1);
}

TEST(BinnedDataset, BinMonotoneInValue) {
  Synthetic data(500);
  auto binned = BinnedDataset::Build(data.view(), 8);
  uint16_t prev = 0;
  for (double v = 0.0; v <= 1.0; v += 0.01) {
    uint16_t b = binned.BinOf(0, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BinnedDataset, ConstantFeatureHasOneBin) {
  std::vector<double> X(100, 7.0);
  auto binned = BinnedDataset::Build({X.data(), 100, 1}, 16);
  EXPECT_EQ(binned.NumBins(0), 1u);
}

TEST(BinnedDataset, BinsMatchRawValues) {
  Synthetic data(1000);
  auto binned = BinnedDataset::Build(data.view(), 16);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(binned.BinAt(i, 0), binned.BinOf(0, data.X[i * 2]));
  }
}

TEST(RegressionTree, FitsAStepFunction) {
  // y = 1 if x0 > 0.5 else 0: one split suffices.
  constexpr size_t kN = 1000;
  std::vector<double> X(kN), y(kN);
  RandomEngine rng(3);
  for (size_t i = 0; i < kN; ++i) {
    X[i] = rng.NextDouble();
    y[i] = X[i] > 0.5 ? 1.0 : 0.0;
  }
  auto binned = BinnedDataset::Build({X.data(), kN, 1}, 32);
  std::vector<double> grad(kN);
  for (size_t i = 0; i < kN; ++i) grad[i] = -y[i];  // pred 0 - y
  std::vector<uint32_t> rows(kN);
  for (size_t i = 0; i < kN; ++i) rows[i] = static_cast<uint32_t>(i);
  TreeParams params;
  params.max_depth = 2;
  RandomEngine tree_rng(1);
  auto tree = RegressionTree::Fit(binned, grad, rows, params, &tree_rng,
                                  nullptr);
  double row_lo = 0.2, row_hi = 0.8;
  EXPECT_NEAR(tree.Predict(&row_lo), 0.0, 0.1);
  EXPECT_NEAR(tree.Predict(&row_hi), 1.0, 0.1);
}

TEST(RegressionTree, RespectsMinSamplesLeaf) {
  constexpr size_t kN = 40;
  std::vector<double> X(kN), grad(kN);
  for (size_t i = 0; i < kN; ++i) {
    X[i] = static_cast<double>(i);
    grad[i] = i < 2 ? -100.0 : 0.0;
  }
  auto binned = BinnedDataset::Build({X.data(), kN, 1}, 32);
  std::vector<uint32_t> rows(kN);
  for (size_t i = 0; i < kN; ++i) rows[i] = static_cast<uint32_t>(i);
  TreeParams params;
  params.min_samples_leaf = 10;
  RandomEngine rng(1);
  auto tree = RegressionTree::Fit(binned, grad, rows, params, &rng, nullptr);
  // The best split (isolating 2 rows) is forbidden; whatever split exists
  // must keep >= 10 rows per side. We can't observe leaves directly, but
  // predictions at the extremes must not match the tiny-leaf value -10.
  double x = 0.0;
  EXPECT_GT(tree.Predict(&x), 5.0 * -1.0);  // -(sum grad)/(n+1) bounded
}

TEST(Gbdt, LearnsLinearSignal) {
  Synthetic train(4000, 11);
  auto binned = BinnedDataset::Build(train.view());
  GbdtParams params;
  params.num_trees = 40;
  params.learning_rate = 0.3;
  params.tree.max_depth = 3;
  Gbdt model = Gbdt::Train(binned, train.y, params);

  Synthetic test(500, 99);
  double mse = 0.0;
  for (size_t i = 0; i < test.n; ++i) {
    double pred = model.Predict(test.X.data() + i * 2);
    double err = pred - 3.0 * test.X[i * 2];
    mse += err * err;
  }
  mse /= static_cast<double>(test.n);
  // Variance of y is 0.75; a useful model should be far below that.
  EXPECT_LT(mse, 0.05);
}

TEST(Gbdt, ImportanceIdentifiesRelevantFeature) {
  Synthetic train(3000, 13);
  auto binned = BinnedDataset::Build(train.view());
  GbdtParams params;
  params.num_trees = 20;
  Gbdt model = Gbdt::Train(binned, train.y, params);
  const auto& gain = model.feature_gain();
  ASSERT_EQ(gain.size(), 2u);
  EXPECT_GT(gain[0], 0.9);  // x0 carries all the signal
  EXPECT_NEAR(gain[0] + gain[1], 1.0, 1e-9);
}

TEST(Gbdt, BaseScoreOnlyForConstantTarget) {
  std::vector<double> X(100);
  for (size_t i = 0; i < 100; ++i) X[i] = static_cast<double>(i);
  std::vector<double> y(100, 4.2);
  auto binned = BinnedDataset::Build({X.data(), 100, 1});
  Gbdt model = Gbdt::Train(binned, y, GbdtParams{});
  double x = 50.0;
  EXPECT_NEAR(model.Predict(&x), 4.2, 1e-6);
}

TEST(Gbdt, MoreTreesReduceTrainingError) {
  Synthetic train(2000, 17, /*noise=*/0.0);
  auto binned = BinnedDataset::Build(train.view());
  auto train_mse = [&](int trees) {
    GbdtParams params;
    params.num_trees = trees;
    Gbdt model = Gbdt::Train(binned, train.y, params);
    double mse = 0.0;
    for (size_t i = 0; i < train.n; ++i) {
      double err = model.Predict(train.X.data() + i * 2) - train.y[i];
      mse += err * err;
    }
    return mse / static_cast<double>(train.n);
  };
  EXPECT_LT(train_mse(30), train_mse(3));
}

TEST(Gbdt, DeterministicGivenSeed) {
  Synthetic train(1000, 19);
  auto binned = BinnedDataset::Build(train.view());
  GbdtParams params;
  params.tree.colsample = 0.5;
  params.subsample = 0.7;
  Gbdt a = Gbdt::Train(binned, train.y, params);
  Gbdt b = Gbdt::Train(binned, train.y, params);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.Predict(train.X.data() + i * 2),
                     b.Predict(train.X.data() + i * 2));
  }
}

TEST(Gbdt, PredictMatrixMatchesRowPredict) {
  Synthetic train(500, 23);
  auto binned = BinnedDataset::Build(train.view());
  Gbdt model = Gbdt::Train(binned, train.y, GbdtParams{});
  auto preds = model.PredictMatrix(train.view());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(preds[i], model.Predict(train.X.data() + i * 2));
  }
}

/// Parameterized sweep: the model should learn under a range of depths and
/// learning rates without blowing up.
class GbdtParamSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GbdtParamSweep, TrainsWithoutDivergence) {
  auto [depth, lr] = GetParam();
  Synthetic train(1500, 29);
  auto binned = BinnedDataset::Build(train.view());
  GbdtParams params;
  params.tree.max_depth = depth;
  params.learning_rate = lr;
  params.num_trees = 25;
  Gbdt model = Gbdt::Train(binned, train.y, params);
  double mse = 0.0;
  for (size_t i = 0; i < train.n; ++i) {
    double err = model.Predict(train.X.data() + i * 2) - train.y[i];
    mse += err * err;
  }
  mse /= static_cast<double>(train.n);
  EXPECT_LT(mse, 0.75);  // strictly better than predicting the mean
}

INSTANTIATE_TEST_SUITE_P(
    DepthAndRate, GbdtParamSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(0.05, 0.2, 0.5)));

}  // namespace
}  // namespace ps3::ml
