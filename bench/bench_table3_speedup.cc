// Table 3: query latency and total compute speedups when reading 1%, 5%
// and 10% of the TPC-H* partitions, regenerated with the cluster cost
// model (see eval/cost_model.h for the substitution rationale).
#include "eval/cost_model.h"
#include "eval/report.h"

int main() {
  using namespace ps3::eval;
  ClusterModel model;  // TPC-H* sf=1000 scale: 2844 partitions
  CostEstimate full = SimulateRead(model, 1.0);

  Report report("Table 3 — speedups on TPC-H* (cost model)");
  report.SetHeader({"fraction read", "query latency", "total compute"});
  for (double f : {0.01, 0.05, 0.10}) {
    CostEstimate est = SimulateRead(model, f);
    report.AddRow({Pct(f, 0), Num(full.latency_s / est.latency_s, 1) + "x",
                   Num(full.compute_s / est.compute_s, 1) + "x"});
  }
  report.AddRow({"100%", "1.0x", "1.0x"});
  report.Print();
  return 0;
}
