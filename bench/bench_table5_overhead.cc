// Table 5: single-thread partition-picker latency (total and clustering
// portion) per dataset, averaged across sampling budgets and test queries.
// Uses google-benchmark for the timing loop of one representative pick,
// plus a Report with the Table 5 style mean +/- spread across budgets.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.h"

namespace ps3::bench {
namespace {

struct Timings {
  double total_mean = 0.0, total_spread = 0.0;
  double cluster_mean = 0.0, cluster_spread = 0.0;
};

Timings MeasureDataset(const std::string& dataset) {
  auto cfg = BenchConfig(dataset, 40000, 200);
  cfg.train_queries = 32;
  cfg.test_queries = 12;
  cfg.ps3.feature_selection.enabled = false;  // latency, not accuracy
  eval::Experiment exp(cfg);
  exp.TrainModels();
  auto ps3 = exp.MakePs3();

  std::vector<double> totals, clusters;
  for (double b : {0.02, 0.05, 0.1, 0.2}) {
    double total = 0.0, cluster = 0.0;
    size_t n = 0;
    size_t budget = exp.BudgetFromFraction(b);
    for (const auto& t : exp.tests()) {
      RandomEngine rng(4242);
      core::PickTelemetry telemetry;
      ps3->Pick(t.query, budget, &rng, &telemetry);
      total += telemetry.total_ms;
      cluster += telemetry.clustering_ms;
      ++n;
    }
    totals.push_back(total / double(n));
    clusters.push_back(cluster / double(n));
  }
  auto mean_spread = [](const std::vector<double>& v) {
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= double(v.size());
    double lo = v[0], hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return std::make_pair(mean, (hi - lo) / 2.0);
  };
  Timings t;
  std::tie(t.total_mean, t.total_spread) = mean_spread(totals);
  std::tie(t.cluster_mean, t.cluster_spread) = mean_spread(clusters);
  return t;
}

}  // namespace
}  // namespace ps3::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  using namespace ps3;
  eval::Report report(
      "Table 5 — picker overhead per dataset (ms, mean +/- spread across "
      "budgets)");
  report.SetHeader({"dataset", "total", "clustering"});
  for (const char* dataset : {"aria", "kdd", "tpcds", "tpch"}) {
    auto t = bench::MeasureDataset(dataset);
    report.AddRow({dataset,
                   eval::Num(t.total_mean, 1) + " +/- " +
                       eval::Num(t.total_spread, 1),
                   eval::Num(t.cluster_mean, 1) + " +/- " +
                       eval::Num(t.cluster_spread, 1)});
  }
  report.Print();
  return 0;
}
