// Table 4: per-partition storage overhead of the summary statistics (KB)
// split by sketch family, for each dataset.
#include "bench_common.h"

int main() {
  using namespace ps3;
  eval::Report report("Table 4 — per-partition statistics storage (KB)");
  report.SetHeader({"dataset", "total", "histogram", "hh", "akmv",
                    "measure"});
  for (const char* dataset : {"tpch", "tpcds", "aria", "kdd"}) {
    auto cfg = bench::BenchConfig(dataset);
    cfg.build_workload = false;  // statistics only
    eval::Experiment exp(cfg);
    auto r = exp.stats().ComputeStorageReport();
    report.AddRow({dataset, eval::Num(r.total_kb, 2),
                   eval::Num(r.histogram_kb, 2),
                   eval::Num(r.heavy_hitter_kb, 2),
                   eval::Num(r.akmv_kb, 2), eval::Num(r.measure_kb, 2)});
  }
  report.Print();
  return 0;
}
