// Appendix D.2: partition-level vs row-level sampling variance. Validates
// Eq. 3-5 empirically: under the same sampling fraction p, the
// Horvitz-Thompson SUM estimator over partition samples has strictly
// larger variance than over row samples whenever rows within a partition
// are positively correlated, with the gap given by the cross terms of
// Eq. 5. Uses a clustered layout (correlated partitions) and a shuffled
// one (where the two variances nearly coincide).
#include <cmath>

#include "common/random.h"
#include "eval/report.h"

namespace {

using ps3::RandomEngine;

struct VarianceResult {
  double row_level;
  double partition_level;
};

/// Empirical estimator variance over `trials` Bernoulli(p) samples.
VarianceResult Simulate(const std::vector<std::vector<double>>& partitions,
                        double p, int trials, uint64_t seed) {
  RandomEngine rng(seed);
  double truth = 0.0;
  for (const auto& part : partitions) {
    for (double v : part) truth += v;
  }
  double row_m2 = 0.0, blk_m2 = 0.0;
  for (int t = 0; t < trials; ++t) {
    double row_est = 0.0, blk_est = 0.0;
    for (const auto& part : partitions) {
      if (rng.NextBool(p)) {
        double part_sum = 0.0;
        for (double v : part) part_sum += v;
        blk_est += part_sum / p;
      }
      for (double v : part) {
        if (rng.NextBool(p)) row_est += v / p;
      }
    }
    row_m2 += (row_est - truth) * (row_est - truth);
    blk_m2 += (blk_est - truth) * (blk_est - truth);
  }
  return {row_m2 / trials, blk_m2 / trials};
}

/// Analytical variance of the HT estimator under Bernoulli(p) sampling of
/// the given units (rows or whole partitions): sum (1-p)/p * y_i^2.
double Analytic(const std::vector<double>& unit_sums, double p) {
  double var = 0.0;
  for (double y : unit_sums) var += (1.0 - p) / p * y * y;
  return var;
}

}  // namespace

int main() {
  using namespace ps3::eval;
  RandomEngine rng(7);
  constexpr size_t kParts = 100, kRows = 50;
  // Clustered layout: each partition has its own mean, so rows within a
  // partition are correlated (the Eq. 5 cross terms are positive).
  std::vector<std::vector<double>> clustered(kParts);
  std::vector<double> all_rows;
  for (size_t i = 0; i < kParts; ++i) {
    double mu = 1.0 + static_cast<double>(i % 10);
    for (size_t r = 0; r < kRows; ++r) {
      double v = mu + 0.2 * rng.NextGaussian();
      clustered[i].push_back(v);
      all_rows.push_back(v);
    }
  }
  // Shuffled layout: same multiset of rows, random assignment.
  ps3::Shuffle(&all_rows, &rng);
  std::vector<std::vector<double>> shuffled(kParts);
  for (size_t i = 0; i < all_rows.size(); ++i) {
    shuffled[i / kRows].push_back(all_rows[i]);
  }

  Report report("Appendix D — SUM estimator variance, row vs partition "
                "sampling (empirical, 4000 trials)");
  report.SetHeader({"layout", "p", "row-level var", "partition-level var",
                    "ratio"});
  for (double p : {0.05, 0.1, 0.2}) {
    for (const auto& [name, data] :
         std::vector<std::pair<std::string,
                               const std::vector<std::vector<double>>*>>{
             {"clustered", &clustered}, {"shuffled", &shuffled}}) {
      auto v = Simulate(*data, p, 4000, 42);
      report.AddRow({name, Num(p, 2), Num(v.row_level, 0),
                     Num(v.partition_level, 0),
                     Num(v.partition_level / v.row_level, 1) + "x"});
    }
  }
  report.Print();

  // Analytical check (Eq. 3 vs Eq. 4) for the clustered layout.
  Report analytic("Appendix D — analytical HT variance (Eq. 3 / Eq. 4), "
                  "clustered layout");
  analytic.SetHeader({"p", "row-level (Eq. 4)", "partition-level (Eq. 3)"});
  std::vector<double> part_sums;
  std::vector<double> row_vals;
  for (const auto& part : clustered) {
    double s = 0.0;
    for (double v : part) {
      s += v;
      row_vals.push_back(v);
    }
    part_sums.push_back(s);
  }
  for (double p : {0.05, 0.1, 0.2}) {
    analytic.AddRow({Num(p, 2), Num(Analytic(row_vals, p), 0),
                     Num(Analytic(part_sums, p), 0)});
  }
  analytic.Print();
  return 0;
}
