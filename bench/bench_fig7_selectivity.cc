// Figure 7: error breakdown by true query selectivity on TPC-H*. PS3's
// filter dominates for selective queries; the learned components help most
// for non-selective ones.
#include <memory>

#include "bench_common.h"

int main() {
  using namespace ps3;
  auto cfg = bench::BenchConfig("tpch");
  cfg.test_queries = 48;  // more tests so each selectivity bucket is filled
  eval::Experiment exp(cfg);
  exp.TrainModels();

  struct Bucket {
    double lo, hi;
    std::vector<size_t> tests;
  };
  std::vector<Bucket> buckets = {{0.0, 0.2, {}},
                                 {0.2, 0.5, {}},
                                 {0.5, 0.8, {}},
                                 {0.8, 1.01, {}}};
  for (size_t i = 0; i < exp.tests().size(); ++i) {
    double s = exp.tests()[i].true_selectivity;
    for (auto& b : buckets) {
      if (s >= b.lo && s < b.hi) b.tests.push_back(i);
    }
  }

  std::vector<std::pair<std::string, std::unique_ptr<core::PartitionPicker>>>
      methods;
  methods.emplace_back("random", exp.MakeRandom());
  methods.emplace_back("random+filter", exp.MakeRandomFilter());
  methods.emplace_back("ps3", exp.MakePs3());

  for (double budget : {0.05, 0.2}) {
    eval::Report report("Figure 7 — TPC-H* error by query selectivity at " +
                        eval::Pct(budget, 0) + " budget (avg_rel_err)");
    report.SetHeader({"selectivity", "#queries", "random", "random+filter",
                      "ps3"});
    for (const auto& b : buckets) {
      std::vector<std::string> cells{
          "[" + eval::Num(b.lo, 1) + "," + eval::Num(b.hi, 1) + ")",
          std::to_string(b.tests.size())};
      for (const auto& [name, picker] : methods) {
        if (b.tests.empty()) {
          cells.push_back("-");
          continue;
        }
        query::ErrorMetrics acc;
        for (size_t ti : b.tests) {
          acc += exp.EvaluateQuery(*picker, exp.tests()[ti], budget,
                                   name == "ps3" ? 1 : bench::kRuns);
        }
        acc /= static_cast<double>(b.tests.size());
        cells.push_back(eval::Num(acc.avg_rel_error));
      }
      report.AddRow(cells);
    }
    report.Print();
  }
  return 0;
}
