// Figure 8: TPC-H* (sf=1 analog) under a random layout, and the effect of
// the partition count (1k vs 10k in the paper; scaled here) on the default
// l_shipdate layout.
#include <memory>

#include "bench_common.h"

namespace ps3::bench {
namespace {

void Run(const std::string& title, const std::vector<std::string>& layout,
         size_t partitions) {
  auto cfg = BenchConfig("tpch", 48000, partitions);
  cfg.layout = layout;
  cfg.train_queries = 48;
  cfg.test_queries = 20;
  eval::Experiment exp(cfg);
  exp.TrainModels();

  eval::Report report(title + " (avg_rel_err)");
  std::vector<std::string> header{"method"};
  for (double b : BenchBudgets()) header.push_back(eval::Pct(b, 0));
  report.SetHeader(header);
  auto rf = exp.MakeRandomFilter();
  auto ps3 = exp.MakePs3();
  for (const auto& [name, picker] :
       std::vector<std::pair<std::string, core::PartitionPicker*>>{
           {"random+filter", rf.get()}, {"ps3", ps3.get()}}) {
    std::vector<std::string> cells{name};
    for (double b : BenchBudgets()) {
      int runs = name == "ps3" ? 1 : kRuns;
      cells.push_back(
          eval::Num(exp.Evaluate(*picker, b, runs).avg_rel_error));
    }
    report.AddRow(cells);
  }
  report.Print();
}

}  // namespace
}  // namespace ps3::bench

int main() {
  // Paper: random layout (1k parts), l_shipdate layout at 1k and 10k
  // partitions; here 150 and 600 partitions at simulator scale.
  ps3::bench::Run("Figure 8 — random layout, 150 parts",
                  {"__random__"}, 150);
  ps3::bench::Run("Figure 8 — l_shipdate layout, 150 parts",
                  {"l_shipdate"}, 150);
  ps3::bench::Run("Figure 8 — l_shipdate layout, 600 parts",
                  {"l_shipdate"}, 600);
  return 0;
}
