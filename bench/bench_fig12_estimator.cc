// Figure 12 (Appendix D): biased (closest-to-median exemplar) versus
// unbiased (random exemplar) cluster estimators across the four datasets.
// The biased estimator should win at small sampling fractions and converge
// with the unbiased one at larger ones.
#include <memory>

#include "bench_common.h"

int main() {
  using namespace ps3;
  for (const char* dataset : {"tpch", "tpcds", "aria", "kdd"}) {
    auto cfg = bench::BenchConfig(dataset, 40000, 200);
    cfg.train_queries = 40;
    cfg.test_queries = 16;
    eval::Experiment exp(cfg);
    exp.TrainModels();

    core::Ps3Model biased = exp.ps3_model();
    biased.options.unbiased_exemplar = false;
    core::Ps3Model unbiased = exp.ps3_model();
    unbiased.options.unbiased_exemplar = true;

    eval::Report report(std::string("Figure 12 — ") + dataset +
                        " biased vs unbiased exemplar (avg_rel_err)");
    std::vector<std::string> header{"estimator"};
    for (double b : bench::BenchBudgets()) header.push_back(eval::Pct(b, 0));
    report.SetHeader(header);
    for (const auto& [name, model] :
         std::vector<std::pair<std::string, const core::Ps3Model*>>{
             {"biased (median)", &biased},
             {"unbiased (random)", &unbiased}}) {
      auto picker = exp.MakePs3With(model);
      // The unbiased estimator is averaged over repetitions as in the
      // appendix (10 runs there, fewer here).
      int runs = name.front() == 'u' ? 3 : 1;
      std::vector<std::string> cells{name};
      for (double b : bench::BenchBudgets()) {
        cells.push_back(
            eval::Num(exp.Evaluate(*picker, b, runs).avg_rel_error));
      }
      report.AddRow(cells);
    }
    report.Print();
  }
  return 0;
}
