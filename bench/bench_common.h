// Shared configuration for the reproduction benches. Every bench binary
// regenerates one table or figure of the paper at simulator scale; set
// PS3_FAST=1 (or PS3_ROWS / PS3_PARTS / PS3_TRAINQ / PS3_TESTQ) to shrink.
#ifndef PS3_BENCH_BENCH_COMMON_H_
#define PS3_BENCH_BENCH_COMMON_H_

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/report.h"
#include "io/partition_file.h"

namespace ps3::bench {

/// Strict parse of one unsigned decimal item from an env value. Anything
/// that isn't a plain in-range number — sign, empty item, trailing junk,
/// overflow, or a value below `min_value` — aborts with an error naming
/// the variable: a typo in a swept dimension must never silently fall
/// back to defaults, or the bench JSON trajectory gets compared against
/// mislabeled coverage.
inline size_t ParseEnvSizeItem(const char* name, const std::string& item,
                               size_t min_value) {
  auto die = [&](const char* why) {
    std::fprintf(stderr, "%s: %s in \"%s\"\n", name, why, item.c_str());
    std::abort();
  };
  if (item.empty()) die("empty value");
  for (char c : item) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      die("malformed value (digits only)");
    }
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long x = std::strtoull(item.c_str(), &end, 10);
  if (errno == ERANGE || x > static_cast<unsigned long long>(SIZE_MAX)) {
    die("value out of range");
  }
  if (x < min_value) {
    die(min_value == 1 ? "value must be >= 1" : "value below minimum");
  }
  return static_cast<size_t>(x);
}

/// Parses a comma-separated list env var ("1,4,8") into sizes; returns
/// `fallback` only when the variable is unset or empty. Shared by the
/// perf benches so CI runners and laptops can pin comparable JSON
/// dimensions. Malformed input (including zero entries and stray commas)
/// aborts with a clear error instead of silently shrinking the sweep.
inline std::vector<size_t> EnvSizeList(const char* name,
                                       std::vector<size_t> fallback,
                                       size_t min_value = 1) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<size_t> out;
  std::string item;
  for (const char* p = v;; ++p) {
    if (*p == ',' || *p == '\0') {
      out.push_back(ParseEnvSizeItem(name, item, min_value));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

/// Strict scalar env size ("PS3_ROWS=50000"); `fallback` only when unset
/// or empty, abort on malformed input.
inline size_t EnvSizeScalar(const char* name, size_t fallback,
                            size_t min_value = 1) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return ParseEnvSizeItem(name, v, min_value);
}

/// Worker-lane counts exercised by the throughput benches (PS3_THREADS).
inline std::vector<size_t> BenchThreadCounts() {
  return EnvSizeList("PS3_THREADS", {1, 4, 8});
}

/// Shard counts exercised by the sharded fan-out benches (PS3_SHARDS).
inline std::vector<size_t> BenchShardCounts() {
  return EnvSizeList("PS3_SHARDS", {1, 4, 8});
}

/// Concurrent query-stream counts exercised by the scheduler benches
/// (PS3_STREAMS). Each stream is a closed-loop submitter pushing its
/// share of the query set through a QueryScheduler on the shared pool.
inline std::vector<size_t> BenchStreamCounts() {
  return EnvSizeList("PS3_STREAMS", {1, 2, 4});
}

/// Stream counts for the multi-tenant class bench (PS3_CLASSES). Each
/// count n is one closed-loop *interactive* stream (with think time)
/// racing n-1 closed-loop *batch* streams through one QueryScheduler;
/// counts below 2 are clamped to 2 (the smallest mixed-class shape).
inline std::vector<size_t> BenchClassStreamCounts() {
  return EnvSizeList("PS3_CLASSES", {9, 16, 64});
}

/// Queries the interactive stream completes per class-bench mode
/// (PS3_CLASSQ) — the latency sample count behind the p50/p99.
inline size_t BenchClassQuota() { return EnvSizeScalar("PS3_CLASSQ", 32); }

/// Interactive think time in microseconds between queries
/// (PS3_CLASS_THINK_US). An interactive tenant is bursty by definition —
/// think time is what distinguishes it from one more batch stream, and
/// its duty cycle bounds how much batch throughput the class weighting
/// may cost.
inline size_t BenchClassThinkUs() {
  return EnvSizeScalar("PS3_CLASS_THINK_US", 30000, /*min_value=*/0);
}

/// Worker lanes per query in the class bench (PS3_CLASS_THREADS).
inline size_t BenchClassThreads() {
  return EnvSizeScalar("PS3_CLASS_THREADS", 16);
}

/// Spill-time segment encodings exercised by the out-of-core benches
/// (PS3_ENCODING, comma-separated "raw" / "bitpack" / "for_delta" /
/// "auto"). Like every swept dimension, unknown names abort instead of
/// silently shrinking the sweep.
inline std::vector<io::EncodingMode> BenchEncodingModes() {
  const char* v = std::getenv("PS3_ENCODING");
  if (v == nullptr || *v == '\0') {
    return {io::EncodingMode::kRaw, io::EncodingMode::kBitpack,
            io::EncodingMode::kForDelta, io::EncodingMode::kAuto};
  }
  std::vector<io::EncodingMode> out;
  std::string item;
  for (const char* p = v;; ++p) {
    if (*p == ',' || *p == '\0') {
      auto mode = io::ParseEncodingMode(item);
      if (!mode.ok()) {
        std::fprintf(stderr, "PS3_ENCODING: %s\n",
                     mode.status().message().c_str());
        std::abort();
      }
      out.push_back(*mode);
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

/// Strict parse of one sampling fraction: a plain decimal in (0, 1] —
/// digits and at most one '.', nothing else. Signs, exponents, inf/nan
/// spellings, empty items, 0, and values above 1 all abort: a malformed
/// fraction must never silently run a different sampling sweep (and a
/// NaN fraction can never reach the picker budget math).
inline double ParseEnvFractionItem(const char* name, const std::string& item,
                                   bool allow_zero = false) {
  auto die = [&](const char* why) {
    std::fprintf(stderr, "%s: %s in \"%s\"\n", name, why, item.c_str());
    std::abort();
  };
  if (item.empty()) die("empty value");
  bool saw_digit = false;
  bool saw_dot = false;
  for (char c : item) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      saw_digit = true;
    } else if (c == '.') {
      if (saw_dot) die("malformed value (multiple '.')");
      saw_dot = true;
    } else {
      die("malformed value (digits and one '.' only)");
    }
  }
  if (!saw_digit) die("malformed value (no digits)");
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(item.c_str(), &end);
  if (errno == ERANGE || end != item.c_str() + item.size()) {
    die("value out of range");
  }
  // The grammar above already excludes nan/inf/negatives; this is the
  // range contract: fractions are a share of the partition count (rates,
  // which sweep "no faults" as a legitimate point, also admit 0).
  if (!allow_zero && !(x > 0.0)) die("value must be > 0");
  if (x > 1.0) die("value must be <= 1");
  return x;
}

/// Comma-separated sampling fractions ("0.05,0.1,0.25"); `fallback` only
/// when unset or empty, abort on anything malformed. `allow_zero` admits
/// 0 entries (probability-rate sweeps); fractions reject them.
inline std::vector<double> EnvFractionList(const char* name,
                                           std::vector<double> fallback,
                                           bool allow_zero = false) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<double> out;
  std::string item;
  for (const char* p = v;; ++p) {
    if (*p == ',' || *p == '\0') {
      out.push_back(ParseEnvFractionItem(name, item, allow_zero));
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

/// Sampling fractions exercised by the approximate-serving bench
/// (PS3_FRACTIONS). Each fraction caps the picker budget at
/// ceil(fraction * partitions).
inline std::vector<double> BenchPickerFractions() {
  return EnvFractionList("PS3_FRACTIONS", {0.05, 0.1, 0.25});
}

/// Pickers exercised by the approximate-serving bench (PS3_PICKERS,
/// comma-separated from {"exact", "random", "ps3"}). Unknown names abort,
/// like every swept dimension.
inline std::vector<std::string> BenchPickerModes() {
  const char* v = std::getenv("PS3_PICKERS");
  if (v == nullptr || *v == '\0') return {"exact", "random", "ps3"};
  std::vector<std::string> out;
  std::string item;
  for (const char* p = v;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (item != "exact" && item != "random" && item != "ps3") {
        std::fprintf(stderr,
                     "PS3_PICKERS: unknown picker \"%s\" "
                     "(expected exact, random, or ps3)\n",
                     item.c_str());
        std::abort();
      }
      out.push_back(item);
      item.clear();
      if (*p == '\0') break;
    } else {
      item.push_back(*p);
    }
  }
  return out;
}

/// Injected fault rates swept by the fault-tolerance bench
/// (PS3_FAULT_RATE, comma-separated, 0 legal — the fault-free baseline
/// is a swept point). Each rate drives both the transient-error and the
/// latency-spike probability of the store's FaultInjector.
inline std::vector<double> BenchFaultRates() {
  return EnvFractionList("PS3_FAULT_RATE", {0.0, 0.01, 0.05},
                         /*allow_zero=*/true);
}

/// Fault-plan seed (PS3_FAULT_SEED). Same seed + same rates => the
/// identical injected fault sequence, so two bench runs are comparable
/// failure-for-failure.
inline uint64_t BenchFaultSeed() {
  return static_cast<uint64_t>(
      EnvSizeScalar("PS3_FAULT_SEED", 42, /*min_value=*/0));
}

/// Retry attempt counts swept by the fault-tolerance bench (PS3_RETRY,
/// comma-separated total attempts per load step; 1 = retries off).
inline std::vector<size_t> BenchRetryAttempts() {
  return EnvSizeList("PS3_RETRY", {1, 3});
}

/// Hedge delays in milliseconds swept by the fault-tolerance bench
/// (PS3_HEDGE_MS, comma-separated; 0 = hedging off).
inline std::vector<size_t> BenchHedgeDelaysMs() {
  return EnvSizeList("PS3_HEDGE_MS", {0, 2}, /*min_value=*/0);
}

/// Default bench scale: 100k rows over 400 partitions (the paper's 1000
/// partitions scaled to this simulator), 96 training / 40 test queries.
inline eval::ExperimentConfig BenchConfig(const std::string& dataset,
                                          size_t rows = 100000,
                                          size_t partitions = 400) {
  eval::ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.rows = rows;
  cfg.partitions = partitions;
  cfg.train_queries = 96;
  cfg.test_queries = 40;
  cfg.ps3.feature_selection.restarts = 1;
  cfg.ps3.feature_selection.eval_queries = 5;
  cfg.lss.eval_queries = 5;
  cfg.ApplyEnvOverrides();
  return cfg;
}

/// Budget grid used by the error-curve figures.
inline std::vector<double> BenchBudgets() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6};
}

/// Runs per stochastic method (the paper averages 10; scaled down).
inline constexpr int kRuns = 3;

}  // namespace ps3::bench

#endif  // PS3_BENCH_BENCH_COMMON_H_
