// Shared configuration for the reproduction benches. Every bench binary
// regenerates one table or figure of the paper at simulator scale; set
// PS3_FAST=1 (or PS3_ROWS / PS3_PARTS / PS3_TRAINQ / PS3_TESTQ) to shrink.
#ifndef PS3_BENCH_BENCH_COMMON_H_
#define PS3_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/report.h"

namespace ps3::bench {

/// Default bench scale: 100k rows over 400 partitions (the paper's 1000
/// partitions scaled to this simulator), 96 training / 40 test queries.
inline eval::ExperimentConfig BenchConfig(const std::string& dataset,
                                          size_t rows = 100000,
                                          size_t partitions = 400) {
  eval::ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.rows = rows;
  cfg.partitions = partitions;
  cfg.train_queries = 96;
  cfg.test_queries = 40;
  cfg.ps3.feature_selection.restarts = 1;
  cfg.ps3.feature_selection.eval_queries = 5;
  cfg.lss.eval_queries = 5;
  cfg.ApplyEnvOverrides();
  return cfg;
}

/// Budget grid used by the error-curve figures.
inline std::vector<double> BenchBudgets() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6};
}

/// Runs per stochastic method (the paper averages 10; scaled down).
inline constexpr int kRuns = 3;

}  // namespace ps3::bench

#endif  // PS3_BENCH_BENCH_COMMON_H_
