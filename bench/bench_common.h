// Shared configuration for the reproduction benches. Every bench binary
// regenerates one table or figure of the paper at simulator scale; set
// PS3_FAST=1 (or PS3_ROWS / PS3_PARTS / PS3_TRAINQ / PS3_TESTQ) to shrink.
#ifndef PS3_BENCH_BENCH_COMMON_H_
#define PS3_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "eval/report.h"

namespace ps3::bench {

/// Parses a comma-separated list env var ("1,4,8") into sizes; returns
/// `fallback` when unset or empty. Shared by the perf benches so CI
/// runners and laptops can pin comparable JSON dimensions.
inline std::vector<size_t> EnvSizeList(const char* name,
                                       std::vector<size_t> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<size_t> out;
  const char* p = v;
  while (*p != '\0') {
    // strtoull would silently wrap a leading '-' to a huge value; treat
    // negatives as unparsable so the guard below rejects them.
    if (*p == '-') break;
    char* end = nullptr;
    unsigned long long x = std::strtoull(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<size_t>(x));
    p = *end == ',' ? end + 1 : end;
  }
  if (*p != '\0') {
    // A typo must not silently shrink the swept dimension set — the JSON
    // trajectory would be compared against mislabeled coverage.
    std::fprintf(stderr, "%s: unparsable suffix \"%s\" in \"%s\"\n", name, p,
                 v);
    std::abort();
  }
  return out.empty() ? fallback : out;
}

/// Worker-lane counts exercised by the throughput benches (PS3_THREADS).
inline std::vector<size_t> BenchThreadCounts() {
  return EnvSizeList("PS3_THREADS", {1, 4, 8});
}

/// Shard counts exercised by the sharded fan-out benches (PS3_SHARDS).
inline std::vector<size_t> BenchShardCounts() {
  return EnvSizeList("PS3_SHARDS", {1, 4, 8});
}

/// Concurrent query-stream counts exercised by the scheduler benches
/// (PS3_STREAMS). Each stream is a closed-loop submitter pushing its
/// share of the query set through a QueryScheduler on the shared pool.
inline std::vector<size_t> BenchStreamCounts() {
  return EnvSizeList("PS3_STREAMS", {1, 2, 4});
}

/// Default bench scale: 100k rows over 400 partitions (the paper's 1000
/// partitions scaled to this simulator), 96 training / 40 test queries.
inline eval::ExperimentConfig BenchConfig(const std::string& dataset,
                                          size_t rows = 100000,
                                          size_t partitions = 400) {
  eval::ExperimentConfig cfg;
  cfg.dataset = dataset;
  cfg.rows = rows;
  cfg.partitions = partitions;
  cfg.train_queries = 96;
  cfg.test_queries = 40;
  cfg.ps3.feature_selection.restarts = 1;
  cfg.ps3.feature_selection.eval_queries = 5;
  cfg.lss.eval_queries = 5;
  cfg.ApplyEnvOverrides();
  return cfg;
}

/// Budget grid used by the error-curve figures.
inline std::vector<double> BenchBudgets() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6};
}

/// Runs per stochastic method (the paper averages 10; scaled down).
inline constexpr int kRuns = 3;

}  // namespace ps3::bench

#endif  // PS3_BENCH_BENCH_COMMON_H_
