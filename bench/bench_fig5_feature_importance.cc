// Figure 5: regressor feature importance (gain) aggregated by sketch
// family, per dataset. The paper reports the share of total gain each
// family contributes across the k funnel regressors.
#include "bench_common.h"

int main() {
  using namespace ps3;
  eval::Report report("Figure 5 — regressor feature importance by family "
                      "(% of total gain)");
  report.SetHeader({"dataset", "selectivity", "hh", "dv", "measure"});
  for (const char* dataset : {"tpch", "tpcds", "aria", "kdd"}) {
    auto cfg = bench::BenchConfig(dataset);
    cfg.test_queries = 4;  // only training is needed here
    cfg.ps3.feature_selection.enabled = false;
    eval::Experiment exp(cfg);
    exp.TrainModels();
    const auto& imp = exp.ps3_model().category_importance;
    auto pct = [&](featurize::FeatureCategory cat) {
      return eval::Pct(imp[static_cast<size_t>(cat)], 1);
    };
    report.AddRow({dataset, pct(featurize::FeatureCategory::kSelectivity),
                   pct(featurize::FeatureCategory::kHeavyHitter),
                   pct(featurize::FeatureCategory::kDistinctValue),
                   pct(featurize::FeatureCategory::kMeasure)});
  }
  report.Print();
  return 0;
}
