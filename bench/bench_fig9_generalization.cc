// Figures 9 and 11: generalization to unseen TPC-H template queries. PS3
// is trained on the random workload of §5.1.2 and tested on instantiations
// of the 11 supported TPC-H query templates; the bench prints the
// per-template error grid (Figure 11) plus the average/best/worst summary
// (Figure 9).
#include <limits>
#include <memory>

#include "bench_common.h"
#include "workload/tpch_queries.h"

int main() {
  using namespace ps3;
  auto cfg = bench::BenchConfig("tpch");
  cfg.test_queries = 4;  // replaced by templates below
  eval::Experiment exp(cfg);
  exp.TrainModels();
  auto ps3 = exp.MakePs3();
  auto rf = exp.MakeRandomFilter();

  const std::vector<double> budgets = bench::BenchBudgets();
  eval::Report grid("Figure 11 — per-TPC-H-template avg_rel_err "
                    "(rows: Qn method)");
  std::vector<std::string> header{"query", "method"};
  for (double b : budgets) header.push_back(eval::Pct(b, 0));
  grid.SetHeader(header);

  struct TemplateResult {
    int id;
    std::vector<double> ps3_err;  // per budget
  };
  std::vector<TemplateResult> results;
  constexpr size_t kInstances = 5;  // paper uses 20 per template
  for (int tq : workload::kTpchTemplates) {
    exp.SetTests(workload::MakeTpchQuerySet(exp.table().table(), tq,
                                            kInstances, 4242));
    TemplateResult res;
    res.id = tq;
    std::vector<std::string> ps3_cells{"Q" + std::to_string(tq), "ps3"};
    std::vector<std::string> rf_cells{"Q" + std::to_string(tq),
                                      "random+filter"};
    for (double b : budgets) {
      double e_ps3 = exp.Evaluate(*ps3, b, 1).avg_rel_error;
      double e_rf = exp.Evaluate(*rf, b, bench::kRuns).avg_rel_error;
      res.ps3_err.push_back(e_ps3);
      ps3_cells.push_back(eval::Num(e_ps3));
      rf_cells.push_back(eval::Num(e_rf));
    }
    grid.AddRow(ps3_cells);
    grid.AddRow(rf_cells);
    results.push_back(std::move(res));
  }
  grid.Print();

  // Figure 9 summary: average across templates, plus best/worst template
  // judged by error at the 10% budget (index 3 in the grid).
  size_t ref = 3;
  double best = std::numeric_limits<double>::max(), worst = -1.0;
  int best_q = 0, worst_q = 0;
  std::vector<double> avg(budgets.size(), 0.0);
  for (const auto& r : results) {
    for (size_t i = 0; i < budgets.size(); ++i) {
      avg[i] += r.ps3_err[i] / static_cast<double>(results.size());
    }
    if (r.ps3_err[ref] < best) {
      best = r.ps3_err[ref];
      best_q = r.id;
    }
    if (r.ps3_err[ref] > worst) {
      worst = r.ps3_err[ref];
      worst_q = r.id;
    }
  }
  eval::Report summary("Figure 9 — generalization summary (ps3 "
                       "avg_rel_err across templates)");
  std::vector<std::string> sum_header{"series"};
  for (double b : budgets) sum_header.push_back(eval::Pct(b, 0));
  summary.SetHeader(sum_header);
  std::vector<std::string> avg_cells{"average"};
  for (double v : avg) avg_cells.push_back(eval::Num(v));
  summary.AddRow(avg_cells);
  summary.AddRow({"best template", "Q" + std::to_string(best_q) + " @10%: " +
                                       eval::Num(best)});
  summary.AddRow({"worst template", "Q" + std::to_string(worst_q) +
                                        " @10%: " + eval::Num(worst)});
  summary.Print();
  return 0;
}
