// Figure 10 (Appendix C.2): impact of the budget decay rate alpha on the
// KDD dataset, with the learned funnel regressors and with an oracle that
// classifies partitions by their true contribution.
#include <memory>

#include "bench_common.h"

int main() {
  using namespace ps3;
  auto cfg = bench::BenchConfig("kdd", 40000, 200);
  cfg.train_queries = 48;
  cfg.test_queries = 16;
  eval::Experiment exp(cfg);
  exp.TrainModels();

  const std::vector<double> budgets = {0.02, 0.05, 0.1, 0.2, 0.4};
  for (bool oracle : {false, true}) {
    eval::Report report(std::string("Figure 10 — KDD alpha sweep, ") +
                        (oracle ? "oracle" : "learned") +
                        " regressors (avg_rel_err)");
    std::vector<std::string> header{"alpha"};
    for (double b : budgets) header.push_back(eval::Pct(b, 0));
    report.SetHeader(header);
    for (double alpha : {1.0, 2.0, 3.0, 5.0}) {
      core::Ps3Model model = exp.ps3_model();
      model.options.alpha = alpha;
      auto picker =
          oracle ? exp.MakeOracle(&model) : exp.MakePs3With(&model);
      std::vector<std::string> cells{eval::Num(alpha, 1)};
      for (double b : budgets) {
        cells.push_back(eval::Num(exp.Evaluate(*picker, b, 1).avg_rel_error));
      }
      report.AddRow(cells);
    }
    report.Print();
  }
  return 0;
}
