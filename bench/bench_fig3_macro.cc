// Figure 3: error vs sampling budget on the four datasets for Random,
// Random+Filter, LSS and PS3, under all three error metrics. Also prints
// the headline data-read reduction of PS3 vs the baselines at PS3's
// smallest-budget error (the paper's 2.7x-70x numbers).
#include <cstdio>
#include <memory>

#include "bench_common.h"

namespace ps3::bench {
namespace {

struct Curve {
  std::string method;
  std::vector<double> budgets;
  std::vector<query::ErrorMetrics> errors;
};

/// Smallest budget at which `curve` reaches error <= target (linear
/// interpolation between grid points); 1.0 if never.
double BudgetForError(const Curve& curve, double target) {
  for (size_t i = 0; i < curve.budgets.size(); ++i) {
    double e = curve.errors[i].avg_rel_error;
    if (e <= target) {
      if (i == 0) return curve.budgets[0];
      double e0 = curve.errors[i - 1].avg_rel_error;
      double b0 = curve.budgets[i - 1];
      double t = (e0 - target) / std::max(1e-12, e0 - e);
      return b0 + t * (curve.budgets[i] - b0);
    }
  }
  return 1.0;
}

void RunDataset(const std::string& dataset) {
  eval::Experiment exp(BenchConfig(dataset));
  exp.TrainModels();

  std::vector<std::pair<std::string, std::unique_ptr<core::PartitionPicker>>>
      methods;
  methods.emplace_back("random", exp.MakeRandom());
  methods.emplace_back("random+filter", exp.MakeRandomFilter());
  methods.emplace_back("lss", exp.MakeLss());
  methods.emplace_back("ps3", exp.MakePs3());

  eval::Report report("Figure 3 — " + dataset +
                      " (error vs data read)");
  report.SetHeader({"budget", "method", "missed_groups", "avg_rel_err",
                    "abs_over_true"});
  std::vector<Curve> curves;
  for (const auto& [name, picker] : methods) {
    Curve c;
    c.method = name;
    for (double b : BenchBudgets()) {
      int runs = name == "ps3" ? 1 : kRuns;
      auto m = exp.Evaluate(*picker, b, runs);
      c.budgets.push_back(b);
      c.errors.push_back(m);
      report.AddRow({eval::Pct(b), name, eval::Num(m.missed_groups),
                     eval::Num(m.avg_rel_error), eval::Num(m.abs_over_true)});
    }
    curves.push_back(std::move(c));
  }
  report.Print();

  // Headline: budget reduction vs baselines at PS3's 5%-budget error.
  const Curve& ps3 = curves.back();
  double target = ps3.errors[2].avg_rel_error;  // error at 5% budget
  double ps3_budget = BudgetForError(ps3, target);
  eval::Report headline("Figure 3 — " + dataset +
                        " read reduction at matched error (avg_rel_err=" +
                        eval::Num(target, 3) + ")");
  headline.SetHeader({"method", "budget_needed", "reduction_vs_ps3"});
  for (const Curve& c : curves) {
    double b = BudgetForError(c, target);
    headline.AddRow({c.method, eval::Pct(b),
                     eval::Num(b / std::max(1e-9, ps3_budget), 1) + "x"});
  }
  headline.Print();
}

}  // namespace
}  // namespace ps3::bench

int main() {
  for (const char* dataset : {"tpch", "tpcds", "aria", "kdd"}) {
    ps3::bench::RunDataset(dataset);
  }
  return 0;
}
