// Scan-path throughput: rows/sec of exact whole-table evaluation on the
// TPC-H-style workload, swept over execution policy (scalar interpreter vs
// vectorized engine), worker-lane count (resident work-stealing pool),
// predicate kernel (scalar word-packing vs explicit AVX2), shard count
// (multi-shard fan-out over a ShardedTable), concurrent query-stream
// count (closed-loop submitters through runtime::QueryScheduler, so
// scheduler fairness shows up as per-stream rows/sec), and IO placement
// (resident vs cold-with-prefetch vs cold-no-prefetch over a spilled
// io::PartitionStore, with cache hit rates), plus a wide-table column-
// pruning section (cold scans with the query's referenced-column hint vs
// full-partition rehydration, reporting bytes read per row). Emits JSON
// so successive PRs can track the perf trajectory. Scale with PS3_ROWS /
// PS3_PARTS / PS3_TESTQ; pin sweep dimensions with PS3_THREADS /
// PS3_SHARDS / PS3_STREAMS; PS3_IO=0 skips the out-of-core section,
// PS3_IO_DELAY_US sets the simulated remote-store latency per cold load,
// PS3_IO_MBPS the simulated link bandwidth for the pruning section,
// PS3_COLUMNS the wide table's numeric column count, PS3_ENCODING
// pins the segment-encoding sweep (raw / bitpack / for_delta / auto:
// on-disk bytes-per-row, encoded bytes read per row, cold rows/sec), and
// PS3_PICKERS / PS3_FRACTIONS pin the approximate-serving sweep
// (SubmitApproximate over the cold store with exact / random / learned
// ps3 pickers at several sampling fractions: rows/sec, encoded bytes
// read per row, and relative error vs the exact answer). The
// multi-tenant class section (PS3_CLASSES pins the stream counts,
// PS3_CLASSQ the interactive sample count, PS3_CLASS_THINK_US the
// interactive think time, PS3_CLASS_THREADS the lanes per query) races
// one bursty interactive stream against n-1 closed-loop batch streams
// twice per count — "classless" submits the interactive tenant as just
// another batch stream (the pre-class baseline), "classed" marks it
// QueryClass::kInteractive — reporting interactive p50/p99 latency and
// batch rows/sec side by side. The fault-tolerance section replays cold
// exact scans while the store's seeded FaultInjector throws transient
// errors and latency spikes: PS3_FAULT_RATE sweeps the injected rate
// (0 = fault-free baseline), PS3_FAULT_SEED pins the fault sequence,
// PS3_RETRY sweeps total load attempts (1 = retries off), PS3_HEDGE_MS
// sweeps the hedged-read delay (0 = hedging off); it reports success
// rate, cold p50/p99 latency, rows/sec, and the store's retry / hedge
// counters, with every successful answer gated bit-identical to the
// resident scan.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/exact_picker.h"
#include "core/ps3_picker.h"
#include "core/ps3_trainer.h"
#include "core/random_picker.h"
#include "core/training_data.h"
#include "io/cold_source.h"
#include "io/partition_store.h"
#include "io/prefetch_pipeline.h"
#include "query/compiler.h"
#include "query/evaluator.h"
#include "query/metrics.h"
#include "runtime/query_scheduler.h"
#include "runtime/simd.h"
#include "stats/stats_builder.h"
#include "storage/column_set.h"
#include "storage/sharded_table.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double TimeAll(const std::vector<ps3::query::Query>& queries,
               const ps3::storage::PartitionedTable& table,
               const ps3::query::ExecOptions& opts) {
  auto start = Clock::now();
  for (const auto& q : queries) {
    auto answers = ps3::query::EvaluateAllPartitions(q, table, opts);
    // Keep the optimizer honest.
    if (answers.empty()) std::abort();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double TimeAllSharded(const std::vector<ps3::query::Query>& queries,
                      const ps3::storage::ShardedTable& table,
                      const ps3::query::ExecOptions& opts) {
  auto start = Clock::now();
  for (const auto& q : queries) {
    auto answers = ps3::query::EvaluateAllPartitions(q, table, opts);
    if (answers.empty()) std::abort();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Closed-loop concurrent streams: `n_streams` submitter threads each push
/// their round-robin share of `queries` through one QueryScheduler
/// (submit, wait, submit), so at most `n_streams` queries are in flight
/// and the pool's round-robin chunk interleaving sets per-stream latency.
/// Returns wall seconds; fills per-stream elapsed seconds and query
/// counts.
double TimeStreamed(const std::vector<ps3::query::Query>& queries,
                    const ps3::storage::PartitionedTable& table,
                    const ps3::query::ExecOptions& opts, size_t n_streams,
                    std::vector<double>* stream_secs,
                    std::vector<size_t>* stream_queries) {
  ps3::runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = static_cast<int>(n_streams);
  ps3::runtime::QueryScheduler scheduler(sopts);
  stream_secs->assign(n_streams, 0.0);
  stream_queries->assign(n_streams, 0);
  auto start = Clock::now();
  std::vector<std::thread> streams;
  for (size_t s = 0; s < n_streams; ++s) {
    streams.emplace_back([&, s] {
      auto stream_start = Clock::now();
      size_t count = 0;
      for (size_t i = s; i < queries.size(); i += n_streams) {
        // future::get() is an opaque side-effecting call, so the answer
        // cannot be optimized away; an empty answer is legitimate here
        // (always-false predicates), unlike the flat-scan timers above.
        scheduler.Submit(queries[i], table, opts).get();
        ++count;
      }
      (*stream_secs)[s] =
          std::chrono::duration<double>(Clock::now() - stream_start).count();
      (*stream_queries)[s] = count;
    });
  }
  for (auto& t : streams) t.join();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ClassBenchResult {
  double inter_p50_ms = 0.0;
  double inter_p99_ms = 0.0;
  size_t batch_queries = 0;
  double batch_rows_per_sec = 0.0;
};

/// Multi-tenant class mix: one closed-loop interactive stream (think
/// time between queries, `quota` queries total — the latency samples)
/// races `streams - 1` closed-loop batch streams through one
/// QueryScheduler with fewer drivers than streams — drivers track the
/// core count (capped at 8) like a real deployment would, so a driver
/// queue forms and the interactive queue jump is part of what's
/// measured, not just the weighted lane picks. `classed` submits the
/// interactive stream as
/// QueryClass::kInteractive; classless submits it as one more batch
/// stream — the pre-class baseline the p99 improvement is measured
/// against. Batch throughput is counted over the interactive stream's
/// window, so the classed row's batch_rows_per_sec prices what the
/// latency win costs the batch tenants.
ClassBenchResult TimeClassed(const std::vector<ps3::query::Query>& queries,
                             const ps3::storage::PartitionedTable& table,
                             const ps3::query::ExecOptions& opts,
                             size_t streams, bool classed, size_t quota,
                             size_t think_us, size_t rows) {
  using namespace ps3;
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t drivers = std::min(
      streams, std::min<size_t>(8, hw == 0 ? 1 : static_cast<size_t>(hw)));
  runtime::QueryScheduler::Options sopts;
  sopts.num_drivers = static_cast<int>(drivers);
  runtime::QueryScheduler scheduler(sopts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batch_done{0};
  std::vector<std::thread> batch_streams;
  batch_streams.reserve(streams - 1);
  for (size_t s = 1; s < streams; ++s) {
    batch_streams.emplace_back([&, s] {
      size_t i = s;
      while (!stop.load(std::memory_order_relaxed)) {
        scheduler.Submit(queries[i % queries.size()], table, opts).get();
        batch_done.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  runtime::SubmitOptions submit;
  if (classed) submit.query_class = QueryClass::kInteractive;
  std::vector<double> lat_ms;
  lat_ms.reserve(quota);
  const auto window_start = Clock::now();
  for (size_t k = 0; k < quota; ++k) {
    if (think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(think_us));
    }
    const auto q_start = Clock::now();
    scheduler.Submit(queries[k % queries.size()], table, submit, opts).get();
    lat_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - q_start)
            .count());
  }
  const double window_secs =
      std::chrono::duration<double>(Clock::now() - window_start).count();
  // Sampled before stop: queries the batch tenants completed while the
  // interactive tenant was live, not during the shutdown straggle.
  const uint64_t batch_in_window = batch_done.load(std::memory_order_relaxed);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : batch_streams) t.join();

  std::sort(lat_ms.begin(), lat_ms.end());
  auto pct = [&](double p) {
    if (lat_ms.empty()) return 0.0;
    const size_t idx = static_cast<size_t>(p * (lat_ms.size() - 1) + 0.5);
    return lat_ms[std::min(idx, lat_ms.size() - 1)];
  };
  ClassBenchResult out;
  out.inter_p50_ms = pct(0.50);
  out.inter_p99_ms = pct(0.99);
  out.batch_queries = batch_in_window;
  out.batch_rows_per_sec =
      window_secs > 0.0 ? static_cast<double>(batch_in_window) *
                              static_cast<double>(rows) / window_secs
                        : 0.0;
  return out;
}

/// Cold source that ignores the evaluator's projection hint and always
/// rehydrates whole partitions — the "full" baseline the column-pruned
/// mode is measured against.
class FullColdSource : public ps3::io::ColdShardedSource {
 public:
  using ColdShardedSource::ColdShardedSource;

  ps3::Result<ps3::storage::PinnedPartition> Acquire(
      size_t global_index,
      const ps3::storage::ColumnSet& columns) const override {
    (void)columns;
    return store().Fetch(global_index, ps3::storage::ColumnSet::All());
  }
  void WillScanShard(size_t s,
                     const ps3::storage::ColumnSet& columns) const override {
    (void)columns;
    ColdShardedSource::WillScanShard(s, ps3::storage::ColumnSet::All());
  }
};

/// Synthetic wide table for the column-pruning comparison: one
/// categorical group column "G" (32 values) plus `num_numeric` numeric
/// columns N0..N{k-1}. Queries reference a fixed handful of columns, so
/// the referenced fraction shrinks as the table widens.
std::shared_ptr<ps3::storage::Table> MakeWideTable(size_t rows,
                                                   size_t num_numeric) {
  using namespace ps3;
  std::vector<storage::FieldDef> fields;
  fields.push_back({"G", storage::ColumnType::kCategorical});
  for (size_t c = 0; c < num_numeric; ++c) {
    fields.push_back({"N" + std::to_string(c),
                      storage::ColumnType::kNumeric});
  }
  auto table =
      std::make_shared<storage::Table>(storage::Schema(std::move(fields)));
  RandomEngine rng(20260730);
  std::vector<double> nums(num_numeric);
  for (size_t r = 0; r < rows; ++r) {
    for (auto& v : nums) v = rng.NextDouble();
    table->AppendRow(nums, {"g" + std::to_string(rng.NextUint64(32))});
  }
  table->Seal();
  return table;
}

void ExpectIdentical(const std::vector<ps3::query::PartitionAnswer>& a,
                     const std::vector<ps3::query::PartitionAnswer>& b) {
  if (a.size() != b.size()) std::abort();
  for (size_t p = 0; p < a.size(); ++p) {
    if (a[p].size() != b[p].size()) std::abort();
    for (const auto& [key, accs] : a[p]) {
      auto it = b[p].find(key);
      if (it == b[p].end()) std::abort();
      for (size_t x = 0; x < accs.size(); ++x) {
        if (accs[x].sum != it->second[x].sum ||
            accs[x].count != it->second[x].count ||
            accs[x].min != it->second[x].min ||
            accs[x].max != it->second[x].max) {
          std::abort();
        }
      }
    }
  }
}

}  // namespace

int main() {
  using namespace ps3;

  const size_t rows = bench::EnvSizeScalar("PS3_ROWS", 200000);
  const size_t partitions = bench::EnvSizeScalar("PS3_PARTS", 400);
  const size_t n_queries = bench::EnvSizeScalar("PS3_TESTQ", 16);
  const std::vector<size_t> thread_counts = bench::BenchThreadCounts();
  const std::vector<size_t> shard_counts = bench::BenchShardCounts();
  const bool avx2 = runtime::Avx2Available();

  auto bundle = workload::MakeTpchStar(rows, /*seed=*/7);
  auto sorted = bundle.table->SortedBy(bundle.default_sort);
  auto laid_out = std::make_shared<storage::Table>(std::move(sorted).value());
  storage::PartitionedTable table(laid_out, partitions);

  workload::QueryGenerator gen(laid_out.get(), bundle.spec);
  std::vector<query::Query> queries = gen.GenerateSet(n_queries, /*seed=*/41);

  // Correctness gate: every engine configuration must agree bit-wise with
  // the scalar reference before any throughput number is worth reporting.
  for (const auto& q : queries) {
    auto scalar = query::EvaluateAllPartitions(
        q, table, {query::ExecPolicy::kScalar, 1});
    query::ExecOptions vopts;
    vopts.policy = query::ExecPolicy::kVectorized;
    vopts.num_threads = 1;
    vopts.simd = runtime::SimdLevel::kNone;
    ExpectIdentical(scalar, query::EvaluateAllPartitions(q, table, vopts));
    if (avx2) {
      vopts.simd = runtime::SimdLevel::kAvx2;
      ExpectIdentical(scalar, query::EvaluateAllPartitions(q, table, vopts));
    }
  }
  if (!queries.empty()) {
    // Sharded fan-out gate on the first query across all shard counts.
    query::ExecOptions vopts;
    vopts.num_threads = 4;
    auto flat = query::EvaluateAllPartitions(queries[0], table, vopts);
    for (size_t shards : shard_counts) {
      storage::ShardedTable st(table, shards);
      ExpectIdentical(flat,
                      query::EvaluateAllPartitions(queries[0], st, vopts));
    }
  }

  struct Config {
    query::ExecPolicy policy;
    size_t threads;
    runtime::SimdLevel simd;
    size_t shards;  // 0 = flat table
  };
  std::vector<Config> configs;
  for (size_t t : thread_counts) {
    configs.push_back({query::ExecPolicy::kScalar, t,
                       runtime::SimdLevel::kNone, 0});
  }
  for (size_t t : thread_counts) {
    configs.push_back({query::ExecPolicy::kVectorized, t,
                       runtime::SimdLevel::kNone, 0});
    if (avx2) {
      configs.push_back({query::ExecPolicy::kVectorized, t,
                         runtime::SimdLevel::kAvx2, 0});
    }
  }
  // Sharded fan-out at the widest lane count, best kernel.
  const size_t wide =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  for (size_t shards : shard_counts) {
    configs.push_back({query::ExecPolicy::kVectorized, wide,
                       runtime::SimdLevel::kAuto, shards});
  }

  const double total_rows =
      static_cast<double>(rows) * static_cast<double>(queries.size());

  std::printf("{\n");
  std::printf("  \"bench\": \"evaluator_throughput\",\n");
  std::printf("  \"dataset\": \"tpch\",\n");
  std::printf("  \"rows\": %zu,\n", rows);
  std::printf("  \"partitions\": %zu,\n", partitions);
  std::printf("  \"queries\": %zu,\n", queries.size());
  std::printf("  \"avx2_available\": %s,\n", avx2 ? "true" : "false");
  std::printf("  \"results\": [\n");

  double scalar_1t = 0.0, vec_pack_1t = 0.0, vec_best_1t = 0.0,
         vec_best_wide = 0.0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& cfg = configs[i];
    query::ExecOptions opts;
    opts.policy = cfg.policy;
    opts.num_threads = static_cast<int>(cfg.threads);
    opts.simd = cfg.simd;

    double secs;
    if (cfg.shards > 0) {
      storage::ShardedTable st(table, cfg.shards);
      TimeAllSharded(queries, st, opts);  // warm-up (page-in, scratch)
      secs = TimeAllSharded(queries, st, opts);
    } else {
      TimeAll(queries, table, opts);  // warm-up (page-in, scratch alloc)
      secs = TimeAll(queries, table, opts);
    }
    double rps = total_rows / secs;

    const char* name =
        cfg.policy == query::ExecPolicy::kScalar ? "scalar" : "vectorized";
    const char* kernel = cfg.policy == query::ExecPolicy::kScalar
                             ? "interpreter"
                             : (cfg.simd == runtime::SimdLevel::kNone
                                    ? "pack64"
                                    : (avx2 ? "avx2" : "pack64"));
    // The *_1t summary baselines are genuinely single-threaded: if
    // PS3_THREADS omits 1, they stay 0 and the speedups report 0.0
    // rather than mislabeling a wider config.
    if (cfg.shards == 0 && cfg.policy == query::ExecPolicy::kScalar &&
        cfg.threads == 1) {
      scalar_1t = secs;
    }
    if (cfg.shards == 0 && cfg.policy == query::ExecPolicy::kVectorized &&
        cfg.threads == 1) {
      if (cfg.simd == runtime::SimdLevel::kNone) {
        vec_pack_1t = secs;
      }
      // Last 1-lane vectorized config is the best kernel available.
      vec_best_1t = secs;
    }
    if (cfg.shards == 0 && cfg.policy == query::ExecPolicy::kVectorized &&
        cfg.threads == wide) {
      vec_best_wide = secs;
    }
    std::printf(
        "    {\"policy\": \"%s\", \"threads\": %zu, \"kernel\": \"%s\", "
        "\"shards\": %zu, \"seconds\": %.4f, \"rows_per_sec\": %.3e}%s\n",
        name, cfg.threads, kernel, cfg.shards, secs, rps,
        i + 1 < configs.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Concurrent query streams through the scheduler: aggregate rows/sec
  // plus per-stream rows/sec, so unfair lane allotment (one stream
  // starved while another hogs the pool) is visible in the trajectory,
  // not averaged away.
  const std::vector<size_t> stream_counts = bench::BenchStreamCounts();
  std::printf("  \"stream_results\": [\n");
  for (size_t i = 0; i < stream_counts.size(); ++i) {
    const size_t streams = std::max<size_t>(1, stream_counts[i]);
    query::ExecOptions opts;
    opts.policy = query::ExecPolicy::kVectorized;
    opts.num_threads = static_cast<int>(wide);
    opts.simd = runtime::SimdLevel::kAuto;
    std::vector<double> stream_secs;
    std::vector<size_t> stream_queries;
    TimeStreamed(queries, table, opts, streams, &stream_secs,
                 &stream_queries);  // warm-up (page-in, scratch, drivers)
    const double wall = TimeStreamed(queries, table, opts, streams,
                                     &stream_secs, &stream_queries);
    std::printf(
        "    {\"policy\": \"vectorized\", \"streams\": %zu, \"threads\": "
        "%zu, \"kernel\": \"auto\", \"seconds\": %.4f, \"rows_per_sec\": "
        "%.3e, \"per_stream_rows_per_sec\": [",
        streams, wide, wall, total_rows / wall);
    for (size_t s = 0; s < streams; ++s) {
      const double stream_rows = static_cast<double>(rows) *
                                 static_cast<double>(stream_queries[s]);
      std::printf("%.3e%s",
                  stream_secs[s] > 0.0 ? stream_rows / stream_secs[s] : 0.0,
                  s + 1 < streams ? ", " : "");
    }
    std::printf("]}%s\n", i + 1 < stream_counts.size() ? "," : "");
  }
  std::printf("  ],\n");

  // Multi-tenant classes: per stream count, a classless baseline row and
  // a classed row from identical mixes, so interactive p99 improvement
  // and batch throughput cost divide directly within one JSON capture.
  const std::vector<size_t> class_counts = bench::BenchClassStreamCounts();
  const size_t class_quota = bench::BenchClassQuota();
  const size_t class_think_us = bench::BenchClassThinkUs();
  const size_t class_threads = bench::BenchClassThreads();
  std::printf("  \"class_results\": [\n");
  for (size_t i = 0; i < class_counts.size(); ++i) {
    const size_t streams = std::max<size_t>(2, class_counts[i]);
    query::ExecOptions clopts;
    clopts.policy = query::ExecPolicy::kVectorized;
    clopts.num_threads = static_cast<int>(class_threads);
    clopts.simd = runtime::SimdLevel::kAuto;
    for (int mode = 0; mode < 2; ++mode) {
      const bool classed = mode == 1;
      const ClassBenchResult r =
          TimeClassed(queries, table, clopts, streams, classed, class_quota,
                      class_think_us, rows);
      std::printf(
          "    {\"mode\": \"%s\", \"streams\": %zu, \"batch_streams\": %zu, "
          "\"threads\": %zu, \"think_us\": %zu, "
          "\"interactive_queries\": %zu, \"interactive_p50_ms\": %.3f, "
          "\"interactive_p99_ms\": %.3f, \"batch_queries\": %zu, "
          "\"batch_rows_per_sec\": %.3e}%s\n",
          classed ? "classed" : "classless", streams, streams - 1,
          class_threads, class_think_us, class_quota, r.inter_p50_ms,
          r.inter_p99_ms, r.batch_queries, r.batch_rows_per_sec,
          (i + 1 < class_counts.size() || !classed) ? "," : "");
    }
  }
  std::printf("  ],\n");

  // Out-of-core scan path (PS3_IO=0 to skip): the same sharded fan-out
  // with the partitions resident, cold on disk with shard-granular
  // prefetch, and cold with no read-ahead. Cold modes drop the cache
  // before every query, so every partition load pays the (simulated)
  // remote-store latency; the prefetch rows measure how much of that
  // wait the pipeline hides. cache_hit_rate is the fraction of scan
  // fetches served by the cache (prefetch staging counts as a hit).
  const bool io_enabled =
      bench::EnvSizeScalar("PS3_IO", 1, /*min_value=*/0) != 0;
  std::printf("  \"io_results\": [\n");
  if (io_enabled) {
    // Default latency models a cloud object store round trip (~1.5ms);
    // below a few hundred us cold scans go CPU-bound on the decode and
    // the prefetch comparison stops measuring IO overlap.
    const size_t delay_us =
        bench::EnvSizeScalar("PS3_IO_DELAY_US", 1500, /*min_value=*/0);
    const size_t io_shards =
        *std::max_element(shard_counts.begin(), shard_counts.end());
    // Cold scans cost ~partitions × delay wall time per query, so the IO
    // dimension sweeps a small fixed query subset.
    const std::vector<query::Query> io_queries(
        queries.begin(),
        queries.begin() + std::min<size_t>(queries.size(), 4));
    char dir_tmpl[] = "/tmp/ps3_io_benchXXXXXX";
    if (mkdtemp(dir_tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::abort();
    }
    if (!io::PartitionStore::Spill(table, dir_tmpl).ok()) std::abort();
    io::PartitionStore::Options sopts;
    sopts.simulated_load_delay_us = delay_us;
    auto store_r = io::PartitionStore::Open(dir_tmpl, sopts);
    if (!store_r.ok()) std::abort();
    io::PartitionStore& probe = **store_r;
    // Budget smaller than the table, so cold scans genuinely evict.
    sopts.cache_budget_bytes = std::max<size_t>(probe.total_bytes() / 2, 1);
    store_r = io::PartitionStore::Open(dir_tmpl, sopts);
    if (!store_r.ok()) std::abort();
    io::PartitionStore& store = **store_r;

    // Correctness gate: cold answers must be bit-identical to the
    // resident scan under both policies before any throughput number is
    // worth reporting.
    if (!queries.empty()) {
      io::ColdShardedSource cold(&store, io_shards);
      for (query::ExecPolicy policy :
           {query::ExecPolicy::kScalar, query::ExecPolicy::kVectorized}) {
        query::ExecOptions gopts;
        gopts.policy = policy;
        gopts.num_threads = 4;
        ExpectIdentical(query::EvaluateAllPartitions(queries[0], table, gopts),
                        query::EvaluateAllPartitions(queries[0], cold, gopts));
      }
    }

    struct IoRow {
      const char* mode;
      size_t threads;
      double secs;
      double hit_rate;
    };
    std::vector<IoRow> io_rows;
    for (size_t t : thread_counts) {
      query::ExecOptions opts;
      opts.policy = query::ExecPolicy::kVectorized;
      opts.num_threads = static_cast<int>(t);
      opts.simd = runtime::SimdLevel::kAuto;

      {  // resident: everything in RAM, same fan-out.
        storage::ShardedTable st(table, io_shards);
        TimeAllSharded(io_queries, st, opts);  // warm-up
        io_rows.push_back(
            {"resident", t, TimeAllSharded(io_queries, st, opts), 1.0});
      }

      // Cold modes skip the warm-up pass: the cache is dropped before
      // every query anyway, and lanes/scratch are warm from the sweeps
      // above, so a second multi-second cold pass would measure nothing.
      auto timed_cold = [&](io::PrefetchPipeline* pipeline,
                            io::ColdShardedSource* src) {
        auto run_all = [&] {
          double s = 0.0;
          for (const auto& q : io_queries) {
            if (pipeline != nullptr) pipeline->Drain();
            store.cache().Clear();
            auto start = Clock::now();
            auto answers = query::EvaluateAllPartitions(q, *src, opts);
            s += std::chrono::duration<double>(Clock::now() - start).count();
            if (answers.empty()) std::abort();
          }
          return s;
        };
        const io::CacheStats before = store.cache().stats();
        const double secs = run_all();
        const io::CacheStats after = store.cache().stats();
        const double lookups = static_cast<double>(
            (after.hits - before.hits) + (after.misses - before.misses));
        const double hit_rate =
            lookups > 0.0 ? static_cast<double>(after.hits - before.hits) /
                                lookups
                          : 0.0;
        return IoRow{"", t, secs, hit_rate};
      };

      {  // cold, no read-ahead: every fetch pays the load latency inline.
        io::ColdShardedSource src(&store, io_shards);
        IoRow row = timed_cold(nullptr, &src);
        row.mode = "cold_noprefetch";
        io_rows.push_back(row);
      }
      {  // cold + prefetch: next shard staged while this one scans.
        runtime::QueryScheduler scheduler;
        io::PrefetchPipeline pipeline(&store, &scheduler);
        io::ColdShardedSource src(&store, io_shards,
                                  storage::ShardAssignment::kRange, &pipeline);
        IoRow row = timed_cold(&pipeline, &src);
        row.mode = "cold_prefetch";
        io_rows.push_back(row);
      }
    }
    const double io_rows_total =
        static_cast<double>(rows) * static_cast<double>(io_queries.size());
    for (size_t i = 0; i < io_rows.size(); ++i) {
      const IoRow& r = io_rows[i];
      std::printf(
          "    {\"io\": \"%s\", \"threads\": %zu, \"shards\": %zu, "
          "\"delay_us\": %zu, \"seconds\": %.4f, \"rows_per_sec\": %.3e, "
          "\"cache_hit_rate\": %.3f}%s\n",
          r.mode, r.threads, io_shards, delay_us, r.secs,
          io_rows_total / r.secs, r.hit_rate,
          i + 1 < io_rows.size() ? "," : "");
    }
  }
  std::printf("  ],\n");

  // Wide-table column pruning (PS3_IO=0 skips): the same cold scan with
  // the evaluator's referenced-column hint honored (pruned) vs ignored
  // (full rehydration). The table is deliberately much wider than any
  // query's reference set, so the pruned mode should move a small
  // fraction of the bytes; bytes_read_per_row is the headline metric,
  // with the simulated-bandwidth model translating saved bytes into
  // saved seconds as a real object store would.
  std::printf("  \"column_results\": [\n");
  if (io_enabled) {
    const size_t n_numeric = bench::EnvSizeScalar("PS3_COLUMNS", 24);
    const size_t mbps =
        bench::EnvSizeScalar("PS3_IO_MBPS", 1000, /*min_value=*/0);
    const size_t col_delay_us =
        bench::EnvSizeScalar("PS3_IO_DELAY_US", 1500, /*min_value=*/0);
    // Cold scans cost ~partitions x delay wall time per query: bound the
    // partition count so the wide section stays a fraction of the sweep.
    const size_t wide_parts = std::min<size_t>(partitions, 64);
    auto wide_table = MakeWideTable(rows, n_numeric);
    storage::PartitionedTable wpt(wide_table, wide_parts);

    // Two query shapes: a selective filtered SUM and a broader grouped
    // scan; both reference 3 of the (1 + n_numeric) columns.
    std::vector<query::Query> wide_queries;
    {
      query::Query q;
      q.aggregates.push_back(query::Aggregate::Count());
      q.aggregates.push_back(query::Aggregate::Sum(query::Expr::Column(1)));
      q.predicate =
          query::Predicate::NumericCompare(2, query::CompareOp::kGt, 0.9);
      q.group_by.push_back(0);
      wide_queries.push_back(std::move(q));
    }
    {
      query::Query q;
      q.aggregates.push_back(query::Aggregate::Count());
      q.aggregates.push_back(query::Aggregate::Avg(query::Expr::Mul(
          query::Expr::Column(1), query::Expr::Column(2))));
      q.group_by.push_back(0);
      wide_queries.push_back(std::move(q));
    }
    const size_t cols_total = 1 + n_numeric;
    size_t cols_referenced = 0;
    for (const auto& q : wide_queries) {
      cols_referenced = std::max(
          cols_referenced, query::ReferencedColumns(query::CompileQuery(q))
                               .Resolve(cols_total)
                               .size());
    }

    char dir_tmpl[] = "/tmp/ps3_col_benchXXXXXX";
    if (mkdtemp(dir_tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::abort();
    }
    if (!io::PartitionStore::Spill(wpt, dir_tmpl).ok()) std::abort();
    io::PartitionStore::Options sopts;
    sopts.simulated_load_delay_us = col_delay_us;
    sopts.simulated_load_bandwidth_mbps = mbps;
    auto probe_r = io::PartitionStore::Open(dir_tmpl, sopts);
    if (!probe_r.ok()) std::abort();
    sopts.cache_budget_bytes =
        std::max<size_t>((*probe_r)->total_bytes() / 2, 1);
    auto store_r = io::PartitionStore::Open(dir_tmpl, sopts);
    if (!store_r.ok()) std::abort();
    io::PartitionStore& store = **store_r;

    // Correctness gate: pruned cold answers must be bit-identical to the
    // resident scan before the byte savings mean anything.
    {
      io::ColdShardedSource cold(&store, /*num_shards=*/4);
      for (const auto& q : wide_queries) {
        query::ExecOptions gopts;
        gopts.num_threads = 4;
        ExpectIdentical(query::EvaluateAllPartitions(q, wpt, gopts),
                        query::EvaluateAllPartitions(q, cold, gopts));
      }
    }

    struct ColRow {
      const char* mode;
      double secs;
      double bytes_per_row;
    };
    std::vector<ColRow> col_rows;
    const double wide_rows_total =
        static_cast<double>(rows) * static_cast<double>(wide_queries.size());
    query::ExecOptions copts;
    copts.policy = query::ExecPolicy::kVectorized;
    copts.num_threads = static_cast<int>(wide);
    copts.simd = runtime::SimdLevel::kAuto;
    io::ColdShardedSource pruned_src(&store, /*num_shards=*/4);
    FullColdSource full_src(&store, /*num_shards=*/4);
    const storage::PartitionSource* sources[] = {&pruned_src, &full_src};
    const char* mode_names[] = {"pruned", "full"};
    for (int m = 0; m < 2; ++m) {
      const uint64_t bytes_before = store.store_stats().bytes_loaded;
      double secs = 0.0;
      for (const auto& q : wide_queries) {
        store.cache().Clear();
        auto start = Clock::now();
        auto answers = query::EvaluateAllPartitions(q, *sources[m], copts);
        secs += std::chrono::duration<double>(Clock::now() - start).count();
        if (answers.empty()) std::abort();
      }
      const uint64_t bytes_moved =
          store.store_stats().bytes_loaded - bytes_before;
      col_rows.push_back(
          {mode_names[m], secs,
           static_cast<double>(bytes_moved) / wide_rows_total});
    }
    for (size_t i = 0; i < col_rows.size(); ++i) {
      const ColRow& r = col_rows[i];
      std::printf(
          "    {\"io_mode\": \"%s\", \"threads\": %zu, \"columns_total\": "
          "%zu, \"columns_referenced\": %zu, \"delay_us\": %zu, "
          "\"bandwidth_mbps\": %zu, \"seconds\": %.4f, \"rows_per_sec\": "
          "%.3e, \"bytes_read_per_row\": %.2f}%s\n",
          r.mode, wide, cols_total, cols_referenced, col_delay_us, mbps,
          r.secs, wide_rows_total / r.secs, r.bytes_per_row,
          i + 1 < col_rows.size() ? "," : "");
    }
  }
  std::printf("  ],\n");

  // Segment-encoding sweep (PS3_IO=0 skips; PS3_ENCODING pins modes):
  // spill the same TPC-H table under each encoding policy and cold-scan
  // it at a matched simulated link. The headline metrics: on-disk
  // bytes-per-row (total and for the dictionary-coded columns, where the
  // encodings act), *encoded* bytes read per row during the scan, and
  // cold rows/sec — compression must buy bytes without costing scan
  // throughput, since the decode runs through the AVX2 unpack kernels.
  std::printf("  \"encoding_results\": [\n");
  if (io_enabled) {
    const size_t enc_delay_us =
        bench::EnvSizeScalar("PS3_IO_DELAY_US", 1500, /*min_value=*/0);
    const size_t enc_mbps =
        bench::EnvSizeScalar("PS3_IO_MBPS", 1000, /*min_value=*/0);
    const std::vector<io::EncodingMode> modes = bench::BenchEncodingModes();
    const std::vector<query::Query> enc_queries(
        queries.begin(),
        queries.begin() + std::min<size_t>(queries.size(), 4));
    const double enc_rows_total =
        static_cast<double>(rows) * static_cast<double>(enc_queries.size());
    std::vector<size_t> cat_cols;
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (table.schema().IsCategorical(c)) cat_cols.push_back(c);
    }

    for (size_t m = 0; m < modes.size(); ++m) {
      char dir_tmpl[] = "/tmp/ps3_enc_benchXXXXXX";
      if (mkdtemp(dir_tmpl) == nullptr) {
        std::fprintf(stderr, "mkdtemp failed\n");
        std::abort();
      }
      io::PartitionStore::SpillOptions spill_opts;
      spill_opts.encoding = modes[m];
      auto spill_start = Clock::now();
      if (!io::PartitionStore::Spill(table, dir_tmpl, spill_opts).ok()) {
        std::abort();
      }
      const double spill_secs =
          std::chrono::duration<double>(Clock::now() - spill_start).count();

      io::PartitionStore::Options sopts;
      sopts.simulated_load_delay_us = enc_delay_us;
      sopts.simulated_load_bandwidth_mbps = enc_mbps;
      auto probe_r = io::PartitionStore::Open(dir_tmpl, sopts);
      if (!probe_r.ok()) std::abort();
      sopts.cache_budget_bytes =
          std::max<size_t>((*probe_r)->total_bytes() / 2, 1);
      auto store_r = io::PartitionStore::Open(dir_tmpl, sopts);
      if (!store_r.ok()) std::abort();
      io::PartitionStore& store = **store_r;

      size_t cat_disk_bytes = 0;
      for (size_t p = 0; p < store.num_partitions(); ++p) {
        cat_disk_bytes += store.encoded_columns_bytes(p, cat_cols);
      }

      io::ColdShardedSource cold(&store, /*num_shards=*/4);
      query::ExecOptions eopts;
      eopts.policy = query::ExecPolicy::kVectorized;
      eopts.num_threads = static_cast<int>(wide);
      eopts.simd = runtime::SimdLevel::kAuto;
      // Correctness gate: every encoding's cold scan must be bit-exact
      // with the resident scan before its bytes or seconds mean anything.
      if (!enc_queries.empty()) {
        ExpectIdentical(
            query::EvaluateAllPartitions(enc_queries[0], table, eopts),
            query::EvaluateAllPartitions(enc_queries[0], cold, eopts));
      }
      const uint64_t bytes_before = store.store_stats().bytes_loaded;
      double secs = 0.0;
      for (const auto& q : enc_queries) {
        store.cache().Clear();
        auto start = Clock::now();
        auto answers = query::EvaluateAllPartitions(q, cold, eopts);
        secs += std::chrono::duration<double>(Clock::now() - start).count();
        if (answers.empty()) std::abort();
      }
      const uint64_t bytes_moved =
          store.store_stats().bytes_loaded - bytes_before;
      std::printf(
          "    {\"encoding\": \"%s\", \"threads\": %zu, \"delay_us\": %zu, "
          "\"bandwidth_mbps\": %zu, \"spill_seconds\": %.4f, "
          "\"disk_bytes_per_row\": %.2f, \"cat_disk_bytes_per_row\": %.2f, "
          "\"bytes_read_per_row\": %.2f, \"seconds\": %.4f, "
          "\"rows_per_sec\": %.3e}%s\n",
          io::EncodingModeName(modes[m]), wide, enc_delay_us, enc_mbps,
          spill_secs,
          static_cast<double>(store.total_bytes()) / static_cast<double>(rows),
          static_cast<double>(cat_disk_bytes) / static_cast<double>(rows),
          static_cast<double>(bytes_moved) / enc_rows_total, secs,
          enc_rows_total / secs, m + 1 < modes.size() ? "," : "");
    }
  }
  std::printf("  ],\n");

  // Approximate serving (PS3_IO=0 skips; PS3_PICKERS / PS3_FRACTIONS pin
  // the sweep): SubmitApproximate over the cold store, where the picker's
  // weighted partition subset drives the scan — only picked (partition,
  // column) segments are fetched or prefetched. The exact row is the
  // same cold scan through the approximate path with an ExactPicker
  // (all partitions, weight 1; gated bit-identical to Submit), so the
  // learned rows' bytes_read_per_row divides directly against it. Errors
  // are measured against the resident exact answer.
  std::printf("  \"picker_results\": [\n");
  if (io_enabled) {
    const size_t pk_delay_us =
        bench::EnvSizeScalar("PS3_IO_DELAY_US", 1500, /*min_value=*/0);
    const size_t pk_mbps =
        bench::EnvSizeScalar("PS3_IO_MBPS", 1000, /*min_value=*/0);
    const size_t pk_shards =
        *std::max_element(shard_counts.begin(), shard_counts.end());
    const std::vector<std::string> picker_modes = bench::BenchPickerModes();
    const std::vector<double> fractions = bench::BenchPickerFractions();

    // Per-partition statistics + featurization over the same TPC-H table,
    // and a PS3 model trained on a disjoint generated workload — the
    // serving-path funnel consumes exactly what the offline pipeline
    // maintains.
    stats::StatsOptions stat_opts;
    for (const auto& name : bundle.spec.groupby_columns) {
      stat_opts.grouping_columns.push_back(
          static_cast<size_t>(laid_out->schema().FindColumn(name)));
    }
    stats::TableStats pk_stats = stats::StatsBuilder(stat_opts).Build(table);
    featurize::Featurizer pk_featurizer(laid_out->schema(), &pk_stats);
    core::PickerContext pk_ctx{&table, &pk_stats, &pk_featurizer};
    core::Ps3Model pk_model;
    bool want_ps3 = false;
    for (const auto& m : picker_modes) want_ps3 |= (m == "ps3");
    if (want_ps3) {
      const size_t train_q = bench::EnvSizeScalar("PS3_TRAINQ", 64);
      core::TrainingData tdata =
          core::BuildTrainingData(pk_ctx, gen.GenerateSet(train_q, 101));
      core::Ps3Options popts;
      popts.feature_selection.restarts = 1;
      popts.feature_selection.eval_queries = 5;
      pk_model = core::TrainPs3(pk_ctx, tdata, popts);
    }

    // Cold scans cost ~partitions x delay per query; sweep a small fixed
    // query subset, with resident exact answers as the error reference.
    const std::vector<query::Query> pk_queries(
        queries.begin(),
        queries.begin() + std::min<size_t>(queries.size(), 4));
    std::vector<query::QueryAnswer> pk_exact;
    for (const auto& q : pk_queries) {
      pk_exact.push_back(
          query::ExactAnswer(q, query::EvaluateAllPartitions(q, table)));
    }
    const double pk_rows_total =
        static_cast<double>(rows) * static_cast<double>(pk_queries.size());

    char dir_tmpl[] = "/tmp/ps3_pick_benchXXXXXX";
    if (mkdtemp(dir_tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::abort();
    }
    if (!io::PartitionStore::Spill(table, dir_tmpl).ok()) std::abort();
    io::PartitionStore::Options sopts;
    sopts.simulated_load_delay_us = pk_delay_us;
    sopts.simulated_load_bandwidth_mbps = pk_mbps;
    auto probe_r = io::PartitionStore::Open(dir_tmpl, sopts);
    if (!probe_r.ok()) std::abort();
    sopts.cache_budget_bytes =
        std::max<size_t>((*probe_r)->total_bytes() / 2, 1);
    auto store_r = io::PartitionStore::Open(dir_tmpl, sopts);
    if (!store_r.ok()) std::abort();
    io::PartitionStore& store = **store_r;

    runtime::QueryScheduler scheduler;
    io::PrefetchPipeline pipeline(&store, &scheduler);
    io::ColdShardedSource cold(&store, pk_shards,
                               storage::ShardAssignment::kRange, &pipeline);

    query::ExecOptions pexec;
    pexec.policy = query::ExecPolicy::kVectorized;
    pexec.num_threads = static_cast<int>(wide);
    pexec.simd = runtime::SimdLevel::kAuto;

    const core::ExactPicker exact_picker(table.num_partitions());
    const core::RandomPicker random_picker(pk_ctx);
    const core::Ps3Picker ps3_picker(pk_ctx, &pk_model);

    // Correctness gate: the approximate path with the exact picker must
    // reproduce Submit's answer bit for bit before any row is reported.
    if (!pk_queries.empty()) {
      auto expect_bits = [](const query::QueryAnswer& a,
                            const query::QueryAnswer& b) {
        if (a.size() != b.size()) std::abort();
        for (const auto& [key, vals] : a) {
          auto it = b.find(key);
          if (it == b.end() || vals.size() != it->second.size()) std::abort();
          for (size_t x = 0; x < vals.size(); ++x) {
            if (std::memcmp(&vals[x], &it->second[x], sizeof(double)) != 0) {
              std::abort();
            }
          }
        }
      };
      query::QueryAnswer via_submit =
          scheduler.Submit(pk_queries[0], cold, pexec).get();
      runtime::ApproxAnswer via_approx =
          scheduler
              .SubmitApproximate(pk_queries[0], cold, exact_picker,
                                 {/*sampling_fraction=*/1.0, /*seed=*/1},
                                 pexec)
              .get();
      expect_bits(via_submit, via_approx.value);
      expect_bits(pk_exact[0], via_approx.value);
    }

    struct PickRow {
      std::string picker;
      double fraction;
      double secs = 0.0;
      uint64_t bytes_read = 0;
      uint64_t planned_bytes = 0;
      double scanned_frac = 0.0;
      double avg_rel_error = 0.0;
      double missed_groups = 0.0;
    };
    auto run_sweep = [&](const core::PartitionPicker& picker,
                         double fraction) {
      PickRow row;
      row.picker = picker.name();
      row.fraction = fraction;
      const uint64_t bytes_before = store.store_stats().bytes_loaded;
      for (size_t i = 0; i < pk_queries.size(); ++i) {
        pipeline.Drain();
        store.cache().Clear();
        runtime::ApproxOptions aopts;
        aopts.sampling_fraction = fraction;
        aopts.seed = 1000 + i;
        auto start = Clock::now();
        runtime::ApproxAnswer ans =
            scheduler
                .SubmitApproximate(pk_queries[i], cold, picker, aopts, pexec)
                .get();
        row.secs +=
            std::chrono::duration<double>(Clock::now() - start).count();
        row.planned_bytes += ans.bytes_moved;
        row.scanned_frac += static_cast<double>(ans.partitions_scanned) /
                            static_cast<double>(ans.partitions_total);
        query::ErrorMetrics err =
            query::ComputeErrorMetrics(pk_queries[i], pk_exact[i], ans.value);
        row.avg_rel_error += err.avg_rel_error;
        row.missed_groups += err.missed_groups;
      }
      pipeline.Drain();
      row.bytes_read = store.store_stats().bytes_loaded - bytes_before;
      const double nq = static_cast<double>(pk_queries.size());
      row.scanned_frac /= nq;
      row.avg_rel_error /= nq;
      row.missed_groups /= nq;
      return row;
    };

    std::vector<PickRow> pick_rows;
    for (const auto& mode : picker_modes) {
      if (mode == "exact") {
        // One row: the exact picker reads everything at any fraction.
        pick_rows.push_back(run_sweep(exact_picker, 1.0));
      } else {
        const core::PartitionPicker& picker =
            mode == "random"
                ? static_cast<const core::PartitionPicker&>(random_picker)
                : ps3_picker;
        for (double f : fractions) pick_rows.push_back(run_sweep(picker, f));
      }
    }
    for (size_t i = 0; i < pick_rows.size(); ++i) {
      const PickRow& r = pick_rows[i];
      std::printf(
          "    {\"picker\": \"%s\", \"fraction\": %.3f, \"threads\": %zu, "
          "\"shards\": %zu, \"delay_us\": %zu, \"bandwidth_mbps\": %zu, "
          "\"seconds\": %.4f, \"rows_per_sec\": %.3e, "
          "\"bytes_read_per_row\": %.2f, \"planned_bytes_per_row\": %.2f, "
          "\"partitions_scanned_frac\": %.3f, \"avg_rel_error\": %.4f, "
          "\"missed_groups\": %.2f}%s\n",
          r.picker.c_str(), r.fraction, wide, pk_shards, pk_delay_us, pk_mbps,
          r.secs, pk_rows_total / r.secs,
          static_cast<double>(r.bytes_read) / pk_rows_total,
          static_cast<double>(r.planned_bytes) / pk_rows_total,
          r.scanned_frac, r.avg_rel_error, r.missed_groups,
          i + 1 < pick_rows.size() ? "," : "");
    }
  }
  std::printf("  ],\n");

  // Fault tolerance (PS3_IO=0 skips): exact cold scans through the
  // scheduler while the store's FaultInjector throws seeded transient
  // errors and latency spikes, swept over fault rate (PS3_FAULT_RATE,
  // 0 = the fault-free baseline), retry attempts (PS3_RETRY, 1 = retries
  // off), and hedge delay (PS3_HEDGE_MS, 0 = hedging off), all under
  // PS3_FAULT_SEED so two runs see the identical failure sequence.
  // Successful answers are gated bit-identical to the resident scan —
  // faults may cost retries, latency, and failed queries, never bits.
  std::printf("  \"fault_results\": [\n");
  if (io_enabled) {
    const size_t ft_delay_us =
        bench::EnvSizeScalar("PS3_IO_DELAY_US", 1500, /*min_value=*/0);
    const size_t ft_shards =
        *std::max_element(shard_counts.begin(), shard_counts.end());
    const std::vector<double> fault_rates = bench::BenchFaultRates();
    const uint64_t fault_seed = bench::BenchFaultSeed();
    const std::vector<size_t> retry_attempts = bench::BenchRetryAttempts();
    const std::vector<size_t> hedge_delays_ms = bench::BenchHedgeDelaysMs();
    constexpr int kFaultReps = 3;

    const std::vector<query::Query> ft_queries(
        queries.begin(),
        queries.begin() + std::min<size_t>(queries.size(), 4));
    std::vector<query::QueryAnswer> ft_exact;
    for (const auto& q : ft_queries) {
      ft_exact.push_back(
          query::ExactAnswer(q, query::EvaluateAllPartitions(q, table)));
    }

    char dir_tmpl[] = "/tmp/ps3_fault_benchXXXXXX";
    if (mkdtemp(dir_tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::abort();
    }
    if (!io::PartitionStore::Spill(table, dir_tmpl).ok()) std::abort();

    auto expect_bits = [](const query::QueryAnswer& a,
                          const query::QueryAnswer& b) {
      if (a.size() != b.size()) std::abort();
      for (const auto& [key, vals] : a) {
        auto it = b.find(key);
        if (it == b.end() || vals.size() != it->second.size()) std::abort();
        for (size_t x = 0; x < vals.size(); ++x) {
          if (std::memcmp(&vals[x], &it->second[x], sizeof(double)) != 0) {
            std::abort();
          }
        }
      }
    };
    auto percentile_ms = [](std::vector<double> v, double q) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      const size_t idx = std::min(
          v.size() - 1,
          static_cast<size_t>(q * static_cast<double>(v.size())));
      return v[idx] * 1000.0;
    };

    struct FaultCfg {
      double rate;
      size_t attempts;
      size_t hedge_ms;
    };
    std::vector<FaultCfg> cfgs;
    for (double rate : fault_rates) {
      for (size_t attempts : retry_attempts) {
        for (size_t hedge_ms : hedge_delays_ms) {
          cfgs.push_back({rate, attempts, hedge_ms});
        }
      }
    }
    for (size_t ci = 0; ci < cfgs.size(); ++ci) {
      const FaultCfg& cfg = cfgs[ci];
      io::PartitionStore::Options sopts;
      sopts.simulated_load_delay_us = ft_delay_us;
      if (cfg.rate > 0.0) {
        io::FaultPlan plan;
        plan.seed = fault_seed;
        plan.transient_rate = cfg.rate;
        plan.latency_rate = cfg.rate;
        // Spikes must dwarf the base RTT, or a hedged duplicate read has
        // nothing to win against.
        plan.latency_spike_us = std::max<size_t>(2000, ft_delay_us * 4);
        sopts.faults = std::make_shared<io::FaultInjector>(std::move(plan));
      }
      sopts.retry.max_attempts = static_cast<int>(cfg.attempts);
      sopts.hedge.enabled = cfg.hedge_ms > 0;
      sopts.hedge.fixed_delay_us = cfg.hedge_ms * 1000;
      auto store_r = io::PartitionStore::Open(dir_tmpl, sopts);
      if (!store_r.ok()) std::abort();
      io::PartitionStore& store = **store_r;

      runtime::QueryScheduler scheduler;
      io::ColdShardedSource cold(&store, ft_shards);
      query::ExecOptions fopts;
      fopts.policy = query::ExecPolicy::kVectorized;
      fopts.num_threads = static_cast<int>(wide);
      fopts.simd = runtime::SimdLevel::kAuto;

      size_t successes = 0;
      size_t attempts_total = 0;
      double success_secs = 0.0;
      std::vector<double> cold_secs;
      for (int rep = 0; rep < kFaultReps; ++rep) {
        for (size_t i = 0; i < ft_queries.size(); ++i) {
          store.cache().Clear();
          ++attempts_total;
          auto start = Clock::now();
          try {
            query::QueryAnswer ans =
                scheduler.Submit(ft_queries[i], cold, fopts).get();
            const double secs =
                std::chrono::duration<double>(Clock::now() - start).count();
            expect_bits(ft_exact[i], ans);
            ++successes;
            success_secs += secs;
            cold_secs.push_back(secs);
          } catch (const std::exception&) {
            // Retry-exhausted load: the query fails cleanly (a failure,
            // never a wrong answer) and counts against success_rate.
          }
        }
      }
      const io::StoreStats st = store.store_stats();
      const double success_rows =
          static_cast<double>(rows) * static_cast<double>(successes);
      std::printf(
          "    {\"fault_rate\": %.3f, \"fault_seed\": %llu, "
          "\"max_attempts\": %zu, \"hedge_ms\": %zu, \"threads\": %zu, "
          "\"shards\": %zu, \"delay_us\": %zu, \"queries\": %zu, "
          "\"successes\": %zu, \"success_rate\": %.3f, "
          "\"cold_p50_ms\": %.2f, \"cold_p99_ms\": %.2f, "
          "\"rows_per_sec\": %.3e, \"retries\": %llu, "
          "\"transient_errors\": %llu, \"load_errors\": %llu, "
          "\"hedged_loads\": %llu, \"hedge_wins\": %llu}%s\n",
          cfg.rate, static_cast<unsigned long long>(fault_seed), cfg.attempts,
          cfg.hedge_ms, wide, ft_shards, ft_delay_us, attempts_total,
          successes,
          attempts_total > 0
              ? static_cast<double>(successes) /
                    static_cast<double>(attempts_total)
              : 0.0,
          percentile_ms(cold_secs, 0.50), percentile_ms(cold_secs, 0.99),
          success_secs > 0.0 ? success_rows / success_secs : 0.0,
          static_cast<unsigned long long>(st.retries),
          static_cast<unsigned long long>(st.transient_errors),
          static_cast<unsigned long long>(st.load_errors),
          static_cast<unsigned long long>(st.hedged_loads),
          static_cast<unsigned long long>(st.hedge_wins),
          ci + 1 < cfgs.size() ? "," : "");
    }
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_vectorized_1t\": %.2f,\n",
              vec_best_1t > 0.0 ? scalar_1t / vec_best_1t : 0.0);
  std::printf("  \"speedup_simd_kernels_1t\": %.2f,\n",
              vec_best_1t > 0.0 ? vec_pack_1t / vec_best_1t : 0.0);
  std::printf("  \"speedup_vectorized_wide\": %.2f\n",
              vec_best_wide > 0.0 ? scalar_1t / vec_best_wide : 0.0);
  std::printf("}\n");
  return 0;
}
