// Scan-path throughput: rows/sec of exact whole-table evaluation on the
// TPC-H-style workload, swept over execution policy (scalar interpreter vs
// vectorized engine), worker-lane count (resident work-stealing pool),
// predicate kernel (scalar word-packing vs explicit AVX2), and shard count
// (multi-shard fan-out over a ShardedTable). Emits JSON so successive PRs
// can track the perf trajectory. Scale with PS3_ROWS / PS3_PARTS /
// PS3_TESTQ; pin sweep dimensions with PS3_THREADS / PS3_SHARDS.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/evaluator.h"
#include "runtime/simd.h"
#include "storage/sharded_table.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

double TimeAll(const std::vector<ps3::query::Query>& queries,
               const ps3::storage::PartitionedTable& table,
               const ps3::query::ExecOptions& opts) {
  auto start = Clock::now();
  for (const auto& q : queries) {
    auto answers = ps3::query::EvaluateAllPartitions(q, table, opts);
    // Keep the optimizer honest.
    if (answers.empty()) std::abort();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double TimeAllSharded(const std::vector<ps3::query::Query>& queries,
                      const ps3::storage::ShardedTable& table,
                      const ps3::query::ExecOptions& opts) {
  auto start = Clock::now();
  for (const auto& q : queries) {
    auto answers = ps3::query::EvaluateAllPartitions(q, table, opts);
    if (answers.empty()) std::abort();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void ExpectIdentical(const std::vector<ps3::query::PartitionAnswer>& a,
                     const std::vector<ps3::query::PartitionAnswer>& b) {
  if (a.size() != b.size()) std::abort();
  for (size_t p = 0; p < a.size(); ++p) {
    if (a[p].size() != b[p].size()) std::abort();
    for (const auto& [key, accs] : a[p]) {
      auto it = b[p].find(key);
      if (it == b[p].end()) std::abort();
      for (size_t x = 0; x < accs.size(); ++x) {
        if (accs[x].sum != it->second[x].sum ||
            accs[x].count != it->second[x].count) {
          std::abort();
        }
      }
    }
  }
}

}  // namespace

int main() {
  using namespace ps3;

  const size_t rows = EnvSize("PS3_ROWS", 200000);
  const size_t partitions = EnvSize("PS3_PARTS", 400);
  const size_t n_queries = EnvSize("PS3_TESTQ", 16);
  const std::vector<size_t> thread_counts = bench::BenchThreadCounts();
  const std::vector<size_t> shard_counts = bench::BenchShardCounts();
  const bool avx2 = runtime::Avx2Available();

  auto bundle = workload::MakeTpchStar(rows, /*seed=*/7);
  auto sorted = bundle.table->SortedBy(bundle.default_sort);
  auto laid_out = std::make_shared<storage::Table>(std::move(sorted).value());
  storage::PartitionedTable table(laid_out, partitions);

  workload::QueryGenerator gen(laid_out.get(), bundle.spec);
  std::vector<query::Query> queries = gen.GenerateSet(n_queries, /*seed=*/41);

  // Correctness gate: every engine configuration must agree bit-wise with
  // the scalar reference before any throughput number is worth reporting.
  for (const auto& q : queries) {
    auto scalar = query::EvaluateAllPartitions(
        q, table, {query::ExecPolicy::kScalar, 1});
    query::ExecOptions vopts;
    vopts.policy = query::ExecPolicy::kVectorized;
    vopts.num_threads = 1;
    vopts.simd = runtime::SimdLevel::kNone;
    ExpectIdentical(scalar, query::EvaluateAllPartitions(q, table, vopts));
    if (avx2) {
      vopts.simd = runtime::SimdLevel::kAvx2;
      ExpectIdentical(scalar, query::EvaluateAllPartitions(q, table, vopts));
    }
  }
  if (!queries.empty()) {
    // Sharded fan-out gate on the first query across all shard counts.
    query::ExecOptions vopts;
    vopts.num_threads = 4;
    auto flat = query::EvaluateAllPartitions(queries[0], table, vopts);
    for (size_t shards : shard_counts) {
      storage::ShardedTable st(table, shards);
      ExpectIdentical(flat,
                      query::EvaluateAllPartitions(queries[0], st, vopts));
    }
  }

  struct Config {
    query::ExecPolicy policy;
    size_t threads;
    runtime::SimdLevel simd;
    size_t shards;  // 0 = flat table
  };
  std::vector<Config> configs;
  for (size_t t : thread_counts) {
    configs.push_back({query::ExecPolicy::kScalar, t,
                       runtime::SimdLevel::kNone, 0});
  }
  for (size_t t : thread_counts) {
    configs.push_back({query::ExecPolicy::kVectorized, t,
                       runtime::SimdLevel::kNone, 0});
    if (avx2) {
      configs.push_back({query::ExecPolicy::kVectorized, t,
                         runtime::SimdLevel::kAvx2, 0});
    }
  }
  // Sharded fan-out at the widest lane count, best kernel.
  const size_t wide =
      *std::max_element(thread_counts.begin(), thread_counts.end());
  for (size_t shards : shard_counts) {
    configs.push_back({query::ExecPolicy::kVectorized, wide,
                       runtime::SimdLevel::kAuto, shards});
  }

  const double total_rows =
      static_cast<double>(rows) * static_cast<double>(queries.size());

  std::printf("{\n");
  std::printf("  \"bench\": \"evaluator_throughput\",\n");
  std::printf("  \"dataset\": \"tpch\",\n");
  std::printf("  \"rows\": %zu,\n", rows);
  std::printf("  \"partitions\": %zu,\n", partitions);
  std::printf("  \"queries\": %zu,\n", queries.size());
  std::printf("  \"avx2_available\": %s,\n", avx2 ? "true" : "false");
  std::printf("  \"results\": [\n");

  double scalar_1t = 0.0, vec_pack_1t = 0.0, vec_best_1t = 0.0,
         vec_best_wide = 0.0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& cfg = configs[i];
    query::ExecOptions opts;
    opts.policy = cfg.policy;
    opts.num_threads = static_cast<int>(cfg.threads);
    opts.simd = cfg.simd;

    double secs;
    if (cfg.shards > 0) {
      storage::ShardedTable st(table, cfg.shards);
      TimeAllSharded(queries, st, opts);  // warm-up (page-in, scratch)
      secs = TimeAllSharded(queries, st, opts);
    } else {
      TimeAll(queries, table, opts);  // warm-up (page-in, scratch alloc)
      secs = TimeAll(queries, table, opts);
    }
    double rps = total_rows / secs;

    const char* name =
        cfg.policy == query::ExecPolicy::kScalar ? "scalar" : "vectorized";
    const char* kernel = cfg.policy == query::ExecPolicy::kScalar
                             ? "interpreter"
                             : (cfg.simd == runtime::SimdLevel::kNone
                                    ? "pack64"
                                    : (avx2 ? "avx2" : "pack64"));
    // The *_1t summary baselines are genuinely single-threaded: if
    // PS3_THREADS omits 1, they stay 0 and the speedups report 0.0
    // rather than mislabeling a wider config.
    if (cfg.shards == 0 && cfg.policy == query::ExecPolicy::kScalar &&
        cfg.threads == 1) {
      scalar_1t = secs;
    }
    if (cfg.shards == 0 && cfg.policy == query::ExecPolicy::kVectorized &&
        cfg.threads == 1) {
      if (cfg.simd == runtime::SimdLevel::kNone) {
        vec_pack_1t = secs;
      }
      // Last 1-lane vectorized config is the best kernel available.
      vec_best_1t = secs;
    }
    if (cfg.shards == 0 && cfg.policy == query::ExecPolicy::kVectorized &&
        cfg.threads == wide) {
      vec_best_wide = secs;
    }
    std::printf(
        "    {\"policy\": \"%s\", \"threads\": %zu, \"kernel\": \"%s\", "
        "\"shards\": %zu, \"seconds\": %.4f, \"rows_per_sec\": %.3e}%s\n",
        name, cfg.threads, kernel, cfg.shards, secs, rps,
        i + 1 < configs.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_vectorized_1t\": %.2f,\n",
              vec_best_1t > 0.0 ? scalar_1t / vec_best_1t : 0.0);
  std::printf("  \"speedup_simd_kernels_1t\": %.2f,\n",
              vec_best_1t > 0.0 ? vec_pack_1t / vec_best_1t : 0.0);
  std::printf("  \"speedup_vectorized_wide\": %.2f\n",
              vec_best_wide > 0.0 ? scalar_1t / vec_best_wide : 0.0);
  std::printf("}\n");
  return 0;
}
