// Scan-path throughput: rows/sec of exact whole-table evaluation under the
// scalar and vectorized execution policies at 1/4/8 threads, on the
// TPC-H-style workload. Emits JSON so successive PRs can track the perf
// trajectory. Scale with PS3_ROWS / PS3_PARTS / PS3_TESTQ.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

double TimeAll(const std::vector<ps3::query::Query>& queries,
               const ps3::storage::PartitionedTable& table,
               const ps3::query::ExecOptions& opts) {
  auto start = Clock::now();
  for (const auto& q : queries) {
    auto answers = ps3::query::EvaluateAllPartitions(q, table, opts);
    // Keep the optimizer honest.
    if (answers.empty()) std::abort();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace ps3;

  const size_t rows = EnvSize("PS3_ROWS", 200000);
  const size_t partitions = EnvSize("PS3_PARTS", 400);
  const size_t n_queries = EnvSize("PS3_TESTQ", 16);

  auto bundle = workload::MakeTpchStar(rows, /*seed=*/7);
  auto sorted = bundle.table->SortedBy(bundle.default_sort);
  auto laid_out = std::make_shared<storage::Table>(std::move(sorted).value());
  storage::PartitionedTable table(laid_out, partitions);

  workload::QueryGenerator gen(laid_out.get(), bundle.spec);
  std::vector<query::Query> queries = gen.GenerateSet(n_queries, /*seed=*/41);

  // Correctness gate: the two policies must agree exactly before any
  // throughput number is worth reporting.
  for (const auto& q : queries) {
    auto scalar = query::EvaluateAllPartitions(
        q, table, {query::ExecPolicy::kScalar, 1});
    auto vec = query::EvaluateAllPartitions(
        q, table, {query::ExecPolicy::kVectorized, 1});
    if (scalar.size() != vec.size()) std::abort();
    for (size_t p = 0; p < scalar.size(); ++p) {
      if (scalar[p].size() != vec[p].size()) std::abort();
      for (const auto& [key, accs] : scalar[p]) {
        auto it = vec[p].find(key);
        if (it == vec[p].end()) std::abort();
        for (size_t a = 0; a < accs.size(); ++a) {
          if (accs[a].sum != it->second[a].sum ||
              accs[a].count != it->second[a].count) {
            std::abort();
          }
        }
      }
    }
  }

  struct Config {
    query::ExecPolicy policy;
    int threads;
  };
  const std::vector<Config> configs = {
      {query::ExecPolicy::kScalar, 1},     {query::ExecPolicy::kScalar, 4},
      {query::ExecPolicy::kScalar, 8},     {query::ExecPolicy::kVectorized, 1},
      {query::ExecPolicy::kVectorized, 4}, {query::ExecPolicy::kVectorized, 8},
  };

  const double total_rows =
      static_cast<double>(rows) * static_cast<double>(queries.size());

  std::printf("{\n");
  std::printf("  \"bench\": \"evaluator_throughput\",\n");
  std::printf("  \"dataset\": \"tpch\",\n");
  std::printf("  \"rows\": %zu,\n", rows);
  std::printf("  \"partitions\": %zu,\n", partitions);
  std::printf("  \"queries\": %zu,\n", queries.size());
  std::printf("  \"results\": [\n");

  double scalar_1t = 0.0, vec_1t = 0.0, vec_8t = 0.0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& cfg = configs[i];
    query::ExecOptions opts{cfg.policy, cfg.threads};
    TimeAll(queries, table, opts);  // warm-up (page-in, scratch alloc)
    double secs = TimeAll(queries, table, opts);
    double rps = total_rows / secs;
    const char* name =
        cfg.policy == query::ExecPolicy::kScalar ? "scalar" : "vectorized";
    if (cfg.policy == query::ExecPolicy::kScalar && cfg.threads == 1) {
      scalar_1t = secs;
    }
    if (cfg.policy == query::ExecPolicy::kVectorized && cfg.threads == 1) {
      vec_1t = secs;
    }
    if (cfg.policy == query::ExecPolicy::kVectorized && cfg.threads == 8) {
      vec_8t = secs;
    }
    std::printf(
        "    {\"policy\": \"%s\", \"threads\": %d, \"seconds\": %.4f, "
        "\"rows_per_sec\": %.3e}%s\n",
        name, cfg.threads, secs, rps, i + 1 < configs.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_vectorized_1t\": %.2f,\n",
              vec_1t > 0.0 ? scalar_1t / vec_1t : 0.0);
  std::printf("  \"speedup_vectorized_8t\": %.2f\n",
              vec_8t > 0.0 ? scalar_1t / vec_8t : 0.0);
  std::printf("}\n");
  return 0;
}
