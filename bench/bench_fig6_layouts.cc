// Figure 6: PS3 vs baselines on the paper's six alternate dataset/layout
// combinations (TPCDS sorted by p_promo_sk / cs_net_profit, Aria by
// AppInfo_Version / IngestionTime, KDD by service+flag / src+dst bytes).
#include <memory>

#include "bench_common.h"

namespace ps3::bench {
namespace {

void RunLayout(const std::string& dataset,
               const std::vector<std::string>& layout) {
  auto cfg = BenchConfig(dataset, 40000, 200);
  cfg.layout = layout;
  cfg.train_queries = 48;
  cfg.test_queries = 20;
  eval::Experiment exp(cfg);
  exp.TrainModels();

  std::string title = "Figure 6 — " + dataset + " sorted by ";
  for (const auto& c : layout) title += c + " ";
  eval::Report report(title + "(avg_rel_err)");
  std::vector<std::string> header{"method"};
  for (double b : BenchBudgets()) header.push_back(eval::Pct(b, 0));
  report.SetHeader(header);

  std::vector<std::pair<std::string, std::unique_ptr<core::PartitionPicker>>>
      methods;
  methods.emplace_back("random", exp.MakeRandom());
  methods.emplace_back("random+filter", exp.MakeRandomFilter());
  methods.emplace_back("lss", exp.MakeLss());
  methods.emplace_back("ps3", exp.MakePs3());
  for (const auto& [name, picker] : methods) {
    std::vector<std::string> cells{name};
    for (double b : BenchBudgets()) {
      int runs = name == "ps3" ? 1 : kRuns;
      cells.push_back(eval::Num(exp.Evaluate(*picker, b, runs).avg_rel_error));
    }
    report.AddRow(cells);
  }
  report.Print();
}

}  // namespace
}  // namespace ps3::bench

int main() {
  ps3::bench::RunLayout("tpcds", {"p_promo_sk"});
  ps3::bench::RunLayout("tpcds", {"cs_net_profit"});
  ps3::bench::RunLayout("aria", {"AppInfo_Version"});
  ps3::bench::RunLayout("aria", {"PipelineInfo_IngestionTime"});
  ps3::bench::RunLayout("kdd", {"service", "flag"});
  ps3::bench::RunLayout("kdd", {"src_bytes", "dst_bytes"});
  return 0;
}
