// Extension ablation (not a paper exhibit): sensitivity of PS3 to the
// sketch budget knobs the paper fixes — AKMV k (128), histogram buckets
// (10) and heavy-hitter support (1%). For each setting we report the
// per-partition storage cost and the end-to-end PS3 error at a 5% budget
// on the Aria dataset, quantifying the storage/accuracy trade-off behind
// §3.1's "lightweight" design point.
#include <memory>

#include "bench_common.h"
#include "core/ps3_trainer.h"
#include "stats/stats_builder.h"

namespace ps3::bench {
namespace {

struct Setting {
  std::string label;
  int akmv_k;
  int hist_buckets;
  double hh_support;
};

void RunSetting(const Setting& s, eval::Report* report) {
  auto cfg = BenchConfig("aria", 60000, 300);
  cfg.train_queries = 48;
  cfg.test_queries = 20;
  cfg.ps3.feature_selection.enabled = false;

  // Build the experiment manually so the stats options can vary. The
  // Experiment class hard-codes defaults; here we mirror its setup.
  eval::Experiment exp(cfg);
  // Re-build statistics with the ablated sketch parameters.
  stats::StatsOptions stats_opts;
  stats_opts.akmv_k = s.akmv_k;
  stats_opts.histogram_buckets = s.hist_buckets;
  stats_opts.hh_support = s.hh_support;
  const auto& schema = exp.table().schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (exp.stats().has_bitmap(c)) stats_opts.grouping_columns.push_back(c);
  }
  stats::TableStats stats =
      stats::StatsBuilder(stats_opts).Build(exp.table());
  featurize::Featurizer featurizer(schema, &stats);
  core::PickerContext ctx{&exp.table(), &stats, &featurizer};

  // Retrain on the ablated features; reuse the experiment's queries.
  core::TrainingData data = core::BuildTrainingData(
      ctx, std::vector<query::Query>(exp.training_data().queries));
  core::Ps3Model model = core::TrainPs3(ctx, data, cfg.ps3);
  core::Ps3Picker picker(ctx, &model);

  // Error at a 5% budget over the held-out tests.
  query::ErrorMetrics acc;
  size_t budget = exp.BudgetFromFraction(0.05);
  for (const auto& t : exp.tests()) {
    RandomEngine rng(17);
    core::Selection sel = picker.Pick(t.query, budget, &rng, nullptr);
    auto est = query::CombineWeighted(t.query, t.answers, sel.parts);
    acc += query::ComputeErrorMetrics(t.query, t.exact, est);
  }
  acc /= static_cast<double>(exp.tests().size());

  auto storage = stats.ComputeStorageReport();
  report->AddRow({s.label, eval::Num(storage.total_kb, 1),
                  eval::Num(acc.avg_rel_error), eval::Num(acc.missed_groups)});
}

}  // namespace
}  // namespace ps3::bench

int main() {
  using namespace ps3;
  eval::Report report("Ablation — sketch budgets on Aria (PS3 at 5% "
                      "budget)");
  report.SetHeader({"setting", "stats KB/part", "avg_rel_err",
                    "missed_groups"});
  const std::vector<bench::Setting> settings = {
      {"default (k=128, B=10, s=1%)", 128, 10, 0.01},
      {"small AKMV (k=16)", 16, 10, 0.01},
      {"large AKMV (k=512)", 512, 10, 0.01},
      {"coarse histogram (B=4)", 128, 4, 0.01},
      {"fine histogram (B=32)", 128, 32, 0.01},
      {"loose HH support (5%)", 128, 10, 0.05},
      {"tight HH support (0.2%)", 128, 10, 0.002},
  };
  for (const auto& s : settings) bench::RunSetting(s, &report);
  report.Print();
  return 0;
}
