// Figure 4: lesion study and factor analysis on the Aria dataset.
// Top: PS3 with each component (clustering / outliers / regressors)
// disabled while the others stay on. Bottom: starting from random
// sampling, the filter plus each single component enabled on its own.
#include <memory>

#include "bench_common.h"

namespace ps3::bench {
namespace {

core::Ps3Model Variant(const core::Ps3Model& base, bool cluster,
                       bool outlier, bool regressor) {
  core::Ps3Model m = base;
  m.options.use_clustering = cluster;
  m.options.use_outliers = outlier;
  m.options.use_regressors = regressor;
  return m;
}

}  // namespace
}  // namespace ps3::bench

int main() {
  using namespace ps3;
  using bench::Variant;
  eval::Experiment exp(bench::BenchConfig("aria"));
  exp.TrainModels();
  const core::Ps3Model& full = exp.ps3_model();

  struct Row {
    std::string name;
    core::Ps3Model model;
  };
  std::vector<Row> lesions = {
      {"ps3 (full)", Variant(full, true, true, true)},
      {"w/o cluster", Variant(full, false, true, true)},
      {"w/o outlier", Variant(full, true, false, true)},
      {"w/o regressor", Variant(full, true, true, false)},
  };
  eval::Report lesion_report("Figure 4 (top) — Aria lesion study "
                             "(avg_rel_err)");
  std::vector<std::string> header{"method"};
  for (double b : bench::BenchBudgets()) header.push_back(eval::Pct(b, 0));
  lesion_report.SetHeader(header);
  for (const auto& row : lesions) {
    auto picker = exp.MakePs3With(&row.model);
    std::vector<std::string> cells{row.name};
    for (double b : bench::BenchBudgets()) {
      cells.push_back(eval::Num(exp.Evaluate(*picker, b, 2).avg_rel_error));
    }
    lesion_report.AddRow(cells);
  }
  lesion_report.Print();

  // Factor analysis: random -> +filter -> +single component (on top of the
  // filter, not cumulative).
  eval::Report factor_report("Figure 4 (bottom) — Aria factor analysis "
                             "(avg_rel_err)");
  factor_report.SetHeader(header);
  {
    auto random = exp.MakeRandom();
    std::vector<std::string> cells{"random"};
    for (double b : bench::BenchBudgets()) {
      cells.push_back(
          eval::Num(exp.Evaluate(*random, b, bench::kRuns).avg_rel_error));
    }
    factor_report.AddRow(cells);
  }
  std::vector<std::pair<std::string, core::Ps3Model>> factors = {
      {"+filter", Variant(full, false, false, false)},
      {"+outlier", Variant(full, false, true, false)},
      {"+regressor", Variant(full, false, false, true)},
      {"+cluster", Variant(full, true, false, false)},
  };
  for (const auto& [name, model] : factors) {
    auto picker = exp.MakePs3With(&model);
    std::vector<std::string> cells{name};
    for (double b : bench::BenchBudgets()) {
      cells.push_back(
          eval::Num(exp.Evaluate(*picker, b, 2).avg_rel_error));
    }
    factor_report.AddRow(cells);
  }
  factor_report.Print();
  return 0;
}
