// Table 6: area under the error curve (AUC, budget x avg_rel_err) for the
// clustering-only selection under different clustering algorithms: HAC
// with single linkage, HAC with Ward linkage, and k-means.
#include "bench_common.h"
#include "common/math_util.h"
#include "core/feature_selection.h"

namespace ps3::bench {
namespace {

double ClusteringAuc(const eval::Experiment& exp, core::ClusterAlgo algo) {
  const auto& data = exp.training_data();
  // A fixed subset of training queries, as in the feature-selection score.
  std::vector<size_t> queries;
  for (size_t i = 0; i < std::min<size_t>(8, data.num_queries()); ++i) {
    queries.push_back(i);
  }
  std::vector<bool> none(featurize::kNumStatKinds, false);
  std::vector<double> budgets = {0.05, 0.1, 0.2, 0.4};
  std::vector<double> errs;
  for (double b : budgets) {
    errs.push_back(core::EvaluateClusteringError(
        exp.ctx(), data, exp.ps3_model().normalizer, algo, none, queries, b,
        99));
  }
  // Percent-scale AUC like the paper's Table 6.
  return TrapezoidAuc(budgets, errs) * 100.0;
}

}  // namespace
}  // namespace ps3::bench

int main() {
  using namespace ps3;
  eval::Report report("Table 6 — clustering algorithm AUC (lower is "
                      "better)");
  report.SetHeader({"dataset", "HAC(single)", "HAC(ward)", "KMeans"});
  for (const char* dataset : {"tpcds", "aria", "kdd"}) {
    auto cfg = bench::BenchConfig(dataset, 40000, 200);
    cfg.train_queries = 32;
    cfg.test_queries = 4;
    cfg.ps3.feature_selection.enabled = false;
    cfg.ps3.gbdt.num_trees = 4;  // only the normalizer is needed
    eval::Experiment exp(cfg);
    exp.TrainModels();
    report.AddRow(
        {dataset,
         eval::Num(bench::ClusteringAuc(exp, core::ClusterAlgo::kHacSingle),
                   2),
         eval::Num(bench::ClusteringAuc(exp, core::ClusterAlgo::kHacWard),
                   2),
         eval::Num(bench::ClusteringAuc(exp, core::ClusterAlgo::kKMeans),
                   2)});
  }
  report.Print();
  return 0;
}
