// Table 7 (Appendix B.1): effect of the Algorithm 3 feature selection on
// the clustering AUC, for HAC (Ward) and k-means. Also prints the selected
// feature kinds per dataset (the appendix's per-dataset lists).
#include "bench_common.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "core/feature_selection.h"

namespace ps3::bench {
namespace {

double Auc(const eval::Experiment& exp, core::ClusterAlgo algo,
           const std::vector<bool>& excluded) {
  const auto& data = exp.training_data();
  std::vector<size_t> queries;
  for (size_t i = 0; i < std::min<size_t>(8, data.num_queries()); ++i) {
    queries.push_back(i);
  }
  std::vector<double> budgets = {0.05, 0.1, 0.2, 0.4};
  std::vector<double> errs;
  for (double b : budgets) {
    errs.push_back(core::EvaluateClusteringError(
        exp.ctx(), data, exp.ps3_model().normalizer, algo, excluded, queries,
        b, 99));
  }
  return TrapezoidAuc(budgets, errs) * 100.0;
}

std::string KeptKinds(const std::vector<bool>& excluded) {
  std::vector<std::string> kept;
  for (int k = 0; k < featurize::kNumStatKinds; ++k) {
    if (excluded[static_cast<size_t>(k)]) continue;
    kept.push_back(featurize::StatKindName(
        static_cast<featurize::StatKind>(k)));
  }
  return Join(kept, ", ");
}

}  // namespace
}  // namespace ps3::bench

int main() {
  using namespace ps3;
  eval::Report report("Table 7 — feature selection effect on clustering "
                      "AUC (lower is better)");
  report.SetHeader({"dataset", "HAC(ward)", "+feat sel", "KMeans",
                    "+feat sel"});
  std::vector<std::pair<std::string, std::string>> selected;
  for (const char* dataset : {"tpcds", "aria", "kdd"}) {
    auto cfg = bench::BenchConfig(dataset, 40000, 200);
    cfg.train_queries = 32;
    cfg.test_queries = 4;
    cfg.ps3.feature_selection.enabled = false;
    cfg.ps3.gbdt.num_trees = 4;
    eval::Experiment exp(cfg);
    exp.TrainModels();

    core::FeatureSelectionOptions fs_opts;
    fs_opts.restarts = 1;
    fs_opts.eval_queries = 5;
    auto excluded = core::SelectClusterFeatures(
        exp.ctx(), exp.training_data(), exp.ps3_model().normalizer,
        core::ClusterAlgo::kKMeans, fs_opts);
    std::vector<bool> none(featurize::kNumStatKinds, false);
    report.AddRow(
        {dataset,
         eval::Num(bench::Auc(exp, core::ClusterAlgo::kHacWard, none), 2),
         eval::Num(bench::Auc(exp, core::ClusterAlgo::kHacWard, excluded),
                   2),
         eval::Num(bench::Auc(exp, core::ClusterAlgo::kKMeans, none), 2),
         eval::Num(bench::Auc(exp, core::ClusterAlgo::kKMeans, excluded),
                   2)});
    selected.emplace_back(dataset, bench::KeptKinds(excluded));
  }
  report.Print();

  eval::Report kinds("Appendix B.1 — feature kinds kept for clustering");
  kinds.SetHeader({"dataset", "kept kinds"});
  for (const auto& [dataset, kept] : selected) {
    kinds.AddRow({dataset, kept});
  }
  kinds.Print();
  return 0;
}
