#include "common/status.h"

namespace ps3 {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace ps3
