#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ps3 {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  assert(!sorted.empty());
  q = Clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> ComponentwiseMedian(
    const std::vector<const std::vector<double>*>& rows) {
  assert(!rows.empty());
  const size_t dim = rows[0]->size();
  std::vector<double> median(dim);
  std::vector<double> buf(rows.size());
  for (size_t d = 0; d < dim; ++d) {
    for (size_t r = 0; r < rows.size(); ++r) buf[r] = (*rows[r])[d];
    size_t mid = buf.size() / 2;
    std::nth_element(buf.begin(), buf.begin() + mid, buf.end());
    if (buf.size() % 2 == 1) {
      median[d] = buf[mid];
    } else {
      double hi = buf[mid];
      double lo = *std::max_element(buf.begin(), buf.begin() + mid);
      median[d] = 0.5 * (lo + hi);
    }
  }
  return median;
}

double SquaredL2(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double TrapezoidAuc(const std::vector<double>& x,
                    const std::vector<double>& y) {
  assert(x.size() == y.size());
  double auc = 0.0;
  for (size_t i = 1; i < x.size(); ++i) {
    auc += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return auc;
}

double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

bool ApproxEqual(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace ps3
