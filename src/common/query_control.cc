#include "common/query_control.h"

namespace ps3 {

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kBatch:
      return "batch";
    case QueryClass::kInteractive:
      return "interactive";
  }
  return "unknown";
}

Status CancelToken::Check() const {
  if (cancelled()) return Status::Cancelled("query cancelled");
  const int64_t deadline_us = deadline_us_.load(std::memory_order_acquire);
  if (deadline_us != 0) {
    const int64_t now_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now_us >= deadline_us) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
  }
  return Status::OK();
}

}  // namespace ps3
