// Small numeric helpers shared across modules.
#ifndef PS3_COMMON_MATH_UTIL_H_
#define PS3_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace ps3 {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Population standard deviation; 0 for fewer than 2 elements.
double StdDev(const std::vector<double>& v);

/// Linear-interpolated quantile (q in [0,1]) of a *sorted* vector.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Component-wise median of a set of equal-length vectors (used to pick
/// cluster exemplars). Vectors must be non-empty and same-sized.
std::vector<double> ComponentwiseMedian(
    const std::vector<const std::vector<double>*>& rows);

/// Squared Euclidean distance between two equal-length vectors.
double SquaredL2(const std::vector<double>& a, const std::vector<double>& b);

/// Trapezoidal area under a piecewise-linear curve given as (x, y) points
/// sorted by x. Mirrors the paper's error-curve AUC metric (Tables 6, 7).
double TrapezoidAuc(const std::vector<double>& x, const std::vector<double>& y);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

/// True if |a - b| <= tol * max(1, |a|, |b|).
bool ApproxEqual(double a, double b, double tol = 1e-9);

}  // namespace ps3

#endif  // PS3_COMMON_MATH_UTIL_H_
