// Retry, backoff, and circuit-breaking vocabulary for unreliable
// (remote / disaggregated) storage.
//
// These types live in common/ because they cross layers the same way the
// query-control types do: the io layer's cold-load path executes them,
// tests and the bench configure them, and nothing here may depend on io/
// or runtime/.
//
// Everything is deterministic by construction: backoff jitter is a hash
// of (seed, salt, attempt) — not a live RNG — so the same retry policy
// replays the same sleep schedule, which is what lets the fault-injection
// tests assert timing-adjacent behavior without flaking. Backoff sleeps
// are cooperative: SleepWithCancel polls the query's CancelToken in
// slices, so a retry loop can never outlive the query's deadline by more
// than one poll period.
#ifndef PS3_COMMON_RETRY_H_
#define PS3_COMMON_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <mutex>

#include "common/query_control.h"
#include "common/status.h"

namespace ps3 {

/// Retry policy for one cold-load step (one claimed batch of column
/// segments). Attempts are *total* tries: max_attempts = 1 disables
/// retries and reproduces the single-shot behavior exactly.
struct RetryPolicy {
  /// Total load attempts per step (>= 1). Transient failures
  /// (Status::Unavailable) are retried up to this count; corruption gets
  /// exactly one evict-and-refetch regardless (see the store), and lost
  /// partitions are never retried.
  int max_attempts = 3;
  /// First backoff, before deterministic jitter.
  size_t backoff_base_us = 200;
  /// Exponential growth factor between attempts.
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff sleep.
  size_t backoff_cap_us = 20000;
  /// Jitter as a fraction of the computed backoff, in [0, 1]: the actual
  /// sleep is backoff * (1 + jitter_fraction * u) where u in [0, 1) is a
  /// hash of (jitter_seed, salt, attempt). 0 disables jitter.
  double jitter_fraction = 0.25;
  /// Seeds the deterministic jitter hash. Same seed + same salts =>
  /// bit-identical backoff schedule.
  uint64_t jitter_seed = 0x9E3779B9;
  /// Wall-clock budget for retrying one load step, backoffs included;
  /// once exceeded the last error surfaces. 0 = unlimited (the query's
  /// own deadline still bounds everything via the CancelToken).
  size_t retry_time_budget_us = 500000;
  /// Budget of *extra* encoded bytes retries may re-read per load step
  /// (attempt 1 is free; each retry charges the pass's encoded size).
  /// 0 = unlimited.
  size_t retry_byte_budget = 0;
};

/// Deterministic backoff for retry number `retry` (1 = first re-attempt):
/// min(cap, base * multiplier^(retry-1)) plus hashed jitter. `salt`
/// distinguishes concurrent retry chains (e.g. partition index) so their
/// jitters decorrelate without sharing any RNG state.
size_t BackoffUs(const RetryPolicy& policy, int retry, uint64_t salt);

/// Sleeps `us` microseconds in short slices, polling `cancel` (nullable)
/// between slices. Returns OK after a full sleep, or the token's Status
/// as soon as it fires — a backoff can overshoot a deadline by at most
/// one slice.
Status SleepWithCancel(size_t us, const CancelToken* cancel);

/// Circuit-breaker policy for one store. The breaker sits *above* the
/// retry loop: it counts load steps that failed after exhausting their
/// retries, so threshold N means N consecutive hopeless loads, not N
/// transient blips.
struct CircuitBreakerPolicy {
  /// Consecutive failed load steps that open the circuit. 0 disables the
  /// breaker entirely (never opens, never rejects).
  int failure_threshold = 8;
  /// How long an open circuit fails fast before admitting one half-open
  /// probe. 0 = the very next load is the probe (deterministic tests).
  size_t open_duration_us = 100000;
};

/// Thread-safe consecutive-failure circuit breaker.
///
/// Closed: everything admitted; a success resets the failure run.
/// Open:   Admit() fails fast until open_duration has passed.
/// Half-open: exactly one probe is admitted; its success closes the
/// circuit, its failure re-opens it for another cooldown. Aborted loads
/// (cancel/deadline) must not be recorded at all — they say nothing
/// about the store's health.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerPolicy policy) : policy_(policy) {}

  /// True if a load may proceed (closed, or claimed the half-open
  /// probe); false to fail fast with Status::Unavailable. When
  /// `claimed_probe` is non-null it is set to whether THIS admission
  /// took the exclusive half-open probe slot — the caller must hand
  /// that flag back to RecordAbort if the load aborts. Every admitted
  /// load must report back exactly once — RecordSuccess, RecordFailure,
  /// or RecordAbort — or a claimed probe slot leaks and the breaker
  /// rejects forever.
  bool Admit(bool* claimed_probe = nullptr);
  /// Outcome of an admitted load step (after its retries resolved).
  void RecordSuccess();
  void RecordFailure();
  /// An admitted load that aborted (cancel/deadline) before resolving:
  /// says nothing about the store's health, so nothing is counted — but
  /// if the aborted load held the half-open probe slot (`claimed_probe`
  /// from its Admit call), the slot is released (back to open, cooldown
  /// already elapsed) so the next Admit() can probe again instead of
  /// wedging half-open forever.
  void RecordAbort(bool claimed_probe);

  State state() const;
  /// Transitions to open so far, including half-open -> open re-opens
  /// after a failed probe (so one outage with N failed probes counts
  /// 1 + N).
  uint64_t opens() const;
  /// Loads rejected while open.
  uint64_t open_rejects() const;

 private:
  using Clock = std::chrono::steady_clock;

  const CircuitBreakerPolicy policy_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;        ///< guarded by mu_
  int consecutive_failures_ = 0;        ///< guarded by mu_
  bool probe_in_flight_ = false;        ///< guarded by mu_
  Clock::time_point open_until_{};      ///< guarded by mu_
  uint64_t opens_ = 0;                  ///< guarded by mu_
  uint64_t open_rejects_ = 0;           ///< guarded by mu_
};

}  // namespace ps3

#endif  // PS3_COMMON_RETRY_H_
