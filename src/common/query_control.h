// Multi-tenant query control vocabulary: latency classes, cooperative
// cancellation, and deadlines.
//
// These types live in common/ (not runtime/) because they cross every
// layer: the scheduler stamps them at admission, the worker pool checks
// them at chunk boundaries, and the io layer checks them inside cold-load
// single-flight waits — none of which may depend on the layers above.
//
// Cancellation is *cooperative*: a CancelToken never interrupts a running
// kernel. Executors poll Check() at natural boundaries (chunk starts,
// partition acquires, cold-load waits) and abort by throwing QueryAborted,
// which the per-job failure isolation in runtime::WorkerPool turns into
// "this query's future resolves with the Status; co-resident queries are
// untouched". Classes and deadlines affect only *when* chunks run, never
// merge order or results — the determinism contract is class-blind.
#ifndef PS3_COMMON_QUERY_CONTROL_H_
#define PS3_COMMON_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "common/status.h"

namespace ps3 {

/// Admission class of a query. Interactive queries preempt batch work at
/// chunk granularity (weighted, so batch still progresses) and are exempt
/// from the batch share of the prefetch read-ahead budget; batch is the
/// default everywhere, so classless call sites keep their old behavior.
enum class QueryClass : uint8_t {
  kBatch = 0,
  kInteractive = 1,
};

/// "batch" / "interactive".
const char* QueryClassName(QueryClass c);

/// Shared cancellation + deadline flag for one query (or one group of
/// queries cancelled together). Thread-safe; cheap enough to poll per
/// chunk: Cancel()/cancelled() are single atomic ops, and Check() reads
/// the clock only when a deadline is armed.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cooperative cancellation. Idempotent; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms (or re-arms) an absolute deadline. A deadline at or before
  /// "now" is already expired: the next Check() fails. The scheduler
  /// arms this at *admission*, so queue wait counts against the budget.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     deadline.time_since_epoch())
                     .count();
    // 0 is the "no deadline" sentinel; an epoch-exact deadline (never a
    // real steady_clock value) nudges to the adjacent microsecond.
    if (us == 0) us = 1;
    deadline_us_.store(us, std::memory_order_release);
  }
  bool has_deadline() const {
    return deadline_us_.load(std::memory_order_acquire) != 0;
  }

  /// OK while the query may keep running; Status::Cancelled or
  /// Status::DeadlineExceeded once it must stop. Monotone: a non-OK
  /// answer never reverts (cancel latches, steady_clock is monotonic).
  Status Check() const;

 private:
  std::atomic<bool> cancelled_{false};
  /// Deadline as microseconds since the steady_clock epoch; 0 = none.
  std::atomic<int64_t> deadline_us_{0};
};

/// Thrown by executors when a CancelToken fires mid-query. Derives from
/// std::runtime_error so generic "query failed" handling keeps working;
/// carries the structured Status (kCancelled / kDeadlineExceeded) so the
/// future's consumer can tell an abort from a real error.
class QueryAborted : public std::runtime_error {
 public:
  explicit QueryAborted(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Thrown when a query fails for a structural reason that is not an
/// abort: permanently lost partitions under DegradedMode::kFail, an
/// exhausted retry budget, an open circuit breaker. Distinct from
/// QueryAborted on purpose — aborts are the *caller's* doing and count
/// toward no error statistic; failures are the *store's* doing and the
/// consumer may want to resubmit in a degraded mode.
class QueryFailed : public std::runtime_error {
 public:
  explicit QueryFailed(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Throws QueryAborted if `cancel` (nullable) has fired. The one-liner
/// executors use at chunk/partition/acquire boundaries.
inline void ThrowIfAborted(const CancelToken* cancel) {
  if (cancel == nullptr) return;
  Status live = cancel->Check();
  if (!live.ok()) throw QueryAborted(std::move(live));
}

}  // namespace ps3

#endif  // PS3_COMMON_QUERY_CONTROL_H_
