#include "common/serialize.h"

#include <cstdio>
#include <cstring>

namespace ps3 {

void BinaryWriter::PutU8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::PutDoubleVector(const std::vector<double>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (double d : v) PutDouble(d);
}

void BinaryWriter::PutBoolVector(const std::vector<bool>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (bool b : v) PutU8(b ? 1 : 0);
}

Status BinaryWriter::WriteFile(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "' for write");
  }
  size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for read");
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  size_t read = data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    return Status::Internal("short read from '" + path + "'");
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::SeekTo(size_t pos) {
  if (pos > data_.size()) {
    return Status::OutOfRange("seek past end of input");
  }
  pos_ = pos;
  return Status::OK();
}

Status BinaryReader::Need(size_t bytes) const {
  if (pos_ + bytes > data_.size()) {
    return Status::OutOfRange("truncated input");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  PS3_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint32_t> BinaryReader::GetU32() {
  PS3_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  PS3_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> BinaryReader::GetI32() {
  auto v = GetU32();
  if (!v.ok()) return v.status();
  return static_cast<int32_t>(*v);
}

Result<double> BinaryReader::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = *bits;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  auto len = GetU32();
  if (!len.ok()) return len.status();
  PS3_RETURN_IF_ERROR(Need(*len));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

Result<std::vector<double>> BinaryReader::GetDoubleVector() {
  auto len = GetU32();
  if (!len.ok()) return len.status();
  PS3_RETURN_IF_ERROR(Need(static_cast<size_t>(*len) * 8));
  std::vector<double> v;
  v.reserve(*len);
  for (uint32_t i = 0; i < *len; ++i) v.push_back(*GetDouble());
  return v;
}

Result<std::vector<bool>> BinaryReader::GetBoolVector() {
  auto len = GetU32();
  if (!len.ok()) return len.status();
  PS3_RETURN_IF_ERROR(Need(*len));
  std::vector<bool> v;
  v.reserve(*len);
  for (uint32_t i = 0; i < *len; ++i) v.push_back(*GetU8() != 0);
  return v;
}

}  // namespace ps3
