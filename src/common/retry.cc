#include "common/retry.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/hash.h"

namespace ps3 {

size_t BackoffUs(const RetryPolicy& policy, int retry, uint64_t salt) {
  if (retry < 1) return 0;
  double backoff = static_cast<double>(policy.backoff_base_us);
  for (int i = 1; i < retry; ++i) backoff *= policy.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy.backoff_cap_us));
  if (policy.jitter_fraction > 0.0) {
    // u in [0, 1) from the top 53 bits of a (seed, salt, retry) hash —
    // a pure function of the policy, so replays are bit-identical.
    uint64_t h = Mix64(policy.jitter_seed ^ Mix64(salt) ^
                       Mix64(static_cast<uint64_t>(retry)));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    backoff *= 1.0 + policy.jitter_fraction * u;
  }
  return static_cast<size_t>(backoff);
}

Status SleepWithCancel(size_t us, const CancelToken* cancel) {
  // Same 200us slice the store's single-flight wait uses: fine enough
  // that a fired deadline stops a backoff almost immediately, coarse
  // enough to stay off the scheduler's back.
  constexpr size_t kSliceUs = 200;
  size_t remaining = us;
  while (remaining > 0) {
    if (cancel != nullptr) {
      Status aborted = cancel->Check();
      if (!aborted.ok()) return aborted;
    }
    size_t step = std::min(remaining, kSliceUs);
    std::this_thread::sleep_for(std::chrono::microseconds(step));
    remaining -= step;
  }
  if (cancel != nullptr) return cancel->Check();
  return Status::OK();
}

bool CircuitBreaker::Admit(bool* claimed_probe) {
  if (claimed_probe != nullptr) *claimed_probe = false;
  if (policy_.failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Clock::now() < open_until_) {
        ++open_rejects_;
        return false;
      }
      // Cooldown elapsed: this caller becomes the half-open probe.
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      if (claimed_probe != nullptr) *claimed_probe = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++open_rejects_;
        return false;
      }
      probe_in_flight_ = true;
      if (claimed_probe != nullptr) *claimed_probe = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (policy_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      // A slow load admitted before the circuit opened, landing late:
      // it predates the outage, so it must not short-circuit the
      // cooldown + probe discipline. Ignore it.
      break;
    case State::kHalfOpen:
      // The probe (the only load Admit lets through half-open; stale
      // pre-open successes closing here too is fine — either way the
      // store just served a read).
      state_ = State::kClosed;
      consecutive_failures_ = 0;
      probe_in_flight_ = false;
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  if (policy_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open for another cooldown.
    state_ = State::kOpen;
    probe_in_flight_ = false;
    open_until_ = Clock::now() + std::chrono::microseconds(
                                     policy_.open_duration_us);
    ++opens_;
    return;
  }
  if (++consecutive_failures_ >= policy_.failure_threshold &&
      state_ == State::kClosed) {
    state_ = State::kOpen;
    open_until_ = Clock::now() + std::chrono::microseconds(
                                     policy_.open_duration_us);
    ++opens_;
  }
}

void CircuitBreaker::RecordAbort(bool claimed_probe) {
  // Non-probe aborts carry no signal and claimed no exclusive slot.
  if (!claimed_probe || policy_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen && probe_in_flight_) {
    // The probe aborted before proving anything. Release the slot and
    // fall back to open without counting a re-open; open_until_ already
    // elapsed when this probe was admitted, so the very next Admit()
    // becomes the new probe.
    probe_in_flight_ = false;
    state_ = State::kOpen;
  }
  // Any other state: a stale success/failure already moved the breaker
  // on; the slot this probe held is gone with that transition.
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

uint64_t CircuitBreaker::open_rejects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_rejects_;
}

}  // namespace ps3
