// String formatting helpers used by benches and reports.
#ifndef PS3_COMMON_STRING_UTIL_H_
#define PS3_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace ps3 {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with a separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace ps3

#endif  // PS3_COMMON_STRING_UTIL_H_
