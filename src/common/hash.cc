#include "common/hash.h"

#include <cstring>

namespace ps3 {

uint64_t Fnv1a64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

uint64_t HashDouble(double v, uint64_t salt) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits ^ (salt * 0x9E3779B97F4A7C15ULL));
}

}  // namespace ps3
