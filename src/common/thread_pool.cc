#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <system_error>
#include <thread>

namespace ps3 {

namespace {
// Set while a thread is executing ParallelFor items; nested calls detect it
// and run inline instead of forking again.
thread_local bool t_inside_parallel_for = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    num_threads_ = hw == 0 ? 1 : static_cast<size_t>(hw);
  } else {
    num_threads_ = static_cast<size_t>(num_threads);
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) const {
  if (n == 0) return;
  const size_t lanes = std::min(num_threads_, n);
  if (lanes <= 1 || t_inside_parallel_for) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto work = [&]() {
    t_inside_parallel_for = true;
    size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) < n) {
      if (failed.load(std::memory_order_relaxed)) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    t_inside_parallel_for = false;
  };

  std::vector<std::thread> workers;
  workers.reserve(lanes - 1);
  try {
    for (size_t t = 0; t + 1 < lanes; ++t) workers.emplace_back(work);
  } catch (const std::system_error&) {
    // Thread exhaustion: degrade to however many workers did start (the
    // caller participates below and the atomic counter drains regardless).
  }
  work();
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace ps3
