// Fork-join parallelism for per-partition work (scans, stats builds,
// labeling). Work items are claimed dynamically off an atomic counter, but
// results are written to caller-indexed slots, so every reduction is
// ordered and deterministic regardless of thread count or scheduling.
#ifndef PS3_COMMON_THREAD_POOL_H_
#define PS3_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace ps3 {

class ThreadPool {
 public:
  /// `num_threads` <= 0 selects the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. The
  /// calling thread participates; worker threads are forked per call (the
  /// per-call cost is microseconds, far below one partition scan). Indices
  /// are claimed dynamically, so skewed per-item costs balance. Nested
  /// calls from inside a worker run inline (no thread explosion, no
  /// deadlock). Exceptions thrown by `fn` are rethrown on the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) const;

 private:
  size_t num_threads_;
};

}  // namespace ps3

#endif  // PS3_COMMON_THREAD_POOL_H_
