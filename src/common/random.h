// Deterministic pseudo-random number generation for data generation,
// sampling and learning. All PS3 components take an explicit engine (or a
// seed) so experiments are reproducible run to run.
#ifndef PS3_COMMON_RANDOM_H_
#define PS3_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ps3 {

/// SplitMix64: used to seed the main generator and as a cheap stateless
/// mixer. Reference: Steele et al., "Fast splittable pseudorandom number
/// generators".
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** engine. Small, fast, and good statistical quality; a
/// deliberate stand-in for std::mt19937_64 with far less state.
class RandomEngine {
 public:
  using result_type = uint64_t;

  explicit RandomEngine(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with the given rate (lambda > 0).
  double NextExponential(double lambda);

  /// Bernoulli draw.
  bool NextBool(double p_true);

  /// Fork a statistically independent engine (for per-partition streams).
  RandomEngine Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Samples from a Zipf distribution over {0, 1, ..., n-1} with exponent
/// `skew` (the paper's TPC-H* generator uses skew = 1). Uses the
/// precomputed-CDF method: O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew);

  /// Draws a rank; rank 0 is the most frequent value.
  size_t Sample(RandomEngine* rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Floyd's algorithm: k distinct indices sampled uniformly from [0, n).
/// Result is in no particular order.
std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k,
                                             RandomEngine* rng);

/// In-place Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>* v, RandomEngine* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = rng->NextUint64(i);
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace ps3

#endif  // PS3_COMMON_RANDOM_H_
