// Hashing primitives shared by the sketches (AKMV, histograms over string
// columns) and the query engine's group-by hash table.
#ifndef PS3_COMMON_HASH_H_
#define PS3_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace ps3 {

/// 64-bit FNV-1a over raw bytes.
uint64_t Fnv1a64(const void* data, size_t len);

/// FNV-1a over a string.
inline uint64_t HashString(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Strong avalanche mixer (finalizer from MurmurHash3).
uint64_t Mix64(uint64_t x);

/// Hash of a 64-bit integer (e.g. a dictionary code) with a per-use salt so
/// distinct sketches see independent hash functions.
inline uint64_t HashInt(int64_t v, uint64_t salt = 0) {
  return Mix64(static_cast<uint64_t>(v) ^ (salt * 0x9E3779B97F4A7C15ULL));
}

/// Hash of a double; canonicalizes -0.0 to 0.0 first so equal values hash
/// equally.
uint64_t HashDouble(double v, uint64_t salt = 0);

/// Maps a 64-bit hash to a uniform double in [0, 1); used by KMV-style
/// distinct-value estimators.
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

}  // namespace ps3

#endif  // PS3_COMMON_HASH_H_
