// Minimal binary serialization used to persist trained PS3 models
// (offline training runs in a different process than query optimization).
// Little-endian, bounds-checked on read; not cross-endian portable.
#ifndef PS3_COMMON_SERIALIZE_H_
#define PS3_COMMON_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ps3 {

class BinaryWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);
  void PutDoubleVector(const std::vector<double>& v);
  void PutBoolVector(const std::vector<bool>& v);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  /// Writes the buffer to a file; truncates existing content.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<uint8_t> buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> data)
      : data_(std::move(data)) {}

  /// Loads a whole file into a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int32_t> GetI32();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<std::vector<double>> GetDoubleVector();
  Result<std::vector<bool>> GetBoolVector();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t size() const { return data_.size(); }
  size_t pos() const { return pos_; }
  /// Repositions the cursor; random access for footer-indexed formats
  /// (the io layer's columnar partition files).
  Status SeekTo(size_t pos);
  /// Raw backing bytes (checksum verification over segment ranges).
  const std::vector<uint8_t>& data() const { return data_; }

 private:
  Status Need(size_t bytes) const;

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace ps3

#endif  // PS3_COMMON_SERIALIZE_H_
