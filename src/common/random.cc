#include "common/random.h"

#include <cassert>
#include <cmath>

namespace ps3 {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

RandomEngine::RandomEngine(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t RandomEngine::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double RandomEngine::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t RandomEngine::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling, with rejection to keep
  // the distribution exactly uniform.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t RandomEngine::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double RandomEngine::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double RandomEngine::NextExponential(double lambda) {
  assert(lambda > 0);
  double u = NextDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

bool RandomEngine::NextBool(double p_true) { return NextDouble() < p_true; }

RandomEngine RandomEngine::Fork() { return RandomEngine(Next()); }

ZipfSampler::ZipfSampler(size_t n, double skew) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(RandomEngine* rng) const {
  double u = rng->NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k,
                                             RandomEngine* rng) {
  assert(k <= n);
  if (k == n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm needs a membership test; for the sizes PS3 deals with
  // (thousands of partitions) a sorted vector probe is cheap enough and
  // avoids hash-set overhead.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  auto contains = [&chosen](size_t v) {
    for (size_t c : chosen)
      if (c == v) return true;
    return false;
  };
  for (size_t j = n - k; j < n; ++j) {
    size_t t = rng->NextUint64(j + 1);
    if (contains(t)) {
      chosen.push_back(j);
    } else {
      chosen.push_back(t);
    }
  }
  return chosen;
}

}  // namespace ps3
