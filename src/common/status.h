// Minimal Status / Result error-handling vocabulary, in the style of
// Arrow/Abseil. Used at API boundaries where user input (queries, workload
// specs) can be malformed; internal invariant violations use assertions.
#ifndef PS3_COMMON_STATUS_H_
#define PS3_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ps3 {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
  /// The resource exists but cannot be reached right now — transient
  /// store failures, an open circuit breaker, a permanently lost
  /// partition. Retry-eligible by the io layer's classification (lost
  /// partitions are excluded at the source, which knows they are gone).
  kUnavailable,
};

/// Human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Keeps call sites explicit without
/// exceptions.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define PS3_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::ps3::Status ps3_status_ = (expr);        \
    if (!ps3_status_.ok()) return ps3_status_; \
  } while (0)

}  // namespace ps3

#endif  // PS3_COMMON_STATUS_H_
