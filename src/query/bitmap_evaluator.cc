#include "query/bitmap_evaluator.h"

#include <algorithm>
#include <cassert>

namespace ps3::query {

namespace {

/// Word-packing kernel shared by every leaf predicate: packs 64 per-row
/// match results into each output word. The inner 64-iteration loop over a
/// contiguous span is what the compiler auto-vectorizes; this is the
/// engine's hottest loop, and the single place to rewrite with explicit
/// SIMD (cmp + movemask) later.
template <typename T, typename Match>
void PackKernel(const T* v, size_t n, Match match, SelectionBitmap* out) {
  uint64_t* words = out->words();
  const size_t full_words = n >> 6;
  for (size_t w = 0; w < full_words; ++w) {
    const T* base = v + (w << 6);
    uint64_t word = 0;
    for (unsigned b = 0; b < 64; ++b) {
      word |= static_cast<uint64_t>(match(base[b])) << b;
    }
    words[w] = word;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    const T* base = v + (full_words << 6);
    uint64_t word = 0;
    for (unsigned b = 0; b < tail; ++b) {
      word |= static_cast<uint64_t>(match(base[b])) << b;
    }
    words[full_words] = word;
  }
}

void RunCompare(const double* v, size_t n, CompareOp op, double c,
                SelectionBitmap* out) {
  switch (op) {
    case CompareOp::kLt:
      PackKernel(v, n, [c](double x) { return x < c; }, out);
      return;
    case CompareOp::kLe:
      PackKernel(v, n, [c](double x) { return x <= c; }, out);
      return;
    case CompareOp::kGt:
      PackKernel(v, n, [c](double x) { return x > c; }, out);
      return;
    case CompareOp::kGe:
      PackKernel(v, n, [c](double x) { return x >= c; }, out);
      return;
    case CompareOp::kEq:
      PackKernel(v, n, [c](double x) { return x == c; }, out);
      return;
    case CompareOp::kNe:
      PackKernel(v, n, [c](double x) { return x != c; }, out);
      return;
  }
}

/// IN-set kernel over dictionary codes (`set` must be non-empty; the empty
/// IN-list is handled by the caller with a cleared bitmap). Tiny sets use
/// an unrolled compare chain; larger ones binary-search the sorted list.
void RunInSet(const int32_t* codes, size_t n,
              const std::vector<int32_t>& set, SelectionBitmap* out) {
  if (set.size() == 1) {
    int32_t c0 = set[0];
    PackKernel(codes, n, [c0](int32_t x) { return x == c0; }, out);
  } else if (set.size() <= 4) {
    int32_t c[4] = {set[0], set[set.size() > 1 ? 1 : 0],
                    set[set.size() > 2 ? 2 : 0],
                    set[set.size() > 3 ? 3 : 0]};
    size_t k = set.size();
    PackKernel(codes, n,
               [c, k](int32_t x) {
                 bool m = x == c[0] || x == c[1];
                 if (k > 2) m = m || x == c[2];
                 if (k > 3) m = m || x == c[3];
                 return m;
               },
               out);
  } else {
    const int32_t* lo = set.data();
    const int32_t* hi = set.data() + set.size();
    PackKernel(codes, n,
               [lo, hi](int32_t x) { return std::binary_search(lo, hi, x); },
               out);
  }
}

}  // namespace

void BitmapEvaluator::EvalPredicate(const PredProgram& prog,
                                    const storage::Partition& part,
                                    SelectionBitmap* out) {
  const size_t n = part.num_rows();
  if (prog.always_true) {
    out->ResetForOverwrite(n);
    out->SetAll();
    return;
  }
  if (bitmap_stack_.size() < prog.max_stack) {
    bitmap_stack_.resize(prog.max_stack);
  }
  size_t top = 0;  // next free stack slot
  for (const PredInstr& in : prog.instrs) {
    switch (in.op) {
      case PredInstr::Op::kTrue: {
        SelectionBitmap& bm = bitmap_stack_[top++];
        bm.ResetForOverwrite(n);
        bm.SetAll();
        break;
      }
      case PredInstr::Op::kCmpConst: {
        SelectionBitmap& bm = bitmap_stack_[top++];
        bm.ResetForOverwrite(n);
        RunCompare(part.NumericSpan(in.column), n, in.cmp, in.value, &bm);
        break;
      }
      case PredInstr::Op::kInSet: {
        SelectionBitmap& bm = bitmap_stack_[top++];
        if (in.codes.empty()) {
          bm.Reset(n);
          break;
        }
        bm.ResetForOverwrite(n);
        RunInSet(part.CodeSpan(in.column), n, in.codes, &bm);
        break;
      }
      case PredInstr::Op::kAnd: {
        assert(top >= in.arity);
        SelectionBitmap& dst = bitmap_stack_[top - in.arity];
        for (size_t k = top - in.arity + 1; k < top; ++k) {
          dst.AndWith(bitmap_stack_[k]);
        }
        top -= in.arity - 1;
        break;
      }
      case PredInstr::Op::kOr: {
        assert(top >= in.arity);
        SelectionBitmap& dst = bitmap_stack_[top - in.arity];
        for (size_t k = top - in.arity + 1; k < top; ++k) {
          dst.OrWith(bitmap_stack_[k]);
        }
        top -= in.arity - 1;
        break;
      }
      case PredInstr::Op::kNot: {
        assert(top >= 1);
        bitmap_stack_[top - 1].NotSelf();
        break;
      }
    }
  }
  assert(top == 1);
  // Hand the result back through `out` without copying the words.
  std::swap(*out, bitmap_stack_[0]);
}

double BitmapEvaluator::EvalExprAt(const ExprProgram& prog,
                                   const storage::Partition& part,
                                   size_t row) {
  if (value_stack_.size() < prog.max_stack) {
    value_stack_.resize(prog.max_stack);
  }
  double* stack = value_stack_.data();
  size_t top = 0;
  // Pops the rhs for a binary op: the fused constant, or the stack top.
  auto rhs_of = [&](const ExprInstr& in) {
    if (in.fused_const) return in.value;
    return stack[--top];
  };
  for (const ExprInstr& in : prog.instrs) {
    switch (in.op) {
      case ExprInstr::Op::kLoadColumn:
        stack[top++] = part.NumericSpan(in.column)[row];
        break;
      case ExprInstr::Op::kLoadConst:
        stack[top++] = in.value;
        break;
      case ExprInstr::Op::kAdd: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        a = in.const_is_lhs ? b + a : a + b;
        break;
      }
      case ExprInstr::Op::kSub: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        a = in.const_is_lhs ? b - a : a - b;
        break;
      }
      case ExprInstr::Op::kMul: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        a = in.const_is_lhs ? b * a : a * b;
        break;
      }
      case ExprInstr::Op::kDiv: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        double num = in.const_is_lhs ? b : a;
        double den = in.const_is_lhs ? a : b;
        a = den == 0.0 ? 0.0 : num / den;
        break;
      }
    }
  }
  assert(top == 1);
  return stack[0];
}

void BitmapEvaluator::EvalExprDense(const ExprProgram& prog,
                                    const storage::Partition& part,
                                    std::vector<double>* out) {
  const size_t n = part.num_rows();
  if (buffer_stack_.size() < prog.max_stack) {
    buffer_stack_.resize(prog.max_stack);
  }
  size_t top = 0;
  for (const ExprInstr& in : prog.instrs) {
    switch (in.op) {
      case ExprInstr::Op::kLoadColumn: {
        std::vector<double>& buf = buffer_stack_[top++];
        const double* v = part.NumericSpan(in.column);
        buf.assign(v, v + n);
        break;
      }
      case ExprInstr::Op::kLoadConst: {
        std::vector<double>& buf = buffer_stack_[top++];
        buf.assign(n, in.value);
        break;
      }
      case ExprInstr::Op::kAdd: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) a[i] = c + a[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] += c;
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) a[i] += b[i];
        break;
      }
      case ExprInstr::Op::kSub: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) a[i] = c - a[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] -= c;
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) a[i] -= b[i];
        break;
      }
      case ExprInstr::Op::kMul: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) a[i] = c * a[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] *= c;
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) a[i] *= b[i];
        break;
      }
      case ExprInstr::Op::kDiv: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) {
              a[i] = a[i] == 0.0 ? 0.0 : c / a[i];
            }
          } else {
            for (size_t i = 0; i < n; ++i) {
              a[i] = c == 0.0 ? 0.0 : a[i] / c;
            }
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) {
          a[i] = b[i] == 0.0 ? 0.0 : a[i] / b[i];
        }
        break;
      }
    }
  }
  assert(top == 1);
  std::swap(*out, buffer_stack_[0]);
}

}  // namespace ps3::query
