#include "query/bitmap_evaluator.h"

#include <algorithm>
#include <cassert>

#include "storage/table.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define PS3_HAVE_X86_SIMD 1
#endif

namespace ps3::query {

namespace {

/// Packs a final sub-word block (< 64 rows) into one word. Shared tail
/// path for the scalar pack and the SIMD kernels below.
template <typename T, typename Match>
uint64_t PackTailWord(const T* base, size_t tail, Match match) {
  uint64_t word = 0;
  for (unsigned b = 0; b < tail; ++b) {
    word |= static_cast<uint64_t>(match(base[b])) << b;
  }
  return word;
}

/// Scalar word-packing kernel, the bit-exactness reference for every leaf
/// predicate: packs 64 per-row match results into each output word.
template <typename T, typename Match>
void PackKernel(const T* v, size_t n, Match match, SelectionBitmap* out) {
  uint64_t* words = out->words();
  const size_t full_words = n >> 6;
  for (size_t w = 0; w < full_words; ++w) {
    const T* base = v + (w << 6);
    uint64_t word = 0;
    for (unsigned b = 0; b < 64; ++b) {
      word |= static_cast<uint64_t>(match(base[b])) << b;
    }
    words[w] = word;
  }
  const size_t tail = n & 63;
  if (tail != 0) {
    words[full_words] = PackTailWord(v + (full_words << 6), tail, match);
  }
}

#ifdef PS3_HAVE_X86_SIMD

/// AVX2 predicate immediate for each CompareOp. Ordered-quiet forms mirror
/// C++ comparison semantics on NaN (false), except kNe which must be true
/// for NaN operands (unordered-quiet NEQ).
template <CompareOp Op>
constexpr int CmpImm() {
  switch (Op) {
    case CompareOp::kLt:
      return _CMP_LT_OQ;
    case CompareOp::kLe:
      return _CMP_LE_OQ;
    case CompareOp::kGt:
      return _CMP_GT_OQ;
    case CompareOp::kGe:
      return _CMP_GE_OQ;
    case CompareOp::kEq:
      return _CMP_EQ_OQ;
    case CompareOp::kNe:
      return _CMP_NEQ_UQ;
  }
  return _CMP_EQ_OQ;
}

/// AVX2 compare kernel for the full 64-row words: 16 × (cmp_pd over 4
/// doubles + movemask_pd) per word. movemask lane order matches the scalar
/// pack's bit order (bit b = row base[b]), so output words are identical
/// to PackKernel's. The predicate is a non-type template parameter because
/// _mm256_cmp_pd expands to the raw builtin in -O0 builds, which only
/// accepts an integer constant expression as its immediate.
template <int Imm>
__attribute__((target("avx2"))) void CmpWordsAvx2(const double* v,
                                                  size_t full_words, double c,
                                                  uint64_t* words) {
  const __m256d cv = _mm256_set1_pd(c);
  for (size_t w = 0; w < full_words; ++w) {
    const double* base = v + (w << 6);
    uint64_t word = 0;
    for (unsigned g = 0; g < 16; ++g) {
      __m256d x = _mm256_loadu_pd(base + 4 * g);
      unsigned m = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_cmp_pd(x, cv, Imm)));
      word |= static_cast<uint64_t>(m) << (4 * g);
    }
    words[w] = word;
  }
}

/// AVX2 IN-set kernel over dictionary codes for set sizes 1..4: 8 × (up to
/// four cmpeq_epi32 + or + movemask_ps) per word. Constants beyond the set
/// size repeat c[0], so the extra compares are no-ops on the result.
__attribute__((target("avx2"))) void InSetWordsAvx2(const int32_t* codes,
                                                    size_t full_words,
                                                    const int32_t* c, size_t k,
                                                    uint64_t* words) {
  const __m256i c0 = _mm256_set1_epi32(c[0]);
  const __m256i c1 = _mm256_set1_epi32(c[k > 1 ? 1 : 0]);
  const __m256i c2 = _mm256_set1_epi32(c[k > 2 ? 2 : 0]);
  const __m256i c3 = _mm256_set1_epi32(c[k > 3 ? 3 : 0]);
  for (size_t w = 0; w < full_words; ++w) {
    const int32_t* base = codes + (w << 6);
    uint64_t word = 0;
    for (unsigned g = 0; g < 8; ++g) {
      __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 8 * g));
      __m256i m = _mm256_cmpeq_epi32(x, c0);
      m = _mm256_or_si256(m, _mm256_cmpeq_epi32(x, c1));
      if (k > 2) m = _mm256_or_si256(m, _mm256_cmpeq_epi32(x, c2));
      if (k > 3) m = _mm256_or_si256(m, _mm256_cmpeq_epi32(x, c3));
      unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(m)));
      word |= static_cast<uint64_t>(mask) << (8 * g);
    }
    words[w] = word;
  }
}

/// Shared SIMD dispatch shape: `words_kernel(full_words, words)` fills the
/// full 64-row words, then the sub-word tail is packed with `match` — the
/// single place that encodes the full-words + tail split for every SIMD
/// kernel.
template <typename T, typename WordsKernel, typename Match>
void RunWordsWithTail(const T* v, size_t n, WordsKernel words_kernel,
                      Match match, SelectionBitmap* out) {
  const size_t full_words = n >> 6;
  words_kernel(full_words, out->words());
  const size_t done = full_words << 6;
  if (n != done) {
    out->words()[full_words] = PackTailWord(v + done, n - done, match);
  }
}

#endif  // PS3_HAVE_X86_SIMD

/// Dispatches one comparison: AVX2 full words + scalar tail, or the scalar
/// pack end to end. `match` must implement the same comparison as `Op`.
template <CompareOp Op, typename Match>
void RunCompareOp(const double* v, size_t n, double c, Match match,
                  SelectionBitmap* out, bool use_avx2) {
#ifdef PS3_HAVE_X86_SIMD
  if (use_avx2) {
    RunWordsWithTail(
        v, n,
        [v, c](size_t full_words, uint64_t* words) {
          CmpWordsAvx2<CmpImm<Op>()>(v, full_words, c, words);
        },
        match, out);
    return;
  }
#else
  (void)use_avx2;
#endif
  PackKernel(v, n, match, out);
}

void RunCompare(const double* v, size_t n, CompareOp op, double c,
                SelectionBitmap* out, bool use_avx2) {
  switch (op) {
    case CompareOp::kLt:
      RunCompareOp<CompareOp::kLt>(
          v, n, c, [c](double x) { return x < c; }, out, use_avx2);
      return;
    case CompareOp::kLe:
      RunCompareOp<CompareOp::kLe>(
          v, n, c, [c](double x) { return x <= c; }, out, use_avx2);
      return;
    case CompareOp::kGt:
      RunCompareOp<CompareOp::kGt>(
          v, n, c, [c](double x) { return x > c; }, out, use_avx2);
      return;
    case CompareOp::kGe:
      RunCompareOp<CompareOp::kGe>(
          v, n, c, [c](double x) { return x >= c; }, out, use_avx2);
      return;
    case CompareOp::kEq:
      RunCompareOp<CompareOp::kEq>(
          v, n, c, [c](double x) { return x == c; }, out, use_avx2);
      return;
    case CompareOp::kNe:
      RunCompareOp<CompareOp::kNe>(
          v, n, c, [c](double x) { return x != c; }, out, use_avx2);
      return;
  }
}

/// IN-set kernel over dictionary codes (`set` must be non-empty; the empty
/// IN-list is handled by the caller with a cleared bitmap). Tiny sets use
/// the AVX2 cmpeq kernel (or an unrolled scalar compare chain); larger
/// ones probe a per-dictionary membership table with the AVX2 gather
/// kernel, falling back to a binary search of the sorted list (the
/// bit-exactness reference). `dict_size` bounds the column's code domain;
/// `table_scratch` is the caller's reusable membership-table buffer.
void RunInSet(const int32_t* codes, size_t n,
              const std::vector<int32_t>& set, size_t dict_size,
              std::vector<uint32_t>* table_scratch, SelectionBitmap* out,
              bool use_avx2) {
  const size_t k = set.size();
  if (k <= 4) {
    int32_t c[4] = {set[0], set[k > 1 ? 1 : 0], set[k > 2 ? 2 : 0],
                    set[k > 3 ? 3 : 0]};
    auto small_set = [&](auto match) {
#ifdef PS3_HAVE_X86_SIMD
      if (use_avx2) {
        RunWordsWithTail(
            codes, n,
            [codes, &c, k](size_t full_words, uint64_t* words) {
              InSetWordsAvx2(codes, full_words, c, k, words);
            },
            match, out);
        return;
      }
#else
      (void)use_avx2;
#endif
      PackKernel(codes, n, match, out);
    };
    if (k == 1) {
      // Single-code IN: one compare per row in the scalar kernel.
      const int32_t c0 = c[0];
      small_set([c0](int32_t x) { return x == c0; });
    } else {
      small_set([c, k](int32_t x) {
        bool m = x == c[0] || x == c[1];
        if (k > 2) m = m || x == c[2];
        if (k > 3) m = m || x == c[3];
        return m;
      });
    }
  } else {
    const int32_t* lo = set.data();
    const int32_t* hi = set.data() + set.size();
    auto match = [lo, hi](int32_t x) { return std::binary_search(lo, hi, x); };
#ifdef PS3_HAVE_X86_SIMD
    // The table build is O(dict_size) per partition, so the gather path
    // only pays off when the code domain is small relative to the rows
    // probed; a huge dictionary over a small partition stays on the
    // binary-search pack.
    if (use_avx2 && dict_size > 0 && dict_size <= 4 * n) {
      // Membership table over the whole code domain (codes are always
      // < dict_size), one 32-bit lane per code so every gather stays in
      // bounds.
      table_scratch->assign(dict_size, 0);
      for (int32_t c : set) {
        if (c >= 0 && static_cast<size_t>(c) < dict_size) {
          (*table_scratch)[static_cast<size_t>(c)] = 0xFFFFFFFFu;
        }
      }
      const uint32_t* table = table_scratch->data();
      RunWordsWithTail(
          codes, n,
          [codes, table](size_t full_words, uint64_t* words) {
            runtime::InSetGatherWordsAvx2(codes, full_words, table, words);
          },
          match, out);
      return;
    }
#else
    (void)dict_size;
    (void)table_scratch;
#endif
    PackKernel(codes, n, match, out);
  }
}

}  // namespace

void BitmapEvaluator::EvalPredicate(const PredProgram& prog,
                                    const storage::Partition& part,
                                    SelectionBitmap* out) {
  const size_t n = part.num_rows();
  if (prog.always_true) {
    out->ResetForOverwrite(n);
    out->SetAll();
    return;
  }
  if (bitmap_stack_.size() < prog.max_stack) {
    bitmap_stack_.resize(prog.max_stack);
  }
  size_t top = 0;  // next free stack slot
  for (const PredInstr& in : prog.instrs) {
    switch (in.op) {
      case PredInstr::Op::kTrue: {
        SelectionBitmap& bm = bitmap_stack_[top++];
        bm.ResetForOverwrite(n);
        bm.SetAll();
        break;
      }
      case PredInstr::Op::kCmpConst: {
        SelectionBitmap& bm = bitmap_stack_[top++];
        bm.ResetForOverwrite(n);
        RunCompare(part.NumericSpan(in.column), n, in.cmp, in.value, &bm,
                   use_avx2_);
        break;
      }
      case PredInstr::Op::kInSet: {
        SelectionBitmap& bm = bitmap_stack_[top++];
        if (in.codes.empty()) {
          bm.Reset(n);
          break;
        }
        bm.ResetForOverwrite(n);
        const storage::Dictionary* dict =
            part.table().column(in.column).dict();
        RunInSet(part.CodeSpan(in.column), n, in.codes,
                 dict != nullptr ? dict->size() : 0, &in_table_, &bm,
                 use_avx2_);
        break;
      }
      case PredInstr::Op::kAnd: {
        assert(top >= in.arity);
        SelectionBitmap& dst = bitmap_stack_[top - in.arity];
        for (size_t k = top - in.arity + 1; k < top; ++k) {
          dst.AndWith(bitmap_stack_[k]);
        }
        top -= in.arity - 1;
        break;
      }
      case PredInstr::Op::kOr: {
        assert(top >= in.arity);
        SelectionBitmap& dst = bitmap_stack_[top - in.arity];
        for (size_t k = top - in.arity + 1; k < top; ++k) {
          dst.OrWith(bitmap_stack_[k]);
        }
        top -= in.arity - 1;
        break;
      }
      case PredInstr::Op::kNot: {
        assert(top >= 1);
        bitmap_stack_[top - 1].NotSelf();
        break;
      }
    }
  }
  assert(top == 1);
  // Hand the result back through `out` without copying the words.
  std::swap(*out, bitmap_stack_[0]);
}

double BitmapEvaluator::EvalExprAt(const ExprProgram& prog,
                                   const storage::Partition& part,
                                   size_t row) {
  if (value_stack_.size() < prog.max_stack) {
    value_stack_.resize(prog.max_stack);
  }
  double* stack = value_stack_.data();
  size_t top = 0;
  // Pops the rhs for a binary op: the fused constant, or the stack top.
  auto rhs_of = [&](const ExprInstr& in) {
    if (in.fused_const) return in.value;
    return stack[--top];
  };
  for (const ExprInstr& in : prog.instrs) {
    switch (in.op) {
      case ExprInstr::Op::kLoadColumn:
        stack[top++] = part.NumericSpan(in.column)[row];
        break;
      case ExprInstr::Op::kLoadConst:
        stack[top++] = in.value;
        break;
      case ExprInstr::Op::kAdd: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        a = in.const_is_lhs ? b + a : a + b;
        break;
      }
      case ExprInstr::Op::kSub: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        a = in.const_is_lhs ? b - a : a - b;
        break;
      }
      case ExprInstr::Op::kMul: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        a = in.const_is_lhs ? b * a : a * b;
        break;
      }
      case ExprInstr::Op::kDiv: {
        double b = rhs_of(in);
        double& a = stack[top - 1];
        double num = in.const_is_lhs ? b : a;
        double den = in.const_is_lhs ? a : b;
        a = den == 0.0 ? 0.0 : num / den;
        break;
      }
    }
  }
  assert(top == 1);
  return stack[0];
}

void BitmapEvaluator::EvalExprDense(const ExprProgram& prog,
                                    const storage::Partition& part,
                                    std::vector<double>* out) {
  const size_t n = part.num_rows();
  if (buffer_stack_.size() < prog.max_stack) {
    buffer_stack_.resize(prog.max_stack);
  }
  size_t top = 0;
  for (const ExprInstr& in : prog.instrs) {
    switch (in.op) {
      case ExprInstr::Op::kLoadColumn: {
        std::vector<double>& buf = buffer_stack_[top++];
        const double* v = part.NumericSpan(in.column);
        buf.assign(v, v + n);
        break;
      }
      case ExprInstr::Op::kLoadConst: {
        std::vector<double>& buf = buffer_stack_[top++];
        buf.assign(n, in.value);
        break;
      }
      case ExprInstr::Op::kAdd: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) a[i] = c + a[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] += c;
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) a[i] += b[i];
        break;
      }
      case ExprInstr::Op::kSub: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) a[i] = c - a[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] -= c;
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) a[i] -= b[i];
        break;
      }
      case ExprInstr::Op::kMul: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) a[i] = c * a[i];
          } else {
            for (size_t i = 0; i < n; ++i) a[i] *= c;
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) a[i] *= b[i];
        break;
      }
      case ExprInstr::Op::kDiv: {
        if (in.fused_const) {
          double c = in.value;
          double* a = buffer_stack_[top - 1].data();
          if (in.const_is_lhs) {
            for (size_t i = 0; i < n; ++i) {
              a[i] = a[i] == 0.0 ? 0.0 : c / a[i];
            }
          } else {
            for (size_t i = 0; i < n; ++i) {
              a[i] = c == 0.0 ? 0.0 : a[i] / c;
            }
          }
          break;
        }
        --top;
        double* a = buffer_stack_[top - 1].data();
        const double* b = buffer_stack_[top].data();
        for (size_t i = 0; i < n; ++i) {
          a[i] = b[i] == 0.0 ? 0.0 : a[i] / b[i];
        }
        break;
      }
    }
  }
  assert(top == 1);
  std::swap(*out, buffer_stack_[0]);
}

}  // namespace ps3::query
