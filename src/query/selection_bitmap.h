// Word-packed selection bitmap: one bit per row of a partition, the shared
// currency of the vectorized execution engine. Predicate kernels produce
// bitmaps, boolean combinators merge them word-wise, and aggregation
// kernels consume them via popcount / set-bit iteration.
//
// Invariant: bits at positions >= num_bits() in the last word are always
// zero, so CountOnes and word-wise AND/OR need no tail handling; only NOT
// re-masks the tail.
#ifndef PS3_QUERY_SELECTION_BITMAP_H_
#define PS3_QUERY_SELECTION_BITMAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace ps3::query {

class SelectionBitmap {
 public:
  SelectionBitmap() = default;
  explicit SelectionBitmap(size_t num_bits) { Reset(num_bits); }

  /// Resizes to `num_bits` bits, all clear. Reuses capacity across calls so
  /// a scratch bitmap can serve many partitions without reallocating.
  void Reset(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign(NumWords(num_bits), 0);
  }

  /// Resizes without clearing: for kernels that overwrite every word
  /// (including the tail word's high bits) before the bitmap is read.
  void ResetForOverwrite(size_t num_bits) {
    num_bits_ = num_bits;
    words_.resize(NumWords(num_bits));
  }

  size_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  bool Test(size_t i) const {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void ClearAll() {
    std::memset(words_.data(), 0, words_.size() * sizeof(uint64_t));
  }

  void SetAll() {
    std::memset(words_.data(), 0xFF, words_.size() * sizeof(uint64_t));
    MaskTail();
  }

  size_t CountOnes() const {
    size_t ones = 0;
    for (uint64_t w : words_) ones += __builtin_popcountll(w);
    return ones;
  }

  void AndWith(const SelectionBitmap& other) {
    assert(other.num_bits_ == num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }

  void OrWith(const SelectionBitmap& other) {
    assert(other.num_bits_ == num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  void NotSelf() {
    for (uint64_t& w : words_) w = ~w;
    MaskTail();
  }

  /// Calls fn(row) for every set bit in ascending row order. Ascending
  /// order is what keeps vectorized aggregation bit-identical to the
  /// scalar row loop: per-group accumulators see additions in row order.
  template <typename Fn>
  void ForEachSetBit(Fn fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn((w << 6) + bit);
        word &= word - 1;
      }
    }
  }

  static size_t NumWords(size_t num_bits) { return (num_bits + 63) / 64; }

 private:
  void MaskTail() {
    size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  std::vector<uint64_t> words_;
  size_t num_bits_ = 0;
};

}  // namespace ps3::query

#endif  // PS3_QUERY_SELECTION_BITMAP_H_
