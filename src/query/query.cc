#include "query/query.h"

#include "common/string_util.h"

namespace ps3::query {

Aggregate Aggregate::Sum(ExprPtr e, std::string name) {
  Aggregate a;
  a.func = AggFunc::kSum;
  a.expr = std::move(e);
  a.name = std::move(name);
  return a;
}

Aggregate Aggregate::Count(std::string name) {
  Aggregate a;
  a.func = AggFunc::kCount;
  a.name = std::move(name);
  return a;
}

Aggregate Aggregate::Avg(ExprPtr e, std::string name) {
  Aggregate a;
  a.func = AggFunc::kAvg;
  a.expr = std::move(e);
  a.name = std::move(name);
  return a;
}

Aggregate Aggregate::Min(ExprPtr e, std::string name) {
  Aggregate a;
  a.func = AggFunc::kMin;
  a.expr = std::move(e);
  a.name = std::move(name);
  return a;
}

Aggregate Aggregate::Max(ExprPtr e, std::string name) {
  Aggregate a;
  a.func = AggFunc::kMax;
  a.expr = std::move(e);
  a.name = std::move(name);
  return a;
}

Aggregate Aggregate::SumCase(ExprPtr e, PredicatePtr filter,
                             std::string name) {
  Aggregate a;
  a.func = AggFunc::kSum;
  a.expr = std::move(e);
  a.filter = std::move(filter);
  a.name = std::move(name);
  return a;
}

std::set<size_t> Query::UsedColumns() const {
  std::set<size_t> cols;
  for (const auto& agg : aggregates) {
    if (agg.expr) agg.expr->CollectColumns(&cols);
    if (agg.filter) agg.filter->CollectColumns(&cols);
  }
  if (predicate) predicate->CollectColumns(&cols);
  for (size_t g : group_by) cols.insert(g);
  return cols;
}

size_t Query::NumPredicateClauses() const {
  return predicate ? predicate->NumClauses() : 0;
}

const PredicatePtr& Query::EffectivePredicate() const {
  static const PredicatePtr kTrue = Predicate::True();
  return predicate ? predicate : kTrue;
}

std::string Query::ToString(const storage::Schema& schema) const {
  std::vector<std::string> sel;
  for (const auto& agg : aggregates) {
    std::string body = agg.expr ? agg.expr->ToString(schema) : "*";
    const char* fn = "SUM";
    switch (agg.func) {
      case AggFunc::kSum:
        fn = "SUM";
        break;
      case AggFunc::kCount:
        fn = "COUNT";
        break;
      case AggFunc::kAvg:
        fn = "AVG";
        break;
      case AggFunc::kMin:
        fn = "MIN";
        break;
      case AggFunc::kMax:
        fn = "MAX";
        break;
    }
    std::string s = StrFormat("%s(%s)", fn, body.c_str());
    if (agg.filter) s += " FILTER " + agg.filter->ToString(schema);
    sel.push_back(std::move(s));
  }
  std::string out = "SELECT " + Join(sel, ", ");
  if (predicate) out += " WHERE " + predicate->ToString(schema);
  if (!group_by.empty()) {
    std::vector<std::string> g;
    for (size_t c : group_by) g.push_back(schema.field(c).name);
    out += " GROUP BY " + Join(g, ", ");
  }
  return out;
}

}  // namespace ps3::query
