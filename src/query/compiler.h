// Query compilation for the vectorized engine: flattens the shared_ptr
// Predicate / Expr ASTs once per query into post-order programs of
// column-kernel ops. The programs are plain value types (no pointer
// chasing, no virtual dispatch) that a BitmapEvaluator executes per
// partition over raw column spans.
#ifndef PS3_QUERY_COMPILER_H_
#define PS3_QUERY_COMPILER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/query.h"
#include "storage/column_set.h"

namespace ps3::query {

/// One instruction of a compiled predicate, executed on a stack of
/// selection bitmaps.
struct PredInstr {
  enum class Op {
    kTrue,      ///< push an all-ones bitmap
    kCmpConst,  ///< push bitmap of `column cmp value` (numeric kernel)
    kInSet,     ///< push bitmap of `column IN codes` (categorical kernel)
    kAnd,       ///< pop `arity` bitmaps, push their conjunction
    kOr,        ///< pop `arity` bitmaps, push their disjunction
    kNot,       ///< complement the top bitmap in place
  };

  Op op = Op::kTrue;
  size_t column = 0;
  CompareOp cmp = CompareOp::kLt;
  double value = 0.0;
  std::vector<int32_t> codes;  ///< sorted, deduplicated IN-set
  size_t arity = 0;            ///< kAnd/kOr child count
};

struct PredProgram {
  std::vector<PredInstr> instrs;  ///< post-order
  size_t max_stack = 0;           ///< bitmap stack slots needed
  /// True when the program is a single kTrue (lets executors skip the
  /// all-ones materialization and aggregation skip the bit test).
  bool always_true = false;
};

/// Compiles a predicate AST. A null pointer compiles like Predicate::True.
PredProgram CompilePredicate(const PredicatePtr& pred);

/// One instruction of a compiled scalar expression, executed on a value
/// stack (per row) or a buffer stack (columnar). Binary ops with one
/// constant operand are fused (`fused_const`): the constant rides in
/// `value` instead of being materialized as a stack entry, which saves a
/// full n-element buffer fill + read per constant on the dense path.
/// `const_is_lhs` preserves the operand order of the source AST, keeping
/// results bit-identical for the non-commutative ops.
struct ExprInstr {
  enum class Op { kLoadColumn, kLoadConst, kAdd, kSub, kMul, kDiv };

  Op op = Op::kLoadConst;
  size_t column = 0;
  double value = 0.0;
  bool fused_const = false;
  bool const_is_lhs = false;
};

struct ExprProgram {
  std::vector<ExprInstr> instrs;  ///< post-order
  size_t max_stack = 0;           ///< value-stack slots needed
};

ExprProgram CompileExpr(const ExprPtr& expr);

/// Aggregate with its expression and CASE-filter pre-compiled.
struct CompiledAggregate {
  AggFunc func = AggFunc::kSum;
  bool has_expr = false;
  ExprProgram expr;
  bool has_filter = false;
  PredProgram filter;
};

/// Whole-query compilation artifact: built once per query, reused across
/// every partition (and across threads; execution scratch lives in the
/// per-thread BitmapEvaluator, not here).
struct CompiledQuery {
  PredProgram predicate;
  std::vector<CompiledAggregate> aggregates;
  std::vector<size_t> group_by;
};

CompiledQuery CompileQuery(const Query& query);

/// The set of columns a scan of `cq` reads: predicate columns, every
/// aggregate's expression and CASE-filter columns, and the GROUP BY
/// columns. Compiled programs reference exactly the columns the source
/// ASTs do, so the set is also valid for the scalar interpreter run on
/// the same Query. This is the projection hint threaded through
/// storage::PartitionSource — out-of-core sources rehydrate only these
/// columns, so the set must be a superset of everything either policy
/// touches. May legitimately be empty (COUNT(*) with no predicate).
storage::ColumnSet ReferencedColumns(const CompiledQuery& cq);

}  // namespace ps3::query

#endif  // PS3_QUERY_COMPILER_H_
