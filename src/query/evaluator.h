// Exact per-partition query evaluation and weighted combination (§2.4).
//
// Each partition produces a PartitionAnswer: group key -> per-aggregate
// (sum, count, min, max) accumulators. Weighted combination scales
// sum/count by the partition weight (extrema merge weight-free) and
// finalizes SUM/COUNT/AVG/MIN/MAX at the end, which makes AVG correct
// under weighting (weighted sum / weighted count).
//
// Two execution policies produce bit-identical answers:
//  - kScalar: the reference row-at-a-time interpreter (predicate AST walk
//    per row, hash-map probe per row);
//  - kVectorized: the batch engine — the predicate is compiled once per
//    query into a post-order program of column kernels, executed per
//    partition into a word-packed SelectionBitmap, and aggregation runs
//    over set bits with a single-group fast path (no GROUP BY) or a
//    dictionary-coded dense group-id path (categorical GROUP BYs).
// Bit-identity holds because every per-group accumulator sees the same
// floating-point additions in the same (ascending row) order under both
// policies.
#ifndef PS3_QUERY_EVALUATOR_H_
#define PS3_QUERY_EVALUATOR_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/query_control.h"
#include "query/query.h"
#include "runtime/simd.h"
#include "storage/table.h"

namespace ps3::runtime {
class WorkerPool;
}  // namespace ps3::runtime

namespace ps3::storage {
class PartitionSource;
class ShardedTable;
}  // namespace ps3::storage

namespace ps3::query {

/// Group-by key: one 64-bit encoding per group column (dictionary code for
/// categoricals, raw double bits for numerics).
using GroupKey = std::vector<int64_t>;

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    // Seed with the key length and finalize with a full avalanche pass:
    // single-column keys of small dictionary codes otherwise land in
    // clustered buckets (HashCombine alone does not mix high bits down).
    uint64_t h = Mix64(0x9E3779B97F4A7C15ULL ^
                       (static_cast<uint64_t>(k.size()) + 1));
    for (int64_t v : k) h = HashCombine(h, HashInt(v));
    return static_cast<size_t>(Mix64(h));
  }
};

/// Accumulator for one aggregate within one group. Every path maintains
/// sum/count; min/max are tracked only for kMin/kMax aggregates (gated
/// on the function identically in all paths, so accumulators stay
/// comparable across policies). Extrema updates canonicalize -0.0 to
/// +0.0 before comparing, which makes the lane-parallel AVX2 reductions
/// (whose tie resolution between signed zeros differs from the scalar
/// `v < m` loop) bit-identical to the scalar reference.
struct AggAccum {
  double sum = 0.0;
  double count = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(const AggAccum& other, double weight) {
    sum += other.sum * weight;
    count += other.count * weight;
    // Extrema merge weight-free: scaling a minimum by a partition weight
    // is meaningless (MIN over a weighted union is still the smallest
    // observed value). A partition where the aggregate matched no rows
    // contributes the +/-inf identity and drops out.
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  /// Folds one expression value into the extrema (kMin/kMax paths only).
  void FoldExtrema(double v) {
    if (v == 0.0) v = 0.0;  // canonicalize -0.0, like EncodeGroupValue
    if (v < min) min = v;
    if (v > max) max = v;
  }
};

using PartitionAnswer =
    std::unordered_map<GroupKey, std::vector<AggAccum>, GroupKeyHash>;

/// Finalized answer: group key -> one value per aggregate.
using QueryAnswer =
    std::unordered_map<GroupKey, std::vector<double>, GroupKeyHash>;

/// Execution policy for partition scans.
enum class ExecPolicy {
  kScalar,      ///< reference row-at-a-time interpreter
  kVectorized,  ///< compiled predicates + selection bitmaps
};

/// Options for whole-table evaluation.
struct ExecOptions {
  ExecPolicy policy = ExecPolicy::kVectorized;
  /// Worker lanes for per-partition parallelism. 0 = all hardware
  /// threads; 1 = fully inline. Under concurrent admission (several
  /// queries in flight on one pool, e.g. via runtime::QueryScheduler)
  /// this is also the query's lane cap: at most this many lanes serve the
  /// query at once while the rest stay free for siblings. Results are
  /// identical for any value: each partition is independent and the
  /// reduction is ordered by index.
  int num_threads = 0;
  /// Resident pool to run on; nullptr = the process-wide shared pool.
  /// Per-lane execution scratch lives with the pool (submitter threads
  /// use an equally persistent thread-local slot), so a long-lived pool
  /// amortizes the dense group-id tables across a whole query stream.
  /// Concurrent evaluations on one pool interleave at chunk granularity
  /// and stay bit-identical to running each alone.
  runtime::WorkerPool* pool = nullptr;
  /// Predicate kernel selection for the vectorized policy (scalar packing
  /// vs explicit AVX2); answers are bit-identical either way.
  runtime::SimdLevel simd = runtime::SimdLevel::kAuto;
  /// Admission class under concurrent load: interactive scans preempt
  /// batch scans at chunk granularity on the shared pool, and cold
  /// sources keep their prefetch outside the batch read-ahead share.
  /// Affects only when chunks run — answers are class-blind.
  QueryClass query_class = QueryClass::kBatch;
  /// Cooperative cancel/deadline token, polled at chunk boundaries, at
  /// every partition acquire, and inside cold-load single-flight waits;
  /// nullable, borrowed for the evaluation's duration. When it fires the
  /// evaluation throws QueryAborted (pins already taken are released);
  /// concurrent evaluations on the pool are unaffected.
  const CancelToken* cancel = nullptr;
};

/// Evaluates the query exactly on one partition with the scalar policy.
PartitionAnswer EvaluateOnPartition(const Query& query,
                                    const storage::Partition& part);

/// Evaluates the query exactly on one partition under `policy`. The
/// vectorized policy compiles the query per call; prefer
/// EvaluateAllPartitions for whole-table scans (compiles once).
PartitionAnswer EvaluateOnPartition(const Query& query,
                                    const storage::Partition& part,
                                    ExecPolicy policy);

/// Evaluates the query exactly on every partition (vectorized, all
/// hardware threads).
std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionedTable& table);

/// Same, with explicit policy / thread count.
std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionedTable& table,
    const ExecOptions& opts);

/// Multi-shard fan-out: evaluates the query over every shard of `table`,
/// computing per-shard partial answer vectors in parallel and merging them
/// in shard-index order into a vector indexed by *global* partition id.
/// Because shards partition the same global partition set, the result is
/// bit-identical to EvaluateAllPartitions on the flat table for any shard
/// count or assignment policy.
std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::ShardedTable& table,
    const ExecOptions& opts = {});

/// Same fan-out over an abstract PartitionSource — the seam that lets one
/// scan implementation serve resident tables and the io layer's cold /
/// cached stores alike. The query's referenced-column set (predicate +
/// aggregate + GROUP BY columns, via query::ReferencedColumns) is passed
/// to every Acquire/WillScanShard as the projection hint, so out-of-core
/// sources read only the column segments this query touches. Each unit
/// pins its partition just before the kernels run and releases it right
/// after; the first unit to enter a shard fires WillScanShard(s, cols) so
/// out-of-core sources can stage upcoming shards ahead of the scan. A
/// failed Acquire (IO error, checksum mismatch) fails this evaluation
/// only, surfaced as a thrown std::runtime_error carrying the Status —
/// or as QueryAborted when opts.cancel fired (the abort is also checked
/// before every acquire, so a cancelled query stops issuing cold loads).
/// Answers are bit-identical to the resident scan for any source whose
/// shard structure matches storage::AssignShards.
std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionSource& source,
    const ExecOptions& opts = {});

/// Number of vectorized-execution scratch blocks constructed so far in
/// this process. Testing hook: resident-pool scratch reuse means this must
/// not grow between two queries on the same pool.
size_t VectorScratchCreatedForTesting();

/// Total rows matching `pred` over all partitions. The vectorized policy
/// is a pure bitmap-popcount pass (no aggregation state); used for exact
/// selectivity labeling. A null predicate counts every row.
size_t CountMatchingRows(const PredicatePtr& pred,
                         const storage::PartitionedTable& table,
                         const ExecOptions& opts = {});

/// One weighted partition choice (§2.4).
struct WeightedPartition {
  size_t partition = 0;
  double weight = 1.0;
};

/// Combines per-partition answers with weights: A~_g = sum_j w_j A_{g,p_j},
/// then finalizes each aggregate (AVG = weighted sum / weighted count).
QueryAnswer CombineWeighted(const Query& query,
                            const std::vector<PartitionAnswer>& per_partition,
                            const std::vector<WeightedPartition>& selection);

/// Exact answer: every partition with weight 1.
QueryAnswer ExactAnswer(const Query& query,
                        const std::vector<PartitionAnswer>& per_partition);

/// Sorts a selection into canonical combine order: ascending global
/// partition index. CombineWeighted folds partitions in selection order,
/// so canonicalizing first pins the floating-point merge order — the
/// combined answer is then bit-identical for any order the picker emitted
/// its choices in, and a full uniform selection reproduces ExactAnswer
/// bit for bit. Selections hold at most one entry per partition.
void CanonicalizeSelection(std::vector<WeightedPartition>* selection);

/// A weighted combination plus its per-(group, aggregate) standard-error
/// estimate. `error` mirrors `value`: same keys, one entry per aggregate.
struct ApproxCombined {
  QueryAnswer value;
  QueryAnswer error;
};

/// The degraded-serving selection: every reachable partition, each with
/// the uniform Horvitz–Thompson weight total/|reachable| — the estimator
/// for "scan everything we can still reach, treat it as a uniform sample
/// of the whole table". With nothing lost (reachable.size() == total)
/// every weight is exactly 1.0, so CombineWeighted reproduces ExactAnswer
/// bit for bit and CombineWeightedWithError reports zero error — degraded
/// submissions over a healthy store cost nothing in fidelity. `reachable`
/// must be ascending (the canonical combine order) and non-empty.
std::vector<WeightedPartition> DegradedSelection(
    const std::vector<size_t>& reachable, size_t total_partitions);

/// CombineWeighted plus an honest error surface, computed in one pass.
/// `value` is bit-identical to CombineWeighted on the same selection
/// (identical accumulation order and arithmetic). `error` is the
/// Horvitz–Thompson-style standard-error estimate treating each
/// partition j as included with probability 1/w_j:
///   V^(T) = sum_j (1 - 1/w_j) * (w_j * t_j)^2
/// per group for SUM and COUNT totals (partitions read exactly, w_j = 1,
/// contribute zero — a fraction-1.0 uniform selection reports zero error
/// everywhere); AVG uses the delta method on the (sum, count) ratio with
/// the matching covariance term; MIN/MAX report 0 by contract (subset
/// extrema admit no distribution-free error estimate — consumers must
/// treat them as one-sided bounds). These are estimates of sampling
/// standard error, not hard bounds.
ApproxCombined CombineWeightedWithError(
    const Query& query, const std::vector<PartitionAnswer>& per_partition,
    const std::vector<WeightedPartition>& selection);

/// Finalizes a single accumulator for an aggregate function.
double FinalizeAgg(AggFunc func, const AggAccum& acc);

}  // namespace ps3::query

#endif  // PS3_QUERY_EVALUATOR_H_
