// Exact per-partition query evaluation and weighted combination (§2.4).
//
// Each partition produces a PartitionAnswer: group key -> per-aggregate
// (sum, count) accumulators. Weighted combination scales accumulators by
// the partition weight and finalizes SUM/COUNT/AVG at the end, which makes
// AVG correct under weighting (weighted sum / weighted count).
#ifndef PS3_QUERY_EVALUATOR_H_
#define PS3_QUERY_EVALUATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "query/query.h"
#include "storage/table.h"

namespace ps3::query {

/// Group-by key: one 64-bit encoding per group column (dictionary code for
/// categoricals, raw double bits for numerics).
using GroupKey = std::vector<int64_t>;

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (int64_t v : k) h = HashCombine(h, HashInt(v));
    return static_cast<size_t>(h);
  }
};

/// Accumulator for one aggregate within one group.
struct AggAccum {
  double sum = 0.0;
  double count = 0.0;

  void Add(const AggAccum& other, double weight) {
    sum += other.sum * weight;
    count += other.count * weight;
  }
};

using PartitionAnswer =
    std::unordered_map<GroupKey, std::vector<AggAccum>, GroupKeyHash>;

/// Finalized answer: group key -> one value per aggregate.
using QueryAnswer =
    std::unordered_map<GroupKey, std::vector<double>, GroupKeyHash>;

/// Evaluates the query exactly on one partition.
PartitionAnswer EvaluateOnPartition(const Query& query,
                                    const storage::Partition& part);

/// Evaluates the query exactly on every partition.
std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionedTable& table);

/// One weighted partition choice (§2.4).
struct WeightedPartition {
  size_t partition = 0;
  double weight = 1.0;
};

/// Combines per-partition answers with weights: A~_g = sum_j w_j A_{g,p_j},
/// then finalizes each aggregate (AVG = weighted sum / weighted count).
QueryAnswer CombineWeighted(const Query& query,
                            const std::vector<PartitionAnswer>& per_partition,
                            const std::vector<WeightedPartition>& selection);

/// Exact answer: every partition with weight 1.
QueryAnswer ExactAnswer(const Query& query,
                        const std::vector<PartitionAnswer>& per_partition);

/// Finalizes a single accumulator for an aggregate function.
double FinalizeAgg(AggFunc func, const AggAccum& acc);

}  // namespace ps3::query

#endif  // PS3_QUERY_EVALUATOR_H_
