// Scalar expressions in the SELECT clause: columns, constants, and the
// arithmetic combinations the paper supports (§2.2: +, -, and * / in some
// cases). Expressions are immutable trees shared via shared_ptr so queries
// are cheap to copy.
#ifndef PS3_QUERY_EXPR_H_
#define PS3_QUERY_EXPR_H_

#include <memory>
#include <set>
#include <string>

#include "storage/partition.h"
#include "storage/schema.h"

namespace ps3::query {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind { kColumn, kConst, kAdd, kSub, kMul, kDiv };

  /// Reference to a numeric column by index.
  static ExprPtr Column(size_t col);
  static ExprPtr Const(double value);
  static ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Div(ExprPtr lhs, ExprPtr rhs);

  Kind kind() const { return kind_; }
  size_t column() const { return column_; }
  double constant() const { return constant_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  /// Evaluates on one row of a partition.
  double Eval(const storage::Partition& part, size_t row) const;

  /// Adds all referenced column indices to `cols`.
  void CollectColumns(std::set<size_t>* cols) const;

  /// Rendering like "(l_extendedprice * (1 - l_discount))".
  std::string ToString(const storage::Schema& schema) const;

 private:
  Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  size_t column_ = 0;
  double constant_ = 0.0;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace ps3::query

#endif  // PS3_QUERY_EXPR_H_
