#include "query/predicate.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace ps3::query {

bool Clause::Matches(const storage::Partition& part, size_t row) const {
  if (categorical) {
    int32_t code = part.CodeAt(column, row);
    return std::find(in_codes.begin(), in_codes.end(), code) !=
           in_codes.end();
  }
  double v = part.NumericAt(column, row);
  switch (op) {
    case CompareOp::kLt:
      return v < value;
    case CompareOp::kLe:
      return v <= value;
    case CompareOp::kGt:
      return v > value;
    case CompareOp::kGe:
      return v >= value;
    case CompareOp::kEq:
      return v == value;
    case CompareOp::kNe:
      return v != value;
  }
  return false;
}

std::string Clause::ToString(const storage::Schema& schema) const {
  const std::string& name = schema.field(column).name;
  if (categorical) {
    std::vector<std::string> vals;
    vals.reserve(in_codes.size());
    for (int32_t c : in_codes) vals.push_back(StrFormat("#%d", c));
    return name + " IN (" + Join(vals, ", ") + ")";
  }
  const char* op_s = "?";
  switch (op) {
    case CompareOp::kLt:
      op_s = "<";
      break;
    case CompareOp::kLe:
      op_s = "<=";
      break;
    case CompareOp::kGt:
      op_s = ">";
      break;
    case CompareOp::kGe:
      op_s = ">=";
      break;
    case CompareOp::kEq:
      op_s = "=";
      break;
    case CompareOp::kNe:
      op_s = "!=";
      break;
  }
  return StrFormat("%s %s %g", name.c_str(), op_s, value);
}

PredicatePtr Predicate::True() {
  static const PredicatePtr kTruePred(new Predicate(Kind::kTrue));
  return kTruePred;
}

PredicatePtr Predicate::MakeClause(Clause clause) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kClause));
  p->clause_ = std::move(clause);
  return p;
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAnd));
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kOr));
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr child) {
  assert(child);
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kNot));
  p->children_.push_back(std::move(child));
  return p;
}

PredicatePtr Predicate::NumericCompare(size_t column, CompareOp op,
                                       double value) {
  Clause c;
  c.column = column;
  c.categorical = false;
  c.op = op;
  c.value = value;
  return MakeClause(std::move(c));
}

PredicatePtr Predicate::CategoricalIn(size_t column,
                                      std::vector<int32_t> codes) {
  Clause c;
  c.column = column;
  c.categorical = true;
  c.in_codes = std::move(codes);
  return MakeClause(std::move(c));
}

bool Predicate::Matches(const storage::Partition& part, size_t row) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kClause:
      return clause_.Matches(part, row);
    case Kind::kAnd:
      for (const auto& c : children_) {
        if (!c->Matches(part, row)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : children_) {
        if (c->Matches(part, row)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0]->Matches(part, row);
  }
  return false;
}

void Predicate::CollectColumns(std::set<size_t>* cols) const {
  if (kind_ == Kind::kClause) {
    cols->insert(clause_.column);
    return;
  }
  for (const auto& c : children_) c->CollectColumns(cols);
}

size_t Predicate::NumClauses() const {
  if (kind_ == Kind::kClause) return 1;
  size_t n = 0;
  for (const auto& c : children_) n += c->NumClauses();
  return n;
}

std::string Predicate::ToString(const storage::Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kClause:
      return clause_.ToString(schema);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const auto& c : children_) parts.push_back(c->ToString(schema));
      return "(" + Join(parts, kind_ == Kind::kAnd ? " AND " : " OR ") + ")";
    }
    case Kind::kNot:
      return "NOT " + children_[0]->ToString(schema);
  }
  return "?";
}

}  // namespace ps3::query
