// Predicate ASTs (§2.2): conjunctions, disjunctions and negations over
// single-column clauses. Numeric clauses are comparisons against a
// constant; categorical clauses are equality / IN over dictionary codes.
#ifndef PS3_QUERY_PREDICATE_H_
#define PS3_QUERY_PREDICATE_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/partition.h"
#include "storage/schema.h"

namespace ps3::query {

enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// One single-column clause, `c op v` or `c IN (...)`.
struct Clause {
  size_t column = 0;
  bool categorical = false;
  // Numeric clause:
  CompareOp op = CompareOp::kLt;
  double value = 0.0;
  // Categorical clause: row matches if its code is in `in_codes`
  // (single-element set == equality test).
  std::vector<int32_t> in_codes;

  bool Matches(const storage::Partition& part, size_t row) const;
  std::string ToString(const storage::Schema& schema) const;
};

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  enum class Kind { kTrue, kClause, kAnd, kOr, kNot };

  static PredicatePtr True();
  static PredicatePtr MakeClause(Clause clause);
  static PredicatePtr And(std::vector<PredicatePtr> children);
  static PredicatePtr Or(std::vector<PredicatePtr> children);
  static PredicatePtr Not(PredicatePtr child);

  // Convenience clause builders.
  static PredicatePtr NumericCompare(size_t column, CompareOp op,
                                     double value);
  static PredicatePtr CategoricalIn(size_t column,
                                    std::vector<int32_t> codes);

  Kind kind() const { return kind_; }
  const Clause& clause() const { return clause_; }
  const std::vector<PredicatePtr>& children() const { return children_; }

  bool Matches(const storage::Partition& part, size_t row) const;

  void CollectColumns(std::set<size_t>* cols) const;

  /// Number of leaf clauses (PS3 falls back to random sampling above 10,
  /// Appendix B.1).
  size_t NumClauses() const;

  std::string ToString(const storage::Schema& schema) const;

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  Clause clause_;
  std::vector<PredicatePtr> children_;
};

}  // namespace ps3::query

#endif  // PS3_QUERY_PREDICATE_H_
