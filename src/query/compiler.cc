#include "query/compiler.h"

#include <algorithm>
#include <cassert>

namespace ps3::query {

namespace {

/// Emits `pred` in post-order and returns the stack height consumed by the
/// subtree's result (always 1); tracks the high-water mark in `max_stack`.
void EmitPredicate(const Predicate& pred, size_t depth,
                   std::vector<PredInstr>* instrs, size_t* max_stack) {
  *max_stack = std::max(*max_stack, depth + 1);
  switch (pred.kind()) {
    case Predicate::Kind::kTrue: {
      PredInstr in;
      in.op = PredInstr::Op::kTrue;
      instrs->push_back(std::move(in));
      return;
    }
    case Predicate::Kind::kClause: {
      const Clause& c = pred.clause();
      PredInstr in;
      in.column = c.column;
      if (c.categorical) {
        in.op = PredInstr::Op::kInSet;
        in.codes = c.in_codes;
        std::sort(in.codes.begin(), in.codes.end());
        in.codes.erase(std::unique(in.codes.begin(), in.codes.end()),
                       in.codes.end());
      } else {
        in.op = PredInstr::Op::kCmpConst;
        in.cmp = c.op;
        in.value = c.value;
      }
      instrs->push_back(std::move(in));
      return;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      const auto& children = pred.children();
      for (size_t i = 0; i < children.size(); ++i) {
        EmitPredicate(*children[i], depth + i, instrs, max_stack);
      }
      PredInstr in;
      in.op = pred.kind() == Predicate::Kind::kAnd ? PredInstr::Op::kAnd
                                                   : PredInstr::Op::kOr;
      in.arity = children.size();
      instrs->push_back(std::move(in));
      return;
    }
    case Predicate::Kind::kNot: {
      EmitPredicate(*pred.children()[0], depth, instrs, max_stack);
      PredInstr in;
      in.op = PredInstr::Op::kNot;
      instrs->push_back(std::move(in));
      return;
    }
  }
}

void EmitExpr(const Expr& expr, size_t depth, std::vector<ExprInstr>* instrs,
              size_t* max_stack) {
  *max_stack = std::max(*max_stack, depth + 1);
  switch (expr.kind()) {
    case Expr::Kind::kColumn: {
      ExprInstr in;
      in.op = ExprInstr::Op::kLoadColumn;
      in.column = expr.column();
      instrs->push_back(in);
      return;
    }
    case Expr::Kind::kConst: {
      ExprInstr in;
      in.op = ExprInstr::Op::kLoadConst;
      in.value = expr.constant();
      instrs->push_back(in);
      return;
    }
    default: {
      ExprInstr in;
      switch (expr.kind()) {
        case Expr::Kind::kAdd:
          in.op = ExprInstr::Op::kAdd;
          break;
        case Expr::Kind::kSub:
          in.op = ExprInstr::Op::kSub;
          break;
        case Expr::Kind::kMul:
          in.op = ExprInstr::Op::kMul;
          break;
        default:
          in.op = ExprInstr::Op::kDiv;
          break;
      }
      const Expr& lhs = *expr.lhs();
      const Expr& rhs = *expr.rhs();
      // Fuse a constant operand into the op instead of emitting it as a
      // stack entry (unless both sides are constant; then the lhs is a
      // plain kLoadConst and the rhs fuses).
      if (rhs.kind() == Expr::Kind::kConst) {
        EmitExpr(lhs, depth, instrs, max_stack);
        in.fused_const = true;
        in.value = rhs.constant();
      } else if (lhs.kind() == Expr::Kind::kConst) {
        EmitExpr(rhs, depth, instrs, max_stack);
        in.fused_const = true;
        in.const_is_lhs = true;
        in.value = lhs.constant();
      } else {
        EmitExpr(lhs, depth, instrs, max_stack);
        EmitExpr(rhs, depth + 1, instrs, max_stack);
      }
      instrs->push_back(in);
      return;
    }
  }
}

}  // namespace

PredProgram CompilePredicate(const PredicatePtr& pred) {
  PredProgram prog;
  const Predicate& root = pred ? *pred : *Predicate::True();
  EmitPredicate(root, 0, &prog.instrs, &prog.max_stack);
  prog.always_true = prog.instrs.size() == 1 &&
                     prog.instrs[0].op == PredInstr::Op::kTrue;
  return prog;
}

ExprProgram CompileExpr(const ExprPtr& expr) {
  ExprProgram prog;
  assert(expr);
  EmitExpr(*expr, 0, &prog.instrs, &prog.max_stack);
  return prog;
}

namespace {

void CollectPredColumns(const PredProgram& prog, std::vector<size_t>* cols) {
  for (const PredInstr& in : prog.instrs) {
    if (in.op == PredInstr::Op::kCmpConst || in.op == PredInstr::Op::kInSet) {
      cols->push_back(in.column);
    }
  }
}

void CollectExprColumns(const ExprProgram& prog, std::vector<size_t>* cols) {
  for (const ExprInstr& in : prog.instrs) {
    if (in.op == ExprInstr::Op::kLoadColumn) cols->push_back(in.column);
  }
}

}  // namespace

storage::ColumnSet ReferencedColumns(const CompiledQuery& cq) {
  std::vector<size_t> cols;
  CollectPredColumns(cq.predicate, &cols);
  for (const CompiledAggregate& agg : cq.aggregates) {
    if (agg.has_expr) CollectExprColumns(agg.expr, &cols);
    if (agg.has_filter) CollectPredColumns(agg.filter, &cols);
  }
  cols.insert(cols.end(), cq.group_by.begin(), cq.group_by.end());
  return storage::ColumnSet::Of(std::move(cols));
}

CompiledQuery CompileQuery(const Query& query) {
  CompiledQuery cq;
  cq.predicate = CompilePredicate(query.EffectivePredicate());
  cq.group_by = query.group_by;
  cq.aggregates.reserve(query.aggregates.size());
  for (const Aggregate& agg : query.aggregates) {
    CompiledAggregate ca;
    ca.func = agg.func;
    if (agg.expr) {
      ca.has_expr = true;
      ca.expr = CompileExpr(agg.expr);
    }
    if (agg.filter) {
      ca.has_filter = true;
      ca.filter = CompilePredicate(agg.filter);
    }
    cq.aggregates.push_back(std::move(ca));
  }
  return cq;
}

}  // namespace ps3::query
