// Query representation: aggregates + predicate + group-by (§2.2).
#ifndef PS3_QUERY_QUERY_H_
#define PS3_QUERY_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "query/expr.h"
#include "query/predicate.h"
#include "storage/schema.h"

namespace ps3::query {

enum class AggFunc { kSum, kCount, kAvg, kMin, kMax };

/// One aggregate in the SELECT list. COUNT(*) leaves `expr` null; every
/// other function requires one (use the factories).
/// `filter` implements the CASE-condition rewrite (§2.2): the aggregate
/// only accumulates rows matching both the query predicate and `filter`.
/// MIN/MAX over an empty row set finalize to 0.0, like AVG.
struct Aggregate {
  AggFunc func = AggFunc::kSum;
  ExprPtr expr;
  PredicatePtr filter;  // null = no CASE condition
  std::string name;

  static Aggregate Sum(ExprPtr e, std::string name = "sum");
  static Aggregate Count(std::string name = "count");
  static Aggregate Avg(ExprPtr e, std::string name = "avg");
  static Aggregate Min(ExprPtr e, std::string name = "min");
  static Aggregate Max(ExprPtr e, std::string name = "max");
  static Aggregate SumCase(ExprPtr e, PredicatePtr filter,
                           std::string name = "sum_case");
};

struct Query {
  std::vector<Aggregate> aggregates;
  PredicatePtr predicate;        // null treated as TRUE
  std::vector<size_t> group_by;  // column indices; empty = single group

  /// All columns referenced anywhere (aggregates, predicate, group-by).
  std::set<size_t> UsedColumns() const;

  /// Leaf clause count across the query predicate (not CASE filters).
  size_t NumPredicateClauses() const;

  const PredicatePtr& EffectivePredicate() const;

  std::string ToString(const storage::Schema& schema) const;
};

}  // namespace ps3::query

#endif  // PS3_QUERY_QUERY_H_
