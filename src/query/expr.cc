#include "query/expr.h"

#include <cassert>

#include "common/string_util.h"

namespace ps3::query {

ExprPtr Expr::Column(size_t col) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kColumn));
  e->column_ = col;
  return e;
}

ExprPtr Expr::Const(double value) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kConst));
  e->constant_ = value;
  return e;
}

ExprPtr Expr::Add(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAdd));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}
ExprPtr Expr::Sub(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kSub));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}
ExprPtr Expr::Mul(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kMul));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}
ExprPtr Expr::Div(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kDiv));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

double Expr::Eval(const storage::Partition& part, size_t row) const {
  switch (kind_) {
    case Kind::kColumn:
      return part.NumericAt(column_, row);
    case Kind::kConst:
      return constant_;
    case Kind::kAdd:
      return lhs_->Eval(part, row) + rhs_->Eval(part, row);
    case Kind::kSub:
      return lhs_->Eval(part, row) - rhs_->Eval(part, row);
    case Kind::kMul:
      return lhs_->Eval(part, row) * rhs_->Eval(part, row);
    case Kind::kDiv: {
      double d = rhs_->Eval(part, row);
      return d == 0.0 ? 0.0 : lhs_->Eval(part, row) / d;
    }
  }
  return 0.0;
}

void Expr::CollectColumns(std::set<size_t>* cols) const {
  switch (kind_) {
    case Kind::kColumn:
      cols->insert(column_);
      break;
    case Kind::kConst:
      break;
    default:
      lhs_->CollectColumns(cols);
      rhs_->CollectColumns(cols);
  }
}

std::string Expr::ToString(const storage::Schema& schema) const {
  switch (kind_) {
    case Kind::kColumn:
      return schema.field(column_).name;
    case Kind::kConst:
      return StrFormat("%g", constant_);
    case Kind::kAdd:
      return "(" + lhs_->ToString(schema) + " + " + rhs_->ToString(schema) +
             ")";
    case Kind::kSub:
      return "(" + lhs_->ToString(schema) + " - " + rhs_->ToString(schema) +
             ")";
    case Kind::kMul:
      return "(" + lhs_->ToString(schema) + " * " + rhs_->ToString(schema) +
             ")";
    case Kind::kDiv:
      return "(" + lhs_->ToString(schema) + " / " + rhs_->ToString(schema) +
             ")";
  }
  return "?";
}

}  // namespace ps3::query
