#include "query/metrics.h"

#include <cmath>

namespace ps3::query {

ErrorMetrics& ErrorMetrics::operator+=(const ErrorMetrics& o) {
  missed_groups += o.missed_groups;
  avg_rel_error += o.avg_rel_error;
  abs_over_true += o.abs_over_true;
  return *this;
}

ErrorMetrics& ErrorMetrics::operator/=(double d) {
  missed_groups /= d;
  avg_rel_error /= d;
  abs_over_true /= d;
  return *this;
}

ErrorMetrics ComputeErrorMetrics(const Query& query, const QueryAnswer& exact,
                                 const QueryAnswer& estimate) {
  ErrorMetrics m;
  if (exact.empty()) return m;
  const size_t n_aggs = query.aggregates.size();
  size_t missed = 0;
  double rel_sum = 0.0;
  size_t rel_count = 0;
  std::vector<double> abs_err_sum(n_aggs, 0.0);
  std::vector<double> abs_true_sum(n_aggs, 0.0);

  for (const auto& [key, truth] : exact) {
    auto it = estimate.find(key);
    const std::vector<double>* est = it == estimate.end() ? nullptr
                                                          : &it->second;
    if (est == nullptr) ++missed;
    for (size_t a = 0; a < n_aggs; ++a) {
      double t = truth[a];
      double e = est != nullptr ? (*est)[a] : 0.0;
      double abs_err = std::fabs(e - t);
      abs_err_sum[a] += abs_err;
      abs_true_sum[a] += std::fabs(t);
      // Relative error; a missed group counts as 1 (§5.1.4).
      double rel;
      if (est == nullptr) {
        rel = 1.0;
      } else if (std::fabs(t) > 1e-12) {
        rel = abs_err / std::fabs(t);
      } else {
        rel = std::fabs(e) > 1e-12 ? 1.0 : 0.0;
      }
      rel_sum += rel;
      ++rel_count;
    }
  }
  m.missed_groups =
      static_cast<double>(missed) / static_cast<double>(exact.size());
  m.avg_rel_error =
      rel_count > 0 ? rel_sum / static_cast<double>(rel_count) : 0.0;
  double aot = 0.0;
  size_t aot_count = 0;
  for (size_t a = 0; a < n_aggs; ++a) {
    if (abs_true_sum[a] > 1e-12) {
      aot += abs_err_sum[a] / abs_true_sum[a];
      ++aot_count;
    }
  }
  m.abs_over_true =
      aot_count > 0 ? aot / static_cast<double>(aot_count) : 0.0;
  return m;
}

}  // namespace ps3::query
