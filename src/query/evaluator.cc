#include "query/evaluator.h"

#include <cstring>

namespace ps3::query {

namespace {

int64_t EncodeGroupValue(const storage::Partition& part, size_t col,
                         size_t row) {
  const auto& schema = part.table().schema();
  if (schema.IsCategorical(col)) {
    return part.CodeAt(col, row);
  }
  double v = part.NumericAt(col, row);
  if (v == 0.0) v = 0.0;  // canonicalize -0.0
  int64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

PartitionAnswer EvaluateOnPartition(const Query& query,
                                    const storage::Partition& part) {
  PartitionAnswer answer;
  const PredicatePtr& pred = query.EffectivePredicate();
  const size_t n_aggs = query.aggregates.size();
  GroupKey key(query.group_by.size());
  for (size_t r = 0; r < part.num_rows(); ++r) {
    if (!pred->Matches(part, r)) continue;
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      key[g] = EncodeGroupValue(part, query.group_by[g], r);
    }
    auto [it, inserted] = answer.try_emplace(key);
    if (inserted) it->second.resize(n_aggs);
    for (size_t a = 0; a < n_aggs; ++a) {
      const Aggregate& agg = query.aggregates[a];
      if (agg.filter && !agg.filter->Matches(part, r)) continue;
      AggAccum& acc = it->second[a];
      acc.count += 1.0;
      if (agg.expr) acc.sum += agg.expr->Eval(part, r);
    }
  }
  return answer;
}

std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionedTable& table) {
  std::vector<PartitionAnswer> out;
  out.reserve(table.num_partitions());
  for (size_t i = 0; i < table.num_partitions(); ++i) {
    out.push_back(EvaluateOnPartition(query, table.partition(i)));
  }
  return out;
}

double FinalizeAgg(AggFunc func, const AggAccum& acc) {
  switch (func) {
    case AggFunc::kSum:
      return acc.sum;
    case AggFunc::kCount:
      return acc.count;
    case AggFunc::kAvg:
      return acc.count > 0.0 ? acc.sum / acc.count : 0.0;
  }
  return 0.0;
}

QueryAnswer CombineWeighted(
    const Query& query, const std::vector<PartitionAnswer>& per_partition,
    const std::vector<WeightedPartition>& selection) {
  PartitionAnswer merged;
  const size_t n_aggs = query.aggregates.size();
  for (const auto& wp : selection) {
    const PartitionAnswer& pa = per_partition[wp.partition];
    for (const auto& [key, accs] : pa) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) it->second.resize(n_aggs);
      for (size_t a = 0; a < n_aggs; ++a) {
        it->second[a].Add(accs[a], wp.weight);
      }
    }
  }
  QueryAnswer out;
  out.reserve(merged.size());
  for (const auto& [key, accs] : merged) {
    std::vector<double> vals(n_aggs);
    for (size_t a = 0; a < n_aggs; ++a) {
      vals[a] = FinalizeAgg(query.aggregates[a].func, accs[a]);
    }
    out.emplace(key, std::move(vals));
  }
  return out;
}

QueryAnswer ExactAnswer(const Query& query,
                        const std::vector<PartitionAnswer>& per_partition) {
  std::vector<WeightedPartition> all;
  all.reserve(per_partition.size());
  for (size_t i = 0; i < per_partition.size(); ++i) {
    all.push_back({i, 1.0});
  }
  return CombineWeighted(query, per_partition, all);
}

}  // namespace ps3::query
