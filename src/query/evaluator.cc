#include "query/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "query/bitmap_evaluator.h"
#include "query/compiler.h"
#include "runtime/worker_pool.h"
#include "storage/partition_source.h"
#include "storage/sharded_table.h"

namespace ps3::query {

namespace {

int64_t EncodeGroupValue(const storage::Partition& part, size_t col,
                         size_t row) {
  const auto& schema = part.table().schema();
  if (schema.IsCategorical(col)) {
    return part.CodeAt(col, row);
  }
  double v = part.NumericAt(col, row);
  if (v == 0.0) v = 0.0;  // canonicalize -0.0
  int64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// ------------------------------------------------------------------
// Vectorized execution.

/// Cap on the dense group-id space (product of GROUP BY dictionary sizes).
/// Above this the engine falls back to hash-probing over set bits only.
constexpr size_t kMaxDenseGroups = size_t{1} << 20;

/// Dense expression materialization threshold: below this selected-row
/// fraction, evaluating the expression only at set bits beats touching
/// every row columnar.
constexpr double kDenseExprFraction = 0.25;

std::atomic<size_t> g_vector_scratch_created{0};

/// Per-lane scratch, owned by the executing WorkerPool (resident workers
/// keep their slot alive across ParallelFor calls, so bitmaps, expression
/// buffers and the dense group-id table amortize across a whole query
/// stream, not just the partitions of one query).
struct VectorScratch {
  VectorScratch() { g_vector_scratch_created.fetch_add(1); }

  BitmapEvaluator be;
  SelectionBitmap main;
  std::vector<SelectionBitmap> agg_bitmaps;
  std::vector<std::vector<double>> agg_values;
  std::vector<int32_t> slot_of;  ///< group id -> dense slot, -1 = unseen
  std::vector<size_t> touched;   ///< ids to reset after each partition
  std::vector<const double*> agg_ptr;  ///< dense expr values per aggregate
  // Dense group-id path containers, reused (cleared, not reconstructed)
  // across partitions.
  std::vector<const int32_t*> gcodes;
  std::vector<size_t> strides;
  std::vector<GroupKey> keys;
  std::vector<std::vector<AggAccum>> groups;
  // SIMD-assisted grouped-aggregation staging: selected row indices,
  // their dense group ids, and per-aggregate gathered values (the AVX2
  // gather kernels fill these; the FP accumulate stays scalar in row
  // order, which is what keeps answers bit-identical to kScalar).
  std::vector<uint32_t> row_idx;
  std::vector<uint32_t> group_ids;
  std::vector<uint32_t> strides32;
  std::vector<std::vector<double>> gathered;
};

/// Resolves the pool an ExecOptions runs on.
runtime::WorkerPool& PoolOf(const ExecOptions& opts) {
  return opts.pool != nullptr ? *opts.pool : runtime::WorkerPool::Shared();
}

/// Maps an ExecOptions onto the pool's per-job scheduling options, so
/// every evaluation pass carries the query's class and cancel token.
runtime::WorkerPool::TaskOptions TaskOf(const ExecOptions& opts) {
  runtime::WorkerPool::TaskOptions topts;
  topts.max_lanes = opts.num_threads;
  topts.query_class = opts.query_class;
  topts.cancel = opts.cancel;
  return topts;
}

PartitionAnswer EvaluateVectorized(const CompiledQuery& cq,
                                   const storage::Partition& part,
                                   VectorScratch* s) {
  const size_t n = part.num_rows();
  const size_t n_aggs = cq.aggregates.size();
  PartitionAnswer answer;
  if (n == 0) return answer;

  s->be.EvalPredicate(cq.predicate, part, &s->main);
  const size_t selected = cq.predicate.always_true ? n : s->main.CountOnes();
  if (selected == 0) return answer;

  // Per-aggregate effective bitmaps: CASE filter ∧ main predicate.
  if (s->agg_bitmaps.size() < n_aggs) s->agg_bitmaps.resize(n_aggs);
  if (s->agg_values.size() < n_aggs) s->agg_values.resize(n_aggs);
  for (size_t a = 0; a < n_aggs; ++a) {
    if (!cq.aggregates[a].has_filter) continue;
    s->be.EvalPredicate(cq.aggregates[a].filter, part, &s->agg_bitmaps[a]);
    s->agg_bitmaps[a].AndWith(s->main);
  }

  // Expression values: columnar when the selection is dense, else lazy at
  // set bits. Per-row values are bit-identical either way. A bare-column
  // expression (SUM(col)) reads the storage span directly instead of
  // materializing a copy.
  const bool dense_expr =
      static_cast<double>(selected) >=
      kDenseExprFraction * static_cast<double>(n);
  if (s->agg_ptr.size() < n_aggs) s->agg_ptr.resize(n_aggs);
  if (dense_expr) {
    for (size_t a = 0; a < n_aggs; ++a) {
      const CompiledAggregate& ca = cq.aggregates[a];
      if (!ca.has_expr) continue;
      if (ca.expr.instrs.size() == 1 &&
          ca.expr.instrs[0].op == ExprInstr::Op::kLoadColumn) {
        s->agg_ptr[a] = part.NumericSpan(ca.expr.instrs[0].column);
        continue;
      }
      s->be.EvalExprDense(ca.expr, part, &s->agg_values[a]);
      s->agg_ptr[a] = s->agg_values[a].data();
    }
  }
  auto expr_value = [&](size_t a, size_t r) {
    return dense_expr ? s->agg_ptr[a][r]
                      : s->be.EvalExprAt(cq.aggregates[a].expr, part, r);
  };

  // ---- single-group fast path (no GROUP BY): bulk count + ordered sum;
  // MIN/MAX reduce through the lane-parallel gather kernels when the
  // aggregate is unfiltered over dense-materialized values (extrema are
  // order-insensitive on NaN-free data, so lanes are safe where SUM
  // would not be — see runtime/simd.h).
  if (cq.group_by.empty()) {
    auto [it, inserted] = answer.try_emplace(GroupKey{});
    (void)inserted;
    it->second.resize(n_aggs);
    bool rows_built = false;
    for (size_t a = 0; a < n_aggs; ++a) {
      const CompiledAggregate& ca = cq.aggregates[a];
      const SelectionBitmap& eff =
          ca.has_filter ? s->agg_bitmaps[a] : s->main;
      AggAccum& acc = it->second[a];
      acc.count = static_cast<double>(ca.has_filter ? eff.CountOnes()
                                                    : selected);
      if (ca.has_expr) {
        double sum = 0.0;
        if (dense_expr) {
          const double* vals = s->agg_ptr[a];
          eff.ForEachSetBit([&](size_t r) { sum += vals[r]; });
        } else {
          eff.ForEachSetBit(
              [&](size_t r) { sum += s->be.EvalExprAt(ca.expr, part, r); });
        }
        acc.sum = sum;
        if (ca.func == AggFunc::kMin || ca.func == AggFunc::kMax) {
#if defined(__x86_64__) || defined(__i386__)
          if (!ca.has_filter && dense_expr && s->be.use_avx2()) {
            if (!rows_built) {
              s->row_idx.resize(selected);
              size_t w = 0;
              s->main.ForEachSetBit([&](size_t r) {
                s->row_idx[w++] = static_cast<uint32_t>(r);
              });
              rows_built = true;
            }
            double mn = runtime::MinGatherAvx2(s->agg_ptr[a],
                                               s->row_idx.data(), selected);
            double mx = runtime::MaxGatherAvx2(s->agg_ptr[a],
                                               s->row_idx.data(), selected);
            // Canonicalizing the reduced extrema (not each lane) is
            // equivalent to the scalar per-row fold: signed zeros only
            // ever tie with each other.
            if (mn == 0.0) mn = 0.0;
            if (mx == 0.0) mx = 0.0;
            if (mn < acc.min) acc.min = mn;
            if (mx > acc.max) acc.max = mx;
          } else
#endif
          {
            eff.ForEachSetBit(
                [&](size_t r) { acc.FoldExtrema(expr_value(a, r)); });
          }
        }
      }
    }
    return answer;
  }

  // Row-wise accumulation shared by both grouped paths; iteration over set
  // bits in ascending row order keeps every accumulator bit-identical to
  // the scalar loop.
  auto accumulate = [&](std::vector<AggAccum>& accs, size_t r) {
    for (size_t a = 0; a < n_aggs; ++a) {
      const CompiledAggregate& ca = cq.aggregates[a];
      if (ca.has_filter && !s->agg_bitmaps[a].Test(r)) continue;
      AggAccum& acc = accs[a];
      acc.count += 1.0;
      if (ca.has_expr) {
        const double v = expr_value(a, r);
        acc.sum += v;
        if (ca.func == AggFunc::kMin || ca.func == AggFunc::kMax) {
          acc.FoldExtrema(v);
        }
      }
    }
  };

  // ---- dictionary-coded dense group-id path: all GROUP BY columns
  // categorical and the id space (product of dictionary sizes) small.
  const auto& schema = part.table().schema();
  bool dense_groups = true;
  size_t space = 1;
  s->gcodes.clear();
  s->strides.clear();
  for (size_t col : cq.group_by) {
    if (!schema.IsCategorical(col)) {
      dense_groups = false;
      break;
    }
    size_t dict_size = std::max<size_t>(part.table().column(col).dict()->size(), 1);
    if (space > kMaxDenseGroups / dict_size) {
      dense_groups = false;
      break;
    }
    s->strides.push_back(space);
    space *= dict_size;
    s->gcodes.push_back(part.CodeSpan(col));
  }

  if (dense_groups) {
    if (s->slot_of.size() < space) s->slot_of.resize(space, -1);
    s->keys.clear();
    s->groups.clear();
    const int32_t* const* gcodes = s->gcodes.data();
    const size_t* strides = s->strides.data();
    const size_t n_gcols = s->gcodes.size();

#if defined(__x86_64__) || defined(__i386__)
    // SIMD-assisted variant: expand the selection once, compute every
    // selected row's dense group id with the AVX2 code-gather kernel, and
    // compact each aggregate's expression values with the AVX2 value
    // gather — then run a tight *scalar* accumulate in ascending row
    // order. Only data movement and integer id math are vectorized; every
    // FP addition happens in the same order as the scalar reference, so
    // answers stay bit-identical. Engaged only when no aggregate carries
    // a CASE filter (their bitmaps would need per-row tests anyway) and
    // expression values are dense-materialized; sparse selections skip it
    // — the setup wouldn't amortize.
    bool simd_groups = s->be.use_avx2() && selected >= 64;
    for (size_t a = 0; simd_groups && a < n_aggs; ++a) {
      const CompiledAggregate& ca = cq.aggregates[a];
      if (ca.has_filter || (ca.has_expr && !dense_expr)) simd_groups = false;
    }
    if (simd_groups) {
      s->row_idx.resize(selected);
      size_t w = 0;
      s->main.ForEachSetBit(
          [&](size_t r) { s->row_idx[w++] = static_cast<uint32_t>(r); });
      s->strides32.assign(s->strides.begin(), s->strides.end());
      s->group_ids.resize(selected);
      runtime::DenseGroupIdsAvx2(gcodes, s->strides32.data(), n_gcols,
                                 s->row_idx.data(), selected,
                                 s->group_ids.data());
      if (s->gathered.size() < n_aggs) s->gathered.resize(n_aggs);
      for (size_t a = 0; a < n_aggs; ++a) {
        if (!cq.aggregates[a].has_expr) continue;
        s->gathered[a].resize(selected);
        runtime::GatherDoublesAvx2(s->agg_ptr[a], s->row_idx.data(),
                                   selected, s->gathered[a].data());
      }
      for (size_t k = 0; k < selected; ++k) {
        const uint32_t id = s->group_ids[k];
        int32_t slot = s->slot_of[id];
        if (slot < 0) {
          slot = static_cast<int32_t>(s->groups.size());
          s->slot_of[id] = slot;
          s->touched.push_back(id);
          const size_t r = s->row_idx[k];
          GroupKey key(n_gcols);
          for (size_t g = 0; g < n_gcols; ++g) key[g] = gcodes[g][r];
          s->keys.push_back(std::move(key));
          s->groups.emplace_back(n_aggs);
        }
        std::vector<AggAccum>& accs = s->groups[static_cast<size_t>(slot)];
        for (size_t a = 0; a < n_aggs; ++a) {
          const CompiledAggregate& ca = cq.aggregates[a];
          AggAccum& acc = accs[a];
          acc.count += 1.0;
          if (ca.has_expr) {
            const double v = s->gathered[a][k];
            acc.sum += v;
            if (ca.func == AggFunc::kMin || ca.func == AggFunc::kMax) {
              acc.FoldExtrema(v);
            }
          }
        }
      }
      for (size_t id : s->touched) s->slot_of[id] = -1;
      s->touched.clear();
      answer.reserve(s->groups.size());
      for (size_t i = 0; i < s->groups.size(); ++i) {
        answer.emplace(std::move(s->keys[i]), std::move(s->groups[i]));
      }
      return answer;
    }
#endif  // x86

    s->main.ForEachSetBit([&](size_t r) {
      size_t id = 0;
      for (size_t g = 0; g < n_gcols; ++g) {
        id += static_cast<size_t>(gcodes[g][r]) * strides[g];
      }
      int32_t slot = s->slot_of[id];
      if (slot < 0) {
        slot = static_cast<int32_t>(s->groups.size());
        s->slot_of[id] = slot;
        s->touched.push_back(id);
        GroupKey key(n_gcols);
        for (size_t g = 0; g < n_gcols; ++g) key[g] = gcodes[g][r];
        s->keys.push_back(std::move(key));
        s->groups.emplace_back(n_aggs);
      }
      accumulate(s->groups[static_cast<size_t>(slot)], r);
    });
    for (size_t id : s->touched) s->slot_of[id] = -1;
    s->touched.clear();
    answer.reserve(s->groups.size());
    for (size_t i = 0; i < s->groups.size(); ++i) {
      answer.emplace(std::move(s->keys[i]), std::move(s->groups[i]));
    }
    return answer;
  }

  // ---- generic grouped path: hash-probe, but only at set bits.
  GroupKey key(cq.group_by.size());
  s->main.ForEachSetBit([&](size_t r) {
    for (size_t g = 0; g < cq.group_by.size(); ++g) {
      key[g] = EncodeGroupValue(part, cq.group_by[g], r);
    }
    auto [it, inserted] = answer.try_emplace(key);
    if (inserted) it->second.resize(n_aggs);
    accumulate(it->second, r);
  });
  return answer;
}

}  // namespace

PartitionAnswer EvaluateOnPartition(const Query& query,
                                    const storage::Partition& part) {
  PartitionAnswer answer;
  const PredicatePtr& pred = query.EffectivePredicate();
  const size_t n_aggs = query.aggregates.size();
  GroupKey key(query.group_by.size());
  for (size_t r = 0; r < part.num_rows(); ++r) {
    if (!pred->Matches(part, r)) continue;
    for (size_t g = 0; g < query.group_by.size(); ++g) {
      key[g] = EncodeGroupValue(part, query.group_by[g], r);
    }
    auto [it, inserted] = answer.try_emplace(key);
    if (inserted) it->second.resize(n_aggs);
    for (size_t a = 0; a < n_aggs; ++a) {
      const Aggregate& agg = query.aggregates[a];
      if (agg.filter && !agg.filter->Matches(part, r)) continue;
      AggAccum& acc = it->second[a];
      acc.count += 1.0;
      if (agg.expr) {
        const double v = agg.expr->Eval(part, r);
        acc.sum += v;
        if (agg.func == AggFunc::kMin || agg.func == AggFunc::kMax) {
          acc.FoldExtrema(v);
        }
      }
    }
  }
  return answer;
}

PartitionAnswer EvaluateOnPartition(const Query& query,
                                    const storage::Partition& part,
                                    ExecPolicy policy) {
  if (policy == ExecPolicy::kScalar) {
    return EvaluateOnPartition(query, part);
  }
  CompiledQuery cq = CompileQuery(query);
  VectorScratch& s =
      runtime::WorkerPool::Shared().LocalScratch<VectorScratch>();
  s.be.set_simd(runtime::SimdLevel::kAuto);
  return EvaluateVectorized(cq, part, &s);
}

std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionedTable& table) {
  return EvaluateAllPartitions(query, table, ExecOptions{});
}

std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionedTable& table,
    const ExecOptions& opts) {
  const size_t n_parts = table.num_partitions();
  std::vector<PartitionAnswer> out(n_parts);
  runtime::WorkerPool& pool = PoolOf(opts);
  if (opts.policy == ExecPolicy::kScalar) {
    pool.ParallelFor(
        n_parts,
        [&](size_t i) {
          out[i] = EvaluateOnPartition(query, table.partition(i));
        },
        TaskOf(opts));
    return out;
  }
  // Compile once, execute everywhere; scratch is per pool lane and
  // persists across queries on the same pool.
  const CompiledQuery cq = CompileQuery(query);
  pool.ParallelFor(
      n_parts,
      [&](size_t i) {
        VectorScratch& s = pool.LocalScratch<VectorScratch>();
        s.be.set_simd(opts.simd);
        out[i] = EvaluateVectorized(cq, table.partition(i), &s);
      },
      TaskOf(opts));
  return out;
}

std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::ShardedTable& table,
    const ExecOptions& opts) {
  // Resident tables are just the trivial PartitionSource: Acquire never
  // fails, nothing is pinned, and WillScanShard is a no-op, so this is
  // the same fan-out it always was.
  storage::ResidentShardedSource source(table);
  return EvaluateAllPartitions(query, source, opts);
}

std::vector<PartitionAnswer> EvaluateAllPartitions(
    const Query& query, const storage::PartitionSource& source,
    const ExecOptions& opts) {
  const size_t n_shards = source.num_shards();
  std::vector<std::vector<PartitionAnswer>> partials(n_shards);
  runtime::WorkerPool& pool = PoolOf(opts);
  // Compiled under both policies: the vectorized engine executes it, and
  // either way it yields the scan's referenced-column set — the
  // projection hint out-of-core sources use to read only the segments
  // this query touches. The compiled programs reference exactly the
  // columns the scalar AST walk does, so the hint is safe for kScalar.
  const CompiledQuery cq = CompileQuery(query);
  const storage::ColumnSet scan_columns = ReferencedColumns(cq);
  // Fan out at partition granularity, flattened across shards, so
  // parallelism scales with total partitions even when shards are fewer
  // than lanes (a 1-shard table still fills an 8-lane pool). Each unit
  // writes its own partial slot, so the reduction stays index-addressed.
  struct Unit {
    size_t shard;
    size_t k;  ///< offset within the shard's partition list
  };
  std::vector<Unit> units;
  units.reserve(source.num_partitions());
  for (size_t s = 0; s < n_shards; ++s) {
    partials[s].resize(source.shard(s).size());
    for (size_t k = 0; k < source.shard(s).size(); ++k) {
      units.push_back(Unit{s, k});
    }
  }
  // One scan-entry flag per shard: whichever lane reaches a shard first
  // fires the source's prefetch hint. Advisory only — results cannot
  // depend on which lane wins.
  std::unique_ptr<std::atomic<bool>[]> entered(
      new std::atomic<bool>[n_shards]);
  for (size_t s = 0; s < n_shards; ++s) {
    entered[s].store(false, std::memory_order_relaxed);
  }
  storage::ScanControl ctl;
  ctl.query_class = opts.query_class;
  ctl.cancel = opts.cancel;
  pool.ParallelFor(
      units.size(),
      [&](size_t u) {
        const Unit unit = units[u];
        // Units are heavier than typical chunk items (a whole partition
        // each), so poll the token per unit too — before the acquire, so
        // a dead query stops issuing cold loads immediately.
        ThrowIfAborted(opts.cancel);
        if (!entered[unit.shard].exchange(true, std::memory_order_relaxed)) {
          source.WillScanShard(unit.shard, scan_columns, ctl);
        }
        auto pinned = source.Acquire(source.shard(unit.shard)[unit.k],
                                     scan_columns, ctl);
        if (!pinned.ok()) {
          // The pool rethrows on this evaluation's caller; sibling
          // queries on the pool are unaffected (per-job failure). An
          // abort keeps its structured Status; real IO errors stay
          // generic runtime_errors.
          const StatusCode code = pinned.status().code();
          if (code == StatusCode::kCancelled ||
              code == StatusCode::kDeadlineExceeded) {
            throw QueryAborted(pinned.status());
          }
          throw std::runtime_error(pinned.status().ToString());
        }
        const storage::Partition& part = pinned->view();
        if (opts.policy == ExecPolicy::kScalar) {
          partials[unit.shard][unit.k] = EvaluateOnPartition(query, part);
          return;
        }
        VectorScratch& sc = pool.LocalScratch<VectorScratch>();
        sc.be.set_simd(opts.simd);
        partials[unit.shard][unit.k] = EvaluateVectorized(cq, part, &sc);
      },
      TaskOf(opts));
  // Ordered merge: walk shards in index order, placing each partial at its
  // global partition id. Deterministic for any lane count or assignment.
  std::vector<PartitionAnswer> out(source.num_partitions());
  for (size_t s = 0; s < n_shards; ++s) {
    const std::vector<size_t>& parts = source.shard(s);
    for (size_t k = 0; k < parts.size(); ++k) {
      out[parts[k]] = std::move(partials[s][k]);
    }
  }
  return out;
}

size_t VectorScratchCreatedForTesting() {
  return g_vector_scratch_created.load();
}

size_t CountMatchingRows(const PredicatePtr& pred,
                         const storage::PartitionedTable& table,
                         const ExecOptions& opts) {
  const size_t n_parts = table.num_partitions();
  std::vector<size_t> counts(n_parts, 0);
  runtime::WorkerPool& pool = PoolOf(opts);
  if (opts.policy == ExecPolicy::kScalar) {
    const PredicatePtr& p = pred ? pred : Predicate::True();
    pool.ParallelFor(
        n_parts,
        [&](size_t i) {
          storage::Partition part = table.partition(i);
          size_t c = 0;
          for (size_t r = 0; r < part.num_rows(); ++r) {
            if (p->Matches(part, r)) ++c;
          }
          counts[i] = c;
        },
        TaskOf(opts));
  } else {
    const PredProgram prog = CompilePredicate(pred);
    pool.ParallelFor(
        n_parts,
        [&](size_t i) {
          storage::Partition part = table.partition(i);
          if (prog.always_true) {
            counts[i] = part.num_rows();
            return;
          }
          VectorScratch& s = pool.LocalScratch<VectorScratch>();
          s.be.set_simd(opts.simd);
          s.be.EvalPredicate(prog, part, &s.main);
          counts[i] = s.main.CountOnes();
        },
        TaskOf(opts));
  }
  size_t total = 0;
  for (size_t c : counts) total += c;
  return total;
}

double FinalizeAgg(AggFunc func, const AggAccum& acc) {
  switch (func) {
    case AggFunc::kSum:
      return acc.sum;
    case AggFunc::kCount:
      return acc.count;
    case AggFunc::kAvg:
      return acc.count > 0.0 ? acc.sum / acc.count : 0.0;
    case AggFunc::kMin:
      // Accumulated extrema are already -0.0-canonicalized; an empty or
      // weight-zeroed row set finalizes to 0.0, like AVG.
      return acc.count > 0.0 ? acc.min : 0.0;
    case AggFunc::kMax:
      return acc.count > 0.0 ? acc.max : 0.0;
  }
  return 0.0;
}

QueryAnswer CombineWeighted(
    const Query& query, const std::vector<PartitionAnswer>& per_partition,
    const std::vector<WeightedPartition>& selection) {
  PartitionAnswer merged;
  const size_t n_aggs = query.aggregates.size();
  for (const auto& wp : selection) {
    const PartitionAnswer& pa = per_partition[wp.partition];
    for (const auto& [key, accs] : pa) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) it->second.resize(n_aggs);
      for (size_t a = 0; a < n_aggs; ++a) {
        it->second[a].Add(accs[a], wp.weight);
      }
    }
  }
  QueryAnswer out;
  out.reserve(merged.size());
  for (const auto& [key, accs] : merged) {
    std::vector<double> vals(n_aggs);
    for (size_t a = 0; a < n_aggs; ++a) {
      vals[a] = FinalizeAgg(query.aggregates[a].func, accs[a]);
    }
    out.emplace(key, std::move(vals));
  }
  return out;
}

QueryAnswer ExactAnswer(const Query& query,
                        const std::vector<PartitionAnswer>& per_partition) {
  std::vector<WeightedPartition> all;
  all.reserve(per_partition.size());
  for (size_t i = 0; i < per_partition.size(); ++i) {
    all.push_back({i, 1.0});
  }
  return CombineWeighted(query, per_partition, all);
}

void CanonicalizeSelection(std::vector<WeightedPartition>* selection) {
  std::sort(selection->begin(), selection->end(),
            [](const WeightedPartition& a, const WeightedPartition& b) {
              return a.partition < b.partition;
            });
}

std::vector<WeightedPartition> DegradedSelection(
    const std::vector<size_t>& reachable, size_t total_partitions) {
  std::vector<WeightedPartition> sel;
  sel.reserve(reachable.size());
  // Weight exactly 1.0 when nothing is lost — not total/total computed in
  // floating point — so the healthy path's bit-identity with ExactAnswer
  // never hinges on a division rounding to one.
  const double w = reachable.size() == total_partitions
                       ? 1.0
                       : static_cast<double>(total_partitions) /
                             static_cast<double>(reachable.size());
  for (size_t p : reachable) sel.push_back(WeightedPartition{p, w});
  return sel;
}

namespace {

/// Per-(group, aggregate) variance accumulators for the HT estimator:
/// vs/vc are the SUM- and COUNT-total variance estimates, cov the
/// covariance between them (the delta-method AVG term).
struct VarAccum {
  double vs = 0.0;
  double vc = 0.0;
  double cov = 0.0;
};

double FinalizeError(AggFunc func, const AggAccum& acc, const VarAccum& var) {
  switch (func) {
    case AggFunc::kSum:
      return std::sqrt(std::max(var.vs, 0.0));
    case AggFunc::kCount:
      return std::sqrt(std::max(var.vc, 0.0));
    case AggFunc::kAvg: {
      // Delta method on the ratio S/C of two HT totals:
      //   Var(S/C) ~= (Var(S) - 2r Cov(S,C) + r^2 Var(C)) / C^2,  r = S/C.
      if (!(acc.count > 0.0)) return 0.0;
      const double r = acc.sum / acc.count;
      const double v = (var.vs - 2.0 * r * var.cov + r * r * var.vc) /
                       (acc.count * acc.count);
      return std::sqrt(std::max(v, 0.0));
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      // No distribution-free estimate for subset extrema; 0 by contract
      // (the value is a one-sided bound on the true extremum).
      return 0.0;
  }
  return 0.0;
}

}  // namespace

ApproxCombined CombineWeightedWithError(
    const Query& query, const std::vector<PartitionAnswer>& per_partition,
    const std::vector<WeightedPartition>& selection) {
  // The merge below replays CombineWeighted's accumulation exactly (same
  // order, same arithmetic) so `value` stays bit-identical to it; the
  // variance terms ride along in a parallel map.
  PartitionAnswer merged;
  std::unordered_map<GroupKey, std::vector<VarAccum>, GroupKeyHash> variance;
  const size_t n_aggs = query.aggregates.size();
  for (const auto& wp : selection) {
    const PartitionAnswer& pa = per_partition[wp.partition];
    for (const auto& [key, accs] : pa) {
      auto [it, inserted] = merged.try_emplace(key);
      if (inserted) it->second.resize(n_aggs);
      auto [vit, vinserted] = variance.try_emplace(key);
      if (vinserted) vit->second.resize(n_aggs);
      for (size_t a = 0; a < n_aggs; ++a) {
        it->second[a].Add(accs[a], wp.weight);
        if (wp.weight > 1.0) {
          // Inclusion probability 1/w: this partition's expanded totals
          // w*t contribute (1 - 1/w) * (w*t)^2 to the HT variance.
          const double f = 1.0 - 1.0 / wp.weight;
          const double ts = wp.weight * accs[a].sum;
          const double tc = wp.weight * accs[a].count;
          VarAccum& v = vit->second[a];
          v.vs += f * ts * ts;
          v.vc += f * tc * tc;
          v.cov += f * ts * tc;
        }
      }
    }
  }
  ApproxCombined out;
  out.value.reserve(merged.size());
  out.error.reserve(merged.size());
  for (const auto& [key, accs] : merged) {
    const std::vector<VarAccum>& vaccs = variance.at(key);
    std::vector<double> vals(n_aggs);
    std::vector<double> errs(n_aggs);
    for (size_t a = 0; a < n_aggs; ++a) {
      vals[a] = FinalizeAgg(query.aggregates[a].func, accs[a]);
      errs[a] = FinalizeError(query.aggregates[a].func, accs[a], vaccs[a]);
    }
    out.value.emplace(key, std::move(vals));
    out.error.emplace(key, std::move(errs));
  }
  return out;
}

}  // namespace ps3::query
