// Executes compiled predicate / expression programs over one partition's
// raw column spans. Holds all execution scratch (bitmap stack, expression
// buffers), so one evaluator per thread amortizes allocations across every
// partition that thread scans. Not thread-safe; cheap to default-construct.
#ifndef PS3_QUERY_BITMAP_EVALUATOR_H_
#define PS3_QUERY_BITMAP_EVALUATOR_H_

#include <vector>

#include "query/compiler.h"
#include "query/selection_bitmap.h"
#include "runtime/simd.h"
#include "storage/partition.h"

namespace ps3::query {

class BitmapEvaluator {
 public:
  /// Selects the predicate kernels: scalar word-packing, or the explicit
  /// AVX2 compare/IN kernels (cmp_pd + movemask). Both produce identical
  /// bitmaps; kAuto upgrades at runtime when the CPU supports AVX2.
  void set_simd(runtime::SimdLevel level) {
    use_avx2_ = runtime::UseAvx2(level);
  }

  /// The resolved kernel tier; the evaluator's SIMD-assisted grouped
  /// aggregation keys off the same dispatch decision as the predicate
  /// kernels.
  bool use_avx2() const { return use_avx2_; }

  /// Runs `prog` over all rows of `part`; `out` ends with bit r set iff
  /// row r matches. `out` is reset to the partition size first.
  void EvalPredicate(const PredProgram& prog, const storage::Partition& part,
                     SelectionBitmap* out);

  /// Scalar stack-machine evaluation of a compiled expression for one row.
  /// Performs the arithmetic in the same operation order as Expr::Eval, so
  /// results are bit-identical to the AST walk.
  double EvalExprAt(const ExprProgram& prog, const storage::Partition& part,
                    size_t row);

  /// Columnar evaluation: fills (*out)[r] for every row of the partition.
  /// Per-row results are bit-identical to EvalExprAt (same op order per
  /// element); use when the selection is dense enough to pay for touching
  /// every row.
  void EvalExprDense(const ExprProgram& prog, const storage::Partition& part,
                     std::vector<double>* out);

 private:
  bool use_avx2_ = runtime::UseAvx2(runtime::SimdLevel::kAuto);
  std::vector<SelectionBitmap> bitmap_stack_;
  std::vector<std::vector<double>> buffer_stack_;
  std::vector<double> value_stack_;
  /// Membership table scratch for the AVX2 gather IN-list kernel (one
  /// 32-bit lane per dictionary code).
  std::vector<uint32_t> in_table_;
};

}  // namespace ps3::query

#endif  // PS3_QUERY_BITMAP_EVALUATOR_H_
