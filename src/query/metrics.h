// Error metrics for approximate answers (§5.1.4): missed groups, average
// relative error (missed groups count as relative error 1), and average
// absolute error over the average true value.
#ifndef PS3_QUERY_METRICS_H_
#define PS3_QUERY_METRICS_H_

#include "query/evaluator.h"
#include "query/query.h"

namespace ps3::query {

struct ErrorMetrics {
  double missed_groups = 0.0;   ///< fraction of true groups absent
  double avg_rel_error = 0.0;   ///< mean per-(group, aggregate) |err|/|true|
  double abs_over_true = 0.0;   ///< mean_g |err| / mean_g |true|, averaged
                                ///< over aggregates

  ErrorMetrics& operator+=(const ErrorMetrics& o);
  ErrorMetrics& operator/=(double d);
};

/// Compares an estimate against the exact answer. Groups present in the
/// estimate but not in the truth are ignored (they cannot occur with
/// weighted combination of true partial answers).
ErrorMetrics ComputeErrorMetrics(const Query& query, const QueryAnswer& exact,
                                 const QueryAnswer& estimate);

}  // namespace ps3::query

#endif  // PS3_QUERY_METRICS_H_
