// Out-of-core partition store: spills a partitioned table to a directory
// of columnar partition files plus a checksummed manifest, and rehydrates
// *column segments* on demand through a memory-budgeted, column-granular
// PartitionCache.
//
// Directory layout:
//   manifest.ps3m    schema, per-partition row/byte counts, and every
//                    categorical dictionary in code order, with a whole-
//                    manifest checksum
//   part-NNNNNN.ps3p one columnar file per partition (io/partition_file)
//
// Determinism contract: a rehydrated column holds bit-identical values,
// the same dictionary (same codes, same size), and the same row order as
// the resident column it was spilled from, so any scan over it — either
// exec policy, any kernel, any ColumnSet hint covering the scan's
// references — produces bit-identical answers. Pruning changes bytes
// moved, never answers.
//
// Fetch(i, columns) is the scan path: it pins every requested column
// segment (cache hits where possible), cold-loads the missing ones in a
// single seek pass, and assembles them into a scan-ready pruned view.
// Partial residency upgrades naturally: only the missing segments touch
// disk. Cold loads are single-flight at segment granularity — concurrent
// fetchers of overlapping column sets each load only segments nobody
// else is already reading, and wait for the rest. Preload() is the
// prefetch path: same loads, inserted unpinned, never blocking behind an
// in-flight load of the same segments.
#ifndef PS3_IO_PARTITION_STORE_H_
#define PS3_IO_PARTITION_STORE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/query_control.h"
#include "common/status.h"
#include "io/partition_cache.h"
#include "io/partition_file.h"
#include "storage/column_set.h"
#include "storage/partition_source.h"
#include "storage/table.h"

namespace ps3::io {

/// Cold-load counters (cache hit/miss live on PartitionCache::stats()).
/// cold_loads counts disk read passes (one per claimed segment batch);
/// segments_loaded / bytes_loaded count the column segments and file
/// bytes those passes actually moved — the bench's bytes-per-row metric.
struct StoreStats {
  uint64_t cold_loads = 0;
  uint64_t segments_loaded = 0;
  uint64_t bytes_loaded = 0;
  uint64_t load_errors = 0;
};

class PartitionStore {
 public:
  struct Options {
    /// PartitionCache byte budget.
    size_t cache_budget_bytes = size_t{256} << 20;
    /// Simulated per-cold-load latency in microseconds — models the
    /// round trip to a remote/cloud store so an in-process reproduction
    /// exercises real scan latency. Charged once per read pass (a pruned
    /// read pays the same RTT as a full one). The loading thread sleeps
    /// (doesn't spin) before reading, which is exactly the wait prefetch
    /// exists to overlap. 0 disables.
    size_t simulated_load_delay_us = 0;
    /// Simulated link bandwidth in megabits/sec: adds bytes*8/mbps
    /// microseconds per read pass, so column-pruned loads that move
    /// fewer bytes also *finish* sooner, like a real object store.
    /// 0 disables (latency-only model).
    size_t simulated_load_bandwidth_mbps = 0;
  };

  struct SpillOptions {
    /// Per-segment encoding policy handed to WritePartitionFile: kAuto
    /// lets the picker choose per column segment; forced modes exist
    /// for the bench's encoding sweep.
    EncodingMode encoding = EncodingMode::kAuto;
  };

  /// Writes every partition of `table` plus the manifest under `dir`
  /// (created if absent). Overwrites a previous spill of the same shape.
  static Status Spill(const storage::PartitionedTable& table,
                      const std::string& dir);
  static Status Spill(const storage::PartitionedTable& table,
                      const std::string& dir, const SpillOptions& spill);

  /// Opens a spilled directory: reads + verifies the manifest (schema,
  /// partition map, dictionaries). Partition files are read lazily.
  static Result<std::unique_ptr<PartitionStore>> Open(const std::string& dir,
                                                      const Options& options);

  const storage::Schema& schema() const { return schema_; }
  size_t num_partitions() const { return part_rows_.size(); }
  size_t num_rows() const { return num_rows_; }
  size_t partition_rows(size_t i) const { return part_rows_[i]; }
  /// On-disk byte size of partition `i`'s whole file (segments + format
  /// overhead).
  size_t partition_bytes(size_t i) const { return part_bytes_[i]; }
  /// *Decoded* byte size of one column segment of partition `i` — the
  /// cache-budget accounting unit (a cached column costs its rehydrated
  /// size no matter how small its encoded form was on disk, so
  /// compression never silently inflates effective cache capacity).
  size_t column_bytes(size_t i, size_t col) const;
  /// Sum of column_bytes over `cols` (concrete indices).
  size_t columns_bytes(size_t i, const std::vector<size_t>& cols) const;
  /// *Encoded* (on-disk) byte size of one column segment of partition
  /// `i`, from the manifest — the unit for bytes_read expectations, the
  /// simulated bandwidth model, and the prefetch read-ahead budget.
  /// v1 manifests carry no per-segment sizes; raw sizes are assumed.
  size_t encoded_column_bytes(size_t i, size_t col) const;
  /// Sum of encoded_column_bytes over `cols` (concrete indices).
  size_t encoded_columns_bytes(size_t i,
                               const std::vector<size_t>& cols) const;
  size_t total_bytes() const { return total_bytes_; }
  const std::string& dir() const { return dir_; }

  /// Pins the requested columns of partition `i` for scanning: cache
  /// hits, or single-flight cold loads of the missing segments, then a
  /// pruned assembled view (unrequested columns empty). Thread-safe;
  /// blocks only for the loads themselves.
  ///
  /// `cancel` (nullable, borrowed for the call) makes the blocking parts
  /// cooperative: the token is polled before each load pass, before the
  /// simulated IO sleep, and while waiting on another fetcher's
  /// single-flight load. A fired token returns its Status (kCancelled /
  /// kDeadlineExceeded) with every pin already taken released; loads
  /// this fetch had claimed are unwound through the same guard path as a
  /// failed load (marks cleared, waiters woken, *not* counted as a load
  /// error), so concurrent fetchers of the same segments simply reclaim
  /// them — a cancelled query never poisons co-resident ones.
  Result<storage::PinnedPartition> Fetch(size_t i,
                                         const storage::ColumnSet& columns,
                                         const CancelToken* cancel = nullptr);
  /// Every column (the unpruned legacy path).
  Result<storage::PinnedPartition> Fetch(size_t i) {
    return Fetch(i, storage::ColumnSet::All());
  }

  /// Stages the requested columns of partition `i` into the cache
  /// unpinned (prefetch). Segments already cached or loading are
  /// skipped. Load errors are returned but advisory: the demand-path
  /// Fetch will surface them to the query.
  Status Preload(size_t i, const storage::ColumnSet& columns);
  Status Preload(size_t i) { return Preload(i, storage::ColumnSet::All()); }

  /// Columns of `cols` (concrete indices) that are neither cached nor
  /// mid-load — the prefetcher's admission filter, so overlapping
  /// stage-ahead windows don't re-reserve read-ahead budget for
  /// segments another pass is already reading. Advisory: a point-in-time
  /// answer that Preload re-checks under the load lock.
  std::vector<size_t> UnstagedColumns(size_t i,
                                      const std::vector<size_t>& cols) const;

  PartitionCache& cache() { return cache_; }
  const PartitionCache& cache() const { return cache_; }
  StoreStats store_stats() const;

 private:
  PartitionStore(std::string dir, Options options, storage::Schema schema,
                 uint64_t num_rows, std::vector<size_t> part_rows,
                 std::vector<size_t> part_bytes,
                 std::vector<std::vector<size_t>> part_col_bytes,
                 std::vector<std::shared_ptr<storage::Dictionary>> dicts);

  /// RAII owner of a batch of single-flight loading marks: erases them
  /// and wakes waiters on every exit path, including a throwing load —
  /// otherwise one failed load would wedge all later fetchers forever.
  class LoadingGuard {
   public:
    LoadingGuard(PartitionStore* store, size_t part,
                 const std::vector<size_t>& cols)
        : store_(store), part_(part), cols_(cols) {}
    ~LoadingGuard() {
      {
        std::lock_guard<std::mutex> lock(store_->load_mu_);
        for (size_t c : cols_) store_->loading_.erase(ColumnKey{part_, c});
        if (failed_) ++store_->store_stats_.load_errors;
      }
      store_->load_cv_.notify_all();
    }
    void set_failed() { failed_ = true; }

   private:
    PartitionStore* store_;
    size_t part_;
    std::vector<size_t> cols_;
    bool failed_ = false;
  };

  /// Reads + decodes the given column segments of partition `i` in one
  /// seek pass (applying the simulated latency/bandwidth model). Returns
  /// one CachedColumn per entry of `cols`, in order. A fired `cancel`
  /// (nullable) aborts with its Status before the simulated sleep — the
  /// long pole — so a dead query doesn't ride out the modeled RTT.
  Result<std::vector<std::shared_ptr<const CachedColumn>>> LoadColumns(
      size_t i, const std::vector<size_t>& cols,
      const CancelToken* cancel = nullptr);
  /// Builds the scan view for partition `i` from the pinned segment data
  /// (indexed by column; null = pruned) plus the pin tokens that keep
  /// them alive and release them when the view is dropped.
  storage::PinnedPartition AssemblePinned(
      size_t i, std::vector<std::shared_ptr<const CachedColumn>> data,
      std::vector<std::shared_ptr<const void>> tokens) const;
  std::string PartitionPath(size_t i) const;

  const std::string dir_;
  const Options options_;
  const storage::Schema schema_;
  const uint64_t num_rows_;
  const std::vector<size_t> part_rows_;
  const std::vector<size_t> part_bytes_;
  /// part_col_bytes_[i][c] = encoded payload bytes of partition i's
  /// column-c segment (manifest v2; derived raw sizes for v1).
  const std::vector<std::vector<size_t>> part_col_bytes_;
  size_t total_bytes_ = 0;
  /// Shared per-column dictionaries (null for numeric columns); every
  /// rehydrated categorical segment's column points at these.
  const std::vector<std::shared_ptr<storage::Dictionary>> dicts_;

  PartitionCache cache_;

  mutable std::mutex load_mu_;
  std::condition_variable load_cv_;
  std::set<ColumnKey> loading_;  ///< segments with an in-flight cold load
  StoreStats store_stats_;    ///< guarded by load_mu_
};

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_STORE_H_
