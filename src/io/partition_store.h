// Out-of-core partition store: spills a partitioned table to a directory
// of columnar partition files plus a checksummed manifest, and rehydrates
// *column segments* on demand through a memory-budgeted, column-granular
// PartitionCache.
//
// Directory layout:
//   manifest.ps3m    schema, per-partition row/byte counts, and every
//                    categorical dictionary in code order, with a whole-
//                    manifest checksum
//   part-NNNNNN.ps3p one columnar file per partition (io/partition_file)
//
// Determinism contract: a rehydrated column holds bit-identical values,
// the same dictionary (same codes, same size), and the same row order as
// the resident column it was spilled from, so any scan over it — either
// exec policy, any kernel, any ColumnSet hint covering the scan's
// references — produces bit-identical answers. Pruning changes bytes
// moved, never answers.
//
// Fetch(i, columns) is the scan path: it pins every requested column
// segment (cache hits where possible), cold-loads the missing ones in a
// single seek pass, and assembles them into a scan-ready pruned view.
// Partial residency upgrades naturally: only the missing segments touch
// disk. Cold loads are single-flight at segment granularity — concurrent
// fetchers of overlapping column sets each load only segments nobody
// else is already reading, and wait for the rest (bounded by
// Options::single_flight_wait_us; a timed-out waiter breaks the stale
// claim and re-claims the load). Preload() is the prefetch path: same
// loads, inserted unpinned, never blocking behind an in-flight load of
// the same segments.
//
// Fault tolerance: a seeded io::FaultInjector in Options makes the
// simulated store fail like a real cloud store — transient read errors,
// latency spikes, checksum corruption, permanently lost partitions —
// deterministically per (partition, column, attempt). Every claimed load
// step runs through a resilient loop: circuit-breaker admission, up to
// RetryPolicy::max_attempts passes with deterministic exponential
// backoff (sleeps poll the query's CancelToken, so retries never outlive
// the SLO), one evict-and-refetch on checksum corruption, fail-fast on
// lost partitions, and an optional hedged second read after an
// EWMA-p99-derived delay where the first success cancels the loser.
// Zero-fault configs take none of these paths and stay bit-identical to
// the pre-fault-tolerance store.
#ifndef PS3_IO_PARTITION_STORE_H_
#define PS3_IO_PARTITION_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/query_control.h"
#include "common/retry.h"
#include "common/status.h"
#include "io/fault_injector.h"
#include "io/partition_cache.h"
#include "io/partition_file.h"
#include "storage/column_set.h"
#include "storage/partition_source.h"
#include "storage/table.h"

namespace ps3::io {

/// Cold-load counters (cache hit/miss live on PartitionCache::stats()).
/// cold_loads counts claimed load steps (one per claimed segment batch,
/// however many physical read attempts it takes); segments_loaded /
/// bytes_loaded count the column segments and file bytes *successful*
/// read passes actually moved — the bench's bytes-per-row metric.
///
/// Error accounting: `load_errors` counts load steps that ultimately
/// failed (after retries), the same meaning it always had. The per-kind
/// counters classify individual *events* underneath: one failed step
/// with two transient attempts is load_errors+1, transient_errors+2,
/// retries+1. Aborts (kCancelled / kDeadlineExceeded) are the caller's
/// doing and count in none of these.
struct StoreStats {
  uint64_t cold_loads = 0;
  uint64_t segments_loaded = 0;
  uint64_t bytes_loaded = 0;
  uint64_t load_errors = 0;
  /// Physical read passes that failed retryably (Status::Unavailable).
  uint64_t transient_errors = 0;
  /// Read passes that failed checksum/decode verification (kInternal).
  uint64_t corrupt_errors = 0;
  /// Load steps that failed because the partition is permanently lost.
  uint64_t lost_errors = 0;
  /// Extra physical read attempts (transient backoff retries plus the
  /// one corrupt evict-and-refetch).
  uint64_t retries = 0;
  /// Hedged second reads fired / hedges that finished first.
  uint64_t hedged_loads = 0;
  uint64_t hedge_wins = 0;
  /// Circuit-breaker transitions to open (including half-open -> open
  /// re-opens after a failed probe, so one outage can count several) /
  /// loads rejected while open.
  uint64_t breaker_opens = 0;
  uint64_t breaker_open_rejects = 0;
  /// Single-flight waits that hit the timeout and re-claimed the load.
  uint64_t single_flight_timeouts = 0;
};

class PartitionStore {
 public:
  struct Options {
    /// PartitionCache byte budget.
    size_t cache_budget_bytes = size_t{256} << 20;
    /// Simulated per-cold-load latency in microseconds — models the
    /// round trip to a remote/cloud store so an in-process reproduction
    /// exercises real scan latency. Charged once per read pass (a pruned
    /// read pays the same RTT as a full one). The loading thread sleeps
    /// (doesn't spin) before reading, which is exactly the wait prefetch
    /// exists to overlap. 0 disables.
    size_t simulated_load_delay_us = 0;
    /// Simulated link bandwidth in megabits/sec: adds bytes*8/mbps
    /// microseconds per read pass, so column-pruned loads that move
    /// fewer bytes also *finish* sooner, like a real object store.
    /// 0 disables (latency-only model).
    size_t simulated_load_bandwidth_mbps = 0;
    /// Deterministic fault plan (null = no faults, exactly today's
    /// behavior). Shared so tests can hold the injector and inspect /
    /// reset attempt counters across store rebuilds.
    std::shared_ptr<FaultInjector> faults;
    /// Retry policy for each cold-load step. The default (3 attempts,
    /// exponential backoff) only changes behavior when a load actually
    /// fails; zero-fault runs never enter the retry loop.
    RetryPolicy retry;
    /// Per-store circuit breaker over load *steps* (post-retry). The
    /// default threshold only trips after a run of hopeless loads; lost
    /// partitions are excluded from its accounting so a degraded table
    /// can't wedge reachable partitions shut.
    CircuitBreakerPolicy breaker;
    /// Hedged (duplicate) cold reads for latency-spike tolerance.
    struct HedgeOptions {
      /// Off by default: hedging spawns a second read thread per slow
      /// pass, and zero-fault configs must stay bit-identical (and
      /// thread-identical) to the pre-fault-tolerance store.
      bool enabled = false;
      /// Fixed hedge delay; 0 derives the delay from the store's load
      /// latency EWMA (~p99: mean + 3 * mean absolute deviation).
      size_t fixed_delay_us = 0;
      /// Clamp for the adaptive delay.
      size_t min_delay_us = 500;
      size_t max_delay_us = 100000;
    };
    HedgeOptions hedge;
    /// Upper bound on a single-flight wait for another fetcher's
    /// in-flight load of the same segments. On timeout the waiter counts
    /// it, breaks the stale claim, and re-claims the load itself — so a
    /// loader that died without unwinding can no longer wedge waiters
    /// forever. 0 = wait indefinitely (the pre-PR behavior).
    size_t single_flight_wait_us = 5000000;
  };

  struct SpillOptions {
    /// Per-segment encoding policy handed to WritePartitionFile: kAuto
    /// lets the picker choose per column segment; forced modes exist
    /// for the bench's encoding sweep.
    EncodingMode encoding = EncodingMode::kAuto;
  };

  /// Writes every partition of `table` plus the manifest under `dir`
  /// (created if absent). Overwrites a previous spill of the same shape.
  static Status Spill(const storage::PartitionedTable& table,
                      const std::string& dir);
  static Status Spill(const storage::PartitionedTable& table,
                      const std::string& dir, const SpillOptions& spill);

  /// Opens a spilled directory: reads + verifies the manifest (schema,
  /// partition map, dictionaries). Partition files are read lazily.
  static Result<std::unique_ptr<PartitionStore>> Open(const std::string& dir,
                                                      const Options& options);

  const storage::Schema& schema() const { return schema_; }
  size_t num_partitions() const { return part_rows_.size(); }
  size_t num_rows() const { return num_rows_; }
  size_t partition_rows(size_t i) const { return part_rows_[i]; }
  /// On-disk byte size of partition `i`'s whole file (segments + format
  /// overhead).
  size_t partition_bytes(size_t i) const { return part_bytes_[i]; }
  /// *Decoded* byte size of one column segment of partition `i` — the
  /// cache-budget accounting unit (a cached column costs its rehydrated
  /// size no matter how small its encoded form was on disk, so
  /// compression never silently inflates effective cache capacity).
  size_t column_bytes(size_t i, size_t col) const;
  /// Sum of column_bytes over `cols` (concrete indices).
  size_t columns_bytes(size_t i, const std::vector<size_t>& cols) const;
  /// *Encoded* (on-disk) byte size of one column segment of partition
  /// `i`, from the manifest — the unit for bytes_read expectations, the
  /// simulated bandwidth model, and the prefetch read-ahead budget.
  /// v1 manifests carry no per-segment sizes; raw sizes are assumed.
  size_t encoded_column_bytes(size_t i, size_t col) const;
  /// Sum of encoded_column_bytes over `cols` (concrete indices).
  size_t encoded_columns_bytes(size_t i,
                               const std::vector<size_t>& cols) const;
  size_t total_bytes() const { return total_bytes_; }
  const std::string& dir() const { return dir_; }

  /// Pins the requested columns of partition `i` for scanning: cache
  /// hits, or single-flight cold loads of the missing segments, then a
  /// pruned assembled view (unrequested columns empty). Thread-safe;
  /// blocks only for the loads themselves.
  ///
  /// `cancel` (nullable, borrowed for the call) makes the blocking parts
  /// cooperative: the token is polled before each load pass, before the
  /// simulated IO sleep, and while waiting on another fetcher's
  /// single-flight load. A fired token returns its Status (kCancelled /
  /// kDeadlineExceeded) with every pin already taken released; loads
  /// this fetch had claimed are unwound through the same guard path as a
  /// failed load (marks cleared, waiters woken, *not* counted as a load
  /// error), so concurrent fetchers of the same segments simply reclaim
  /// them — a cancelled query never poisons co-resident ones.
  Result<storage::PinnedPartition> Fetch(size_t i,
                                         const storage::ColumnSet& columns,
                                         const CancelToken* cancel = nullptr);
  /// Every column (the unpruned legacy path).
  Result<storage::PinnedPartition> Fetch(size_t i) {
    return Fetch(i, storage::ColumnSet::All());
  }

  /// Stages the requested columns of partition `i` into the cache
  /// unpinned (prefetch). Segments already cached or loading are
  /// skipped. Load errors are returned but advisory: the demand-path
  /// Fetch will surface them to the query.
  Status Preload(size_t i, const storage::ColumnSet& columns);
  Status Preload(size_t i) { return Preload(i, storage::ColumnSet::All()); }

  /// Columns of `cols` (concrete indices) that are neither cached nor
  /// mid-load — the prefetcher's admission filter, so overlapping
  /// stage-ahead windows don't re-reserve read-ahead budget for
  /// segments another pass is already reading. Advisory: a point-in-time
  /// answer that Preload re-checks under the load lock.
  std::vector<size_t> UnstagedColumns(size_t i,
                                      const std::vector<size_t>& cols) const;

  PartitionCache& cache() { return cache_; }
  const PartitionCache& cache() const { return cache_; }
  StoreStats store_stats() const;

  /// Partitions the fault plan lists as permanently lost (sorted;
  /// empty without an injector). The degradation path plans around
  /// exactly this set.
  std::vector<size_t> LostPartitions() const;
  /// The store's fault injector (null when no faults are configured).
  const std::shared_ptr<FaultInjector>& fault_injector() const {
    return options_.faults;
  }
  /// Circuit-breaker state, for tests and ops introspection.
  CircuitBreaker::State breaker_state() const { return breaker_.state(); }
  /// Current hedge delay in microseconds: the configured fixed delay if
  /// one is set, else mean + 3*dev of the load-latency EWMAs clamped to
  /// the hedge bounds (0 until the first successful pass). For tests
  /// and ops introspection.
  size_t hedge_delay_us() const { return HedgeDelayUs(); }

 private:
  PartitionStore(std::string dir, Options options, storage::Schema schema,
                 uint64_t num_rows, std::vector<size_t> part_rows,
                 std::vector<size_t> part_bytes,
                 std::vector<std::vector<size_t>> part_col_bytes,
                 std::vector<std::shared_ptr<storage::Dictionary>> dicts);

  /// RAII owner of a batch of single-flight loading marks: erases them
  /// and wakes waiters on every exit path, including a throwing load —
  /// otherwise one failed load would wedge all later fetchers forever.
  class LoadingGuard {
   public:
    LoadingGuard(PartitionStore* store, size_t part,
                 const std::vector<size_t>& cols)
        : store_(store), part_(part), cols_(cols) {}
    ~LoadingGuard() {
      {
        std::lock_guard<std::mutex> lock(store_->load_mu_);
        for (size_t c : cols_) store_->loading_.erase(ColumnKey{part_, c});
        if (failed_) ++store_->store_stats_.load_errors;
      }
      store_->load_cv_.notify_all();
    }
    void set_failed() { failed_ = true; }

   private:
    PartitionStore* store_;
    size_t part_;
    std::vector<size_t> cols_;
    bool failed_ = false;
  };

  using LoadedColumns = std::vector<std::shared_ptr<const CachedColumn>>;

  /// The resilient load for one claimed segment batch: circuit-breaker
  /// admission, then up to retry.max_attempts physical passes (hedged
  /// when enabled) with deterministic backoff between transient
  /// failures, one evict-and-refetch on corruption, and fail-fast on
  /// lost partitions. Backoff sleeps poll `cancel`; aborts surface
  /// uncounted. This is what Fetch and Preload call.
  Result<LoadedColumns> LoadColumns(size_t i, const std::vector<size_t>& cols,
                                    const CancelToken* cancel = nullptr);
  /// One physical read pass: simulated latency/bandwidth sleep (sliced,
  /// polling both tokens), injected faults applied, then the seek-read-
  /// verify-decode of io/partition_file. `hedge_stop` (nullable) is the
  /// racer-local token a winning hedge uses to abort the loser.
  Result<LoadedColumns> LoadColumnsOnce(size_t i,
                                        const std::vector<size_t>& cols,
                                        const CancelToken* cancel,
                                        const CancelToken* hedge_stop);
  /// One *attempt* of the resilient loop: plain pass, or a hedged race
  /// (second read fired after HedgeDelayUs; first success cancels the
  /// loser) when hedging is on and a latency estimate exists.
  Result<LoadedColumns> LoadPass(size_t i, const std::vector<size_t>& cols,
                                 const CancelToken* cancel);
  /// Folds a successful pass latency into the EWMA cells.
  void RecordLoadLatency(uint64_t us);
  /// Current hedge trigger delay (~p99 of successful pass latency), or
  /// 0 for "don't hedge yet" (no samples and no fixed delay).
  size_t HedgeDelayUs() const;
  /// Builds the scan view for partition `i` from the pinned segment data
  /// (indexed by column; null = pruned) plus the pin tokens that keep
  /// them alive and release them when the view is dropped.
  storage::PinnedPartition AssemblePinned(
      size_t i, std::vector<std::shared_ptr<const CachedColumn>> data,
      std::vector<std::shared_ptr<const void>> tokens) const;
  std::string PartitionPath(size_t i) const;

  const std::string dir_;
  const Options options_;
  const storage::Schema schema_;
  const uint64_t num_rows_;
  const std::vector<size_t> part_rows_;
  const std::vector<size_t> part_bytes_;
  /// part_col_bytes_[i][c] = encoded payload bytes of partition i's
  /// column-c segment (manifest v2; derived raw sizes for v1).
  const std::vector<std::vector<size_t>> part_col_bytes_;
  size_t total_bytes_ = 0;
  /// Shared per-column dictionaries (null for numeric columns); every
  /// rehydrated categorical segment's column points at these.
  const std::vector<std::shared_ptr<storage::Dictionary>> dicts_;

  PartitionCache cache_;

  mutable std::mutex load_mu_;
  std::condition_variable load_cv_;
  std::set<ColumnKey> loading_;  ///< segments with an in-flight cold load
  StoreStats store_stats_;    ///< guarded by load_mu_

  CircuitBreaker breaker_;
  /// EWMA of successful pass latency and of its absolute deviation
  /// (microseconds; 0 = no sample yet, samples clamp to >= 1). Relaxed
  /// atomics — the hedge delay is advisory timing, never answers.
  std::atomic<uint64_t> load_lat_ewma_us_{0};
  std::atomic<uint64_t> load_dev_ewma_us_{0};
};

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_STORE_H_
