// Out-of-core partition store: spills a partitioned table to a directory
// of columnar partition files plus a checksummed manifest, and rehydrates
// partitions on demand through a memory-budgeted PartitionCache.
//
// Directory layout:
//   manifest.ps3m    schema, per-partition row/byte counts, and every
//                    categorical dictionary in code order, with a whole-
//                    manifest checksum
//   part-NNNNNN.ps3p one columnar file per partition (io/partition_file)
//
// Determinism contract: a rehydrated partition holds bit-identical column
// values, the same dictionary (same codes, same size), and the same row
// order as the resident partition it was spilled from, so any scan over
// it — either exec policy, any kernel — produces bit-identical answers.
//
// Fetch() is the scan path: cache hit → pinned view; miss → single-flight
// cold load (concurrent fetchers of the same partition wait for one load
// instead of duplicating it), insert-pinned into the cache. Preload() is
// the prefetch path: same load, inserted unpinned, never blocks behind an
// in-flight load of the same partition.
#ifndef PS3_IO_PARTITION_STORE_H_
#define PS3_IO_PARTITION_STORE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/partition_cache.h"
#include "storage/partition_source.h"
#include "storage/table.h"

namespace ps3::io {

/// Cold-load counters (cache hit/miss live on PartitionCache::stats()).
struct StoreStats {
  uint64_t cold_loads = 0;
  uint64_t load_errors = 0;
};

class PartitionStore {
 public:
  struct Options {
    /// PartitionCache byte budget.
    size_t cache_budget_bytes = size_t{256} << 20;
    /// Simulated per-cold-load latency in microseconds — models the
    /// round trip to a remote/cloud store so an in-process reproduction
    /// exercises real scan latency. The loading thread sleeps (doesn't
    /// spin) before decoding, which is exactly the wait prefetch exists
    /// to overlap. 0 disables.
    size_t simulated_load_delay_us = 0;
  };

  /// Writes every partition of `table` plus the manifest under `dir`
  /// (created if absent). Overwrites a previous spill of the same shape.
  static Status Spill(const storage::PartitionedTable& table,
                      const std::string& dir);

  /// Opens a spilled directory: reads + verifies the manifest (schema,
  /// partition map, dictionaries). Partition files are read lazily.
  static Result<std::unique_ptr<PartitionStore>> Open(const std::string& dir,
                                                      const Options& options);

  const storage::Schema& schema() const { return schema_; }
  size_t num_partitions() const { return part_rows_.size(); }
  size_t num_rows() const { return num_rows_; }
  size_t partition_rows(size_t i) const { return part_rows_[i]; }
  /// On-disk byte size of partition `i` — the cache/read-ahead unit.
  size_t partition_bytes(size_t i) const { return part_bytes_[i]; }
  size_t total_bytes() const { return total_bytes_; }
  const std::string& dir() const { return dir_; }

  /// Pins partition `i` for scanning: cache hit, or single-flight cold
  /// load. Thread-safe; blocks only for the load itself.
  Result<storage::PinnedPartition> Fetch(size_t i);

  /// Stages partition `i` into the cache unpinned (prefetch). A no-op if
  /// cached or already loading. Load errors are returned but advisory:
  /// the demand-path Fetch will surface them to the query.
  Status Preload(size_t i);

  PartitionCache& cache() { return cache_; }
  const PartitionCache& cache() const { return cache_; }
  StoreStats store_stats() const;

 private:
  PartitionStore(std::string dir, Options options, storage::Schema schema,
                 uint64_t num_rows, std::vector<size_t> part_rows,
                 std::vector<size_t> part_bytes,
                 std::vector<std::shared_ptr<storage::Dictionary>> dicts);

  /// RAII owner of a partition's single-flight loading mark: erases it
  /// and wakes waiters on every exit path, including a throwing load —
  /// otherwise one failed load would wedge all later fetchers forever.
  class LoadingGuard {
   public:
    LoadingGuard(PartitionStore* store, size_t part)
        : store_(store), part_(part) {}
    ~LoadingGuard() {
      {
        std::lock_guard<std::mutex> lock(store_->load_mu_);
        store_->loading_.erase(part_);
        if (failed_) ++store_->store_stats_.load_errors;
      }
      store_->load_cv_.notify_all();
    }
    void set_failed() { failed_ = true; }

   private:
    PartitionStore* store_;
    size_t part_;
    bool failed_ = false;
  };

  /// Reads + decodes partition `i` (applying the simulated latency).
  Result<std::shared_ptr<const LoadedPartition>> LoadFromDisk(size_t i);
  std::string PartitionPath(size_t i) const;

  const std::string dir_;
  const Options options_;
  const storage::Schema schema_;
  const uint64_t num_rows_;
  const std::vector<size_t> part_rows_;
  const std::vector<size_t> part_bytes_;
  size_t total_bytes_ = 0;
  /// Shared per-column dictionaries (null for numeric columns); every
  /// rehydrated partition's categorical columns point at these.
  const std::vector<std::shared_ptr<storage::Dictionary>> dicts_;

  PartitionCache cache_;

  mutable std::mutex load_mu_;
  std::condition_variable load_cv_;
  std::set<size_t> loading_;  ///< partitions with an in-flight cold load
  StoreStats store_stats_;    ///< guarded by load_mu_
};

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_STORE_H_
