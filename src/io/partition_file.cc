#include "io/partition_file.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/hash.h"
#include "common/serialize.h"
#include "runtime/simd.h"

namespace ps3::io {

namespace {

constexpr uint32_t kPartitionMagic = 0x50335350;  // "PS3P"
constexpr uint32_t kPartitionVersion = 2;
constexpr uint32_t kPartitionVersionV1 = 1;

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;
constexpr size_t kFooterEntryBytesV1 = 1 + 8 + 8 + 8;
constexpr size_t kFooterEntryBytesV2 = 1 + 1 + 1 + 8 + 8 + 8 + 8;
constexpr size_t kTrailerBytes = 8 + 4;

struct SegmentMeta {
  uint8_t type = 0;  // 0 = numeric, 1 = categorical
  SegmentEncoding encoding = SegmentEncoding::kRaw;
  uint8_t bit_width = 0;  // bitpack / for_delta packed width (1..32)
  uint64_t offset = 0;
  uint64_t byte_len = 0;  // encoded payload length
  uint64_t checksum = 0;  // over the encoded payload
  int64_t base = 0;       // for_delta frame-of-reference base
};

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Seek-based reader: unlike BinaryReader::FromFile (which slurps the
/// whole file), this touches only the ranges asked for — the point of
/// column pruning is that unrequested segments never leave the disk.
class SeekingFile {
 public:
  ~SeekingFile() {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Open(const std::string& path) {
    f_ = std::fopen(path.c_str(), "rb");
    if (f_ == nullptr) {
      return Status::NotFound("cannot open '" + path + "'");
    }
    if (std::fseek(f_, 0, SEEK_END) != 0) {
      return Status::Internal("cannot seek '" + path + "'");
    }
    long size = std::ftell(f_);
    if (size < 0) return Status::Internal("cannot size '" + path + "'");
    size_ = static_cast<size_t>(size);
    return Status::OK();
  }

  size_t size() const { return size_; }
  size_t bytes_read() const { return bytes_read_; }

  /// Reads exactly [offset, offset+len) into `out`; fails on any short
  /// read or out-of-bounds range.
  Status ReadAt(uint64_t offset, size_t len, uint8_t* out) {
    if (offset > size_ || len > size_ - offset) {
      return Status::Internal("read range out of bounds");
    }
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::Internal("seek failed");
    }
    if (len != 0 && std::fread(out, 1, len, f_) != len) {
      return Status::Internal("short read");
    }
    bytes_read_ += len;
    return Status::OK();
  }

 private:
  std::FILE* f_ = nullptr;
  size_t size_ = 0;
  size_t bytes_read_ = 0;
};

/// The spill-time picker's plan for one categorical code segment.
struct EncodingPlan {
  SegmentEncoding encoding = SegmentEncoding::kRaw;
  unsigned width = 0;
  int32_t base = 0;
};

/// Chooses the cheapest representable payload under `mode`. Stats are
/// one exact pass over the segment (max code, max zigzag delta) — spill
/// happens once per table, so sampling would save nothing worth the
/// mis-pick risk. Negative codes (never produced by storage, but the
/// writer takes any table) disqualify everything but raw.
EncodingPlan PickEncoding(const int32_t* v, size_t n, EncodingMode mode) {
  EncodingPlan plan;
  if (n == 0 || mode == EncodingMode::kRaw) return plan;
  uint32_t max_code = 0;
  uint32_t max_zz = 0;
  bool non_negative = v[0] >= 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] < 0) non_negative = false;
    if (non_negative && static_cast<uint32_t>(v[i]) > max_code) {
      max_code = static_cast<uint32_t>(v[i]);
    }
    if (i > 0) {
      // Codes fit int32, so the delta fits int64 and zigzag fits u32.
      const int64_t d = static_cast<int64_t>(v[i]) - v[i - 1];
      const uint32_t zz = runtime::ZigzagEncode32(static_cast<int32_t>(d));
      if (zz > max_zz) max_zz = zz;
    }
  }
  if (!non_negative && mode != EncodingMode::kForDelta) return plan;
  const unsigned wb = runtime::BitWidthForU32(max_code);
  const unsigned wd = runtime::BitWidthForU32(max_zz);
  const size_t cost_raw = n * 4;
  const size_t cost_bp = runtime::BitPackedBytes(n, wb);
  const size_t cost_fd = runtime::BitPackedBytes(n, wd);
  switch (mode) {
    case EncodingMode::kBitpack:
      plan = {SegmentEncoding::kBitpack, wb, 0};
      return plan;
    case EncodingMode::kForDelta:
      plan = {SegmentEncoding::kForDelta, wd, v[0]};
      return plan;
    case EncodingMode::kAuto:
    default:
      // Ties prefer bitpack over for_delta (no reconstruct pass) and
      // raw over either (memcpy decode): encode only when it pays.
      if (non_negative && cost_bp < cost_raw && cost_bp <= cost_fd) {
        plan = {SegmentEncoding::kBitpack, wb, 0};
      } else if (cost_fd < cost_raw) {
        plan = {SegmentEncoding::kForDelta, wd, v[0]};
      }
      return plan;
  }
}

/// Bit-packs `values` and appends the padded payload as 64-bit words —
/// byte-for-byte the runtime::BitPackScalar layout, since PutU64 writes
/// little-endian.
void AppendPacked(BinaryWriter* w, const std::vector<uint32_t>& values,
                  unsigned width) {
  const size_t nwords = runtime::BitPackedBytes(values.size(), width) / 8;
  std::vector<uint64_t> words(nwords, 0);
  runtime::BitPackScalar(values.data(), values.size(), width,
                         reinterpret_cast<uint8_t*>(words.data()));
  for (uint64_t word : words) w->PutU64(word);
}

}  // namespace

const char* EncodingModeName(EncodingMode mode) {
  switch (mode) {
    case EncodingMode::kAuto:
      return "auto";
    case EncodingMode::kRaw:
      return "raw";
    case EncodingMode::kBitpack:
      return "bitpack";
    case EncodingMode::kForDelta:
      return "for_delta";
  }
  return "auto";
}

Result<EncodingMode> ParseEncodingMode(const std::string& name) {
  if (name == "auto") return EncodingMode::kAuto;
  if (name == "raw") return EncodingMode::kRaw;
  if (name == "bitpack") return EncodingMode::kBitpack;
  if (name == "for_delta") return EncodingMode::kForDelta;
  return Status::InvalidArgument("unknown encoding mode '" + name + "'");
}

Result<PartitionFileInfo> WritePartitionFile(const storage::Table& table,
                                             size_t begin_row, size_t end_row,
                                             const std::string& path,
                                             EncodingMode mode) {
  if (begin_row > end_row || end_row > table.num_rows()) {
    return Status::InvalidArgument("partition row range out of bounds");
  }
  const size_t n = end_row - begin_row;
  const size_t n_cols = table.num_columns();

  BinaryWriter w;
  w.PutU32(kPartitionMagic);
  w.PutU32(kPartitionVersion);
  w.PutU64(n);
  w.PutU32(static_cast<uint32_t>(n_cols));

  std::vector<SegmentMeta> segs(n_cols);
  std::vector<uint32_t> scratch;
  for (size_t c = 0; c < n_cols; ++c) {
    const storage::Column& col = table.column(c);
    SegmentMeta& seg = segs[c];
    seg.offset = w.buffer().size();
    if (col.is_numeric()) {
      // Doubles spill raw under every mode: dictionary-width and delta
      // structure are code-segment properties.
      seg.type = 0;
      const double* v = col.NumericSpan(begin_row);
      for (size_t r = 0; r < n; ++r) w.PutDouble(v[r]);
    } else {
      seg.type = 1;
      const int32_t* v = col.CodeSpan(begin_row);
      const EncodingPlan plan = PickEncoding(v, n, mode);
      seg.encoding = plan.encoding;
      seg.bit_width = static_cast<uint8_t>(plan.width);
      seg.base = plan.base;
      switch (plan.encoding) {
        case SegmentEncoding::kRaw:
          for (size_t r = 0; r < n; ++r) w.PutI32(v[r]);
          break;
        case SegmentEncoding::kBitpack:
          scratch.resize(n);
          for (size_t r = 0; r < n; ++r) {
            scratch[r] = static_cast<uint32_t>(v[r]);
          }
          AppendPacked(&w, scratch, plan.width);
          break;
        case SegmentEncoding::kForDelta:
          scratch.resize(n);
          if (n != 0) scratch[0] = 0;  // base is the first value
          for (size_t r = 1; r < n; ++r) {
            const int64_t d = static_cast<int64_t>(v[r]) - v[r - 1];
            scratch[r] = runtime::ZigzagEncode32(static_cast<int32_t>(d));
          }
          AppendPacked(&w, scratch, plan.width);
          break;
      }
    }
    seg.byte_len = w.buffer().size() - seg.offset;
    seg.checksum = Fnv1a64(w.buffer().data() + seg.offset, seg.byte_len);
  }

  const uint64_t footer_off = w.buffer().size();
  for (const SegmentMeta& seg : segs) {
    w.PutU8(seg.type);
    w.PutU8(static_cast<uint8_t>(seg.encoding));
    w.PutU8(seg.bit_width);
    w.PutU64(seg.offset);
    w.PutU64(seg.byte_len);
    w.PutU64(seg.checksum);
    w.PutU64(static_cast<uint64_t>(seg.base));
  }
  w.PutU64(footer_off);
  w.PutU32(kPartitionMagic);

  PS3_RETURN_IF_ERROR(w.WriteFile(path));
  PartitionFileInfo info;
  info.file_bytes = w.buffer().size();
  info.column_bytes.reserve(n_cols);
  info.encodings.reserve(n_cols);
  for (const SegmentMeta& seg : segs) {
    info.column_bytes.push_back(static_cast<size_t>(seg.byte_len));
    info.encodings.push_back(seg.encoding);
  }
  return info;
}

Result<storage::Table> ReadPartitionColumns(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts,
    const storage::ColumnSet& columns, size_t* bytes_read) {
  return ReadPartitionColumns(path, schema, dicts, columns, SegmentTamper(),
                              bytes_read);
}

Result<storage::Table> ReadPartitionColumns(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts,
    const storage::ColumnSet& columns, const SegmentTamper& tamper,
    size_t* bytes_read) {
  SeekingFile file;
  PS3_RETURN_IF_ERROR(file.Open(path));

  auto corrupt = [&path](const std::string& what) {
    return Status::Internal("partition file '" + path + "': " + what);
  };

  // Trailer first: it anchors the footer without trusting anything else.
  if (file.size() < kHeaderBytes + kTrailerBytes) {
    return corrupt("shorter than header + trailer");
  }
  uint8_t trailer[kTrailerBytes];
  PS3_RETURN_IF_ERROR(
      file.ReadAt(file.size() - kTrailerBytes, kTrailerBytes, trailer));
  const uint64_t footer_off = ReadU64(trailer);
  if (ReadU32(trailer + 8) != kPartitionMagic) {
    return corrupt("bad trailer magic");
  }

  uint8_t header[kHeaderBytes];
  PS3_RETURN_IF_ERROR(file.ReadAt(0, kHeaderBytes, header));
  if (ReadU32(header) != kPartitionMagic) return corrupt("bad magic");
  const uint32_t version = ReadU32(header + 4);
  if (version != kPartitionVersion && version != kPartitionVersionV1) {
    return corrupt("unsupported version");
  }
  const uint64_t num_rows = ReadU64(header + 8);
  const uint32_t num_cols = ReadU32(header + 16);
  if (num_cols != schema.num_columns() ||
      dicts.size() != schema.num_columns()) {
    return corrupt("column count does not match schema");
  }
  // The header is not itself checksummed, so bound num_rows before it
  // feeds any allocation or length arithmetic: every row costs >= 1 bit
  // per column segment (bitpack widths are clamped >= 1), so a plausible
  // count can never exceed 8x the byte size. This also keeps the
  // expected-length arithmetic below from overflowing uint64.
  if (num_rows > static_cast<uint64_t>(file.size()) * 8) {
    return corrupt("row count exceeds file size");
  }
  const size_t n = static_cast<size_t>(num_rows);

  const size_t footer_entry_bytes =
      version == kPartitionVersionV1 ? kFooterEntryBytesV1
                                     : kFooterEntryBytesV2;
  const size_t footer_len = static_cast<size_t>(num_cols) * footer_entry_bytes;
  if (footer_off > file.size() || footer_len > file.size() - footer_off) {
    return corrupt("footer out of bounds");
  }
  std::vector<uint8_t> footer(footer_len);
  PS3_RETURN_IF_ERROR(file.ReadAt(footer_off, footer_len, footer.data()));
  std::vector<SegmentMeta> segs(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    const uint8_t* e = footer.data() + c * footer_entry_bytes;
    SegmentMeta& seg = segs[c];
    if (version == kPartitionVersionV1) {
      // v1 files are raw-only; the narrower entry carries no encoding.
      seg = SegmentMeta{e[0], SegmentEncoding::kRaw, 0, ReadU64(e + 1),
                        ReadU64(e + 9), ReadU64(e + 17), 0};
    } else {
      if (e[1] > static_cast<uint8_t>(SegmentEncoding::kForDelta)) {
        return corrupt("unknown segment encoding");
      }
      seg = SegmentMeta{e[0],
                        static_cast<SegmentEncoding>(e[1]),
                        e[2],
                        ReadU64(e + 3),
                        ReadU64(e + 11),
                        ReadU64(e + 19),
                        static_cast<int64_t>(ReadU64(e + 27))};
    }
  }

  std::vector<storage::Column> out_columns;
  out_columns.reserve(num_cols);
  std::vector<uint8_t> seg_buf;
  std::vector<uint32_t> packed_scratch;
  for (size_t c = 0; c < num_cols; ++c) {
    const SegmentMeta& seg = segs[c];
    const bool numeric = schema.IsNumeric(c);
    if ((seg.type == 0) != numeric) return corrupt("segment type mismatch");
    if (!numeric && dicts[c] == nullptr) return corrupt("missing dictionary");
    if (!columns.Contains(c)) {
      // Pruned: an empty, correctly typed column (categoricals keep the
      // shared dictionary so group-by metadata stays intact).
      out_columns.push_back(numeric ? storage::Column::MakeNumeric()
                                    : storage::Column::MakeCategorical(
                                          dicts[c]));
      continue;
    }
    // Per-encoding expected payload length; anything else is corruption
    // (a flipped width or truncated payload never reaches the decoder).
    uint64_t expect_len = 0;
    const unsigned width = seg.bit_width;
    switch (seg.encoding) {
      case SegmentEncoding::kRaw:
        expect_len = static_cast<uint64_t>(n) * (numeric ? 8 : 4);
        break;
      case SegmentEncoding::kBitpack:
      case SegmentEncoding::kForDelta:
        if (numeric) return corrupt("encoded numeric segment");
        if (width < 1 || width > 32) return corrupt("bad segment bit width");
        expect_len = runtime::BitPackedBytes(n, width);
        break;
    }
    if (seg.encoding == SegmentEncoding::kForDelta &&
        (seg.base < std::numeric_limits<int32_t>::min() ||
         seg.base > std::numeric_limits<int32_t>::max())) {
      return corrupt("for_delta base out of range");
    }
    if (seg.byte_len != expect_len || seg.offset > file.size() ||
        seg.byte_len > file.size() - seg.offset) {
      return corrupt("segment bounds out of range");
    }
    // Slack past the payload lets the AVX2 unpack's 64-bit gathers read
    // through the final values' bytes; the garbage bits are masked.
    seg_buf.resize(static_cast<size_t>(seg.byte_len) +
                   runtime::kBitUnpackSlackBytes);
    PS3_RETURN_IF_ERROR(
        file.ReadAt(seg.offset, static_cast<size_t>(seg.byte_len),
                    seg_buf.data()));
    // Tamper seam: injected corruption lands on the encoded bytes here,
    // upstream of the checksum, so it is caught by the same verification
    // real corruption would hit.
    if (tamper) {
      tamper(c, seg_buf.data(), static_cast<size_t>(seg.byte_len));
    }
    // Checksum over the *encoded* bytes: corruption is caught before any
    // decode arithmetic touches the payload.
    if (Fnv1a64(seg_buf.data(), static_cast<size_t>(seg.byte_len)) !=
        seg.checksum) {
      return corrupt("segment checksum mismatch");
    }
    // Decode into the same typed column buffers every encoding shares —
    // everything above the reader sees identical rehydrated columns.
    // Raw segments memcpy (little-endian fixed-width, format declared
    // non-portable); packed segments go through the runtime unpack
    // kernels (AVX2 when available, scalar reference otherwise —
    // bit-identical by the kernels' contract).
    if (numeric) {
      storage::Column col = storage::Column::MakeNumeric();
      std::vector<double> buf(n);
      if (n != 0) std::memcpy(buf.data(), seg_buf.data(), seg.byte_len);
      col.AppendNumerics(buf.data(), n);
      out_columns.push_back(std::move(col));
    } else {
      const int64_t dict_size = static_cast<int64_t>(dicts[c]->size());
      storage::Column col = storage::Column::MakeCategorical(dicts[c]);
      std::vector<int32_t> buf(n);
      switch (seg.encoding) {
        case SegmentEncoding::kRaw:
          if (n != 0) std::memcpy(buf.data(), seg_buf.data(), seg.byte_len);
          break;
        case SegmentEncoding::kBitpack: {
          uint32_t* out = reinterpret_cast<uint32_t*>(buf.data());
#if defined(__x86_64__) || defined(__i386__)
          if (runtime::Avx2Available()) {
            runtime::BitUnpackAvx2(seg_buf.data(), n, width, out);
          } else
#endif
          {
            runtime::BitUnpackScalar(seg_buf.data(), n, width, out);
          }
          break;
        }
        case SegmentEncoding::kForDelta: {
          packed_scratch.resize(n);
          const uint32_t base =
              static_cast<uint32_t>(static_cast<int32_t>(seg.base));
#if defined(__x86_64__) || defined(__i386__)
          if (runtime::Avx2Available()) {
            runtime::BitUnpackAvx2(seg_buf.data(), n, width,
                                   packed_scratch.data());
            runtime::ForDeltaReconstructAvx2(packed_scratch.data(), n, base,
                                             buf.data());
          } else
#endif
          {
            runtime::BitUnpackScalar(seg_buf.data(), n, width,
                                     packed_scratch.data());
            runtime::ForDeltaReconstructScalar(packed_scratch.data(), n,
                                               base, buf.data());
          }
          break;
        }
      }
      // Dictionary validation runs on the *decoded* codes whatever the
      // encoding, so a bit flip that survives into plausible values
      // still can't reach the dense group-id path out of range.
      for (size_t i = 0; i < n; ++i) {
        if (buf[i] < 0 || buf[i] >= dict_size) {
          return corrupt("dictionary code out of range");
        }
      }
      col.AppendCodes(buf.data(), n);
      out_columns.push_back(std::move(col));
    }
  }
  if (bytes_read != nullptr) *bytes_read = file.bytes_read();
  return storage::Table::FromPrunedColumns(schema, std::move(out_columns), n);
}

Result<storage::Table> ReadPartitionFile(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts) {
  return ReadPartitionColumns(path, schema, dicts, storage::ColumnSet::All());
}

}  // namespace ps3::io
