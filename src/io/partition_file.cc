#include "io/partition_file.h"

#include <cstdint>
#include <cstring>

#include "common/hash.h"
#include "common/serialize.h"

namespace ps3::io {

namespace {

constexpr uint32_t kPartitionMagic = 0x50335350;  // "PS3P"
constexpr uint32_t kPartitionVersion = 1;

struct SegmentMeta {
  uint8_t type = 0;  // 0 = numeric, 1 = categorical
  uint64_t offset = 0;
  uint64_t byte_len = 0;
  uint64_t checksum = 0;
};

}  // namespace

Result<size_t> WritePartitionFile(const storage::Table& table,
                                  size_t begin_row, size_t end_row,
                                  const std::string& path) {
  if (begin_row > end_row || end_row > table.num_rows()) {
    return Status::InvalidArgument("partition row range out of bounds");
  }
  const size_t n = end_row - begin_row;
  const size_t n_cols = table.num_columns();

  BinaryWriter w;
  w.PutU32(kPartitionMagic);
  w.PutU32(kPartitionVersion);
  w.PutU64(n);
  w.PutU32(static_cast<uint32_t>(n_cols));

  std::vector<SegmentMeta> segs(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    const storage::Column& col = table.column(c);
    SegmentMeta& seg = segs[c];
    seg.offset = w.buffer().size();
    if (col.is_numeric()) {
      seg.type = 0;
      const double* v = col.NumericSpan(begin_row);
      for (size_t r = 0; r < n; ++r) w.PutDouble(v[r]);
    } else {
      seg.type = 1;
      const int32_t* v = col.CodeSpan(begin_row);
      for (size_t r = 0; r < n; ++r) w.PutI32(v[r]);
    }
    seg.byte_len = w.buffer().size() - seg.offset;
    seg.checksum = Fnv1a64(w.buffer().data() + seg.offset, seg.byte_len);
  }

  const uint64_t footer_off = w.buffer().size();
  for (const SegmentMeta& seg : segs) {
    w.PutU8(seg.type);
    w.PutU64(seg.offset);
    w.PutU64(seg.byte_len);
    w.PutU64(seg.checksum);
  }
  w.PutU64(footer_off);
  w.PutU32(kPartitionMagic);

  PS3_RETURN_IF_ERROR(w.WriteFile(path));
  return w.buffer().size();
}

Result<storage::Table> ReadPartitionFile(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  BinaryReader& r = *reader;

  auto corrupt = [&path](const std::string& what) {
    return Status::Internal("partition file '" + path + "': " + what);
  };

  // Trailer first: it anchors the footer without trusting anything else.
  if (r.size() < 12) return corrupt("shorter than trailer");
  PS3_RETURN_IF_ERROR(r.SeekTo(r.size() - 12));
  auto footer_off = r.GetU64();
  auto end_magic = r.GetU32();
  if (!footer_off.ok() || !end_magic.ok() || *end_magic != kPartitionMagic) {
    return corrupt("bad trailer magic");
  }

  PS3_RETURN_IF_ERROR(r.SeekTo(0));
  auto magic = r.GetU32();
  auto version = r.GetU32();
  auto num_rows = r.GetU64();
  auto num_cols = r.GetU32();
  if (!magic.ok() || *magic != kPartitionMagic) return corrupt("bad magic");
  if (!version.ok() || *version != kPartitionVersion) {
    return corrupt("unsupported version");
  }
  if (!num_rows.ok() || !num_cols.ok()) return corrupt("truncated header");
  if (*num_cols != schema.num_columns() ||
      dicts.size() != schema.num_columns()) {
    return corrupt("column count does not match schema");
  }
  // The header is not itself checksummed, so bound num_rows by the file
  // size before it feeds any allocation or length arithmetic: every row
  // costs >= 4 bytes per column segment, so a plausible count can never
  // exceed the byte size. This also keeps expect_len below from
  // overflowing uint64.
  if (*num_rows > r.size()) return corrupt("row count exceeds file size");
  const size_t n = static_cast<size_t>(*num_rows);

  PS3_RETURN_IF_ERROR(r.SeekTo(static_cast<size_t>(*footer_off)));
  std::vector<SegmentMeta> segs(*num_cols);
  for (SegmentMeta& seg : segs) {
    auto type = r.GetU8();
    auto offset = r.GetU64();
    auto byte_len = r.GetU64();
    auto checksum = r.GetU64();
    if (!type.ok() || !offset.ok() || !byte_len.ok() || !checksum.ok()) {
      return corrupt("truncated footer");
    }
    seg = SegmentMeta{*type, *offset, *byte_len, *checksum};
  }

  std::vector<storage::Column> columns;
  columns.reserve(*num_cols);
  for (size_t c = 0; c < *num_cols; ++c) {
    const SegmentMeta& seg = segs[c];
    const bool numeric = schema.IsNumeric(c);
    if ((seg.type == 0) != numeric) return corrupt("segment type mismatch");
    const uint64_t expect_len =
        static_cast<uint64_t>(n) * (numeric ? 8 : 4);
    if (seg.byte_len != expect_len || seg.offset > r.size() ||
        seg.byte_len > r.size() - seg.offset) {
      return corrupt("segment bounds out of range");
    }
    if (Fnv1a64(r.data().data() + seg.offset, seg.byte_len) != seg.checksum) {
      return corrupt("segment checksum mismatch");
    }
    // Bulk decode: segments are raw little-endian fixed-width values and
    // the format is declared non-portable across endianness (like every
    // ps3 artifact), so the whole segment memcpys straight into the
    // column buffer — this keeps cold-load cost IO-shaped, not CPU-shaped.
    const uint8_t* seg_bytes = r.data().data() + seg.offset;
    if (numeric) {
      storage::Column col = storage::Column::MakeNumeric();
      std::vector<double> buf(n);
      if (n != 0) std::memcpy(buf.data(), seg_bytes, seg.byte_len);
      col.AppendNumerics(buf.data(), n);
      columns.push_back(std::move(col));
    } else {
      if (dicts[c] == nullptr) return corrupt("missing dictionary");
      const int64_t dict_size = static_cast<int64_t>(dicts[c]->size());
      storage::Column col = storage::Column::MakeCategorical(dicts[c]);
      std::vector<int32_t> buf(n);
      if (n != 0) std::memcpy(buf.data(), seg_bytes, seg.byte_len);
      for (size_t i = 0; i < n; ++i) {
        if (buf[i] < 0 || buf[i] >= dict_size) {
          return corrupt("dictionary code out of range");
        }
      }
      col.AppendCodes(buf.data(), n);
      columns.push_back(std::move(col));
    }
  }
  return storage::Table::FromColumns(schema, std::move(columns));
}

}  // namespace ps3::io
