#include "io/partition_file.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "common/serialize.h"

namespace ps3::io {

namespace {

constexpr uint32_t kPartitionMagic = 0x50335350;  // "PS3P"
constexpr uint32_t kPartitionVersion = 1;

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4;
constexpr size_t kFooterEntryBytes = 1 + 8 + 8 + 8;
constexpr size_t kTrailerBytes = 8 + 4;

struct SegmentMeta {
  uint8_t type = 0;  // 0 = numeric, 1 = categorical
  uint64_t offset = 0;
  uint64_t byte_len = 0;
  uint64_t checksum = 0;
};

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Seek-based reader: unlike BinaryReader::FromFile (which slurps the
/// whole file), this touches only the ranges asked for — the point of
/// column pruning is that unrequested segments never leave the disk.
class SeekingFile {
 public:
  ~SeekingFile() {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Open(const std::string& path) {
    f_ = std::fopen(path.c_str(), "rb");
    if (f_ == nullptr) {
      return Status::NotFound("cannot open '" + path + "'");
    }
    if (std::fseek(f_, 0, SEEK_END) != 0) {
      return Status::Internal("cannot seek '" + path + "'");
    }
    long size = std::ftell(f_);
    if (size < 0) return Status::Internal("cannot size '" + path + "'");
    size_ = static_cast<size_t>(size);
    return Status::OK();
  }

  size_t size() const { return size_; }
  size_t bytes_read() const { return bytes_read_; }

  /// Reads exactly [offset, offset+len) into `out`; fails on any short
  /// read or out-of-bounds range.
  Status ReadAt(uint64_t offset, size_t len, uint8_t* out) {
    if (offset > size_ || len > size_ - offset) {
      return Status::Internal("read range out of bounds");
    }
    if (std::fseek(f_, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::Internal("seek failed");
    }
    if (len != 0 && std::fread(out, 1, len, f_) != len) {
      return Status::Internal("short read");
    }
    bytes_read_ += len;
    return Status::OK();
  }

 private:
  std::FILE* f_ = nullptr;
  size_t size_ = 0;
  size_t bytes_read_ = 0;
};

}  // namespace

Result<size_t> WritePartitionFile(const storage::Table& table,
                                  size_t begin_row, size_t end_row,
                                  const std::string& path) {
  if (begin_row > end_row || end_row > table.num_rows()) {
    return Status::InvalidArgument("partition row range out of bounds");
  }
  const size_t n = end_row - begin_row;
  const size_t n_cols = table.num_columns();

  BinaryWriter w;
  w.PutU32(kPartitionMagic);
  w.PutU32(kPartitionVersion);
  w.PutU64(n);
  w.PutU32(static_cast<uint32_t>(n_cols));

  std::vector<SegmentMeta> segs(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    const storage::Column& col = table.column(c);
    SegmentMeta& seg = segs[c];
    seg.offset = w.buffer().size();
    if (col.is_numeric()) {
      seg.type = 0;
      const double* v = col.NumericSpan(begin_row);
      for (size_t r = 0; r < n; ++r) w.PutDouble(v[r]);
    } else {
      seg.type = 1;
      const int32_t* v = col.CodeSpan(begin_row);
      for (size_t r = 0; r < n; ++r) w.PutI32(v[r]);
    }
    seg.byte_len = w.buffer().size() - seg.offset;
    seg.checksum = Fnv1a64(w.buffer().data() + seg.offset, seg.byte_len);
  }

  const uint64_t footer_off = w.buffer().size();
  for (const SegmentMeta& seg : segs) {
    w.PutU8(seg.type);
    w.PutU64(seg.offset);
    w.PutU64(seg.byte_len);
    w.PutU64(seg.checksum);
  }
  w.PutU64(footer_off);
  w.PutU32(kPartitionMagic);

  PS3_RETURN_IF_ERROR(w.WriteFile(path));
  return w.buffer().size();
}

Result<storage::Table> ReadPartitionColumns(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts,
    const storage::ColumnSet& columns, size_t* bytes_read) {
  SeekingFile file;
  PS3_RETURN_IF_ERROR(file.Open(path));

  auto corrupt = [&path](const std::string& what) {
    return Status::Internal("partition file '" + path + "': " + what);
  };

  // Trailer first: it anchors the footer without trusting anything else.
  if (file.size() < kHeaderBytes + kTrailerBytes) {
    return corrupt("shorter than header + trailer");
  }
  uint8_t trailer[kTrailerBytes];
  PS3_RETURN_IF_ERROR(
      file.ReadAt(file.size() - kTrailerBytes, kTrailerBytes, trailer));
  const uint64_t footer_off = ReadU64(trailer);
  if (ReadU32(trailer + 8) != kPartitionMagic) {
    return corrupt("bad trailer magic");
  }

  uint8_t header[kHeaderBytes];
  PS3_RETURN_IF_ERROR(file.ReadAt(0, kHeaderBytes, header));
  if (ReadU32(header) != kPartitionMagic) return corrupt("bad magic");
  if (ReadU32(header + 4) != kPartitionVersion) {
    return corrupt("unsupported version");
  }
  const uint64_t num_rows = ReadU64(header + 8);
  const uint32_t num_cols = ReadU32(header + 16);
  if (num_cols != schema.num_columns() ||
      dicts.size() != schema.num_columns()) {
    return corrupt("column count does not match schema");
  }
  // The header is not itself checksummed, so bound num_rows by the file
  // size before it feeds any allocation or length arithmetic: every row
  // costs >= 4 bytes per column segment, so a plausible count can never
  // exceed the byte size. This also keeps expect_len below from
  // overflowing uint64.
  if (num_rows > file.size()) return corrupt("row count exceeds file size");
  const size_t n = static_cast<size_t>(num_rows);

  const size_t footer_len = static_cast<size_t>(num_cols) * kFooterEntryBytes;
  if (footer_off > file.size() || footer_len > file.size() - footer_off) {
    return corrupt("footer out of bounds");
  }
  std::vector<uint8_t> footer(footer_len);
  PS3_RETURN_IF_ERROR(file.ReadAt(footer_off, footer_len, footer.data()));
  std::vector<SegmentMeta> segs(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    const uint8_t* e = footer.data() + c * kFooterEntryBytes;
    segs[c] = SegmentMeta{e[0], ReadU64(e + 1), ReadU64(e + 9),
                          ReadU64(e + 17)};
  }

  std::vector<storage::Column> out_columns;
  out_columns.reserve(num_cols);
  std::vector<uint8_t> seg_buf;
  for (size_t c = 0; c < num_cols; ++c) {
    const SegmentMeta& seg = segs[c];
    const bool numeric = schema.IsNumeric(c);
    if ((seg.type == 0) != numeric) return corrupt("segment type mismatch");
    if (!numeric && dicts[c] == nullptr) return corrupt("missing dictionary");
    if (!columns.Contains(c)) {
      // Pruned: an empty, correctly typed column (categoricals keep the
      // shared dictionary so group-by metadata stays intact).
      out_columns.push_back(numeric ? storage::Column::MakeNumeric()
                                    : storage::Column::MakeCategorical(
                                          dicts[c]));
      continue;
    }
    const uint64_t expect_len = static_cast<uint64_t>(n) * (numeric ? 8 : 4);
    if (seg.byte_len != expect_len || seg.offset > file.size() ||
        seg.byte_len > file.size() - seg.offset) {
      return corrupt("segment bounds out of range");
    }
    seg_buf.resize(seg.byte_len);
    PS3_RETURN_IF_ERROR(
        file.ReadAt(seg.offset, static_cast<size_t>(seg.byte_len),
                    seg_buf.data()));
    if (Fnv1a64(seg_buf.data(), seg_buf.size()) != seg.checksum) {
      return corrupt("segment checksum mismatch");
    }
    // Bulk decode: segments are raw little-endian fixed-width values and
    // the format is declared non-portable across endianness (like every
    // ps3 artifact), so the whole segment memcpys straight into the
    // column buffer — this keeps cold-load cost IO-shaped, not CPU-shaped.
    if (numeric) {
      storage::Column col = storage::Column::MakeNumeric();
      std::vector<double> buf(n);
      if (n != 0) std::memcpy(buf.data(), seg_buf.data(), seg_buf.size());
      col.AppendNumerics(buf.data(), n);
      out_columns.push_back(std::move(col));
    } else {
      const int64_t dict_size = static_cast<int64_t>(dicts[c]->size());
      storage::Column col = storage::Column::MakeCategorical(dicts[c]);
      std::vector<int32_t> buf(n);
      if (n != 0) std::memcpy(buf.data(), seg_buf.data(), seg_buf.size());
      for (size_t i = 0; i < n; ++i) {
        if (buf[i] < 0 || buf[i] >= dict_size) {
          return corrupt("dictionary code out of range");
        }
      }
      col.AppendCodes(buf.data(), n);
      out_columns.push_back(std::move(col));
    }
  }
  if (bytes_read != nullptr) *bytes_read = file.bytes_read();
  return storage::Table::FromPrunedColumns(schema, std::move(out_columns), n);
}

Result<storage::Table> ReadPartitionFile(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts) {
  return ReadPartitionColumns(path, schema, dicts, storage::ColumnSet::All());
}

}  // namespace ps3::io
