// Deterministic, seeded fault injection for the simulated remote
// partition store.
//
// A FaultPlan describes the store's failure behavior as a pure function
// of (seed, partition, column, attempt): every decision is a hash, never
// a live RNG, so the same plan replays the identical fault sequence —
// run to run, thread schedule to thread schedule. That determinism is
// what lets the fault battery assert exact outcomes ("attempt 1 fails
// transient, attempt 2 succeeds") and what extends the repo's
// determinism contract to faulty configs: same fault seed + retry policy
// + query seed ⇒ bit-identical answers and statuses.
//
// Fault kinds, and where the store applies them:
//
//   kTransient  the read fails with Status::Unavailable after the
//               simulated latency is paid (the bytes "moved" and were
//               dropped) — the retryable class.
//   kLatency    the read succeeds but pays an extra latency spike on
//               top of the simulated base latency — the hedging class.
//   kCorrupt    one encoded byte of the column's segment is bit-flipped
//               before checksum verification, so the real corruption
//               machinery (checksum mismatch → Status::Internal)
//               surfaces it — the evict-and-refetch class.
//   kLost       the partition is permanently unreachable: every attempt
//               fails with Status::Unavailable immediately and retries
//               are pointless — the graceful-degradation class.
//
// Rates are independent per (partition, column, attempt) coordinate with
// distinct hash salts, so e.g. a 1% transient rate and a 1% corrupt rate
// don't correlate. Scripted FaultRules override the rates for exact
// test choreography (first match wins); lost partitions are a plan-level
// set, not a rate — "permanently lost" is a property of the partition,
// not of an attempt.
//
// Attempt numbering: the injector keeps a per-(partition, column)
// attempt counter; each physical read consumes one attempt via Next().
// Counters only ever grow, so a retry sees a *different* coordinate than
// the attempt it is retrying — which is what makes "fails twice, then
// succeeds" expressible, and what makes retries actually help.
#ifndef PS3_IO_FAULT_INJECTOR_H_
#define PS3_IO_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace ps3::io {

enum class FaultKind : uint8_t {
  kNone = 0,
  kTransient,  ///< read fails retryably after paying its latency
  kLatency,    ///< read succeeds after an extra latency spike
  kCorrupt,    ///< encoded segment byte flipped; checksum catches it
  kLost,       ///< partition permanently unreachable; never retried
};

/// "none" / "transient" / "latency" / "corrupt" / "lost".
const char* FaultKindName(FaultKind kind);

/// A scripted fault: overrides the plan's rates for exact coordinates.
/// First matching rule wins; unmatched coordinates fall through to the
/// hashed rates.
struct FaultRule {
  /// Partition index this rule applies to.
  size_t partition = 0;
  /// Column index, or kAnyColumn for all columns of the partition.
  static constexpr size_t kAnyColumn = static_cast<size_t>(-1);
  size_t column = kAnyColumn;
  /// Attempt range [attempt_begin, attempt_end) the rule covers;
  /// attempts are 0-based per (partition, column). The default covers
  /// only the first attempt.
  int attempt_begin = 0;
  int attempt_end = 1;
  FaultKind kind = FaultKind::kTransient;
  /// Extra latency for kLatency rules (ignored otherwise; 0 uses the
  /// plan's latency_spike_us).
  size_t latency_us = 0;
};

/// The full seeded fault plan. Default-constructed = no faults.
struct FaultPlan {
  uint64_t seed = 0;
  /// Independent per-(partition, column, attempt) probabilities in
  /// [0, 1]. Priority when several fire on one coordinate:
  /// lost > transient > corrupt; latency spikes are additive on top of
  /// whatever else happens (a read can spike *and* then fail transient).
  double transient_rate = 0.0;
  double corrupt_rate = 0.0;
  double latency_rate = 0.0;
  /// Extra microseconds a latency spike adds to the simulated read.
  size_t latency_spike_us = 2000;
  /// Permanently unreachable partitions.
  std::set<size_t> lost_partitions;
  /// Scripted overrides, checked before the rates (first match wins).
  std::vector<FaultRule> rules;

  bool AnyFaults() const {
    return transient_rate > 0.0 || corrupt_rate > 0.0 ||
           latency_rate > 0.0 || !lost_partitions.empty() || !rules.empty();
  }
};

/// One read attempt's injected faults, resolved.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Extra latency to pay (kLatency, or additive spike on a failing
  /// attempt). 0 = none.
  size_t extra_latency_us = 0;
  /// Attempt number this decision consumed (0-based, per coordinate) —
  /// surfaced for error messages and test assertions.
  int attempt = 0;
};

/// Thread-safe decision oracle over a FaultPlan. One injector instance
/// is shared by every load path of a store (demand, prefetch, hedge), so
/// the attempt counters see every physical read in program order per
/// coordinate — concurrent coordinates are independent.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Consumes the next attempt for (partition, column) and resolves its
  /// fault decision.
  FaultDecision Next(size_t partition, size_t column);

  /// Pure lookup: the decision attempt `attempt` would get, without
  /// consuming anything. Next(p, c) on a fresh coordinate returns
  /// exactly Peek(p, c, 0) — the replay property the battery pins.
  FaultDecision Peek(size_t partition, size_t column, int attempt) const;

  /// True if the plan lists `partition` as permanently lost.
  bool IsLost(size_t partition) const {
    return plan_.lost_partitions.count(partition) != 0;
  }
  const std::set<size_t>& lost_partitions() const {
    return plan_.lost_partitions;
  }
  const FaultPlan& plan() const { return plan_; }

  /// Resets every attempt counter (tests replaying a sequence).
  void ResetAttempts();

  /// Flips one deterministic bit of `data[0, len)` for a kCorrupt
  /// decision: which bit is itself a hash of the coordinate, so the
  /// corruption is replayable too. No-op on empty segments.
  static void CorruptBytes(uint64_t seed, size_t partition, size_t column,
                           int attempt, uint8_t* data, size_t len);

 private:
  FaultDecision Decide(size_t partition, size_t column, int attempt) const;

  const FaultPlan plan_;
  mutable std::mutex mu_;
  /// Next attempt number per (partition, column). Guarded by mu_.
  std::map<std::pair<size_t, size_t>, int> attempts_;
};

}  // namespace ps3::io

#endif  // PS3_IO_FAULT_INJECTOR_H_
