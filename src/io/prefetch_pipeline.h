// Asynchronous shard-granular read-ahead for cold scans.
//
// While the evaluator scans shard s of a spilled table, the pipeline
// stages shard s+1's partitions into the store's cache: Stage() admits
// one staging task through the runtime::QueryScheduler (so prefetch IO
// interleaves with query work instead of preempting it), and that task
// fans the individual partition loads out across runtime::WorkerPool
// lanes. Loads sleep through the store's simulated remote latency on
// pool/driver threads, overlapping the wait with the current shard's
// compute — which is the entire point of prefetching.
//
// The read-ahead budget is byte-accounted and *shared*: every query
// prefetching through one pipeline draws from the same in-flight byte
// pool, so N concurrent cold queries can't multiply read-ahead memory by
// N. Partitions that don't fit the remaining budget are skipped, not
// queued — they'll be demand-loaded by the scan; prefetch is advisory
// and never affects answers, only timing. Staging errors are likewise
// swallowed (counted in stats): the demand path surfaces real errors.
//
// Lifetime: borrows the store and scheduler; destroy the pipeline before
// either. The destructor drains in-flight staging tasks.
#ifndef PS3_IO_PREFETCH_PIPELINE_H_
#define PS3_IO_PREFETCH_PIPELINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "io/partition_store.h"
#include "runtime/query_scheduler.h"

namespace ps3::io {

class PrefetchPipeline {
 public:
  struct Options {
    /// Cap on bytes staged-but-not-yet-inserted across *all* queries
    /// sharing this pipeline.
    size_t readahead_bytes = size_t{64} << 20;
    /// Worker-pool lanes a staging task may fan its loads across. Loads
    /// are latency-bound (they sleep through the simulated store RTT), so
    /// oversubscribing lanes is cheap and hides more of the wait.
    int load_lanes = 16;
  };

  /// Default options.
  PrefetchPipeline(PartitionStore* store, runtime::QueryScheduler* scheduler);
  PrefetchPipeline(PartitionStore* store, runtime::QueryScheduler* scheduler,
                   Options options);
  ~PrefetchPipeline();

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  /// Stages the given partitions (typically one shard's list) into the
  /// store's cache asynchronously, bounded by the shared read-ahead
  /// budget. Non-blocking; safe to call from pool lanes mid-scan.
  void Stage(std::vector<size_t> parts);

  /// Waits for every in-flight staging task.
  void Drain();

  struct PrefetchStats {
    uint64_t staged = 0;          ///< partitions handed to a staging task
    uint64_t skipped_cached = 0;  ///< already cached (or loading)
    uint64_t skipped_budget = 0;  ///< didn't fit the read-ahead budget
    uint64_t load_errors = 0;     ///< advisory failures (demand path retries)
  };
  PrefetchStats stats() const;

 private:
  PartitionStore* store_;
  runtime::QueryScheduler* scheduler_;
  const Options options_;

  std::atomic<size_t> inflight_bytes_{0};
  std::atomic<uint64_t> staged_{0};
  std::atomic<uint64_t> skipped_cached_{0};
  std::atomic<uint64_t> skipped_budget_{0};
  std::atomic<uint64_t> load_errors_{0};

  std::mutex mu_;
  std::vector<std::future<void>> inflight_;  ///< guarded by mu_
};

}  // namespace ps3::io

#endif  // PS3_IO_PREFETCH_PIPELINE_H_
