// Asynchronous shard-granular read-ahead for cold scans, with adaptive
// stage-ahead pacing and column-pruned staging.
//
// While the evaluator scans shard s of a spilled table, the pipeline
// stages upcoming shards' *hinted column segments* into the store's
// cache: StageAhead() admits one staging task through the
// runtime::QueryScheduler (so prefetch IO interleaves with query work
// instead of preempting it), and that task fans the individual segment
// loads out across runtime::WorkerPool lanes. Loads sleep through the
// store's simulated remote latency on pool/driver threads, overlapping
// the wait with the current shard's compute — which is the entire point
// of prefetching.
//
// Pacing is adaptive: the pipeline keeps an EWMA of the per-shard scan
// interval (time between successive shard entries) and of the staging
// latency (how long a prefetch batch takes to land — loads fan out
// across pool lanes, so this is ~one store RTT while batches fit the
// lanes). Their ratio is the pipeline depth: when batches land slower
// than shards are consumed — the prefetcher is losing the race — the
// stage-ahead distance widens from 1 toward max_ahead_shards so more
// shards load concurrently; when scans are the bottleneck it narrows
// back to 1. The
// distance is always additionally bounded by the shared read-ahead byte
// budget and the cache's retention headroom, so adaptivity can never
// stage more than the cache could keep. Pacing is advisory and affects
// timing only, never answers.
//
// The read-ahead budget is byte-accounted at *column-segment*
// granularity and *shared*: every query prefetching through one pipeline
// draws from the same in-flight byte pool, so N concurrent cold queries
// can't multiply read-ahead memory by N. The pool is split by admission
// class: batch staging stops at (1 - interactive_reserve_fraction) of
// the budget while interactive staging may use all of it, so any amount
// of batch read-ahead leaves the reserved share of IO available to
// interactive cold loads — batch prefetch cannot starve the latency
// class. Since segments spill compressed,
// admission runs in two units: the shared pool meters *encoded* bytes
// (disk/link traffic), the cache-headroom bound meters *decoded* bytes
// (resident footprint once a staged segment lands). Segments that don't
// fit either budget are skipped, not queued — they'll be demand-loaded by
// the scan; prefetch is advisory and never affects answers, only timing.
// Staging errors are likewise swallowed (counted in stats): the demand
// path surfaces real errors.
//
// Lifetime: borrows the store and scheduler; destroy the pipeline before
// either. The destructor drains in-flight staging tasks.
#ifndef PS3_IO_PREFETCH_PIPELINE_H_
#define PS3_IO_PREFETCH_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "common/query_control.h"
#include "io/partition_store.h"
#include "runtime/query_scheduler.h"
#include "storage/column_set.h"

namespace ps3::io {

class PrefetchPipeline {
 public:
  struct Options {
    /// Cap on *encoded* (on-disk) bytes staged-but-not-yet-inserted
    /// across *all* queries sharing this pipeline — the read-ahead IO
    /// pool meters what the disk/link actually moves. The decoded
    /// footprint of staged segments is bounded separately by the
    /// store's cache headroom.
    size_t readahead_bytes = size_t{64} << 20;
    /// Share of `readahead_bytes` reserved for interactive-class
    /// read-ahead: batch staging stops admitting once batch in-flight
    /// bytes reach (1 - fraction) * budget, while interactive staging may
    /// draw on the whole pool (including whatever the batch share left
    /// idle). This is the multi-tenant isolation knob — any number of
    /// batch scans sharing the pipeline leave this fraction of read-ahead
    /// IO available to interactive cold loads. 0 restores the single
    /// shared pool. Clamped to [0, 1].
    double interactive_reserve_fraction = 0.25;
    /// Worker-pool lanes a staging task may fan its loads across. Loads
    /// are latency-bound (they sleep through the simulated store RTT), so
    /// oversubscribing lanes is cheap and hides more of the wait.
    int load_lanes = 16;
    /// Upper bound on the adaptive stage-ahead distance (shards staged
    /// beyond the one being scanned). 1 reproduces the fixed next-shard
    /// lookahead.
    size_t max_ahead_shards = 4;
  };

  /// Default options.
  PrefetchPipeline(PartitionStore* store, runtime::QueryScheduler* scheduler);
  PrefetchPipeline(PartitionStore* store, runtime::QueryScheduler* scheduler,
                   Options options);
  ~PrefetchPipeline();

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  /// Scan-entry hook (ColdShardedSource::WillScanShard): updates the
  /// scan-pace EWMA and stages the hinted columns of the next
  /// [1, max_ahead_shards] shards after `current`, as the current
  /// load-vs-scan latency ratio warrants, bounded by `query_class`'s
  /// share of the read-ahead budget. Non-blocking; safe to call from
  /// pool lanes mid-scan.
  void StageAhead(const std::vector<std::vector<size_t>>& shards,
                  size_t current, const storage::ColumnSet& columns,
                  QueryClass query_class = QueryClass::kBatch);

  /// Stages the given partitions' hinted columns into the store's cache
  /// asynchronously, bounded by `query_class`'s share of the read-ahead
  /// budget. Non-blocking; safe to call from pool lanes mid-scan.
  void Stage(std::vector<size_t> parts,
             const storage::ColumnSet& columns = storage::ColumnSet::All(),
             QueryClass query_class = QueryClass::kBatch);

  /// Waits for every in-flight staging task.
  void Drain();

  struct PrefetchStats {
    uint64_t staged = 0;          ///< partitions handed to a staging task
    uint64_t skipped_cached = 0;  ///< already cached (or loading)
    uint64_t skipped_budget = 0;  ///< didn't fit the read-ahead budget
    uint64_t load_errors = 0;     ///< advisory failures (demand path retries)
    size_t ahead_shards = 1;      ///< current adaptive stage-ahead distance
    /// Encoded bytes currently reserved against the read-ahead pool, per
    /// class and total. Every reservation is released when its staging
    /// task finishes (success, load error, or a failed dispatch alike),
    /// so with no staging in flight these are exactly 0 — the invariant
    /// the budget-leak tests pin.
    size_t inflight_batch_bytes = 0;
    size_t inflight_interactive_bytes = 0;
    size_t inflight_bytes = 0;
  };
  PrefetchStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Current stage-ahead distance from the latency EWMAs.
  size_t AheadDistance() const;
  /// Folds a sample into an EWMA cell (microseconds, relaxed atomics —
  /// pacing is advisory, approximate reads are fine).
  static void UpdateEwma(std::atomic<uint64_t>* cell, uint64_t sample_us);

  /// Tries to reserve `bytes` of read-ahead budget for `query_class`:
  /// the total pool bounds both classes, and batch additionally stops at
  /// its (1 - interactive_reserve_fraction) share. Admission and release
  /// share one small mutex — staging runs per partition batch, far off
  /// the per-chunk hot path.
  bool TryReserve(size_t bytes, QueryClass query_class);
  void Release(size_t bytes, QueryClass query_class);

  PartitionStore* store_;
  runtime::QueryScheduler* scheduler_;
  const Options options_;
  /// Batch admission ceiling: (1 - interactive_reserve_fraction) *
  /// readahead_bytes, precomputed.
  const size_t batch_cap_bytes_;

  mutable std::mutex budget_mu_;
  size_t inflight_batch_ = 0;        ///< guarded by budget_mu_
  size_t inflight_interactive_ = 0;  ///< guarded by budget_mu_
  std::atomic<uint64_t> staged_{0};
  std::atomic<uint64_t> skipped_cached_{0};
  std::atomic<uint64_t> skipped_budget_{0};
  std::atomic<uint64_t> load_errors_{0};

  /// EWMAs (us). scan_ewma_us_ tracks the interval between successive
  /// StageAhead calls (≈ one shard's scan time); load_ewma_us_ tracks
  /// how long a staging batch takes to land. 0 = no sample yet
  /// (samples clamp to >= 1).
  std::atomic<uint64_t> scan_ewma_us_{0};
  std::atomic<uint64_t> load_ewma_us_{0};
  std::mutex pace_mu_;
  Clock::time_point last_stage_;  ///< guarded by pace_mu_
  bool has_last_stage_ = false;   ///< guarded by pace_mu_

  std::mutex mu_;
  std::vector<std::future<void>> inflight_;  ///< guarded by mu_
};

}  // namespace ps3::io

#endif  // PS3_IO_PREFETCH_PIPELINE_H_
