// Byte-accounted LRU cache of rehydrated *column segments*, with pinning
// for in-flight scans.
//
// Entries are (partition, column) pairs: one decoded column of one
// partition (a CachedColumn — the storage::Column shares its value
// buffer, so handing a cached segment to a scan is a pointer copy, not a
// memcpy). Column granularity is what makes projection pushdown real:
// a scan that references 3 of 40 columns caches and accounts only those
// 3 segments, and a later scan that needs one more column fetches just
// the missing segment (partial-residency upgrade) while the resident
// ones stay hits.
//
// The cache accounts bytes, not entry counts: Insert evicts least-
// recently-used *unpinned* segments until the budget is met again. A
// pinned segment — one with an outstanding ColumnPin token — is never
// evicted, so a scan can hold more than the budget transiently (the
// budget bounds what the cache retains, not what a query needs); the
// overshoot drains as pins are released and later inserts evict.
// Released pins re-enter the LRU at the *cold end* (scan-resistance): a
// released segment was just scanned, so it must not outrank staged-but-
// unscanned read-ahead in eviction order.
//
// Thread-safe: concurrent queries acquire, insert, and release pins from
// pool lanes and prefetch drivers at once. The cache must outlive every
// pin token it hands out.
#ifndef PS3_IO_PARTITION_CACHE_H_
#define PS3_IO_PARTITION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/hash.h"
#include "storage/column.h"

namespace ps3::io {

/// An immutable, scan-ready column segment rehydrated from disk: one
/// column of one partition, buffer shared with every pin. `bytes` is the
/// segment's *decoded* length (rows x fixed value width) — the cache
/// accounting unit, because that is what the entry occupies in memory.
/// Segments spill compressed, so the encoded on-disk length can be far
/// smaller; it is the store's accounting unit (bytes_read, bandwidth
/// model, read-ahead budget), never the cache's — otherwise compression
/// would silently inflate effective cache capacity. Row counts live on
/// the store's manifest (part_rows_), not here.
struct CachedColumn {
  CachedColumn(storage::Column c, size_t bytes_)
      : column(std::move(c)), bytes(bytes_) {}

  storage::Column column;
  size_t bytes;
};

/// Segment key: one column of one partition — shared by the cache's
/// entry map and the store's single-flight loading set.
struct ColumnKey {
  size_t part = 0;
  size_t col = 0;

  bool operator==(const ColumnKey& o) const {
    return part == o.part && col == o.col;
  }
  bool operator<(const ColumnKey& o) const {
    return part != o.part ? part < o.part : col < o.col;
  }
};

struct ColumnKeyHash {
  size_t operator()(const ColumnKey& k) const {
    return static_cast<size_t>(
        Mix64(HashCombine(HashInt(static_cast<int64_t>(k.part)),
                          HashInt(static_cast<int64_t>(k.col)))));
  }
};

/// A pinned segment: shares the cached data and releases the pin (making
/// the entry evictable again) when the last copy is destroyed.
using ColumnPin = std::shared_ptr<const CachedColumn>;

/// Point-in-time counters. hits/misses are AcquirePinned outcomes and
/// inserts/evictions entry movements — all at column-segment granularity;
/// bytes_pinned is included in bytes_cached.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t bytes_cached = 0;
  size_t bytes_pinned = 0;
  size_t peak_bytes = 0;
};

class PartitionCache {
 public:
  explicit PartitionCache(size_t budget_bytes) : budget_(budget_bytes) {}

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  size_t budget_bytes() const { return budget_; }

  /// Looks up segment `key`. On a hit, pins the entry (non-evictable
  /// while the returned token lives) and returns it; on a miss returns
  /// nullopt.
  std::optional<ColumnPin> AcquirePinned(const ColumnKey& key);

  /// Batched lookup: pins every cached segment among `keys` in a single
  /// critical section, filling (*data)[k] for hits (nullptr for misses),
  /// and returns one token that releases every pinned entry in a single
  /// pass (null if nothing hit). A wide scan pays two lock acquisitions
  /// per partition instead of two per column — the fully-cached hot path
  /// would otherwise convoy concurrent lanes on this mutex in proportion
  /// to table width.
  std::shared_ptr<const void> AcquireManyPinned(
      const std::vector<ColumnKey>& keys,
      std::vector<std::shared_ptr<const CachedColumn>>* data);

  /// Inserts `data` unpinned at MRU (the prefetch path), then evicts LRU
  /// unpinned entries while over budget. Re-inserting a present segment
  /// just refreshes its recency.
  void Insert(const ColumnKey& key, std::shared_ptr<const CachedColumn> data);

  /// Insert + pin in one step (the demand-load path): the entry cannot be
  /// evicted between insertion and the scan that needed it.
  ColumnPin InsertPinned(const ColumnKey& key,
                         std::shared_ptr<const CachedColumn> data);

  bool Contains(const ColumnKey& key) const;
  /// True iff every column in `cols` of `part` is cached. `cols` must be
  /// concrete indices (ColumnSet::Resolve output).
  bool ContainsAll(size_t part, const std::vector<size_t>& cols) const;
  /// Drops every unpinned entry (cold-scan resets in benches/tests).
  void Clear();

  size_t bytes_cached() const;
  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const CachedColumn> data;
    size_t bytes = 0;
    size_t pins = 0;
    /// Valid iff pins == 0: position in lru_ (front = coldest). Pinned
    /// entries leave the LRU list entirely and re-enter at the *cold end*
    /// on release (scan-resistance — see Release()).
    std::list<ColumnKey>::iterator lru_it;
  };

  /// Builds the pin token for an already-pinned entry. Must be called
  /// with mu_ *released*: the token's deleter (and the deleter run on a
  /// throwing control-block allocation) locks mu_.
  ColumnPin MakePinned(const ColumnKey& key,
                       std::shared_ptr<const CachedColumn> data);
  void Release(const ColumnKey& key);
  void ReleaseMany(const std::vector<ColumnKey>& keys);
  void PinLocked(Entry* e);
  /// Shared single-entry release logic. Caller holds mu_ and must call
  /// EvictToBudgetLocked afterwards (once per batch).
  void ReleaseLocked(const ColumnKey& key);
  /// Creates the entry at MRU and accounts it. Caller holds mu_.
  Entry& InsertEntryLocked(const ColumnKey& key,
                           std::shared_ptr<const CachedColumn> data);
  void EvictToBudgetLocked();

  const size_t budget_;
  mutable std::mutex mu_;
  std::unordered_map<ColumnKey, Entry, ColumnKeyHash> entries_;
  std::list<ColumnKey> lru_;  ///< unpinned entries only; front = coldest
  CacheStats stats_;
};

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_CACHE_H_
