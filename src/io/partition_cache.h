// Byte-accounted LRU cache of rehydrated partitions, with pinning for
// in-flight scans.
//
// Entries are whole partitions (a LoadedPartition: a standalone mini
// table holding exactly the spilled rows, dictionaries shared with the
// store). The cache accounts bytes, not entry counts: Insert evicts
// least-recently-used *unpinned* entries until the budget is met again.
// A pinned entry — one with an outstanding PinnedPartition token — is
// never evicted, so a scan can hold more than the budget transiently
// (the budget bounds what the cache retains, not what a query needs);
// the overshoot drains as pins are released and later inserts evict.
//
// Thread-safe: concurrent queries acquire, insert, and release pins from
// pool lanes and prefetch drivers at once. The cache must outlive every
// pin token it hands out.
#ifndef PS3_IO_PARTITION_CACHE_H_
#define PS3_IO_PARTITION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "storage/partition_source.h"
#include "storage/table.h"

namespace ps3::io {

/// An immutable, scan-ready partition rehydrated from disk: a mini table
/// holding just that partition's rows, viewed as partition [0, rows).
/// Heap-allocated and shared, so the view's table pointer stays stable
/// for as long as any pin (or the cache) holds a reference.
class LoadedPartition {
 public:
  LoadedPartition(storage::Table table, size_t bytes)
      : table_(std::move(table)), bytes_(bytes) {}

  storage::Partition view() const {
    return storage::Partition(&table_, 0, table_.num_rows());
  }
  size_t num_rows() const { return table_.num_rows(); }
  /// Accounting size (the on-disk byte size; in-memory size tracks it
  /// closely since segments are raw fixed-width values).
  size_t bytes() const { return bytes_; }

 private:
  storage::Table table_;
  size_t bytes_;
};

/// Point-in-time counters. hits/misses are AcquirePinned outcomes;
/// bytes_pinned is included in bytes_cached.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t bytes_cached = 0;
  size_t bytes_pinned = 0;
  size_t peak_bytes = 0;
};

class PartitionCache {
 public:
  explicit PartitionCache(size_t budget_bytes) : budget_(budget_bytes) {}

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  size_t budget_bytes() const { return budget_; }

  /// Looks up partition `part`. On a hit, pins the entry (non-evictable
  /// while the returned token lives) and returns its view; on a miss
  /// returns nullopt.
  std::optional<storage::PinnedPartition> AcquirePinned(size_t part);

  /// Inserts `data` unpinned at MRU (the prefetch path), then evicts LRU
  /// unpinned entries while over budget. Re-inserting a present partition
  /// just refreshes its recency.
  void Insert(size_t part, std::shared_ptr<const LoadedPartition> data);

  /// Insert + pin in one step (the demand-load path): the entry cannot be
  /// evicted between insertion and the scan that needed it.
  storage::PinnedPartition InsertPinned(
      size_t part, std::shared_ptr<const LoadedPartition> data);

  bool Contains(size_t part) const;
  /// Drops every unpinned entry (cold-scan resets in benches/tests).
  void Clear();

  size_t bytes_cached() const;
  CacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const LoadedPartition> data;
    size_t bytes = 0;
    size_t pins = 0;
    /// Valid iff pins == 0: position in lru_ (front = coldest). Pinned
    /// entries leave the LRU list entirely and re-enter at the *cold end*
    /// on release (scan-resistance — see Release()): a released pin means
    /// the scan is done with the partition, so it must not outrank
    /// staged-but-unscanned read-ahead in eviction order.
    std::list<size_t>::iterator lru_it;
  };

  /// Builds the pin token for an already-pinned entry. Must be called
  /// with mu_ *released*: the token's deleter (and the deleter run on a
  /// throwing control-block allocation) locks mu_.
  storage::PinnedPartition MakePinned(
      size_t part, std::shared_ptr<const LoadedPartition> data);
  void Release(size_t part);
  void PinLocked(size_t part, Entry* e);
  /// Creates the entry at MRU and accounts it. Caller holds mu_.
  Entry& InsertEntryLocked(size_t part,
                           std::shared_ptr<const LoadedPartition> data);
  void EvictToBudgetLocked();

  const size_t budget_;
  mutable std::mutex mu_;
  std::unordered_map<size_t, Entry> entries_;
  std::list<size_t> lru_;  ///< unpinned entries only; front = coldest
  CacheStats stats_;
};

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_CACHE_H_
