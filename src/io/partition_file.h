// Columnar on-disk format for one partition, on top of
// common/serialize's BinaryWriter/Reader.
//
// Layout (little-endian, like every ps3 on-disk artifact):
//
//   header   u32 magic 'PS3P' · u32 version · u64 num_rows · u32 num_cols
//   segments one per column, back to back: num_rows raw values
//            (numeric: 8-byte IEEE doubles; categorical: 4-byte codes)
//   footer   per column: u8 type · u64 offset · u64 byte_len ·
//            u64 fnv1a64 checksum of the segment bytes
//   trailer  u64 footer offset · u32 magic
//
// The footer carries everything a reader needs to seek straight to a
// column segment and verify it, so future column-pruned reads don't have
// to touch the whole file. Readers verify magic, version, arity against
// the schema, segment bounds, and every segment checksum before a single
// value is decoded; corruption surfaces as a Status error, never as a
// wrong answer.
#ifndef PS3_IO_PARTITION_FILE_H_
#define PS3_IO_PARTITION_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace ps3::io {

/// Writes rows [begin_row, end_row) of `table` as one partition file.
/// Returns the file's byte size (the cache/prefetch accounting unit).
Result<size_t> WritePartitionFile(const storage::Table& table,
                                  size_t begin_row, size_t end_row,
                                  const std::string& path);

/// Reads and verifies a partition file, rehydrating it as a standalone
/// table with exactly the spilled rows. `schema` is the table schema the
/// file was written under; `dicts[c]` must be the shared dictionary for
/// each categorical column c (null for numeric columns). Every code is
/// validated against its dictionary, so a verified table is safe for the
/// dense group-id path.
Result<storage::Table> ReadPartitionFile(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts);

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_FILE_H_
