// Columnar on-disk format for one partition, on top of
// common/serialize's BinaryWriter/Reader.
//
// Layout (little-endian, like every ps3 on-disk artifact):
//
//   header   u32 magic 'PS3P' · u32 version · u64 num_rows · u32 num_cols
//   segments one per column, back to back: num_rows raw values
//            (numeric: 8-byte IEEE doubles; categorical: 4-byte codes)
//   footer   per column: u8 type · u64 offset · u64 byte_len ·
//            u64 fnv1a64 checksum of the segment bytes
//   trailer  u64 footer offset · u32 magic
//
// The footer carries everything a reader needs to seek straight to a
// column segment and verify it, which is what makes column-pruned reads
// possible: ReadPartitionColumns seeks only the requested segments
// (header + footer + those segments are the only bytes that touch the
// disk) and leaves the rest of the columns empty. Readers verify magic,
// version, arity against the schema, segment bounds, and the checksum of
// every segment they decode before a single value is used; corruption
// surfaces as a Status error, never as a wrong answer.
#ifndef PS3_IO_PARTITION_FILE_H_
#define PS3_IO_PARTITION_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_set.h"
#include "storage/table.h"

namespace ps3::io {

/// Writes rows [begin_row, end_row) of `table` as one partition file.
/// Returns the file's byte size (the cache/prefetch accounting unit).
Result<size_t> WritePartitionFile(const storage::Table& table,
                                  size_t begin_row, size_t end_row,
                                  const std::string& path);

/// Reads and verifies the requested column segments of a partition file,
/// rehydrating them as a standalone *pruned* table: requested columns
/// hold exactly the spilled rows bit-identically, unrequested columns
/// are empty (storage::Table::FromPrunedColumns), and the table's row
/// count is the file's row count either way. `schema` is the table
/// schema the file was written under; `dicts[c]` must be the shared
/// dictionary for each categorical column c (null for numeric columns).
/// Every decoded code is validated against its dictionary, so a verified
/// table is safe for the dense group-id path. Only the header, footer,
/// trailer, and requested segments are read from disk; `bytes_read`
/// (optional) reports exactly that byte count. Checksums are verified
/// for every segment actually read — an unrequested corrupt segment is
/// not detected here, but it is also never decoded, and a later read
/// that requests it surfaces the corruption as a Status.
Result<storage::Table> ReadPartitionColumns(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts,
    const storage::ColumnSet& columns, size_t* bytes_read = nullptr);

/// Reads and verifies every column (ReadPartitionColumns with All).
Result<storage::Table> ReadPartitionFile(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts);

/// On-disk byte length of one column's segment for a partition of
/// `rows` rows — the column-granular cache/prefetch accounting unit.
inline size_t ColumnSegmentBytes(const storage::Schema& schema, size_t col,
                                 size_t rows) {
  return rows * (schema.IsNumeric(col) ? 8 : 4);
}

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_FILE_H_
