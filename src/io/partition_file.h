// Columnar on-disk format for one partition, on top of
// common/serialize's BinaryWriter/Reader.
//
// Layout (little-endian, like every ps3 on-disk artifact):
//
//   header   u32 magic 'PS3P' · u32 version · u64 num_rows · u32 num_cols
//   segments one per column, back to back, encoded per the footer
//   footer   v2, per column: u8 type · u8 encoding · u8 bit_width ·
//            u64 offset · u64 byte_len (encoded) ·
//            u64 fnv1a64 checksum of the *encoded* segment bytes ·
//            u64 frame-of-reference base (for_delta only, else 0)
//            (v1 files carry u8 type · u64 offset · u64 byte_len ·
//            u64 checksum and are always raw; readers still open them)
//   trailer  u64 footer offset · u32 magic
//
// Per-column segment encodings, chosen at spill time by the picker:
//
//   raw       numeric: 8-byte IEEE doubles; categorical: 4-byte codes.
//             The universal fallback — numeric columns always spill raw.
//   bitpack   categorical codes packed at bit_width =
//             ceil(log2(max code + 1)) bits, LSB-first into little-
//             endian 64-bit words (runtime::BitPackScalar layout).
//   for_delta frame-of-reference + delta: base = first code, then
//             zigzag-encoded successive deltas bit-packed at the width
//             of the largest zigzag delta. Wins on sorted/clustered
//             code layouts where deltas are tiny.
//
// The picker computes each categorical segment's max code and max
// zigzag delta and takes the cheapest payload (raw / bitpack /
// for_delta); forced modes override it for benchmarking. Decoding
// dispatches through runtime::BitUnpack*/ForDeltaReconstruct* (AVX2
// with scalar reference fallback — bit-identical either way).
//
// The footer carries everything a reader needs to seek straight to a
// column segment and verify it, which is what makes column-pruned reads
// possible: ReadPartitionColumns seeks only the requested segments
// (header + footer + those segments are the only bytes that touch the
// disk) and leaves the rest of the columns empty. Readers verify magic,
// version, arity against the schema, segment bounds, encoding/width
// sanity, and the checksum of every *encoded* segment they decode
// before a single value is used; corruption surfaces as a Status error,
// never as a wrong answer. `bytes_read` counts encoded (on-disk) bytes.
#ifndef PS3_IO_PARTITION_FILE_H_
#define PS3_IO_PARTITION_FILE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_set.h"
#include "storage/table.h"

namespace ps3::io {

/// On-disk segment encoding tags (footer `encoding` byte, v2 files).
enum class SegmentEncoding : uint8_t {
  kRaw = 0,       ///< fixed-width values, memcpy decode
  kBitpack = 1,   ///< codes bit-packed at footer bit_width
  kForDelta = 2,  ///< frame-of-reference base + zigzag deltas, bit-packed
};

/// Spill-time encoding policy. kAuto lets the picker choose the
/// cheapest payload per segment; the forced modes exist for the bench's
/// encoding sweep and apply only where representable (numeric columns
/// are always raw; kBitpack falls back to raw on negative codes).
enum class EncodingMode {
  kAuto,
  kRaw,
  kBitpack,
  kForDelta,
};

const char* EncodingModeName(EncodingMode mode);
/// Parses "auto" / "raw" / "bitpack" / "for_delta".
Result<EncodingMode> ParseEncodingMode(const std::string& name);

/// What WritePartitionFile produced: the file's total byte size plus
/// the *encoded* payload size and chosen encoding of every column
/// segment — the store records these in its manifest so disk-byte
/// accounting (bytes_read expectations, bandwidth model, read-ahead
/// budget) can stay in encoded units while cache budgeting stays in
/// decoded units.
struct PartitionFileInfo {
  size_t file_bytes = 0;
  std::vector<size_t> column_bytes;
  std::vector<SegmentEncoding> encodings;
};

/// Writes rows [begin_row, end_row) of `table` as one partition file,
/// choosing a per-column segment encoding under `mode`.
Result<PartitionFileInfo> WritePartitionFile(
    const storage::Table& table, size_t begin_row, size_t end_row,
    const std::string& path, EncodingMode mode = EncodingMode::kAuto);

/// Reads and verifies the requested column segments of a partition file,
/// rehydrating them as a standalone *pruned* table: requested columns
/// hold exactly the spilled rows bit-identically, unrequested columns
/// are empty (storage::Table::FromPrunedColumns), and the table's row
/// count is the file's row count either way. `schema` is the table
/// schema the file was written under; `dicts[c]` must be the shared
/// dictionary for each categorical column c (null for numeric columns).
/// Every decoded code is validated against its dictionary, so a verified
/// table is safe for the dense group-id path. Only the header, footer,
/// trailer, and requested segments are read from disk; `bytes_read`
/// (optional) reports exactly that *encoded* byte count. Checksums are
/// verified over the encoded bytes of every segment actually read — an
/// unrequested corrupt segment is not detected here, but it is also
/// never decoded, and a later read that requests it surfaces the
/// corruption as a Status. Opens both v1 (raw-only) and v2 files.
Result<storage::Table> ReadPartitionColumns(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts,
    const storage::ColumnSet& columns, size_t* bytes_read = nullptr);

/// Test seam for the fault injector: called on each requested column's
/// *encoded* segment bytes after the read and before checksum
/// verification, so an injected bit flip exercises the real corruption
/// detection path (checksum mismatch → Status, never a wrong answer)
/// rather than bypassing it. `col` is the column index; mutate
/// `data[0, len)` in place (or not) per the fault plan.
using SegmentTamper = std::function<void(size_t col, uint8_t* data,
                                         size_t len)>;

/// ReadPartitionColumns with a tamper hook applied to every requested
/// segment's encoded bytes before its checksum is verified. A null
/// tamper is identical to the overload above.
Result<storage::Table> ReadPartitionColumns(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts,
    const storage::ColumnSet& columns, const SegmentTamper& tamper,
    size_t* bytes_read);

/// Reads and verifies every column (ReadPartitionColumns with All).
Result<storage::Table> ReadPartitionFile(
    const std::string& path, const storage::Schema& schema,
    const std::vector<std::shared_ptr<storage::Dictionary>>& dicts);

/// *Decoded* byte length of one column's segment for a partition of
/// `rows` rows — the column-granular cache-budget accounting unit (a
/// cached column costs its rehydrated size regardless of how small it
/// was on disk). Encoded (on-disk) sizes vary per segment and live in
/// the store's manifest (PartitionStore::encoded_column_bytes).
inline size_t ColumnSegmentBytes(const storage::Schema& schema, size_t col,
                                 size_t rows) {
  return rows * (schema.IsNumeric(col) ? 8 : 4);
}

}  // namespace ps3::io

#endif  // PS3_IO_PARTITION_FILE_H_
