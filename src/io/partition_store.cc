#include "io/partition_store.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/hash.h"
#include "common/serialize.h"
#include "io/partition_file.h"

namespace ps3::io {

namespace {

constexpr uint32_t kManifestMagic = 0x4D335350;  // "PS3M"
constexpr uint32_t kManifestVersion = 1;
constexpr const char* kManifestName = "manifest.ps3m";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// The one place the partition filename format lives: Spill writes and
/// PartitionPath reads through the same formatter.
std::string PartitionFilePath(const std::string& dir, size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "part-%06zu.ps3p", i);
  return JoinPath(dir, name);
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::InvalidArgument("cannot create directory '" + dir + "'");
}

}  // namespace

std::string PartitionStore::PartitionPath(size_t i) const {
  return PartitionFilePath(dir_, i);
}

Status PartitionStore::Spill(const storage::PartitionedTable& table,
                             const std::string& dir) {
  PS3_RETURN_IF_ERROR(EnsureDir(dir));
  const storage::Table& t = table.table();
  const storage::Schema& schema = t.schema();
  const size_t n_parts = table.num_partitions();

  std::vector<uint64_t> part_bytes(n_parts);
  for (size_t i = 0; i < n_parts; ++i) {
    const storage::Partition p = table.partition(i);
    auto bytes = WritePartitionFile(t, p.begin_row(), p.end_row(),
                                    PartitionFilePath(dir, i));
    if (!bytes.ok()) return bytes.status();
    part_bytes[i] = *bytes;
  }

  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(t.num_rows());
  w.PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const auto& f : schema.fields()) {
    w.PutString(f.name);
    w.PutU8(f.type == storage::ColumnType::kNumeric ? 0 : 1);
  }
  w.PutU32(static_cast<uint32_t>(n_parts));
  for (size_t i = 0; i < n_parts; ++i) {
    w.PutU64(table.partition_rows(i));
    w.PutU64(part_bytes[i]);
  }
  // Dictionaries in code order: GetOrAdd on load reassigns the identical
  // codes, so spilled code segments keep their meaning.
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) continue;
    const storage::Dictionary* dict = t.column(c).dict();
    w.PutU32(static_cast<uint32_t>(dict->size()));
    for (size_t code = 0; code < dict->size(); ++code) {
      w.PutString(dict->ValueOf(static_cast<int32_t>(code)));
    }
  }
  w.PutU64(Fnv1a64(w.buffer().data(), w.buffer().size()));
  return w.WriteFile(JoinPath(dir, kManifestName));
}

Result<std::unique_ptr<PartitionStore>> PartitionStore::Open(
    const std::string& dir, const Options& options) {
  auto reader = BinaryReader::FromFile(JoinPath(dir, kManifestName));
  if (!reader.ok()) return reader.status();
  BinaryReader& r = *reader;

  auto corrupt = [&dir](const std::string& what) {
    return Status::Internal("manifest in '" + dir + "': " + what);
  };

  if (r.size() < 8) return corrupt("shorter than its checksum");
  const uint64_t body_len = r.size() - 8;
  PS3_RETURN_IF_ERROR(r.SeekTo(body_len));
  auto stored_sum = r.GetU64();
  if (!stored_sum.ok() ||
      *stored_sum != Fnv1a64(r.data().data(), body_len)) {
    return corrupt("checksum mismatch");
  }
  PS3_RETURN_IF_ERROR(r.SeekTo(0));

  auto magic = r.GetU32();
  auto version = r.GetU32();
  if (!magic.ok() || *magic != kManifestMagic) return corrupt("bad magic");
  if (!version.ok() || *version != kManifestVersion) {
    return corrupt("unsupported version");
  }
  auto num_rows = r.GetU64();
  auto num_cols = r.GetU32();
  if (!num_rows.ok() || !num_cols.ok()) return corrupt("truncated header");

  std::vector<storage::FieldDef> fields;
  fields.reserve(*num_cols);
  for (uint32_t c = 0; c < *num_cols; ++c) {
    auto name = r.GetString();
    auto type = r.GetU8();
    if (!name.ok() || !type.ok()) return corrupt("truncated schema");
    fields.push_back({std::move(*name), *type == 0
                                            ? storage::ColumnType::kNumeric
                                            : storage::ColumnType::kCategorical});
  }
  storage::Schema schema(std::move(fields));

  auto n_parts = r.GetU32();
  if (!n_parts.ok()) return corrupt("truncated partition map");
  std::vector<size_t> part_rows(*n_parts), part_bytes(*n_parts);
  uint64_t total_rows = 0;
  for (uint32_t i = 0; i < *n_parts; ++i) {
    auto rows = r.GetU64();
    auto bytes = r.GetU64();
    if (!rows.ok() || !bytes.ok()) return corrupt("truncated partition map");
    part_rows[i] = static_cast<size_t>(*rows);
    part_bytes[i] = static_cast<size_t>(*bytes);
    total_rows += *rows;
  }
  if (total_rows != *num_rows) return corrupt("partition rows don't sum");

  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) continue;
    auto dict_size = r.GetU32();
    if (!dict_size.ok()) return corrupt("truncated dictionary");
    auto dict = std::make_shared<storage::Dictionary>();
    for (uint32_t i = 0; i < *dict_size; ++i) {
      auto value = r.GetString();
      if (!value.ok()) return corrupt("truncated dictionary");
      dict->GetOrAdd(*value);
    }
    if (dict->size() != *dict_size) return corrupt("duplicate dictionary entry");
    dicts[c] = std::move(dict);
  }

  return std::unique_ptr<PartitionStore>(new PartitionStore(
      dir, options, std::move(schema), *num_rows, std::move(part_rows),
      std::move(part_bytes), std::move(dicts)));
}

PartitionStore::PartitionStore(
    std::string dir, Options options, storage::Schema schema,
    uint64_t num_rows, std::vector<size_t> part_rows,
    std::vector<size_t> part_bytes,
    std::vector<std::shared_ptr<storage::Dictionary>> dicts)
    : dir_(std::move(dir)),
      options_(options),
      schema_(std::move(schema)),
      num_rows_(num_rows),
      part_rows_(std::move(part_rows)),
      part_bytes_(std::move(part_bytes)),
      dicts_(std::move(dicts)),
      cache_(options.cache_budget_bytes) {
  for (size_t b : part_bytes_) total_bytes_ += b;
}

Result<std::shared_ptr<const LoadedPartition>> PartitionStore::LoadFromDisk(
    size_t i) {
  if (options_.simulated_load_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.simulated_load_delay_us));
  }
  auto table = ReadPartitionFile(PartitionPath(i), schema_, dicts_);
  if (!table.ok()) return table.status();
  if (table->num_rows() != part_rows_[i]) {
    return Status::Internal("partition " + std::to_string(i) +
                            " row count disagrees with manifest");
  }
  return std::make_shared<const LoadedPartition>(std::move(*table),
                                                 part_bytes_[i]);
}

Result<storage::PinnedPartition> PartitionStore::Fetch(size_t i) {
  if (i >= num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  for (;;) {
    if (auto hit = cache_.AcquirePinned(i)) return std::move(*hit);
    {
      std::unique_lock<std::mutex> lock(load_mu_);
      if (loading_.count(i) != 0) {
        // Single flight: someone is already reading this partition; wait
        // for them and retry the cache instead of duplicating the IO.
        load_cv_.wait(lock, [&] { return loading_.count(i) == 0; });
        continue;
      }
      if (cache_.Contains(i)) continue;  // a load landed since our miss
      loading_.insert(i);
      ++store_stats_.cold_loads;
    }
    // The guard — not straight-line code — clears the loading mark, so a
    // throwing load (e.g. bad_alloc during rehydration) can't wedge the
    // waiters forever. Insertion into the cache happens *before* the
    // guard releases, so a waiter that wakes up finds the entry instead
    // of reloading it.
    LoadingGuard guard(this, i);
    auto loaded = LoadFromDisk(i);
    if (!loaded.ok()) {
      guard.set_failed();
      return loaded.status();
    }
    return cache_.InsertPinned(i, std::move(*loaded));
  }
}

Status PartitionStore::Preload(size_t i) {
  if (i >= num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  if (cache_.Contains(i)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    if (loading_.count(i) != 0) return Status::OK();  // someone's on it
    if (cache_.Contains(i)) return Status::OK();  // landed since our check
    loading_.insert(i);
    ++store_stats_.cold_loads;
  }
  LoadingGuard guard(this, i);
  auto loaded = LoadFromDisk(i);
  if (!loaded.ok()) {
    guard.set_failed();
    return loaded.status();
  }
  cache_.Insert(i, std::move(*loaded));
  return Status::OK();
}

StoreStats PartitionStore::store_stats() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  return store_stats_;
}

}  // namespace ps3::io
