#include "io/partition_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/hash.h"
#include "common/serialize.h"
#include "io/partition_file.h"

namespace ps3::io {

namespace {

constexpr uint32_t kManifestMagic = 0x4D335350;  // "PS3M"
constexpr uint32_t kManifestVersion = 2;
constexpr uint32_t kManifestVersionV1 = 1;
constexpr const char* kManifestName = "manifest.ps3m";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// The one place the partition filename format lives: Spill writes and
/// PartitionPath reads through the same formatter.
std::string PartitionFilePath(const std::string& dir, size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "part-%06zu.ps3p", i);
  return JoinPath(dir, name);
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::InvalidArgument("cannot create directory '" + dir + "'");
}

}  // namespace

std::string PartitionStore::PartitionPath(size_t i) const {
  return PartitionFilePath(dir_, i);
}

Status PartitionStore::Spill(const storage::PartitionedTable& table,
                             const std::string& dir) {
  return Spill(table, dir, SpillOptions{});
}

Status PartitionStore::Spill(const storage::PartitionedTable& table,
                             const std::string& dir,
                             const SpillOptions& spill) {
  PS3_RETURN_IF_ERROR(EnsureDir(dir));
  const storage::Table& t = table.table();
  const storage::Schema& schema = t.schema();
  const size_t n_parts = table.num_partitions();

  std::vector<uint64_t> part_bytes(n_parts);
  std::vector<std::vector<size_t>> part_col_bytes(n_parts);
  for (size_t i = 0; i < n_parts; ++i) {
    const storage::Partition p = table.partition(i);
    auto info = WritePartitionFile(t, p.begin_row(), p.end_row(),
                                   PartitionFilePath(dir, i),
                                   spill.encoding);
    if (!info.ok()) return info.status();
    part_bytes[i] = info->file_bytes;
    part_col_bytes[i] = std::move(info->column_bytes);
  }

  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(t.num_rows());
  w.PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const auto& f : schema.fields()) {
    w.PutString(f.name);
    w.PutU8(f.type == storage::ColumnType::kNumeric ? 0 : 1);
  }
  w.PutU32(static_cast<uint32_t>(n_parts));
  for (size_t i = 0; i < n_parts; ++i) {
    w.PutU64(table.partition_rows(i));
    w.PutU64(part_bytes[i]);
    // v2: per-column *encoded* segment sizes, so disk-byte accounting
    // (bandwidth model, read-ahead budget, bytes_read expectations)
    // never has to reopen partition footers.
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      w.PutU64(part_col_bytes[i][c]);
    }
  }
  // Dictionaries in code order: GetOrAdd on load reassigns the identical
  // codes, so spilled code segments keep their meaning.
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) continue;
    const storage::Dictionary* dict = t.column(c).dict();
    w.PutU32(static_cast<uint32_t>(dict->size()));
    for (size_t code = 0; code < dict->size(); ++code) {
      w.PutString(dict->ValueOf(static_cast<int32_t>(code)));
    }
  }
  w.PutU64(Fnv1a64(w.buffer().data(), w.buffer().size()));
  return w.WriteFile(JoinPath(dir, kManifestName));
}

Result<std::unique_ptr<PartitionStore>> PartitionStore::Open(
    const std::string& dir, const Options& options) {
  auto reader = BinaryReader::FromFile(JoinPath(dir, kManifestName));
  if (!reader.ok()) return reader.status();
  BinaryReader& r = *reader;

  auto corrupt = [&dir](const std::string& what) {
    return Status::Internal("manifest in '" + dir + "': " + what);
  };

  if (r.size() < 8) return corrupt("shorter than its checksum");
  const uint64_t body_len = r.size() - 8;
  PS3_RETURN_IF_ERROR(r.SeekTo(body_len));
  auto stored_sum = r.GetU64();
  if (!stored_sum.ok() ||
      *stored_sum != Fnv1a64(r.data().data(), body_len)) {
    return corrupt("checksum mismatch");
  }
  PS3_RETURN_IF_ERROR(r.SeekTo(0));

  auto magic = r.GetU32();
  auto version = r.GetU32();
  if (!magic.ok() || *magic != kManifestMagic) return corrupt("bad magic");
  if (!version.ok() || (*version != kManifestVersion &&
                        *version != kManifestVersionV1)) {
    return corrupt("unsupported version");
  }
  auto num_rows = r.GetU64();
  auto num_cols = r.GetU32();
  if (!num_rows.ok() || !num_cols.ok()) return corrupt("truncated header");

  std::vector<storage::FieldDef> fields;
  fields.reserve(*num_cols);
  for (uint32_t c = 0; c < *num_cols; ++c) {
    auto name = r.GetString();
    auto type = r.GetU8();
    if (!name.ok() || !type.ok()) return corrupt("truncated schema");
    fields.push_back({std::move(*name), *type == 0
                                            ? storage::ColumnType::kNumeric
                                            : storage::ColumnType::kCategorical});
  }
  storage::Schema schema(std::move(fields));

  auto n_parts = r.GetU32();
  if (!n_parts.ok()) return corrupt("truncated partition map");
  std::vector<size_t> part_rows(*n_parts), part_bytes(*n_parts);
  std::vector<std::vector<size_t>> part_col_bytes(*n_parts);
  uint64_t total_rows = 0;
  for (uint32_t i = 0; i < *n_parts; ++i) {
    auto rows = r.GetU64();
    auto bytes = r.GetU64();
    if (!rows.ok() || !bytes.ok()) return corrupt("truncated partition map");
    part_rows[i] = static_cast<size_t>(*rows);
    part_bytes[i] = static_cast<size_t>(*bytes);
    total_rows += *rows;
    part_col_bytes[i].resize(schema.num_columns());
    if (*version == kManifestVersionV1) {
      // v1 spills are raw-only, so encoded == decoded segment sizes.
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        part_col_bytes[i][c] =
            ColumnSegmentBytes(schema, c, part_rows[i]);
      }
    } else {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        auto col_bytes = r.GetU64();
        if (!col_bytes.ok()) return corrupt("truncated partition map");
        part_col_bytes[i][c] = static_cast<size_t>(*col_bytes);
      }
    }
  }
  if (total_rows != *num_rows) return corrupt("partition rows don't sum");

  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) continue;
    auto dict_size = r.GetU32();
    if (!dict_size.ok()) return corrupt("truncated dictionary");
    auto dict = std::make_shared<storage::Dictionary>();
    for (uint32_t i = 0; i < *dict_size; ++i) {
      auto value = r.GetString();
      if (!value.ok()) return corrupt("truncated dictionary");
      dict->GetOrAdd(*value);
    }
    if (dict->size() != *dict_size) return corrupt("duplicate dictionary entry");
    dicts[c] = std::move(dict);
  }

  return std::unique_ptr<PartitionStore>(new PartitionStore(
      dir, options, std::move(schema), *num_rows, std::move(part_rows),
      std::move(part_bytes), std::move(part_col_bytes), std::move(dicts)));
}

PartitionStore::PartitionStore(
    std::string dir, Options options, storage::Schema schema,
    uint64_t num_rows, std::vector<size_t> part_rows,
    std::vector<size_t> part_bytes,
    std::vector<std::vector<size_t>> part_col_bytes,
    std::vector<std::shared_ptr<storage::Dictionary>> dicts)
    : dir_(std::move(dir)),
      options_(options),
      schema_(std::move(schema)),
      num_rows_(num_rows),
      part_rows_(std::move(part_rows)),
      part_bytes_(std::move(part_bytes)),
      part_col_bytes_(std::move(part_col_bytes)),
      dicts_(std::move(dicts)),
      cache_(options.cache_budget_bytes) {
  for (size_t b : part_bytes_) total_bytes_ += b;
}

size_t PartitionStore::column_bytes(size_t i, size_t col) const {
  return ColumnSegmentBytes(schema_, col, part_rows_[i]);
}

size_t PartitionStore::columns_bytes(size_t i,
                                     const std::vector<size_t>& cols) const {
  size_t total = 0;
  for (size_t c : cols) total += column_bytes(i, c);
  return total;
}

size_t PartitionStore::encoded_column_bytes(size_t i, size_t col) const {
  return part_col_bytes_[i][col];
}

size_t PartitionStore::encoded_columns_bytes(
    size_t i, const std::vector<size_t>& cols) const {
  size_t total = 0;
  for (size_t c : cols) total += encoded_column_bytes(i, c);
  return total;
}

Result<std::vector<std::shared_ptr<const CachedColumn>>>
PartitionStore::LoadColumns(size_t i, const std::vector<size_t>& cols,
                            const CancelToken* cancel) {
  // Last poll before the expensive part: a query cancelled (or expired)
  // by now skips the simulated RTT and the read entirely.
  if (cancel != nullptr) {
    Status live = cancel->Check();
    if (!live.ok()) return live;
  }
  // The latency model sleeps *before* the read, like a request round
  // trip; the bandwidth term scales with the *encoded* bytes this pruned
  // pass will actually move — compressed segments cross the simulated
  // link at their on-disk size, so narrower *and denser* reads finish
  // sooner.
  size_t delay_us = options_.simulated_load_delay_us;
  if (options_.simulated_load_bandwidth_mbps > 0) {
    delay_us += encoded_columns_bytes(i, cols) * 8 /
                options_.simulated_load_bandwidth_mbps;
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  size_t bytes_read = 0;
  auto table = ReadPartitionColumns(PartitionPath(i), schema_, dicts_,
                                    storage::ColumnSet::Of(cols),
                                    &bytes_read);
  if (!table.ok()) return table.status();
  if (table->num_rows() != part_rows_[i]) {
    return Status::Internal("partition " + std::to_string(i) +
                            " row count disagrees with manifest");
  }
  std::vector<std::shared_ptr<const CachedColumn>> out;
  out.reserve(cols.size());
  for (size_t c : cols) {
    // Column copies share the decoded buffer; the discarded table was
    // just the decode vehicle. The cache is charged the *decoded* size
    // (column_bytes) — what the entry actually occupies in memory — not
    // the smaller encoded size the disk read reported.
    out.push_back(std::make_shared<const CachedColumn>(
        table->column(c), column_bytes(i, c)));
  }
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    store_stats_.segments_loaded += cols.size();
    store_stats_.bytes_loaded += bytes_read;
  }
  return out;
}

storage::PinnedPartition PartitionStore::AssemblePinned(
    size_t i, std::vector<std::shared_ptr<const CachedColumn>> data,
    std::vector<std::shared_ptr<const void>> tokens) const {
  struct AssembledPartition {
    storage::Table table;
    std::vector<std::shared_ptr<const void>> tokens;
  };
  std::vector<storage::Column> columns;
  columns.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (data[c] != nullptr) {
      columns.push_back(data[c]->column);  // shares the cached buffer
    } else {
      columns.push_back(schema_.IsNumeric(c)
                            ? storage::Column::MakeNumeric()
                            : storage::Column::MakeCategorical(dicts_[c]));
    }
  }
  const size_t rows = part_rows_[i];
  auto owner = std::make_shared<const AssembledPartition>(AssembledPartition{
      storage::Table::FromPrunedColumns(schema_, std::move(columns), rows),
      std::move(tokens)});
  storage::Partition view(&owner->table, 0, rows);
  return storage::PinnedPartition(view, std::move(owner));
}

Result<storage::PinnedPartition> PartitionStore::Fetch(
    size_t i, const storage::ColumnSet& columns, const CancelToken* cancel) {
  if (i >= num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  const std::vector<size_t> needed = columns.Resolve(schema_.num_columns());
  // data[c] = the pinned segment serving column c; tokens hold the pins
  // (one batch token per cache pass, one ColumnPin per cold-loaded
  // segment) and release them all when the assembled view is dropped.
  std::vector<std::shared_ptr<const CachedColumn>> data(
      schema_.num_columns());
  std::vector<std::shared_ptr<const void>> tokens;
  std::vector<ColumnKey> want;
  std::vector<std::shared_ptr<const CachedColumn>> got;
  for (;;) {
    // Cooperative abort between passes: the early return drops `data`
    // and `tokens`, releasing every pin this fetch already took.
    if (cancel != nullptr) {
      Status live = cancel->Check();
      if (!live.ok()) return live;
    }
    want.clear();
    for (size_t c : needed) {
      if (data[c] == nullptr) want.push_back(ColumnKey{i, c});
    }
    if (!want.empty()) {
      // One lock for the whole partition's lookups (and one batched
      // release later) instead of per-column traffic on the cache mutex.
      if (auto token = cache_.AcquireManyPinned(want, &got)) {
        tokens.push_back(std::move(token));
      }
      for (size_t k = 0; k < want.size(); ++k) {
        if (got[k] != nullptr) data[want[k].col] = std::move(got[k]);
      }
    }
    std::vector<size_t> missing;
    for (size_t c : needed) {
      if (data[c] == nullptr) missing.push_back(c);
    }
    if (missing.empty()) {
      return AssemblePinned(i, std::move(data), std::move(tokens));
    }

    std::vector<size_t> claim;
    {
      std::unique_lock<std::mutex> lock(load_mu_);
      for (size_t c : missing) {
        if (loading_.count(ColumnKey{i, c}) == 0) claim.push_back(c);
      }
      if (claim.empty()) {
        // Single flight: every missing segment is already being read by
        // someone; wait for them and retry the cache instead of
        // duplicating the IO.
        auto landed = [&] {
          for (size_t c : missing) {
            if (loading_.count(ColumnKey{i, c}) != 0) return false;
          }
          return true;
        };
        if (cancel == nullptr) {
          load_cv_.wait(lock, landed);
        } else {
          // Cancellable wait: poll the token between waits so a waiter
          // whose deadline fires mid-flight unblocks without waiting out
          // another query's (possibly much longer) load. The poll period
          // only bounds abort latency — wakeups still come from the
          // loaders' notify.
          while (!landed()) {
            Status live = cancel->Check();
            if (!live.ok()) return live;
            load_cv_.wait_for(lock, std::chrono::microseconds(200));
          }
        }
        continue;
      }
      // A load may have landed between our cache miss and this lock.
      claim.erase(std::remove_if(claim.begin(), claim.end(),
                                 [&](size_t c) {
                                   return cache_.Contains(ColumnKey{i, c});
                                 }),
                  claim.end());
      if (claim.empty()) continue;
      for (size_t c : claim) loading_.insert(ColumnKey{i, c});
      ++store_stats_.cold_loads;
    }
    // The guard — not straight-line code — clears the loading marks, so a
    // throwing load (e.g. bad_alloc during rehydration) can't wedge the
    // waiters forever. Insertion into the cache happens *before* the
    // guard releases, so a waiter that wakes up finds the entries instead
    // of reloading them.
    LoadingGuard guard(this, i, claim);
    auto loaded = LoadColumns(i, claim, cancel);
    if (!loaded.ok()) {
      // An abort is not a load error: the guard still clears the claim
      // marks and wakes waiters (who re-claim and load for themselves),
      // but the store's error counter only tracks real IO failures.
      const StatusCode code = loaded.status().code();
      if (code != StatusCode::kCancelled &&
          code != StatusCode::kDeadlineExceeded) {
        guard.set_failed();
      }
      return loaded.status();
    }
    for (size_t k = 0; k < claim.size(); ++k) {
      ColumnPin pin = cache_.InsertPinned(ColumnKey{i, claim[k]},
                                          std::move((*loaded)[k]));
      data[claim[k]] = pin;  // the pin token doubles as the data ref
      tokens.push_back(std::move(pin));
    }
    // Segments claimed by other threads (if any) are picked up by the
    // next retry of the cache.
  }
}

Status PartitionStore::Preload(size_t i, const storage::ColumnSet& columns) {
  if (i >= num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  const std::vector<size_t> needed = columns.Resolve(schema_.num_columns());
  std::vector<size_t> claim;
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    for (size_t c : needed) {
      // Segments cached or mid-load are someone else's work already.
      if (loading_.count(ColumnKey{i, c}) == 0 &&
          !cache_.Contains(ColumnKey{i, c})) {
        claim.push_back(c);
      }
    }
    if (claim.empty()) return Status::OK();
    for (size_t c : claim) loading_.insert(ColumnKey{i, c});
    ++store_stats_.cold_loads;
  }
  LoadingGuard guard(this, i, claim);
  auto loaded = LoadColumns(i, claim);
  if (!loaded.ok()) {
    guard.set_failed();
    return loaded.status();
  }
  for (size_t k = 0; k < claim.size(); ++k) {
    cache_.Insert(ColumnKey{i, claim[k]}, std::move((*loaded)[k]));
  }
  return Status::OK();
}

std::vector<size_t> PartitionStore::UnstagedColumns(
    size_t i, const std::vector<size_t>& cols) const {
  std::vector<size_t> out;
  std::lock_guard<std::mutex> lock(load_mu_);
  for (size_t c : cols) {
    if (loading_.count(ColumnKey{i, c}) == 0 &&
        !cache_.Contains(ColumnKey{i, c})) {
      out.push_back(c);
    }
  }
  return out;
}

StoreStats PartitionStore::store_stats() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  return store_stats_;
}

}  // namespace ps3::io
