#include "io/partition_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>

#include "common/hash.h"
#include "common/serialize.h"
#include "io/partition_file.h"

namespace ps3::io {

namespace {

constexpr uint32_t kManifestMagic = 0x4D335350;  // "PS3M"
constexpr uint32_t kManifestVersion = 2;
constexpr uint32_t kManifestVersionV1 = 1;
constexpr const char* kManifestName = "manifest.ps3m";

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

/// The one place the partition filename format lives: Spill writes and
/// PartitionPath reads through the same formatter.
std::string PartitionFilePath(const std::string& dir, size_t i) {
  char name[32];
  std::snprintf(name, sizeof(name), "part-%06zu.ps3p", i);
  return JoinPath(dir, name);
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::InvalidArgument("cannot create directory '" + dir + "'");
}

bool IsAbort(const Status& s) {
  return s.code() == StatusCode::kCancelled ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Sliced sleep polling *two* nullable tokens: the query's own cancel
/// and the hedge racer's local stop. Either firing aborts the sleep with
/// its Status.
Status SleepWithTokens(size_t us, const CancelToken* cancel,
                       const CancelToken* hedge_stop) {
  constexpr size_t kSliceUs = 200;
  size_t remaining = us;
  for (;;) {
    if (cancel != nullptr) {
      Status live = cancel->Check();
      if (!live.ok()) return live;
    }
    if (hedge_stop != nullptr) {
      Status live = hedge_stop->Check();
      if (!live.ok()) return live;
    }
    if (remaining == 0) return Status::OK();
    const size_t step = std::min(remaining, kSliceUs);
    std::this_thread::sleep_for(std::chrono::microseconds(step));
    remaining -= step;
  }
}

}  // namespace

std::string PartitionStore::PartitionPath(size_t i) const {
  return PartitionFilePath(dir_, i);
}

Status PartitionStore::Spill(const storage::PartitionedTable& table,
                             const std::string& dir) {
  return Spill(table, dir, SpillOptions{});
}

Status PartitionStore::Spill(const storage::PartitionedTable& table,
                             const std::string& dir,
                             const SpillOptions& spill) {
  PS3_RETURN_IF_ERROR(EnsureDir(dir));
  const storage::Table& t = table.table();
  const storage::Schema& schema = t.schema();
  const size_t n_parts = table.num_partitions();

  std::vector<uint64_t> part_bytes(n_parts);
  std::vector<std::vector<size_t>> part_col_bytes(n_parts);
  for (size_t i = 0; i < n_parts; ++i) {
    const storage::Partition p = table.partition(i);
    auto info = WritePartitionFile(t, p.begin_row(), p.end_row(),
                                   PartitionFilePath(dir, i),
                                   spill.encoding);
    if (!info.ok()) return info.status();
    part_bytes[i] = info->file_bytes;
    part_col_bytes[i] = std::move(info->column_bytes);
  }

  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutU64(t.num_rows());
  w.PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const auto& f : schema.fields()) {
    w.PutString(f.name);
    w.PutU8(f.type == storage::ColumnType::kNumeric ? 0 : 1);
  }
  w.PutU32(static_cast<uint32_t>(n_parts));
  for (size_t i = 0; i < n_parts; ++i) {
    w.PutU64(table.partition_rows(i));
    w.PutU64(part_bytes[i]);
    // v2: per-column *encoded* segment sizes, so disk-byte accounting
    // (bandwidth model, read-ahead budget, bytes_read expectations)
    // never has to reopen partition footers.
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      w.PutU64(part_col_bytes[i][c]);
    }
  }
  // Dictionaries in code order: GetOrAdd on load reassigns the identical
  // codes, so spilled code segments keep their meaning.
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) continue;
    const storage::Dictionary* dict = t.column(c).dict();
    w.PutU32(static_cast<uint32_t>(dict->size()));
    for (size_t code = 0; code < dict->size(); ++code) {
      w.PutString(dict->ValueOf(static_cast<int32_t>(code)));
    }
  }
  w.PutU64(Fnv1a64(w.buffer().data(), w.buffer().size()));
  return w.WriteFile(JoinPath(dir, kManifestName));
}

Result<std::unique_ptr<PartitionStore>> PartitionStore::Open(
    const std::string& dir, const Options& options) {
  auto reader = BinaryReader::FromFile(JoinPath(dir, kManifestName));
  if (!reader.ok()) return reader.status();
  BinaryReader& r = *reader;

  auto corrupt = [&dir](const std::string& what) {
    return Status::Internal("manifest in '" + dir + "': " + what);
  };

  if (r.size() < 8) return corrupt("shorter than its checksum");
  const uint64_t body_len = r.size() - 8;
  PS3_RETURN_IF_ERROR(r.SeekTo(body_len));
  auto stored_sum = r.GetU64();
  if (!stored_sum.ok() ||
      *stored_sum != Fnv1a64(r.data().data(), body_len)) {
    return corrupt("checksum mismatch");
  }
  PS3_RETURN_IF_ERROR(r.SeekTo(0));

  auto magic = r.GetU32();
  auto version = r.GetU32();
  if (!magic.ok() || *magic != kManifestMagic) return corrupt("bad magic");
  if (!version.ok() || (*version != kManifestVersion &&
                        *version != kManifestVersionV1)) {
    return corrupt("unsupported version");
  }
  auto num_rows = r.GetU64();
  auto num_cols = r.GetU32();
  if (!num_rows.ok() || !num_cols.ok()) return corrupt("truncated header");

  std::vector<storage::FieldDef> fields;
  fields.reserve(*num_cols);
  for (uint32_t c = 0; c < *num_cols; ++c) {
    auto name = r.GetString();
    auto type = r.GetU8();
    if (!name.ok() || !type.ok()) return corrupt("truncated schema");
    fields.push_back({std::move(*name), *type == 0
                                            ? storage::ColumnType::kNumeric
                                            : storage::ColumnType::kCategorical});
  }
  storage::Schema schema(std::move(fields));

  auto n_parts = r.GetU32();
  if (!n_parts.ok()) return corrupt("truncated partition map");
  std::vector<size_t> part_rows(*n_parts), part_bytes(*n_parts);
  std::vector<std::vector<size_t>> part_col_bytes(*n_parts);
  uint64_t total_rows = 0;
  for (uint32_t i = 0; i < *n_parts; ++i) {
    auto rows = r.GetU64();
    auto bytes = r.GetU64();
    if (!rows.ok() || !bytes.ok()) return corrupt("truncated partition map");
    part_rows[i] = static_cast<size_t>(*rows);
    part_bytes[i] = static_cast<size_t>(*bytes);
    total_rows += *rows;
    part_col_bytes[i].resize(schema.num_columns());
    if (*version == kManifestVersionV1) {
      // v1 spills are raw-only, so encoded == decoded segment sizes.
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        part_col_bytes[i][c] =
            ColumnSegmentBytes(schema, c, part_rows[i]);
      }
    } else {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        auto col_bytes = r.GetU64();
        if (!col_bytes.ok()) return corrupt("truncated partition map");
        part_col_bytes[i][c] = static_cast<size_t>(*col_bytes);
      }
    }
  }
  if (total_rows != *num_rows) return corrupt("partition rows don't sum");

  std::vector<std::shared_ptr<storage::Dictionary>> dicts(
      schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (schema.IsNumeric(c)) continue;
    auto dict_size = r.GetU32();
    if (!dict_size.ok()) return corrupt("truncated dictionary");
    auto dict = std::make_shared<storage::Dictionary>();
    for (uint32_t i = 0; i < *dict_size; ++i) {
      auto value = r.GetString();
      if (!value.ok()) return corrupt("truncated dictionary");
      dict->GetOrAdd(*value);
    }
    if (dict->size() != *dict_size) return corrupt("duplicate dictionary entry");
    dicts[c] = std::move(dict);
  }

  return std::unique_ptr<PartitionStore>(new PartitionStore(
      dir, options, std::move(schema), *num_rows, std::move(part_rows),
      std::move(part_bytes), std::move(part_col_bytes), std::move(dicts)));
}

PartitionStore::PartitionStore(
    std::string dir, Options options, storage::Schema schema,
    uint64_t num_rows, std::vector<size_t> part_rows,
    std::vector<size_t> part_bytes,
    std::vector<std::vector<size_t>> part_col_bytes,
    std::vector<std::shared_ptr<storage::Dictionary>> dicts)
    : dir_(std::move(dir)),
      options_(options),
      schema_(std::move(schema)),
      num_rows_(num_rows),
      part_rows_(std::move(part_rows)),
      part_bytes_(std::move(part_bytes)),
      part_col_bytes_(std::move(part_col_bytes)),
      dicts_(std::move(dicts)),
      cache_(options.cache_budget_bytes),
      breaker_(options.breaker) {
  for (size_t b : part_bytes_) total_bytes_ += b;
}

size_t PartitionStore::column_bytes(size_t i, size_t col) const {
  return ColumnSegmentBytes(schema_, col, part_rows_[i]);
}

size_t PartitionStore::columns_bytes(size_t i,
                                     const std::vector<size_t>& cols) const {
  size_t total = 0;
  for (size_t c : cols) total += column_bytes(i, c);
  return total;
}

size_t PartitionStore::encoded_column_bytes(size_t i, size_t col) const {
  return part_col_bytes_[i][col];
}

size_t PartitionStore::encoded_columns_bytes(
    size_t i, const std::vector<size_t>& cols) const {
  size_t total = 0;
  for (size_t c : cols) total += encoded_column_bytes(i, c);
  return total;
}

Result<PartitionStore::LoadedColumns> PartitionStore::LoadColumnsOnce(
    size_t i, const std::vector<size_t>& cols, const CancelToken* cancel,
    const CancelToken* hedge_stop) {
  const auto start = std::chrono::steady_clock::now();
  // Last poll before the expensive part: a query cancelled (or expired)
  // by now skips the simulated RTT and the read entirely.
  PS3_RETURN_IF_ERROR(SleepWithTokens(0, cancel, hedge_stop));

  // Resolve this pass's injected faults up front: one attempt per
  // column coordinate, pass-level effect. A transient draw on *any*
  // column fails the whole pass (it is one physical read); corrupt
  // draws flip a bit in exactly their column's encoded segment; spike
  // latencies take the max across columns (one link, slowest replica).
  FaultInjector* const faults = options_.faults.get();
  bool transient = false;
  int transient_attempt = 0;
  size_t spike_us = 0;
  std::vector<FaultDecision> decisions;
  if (faults != nullptr && faults->plan().AnyFaults()) {
    decisions.reserve(cols.size());
    for (size_t c : cols) {
      FaultDecision d = faults->Next(i, c);
      if (d.kind == FaultKind::kLost) {
        // Resilient callers fail fast before consuming attempts; this
        // covers an injector whose lost set raced a direct call.
        return Status::Unavailable("partition " + std::to_string(i) +
                                   " permanently lost");
      }
      if (d.kind == FaultKind::kTransient) {
        transient = true;
        transient_attempt = d.attempt;
      }
      spike_us = std::max(spike_us, d.extra_latency_us);
      decisions.push_back(d);
    }
  }

  // The latency model sleeps *before* the read, like a request round
  // trip; the bandwidth term scales with the *encoded* bytes this pruned
  // pass will actually move — compressed segments cross the simulated
  // link at their on-disk size, so narrower *and denser* reads finish
  // sooner. Injected spikes are additive: a slow replica is slow before
  // it answers (or fails). The sleep is sliced and polls both tokens so
  // neither an expired query nor a beaten hedge racer rides out the RTT.
  size_t delay_us = options_.simulated_load_delay_us + spike_us;
  if (options_.simulated_load_bandwidth_mbps > 0) {
    delay_us += encoded_columns_bytes(i, cols) * 8 /
                options_.simulated_load_bandwidth_mbps;
  }
  PS3_RETURN_IF_ERROR(SleepWithTokens(delay_us, cancel, hedge_stop));

  // A transient fault fails *after* the latency is paid — the bytes
  // moved and were dropped, which is why transient retries cost real
  // time and why the retry byte budget charges them.
  if (transient) {
    return Status::Unavailable(
        "injected transient read error (partition " + std::to_string(i) +
        ", attempt " + std::to_string(transient_attempt) + ")");
  }

  SegmentTamper tamper;
  if (!decisions.empty()) {
    // Map the pass's corrupt decisions onto the reader's tamper seam so
    // the bit flips land on encoded bytes upstream of the checksum —
    // injected corruption exercises the real detection machinery.
    const uint64_t seed = faults->plan().seed;
    tamper = [&cols, &decisions, seed, i](size_t col, uint8_t* data,
                                          size_t len) {
      for (size_t k = 0; k < cols.size(); ++k) {
        if (cols[k] == col && decisions[k].kind == FaultKind::kCorrupt) {
          FaultInjector::CorruptBytes(seed, i, col, decisions[k].attempt,
                                      data, len);
        }
      }
    };
  }

  size_t bytes_read = 0;
  auto table = ReadPartitionColumns(PartitionPath(i), schema_, dicts_,
                                    storage::ColumnSet::Of(cols), tamper,
                                    &bytes_read);
  if (!table.ok()) return table.status();
  if (table->num_rows() != part_rows_[i]) {
    return Status::Internal("partition " + std::to_string(i) +
                            " row count disagrees with manifest");
  }
  LoadedColumns out;
  out.reserve(cols.size());
  for (size_t c : cols) {
    // Column copies share the decoded buffer; the discarded table was
    // just the decode vehicle. The cache is charged the *decoded* size
    // (column_bytes) — what the entry actually occupies in memory — not
    // the smaller encoded size the disk read reported.
    out.push_back(std::make_shared<const CachedColumn>(
        table->column(c), column_bytes(i, c)));
  }
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    store_stats_.segments_loaded += cols.size();
    store_stats_.bytes_loaded += bytes_read;
  }
  RecordLoadLatency(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return out;
}

void PartitionStore::RecordLoadLatency(uint64_t us) {
  if (us == 0) us = 1;  // 0 is the "no sample" sentinel
  // Same alpha-1/4, underflow-safe EWMA form the prefetch pipeline
  // paces with (`prev - prev/4 + sample/4` stays in range however the
  // sample compares to the mean — the naive `prev + (sample - prev)/4`
  // wraps unsigned whenever a sample undershoots); the second cell
  // tracks mean absolute deviation, so mean + 3*dev approximates a p99
  // without keeping a histogram.
  const uint64_t prev = load_lat_ewma_us_.load(std::memory_order_relaxed);
  const uint64_t mean =
      prev == 0 ? us : prev - prev / 4 + std::max<uint64_t>(us / 4, 1);
  load_lat_ewma_us_.store(mean, std::memory_order_relaxed);
  const uint64_t dev_sample = us > mean ? us - mean : mean - us;
  const uint64_t prev_dev = load_dev_ewma_us_.load(std::memory_order_relaxed);
  // No 1us floor on the dev cell: 0 is a legitimate steady-state ("no
  // spread"), and the first sample may seed it with 0 — fine, because
  // unlike the mean it is never used as a "seeded yet" sentinel.
  const uint64_t dev = prev_dev == 0
                           ? dev_sample
                           : prev_dev - prev_dev / 4 + dev_sample / 4;
  load_dev_ewma_us_.store(dev, std::memory_order_relaxed);
}

size_t PartitionStore::HedgeDelayUs() const {
  if (options_.hedge.fixed_delay_us != 0) return options_.hedge.fixed_delay_us;
  const uint64_t mean = load_lat_ewma_us_.load(std::memory_order_relaxed);
  if (mean == 0) return 0;  // no sample yet: don't hedge blind
  const uint64_t dev = load_dev_ewma_us_.load(std::memory_order_relaxed);
  const uint64_t p99 = mean + 3 * dev;
  return std::clamp(static_cast<size_t>(p99), options_.hedge.min_delay_us,
                    options_.hedge.max_delay_us);
}

Result<PartitionStore::LoadedColumns> PartitionStore::LoadPass(
    size_t i, const std::vector<size_t>& cols, const CancelToken* cancel) {
  if (!options_.hedge.enabled) {
    return LoadColumnsOnce(i, cols, cancel, nullptr);
  }
  const size_t hedge_delay_us = HedgeDelayUs();
  if (hedge_delay_us == 0) {
    // No latency estimate yet (and no fixed delay): load plain and let
    // the sample prime the EWMA.
    return LoadColumnsOnce(i, cols, cancel, nullptr);
  }

  // Hedged race: primary fires immediately; if it hasn't landed within
  // the hedge delay (~p99 of recent passes), a duplicate read fires and
  // the first success cancels the other through its racer-local token.
  // Both futures are joined on every path — the loser aborts within one
  // sleep slice of its token firing, so the join is short.
  CancelToken primary_stop;
  CancelToken secondary_stop;
  auto primary = std::async(std::launch::async, [&] {
    return LoadColumnsOnce(i, cols, cancel, &primary_stop);
  });
  if (primary.wait_for(std::chrono::microseconds(hedge_delay_us)) ==
      std::future_status::ready) {
    return primary.get();
  }
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    ++store_stats_.hedged_loads;
  }
  auto secondary = std::async(std::launch::async, [&] {
    return LoadColumnsOnce(i, cols, cancel, &secondary_stop);
  });
  for (;;) {
    if (primary.wait_for(std::chrono::microseconds(200)) ==
        std::future_status::ready) {
      auto r = primary.get();
      if (r.ok()) {
        secondary_stop.Cancel();
        secondary.wait();
        return r;
      }
      // Primary failed: the hedge is now the only hope — wait it out.
      auto r2 = secondary.get();
      if (r2.ok()) {
        std::lock_guard<std::mutex> lock(load_mu_);
        ++store_stats_.hedge_wins;
        return r2;
      }
      // Both failed: surface the primary's error (the hedge's is the
      // same fault class one attempt later).
      return r;
    }
    if (secondary.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      auto r2 = secondary.get();
      if (r2.ok()) {
        primary_stop.Cancel();
        primary.wait();
        std::lock_guard<std::mutex> lock(load_mu_);
        ++store_stats_.hedge_wins;
        return r2;
      }
      // Hedge failed first; keep waiting on the primary.
      return primary.get();
    }
  }
}

Result<PartitionStore::LoadedColumns> PartitionStore::LoadColumns(
    size_t i, const std::vector<size_t>& cols, const CancelToken* cancel) {
  // Lost partitions fail fast before consuming attempts or bothering
  // the breaker: retries can't resurrect a partition the plan says is
  // gone, and a degraded table must not wedge the breaker shut for the
  // reachable ones.
  FaultInjector* const faults = options_.faults.get();
  if (faults != nullptr && faults->IsLost(i)) {
    {
      std::lock_guard<std::mutex> lock(load_mu_);
      ++store_stats_.lost_errors;
    }
    return Status::Unavailable("partition " + std::to_string(i) +
                               " permanently lost");
  }

  bool claimed_probe = false;
  if (!breaker_.Admit(&claimed_probe)) {
    return Status::Unavailable("circuit breaker open for store '" + dir_ +
                               "'");
  }
  // Every admitted load reports back to the breaker exactly once.
  // Success and failure record explicitly below and mark the guard
  // resolved; any other exit (abort return, exception) is an abort and
  // must release a claimed half-open probe slot, or the breaker would
  // reject everything forever — and probes are likeliest to abort
  // exactly when deadlines are firing.
  struct BreakerGuard {
    CircuitBreaker* breaker;
    bool claimed_probe;
    bool resolved = false;
    ~BreakerGuard() {
      if (!resolved) breaker->RecordAbort(claimed_probe);
    }
  } breaker_guard{&breaker_, claimed_probe};

  const RetryPolicy& retry = options_.retry;
  const auto start = std::chrono::steady_clock::now();
  const size_t pass_bytes = encoded_columns_bytes(i, cols);
  const int max_attempts = std::max(1, retry.max_attempts);
  bool corrupt_refetched = false;
  size_t retry_bytes = 0;
  Status last;
  for (int attempt = 1;;) {
    auto loaded = LoadPass(i, cols, cancel);
    if (loaded.ok()) {
      breaker_guard.resolved = true;
      breaker_.RecordSuccess();
      return loaded;
    }
    last = loaded.status();
    // Aborts are the caller's verdict, not the store's: no counters, no
    // breaker input, straight out.
    if (IsAbort(last)) return last;

    if (last.code() == StatusCode::kInternal) {
      // Corruption (checksum mismatch, decode validation): the bad
      // pass's buffers are already discarded — nothing reached the
      // cache — so the "evict" is implicit and exactly one immediate
      // refetch re-reads clean bytes. A second corrupt pass surfaces:
      // the file itself is bad, not the link.
      std::lock_guard<std::mutex> lock(load_mu_);
      ++store_stats_.corrupt_errors;
      if (corrupt_refetched) break;
      corrupt_refetched = true;
      ++store_stats_.retries;
      continue;
    }
    if (last.code() == StatusCode::kUnavailable) {
      {
        std::lock_guard<std::mutex> lock(load_mu_);
        ++store_stats_.transient_errors;
      }
      if (attempt >= max_attempts) break;
      // Retry budgets: wall-clock including backoffs, and extra encoded
      // bytes re-read (the first attempt is free).
      if (retry.retry_time_budget_us > 0 &&
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
                  .count() >=
              static_cast<int64_t>(retry.retry_time_budget_us)) {
        break;
      }
      if (retry.retry_byte_budget > 0 &&
          retry_bytes + pass_bytes > retry.retry_byte_budget) {
        break;
      }
      retry_bytes += pass_bytes;
      const size_t backoff_us = BackoffUs(
          retry, attempt, HashCombine(static_cast<uint64_t>(i),
                                      cols.empty() ? 0 : cols.front()));
      Status slept = SleepWithCancel(backoff_us, cancel);
      if (!slept.ok()) return slept;  // abort mid-backoff: uncounted
      {
        std::lock_guard<std::mutex> lock(load_mu_);
        ++store_stats_.retries;
      }
      ++attempt;
      continue;
    }
    // Anything else (missing file, out-of-range, ...) is not retryable.
    break;
  }
  breaker_guard.resolved = true;
  breaker_.RecordFailure();
  return last;
}

storage::PinnedPartition PartitionStore::AssemblePinned(
    size_t i, std::vector<std::shared_ptr<const CachedColumn>> data,
    std::vector<std::shared_ptr<const void>> tokens) const {
  struct AssembledPartition {
    storage::Table table;
    std::vector<std::shared_ptr<const void>> tokens;
  };
  std::vector<storage::Column> columns;
  columns.reserve(schema_.num_columns());
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (data[c] != nullptr) {
      columns.push_back(data[c]->column);  // shares the cached buffer
    } else {
      columns.push_back(schema_.IsNumeric(c)
                            ? storage::Column::MakeNumeric()
                            : storage::Column::MakeCategorical(dicts_[c]));
    }
  }
  const size_t rows = part_rows_[i];
  auto owner = std::make_shared<const AssembledPartition>(AssembledPartition{
      storage::Table::FromPrunedColumns(schema_, std::move(columns), rows),
      std::move(tokens)});
  storage::Partition view(&owner->table, 0, rows);
  return storage::PinnedPartition(view, std::move(owner));
}

Result<storage::PinnedPartition> PartitionStore::Fetch(
    size_t i, const storage::ColumnSet& columns, const CancelToken* cancel) {
  if (i >= num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  const std::vector<size_t> needed = columns.Resolve(schema_.num_columns());
  // data[c] = the pinned segment serving column c; tokens hold the pins
  // (one batch token per cache pass, one ColumnPin per cold-loaded
  // segment) and release them all when the assembled view is dropped.
  std::vector<std::shared_ptr<const CachedColumn>> data(
      schema_.num_columns());
  std::vector<std::shared_ptr<const void>> tokens;
  std::vector<ColumnKey> want;
  std::vector<std::shared_ptr<const CachedColumn>> got;
  for (;;) {
    // Cooperative abort between passes: the early return drops `data`
    // and `tokens`, releasing every pin this fetch already took.
    if (cancel != nullptr) {
      Status live = cancel->Check();
      if (!live.ok()) return live;
    }
    want.clear();
    for (size_t c : needed) {
      if (data[c] == nullptr) want.push_back(ColumnKey{i, c});
    }
    if (!want.empty()) {
      // One lock for the whole partition's lookups (and one batched
      // release later) instead of per-column traffic on the cache mutex.
      if (auto token = cache_.AcquireManyPinned(want, &got)) {
        tokens.push_back(std::move(token));
      }
      for (size_t k = 0; k < want.size(); ++k) {
        if (got[k] != nullptr) data[want[k].col] = std::move(got[k]);
      }
    }
    std::vector<size_t> missing;
    for (size_t c : needed) {
      if (data[c] == nullptr) missing.push_back(c);
    }
    if (missing.empty()) {
      return AssemblePinned(i, std::move(data), std::move(tokens));
    }

    std::vector<size_t> claim;
    {
      std::unique_lock<std::mutex> lock(load_mu_);
      for (size_t c : missing) {
        if (loading_.count(ColumnKey{i, c}) == 0) claim.push_back(c);
      }
      if (claim.empty()) {
        // Single flight: every missing segment is already being read by
        // someone; wait for them and retry the cache instead of
        // duplicating the IO. The wait is bounded: a loader that died
        // without unwinding (so its guard never cleared the marks) used
        // to wedge waiters forever — now a timed-out waiter breaks the
        // stale claim and re-claims the load on the next pass. If the
        // original loader was merely slow and finishes anyway, its
        // duplicate insert is benign (the cache keeps the existing
        // entry) and its guard's mark-erase just wakes waiters early.
        auto landed = [&] {
          for (size_t c : missing) {
            if (loading_.count(ColumnKey{i, c}) != 0) return false;
          }
          return true;
        };
        const size_t wait_cap_us = options_.single_flight_wait_us;
        const auto wait_start = std::chrono::steady_clock::now();
        while (!landed()) {
          if (cancel != nullptr) {
            // Poll the token between waits so a waiter whose deadline
            // fires mid-flight unblocks without waiting out another
            // query's (possibly much longer) load. The poll period only
            // bounds abort latency — wakeups still come from the
            // loaders' notify.
            Status live = cancel->Check();
            if (!live.ok()) return live;
          }
          if (wait_cap_us > 0 &&
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                      .count() >= static_cast<int64_t>(wait_cap_us)) {
            ++store_stats_.single_flight_timeouts;
            for (size_t c : missing) loading_.erase(ColumnKey{i, c});
            break;
          }
          load_cv_.wait_for(lock, std::chrono::microseconds(200));
        }
        continue;
      }
      // A load may have landed between our cache miss and this lock.
      claim.erase(std::remove_if(claim.begin(), claim.end(),
                                 [&](size_t c) {
                                   return cache_.Contains(ColumnKey{i, c});
                                 }),
                  claim.end());
      if (claim.empty()) continue;
      for (size_t c : claim) loading_.insert(ColumnKey{i, c});
      ++store_stats_.cold_loads;
    }
    // The guard — not straight-line code — clears the loading marks, so a
    // throwing load (e.g. bad_alloc during rehydration) can't wedge the
    // waiters forever. Insertion into the cache happens *before* the
    // guard releases, so a waiter that wakes up finds the entries instead
    // of reloading them.
    LoadingGuard guard(this, i, claim);
    auto loaded = LoadColumns(i, claim, cancel);
    if (!loaded.ok()) {
      // An abort is not a load error: the guard still clears the claim
      // marks and wakes waiters (who re-claim and load for themselves),
      // but the store's error counter only tracks real IO failures.
      const StatusCode code = loaded.status().code();
      if (code != StatusCode::kCancelled &&
          code != StatusCode::kDeadlineExceeded) {
        guard.set_failed();
      }
      return loaded.status();
    }
    for (size_t k = 0; k < claim.size(); ++k) {
      ColumnPin pin = cache_.InsertPinned(ColumnKey{i, claim[k]},
                                          std::move((*loaded)[k]));
      data[claim[k]] = pin;  // the pin token doubles as the data ref
      tokens.push_back(std::move(pin));
    }
    // Segments claimed by other threads (if any) are picked up by the
    // next retry of the cache.
  }
}

Status PartitionStore::Preload(size_t i, const storage::ColumnSet& columns) {
  if (i >= num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  const std::vector<size_t> needed = columns.Resolve(schema_.num_columns());
  std::vector<size_t> claim;
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    for (size_t c : needed) {
      // Segments cached or mid-load are someone else's work already.
      if (loading_.count(ColumnKey{i, c}) == 0 &&
          !cache_.Contains(ColumnKey{i, c})) {
        claim.push_back(c);
      }
    }
    if (claim.empty()) return Status::OK();
    for (size_t c : claim) loading_.insert(ColumnKey{i, c});
    ++store_stats_.cold_loads;
  }
  LoadingGuard guard(this, i, claim);
  auto loaded = LoadColumns(i, claim);
  if (!loaded.ok()) {
    guard.set_failed();
    return loaded.status();
  }
  for (size_t k = 0; k < claim.size(); ++k) {
    cache_.Insert(ColumnKey{i, claim[k]}, std::move((*loaded)[k]));
  }
  return Status::OK();
}

std::vector<size_t> PartitionStore::UnstagedColumns(
    size_t i, const std::vector<size_t>& cols) const {
  std::vector<size_t> out;
  std::lock_guard<std::mutex> lock(load_mu_);
  for (size_t c : cols) {
    if (loading_.count(ColumnKey{i, c}) == 0 &&
        !cache_.Contains(ColumnKey{i, c})) {
      out.push_back(c);
    }
  }
  return out;
}

StoreStats PartitionStore::store_stats() const {
  StoreStats out;
  {
    std::lock_guard<std::mutex> lock(load_mu_);
    out = store_stats_;
  }
  // The breaker keeps its own counters (it has its own lock discipline);
  // fold them into the snapshot so callers see one stats surface.
  out.breaker_opens = breaker_.opens();
  out.breaker_open_rejects = breaker_.open_rejects();
  return out;
}

std::vector<size_t> PartitionStore::LostPartitions() const {
  std::vector<size_t> out;
  if (options_.faults != nullptr) {
    const std::set<size_t>& lost = options_.faults->lost_partitions();
    out.assign(lost.begin(), lost.end());
  }
  return out;
}

}  // namespace ps3::io
