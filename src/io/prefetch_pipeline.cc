#include "io/prefetch_pipeline.h"

#include <algorithm>
#include <utility>

#include "runtime/worker_pool.h"

namespace ps3::io {

PrefetchPipeline::PrefetchPipeline(PartitionStore* store,
                                   runtime::QueryScheduler* scheduler)
    : PrefetchPipeline(store, scheduler, Options()) {}

namespace {

size_t BatchCapBytes(const PrefetchPipeline::Options& options) {
  const double f =
      std::min(1.0, std::max(0.0, options.interactive_reserve_fraction));
  return static_cast<size_t>(
      static_cast<double>(options.readahead_bytes) * (1.0 - f));
}

}  // namespace

PrefetchPipeline::PrefetchPipeline(PartitionStore* store,
                                   runtime::QueryScheduler* scheduler,
                                   Options options)
    : store_(store),
      scheduler_(scheduler),
      options_(options),
      batch_cap_bytes_(BatchCapBytes(options)) {}

PrefetchPipeline::~PrefetchPipeline() { Drain(); }

void PrefetchPipeline::UpdateEwma(std::atomic<uint64_t>* cell,
                                  uint64_t sample_us) {
  // 0 means "no sample yet" in the cells, so a sub-microsecond sample
  // (back-to-back shard entries on a hot scan) clamps to 1us — exactly
  // the regime where the distance must be able to widen, which a
  // never-seeded scan EWMA would keep pinned at 1.
  sample_us = std::max<uint64_t>(sample_us, 1);
  // alpha = 1/4: smooth enough to ignore one stalled shard, fast enough
  // to adapt within a few shards of a workload shift. Integer rounding
  // floors the decayed EWMA a few microseconds above tiny samples —
  // negligible at the millisecond scales being paced.
  const uint64_t prev = cell->load(std::memory_order_relaxed);
  const uint64_t next =
      prev == 0 ? sample_us
                : prev - prev / 4 + std::max<uint64_t>(sample_us / 4, 1);
  cell->store(next, std::memory_order_relaxed);
}

size_t PrefetchPipeline::AheadDistance() const {
  const uint64_t scan = scan_ewma_us_.load(std::memory_order_relaxed);
  const uint64_t load = load_ewma_us_.load(std::memory_order_relaxed);
  // Until both latencies have samples, stay at the conservative fixed
  // next-shard lookahead.
  if (scan == 0 || load == 0) return 1;
  // Loads lagging scans by a factor k need ~k shards in flight to keep
  // the scan fed; ceil so a 1.2x lag still widens to 2.
  const uint64_t want = (load + scan - 1) / scan;
  return std::max<size_t>(
      1, std::min<size_t>(options_.max_ahead_shards,
                          static_cast<size_t>(want)));
}

bool PrefetchPipeline::TryReserve(size_t bytes, QueryClass query_class) {
  std::lock_guard<std::mutex> lock(budget_mu_);
  // The total pool bounds everyone; batch additionally stops at its
  // share, leaving the reserve to interactive staging (which may also
  // soak up whatever batch left idle).
  if (inflight_batch_ + inflight_interactive_ + bytes >
      options_.readahead_bytes) {
    return false;
  }
  if (query_class == QueryClass::kBatch) {
    if (inflight_batch_ + bytes > batch_cap_bytes_) return false;
    inflight_batch_ += bytes;
  } else {
    inflight_interactive_ += bytes;
  }
  return true;
}

void PrefetchPipeline::Release(size_t bytes, QueryClass query_class) {
  std::lock_guard<std::mutex> lock(budget_mu_);
  if (query_class == QueryClass::kBatch) {
    inflight_batch_ -= bytes;
  } else {
    inflight_interactive_ -= bytes;
  }
}

void PrefetchPipeline::StageAhead(
    const std::vector<std::vector<size_t>>& shards, size_t current,
    const storage::ColumnSet& columns, QueryClass query_class) {
  {
    std::lock_guard<std::mutex> lock(pace_mu_);
    const Clock::time_point now = Clock::now();
    if (has_last_stage_) {
      const uint64_t interval_us =
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - last_stage_)
                  .count());
      // Concurrent scans sharing one pipeline shorten the apparent
      // interval, which only widens the distance — and the byte budget
      // still bounds the total, so the bias is safe.
      UpdateEwma(&scan_ewma_us_, interval_us);
    }
    last_stage_ = now;
    has_last_stage_ = true;
  }
  const size_t ahead = AheadDistance();
  std::vector<size_t> parts;
  for (size_t d = 1; d <= ahead && current + d < shards.size(); ++d) {
    const std::vector<size_t>& shard = shards[current + d];
    parts.insert(parts.end(), shard.begin(), shard.end());
  }
  if (!parts.empty()) Stage(std::move(parts), columns, query_class);
}

void PrefetchPipeline::Stage(std::vector<size_t> parts,
                             const storage::ColumnSet& columns,
                             QueryClass query_class) {
  // Budget admission up front, so the shared pool is charged before the
  // task is queued (otherwise N queries could all stage "within budget"
  // simultaneously). Admission is column-granular: only a partition's
  // *missing hinted segments* charge the pool.
  struct Load {
    size_t part;
    size_t bytes;  ///< *encoded* bytes reserved against the read-ahead pool
    /// Exactly the segments whose bytes were reserved: the task preloads
    /// these, not the whole hint — re-deriving the missing set at load
    /// time could pull in segments evicted since admission and overrun
    /// the budget the reservation accounted for.
    std::vector<size_t> cols;
  };
  std::vector<Load> to_load;
  to_load.reserve(parts.size());
  // Two admission tests in two different units, because compression
  // split them: the shared read-ahead pool meters *encoded* bytes (what
  // the disk/link actually moves — the thing read-ahead IO pressure is
  // made of), while the cache-retention bound meters *decoded* bytes
  // (what a staged segment occupies once it lands — staging past the
  // cache budget just evicts read-ahead before the scan reaches it).
  // Charging the cache bound at encoded size would let compressed
  // segments overcommit the cache by their compression ratio. Headroom
  // is sampled once per Stage call; advisory, like everything here.
  const size_t cache_budget = store_->cache().budget_bytes();
  const size_t cached = store_->cache().bytes_cached();
  const size_t headroom = cache_budget > cached ? cache_budget - cached : 0;
  size_t decoded_admitted = 0;
  const std::vector<size_t> hinted =
      columns.Resolve(store_->schema().num_columns());
  for (size_t p : parts) {
    // Segments cached *or already mid-load* are someone else's bytes:
    // with a widened stage-ahead distance, successive overlapping
    // windows would otherwise re-reserve budget for the same in-flight
    // segments and starve genuinely new shards into skipped_budget.
    std::vector<size_t> missing = store_->UnstagedColumns(p, hinted);
    if (missing.empty()) {
      skipped_cached_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const size_t decoded = store_->columns_bytes(p, missing);
    if (decoded_admitted + decoded > headroom) {
      skipped_budget_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const size_t bytes = store_->encoded_columns_bytes(p, missing);
    if (!TryReserve(bytes, query_class)) {
      skipped_budget_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    decoded_admitted += decoded;
    to_load.push_back(Load{p, bytes, std::move(missing)});
  }
  if (to_load.empty()) return;
  staged_.fetch_add(to_load.size(), std::memory_order_relaxed);

  // Total reservation for this batch, released in one piece when the
  // whole pass lands (success, load error, or failed dispatch alike).
  // Per-load release would return budget marginally sooner, but a single
  // batch-scoped release makes "no reservation can outlive its task"
  // auditable on every path — the leak class the budget tests pin.
  size_t reserved_bytes = 0;
  for (const Load& l : to_load) reserved_bytes += l.bytes;

  // One scheduler task per staged batch; the task fans the loads out
  // across worker-pool lanes, releases the budget when the pass lands,
  // and feeds the load-latency EWMA that drives the adaptive distance.
  auto task = [this, loads = std::move(to_load), reserved_bytes,
               query_class] {
    PartitionStore* store = store_;
    const Clock::time_point start = Clock::now();
    try {
      scheduler_->pool().ParallelFor(
          loads.size(),
          [this, store, &loads](size_t k) {
            const Load& load = loads[k];
            // Prefetch is advisory, so nothing may escape: a thrown load
            // (bad_alloc during rehydration) would fail the whole pool
            // job and drain sibling items without running them.
            try {
              Status s = store->Preload(
                  load.part, storage::ColumnSet::Of(load.cols));
              if (!s.ok()) {
                load_errors_.fetch_add(1, std::memory_order_relaxed);
              }
            } catch (...) {
              load_errors_.fetch_add(1, std::memory_order_relaxed);
            }
          },
          options_.load_lanes);
    } catch (...) {
      // ParallelFor itself failing (job allocation) is still advisory —
      // the demand path loads what staging didn't — but the reservation
      // must not leak with it.
      load_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    Release(reserved_bytes, query_class);
    // The sample is the *whole pass's* wall time, deliberately not
    // divided by the number of shards it spanned: loads fan out across
    // the pool lanes, so a batch lands in ~one store RTT when it fits
    // the lanes — the pass time measures how long a prefetch batch takes
    // to arrive, which against the per-shard scan interval is exactly
    // the pipeline depth (shards in flight) needed to keep the scan fed.
    // Lane-saturated batches take proportionally longer and ask for
    // deeper read-ahead; max_ahead_shards and the cache-headroom bound
    // cap what that can cost.
    UpdateEwma(&load_ewma_us_,
               static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - start)
                       .count()));
  };
  std::future<void> fut;
  try {
    fut = scheduler_->Defer(std::move(task));
  } catch (...) {
    // Dispatch failed (allocation): the task will never run, so return
    // its reservation here — otherwise the bytes leak from the pool
    // forever. Advisory, like every staging failure.
    Release(reserved_bytes, query_class);
    load_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Prune finished futures so a long query stream doesn't accumulate one
  // handle per staged shard forever.
  size_t live = 0;
  for (auto& f : inflight_) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      inflight_[live++] = std::move(f);
    }
  }
  inflight_.resize(live);
  inflight_.push_back(std::move(fut));
}

void PrefetchPipeline::Drain() {
  std::vector<std::future<void>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(inflight_);
  }
  for (auto& f : pending) f.wait();
}

PrefetchPipeline::PrefetchStats PrefetchPipeline::stats() const {
  PrefetchStats s;
  s.staged = staged_.load(std::memory_order_relaxed);
  s.skipped_cached = skipped_cached_.load(std::memory_order_relaxed);
  s.skipped_budget = skipped_budget_.load(std::memory_order_relaxed);
  s.load_errors = load_errors_.load(std::memory_order_relaxed);
  s.ahead_shards = AheadDistance();
  {
    std::lock_guard<std::mutex> lock(budget_mu_);
    s.inflight_batch_bytes = inflight_batch_;
    s.inflight_interactive_bytes = inflight_interactive_;
  }
  s.inflight_bytes = s.inflight_batch_bytes + s.inflight_interactive_bytes;
  return s;
}

}  // namespace ps3::io
