#include "io/prefetch_pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "runtime/worker_pool.h"

namespace ps3::io {

PrefetchPipeline::PrefetchPipeline(PartitionStore* store,
                                   runtime::QueryScheduler* scheduler)
    : PrefetchPipeline(store, scheduler, Options()) {}

PrefetchPipeline::PrefetchPipeline(PartitionStore* store,
                                   runtime::QueryScheduler* scheduler,
                                   Options options)
    : store_(store), scheduler_(scheduler), options_(options) {}

PrefetchPipeline::~PrefetchPipeline() { Drain(); }

void PrefetchPipeline::Stage(std::vector<size_t> parts) {
  // Budget admission up front, so the shared pool is charged before the
  // task is queued (otherwise N queries could all stage "within budget"
  // simultaneously).
  std::vector<size_t> to_load;
  to_load.reserve(parts.size());
  // Effective budget: the configured read-ahead cap, further bounded by
  // what the cache can actually *retain* — staging past the cache budget
  // just evicts read-ahead before the scan reaches it (wasted loads that
  // still occupy lanes). Headroom is sampled once per Stage call;
  // advisory, like everything here.
  const size_t cache_budget = store_->cache().budget_bytes();
  const size_t cached = store_->cache().bytes_cached();
  const size_t headroom = cache_budget > cached ? cache_budget - cached : 0;
  const size_t budget = std::min(options_.readahead_bytes, headroom);
  for (size_t p : parts) {
    if (store_->cache().Contains(p)) {
      skipped_cached_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const size_t bytes = store_->partition_bytes(p);
    size_t cur = inflight_bytes_.load(std::memory_order_relaxed);
    bool admitted = false;
    while (cur + bytes <= budget) {
      if (inflight_bytes_.compare_exchange_weak(cur, cur + bytes,
                                                std::memory_order_relaxed)) {
        admitted = true;
        break;
      }
    }
    if (!admitted) {
      skipped_budget_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    to_load.push_back(p);
  }
  if (to_load.empty()) return;
  staged_.fetch_add(to_load.size(), std::memory_order_relaxed);

  // One scheduler task per staged shard; the task fans the loads out
  // across worker-pool lanes and releases the budget as each insert
  // lands in the cache.
  auto task = [this, parts = std::move(to_load)] {
    PartitionStore* store = store_;
    scheduler_->pool().ParallelFor(
        parts.size(),
        [this, store, &parts](size_t k) {
          const size_t p = parts[k];
          // Prefetch is advisory, so nothing may escape: a thrown load
          // (bad_alloc during rehydration) would fail the whole pool job
          // and drain sibling items *without running them*, leaking
          // their budget reservations permanently.
          try {
            Status s = store->Preload(p);
            if (!s.ok()) {
              load_errors_.fetch_add(1, std::memory_order_relaxed);
            }
          } catch (...) {
            load_errors_.fetch_add(1, std::memory_order_relaxed);
          }
          inflight_bytes_.fetch_sub(store->partition_bytes(p),
                                    std::memory_order_relaxed);
        },
        options_.load_lanes);
  };
  std::future<void> fut = scheduler_->Defer(std::move(task));
  std::lock_guard<std::mutex> lock(mu_);
  // Prune finished futures so a long query stream doesn't accumulate one
  // handle per staged shard forever.
  size_t live = 0;
  for (auto& f : inflight_) {
    if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      inflight_[live++] = std::move(f);
    }
  }
  inflight_.resize(live);
  inflight_.push_back(std::move(fut));
}

void PrefetchPipeline::Drain() {
  std::vector<std::future<void>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(inflight_);
  }
  for (auto& f : pending) f.wait();
}

PrefetchPipeline::PrefetchStats PrefetchPipeline::stats() const {
  PrefetchStats s;
  s.staged = staged_.load(std::memory_order_relaxed);
  s.skipped_cached = skipped_cached_.load(std::memory_order_relaxed);
  s.skipped_budget = skipped_budget_.load(std::memory_order_relaxed);
  s.load_errors = load_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ps3::io
