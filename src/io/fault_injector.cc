#include "io/fault_injector.h"

#include "common/hash.h"

namespace ps3::io {

namespace {

// Distinct salts per fault class keep the per-coordinate draws
// independent: a coordinate unlucky on the transient draw is no more or
// less likely to be unlucky on the corrupt draw.
constexpr uint64_t kTransientSalt = 0x7472616E7369656EULL;  // "transien"
constexpr uint64_t kCorruptSalt = 0x636F727275707421ULL;    // "corrupt!"
constexpr uint64_t kLatencySalt = 0x6C6174656E637921ULL;    // "latency!"
constexpr uint64_t kBitSalt = 0x626974666C697021ULL;        // "bitflip!"

/// Uniform [0, 1) draw for one (seed, salt, partition, column, attempt)
/// coordinate — a pure hash, so replays are exact.
double Draw(uint64_t seed, uint64_t salt, size_t partition, size_t column,
            int attempt) {
  uint64_t h = Mix64(seed ^ salt);
  h = HashCombine(h, Mix64(static_cast<uint64_t>(partition)));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(column) + 1));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(attempt) + 1));
  return HashToUnit(Mix64(h));
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kLost:
      return "lost";
  }
  return "none";
}

FaultDecision FaultInjector::Decide(size_t partition, size_t column,
                                    int attempt) const {
  FaultDecision decision;
  decision.attempt = attempt;

  // Lost partitions dominate everything: no rate or rule can make an
  // unreachable partition readable.
  if (plan_.lost_partitions.count(partition) != 0) {
    decision.kind = FaultKind::kLost;
    return decision;
  }

  // Scripted rules next, first match wins.
  for (const FaultRule& rule : plan_.rules) {
    if (rule.partition != partition) continue;
    if (rule.column != FaultRule::kAnyColumn && rule.column != column) {
      continue;
    }
    if (attempt < rule.attempt_begin || attempt >= rule.attempt_end) {
      continue;
    }
    decision.kind = rule.kind;
    if (rule.kind == FaultKind::kLatency) {
      decision.extra_latency_us =
          rule.latency_us != 0 ? rule.latency_us : plan_.latency_spike_us;
    }
    return decision;
  }

  // Hashed rates. Latency is resolved independently and is additive: a
  // spiked read can still fail transient (slow *and* broken replicas are
  // the common cloud-store case the hedging battery needs).
  if (plan_.latency_rate > 0.0 &&
      Draw(plan_.seed, kLatencySalt, partition, column, attempt) <
          plan_.latency_rate) {
    decision.kind = FaultKind::kLatency;
    decision.extra_latency_us = plan_.latency_spike_us;
  }
  if (plan_.transient_rate > 0.0 &&
      Draw(plan_.seed, kTransientSalt, partition, column, attempt) <
          plan_.transient_rate) {
    decision.kind = FaultKind::kTransient;
    return decision;
  }
  if (plan_.corrupt_rate > 0.0 &&
      Draw(plan_.seed, kCorruptSalt, partition, column, attempt) <
          plan_.corrupt_rate) {
    decision.kind = FaultKind::kCorrupt;
  }
  return decision;
}

FaultDecision FaultInjector::Next(size_t partition, size_t column) {
  int attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[{partition, column}]++;
  }
  return Decide(partition, column, attempt);
}

FaultDecision FaultInjector::Peek(size_t partition, size_t column,
                                  int attempt) const {
  return Decide(partition, column, attempt);
}

void FaultInjector::ResetAttempts() {
  std::lock_guard<std::mutex> lock(mu_);
  attempts_.clear();
}

void FaultInjector::CorruptBytes(uint64_t seed, size_t partition,
                                 size_t column, int attempt, uint8_t* data,
                                 size_t len) {
  if (len == 0) return;
  uint64_t h = Mix64(seed ^ kBitSalt);
  h = HashCombine(h, Mix64(static_cast<uint64_t>(partition)));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(column) + 1));
  h = HashCombine(h, Mix64(static_cast<uint64_t>(attempt) + 1));
  h = Mix64(h);
  data[(h >> 3) % len] ^= static_cast<uint8_t>(1u << (h & 7));
}

}  // namespace ps3::io
