// ColdShardedSource: a spilled table presented to the evaluator as a
// shard-structured PartitionSource, so the multi-shard fan-out in
// query/evaluator.cc runs identically whether a partition is resident,
// cached, or cold on disk.
//
// Shard structure is computed with storage::AssignShards — the *same*
// assignment the resident ShardedTable uses — so global partition
// numbering, per-shard lists, and the ordered merge are all identical to
// the resident scan, which is what keeps cold answers bit-exact.
//
// The scan's ColumnSet hint flows straight through: Acquire fetches only
// the referenced column segments (partial residency upgrades fetch just
// the missing ones), and when a PrefetchPipeline is attached,
// WillScanShard(s, cols) stages upcoming shards' hinted segments
// asynchronously at the pipeline's adaptive stage-ahead distance; with
// several queries in flight the pipeline's shared read-ahead budget
// arbitrates between them.
#ifndef PS3_IO_COLD_SOURCE_H_
#define PS3_IO_COLD_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "io/partition_store.h"
#include "io/prefetch_pipeline.h"
#include "storage/column_set.h"
#include "storage/partition_source.h"

namespace ps3::io {

class ColdShardedSource : public storage::PartitionSource {
 public:
  /// Borrows `store` (and `prefetch`, which may be null for no read-ahead);
  /// both must outlive the source and any scan over it.
  ColdShardedSource(PartitionStore* store, size_t num_shards,
                    storage::ShardAssignment assignment =
                        storage::ShardAssignment::kRange,
                    PrefetchPipeline* prefetch = nullptr)
      : store_(store),
        prefetch_(prefetch),
        shards_(storage::AssignShards(store->num_partitions(), num_shards,
                                      assignment)) {}

  const storage::Schema& schema() const override { return store_->schema(); }
  size_t num_partitions() const override { return store_->num_partitions(); }
  size_t num_shards() const override { return shards_.size(); }
  const std::vector<size_t>& shard(size_t s) const override {
    return shards_[s];
  }

  Result<storage::PinnedPartition> Acquire(
      size_t global_index,
      const storage::ColumnSet& columns) const override {
    return store_->Fetch(global_index, columns);
  }
  /// The control-aware scan path: the token lets a cold load (and its
  /// single-flight wait) abort with the token's Status instead of riding
  /// out the simulated IO for a dead query.
  Result<storage::PinnedPartition> Acquire(
      size_t global_index, const storage::ColumnSet& columns,
      const storage::ScanControl& control) const override {
    return store_->Fetch(global_index, columns, control.cancel);
  }
  using storage::PartitionSource::Acquire;

  void WillScanShard(size_t s,
                     const storage::ColumnSet& columns) const override {
    StageHint(shards_, s, columns);
  }
  void WillScanShard(size_t s, const storage::ColumnSet& columns,
                     const storage::ScanControl& control) const override {
    StageHint(shards_, s, columns, control);
  }
  using storage::PartitionSource::WillScanShard;

  /// Stages read-ahead along an explicit shard plan — this source's own
  /// plan for a full scan, or a filtered one handed down by a
  /// storage::PickedSource view, in which case pruned partitions are
  /// absent from the plan and never staged.
  void StageHint(const std::vector<std::vector<size_t>>& plan, size_t current,
                 const storage::ColumnSet& columns) const override {
    if (prefetch_ != nullptr) {
      prefetch_->StageAhead(plan, current, columns, QueryClass::kBatch);
    }
  }
  /// Class-aware plan hint: the scan's class decides which share of the
  /// pipeline's read-ahead budget this staging draws from.
  void StageHint(const std::vector<std::vector<size_t>>& plan, size_t current,
                 const storage::ColumnSet& columns,
                 const storage::ScanControl& control) const override {
    if (prefetch_ != nullptr) {
      prefetch_->StageAhead(plan, current, columns, control.query_class);
    }
  }

  /// Encoded on-disk footprint of the given (partition, column) set,
  /// straight from the spill manifest — deterministic regardless of what
  /// is currently cached.
  uint64_t ColdScanBytes(const std::vector<size_t>& partitions,
                         const storage::ColumnSet& columns) const override {
    const std::vector<size_t> cols =
        columns.Resolve(store_->schema().num_columns());
    uint64_t total = 0;
    for (size_t p : partitions) {
      total += store_->encoded_columns_bytes(p, cols);
    }
    return total;
  }

  /// Partitions the store's fault plan lists as permanently lost — the
  /// set the scheduler's degraded serving plans around.
  std::vector<size_t> UnreachablePartitions() const override {
    return store_->LostPartitions();
  }

  PartitionStore& store() const { return *store_; }

 private:
  PartitionStore* store_;
  PrefetchPipeline* prefetch_;
  std::vector<std::vector<size_t>> shards_;
};

}  // namespace ps3::io

#endif  // PS3_IO_COLD_SOURCE_H_
