#include "io/partition_cache.h"

#include <algorithm>
#include <cassert>

namespace ps3::io {

storage::PinnedPartition PartitionCache::MakePinned(
    size_t part, std::shared_ptr<const LoadedPartition> data) {
  // The token owns a reference to the data (so the view outlives even a
  // pathological eviction) and releases the pin on destruction. The
  // deleter locks mu_ when it runs — and the standard runs it even when
  // the control-block allocation throws — so this must only be called
  // with mu_ *released*: the entry is already pinned, which keeps it
  // alive across the unlock.
  PartitionCache* self = this;
  storage::Partition view = data->view();
  std::shared_ptr<const void> token(
      static_cast<const void*>(data.get()),
      [self, part, data = std::move(data)](const void*) {
        self->Release(part);
      });
  return storage::PinnedPartition(view, std::move(token));
}

void PartitionCache::PinLocked(size_t part, Entry* e) {
  if (e->pins == 0) {
    lru_.erase(e->lru_it);  // pinned entries are invisible to eviction
    stats_.bytes_pinned += e->bytes;  // counted once, not per pin
  }
  ++e->pins;
  (void)part;
}

PartitionCache::Entry& PartitionCache::InsertEntryLocked(
    size_t part, std::shared_ptr<const LoadedPartition> data) {
  Entry e;
  e.bytes = data->bytes();
  e.data = std::move(data);
  lru_.push_back(part);
  e.lru_it = std::prev(lru_.end());
  stats_.bytes_cached += e.bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_cached);
  ++stats_.inserts;
  return entries_.emplace(part, std::move(e)).first->second;
}

std::optional<storage::PinnedPartition> PartitionCache::AcquirePinned(
    size_t part) {
  std::shared_ptr<const LoadedPartition> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(part);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    PinLocked(part, &it->second);
    data = it->second.data;
  }
  return MakePinned(part, std::move(data));
}

void PartitionCache::Insert(size_t part,
                            std::shared_ptr<const LoadedPartition> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(part);
  if (it != entries_.end()) {
    // Already resident (e.g. a prefetch raced a demand load): refresh
    // recency if unpinned, keep the existing bytes accounting.
    if (it->second.pins == 0) {
      lru_.erase(it->second.lru_it);
      lru_.push_back(part);
      it->second.lru_it = std::prev(lru_.end());
    }
    return;
  }
  InsertEntryLocked(part, std::move(data));
  EvictToBudgetLocked();
}

storage::PinnedPartition PartitionCache::InsertPinned(
    size_t part, std::shared_ptr<const LoadedPartition> data) {
  std::shared_ptr<const LoadedPartition> pinned_data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(part);
    Entry& e = it != entries_.end()
                   ? it->second
                   : InsertEntryLocked(part, std::move(data));
    PinLocked(part, &e);
    EvictToBudgetLocked();
    pinned_data = e.data;
  }
  return MakePinned(part, std::move(pinned_data));
}

void PartitionCache::Release(size_t part) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(part);
  assert(it != entries_.end() && it->second.pins > 0);
  Entry& e = it->second;
  --e.pins;
  if (e.pins == 0) {
    stats_.bytes_pinned -= e.bytes;
    // Scan-resistant re-entry: a released pin means the scan is *done*
    // with this partition, so it re-enters at the cold end — ahead of
    // staged-but-unscanned entries in eviction order. Plain MRU re-entry
    // would let a multi-lane scan's wake evict the read-ahead before it
    // is ever used. If pins forced an overshoot, drain it now rather
    // than at the next insert.
    lru_.push_front(part);
    e.lru_it = lru_.begin();
    EvictToBudgetLocked();
  }
}

void PartitionCache::EvictToBudgetLocked() {
  while (stats_.bytes_cached > budget_ && !lru_.empty()) {
    const size_t victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    assert(it != entries_.end() && it->second.pins == 0);
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
}

bool PartitionCache::Contains(size_t part) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(part) != 0;
}

void PartitionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t part : lru_) {
    auto it = entries_.find(part);
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
  lru_.clear();
}

size_t PartitionCache::bytes_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.bytes_cached;
}

CacheStats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ps3::io
