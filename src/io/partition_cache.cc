#include "io/partition_cache.h"

#include <algorithm>
#include <cassert>

namespace ps3::io {

ColumnPin PartitionCache::MakePinned(
    const ColumnKey& key, std::shared_ptr<const CachedColumn> data) {
  // The token owns a reference to the data (so the column outlives even a
  // pathological eviction) and releases the pin on destruction. The
  // deleter locks mu_ when it runs — and the standard runs it even when
  // the control-block allocation throws — so this must only be called
  // with mu_ *released*: the entry is already pinned, which keeps it
  // alive across the unlock.
  PartitionCache* self = this;
  const CachedColumn* raw = data.get();
  std::shared_ptr<const CachedColumn> token(
      raw, [self, key, data = std::move(data)](const CachedColumn*) {
        self->Release(key);
      });
  return token;
}

void PartitionCache::PinLocked(Entry* e) {
  if (e->pins == 0) {
    lru_.erase(e->lru_it);  // pinned entries are invisible to eviction
    stats_.bytes_pinned += e->bytes;  // counted once, not per pin
  }
  ++e->pins;
}

PartitionCache::Entry& PartitionCache::InsertEntryLocked(
    const ColumnKey& key, std::shared_ptr<const CachedColumn> data) {
  Entry e;
  e.bytes = data->bytes;
  e.data = std::move(data);
  lru_.push_back(key);
  e.lru_it = std::prev(lru_.end());
  stats_.bytes_cached += e.bytes;
  stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.bytes_cached);
  ++stats_.inserts;
  return entries_.emplace(key, std::move(e)).first->second;
}

std::optional<ColumnPin> PartitionCache::AcquirePinned(const ColumnKey& key) {
  std::shared_ptr<const CachedColumn> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    PinLocked(&it->second);
    data = it->second.data;
  }
  return MakePinned(key, std::move(data));
}

std::shared_ptr<const void> PartitionCache::AcquireManyPinned(
    const std::vector<ColumnKey>& keys,
    std::vector<std::shared_ptr<const CachedColumn>>* data) {
  data->assign(keys.size(), nullptr);
  auto hit_keys = std::make_shared<std::vector<ColumnKey>>();
  hit_keys->reserve(keys.size());
  // The hit data refs double as the keep-alive set: the token below owns
  // them, so even a pathological eviction can't free a column a scan
  // still reads.
  auto hit_data =
      std::make_shared<std::vector<std::shared_ptr<const CachedColumn>>>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t k = 0; k < keys.size(); ++k) {
      auto it = entries_.find(keys[k]);
      if (it == entries_.end()) {
        ++stats_.misses;
        continue;
      }
      ++stats_.hits;
      PinLocked(&it->second);
      (*data)[k] = it->second.data;
      hit_keys->push_back(keys[k]);
      hit_data->push_back(it->second.data);
    }
  }
  if (hit_keys->empty()) return nullptr;
  // One token, one release pass: the deleter locks mu_ once for the
  // whole batch (and, like MakePinned, must therefore be built with mu_
  // released — the entries are already pinned, which keeps them alive).
  PartitionCache* self = this;
  return std::shared_ptr<const void>(
      static_cast<const void*>(hit_keys.get()),
      [self, hit_keys = std::move(hit_keys),
       hit_data = std::move(hit_data)](const void*) {
        self->ReleaseMany(*hit_keys);
      });
}

void PartitionCache::Insert(const ColumnKey& key,
                            std::shared_ptr<const CachedColumn> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Already resident (e.g. a prefetch raced a demand load): refresh
    // recency if unpinned, keep the existing bytes accounting.
    if (it->second.pins == 0) {
      lru_.erase(it->second.lru_it);
      lru_.push_back(key);
      it->second.lru_it = std::prev(lru_.end());
    }
    return;
  }
  InsertEntryLocked(key, std::move(data));
  EvictToBudgetLocked();
}

ColumnPin PartitionCache::InsertPinned(
    const ColumnKey& key, std::shared_ptr<const CachedColumn> data) {
  std::shared_ptr<const CachedColumn> pinned_data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    Entry& e = it != entries_.end()
                   ? it->second
                   : InsertEntryLocked(key, std::move(data));
    PinLocked(&e);
    EvictToBudgetLocked();
    pinned_data = e.data;
  }
  return MakePinned(key, std::move(pinned_data));
}

void PartitionCache::ReleaseLocked(const ColumnKey& key) {
  auto it = entries_.find(key);
  assert(it != entries_.end() && it->second.pins > 0);
  Entry& e = it->second;
  --e.pins;
  if (e.pins == 0) {
    stats_.bytes_pinned -= e.bytes;
    // Scan-resistant re-entry: a released pin means the scan is *done*
    // with this segment, so it re-enters at the cold end — ahead of
    // staged-but-unscanned entries in eviction order. Plain MRU re-entry
    // would let a multi-lane scan's wake evict the read-ahead before it
    // is ever used.
    lru_.push_front(key);
    e.lru_it = lru_.begin();
  }
}

void PartitionCache::Release(const ColumnKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleaseLocked(key);
  // If pins forced an overshoot, drain it now rather than at the next
  // insert.
  EvictToBudgetLocked();
}

void PartitionCache::ReleaseMany(const std::vector<ColumnKey>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ColumnKey& key : keys) ReleaseLocked(key);
  EvictToBudgetLocked();
}

void PartitionCache::EvictToBudgetLocked() {
  while (stats_.bytes_cached > budget_ && !lru_.empty()) {
    const ColumnKey victim = lru_.front();
    lru_.pop_front();
    auto it = entries_.find(victim);
    assert(it != entries_.end() && it->second.pins == 0);
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
}

bool PartitionCache::Contains(const ColumnKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) != 0;
}

bool PartitionCache::ContainsAll(size_t part,
                                 const std::vector<size_t>& cols) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t c : cols) {
    if (entries_.count(ColumnKey{part, c}) == 0) return false;
  }
  return true;
}

void PartitionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ColumnKey& key : lru_) {
    auto it = entries_.find(key);
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
  lru_.clear();
}

size_t PartitionCache::bytes_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.bytes_cached;
}

CacheStats PartitionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ps3::io
