#include "core/training_data.h"

#include "core/labels.h"

namespace ps3::core {

TrainingData BuildTrainingData(const PickerContext& ctx,
                               std::vector<query::Query> queries) {
  TrainingData data;
  data.queries = std::move(queries);
  const size_t nq = data.queries.size();
  data.features.reserve(nq);
  data.answers.reserve(nq);
  data.exact.reserve(nq);
  data.contributions.reserve(nq);
  for (const auto& q : data.queries) {
    data.features.push_back(ctx.featurizer->BuildFeatures(q));
    data.answers.push_back(query::EvaluateAllPartitions(q, *ctx.table));
    data.exact.push_back(query::ExactAnswer(q, data.answers.back()));
    data.contributions.push_back(
        ComputeContributions(q, data.answers.back(), data.exact.back()));
  }
  return data;
}

}  // namespace ps3::core
