#include "core/training_data.h"

#include "core/labels.h"
#include "runtime/worker_pool.h"

namespace ps3::core {

TrainingData BuildTrainingData(const PickerContext& ctx,
                               std::vector<query::Query> queries) {
  TrainingData data;
  data.queries = std::move(queries);
  const size_t nq = data.queries.size();
  data.features.resize(nq);
  data.answers.resize(nq);
  data.exact.resize(nq);
  data.contributions.resize(nq);
  // The ground-truth labeling pass is the slowest step of training: every
  // query is evaluated exactly on every partition. Queries are independent,
  // so the pass parallelizes at query granularity on the resident pool with
  // results written to index-addressed slots (deterministic for any lane
  // count); the per-query partition scans below then run inline.
  runtime::WorkerPool::Shared().ParallelFor(nq, [&](size_t i) {
    const query::Query& q = data.queries[i];
    data.features[i] = ctx.featurizer->BuildFeatures(q);
    data.answers[i] = query::EvaluateAllPartitions(q, *ctx.table);
    data.exact[i] = query::ExactAnswer(q, data.answers[i]);
    data.contributions[i] =
        ComputeContributions(q, data.answers[i], data.exact[i]);
  });
  return data;
}

}  // namespace ps3::core
