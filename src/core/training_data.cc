#include "core/training_data.h"

#include <future>
#include <vector>

#include "core/labels.h"
#include "runtime/query_scheduler.h"

namespace ps3::core {

TrainingData BuildTrainingData(const PickerContext& ctx,
                               std::vector<query::Query> queries) {
  TrainingData data;
  data.queries = std::move(queries);
  const size_t nq = data.queries.size();
  data.features.resize(nq);
  data.answers.resize(nq);
  data.exact.resize(nq);
  data.contributions.resize(nq);
  // The ground-truth labeling pass is the slowest step of training: every
  // query is evaluated exactly on every partition. Queries are admitted
  // concurrently through a QueryScheduler onto the shared resident pool,
  // so each query's partition scan is its own chunk-level job and the
  // in-flight queries interleave on shared lanes (previously one query's
  // ParallelFor owned the pool while the rest blocked). Results land in
  // index-addressed slots and every per-query reduction is ordered, so the
  // labels are bit-identical to serial evaluation for any driver or lane
  // count.
  runtime::QueryScheduler scheduler;
  std::vector<std::future<void>> done;
  done.reserve(nq);
  for (size_t i = 0; i < nq; ++i) {
    done.push_back(scheduler.Defer([&data, &ctx, i] {
      const query::Query& q = data.queries[i];
      data.features[i] = ctx.featurizer->BuildFeatures(q);
      data.answers[i] = query::EvaluateAllPartitions(q, *ctx.table);
      data.exact[i] = query::ExactAnswer(q, data.answers[i]);
      data.contributions[i] =
          ComputeContributions(q, data.answers[i], data.exact[i]);
    }));
  }
  for (auto& f : done) f.get();
  return data;
}

}  // namespace ps3::core
