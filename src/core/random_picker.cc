#include "core/random_picker.h"

namespace ps3::core {

std::vector<size_t> FilterBySelectivity(const PickerContext& ctx,
                                        const query::Query& query) {
  auto sel = ctx.featurizer->ComputeSelectivity(query);
  std::vector<size_t> out;
  out.reserve(sel.size());
  for (size_t p = 0; p < sel.size(); ++p) {
    if (sel[p].upper > 0.0) out.push_back(p);
  }
  return out;
}

Selection UniformSelection(const std::vector<size_t>& candidates,
                           size_t budget, RandomEngine* rng) {
  Selection s;
  if (candidates.empty() || budget == 0) return s;
  if (budget >= candidates.size()) {
    for (size_t p : candidates) s.parts.push_back({p, 1.0});
    return s;
  }
  auto idx = SampleWithoutReplacement(candidates.size(), budget, rng);
  double weight = static_cast<double>(candidates.size()) /
                  static_cast<double>(budget);
  s.parts.reserve(budget);
  for (size_t i : idx) s.parts.push_back({candidates[i], weight});
  return s;
}

Selection RandomPicker::Pick(const query::Query& query, size_t budget,
                             RandomEngine* rng,
                             PickTelemetry* telemetry) const {
  (void)query;
  (void)telemetry;
  std::vector<size_t> all(ctx_.table->num_partitions());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return UniformSelection(all, budget, rng);
}

Selection RandomFilterPicker::Pick(const query::Query& query, size_t budget,
                                   RandomEngine* rng,
                                   PickTelemetry* telemetry) const {
  (void)telemetry;
  return UniformSelection(FilterBySelectivity(ctx_, query), budget, rng);
}

}  // namespace ps3::core
