#include "core/lss_picker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/random_picker.h"
#include "ml/binned.h"
#include "query/metrics.h"

namespace ps3::core {

Selection LssPicker::StratifiedSelect(const std::vector<size_t>& candidates,
                                      const std::vector<double>& scores,
                                      size_t budget, size_t n_strata,
                                      RandomEngine* rng) {
  assert(candidates.size() == scores.size());
  Selection out;
  if (candidates.empty() || budget == 0) return out;
  if (budget >= candidates.size()) {
    for (size_t p : candidates) out.parts.push_back({p, 1.0});
    return out;
  }
  // An unsampled stratum would drop its population mass from the
  // estimate, so never use more strata than the budget allows.
  n_strata = std::min(n_strata, budget);
  double lo = *std::min_element(scores.begin(), scores.end());
  double hi = *std::max_element(scores.begin(), scores.end());
  if (hi <= lo || n_strata <= 1) {
    return UniformSelection(candidates, budget, rng);
  }

  // Equi-width strata over the prediction range.
  std::vector<std::vector<size_t>> strata(n_strata);
  double width = (hi - lo) / static_cast<double>(n_strata);
  for (size_t i = 0; i < candidates.size(); ++i) {
    size_t s = static_cast<size_t>((scores[i] - lo) / width);
    if (s >= n_strata) s = n_strata - 1;
    strata[s].push_back(candidates[i]);
  }

  // Allocation: one guaranteed sample per non-empty stratum (possible
  // because n_strata <= budget), then the remaining budget proportionally
  // to stratum sizes with largest-remainder rounding. The guarantee keeps
  // every stratum's mass in the estimate.
  const double total = static_cast<double>(candidates.size());
  std::vector<size_t> alloc(n_strata, 0);
  std::vector<double> frac(n_strata, 0.0);
  size_t assigned = 0;
  size_t nonempty = 0;
  for (size_t s = 0; s < n_strata; ++s) {
    if (!strata[s].empty()) ++nonempty;
  }
  size_t extra_budget = budget >= nonempty ? budget - nonempty : 0;
  for (size_t s = 0; s < n_strata; ++s) {
    if (strata[s].empty()) continue;
    double want = static_cast<double>(extra_budget) *
                  static_cast<double>(strata[s].size()) / total;
    alloc[s] = std::min(strata[s].size(),
                        1 + static_cast<size_t>(want));
    frac[s] = want - std::floor(want);
    assigned += alloc[s];
  }
  while (assigned < budget) {
    size_t best = n_strata;
    double best_frac = -1.0;
    for (size_t s = 0; s < n_strata; ++s) {
      if (alloc[s] >= strata[s].size()) continue;
      if (frac[s] > best_frac) {
        best_frac = frac[s];
        best = s;
      }
    }
    if (best == n_strata) break;
    ++alloc[best];
    frac[best] = -1.0;
    ++assigned;
  }

  for (size_t s = 0; s < n_strata; ++s) {
    if (alloc[s] == 0 || strata[s].empty()) continue;
    Selection picked = UniformSelection(strata[s], alloc[s], rng);
    out.parts.insert(out.parts.end(), picked.parts.begin(),
                     picked.parts.end());
  }
  return out;
}

LssModel TrainLss(const PickerContext& ctx, const TrainingData& data,
                  const LssOptions& options) {
  LssModel model;
  const featurize::FeatureSchema& schema = ctx.featurizer->feature_schema();
  std::vector<const featurize::FeatureMatrix*> raw;
  for (const auto& fm : data.features) raw.push_back(&fm);
  model.normalizer.Fit(schema, raw);

  // Stack normalized features; labels are the partition contributions.
  const size_t n_parts = ctx.featurizer->num_partitions();
  const size_t m = schema.num_features();
  std::vector<double> stacked;
  std::vector<double> y;
  stacked.reserve(data.num_queries() * n_parts * m);
  for (size_t qi = 0; qi < data.num_queries(); ++qi) {
    featurize::FeatureMatrix norm = data.features[qi];
    model.normalizer.Apply(&norm);
    stacked.insert(stacked.end(), norm.data.begin(), norm.data.end());
    y.insert(y.end(), data.contributions[qi].begin(),
             data.contributions[qi].end());
  }
  ml::ConstMatrixView X{stacked.data(), y.size(), m};
  ml::BinnedDataset binned = ml::BinnedDataset::Build(X);
  ml::GbdtParams params = options.gbdt;
  params.seed = options.seed;
  model.regressor = ml::Gbdt::Train(binned, y, params);

  // Strata sweep (Appendix C.1): per tuning budget, pick the stratum count
  // minimizing training-set average relative error.
  RandomEngine rng(options.seed);
  size_t want = std::min<size_t>(
      static_cast<size_t>(std::max(1, options.eval_queries)),
      data.num_queries());
  auto eval_queries =
      SampleWithoutReplacement(data.num_queries(), want, &rng);

  // Cache normalized features + predictions for the evaluation queries.
  std::vector<featurize::FeatureMatrix> eval_features;
  for (size_t qi : eval_queries) {
    featurize::FeatureMatrix norm = data.features[qi];
    model.normalizer.Apply(&norm);
    eval_features.push_back(std::move(norm));
  }

  for (double budget_frac : options.tuning_budgets) {
    size_t budget = std::max<size_t>(
        1, static_cast<size_t>(budget_frac * static_cast<double>(n_parts)));
    size_t best_strata = options.strata_candidates.front();
    double best_err = std::numeric_limits<double>::max();
    for (size_t n_strata : options.strata_candidates) {
      double err_sum = 0.0;
      for (size_t e = 0; e < eval_queries.size(); ++e) {
        size_t qi = eval_queries[e];
        const auto& raw_fm = data.features[qi];
        std::vector<size_t> candidates;
        std::vector<double> scores;
        for (size_t p = 0; p < n_parts; ++p) {
          if (raw_fm.At(p, schema.sel_upper_index()) > 0.0) {
            candidates.push_back(p);
            scores.push_back(model.regressor.Predict(eval_features[e].Row(p)));
          }
        }
        RandomEngine eval_rng(options.seed + qi * 7 + n_strata * 131);
        Selection sel = LssPicker::StratifiedSelect(candidates, scores, budget, n_strata,
                                         &eval_rng);
        auto estimate = query::CombineWeighted(data.queries[qi],
                                               data.answers[qi], sel.parts);
        err_sum += query::ComputeErrorMetrics(data.queries[qi],
                                              data.exact[qi], estimate)
                       .avg_rel_error;
      }
      if (err_sum < best_err) {
        best_err = err_sum;
        best_strata = n_strata;
      }
    }
    model.strata_by_budget.emplace_back(budget_frac, best_strata);
  }
  return model;
}

Selection LssPicker::Pick(const query::Query& query, size_t budget,
                          RandomEngine* rng, PickTelemetry* telemetry) const {
  (void)telemetry;
  Selection out;
  if (budget == 0) return out;
  std::vector<size_t> candidates = FilterBySelectivity(ctx_, query);
  if (candidates.empty()) return out;
  if (budget >= candidates.size()) {
    for (size_t p : candidates) out.parts.push_back({p, 1.0});
    return out;
  }
  featurize::FeatureMatrix features = ctx_.featurizer->BuildFeatures(query);
  model_->normalizer.Apply(&features);
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (size_t p : candidates) {
    scores.push_back(model_->regressor.Predict(features.Row(p)));
  }
  // Stratum count tuned for the nearest budget.
  double budget_frac = static_cast<double>(budget) /
                       static_cast<double>(ctx_.table->num_partitions());
  size_t n_strata = 4;
  double best_gap = std::numeric_limits<double>::max();
  for (const auto& [b, s] : model_->strata_by_budget) {
    double gap = std::fabs(b - budget_frac);
    if (gap < best_gap) {
      best_gap = gap;
      n_strata = s;
    }
  }
  return StratifiedSelect(candidates, scores, budget, n_strata, rng);
}

}  // namespace ps3::core
