#include "core/ps3_picker.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/math_util.h"
#include "core/cluster_select.h"
#include "core/random_picker.h"

namespace ps3::core {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::vector<size_t> Ps3Picker::FindOutliers(
    const query::Query& query, const std::vector<size_t>& candidates) const {
  if (query.group_by.empty()) return {};
  // Group candidates by their concatenated occurrence bitmaps over the
  // query's group-by columns (§4.4).
  std::vector<size_t> bitmap_cols;
  for (size_t c : query.group_by) {
    if (ctx_.stats->has_bitmap(c)) bitmap_cols.push_back(c);
  }
  if (bitmap_cols.empty()) return {};

  std::map<std::vector<uint8_t>, std::vector<size_t>> groups;
  for (size_t p : candidates) {
    std::vector<uint8_t> key;
    for (size_t c : bitmap_cols) {
      const auto& bm = ctx_.stats->occurrence_bitmap(p, c);
      key.insert(key.end(), bm.begin(), bm.end());
    }
    groups[std::move(key)].push_back(p);
  }
  size_t largest = 0;
  for (const auto& [key, members] : groups) {
    largest = std::max(largest, members.size());
  }
  // A bitmap group is outlying when small both in absolute and relative
  // terms (§4.4's "< 10 partitions AND < 10% of the largest group").
  std::vector<const std::vector<size_t>*> outlying;
  for (const auto& [key, members] : groups) {
    if (members.size() < model_->options.outlier_max_group_size &&
        static_cast<double>(members.size()) <
            model_->options.outlier_rel_size * static_cast<double>(largest)) {
      outlying.push_back(&members);
    }
  }
  std::sort(outlying.begin(), outlying.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<size_t> out;
  for (const auto* g : outlying) {
    out.insert(out.end(), g->begin(), g->end());
  }
  return out;
}

std::vector<std::vector<size_t>> Ps3Picker::ImportanceGroups(
    const std::vector<size_t>& parts,
    const std::function<double(size_t, size_t)>& score, size_t k_models) {
  std::vector<std::vector<size_t>> groups;
  groups.push_back(parts);  // Algorithm 2: start from the filtered set
  for (size_t m = 0; m < k_models; ++m) {
    std::vector<size_t> stay, advance;
    for (size_t p : groups.back()) {
      if (score(p, m) > 0.0) {
        advance.push_back(p);
      } else {
        stay.push_back(p);
      }
    }
    groups.back() = std::move(stay);
    groups.push_back(std::move(advance));
  }
  return groups;
}

std::vector<size_t> Ps3Picker::AllocateSamples(
    const std::vector<size_t>& group_sizes, size_t budget, double alpha) {
  const size_t k = group_sizes.size();
  std::vector<size_t> alloc(k, 0);
  size_t total = 0;
  for (size_t s : group_sizes) total += s;
  if (total == 0 || budget == 0) return alloc;
  budget = std::min(budget, total);

  // rate(group i) = min(1, base / alpha^rank), rank 0 = most important
  // (= last group). The expected sample count is monotone in `base`, so
  // bisection finds the base rate matching the budget.
  auto expected = [&](double base) {
    double n = 0.0;
    for (size_t i = 0; i < k; ++i) {
      size_t rank = k - 1 - i;
      double rate = std::min(1.0, base / std::pow(alpha, double(rank)));
      n += rate * static_cast<double>(group_sizes[i]);
    }
    return n;
  };
  double lo = 0.0, hi = std::pow(alpha, double(k)) + 1.0;
  for (int it = 0; it < 60; ++it) {
    double mid = 0.5 * (lo + hi);
    if (expected(mid) < static_cast<double>(budget)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double base = 0.5 * (lo + hi);

  // Integer allocation with largest-remainder rounding, capped per group.
  std::vector<double> frac(k);
  size_t assigned = 0;
  for (size_t i = 0; i < k; ++i) {
    size_t rank = k - 1 - i;
    double rate = std::min(1.0, base / std::pow(alpha, double(rank)));
    double want = rate * static_cast<double>(group_sizes[i]);
    alloc[i] = std::min(group_sizes[i], static_cast<size_t>(want));
    frac[i] = want - std::floor(want);
    assigned += alloc[i];
  }
  while (assigned < budget) {
    // Give the remaining slots to the groups with the largest remainders,
    // preferring more important groups on ties.
    size_t best = k;  // sentinel
    double best_frac = -1.0;
    for (size_t i = k; i-- > 0;) {
      if (alloc[i] >= group_sizes[i]) continue;
      if (frac[i] > best_frac) {
        best_frac = frac[i];
        best = i;
      }
    }
    if (best == k) break;  // every group saturated
    ++alloc[best];
    frac[best] = -1.0;
    ++assigned;
  }
  return alloc;
}

Selection Ps3Picker::Pick(const query::Query& query, size_t budget,
                          RandomEngine* rng, PickTelemetry* telemetry) const {
  auto start = Clock::now();
  double clustering_ms = 0.0;
  Selection out;
  if (budget == 0) return out;

  // Perfect-recall predicate filter.
  std::vector<size_t> candidates = FilterBySelectivity(ctx_, query);
  if (candidates.empty()) return out;
  if (budget >= candidates.size()) {
    for (size_t p : candidates) out.parts.push_back({p, 1.0});
    if (telemetry != nullptr) telemetry->total_ms = MsSince(start);
    return out;
  }

  // 1. Outliers (§4.4): small bitmap groups read exactly, weight 1.
  std::vector<size_t> selected_outliers;
  if (model_->options.use_outliers) {
    std::vector<size_t> outliers = FindOutliers(query, candidates);
    size_t n_o = std::min<size_t>(
        outliers.size(),
        static_cast<size_t>(model_->options.outlier_budget_frac *
                            static_cast<double>(budget)));
    selected_outliers.assign(outliers.begin(),
                             outliers.begin() + static_cast<ptrdiff_t>(n_o));
    for (size_t p : selected_outliers) out.parts.push_back({p, 1.0});
  }
  std::unordered_set<size_t> outlier_set(selected_outliers.begin(),
                                         selected_outliers.end());
  std::vector<size_t> inliers;
  inliers.reserve(candidates.size());
  for (size_t p : candidates) {
    if (!outlier_set.count(p)) inliers.push_back(p);
  }
  size_t remaining = budget - selected_outliers.size();
  if (remaining == 0 || inliers.empty()) {
    if (telemetry != nullptr) telemetry->total_ms = MsSince(start);
    return out;
  }

  // 2. Importance funnel (Algorithm 2).
  featurize::FeatureMatrix features = ctx_.featurizer->BuildFeatures(query);
  model_->normalizer.Apply(&features);
  std::vector<std::vector<size_t>> groups;
  if (model_->options.use_regressors && !model_->regressors.empty()) {
    if (oracle_) {
      std::vector<double> contribution = oracle_(query);
      groups = ImportanceGroups(
          inliers,
          [&](size_t p, size_t m) {
            return contribution[p] > model_->thresholds[m] ? 1.0 : -1.0;
          },
          model_->regressors.size());
    } else {
      groups = ImportanceGroups(
          inliers,
          [&](size_t p, size_t m) {
            return model_->regressors[m].Predict(features.Row(p));
          },
          model_->regressors.size());
    }
  } else {
    groups.push_back(inliers);
  }

  // 3. Budget allocation across importance groups.
  std::vector<size_t> sizes(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) sizes[i] = groups[i].size();
  std::vector<size_t> alloc =
      AllocateSamples(sizes, remaining, model_->options.alpha);

  // 4. Sample via clustering within each group (§4.2), falling back to
  // uniform sampling for very complex predicates (Appendix B.1) or when
  // clustering is disabled.
  const bool clustering_ok =
      model_->options.use_clustering &&
      query.NumPredicateClauses() <= model_->options.max_clauses_for_clustering;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (alloc[i] == 0 || groups[i].empty()) continue;
    if (alloc[i] >= groups[i].size()) {
      for (size_t p : groups[i]) out.parts.push_back({p, 1.0});
      continue;
    }
    if (clustering_ok) {
      auto cl_start = Clock::now();
      ClusterSelectOptions cs;
      cs.algo = model_->options.cluster_algo;
      cs.unbiased_exemplar = model_->options.unbiased_exemplar;
      cs.excluded_kinds = &model_->excluded_kinds;
      Selection picked = ClusterSelect(features,
                                       ctx_.featurizer->feature_schema(),
                                       groups[i], alloc[i], cs, rng);
      clustering_ms += MsSince(cl_start);
      out.parts.insert(out.parts.end(), picked.parts.begin(),
                       picked.parts.end());
    } else {
      Selection picked = UniformSelection(groups[i], alloc[i], rng);
      out.parts.insert(out.parts.end(), picked.parts.begin(),
                       picked.parts.end());
    }
  }
  if (telemetry != nullptr) {
    telemetry->total_ms = MsSince(start);
    telemetry->clustering_ms = clustering_ms;
  }
  return out;
}

}  // namespace ps3::core
