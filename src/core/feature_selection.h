// Clustering feature selection (§4.2, Algorithm 3): greedy leave-one-out
// exclusion of statistic kinds, scored by the clustering-only estimation
// error on training queries, with random-restart outer loops.
#ifndef PS3_CORE_FEATURE_SELECTION_H_
#define PS3_CORE_FEATURE_SELECTION_H_

#include <vector>

#include "core/picker.h"
#include "core/ps3_model.h"
#include "core/training_data.h"

namespace ps3::core {

/// Average relative error of pure clustering-based selection (no funnel,
/// no outliers) over the given training queries at one sampling budget.
/// Used both by Algorithm 3 and by the Table 6/7 benchmarks.
double EvaluateClusteringError(const PickerContext& ctx,
                               const TrainingData& data,
                               const featurize::FeatureNormalizer& normalizer,
                               ClusterAlgo algo,
                               const std::vector<bool>& excluded_kinds,
                               const std::vector<size_t>& query_indices,
                               double budget_frac, uint64_t seed);

/// Runs Algorithm 3 and returns the per-StatKind exclusion mask.
std::vector<bool> SelectClusterFeatures(
    const PickerContext& ctx, const TrainingData& data,
    const featurize::FeatureNormalizer& normalizer, ClusterAlgo algo,
    const FeatureSelectionOptions& options);

}  // namespace ps3::core

#endif  // PS3_CORE_FEATURE_SELECTION_H_
