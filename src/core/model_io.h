// Persistence for trained PS3 models: offline training (per dataset,
// layout and workload, §2.3.2) runs once; the query optimizer loads the
// model file and picks partitions without retraining.
#ifndef PS3_CORE_MODEL_IO_H_
#define PS3_CORE_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/ps3_model.h"

namespace ps3::core {

/// Serializes everything Pick() needs: pick-time options, thresholds,
/// funnel regressors, normalizer, clustering feature mask and the Figure 5
/// importance summary. Training-only options (GBDT params, feature
/// selection budgets) are not persisted.
Status SaveModel(const Ps3Model& model, const std::string& path);

/// Loads a model written by SaveModel; rejects unknown versions and
/// corrupt content.
Result<Ps3Model> LoadModel(const std::string& path);

}  // namespace ps3::core

#endif  // PS3_CORE_MODEL_IO_H_
