#include "core/labels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace ps3::core {

namespace {
// Caps pathological ratios (tiny/negative denominators) without disturbing
// the > 0 and top-1% structure the funnel thresholds rely on.
constexpr double kMaxContribution = 10.0;
constexpr double kDenomEpsilon = 1e-12;
}  // namespace

std::vector<double> ComputeContributions(
    const query::Query& query,
    const std::vector<query::PartitionAnswer>& per_partition,
    const query::QueryAnswer& exact) {
  const size_t n_aggs = query.aggregates.size();
  std::vector<double> contribution(per_partition.size(), 0.0);
  for (size_t p = 0; p < per_partition.size(); ++p) {
    double best = 0.0;
    for (const auto& [key, accs] : per_partition[p]) {
      auto it = exact.find(key);
      if (it == exact.end()) continue;
      for (size_t a = 0; a < n_aggs; ++a) {
        double total = it->second[a];
        if (std::fabs(total) < kDenomEpsilon) continue;
        double part_val = query::FinalizeAgg(query.aggregates[a].func,
                                             accs[a]);
        double ratio = part_val / total;
        if (ratio > best) best = ratio;
      }
    }
    contribution[p] = Clamp(best, 0.0, kMaxContribution);
  }
  return contribution;
}

std::vector<double> ChooseThresholds(
    const std::vector<std::vector<double>>& contributions, int k_models,
    double top_fraction) {
  assert(k_models >= 1);
  std::vector<double> flat;
  for (const auto& c : contributions) {
    flat.insert(flat.end(), c.begin(), c.end());
  }
  std::sort(flat.begin(), flat.end());
  const double n = static_cast<double>(flat.size());

  // Fraction of (query, partition) pairs with non-zero contribution.
  size_t nonzero =
      flat.end() - std::upper_bound(flat.begin(), flat.end(), 0.0);
  double f1 = n > 0 ? static_cast<double>(nonzero) / n : 0.0;
  f1 = std::max(f1, 1e-6);
  double fk = std::min(top_fraction, f1);

  std::vector<double> thresholds(k_models);
  thresholds[0] = 0.0;  // model 1: any non-zero contribution
  for (int i = 1; i < k_models; ++i) {
    double t = static_cast<double>(i) / static_cast<double>(k_models - 1);
    // Geometric interpolation of pass fractions: counts passing model i
    // shrink exponentially toward the top `fk` fraction.
    double frac = f1 * std::pow(fk / f1, t);
    double q = 1.0 - frac;
    thresholds[i] =
        flat.empty() ? 0.0 : QuantileSorted(flat, Clamp(q, 0.0, 1.0));
    // Keep thresholds strictly non-decreasing.
    thresholds[i] = std::max(thresholds[i], thresholds[i - 1]);
  }
  return thresholds;
}

std::vector<double> MakeFunnelLabels(
    const std::vector<std::vector<double>>& contributions, double threshold) {
  std::vector<double> labels;
  size_t total = 0;
  for (const auto& c : contributions) total += c.size();
  labels.reserve(total);
  for (const auto& c : contributions) {
    const double n = static_cast<double>(c.size());
    size_t positive = 0;
    for (double v : c) {
      if (v > threshold) ++positive;
    }
    size_t negative = c.size() - positive;
    // Scale so each query's positive class carries total weight sqrt(c*n)
    // independent of imbalance (Appendix B.2); c = n here.
    double pos_label =
        positive > 0 ? std::sqrt(n / static_cast<double>(positive)) : 0.0;
    double neg_label =
        negative > 0 ? -std::sqrt(n / static_cast<double>(negative)) : 0.0;
    for (double v : c) {
      labels.push_back(v > threshold ? pos_label : neg_label);
    }
  }
  return labels;
}

}  // namespace ps3::core
