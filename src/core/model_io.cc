#include "core/model_io.h"

#include "common/serialize.h"

namespace ps3::core {

namespace {
constexpr uint32_t kMagic = 0x50533301;  // "PS3" + format version 1
}  // namespace

Status SaveModel(const Ps3Model& model, const std::string& path) {
  BinaryWriter w;
  w.PutU32(kMagic);
  // Pick-time options.
  const Ps3Options& o = model.options;
  w.PutDouble(o.alpha);
  w.PutDouble(o.outlier_budget_frac);
  w.PutU32(static_cast<uint32_t>(o.outlier_max_group_size));
  w.PutDouble(o.outlier_rel_size);
  w.PutU32(static_cast<uint32_t>(o.max_clauses_for_clustering));
  w.PutU8(o.use_clustering ? 1 : 0);
  w.PutU8(o.use_outliers ? 1 : 0);
  w.PutU8(o.use_regressors ? 1 : 0);
  w.PutU8(o.unbiased_exemplar ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(o.cluster_algo));
  // Trained artifacts.
  model.normalizer.Serialize(&w);
  w.PutDoubleVector(model.thresholds);
  w.PutU32(static_cast<uint32_t>(model.regressors.size()));
  for (const auto& regr : model.regressors) regr.Serialize(&w);
  w.PutBoolVector(model.excluded_kinds);
  for (double g : model.category_importance) w.PutDouble(g);
  return w.WriteFile(path);
}

Result<Ps3Model> LoadModel(const std::string& path) {
  auto reader = BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();
  BinaryReader& r = *reader;

  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return Status::InvalidArgument("not a PS3 model file (bad magic)");
  }
  Ps3Model model;
  Ps3Options& o = model.options;
#define PS3_READ(field, getter)            \
  do {                                     \
    auto v = r.getter();                   \
    if (!v.ok()) return v.status();        \
    field = std::move(v).value();          \
  } while (0)
  PS3_READ(o.alpha, GetDouble);
  PS3_READ(o.outlier_budget_frac, GetDouble);
  {
    auto v = r.GetU32();
    if (!v.ok()) return v.status();
    o.outlier_max_group_size = *v;
  }
  PS3_READ(o.outlier_rel_size, GetDouble);
  {
    auto v = r.GetU32();
    if (!v.ok()) return v.status();
    o.max_clauses_for_clustering = *v;
  }
  auto flag = [&r](bool* out) -> Status {
    auto v = r.GetU8();
    if (!v.ok()) return v.status();
    *out = *v != 0;
    return Status::OK();
  };
  PS3_RETURN_IF_ERROR(flag(&o.use_clustering));
  PS3_RETURN_IF_ERROR(flag(&o.use_outliers));
  PS3_RETURN_IF_ERROR(flag(&o.use_regressors));
  PS3_RETURN_IF_ERROR(flag(&o.unbiased_exemplar));
  {
    auto v = r.GetU8();
    if (!v.ok()) return v.status();
    if (*v > static_cast<uint8_t>(ClusterAlgo::kHacWard)) {
      return Status::OutOfRange("corrupt model: bad cluster algorithm");
    }
    o.cluster_algo = static_cast<ClusterAlgo>(*v);
  }

  auto norm = featurize::FeatureNormalizer::Deserialize(&r);
  if (!norm.ok()) return norm.status();
  model.normalizer = std::move(norm).value();
  PS3_READ(model.thresholds, GetDoubleVector);
  auto n_regr = r.GetU32();
  if (!n_regr.ok()) return n_regr.status();
  for (uint32_t i = 0; i < *n_regr; ++i) {
    auto regr = ml::Gbdt::Deserialize(&r);
    if (!regr.ok()) return regr.status();
    model.regressors.push_back(std::move(regr).value());
  }
  PS3_READ(model.excluded_kinds, GetBoolVector);
  if (model.excluded_kinds.size() !=
      static_cast<size_t>(featurize::kNumStatKinds)) {
    return Status::OutOfRange("corrupt model: bad feature-kind mask size");
  }
  for (double& g : model.category_importance) {
    auto v = r.GetDouble();
    if (!v.ok()) return v.status();
    g = *v;
  }
#undef PS3_READ
  if (model.thresholds.size() != model.regressors.size()) {
    return Status::OutOfRange("corrupt model: thresholds/regressors "
                              "mismatch");
  }
  return model;
}

}  // namespace ps3::core
