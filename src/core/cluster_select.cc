#include "core/cluster_select.h"

#include <algorithm>
#include <cassert>

#include "cluster/agglomerative.h"
#include "cluster/exemplar.h"
#include "cluster/kmeans.h"

namespace ps3::core {

std::vector<std::vector<double>> BuildClusterPoints(
    const featurize::FeatureMatrix& normalized,
    const featurize::FeatureSchema& schema,
    const std::vector<size_t>& members,
    const std::vector<bool>* excluded_kinds) {
  // Keep dimensions that are included by kind and vary across members —
  // constant dimensions contribute nothing to Euclidean distances.
  std::vector<size_t> dims;
  for (size_t j = 0; j < schema.num_features(); ++j) {
    int kind = static_cast<int>(schema.def(j).kind);
    if (excluded_kinds != nullptr && (*excluded_kinds)[kind]) continue;
    double lo = normalized.At(members[0], j);
    double hi = lo;
    for (size_t m : members) {
      double v = normalized.At(m, j);
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    if (hi > lo) dims.push_back(j);
  }
  std::vector<std::vector<double>> points(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    points[i].reserve(dims.size());
    for (size_t j : dims) points[i].push_back(normalized.At(members[i], j));
  }
  return points;
}

Selection ClusterSelect(const featurize::FeatureMatrix& normalized,
                        const featurize::FeatureSchema& schema,
                        const std::vector<size_t>& members, size_t n_clusters,
                        const ClusterSelectOptions& options,
                        RandomEngine* rng) {
  assert(n_clusters >= 1 && n_clusters <= members.size());
  Selection out;
  if (n_clusters == members.size()) {
    for (size_t m : members) out.parts.push_back({m, 1.0});
    return out;
  }
  auto points = BuildClusterPoints(normalized, schema, members,
                                   options.excluded_kinds);
  if (points.empty() || points[0].empty()) {
    // Degenerate: all partitions look identical; any exemplars represent
    // the rest. Pick the first n_clusters with balanced weights.
    double w = static_cast<double>(members.size()) /
               static_cast<double>(n_clusters);
    for (size_t i = 0; i < n_clusters; ++i) {
      out.parts.push_back({members[i], w});
    }
    return out;
  }

  cluster::Clustering clustering;
  switch (options.algo) {
    case ClusterAlgo::kKMeans: {
      cluster::KMeansParams params;
      params.seed = rng->Next();
      params.max_iters = options.kmeans_iters;
      // With nearly as many clusters as points, extra Lloyd iterations buy
      // nothing; cap them to keep large-budget picks fast.
      if (n_clusters * 2 > points.size()) {
        params.max_iters = std::min(params.max_iters, 6);
      }
      clustering = cluster::KMeans(points, n_clusters, params);
      break;
    }
    case ClusterAlgo::kHacSingle:
      clustering =
          cluster::Agglomerative(points, n_clusters, cluster::Linkage::kSingle);
      break;
    case ClusterAlgo::kHacWard:
      clustering =
          cluster::Agglomerative(points, n_clusters, cluster::Linkage::kWard);
      break;
  }

  for (const auto& cluster_members : clustering.Members()) {
    if (cluster_members.empty()) continue;
    size_t local = options.unbiased_exemplar
                       ? cluster::RandomExemplar(cluster_members, rng)
                       : cluster::MedianExemplar(points, cluster_members);
    out.parts.push_back(
        {members[local], static_cast<double>(cluster_members.size())});
  }
  return out;
}

}  // namespace ps3::core
