// Trained PS3 artifacts and configuration knobs. One model per (dataset,
// layout, workload); §2.1 "Generalization".
#ifndef PS3_CORE_PS3_MODEL_H_
#define PS3_CORE_PS3_MODEL_H_

#include <array>
#include <vector>

#include "featurize/feature_schema.h"
#include "featurize/normalizer.h"
#include "ml/gbdt.h"

namespace ps3::core {

enum class ClusterAlgo { kKMeans, kHacSingle, kHacWard };

struct FeatureSelectionOptions {
  bool enabled = true;
  /// Outer random-restart count of Algorithm 3 (paper uses 10; scaled down
  /// for the simulator's budget).
  int restarts = 2;
  /// Training queries used to score a candidate feature set.
  int eval_queries = 6;
  /// Sampling budget (fraction of partitions) used during scoring.
  double budget_frac = 0.1;
  uint64_t seed = 99;
};

struct Ps3Options {
  int k_models = 4;                     ///< funnel depth (§4.3)
  double alpha = 2.0;                   ///< budget decay rate (§4.3)
  double outlier_budget_frac = 0.1;     ///< §4.4
  size_t outlier_max_group_size = 10;   ///< bitmap group "small" absolute cap
  double outlier_rel_size = 0.1;        ///< and relative cap vs largest group
  size_t max_clauses_for_clustering = 10;  ///< B.1 fallback to random
  // Lesion switches (§5.4.1).
  bool use_clustering = true;
  bool use_outliers = true;
  bool use_regressors = true;
  /// Appendix D: pick cluster exemplars at random (unbiased estimator)
  /// instead of closest-to-median (biased, default).
  bool unbiased_exemplar = false;
  ClusterAlgo cluster_algo = ClusterAlgo::kKMeans;
  ml::GbdtParams gbdt = DefaultGbdtParams();
  FeatureSelectionOptions feature_selection;

  static ml::GbdtParams DefaultGbdtParams();
};

struct Ps3Model {
  Ps3Options options;
  featurize::FeatureNormalizer normalizer;
  /// k regressors, ordered least to most selective (funnel order).
  std::vector<ml::Gbdt> regressors;
  /// Contribution thresholds the regressors were trained against.
  std::vector<double> thresholds;
  /// StatKinds excluded from clustering distance (Algorithm 3 output).
  std::vector<bool> excluded_kinds =
      std::vector<bool>(featurize::kNumStatKinds, false);
  /// Aggregated regressor gain by feature category (Figure 5); sums to 1
  /// when any split happened.
  std::array<double, 4> category_importance = {0, 0, 0, 0};
};

}  // namespace ps3::core

#endif  // PS3_CORE_PS3_MODEL_H_
