// Baselines: uniform random partition sampling, with and without the
// selectivity-upper predicate filter (§5.1.3).
#ifndef PS3_CORE_RANDOM_PICKER_H_
#define PS3_CORE_RANDOM_PICKER_H_

#include "core/picker.h"

namespace ps3::core {

/// Uniform partition sample; answers scale by 1 / sampling-rate.
class RandomPicker : public PartitionPicker {
 public:
  explicit RandomPicker(const PickerContext& ctx) : ctx_(ctx) {}

  std::string name() const override { return "random"; }
  Selection Pick(const query::Query& query, size_t budget, RandomEngine* rng,
                 PickTelemetry* telemetry) const override;

 private:
  PickerContext ctx_;
};

/// Uniform sample restricted to partitions whose selectivity upper bound is
/// non-zero (perfect-recall filter; only possible with summary statistics).
class RandomFilterPicker : public PartitionPicker {
 public:
  explicit RandomFilterPicker(const PickerContext& ctx) : ctx_(ctx) {}

  std::string name() const override { return "random+filter"; }
  Selection Pick(const query::Query& query, size_t budget, RandomEngine* rng,
                 PickTelemetry* telemetry) const override;

 private:
  PickerContext ctx_;
};

/// Shared helper: partitions passing the selectivity filter.
std::vector<size_t> FilterBySelectivity(const PickerContext& ctx,
                                        const query::Query& query);

/// Uniform sample of `budget` members of `candidates` with Horvitz-Thompson
/// weights |candidates| / budget.
Selection UniformSelection(const std::vector<size_t>& candidates,
                           size_t budget, RandomEngine* rng);

}  // namespace ps3::core

#endif  // PS3_CORE_RANDOM_PICKER_H_
