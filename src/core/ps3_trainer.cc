#include "core/ps3_trainer.h"

#include <cassert>

#include "core/feature_selection.h"
#include "core/labels.h"
#include "ml/binned.h"

namespace ps3::core {

ml::GbdtParams Ps3Options::DefaultGbdtParams() {
  ml::GbdtParams p;
  p.num_trees = 20;
  p.learning_rate = 0.25;
  p.subsample = 0.8;
  p.tree.max_depth = 3;
  p.tree.lambda = 1.0;
  p.tree.min_samples_leaf = 8;
  p.tree.colsample = 0.35;
  return p;
}

Ps3Model TrainPs3(const PickerContext& ctx, const TrainingData& data,
                  const Ps3Options& options) {
  Ps3Model model;
  model.options = options;

  // 1. Fit the feature normalizer on the raw training features.
  std::vector<const featurize::FeatureMatrix*> raw;
  raw.reserve(data.features.size());
  for (const auto& fm : data.features) raw.push_back(&fm);
  const featurize::FeatureSchema& schema =
      ctx.featurizer->feature_schema();
  model.normalizer.Fit(schema, raw);

  // 2. Stack normalized features into one design matrix and bin it once;
  // the k funnel regressors share the quantization.
  const size_t n_parts = ctx.featurizer->num_partitions();
  const size_t m = schema.num_features();
  const size_t rows = data.num_queries() * n_parts;
  std::vector<double> stacked;
  stacked.reserve(rows * m);
  for (const auto& fm : data.features) {
    featurize::FeatureMatrix norm = fm;  // copy, then normalize in place
    model.normalizer.Apply(&norm);
    stacked.insert(stacked.end(), norm.data.begin(), norm.data.end());
  }
  ml::ConstMatrixView X{stacked.data(), rows, m};
  ml::BinnedDataset binned = ml::BinnedDataset::Build(X);

  // 3. Train the funnel regressors on exponentially-spaced contribution
  // thresholds (§4.3).
  model.thresholds = ChooseThresholds(data.contributions, options.k_models);
  std::array<double, 4> category_gain = {0, 0, 0, 0};
  for (int i = 0; i < options.k_models; ++i) {
    std::vector<double> y =
        MakeFunnelLabels(data.contributions, model.thresholds[i]);
    assert(y.size() == rows);
    ml::GbdtParams params = options.gbdt;
    params.seed = options.gbdt.seed + static_cast<uint64_t>(i) * 7919;
    model.regressors.push_back(ml::Gbdt::Train(binned, y, params));
    // Aggregate gain by feature category for Figure 5.
    const auto& gain = model.regressors.back().feature_gain();
    for (size_t j = 0; j < m; ++j) {
      auto cat = featurize::CategoryOf(schema.def(j).kind);
      category_gain[static_cast<size_t>(cat)] += gain[j];
    }
  }
  double total = category_gain[0] + category_gain[1] + category_gain[2] +
                 category_gain[3];
  if (total > 0.0) {
    for (auto& g : category_gain) g /= total;
  }
  model.category_importance = category_gain;

  // 4. Clustering feature selection (Algorithm 3).
  if (options.feature_selection.enabled) {
    model.excluded_kinds = SelectClusterFeatures(
        ctx, data, model.normalizer, options.cluster_algo,
        options.feature_selection);
  }
  return model;
}

}  // namespace ps3::core
