// Partition contribution and training-label generation (§4.3, Algorithm 4).
#ifndef PS3_CORE_LABELS_H_
#define PS3_CORE_LABELS_H_

#include <vector>

#include "query/evaluator.h"
#include "query/query.h"

namespace ps3::core {

/// Contribution of each partition to a query's answer: the largest relative
/// contribution to any group and any aggregate,
///   max_{g in G} max_j A_{g,i}[j] / A_g[j],
/// floored at 0 and clamped above to keep outlying ratios finite.
std::vector<double> ComputeContributions(
    const query::Query& query,
    const std::vector<query::PartitionAnswer>& per_partition,
    const query::QueryAnswer& exact);

/// Threshold selection for the k funnel models: exponentially spaced pass
/// fractions from "any non-zero contribution" (model 1, threshold 0) down
/// to the top 1% of partition contributions (model k). Thresholds are
/// global quantiles over all training (query, partition) pairs.
std::vector<double> ChooseThresholds(
    const std::vector<std::vector<double>>& contributions, int k_models,
    double top_fraction = 0.01);

/// Label generation for one model (Algorithm 4): per query, partitions with
/// contribution above the threshold get +sqrt(c / positive) and the rest
/// -sqrt(c / negative), so each query's positives carry equal total weight
/// regardless of class imbalance. Returns labels stacked query-major.
std::vector<double> MakeFunnelLabels(
    const std::vector<std::vector<double>>& contributions, double threshold);

}  // namespace ps3::core

#endif  // PS3_CORE_LABELS_H_
