// The PS3 partition picker (Algorithm 1): outliers -> importance funnel ->
// geometric budget allocation -> sample-via-clustering.
#ifndef PS3_CORE_PS3_PICKER_H_
#define PS3_CORE_PS3_PICKER_H_

#include <functional>
#include <vector>

#include "core/picker.h"
#include "core/ps3_model.h"

namespace ps3::core {

/// Replaces the learned regressors with ground truth in the funnel
/// (perfect precision/recall "oracle" of Appendix C.2). Returns the true
/// contribution of every partition for the query.
using OracleFn = std::function<std::vector<double>(const query::Query&)>;

class Ps3Picker : public PartitionPicker {
 public:
  Ps3Picker(const PickerContext& ctx, const Ps3Model* model)
      : ctx_(ctx), model_(model) {}

  std::string name() const override { return "ps3"; }

  Selection Pick(const query::Query& query, size_t budget, RandomEngine* rng,
                 PickTelemetry* telemetry) const override;

  /// Installs an oracle used instead of the trained regressors.
  void set_oracle(OracleFn oracle) { oracle_ = std::move(oracle); }

  // --- exposed for unit tests and benches ---

  /// Outlier partitions (§4.4) among `candidates` for this query, ordered
  /// by ascending bitmap-group size.
  std::vector<size_t> FindOutliers(const query::Query& query,
                                   const std::vector<size_t>& candidates)
      const;

  /// Importance funnel (Algorithm 2); result groups are ordered least to
  /// most important. `scores(p, model_idx)` > 0 advances partition p.
  static std::vector<std::vector<size_t>> ImportanceGroups(
      const std::vector<size_t>& parts,
      const std::function<double(size_t, size_t)>& score, size_t k_models);

  /// Geometric budget allocation: group i (least important first) gets
  /// sampling rate base / alpha^(rank from most important), solved so the
  /// totals sum to `budget`. Returns per-group sample counts.
  static std::vector<size_t> AllocateSamples(
      const std::vector<size_t>& group_sizes, size_t budget, double alpha);

 private:
  PickerContext ctx_;
  const Ps3Model* model_;
  OracleFn oracle_;
};

}  // namespace ps3::core

#endif  // PS3_CORE_PS3_PICKER_H_
