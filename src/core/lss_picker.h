// Modified Learned Stratified Sampling baseline (§5.1.3, Appendix C.1):
// a single offline regressor predicts partition contribution; partitions
// are stratified into equi-width prediction bins, samples are allocated
// proportionally to stratum sizes, and the stratum count is swept on the
// training set per sampling budget (Table 8).
#ifndef PS3_CORE_LSS_PICKER_H_
#define PS3_CORE_LSS_PICKER_H_

#include <vector>

#include "core/picker.h"
#include "core/training_data.h"
#include "featurize/normalizer.h"
#include "ml/gbdt.h"

namespace ps3::core {

struct LssOptions {
  ml::GbdtParams gbdt;
  /// Stratum counts tried during the training sweep.
  std::vector<size_t> strata_candidates = {2, 4, 6, 8, 12};
  /// Budgets (fraction of partitions) the sweep tunes for.
  std::vector<double> tuning_budgets = {0.05, 0.1, 0.2, 0.4};
  /// Training queries used per (budget, strata) evaluation.
  int eval_queries = 6;
  uint64_t seed = 1234;
};

struct LssModel {
  featurize::FeatureNormalizer normalizer;
  ml::Gbdt regressor;
  /// (budget fraction, selected stratum count), ascending by budget.
  std::vector<std::pair<double, size_t>> strata_by_budget;
};

LssModel TrainLss(const PickerContext& ctx, const TrainingData& data,
                  const LssOptions& options);

class LssPicker : public PartitionPicker {
 public:
  LssPicker(const PickerContext& ctx, const LssModel* model)
      : ctx_(ctx), model_(model) {}

  std::string name() const override { return "lss"; }
  Selection Pick(const query::Query& query, size_t budget, RandomEngine* rng,
                 PickTelemetry* telemetry) const override;

  /// Stratified selection given precomputed scores (exposed for tests and
  /// the training sweep).
  static Selection StratifiedSelect(const std::vector<size_t>& candidates,
                                    const std::vector<double>& scores,
                                    size_t budget, size_t n_strata,
                                    RandomEngine* rng);

 private:
  PickerContext ctx_;
  const LssModel* model_;
};

}  // namespace ps3::core

#endif  // PS3_CORE_LSS_PICKER_H_
