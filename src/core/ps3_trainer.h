// Offline training of the PS3 model (§2.3.2): normalizer fitting, funnel
// regressors over Algorithm 4 labels, Figure 5 importance aggregation, and
// the clustering feature selection of Algorithm 3.
#ifndef PS3_CORE_PS3_TRAINER_H_
#define PS3_CORE_PS3_TRAINER_H_

#include "core/picker.h"
#include "core/ps3_model.h"
#include "core/training_data.h"

namespace ps3::core {

/// Trains the complete PS3 model from pre-built training data.
Ps3Model TrainPs3(const PickerContext& ctx, const TrainingData& data,
                  const Ps3Options& options);

}  // namespace ps3::core

#endif  // PS3_CORE_PS3_TRAINER_H_
