#include "core/feature_selection.h"

#include <algorithm>
#include <map>

#include "core/cluster_select.h"
#include "query/metrics.h"

namespace ps3::core {

double EvaluateClusteringError(const PickerContext& ctx,
                               const TrainingData& data,
                               const featurize::FeatureNormalizer& normalizer,
                               ClusterAlgo algo,
                               const std::vector<bool>& excluded_kinds,
                               const std::vector<size_t>& query_indices,
                               double budget_frac, uint64_t seed) {
  const featurize::FeatureSchema& schema = ctx.featurizer->feature_schema();
  const size_t n_parts = ctx.featurizer->num_partitions();
  double total_err = 0.0;
  size_t counted = 0;
  for (size_t qi : query_indices) {
    const auto& raw = data.features[qi];
    // Candidates: perfect-recall selectivity filter (raw upper bound > 0;
    // the cube-root normalization preserves the sign so either works).
    std::vector<size_t> candidates;
    for (size_t p = 0; p < n_parts; ++p) {
      if (raw.At(p, schema.sel_upper_index()) > 0.0) candidates.push_back(p);
    }
    if (candidates.empty()) continue;
    size_t n = std::max<size_t>(
        1, static_cast<size_t>(budget_frac *
                               static_cast<double>(n_parts)));
    n = std::min(n, candidates.size());

    featurize::FeatureMatrix norm = raw;
    normalizer.Apply(&norm);
    ClusterSelectOptions cs;
    cs.algo = algo;
    cs.excluded_kinds = &excluded_kinds;
    cs.kmeans_iters = 8;  // scoring needs relative, not converged, quality
    RandomEngine rng(seed + qi * 1315423911ULL);
    Selection sel =
        ClusterSelect(norm, schema, candidates, n, cs, &rng);
    auto estimate =
        query::CombineWeighted(data.queries[qi], data.answers[qi], sel.parts);
    total_err += query::ComputeErrorMetrics(data.queries[qi], data.exact[qi],
                                            estimate)
                     .avg_rel_error;
    ++counted;
  }
  return counted > 0 ? total_err / static_cast<double>(counted) : 0.0;
}

std::vector<bool> SelectClusterFeatures(
    const PickerContext& ctx, const TrainingData& data,
    const featurize::FeatureNormalizer& normalizer, ClusterAlgo algo,
    const FeatureSelectionOptions& options) {
  RandomEngine rng(options.seed);
  // Evaluation queries: a fixed random subset of the training workload.
  std::vector<size_t> eval_queries;
  {
    size_t want = std::min<size_t>(
        static_cast<size_t>(std::max(1, options.eval_queries)),
        data.num_queries());
    eval_queries = SampleWithoutReplacement(data.num_queries(), want, &rng);
  }

  // Memoize candidate scores by exclusion bitmask.
  std::map<uint32_t, double> cache;
  auto score = [&](const std::vector<bool>& excluded) {
    uint32_t key = 0;
    for (int k = 0; k < featurize::kNumStatKinds; ++k) {
      if (excluded[static_cast<size_t>(k)]) key |= 1u << k;
    }
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    double err = EvaluateClusteringError(ctx, data, normalizer, algo,
                                         excluded, eval_queries,
                                         options.budget_frac, options.seed);
    cache.emplace(key, err);
    return err;
  };

  std::vector<bool> best(featurize::kNumStatKinds, false);
  double best_err = score(best);

  std::vector<int> kinds(featurize::kNumStatKinds);
  for (int k = 0; k < featurize::kNumStatKinds; ++k) kinds[k] = k;

  for (int restart = 0; restart < options.restarts; ++restart) {
    Shuffle(&kinds, &rng);  // explore kinds in a random order
    std::vector<bool> excluded(featurize::kNumStatKinds, false);
    double cur_err = score(excluded);
    for (int k : kinds) {
      std::vector<bool> trial = excluded;
      trial[static_cast<size_t>(k)] = true;
      // Never exclude everything.
      if (std::all_of(trial.begin(), trial.end(),
                      [](bool b) { return b; })) {
        continue;
      }
      double err = score(trial);
      if (err < cur_err) {
        excluded = std::move(trial);
        cur_err = err;
      }
    }
    if (cur_err < best_err) {
      best = excluded;
      best_err = cur_err;
    }
  }
  return best;
}

}  // namespace ps3::core
