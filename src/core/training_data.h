// Shared training corpus: for each training query, its raw feature matrix,
// exact per-partition answers and contribution labels. Built once per
// (dataset, layout, workload) and reused by the PS3 trainer, the LSS
// baseline and the clustering feature selection.
#ifndef PS3_CORE_TRAINING_DATA_H_
#define PS3_CORE_TRAINING_DATA_H_

#include <vector>

#include "core/picker.h"
#include "featurize/featurizer.h"
#include "query/evaluator.h"
#include "query/query.h"

namespace ps3::core {

struct TrainingData {
  std::vector<query::Query> queries;
  /// Raw (unnormalized) feature matrices, one per query.
  std::vector<featurize::FeatureMatrix> features;
  /// Exact per-partition answers, one vector per query.
  std::vector<std::vector<query::PartitionAnswer>> answers;
  /// Exact full answers.
  std::vector<query::QueryAnswer> exact;
  /// Partition contributions (§4.3).
  std::vector<std::vector<double>> contributions;

  size_t num_queries() const { return queries.size(); }
};

/// Evaluates every query on every partition and featurizes it.
TrainingData BuildTrainingData(const PickerContext& ctx,
                               std::vector<query::Query> queries);

}  // namespace ps3::core

#endif  // PS3_CORE_TRAINING_DATA_H_
