// The degenerate picker that reads everything: every partition, weight 1,
// regardless of budget. SubmitApproximate with an ExactPicker *is* the
// exact scan — same partitions, same weights, bit-identical answer with a
// zero error estimate — which makes it the baseline row of the PS3_PICKER
// bench dimension and the anchor of the approximate-path determinism
// property (fraction 1.0 / uniform weights == exact, bit for bit).
#ifndef PS3_CORE_EXACT_PICKER_H_
#define PS3_CORE_EXACT_PICKER_H_

#include <cstddef>
#include <string>

#include "core/picker.h"

namespace ps3::core {

class ExactPicker : public PartitionPicker {
 public:
  explicit ExactPicker(size_t num_partitions) : n_(num_partitions) {}
  explicit ExactPicker(const PickerContext& ctx)
      : n_(ctx.table->num_partitions()) {}

  std::string name() const override { return "exact"; }

  /// Ignores the budget by design: "exact" means no pruning, so the
  /// serving path scans everything and the HT weights are all 1.
  Selection Pick(const query::Query& query, size_t budget, RandomEngine* rng,
                 PickTelemetry* telemetry) const override {
    (void)query;
    (void)budget;
    (void)rng;
    (void)telemetry;
    Selection sel;
    sel.parts.reserve(n_);
    for (size_t i = 0; i < n_; ++i) sel.parts.push_back({i, 1.0});
    return sel;
  }

 private:
  size_t n_;
};

}  // namespace ps3::core

#endif  // PS3_CORE_EXACT_PICKER_H_
