// Common interface for partition pickers: given a query and a sampling
// budget (number of partitions to read), produce weighted partition
// choices (§2.4).
#ifndef PS3_CORE_PICKER_H_
#define PS3_CORE_PICKER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "featurize/featurizer.h"
#include "query/evaluator.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "storage/table.h"

namespace ps3::core {

/// Everything a picker may consult at query-optimization time. Note that
/// pickers never touch raw partition data — only statistics.
struct PickerContext {
  const storage::PartitionedTable* table = nullptr;
  const stats::TableStats* stats = nullptr;
  const featurize::Featurizer* featurizer = nullptr;
};

struct Selection {
  std::vector<query::WeightedPartition> parts;

  size_t NumPartitions() const { return parts.size(); }
};

/// Optional instrumentation filled by Pick (Table 5).
struct PickTelemetry {
  double total_ms = 0.0;
  double clustering_ms = 0.0;
};

class PartitionPicker {
 public:
  virtual ~PartitionPicker() = default;
  virtual std::string name() const = 0;

  /// Chooses at most `budget` partitions and their weights.
  virtual Selection Pick(const query::Query& query, size_t budget,
                         RandomEngine* rng,
                         PickTelemetry* telemetry = nullptr) const = 0;
};

}  // namespace ps3::core

#endif  // PS3_CORE_PICKER_H_
