// Sample-via-clustering (§4.2): cluster a set of candidate partitions on
// their (normalized, masked) feature vectors and return one weighted
// exemplar per cluster. Shared by the PS3 picker, the feature selection
// search, and the clustering benchmarks.
#ifndef PS3_CORE_CLUSTER_SELECT_H_
#define PS3_CORE_CLUSTER_SELECT_H_

#include <vector>

#include "common/random.h"
#include "core/picker.h"
#include "core/ps3_model.h"
#include "featurize/feature_schema.h"
#include "featurize/featurizer.h"

namespace ps3::core {

struct ClusterSelectOptions {
  ClusterAlgo algo = ClusterAlgo::kKMeans;
  bool unbiased_exemplar = false;
  /// Per-StatKind exclusion mask for the distance computation, or null.
  const std::vector<bool>* excluded_kinds = nullptr;
  /// Lloyd iteration cap; selection quality saturates quickly, so callers
  /// on hot paths (feature selection, near-full budgets) lower this.
  int kmeans_iters = 25;
};

/// Clusters `members` (partition ids) into `n_clusters` groups using the
/// rows of `normalized` as coordinates and returns one exemplar per
/// cluster, weighted by cluster size. Requires 1 <= n_clusters <=
/// members.size().
Selection ClusterSelect(const featurize::FeatureMatrix& normalized,
                        const featurize::FeatureSchema& schema,
                        const std::vector<size_t>& members, size_t n_clusters,
                        const ClusterSelectOptions& options,
                        RandomEngine* rng);

/// Extracts clustering coordinates for `members`: feature dimensions that
/// are not excluded by kind and not constant across members.
std::vector<std::vector<double>> BuildClusterPoints(
    const featurize::FeatureMatrix& normalized,
    const featurize::FeatureSchema& schema,
    const std::vector<size_t>& members,
    const std::vector<bool>* excluded_kinds);

}  // namespace ps3::core

#endif  // PS3_CORE_CLUSTER_SELECT_H_
