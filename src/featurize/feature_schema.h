// Feature-vector schema (§3.2, Table 2). The schema is determined entirely
// by the table schema, so all queries over a dataset share it. Each
// feature is identified by a statistic kind (the granularity at which the
// clustering feature selection of Algorithm 3 operates) and, except for
// the query-level selectivity features, a column.
#ifndef PS3_FEATURIZE_FEATURE_SCHEMA_H_
#define PS3_FEATURIZE_FEATURE_SCHEMA_H_

#include <string>
#include <vector>

#include "stats/table_stats.h"
#include "storage/schema.h"

namespace ps3::featurize {

enum class StatKind : int {
  // Query-specific selectivity estimates (§3.2).
  kSelUpper = 0,
  kSelIndep,
  kSelMin,
  kSelMax,
  // Occurrence bitmap of global heavy hitters (grouping columns only).
  kHhBitmap,
  // Measures.
  kMean,
  kMeanSq,
  kStd,
  kMin,
  kMax,
  kLogMean,
  kLogMeanSq,
  kLogMin,
  kLogMax,
  // Distinct values (AKMV).
  kNumDv,
  kAvgDv,
  kMaxDv,
  kMinDv,
  kSumDv,
  // Heavy hitters.
  kNumHh,
  kAvgHh,
  kMaxHh,
};

inline constexpr int kNumStatKinds = 22;

/// The four feature families of Figure 5.
enum class FeatureCategory {
  kSelectivity,
  kMeasure,
  kDistinctValue,
  kHeavyHitter,
};

FeatureCategory CategoryOf(StatKind kind);
const char* StatKindName(StatKind kind);
const char* FeatureCategoryName(FeatureCategory cat);

struct FeatureDef {
  StatKind kind;
  int column;  ///< -1 for query-level (selectivity) features
  int bit;     ///< bitmap bit index, -1 otherwise
  std::string name;
};

class FeatureSchema {
 public:
  /// Derives the feature layout from the table schema and the bitmap
  /// configuration recorded in `stats` (which grouping columns carry
  /// occurrence bitmaps and how many bits each has).
  static FeatureSchema Build(const storage::Schema& schema,
                             const stats::TableStats& stats);

  size_t num_features() const { return defs_.size(); }
  const FeatureDef& def(size_t i) const { return defs_[i]; }
  const std::vector<FeatureDef>& defs() const { return defs_; }

  /// Indices of the four selectivity features.
  size_t sel_upper_index() const { return sel_upper_; }
  size_t sel_indep_index() const { return sel_indep_; }
  size_t sel_min_index() const { return sel_min_; }
  size_t sel_max_index() const { return sel_max_; }

 private:
  std::vector<FeatureDef> defs_;
  size_t sel_upper_ = 0, sel_indep_ = 0, sel_min_ = 0, sel_max_ = 0;
};

}  // namespace ps3::featurize

#endif  // PS3_FEATURIZE_FEATURE_SCHEMA_H_
