// Builds per-partition feature matrices for a query: precomputed column
// statistics, query-dependent column masking, and query-specific
// selectivity estimates (§3.2).
#ifndef PS3_FEATURIZE_FEATURIZER_H_
#define PS3_FEATURIZE_FEATURIZER_H_

#include <vector>

#include "featurize/feature_schema.h"
#include "featurize/selectivity.h"
#include "query/query.h"
#include "stats/table_stats.h"
#include "storage/schema.h"

namespace ps3::runtime {
class WorkerPool;
}  // namespace ps3::runtime

namespace ps3::featurize {

/// Dense row-major matrix of partition features (N partitions x M features).
struct FeatureMatrix {
  size_t n = 0;
  size_t m = 0;
  std::vector<double> data;

  FeatureMatrix() = default;
  FeatureMatrix(size_t rows, size_t cols)
      : n(rows), m(cols), data(rows * cols, 0.0) {}

  double& At(size_t i, size_t j) { return data[i * m + j]; }
  double At(size_t i, size_t j) const { return data[i * m + j]; }
  const double* Row(size_t i) const { return data.data() + i * m; }
  double* Row(size_t i) { return data.data() + i * m; }
};

class Featurizer {
 public:
  /// Precomputes the static (query-independent) feature matrix.
  /// `num_threads` controls the per-partition parallelism of
  /// ComputeSelectivity / BuildFeatures (0 = hardware); results are
  /// identical for any value (partitions are independent, reductions are
  /// index-ordered). `pool` selects the resident pool those passes run on
  /// (nullptr = the process-wide shared pool); under concurrent admission
  /// `num_threads` is also this featurizer's lane cap per pass.
  Featurizer(const storage::Schema& schema, const stats::TableStats* stats,
             int num_threads = 0, runtime::WorkerPool* pool = nullptr);

  const FeatureSchema& feature_schema() const { return schema_; }
  const stats::TableStats& stats() const { return *stats_; }
  size_t num_partitions() const { return stats_->num_partitions(); }

  /// Full (unnormalized) feature matrix for a query: static features with
  /// unused columns masked to zero, plus the selectivity features.
  FeatureMatrix BuildFeatures(const query::Query& query) const;

  /// Selectivity features only, one entry per partition (cheaper than
  /// BuildFeatures; used by the predicate filter of every method).
  std::vector<SelectivityFeatures> ComputeSelectivity(
      const query::Query& query) const;

 private:
  storage::Schema table_schema_;
  const stats::TableStats* stats_;
  int num_threads_;
  runtime::WorkerPool* pool_;
  FeatureSchema schema_;
  FeatureMatrix static_features_;
  // For masking: per feature, the column it belongs to (-1 = query level).
  std::vector<int> feature_column_;
};

}  // namespace ps3::featurize

#endif  // PS3_FEATURIZE_FEATURIZER_H_
