#include "featurize/featurizer.h"

#include <cassert>

#include "runtime/worker_pool.h"

namespace ps3::featurize {

namespace {

double StaticFeatureValue(const stats::TableStats& stats, size_t part,
                          const FeatureDef& def) {
  const stats::ColumnStats& cs =
      stats.partition(part).columns[static_cast<size_t>(def.column)];
  switch (def.kind) {
    case StatKind::kMean:
      return cs.measures.mean();
    case StatKind::kMeanSq:
      return cs.measures.mean_sq();
    case StatKind::kStd:
      return cs.measures.std_dev();
    case StatKind::kMin:
      return cs.measures.min();
    case StatKind::kMax:
      return cs.measures.max();
    case StatKind::kLogMean:
      return cs.measures.log_mean();
    case StatKind::kLogMeanSq:
      return cs.measures.log_mean_sq();
    case StatKind::kLogMin:
      return cs.measures.has_log() ? cs.measures.log_min() : 0.0;
    case StatKind::kLogMax:
      return cs.measures.has_log() ? cs.measures.log_max() : 0.0;
    case StatKind::kNumDv:
      return cs.akmv.EstimateDistinct();
    case StatKind::kAvgDv:
      return cs.akmv.avg_frequency();
    case StatKind::kMaxDv:
      return cs.akmv.max_frequency();
    case StatKind::kMinDv:
      return cs.akmv.min_frequency();
    case StatKind::kSumDv:
      return cs.akmv.sum_frequency();
    case StatKind::kNumHh:
      return static_cast<double>(cs.heavy_hitters.NumHeavyHitters());
    case StatKind::kAvgHh:
      return cs.heavy_hitters.AvgFrequency();
    case StatKind::kMaxHh:
      return cs.heavy_hitters.MaxFrequency();
    case StatKind::kHhBitmap: {
      const auto& bm = stats.occurrence_bitmap(
          part, static_cast<size_t>(def.column));
      return def.bit < static_cast<int>(bm.size())
                 ? static_cast<double>(bm[def.bit])
                 : 0.0;
    }
    default:
      return 0.0;  // selectivity features are query-specific
  }
}

}  // namespace

Featurizer::Featurizer(const storage::Schema& schema,
                       const stats::TableStats* stats, int num_threads,
                       runtime::WorkerPool* pool)
    : table_schema_(schema),
      stats_(stats),
      num_threads_(num_threads),
      pool_(pool) {
  schema_ = FeatureSchema::Build(schema, *stats);
  const size_t n = stats->num_partitions();
  const size_t m = schema_.num_features();
  static_features_ = FeatureMatrix(n, m);
  feature_column_.resize(m);
  for (size_t j = 0; j < m; ++j) {
    feature_column_[j] = schema_.def(j).column;
  }
  for (size_t p = 0; p < n; ++p) {
    for (size_t j = 0; j < m; ++j) {
      if (feature_column_[j] < 0) continue;
      static_features_.At(p, j) = StaticFeatureValue(*stats, p,
                                                     schema_.def(j));
    }
  }
}

FeatureMatrix Featurizer::BuildFeatures(const query::Query& query) const {
  FeatureMatrix out = static_features_;
  const auto used = query.UsedColumns();
  // Mask: zero features of columns the query does not touch.
  std::vector<bool> column_used(table_schema_.num_columns(), false);
  for (size_t c : used) column_used[c] = true;
  for (size_t j = 0; j < out.m; ++j) {
    int col = feature_column_[j];
    if (col >= 0 && !column_used[static_cast<size_t>(col)]) {
      for (size_t p = 0; p < out.n; ++p) out.At(p, j) = 0.0;
    }
  }
  // Query-specific selectivity features.
  auto sel = ComputeSelectivity(query);
  for (size_t p = 0; p < out.n; ++p) {
    out.At(p, schema_.sel_upper_index()) = sel[p].upper;
    out.At(p, schema_.sel_indep_index()) = sel[p].indep;
    out.At(p, schema_.sel_min_index()) = sel[p].min_clause;
    out.At(p, schema_.sel_max_index()) = sel[p].max_clause;
  }
  return out;
}

std::vector<SelectivityFeatures> Featurizer::ComputeSelectivity(
    const query::Query& query) const {
  std::vector<SelectivityFeatures> out(stats_->num_partitions());
  // Per-partition estimation is cheap sketch arithmetic; below this
  // partition count even waking the resident pool costs more than it saves.
  constexpr size_t kParallelThreshold = 64;
  if (out.size() < kParallelThreshold) {
    for (size_t p = 0; p < out.size(); ++p) {
      out[p] = EstimateSelectivity(query, stats_->partition(p));
    }
    return out;
  }
  runtime::WorkerPool& pool =
      pool_ != nullptr ? *pool_ : runtime::WorkerPool::Shared();
  pool.ParallelFor(
      out.size(),
      [&](size_t p) {
        out[p] = EstimateSelectivity(query, stats_->partition(p));
      },
      num_threads_);
  return out;
}

}  // namespace ps3::featurize
