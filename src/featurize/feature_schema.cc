#include "featurize/feature_schema.h"

#include "common/string_util.h"

namespace ps3::featurize {

FeatureCategory CategoryOf(StatKind kind) {
  switch (kind) {
    case StatKind::kSelUpper:
    case StatKind::kSelIndep:
    case StatKind::kSelMin:
    case StatKind::kSelMax:
      return FeatureCategory::kSelectivity;
    case StatKind::kHhBitmap:
    case StatKind::kNumHh:
    case StatKind::kAvgHh:
    case StatKind::kMaxHh:
      return FeatureCategory::kHeavyHitter;
    case StatKind::kNumDv:
    case StatKind::kAvgDv:
    case StatKind::kMaxDv:
    case StatKind::kMinDv:
    case StatKind::kSumDv:
      return FeatureCategory::kDistinctValue;
    default:
      return FeatureCategory::kMeasure;
  }
}

const char* StatKindName(StatKind kind) {
  switch (kind) {
    case StatKind::kSelUpper:
      return "selectivity_upper";
    case StatKind::kSelIndep:
      return "selectivity_indep";
    case StatKind::kSelMin:
      return "selectivity_min";
    case StatKind::kSelMax:
      return "selectivity_max";
    case StatKind::kHhBitmap:
      return "hh_bitmap";
    case StatKind::kMean:
      return "x";
    case StatKind::kMeanSq:
      return "x2";
    case StatKind::kStd:
      return "std";
    case StatKind::kMin:
      return "min(x)";
    case StatKind::kMax:
      return "max(x)";
    case StatKind::kLogMean:
      return "log(x)";
    case StatKind::kLogMeanSq:
      return "log2(x)";
    case StatKind::kLogMin:
      return "min(log(x))";
    case StatKind::kLogMax:
      return "max(log(x))";
    case StatKind::kNumDv:
      return "#dv";
    case StatKind::kAvgDv:
      return "avg_dv";
    case StatKind::kMaxDv:
      return "max_dv";
    case StatKind::kMinDv:
      return "min_dv";
    case StatKind::kSumDv:
      return "sum_dv";
    case StatKind::kNumHh:
      return "#hh";
    case StatKind::kAvgHh:
      return "avg_hh";
    case StatKind::kMaxHh:
      return "max_hh";
  }
  return "?";
}

const char* FeatureCategoryName(FeatureCategory cat) {
  switch (cat) {
    case FeatureCategory::kSelectivity:
      return "selectivity";
    case FeatureCategory::kMeasure:
      return "measure";
    case FeatureCategory::kDistinctValue:
      return "dv";
    case FeatureCategory::kHeavyHitter:
      return "hh";
  }
  return "?";
}

FeatureSchema FeatureSchema::Build(const storage::Schema& schema,
                                   const stats::TableStats& stats) {
  FeatureSchema fs;
  auto add = [&fs](StatKind kind, int column, int bit, std::string name) {
    fs.defs_.push_back({kind, column, bit, std::move(name)});
    return fs.defs_.size() - 1;
  };

  // Query-level selectivity features first.
  fs.sel_upper_ = add(StatKind::kSelUpper, -1, -1, "selectivity_upper");
  fs.sel_indep_ = add(StatKind::kSelIndep, -1, -1, "selectivity_indep");
  fs.sel_min_ = add(StatKind::kSelMin, -1, -1, "selectivity_min");
  fs.sel_max_ = add(StatKind::kSelMax, -1, -1, "selectivity_max");

  static constexpr StatKind kMeasureKinds[] = {
      StatKind::kMean,   StatKind::kMeanSq,    StatKind::kStd,
      StatKind::kMin,    StatKind::kMax,       StatKind::kLogMean,
      StatKind::kLogMeanSq, StatKind::kLogMin, StatKind::kLogMax,
  };
  static constexpr StatKind kDvKinds[] = {
      StatKind::kNumDv, StatKind::kAvgDv, StatKind::kMaxDv,
      StatKind::kMinDv, StatKind::kSumDv,
  };
  static constexpr StatKind kHhKinds[] = {
      StatKind::kNumHh,
      StatKind::kAvgHh,
      StatKind::kMaxHh,
  };

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const std::string& col = schema.field(c).name;
    // Measure sketches do not apply to categorical columns (§3.2 zeroes
    // them); we simply omit those features, which is equivalent and keeps
    // the vector small.
    if (schema.IsNumeric(c)) {
      for (StatKind k : kMeasureKinds) {
        add(k, static_cast<int>(c), -1,
            std::string(StatKindName(k)) + ":" + col);
      }
    }
    for (StatKind k : kDvKinds) {
      add(k, static_cast<int>(c), -1,
          std::string(StatKindName(k)) + ":" + col);
    }
    for (StatKind k : kHhKinds) {
      add(k, static_cast<int>(c), -1,
          std::string(StatKindName(k)) + ":" + col);
    }
    if (stats.num_partitions() > 0 && stats.has_bitmap(c)) {
      size_t bits = stats.global_heavy_hitters(c).size();
      for (size_t b = 0; b < bits; ++b) {
        add(StatKind::kHhBitmap, static_cast<int>(c), static_cast<int>(b),
            StrFormat("hh_bitmap[%zu]:%s", b, col.c_str()));
      }
    }
  }
  return fs;
}

}  // namespace ps3::featurize
