#include "featurize/selectivity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/math_util.h"

namespace ps3::featurize {

namespace {

using query::Clause;
using query::CompareOp;
using query::Predicate;
using stats::ColumnStats;
using stats::PartitionStats;

/// (lower bound, estimate, upper bound) for one predicate subtree.
struct SelTriple {
  double lower = 0.0;
  double est = 0.0;
  double upper = 0.0;
};

/// Numeric interval with open/closed endpoints.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_incl = true;
  bool hi_incl = true;
  bool empty = false;

  void IntersectWith(const Interval& o) {
    if (o.lo > lo || (o.lo == lo && !o.lo_incl)) {
      lo = o.lo;
      lo_incl = o.lo_incl;
    }
    if (o.hi < hi || (o.hi == hi && !o.hi_incl)) {
      hi = o.hi;
      hi_incl = o.hi_incl;
    }
    if (lo > hi || (lo == hi && !(lo_incl && hi_incl))) empty = true;
  }
};

Interval ClauseToInterval(const Clause& c) {
  Interval iv;
  switch (c.op) {
    case CompareOp::kLt:
      iv.hi = c.value;
      iv.hi_incl = false;
      break;
    case CompareOp::kLe:
      iv.hi = c.value;
      break;
    case CompareOp::kGt:
      iv.lo = c.value;
      iv.lo_incl = false;
      break;
    case CompareOp::kGe:
      iv.lo = c.value;
      break;
    case CompareOp::kEq:
      iv.lo = iv.hi = c.value;
      break;
    case CompareOp::kNe:
      break;  // handled separately (not interval-shaped)
  }
  return iv;
}

/// Evaluates a numeric interval clause against a column's sketches.
SelTriple EvalInterval(const ColumnStats& cs, const Interval& iv) {
  SelTriple t;
  if (iv.empty) return t;
  const auto& hist = cs.histogram;
  if (hist.total_count() == 0) return t;
  // Clip infinite endpoints to the observed min/max; a clipped endpoint is
  // always inclusive (the original constraint is slack there).
  double lo = iv.lo, hi = iv.hi;
  bool lo_incl = iv.lo_incl, hi_incl = iv.hi_incl;
  if (lo < hist.min()) {
    lo = hist.min();
    lo_incl = true;
  }
  if (hi > hist.max()) {
    hi = hist.max();
    hi_incl = true;
  }
  if (lo > hi) return t;
  auto bounds = hist.RangeSelectivityBounds(lo, hi, lo_incl, hi_incl);
  t.lower = bounds.lower;
  t.upper = bounds.upper;
  if (iv.lo == iv.hi) {
    // Point predicate: interpolation degenerates, use the density model.
    t.est = hist.PointSelectivity(iv.lo);
    t.lower = 0.0;
  } else {
    t.est = hist.RangeSelectivity(lo, hi, iv.lo_incl, iv.hi_incl);
  }
  t.est = Clamp(t.est, t.lower, t.upper);
  return t;
}

/// Evaluates a categorical IN clause (set of codes) against sketches.
SelTriple EvalIn(const ColumnStats& cs, const std::set<int32_t>& codes) {
  SelTriple t;
  if (codes.empty()) return t;
  if (cs.exact_freq.valid()) {
    double f = 0.0;
    for (int32_t code : codes) f += cs.exact_freq.Frequency(code);
    t.lower = t.est = t.upper = std::min(1.0, f);
    return t;
  }
  // Fall back to heavy hitters: a tracked code contributes its measured
  // frequency; an untracked code may still be present with frequency below
  // the support threshold.
  const double n = static_cast<double>(cs.heavy_hitters.rows_seen());
  if (n == 0) return t;
  const double support = cs.heavy_hitters.support();
  auto items = cs.heavy_hitters.Items();
  double hh_mass = 0.0;
  for (const auto& e : items) hh_mass += static_cast<double>(e.count) / n;
  double residual = std::max(0.0, 1.0 - hh_mass);
  double ndv = std::max(1.0, cs.akmv.EstimateDistinct());
  double residual_share =
      residual / std::max(1.0, ndv - static_cast<double>(items.size()));
  for (int32_t code : codes) {
    const sketch::HeavyHitterEntry* found = nullptr;
    for (const auto& e : items) {
      if (e.key == code) {
        found = &e;
        break;
      }
    }
    if (found != nullptr) {
      double f = static_cast<double>(found->count) / n;
      t.lower += f;
      t.est += f;
      t.upper += std::min(1.0, f + support / 10.0);  // lossy-counting slack
    } else {
      // Possibly present but below the support threshold.
      t.est += residual_share;
      t.upper += std::min(support, residual);
    }
  }
  t.lower = Clamp(t.lower, 0.0, 1.0);
  t.upper = Clamp(t.upper, 0.0, 1.0);
  t.est = Clamp(t.est, t.lower, t.upper);
  return t;
}

SelTriple Invert(const SelTriple& t) {
  return SelTriple{1.0 - t.upper, 1.0 - t.est, 1.0 - t.lower};
}

class Estimator {
 public:
  explicit Estimator(const PartitionStats& ps) : ps_(ps) {}

  SelTriple EvalNode(const Predicate& p) {
    switch (p.kind()) {
      case Predicate::Kind::kTrue:
        return {1.0, 1.0, 1.0};
      case Predicate::Kind::kClause:
        return EvalLeaf(p.clause());
      case Predicate::Kind::kNot: {
        SelTriple t = Invert(EvalNode(*p.children()[0]));
        return t;
      }
      case Predicate::Kind::kAnd:
        return EvalAnd(p);
      case Predicate::Kind::kOr:
        return EvalOr(p);
    }
    return {};
  }

  const std::vector<double>& clause_estimates() const {
    return clause_ests_;
  }

 private:
  SelTriple Record(SelTriple t) {
    clause_ests_.push_back(t.est);
    return t;
  }

  SelTriple EvalLeaf(const Clause& c) {
    const ColumnStats& cs = ps_.columns[c.column];
    if (c.categorical) {
      return Record(EvalIn(cs, {c.in_codes.begin(), c.in_codes.end()}));
    }
    if (c.op == CompareOp::kNe) {
      Interval iv;
      iv.lo = iv.hi = c.value;
      return Record(Invert(EvalInterval(cs, iv)));
    }
    return Record(EvalInterval(cs, ClauseToInterval(c)));
  }

  /// AND: intersect numeric intervals / categorical IN-sets per column
  /// before estimation ("clauses on the same column evaluated jointly").
  SelTriple EvalAnd(const Predicate& p) {
    std::map<size_t, Interval> intervals;
    std::map<size_t, std::set<int32_t>> in_sets;
    std::vector<SelTriple> parts;
    for (const auto& child : p.children()) {
      if (child->kind() == Predicate::Kind::kClause) {
        const Clause& c = child->clause();
        if (!c.categorical && c.op != CompareOp::kNe) {
          auto [it, fresh] = intervals.try_emplace(c.column,
                                                   ClauseToInterval(c));
          if (!fresh) it->second.IntersectWith(ClauseToInterval(c));
          continue;
        }
        if (c.categorical) {
          std::set<int32_t> codes(c.in_codes.begin(), c.in_codes.end());
          auto [it, fresh] = in_sets.try_emplace(c.column, std::move(codes));
          if (!fresh) {
            std::set<int32_t> merged;
            std::set_intersection(it->second.begin(), it->second.end(),
                                  codes.begin(), codes.end(),
                                  std::inserter(merged, merged.begin()));
            it->second = std::move(merged);
          }
          continue;
        }
      }
      parts.push_back(EvalNode(*child));
    }
    for (const auto& [col, iv] : intervals) {
      parts.push_back(Record(EvalInterval(ps_.columns[col], iv)));
    }
    for (const auto& [col, codes] : in_sets) {
      parts.push_back(Record(EvalIn(ps_.columns[col], codes)));
    }
    SelTriple out{1.0, 1.0, 1.0};
    double frechet = 1.0 - static_cast<double>(parts.size());
    for (const auto& t : parts) {
      out.upper = std::min(out.upper, t.upper);
      out.est *= t.est;
      frechet += t.lower;
    }
    out.lower = Clamp(frechet, 0.0, out.upper);
    out.est = Clamp(out.est, out.lower, out.upper);
    return out;
  }

  /// OR: union categorical IN-sets per column; per the paper the `indep`
  /// estimate of an OR is the min of its clause estimates.
  SelTriple EvalOr(const Predicate& p) {
    std::map<size_t, std::set<int32_t>> in_sets;
    std::vector<SelTriple> parts;
    for (const auto& child : p.children()) {
      if (child->kind() == Predicate::Kind::kClause &&
          child->clause().categorical) {
        const Clause& c = child->clause();
        auto& codes = in_sets[c.column];
        codes.insert(c.in_codes.begin(), c.in_codes.end());
        continue;
      }
      parts.push_back(EvalNode(*child));
    }
    for (const auto& [col, codes] : in_sets) {
      parts.push_back(Record(EvalIn(ps_.columns[col], codes)));
    }
    SelTriple out{0.0, 0.0, 0.0};
    bool first = true;
    for (const auto& t : parts) {
      out.upper += t.upper;
      out.lower = std::max(out.lower, t.lower);
      out.est = first ? t.est : std::min(out.est, t.est);
      first = false;
    }
    out.upper = Clamp(out.upper, 0.0, 1.0);
    out.est = Clamp(out.est, out.lower, out.upper);
    return out;
  }

  const PartitionStats& ps_;
  std::vector<double> clause_ests_;
};

}  // namespace

SelectivityFeatures EstimateSelectivity(const query::Query& query,
                                        const stats::PartitionStats& ps) {
  SelectivityFeatures out;
  if (!query.predicate ||
      query.predicate->kind() == Predicate::Kind::kTrue) {
    out.lower = 1.0;
    return out;
  }
  Estimator est(ps);
  SelTriple t = est.EvalNode(*query.predicate);
  out.upper = t.upper;
  out.indep = t.est;
  out.lower = t.lower;
  const auto& clause_ests = est.clause_estimates();
  if (!clause_ests.empty()) {
    out.min_clause = *std::min_element(clause_ests.begin(),
                                       clause_ests.end());
    out.max_clause = *std::max_element(clause_ests.begin(),
                                       clause_ests.end());
  }
  return out;
}

}  // namespace ps3::featurize
