#include "featurize/normalizer.h"

#include <cassert>
#include <cmath>

namespace ps3::featurize {

double FeatureNormalizer::Transform(StatKind kind, double v) {
  if (CategoryOf(kind) == FeatureCategory::kSelectivity) {
    return std::cbrt(v);
  }
  // Signed log1p keeps ordering and handles negatives (e.g. min(x)).
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

void FeatureNormalizer::Fit(const FeatureSchema& schema,
                            const std::vector<const FeatureMatrix*>& training) {
  const size_t m = schema.num_features();
  kinds_.resize(m);
  for (size_t j = 0; j < m; ++j) kinds_[j] = schema.def(j).kind;
  scale_.assign(m, 1.0);

  std::vector<double> sum(m, 0.0);
  size_t rows = 0;
  for (const FeatureMatrix* fm : training) {
    assert(fm->m == m);
    for (size_t i = 0; i < fm->n; ++i) {
      const double* row = fm->Row(i);
      for (size_t j = 0; j < m; ++j) {
        sum[j] += std::fabs(Transform(kinds_[j], row[j]));
      }
    }
    rows += fm->n;
  }
  if (rows == 0) return;
  for (size_t j = 0; j < m; ++j) {
    double mean = sum[j] / static_cast<double>(rows);
    // Average is more robust to outliers than max (Appendix B.1). Features
    // that are identically ~0 in training keep scale 1.
    scale_[j] = mean > 1e-12 ? mean : 1.0;
  }
}

void FeatureNormalizer::Serialize(BinaryWriter* w) const {
  w->PutU32(static_cast<uint32_t>(kinds_.size()));
  for (StatKind k : kinds_) w->PutI32(static_cast<int32_t>(k));
  w->PutDoubleVector(scale_);
}

Result<FeatureNormalizer> FeatureNormalizer::Deserialize(BinaryReader* r) {
  FeatureNormalizer norm;
  auto count = r->GetU32();
  if (!count.ok()) return count.status();
  norm.kinds_.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto k = r->GetI32();
    if (!k.ok()) return k.status();
    if (*k < 0 || *k >= kNumStatKinds) {
      return Status::OutOfRange("corrupt normalizer: bad StatKind");
    }
    norm.kinds_.push_back(static_cast<StatKind>(*k));
  }
  auto scale = r->GetDoubleVector();
  if (!scale.ok()) return scale.status();
  norm.scale_ = std::move(scale).value();
  if (norm.scale_.size() != norm.kinds_.size()) {
    return Status::OutOfRange("corrupt normalizer: size mismatch");
  }
  return norm;
}

void FeatureNormalizer::Apply(FeatureMatrix* features) const {
  assert(fitted());
  assert(features->m == scale_.size());
  for (size_t i = 0; i < features->n; ++i) {
    double* row = features->Row(i);
    for (size_t j = 0; j < features->m; ++j) {
      row[j] = Transform(kinds_[j], row[j]) / scale_[j];
    }
  }
}

}  // namespace ps3::featurize
