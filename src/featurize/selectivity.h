// Query-specific selectivity estimation from per-partition sketches
// (§3.2). Produces the four selectivity features plus a hard lower bound:
//   - upper: sound upper bound on the fraction of rows matching the
//     predicate (upper == 0 implies no row matches -> partition prunable
//     with perfect recall);
//   - indep: estimate assuming clause independence (per the paper: product
//     for ANDs, min of clause selectivities for ORs);
//   - min/max: min and max of the individual clause estimates;
//   - lower: sound lower bound (used for negations).
//
// Clauses on the same column under one AND/OR are evaluated jointly
// (intervals intersected, IN-sets intersected/unioned) before estimation.
#ifndef PS3_FEATURIZE_SELECTIVITY_H_
#define PS3_FEATURIZE_SELECTIVITY_H_

#include "query/query.h"
#include "stats/table_stats.h"

namespace ps3::featurize {

struct SelectivityFeatures {
  double upper = 1.0;
  double indep = 1.0;
  double min_clause = 1.0;
  double max_clause = 1.0;
  double lower = 0.0;
};

/// Estimates predicate selectivity for one partition. A query without a
/// predicate yields all-ones (and lower == 1).
SelectivityFeatures EstimateSelectivity(const query::Query& query,
                                        const stats::PartitionStats& ps);

}  // namespace ps3::featurize

#endif  // PS3_FEATURIZE_SELECTIVITY_H_
