// Feature normalization (Appendix B.1): a skew-reducing transform (signed
// log1p for statistics, cube root for selectivities) followed by division
// by the feature's average magnitude over the training workload. Test-time
// features are normalized with the training-set scales.
#ifndef PS3_FEATURIZE_NORMALIZER_H_
#define PS3_FEATURIZE_NORMALIZER_H_

#include <vector>

#include "common/serialize.h"
#include "featurize/featurizer.h"

namespace ps3::featurize {

class FeatureNormalizer {
 public:
  FeatureNormalizer() = default;

  /// Computes per-feature scales from raw training feature matrices.
  void Fit(const FeatureSchema& schema,
           const std::vector<const FeatureMatrix*>& training);

  /// Applies transform + scaling in place. Must be Fit first.
  void Apply(FeatureMatrix* features) const;

  bool fitted() const { return !scale_.empty(); }
  const std::vector<double>& scales() const { return scale_; }

  /// The transform applied before scaling (exposed for tests).
  static double Transform(StatKind kind, double v);

  /// Binary persistence.
  void Serialize(BinaryWriter* w) const;
  static Result<FeatureNormalizer> Deserialize(BinaryReader* r);

 private:
  std::vector<StatKind> kinds_;  // per feature
  std::vector<double> scale_;    // per feature; > 0
};

}  // namespace ps3::featurize

#endif  // PS3_FEATURIZE_NORMALIZER_H_
