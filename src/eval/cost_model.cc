#include "eval/cost_model.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/random.h"

namespace ps3::eval {

CostEstimate SimulateRead(const ClusterModel& model, double fraction) {
  CostEstimate out;
  size_t n_tasks = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(model.total_partitions)));
  n_tasks = std::max<size_t>(1, n_tasks);

  RandomEngine rng(model.seed);
  // Lognormal task durations: median task_mean_s * exp(-sigma^2/2), heavy
  // right tail produces stragglers.
  double mu = std::log(model.task_mean_s) -
              0.5 * model.task_sigma * model.task_sigma;
  std::vector<double> durations(n_tasks);
  for (auto& d : durations) {
    d = std::exp(mu + model.task_sigma * rng.NextGaussian());
    out.compute_s += d;
  }

  // List scheduling on `workers` slots: earliest-available-slot gets the
  // next task. A min-heap of slot completion times gives the makespan.
  std::priority_queue<double, std::vector<double>, std::greater<>> slots;
  size_t w = std::min(model.workers, n_tasks);
  for (size_t i = 0; i < w; ++i) slots.push(0.0);
  double makespan = 0.0;
  for (double d : durations) {
    double free_at = slots.top();
    slots.pop();
    double done = free_at + d;
    makespan = std::max(makespan, done);
    slots.push(done);
  }
  out.latency_s = model.startup_s + makespan;
  return out;
}

}  // namespace ps3::eval
