// Plain-text table rendering for bench output: the bench binaries print
// the same rows/series the paper's tables and figures report.
#ifndef PS3_EVAL_REPORT_H_
#define PS3_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace ps3::eval {

class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> cells);
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns.
  std::string Render() const;
  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals ("0.0123").
std::string Num(double v, int digits = 4);
/// Formats a fraction as a percentage ("12.5%").
std::string Pct(double v, int digits = 1);

}  // namespace ps3::eval

#endif  // PS3_EVAL_REPORT_H_
