#include "eval/experiment.h"

#include <cassert>
#include <cstdlib>

#include "core/labels.h"
#include "core/ps3_trainer.h"
#include "stats/stats_builder.h"

namespace ps3::eval {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(v, nullptr, 10));
}

}  // namespace

void ExperimentConfig::ApplyEnvOverrides() {
  const char* fast = std::getenv("PS3_FAST");
  if (fast != nullptr && *fast == '1') {
    rows = 20000;
    partitions = 128;
    train_queries = 24;
    test_queries = 10;
    ps3.feature_selection.restarts = 1;
    ps3.feature_selection.eval_queries = 4;
    lss.eval_queries = 4;
  }
  rows = EnvSize("PS3_ROWS", rows);
  partitions = EnvSize("PS3_PARTS", partitions);
  train_queries = EnvSize("PS3_TRAINQ", train_queries);
  test_queries = EnvSize("PS3_TESTQ", test_queries);
}

std::vector<double> DefaultBudgets() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8};
}

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  auto made = workload::MakeDataset(config_.dataset, config_.rows,
                                    config_.seed);
  assert(made.ok());
  bundle_ = std::move(made).value();

  // Apply the layout: default sort, explicit sort, or random shuffle.
  std::vector<std::string> sort_cols =
      config_.layout.empty() ? bundle_.default_sort : config_.layout;
  if (sort_cols.size() == 1 && sort_cols[0] == "__random__") {
    RandomEngine rng(config_.seed ^ 0x5EED);
    laid_out_ = std::make_shared<storage::Table>(
        bundle_.table->Shuffled(&rng));
  } else {
    auto sorted = bundle_.table->SortedBy(sort_cols);
    assert(sorted.ok());
    laid_out_ = std::make_shared<storage::Table>(std::move(sorted).value());
  }
  parts_ = std::make_unique<storage::PartitionedTable>(laid_out_,
                                                       config_.partitions);

  // Statistics + featurizer.
  stats::StatsOptions stats_opts;
  for (const auto& name : bundle_.spec.groupby_columns) {
    int idx = laid_out_->schema().FindColumn(name);
    assert(idx >= 0);
    stats_opts.grouping_columns.push_back(static_cast<size_t>(idx));
  }
  stats::StatsBuilder builder(stats_opts);
  stats_ = std::make_unique<stats::TableStats>(builder.Build(*parts_));
  featurizer_ = std::make_unique<featurize::Featurizer>(laid_out_->schema(),
                                                        stats_.get());
  ctx_ = {parts_.get(), stats_.get(), featurizer_.get()};

  // Workloads: disjoint train/test sets from the same distribution.
  generator_ = std::make_unique<workload::QueryGenerator>(
      laid_out_.get(), bundle_.spec, config_.generator);
  if (!config_.build_workload) return;
  auto all = generator_->GenerateSet(
      config_.train_queries + config_.test_queries, config_.seed + 101);
  std::vector<query::Query> train(
      all.begin(),
      all.begin() + static_cast<ptrdiff_t>(
                        std::min(config_.train_queries, all.size())));
  std::vector<query::Query> test(
      all.begin() + static_cast<ptrdiff_t>(train.size()), all.end());

  training_ = core::BuildTrainingData(ctx_, std::move(train));
  SetTests(std::move(test));
}

TestQuery Experiment::BuildTest(query::Query q) const {
  TestQuery t;
  t.query = std::move(q);
  t.answers = query::EvaluateAllPartitions(t.query, *parts_);
  t.exact = query::ExactAnswer(t.query, t.answers);
  // True predicate selectivity (for Figure 7): a pure bitmap-popcount scan.
  if (t.query.predicate) {
    size_t matched = query::CountMatchingRows(t.query.predicate, *parts_);
    t.true_selectivity = static_cast<double>(matched) /
                         static_cast<double>(laid_out_->num_rows());
  }
  return t;
}

void Experiment::SetTests(std::vector<query::Query> queries) {
  tests_.clear();
  tests_.reserve(queries.size());
  for (auto& q : queries) tests_.push_back(BuildTest(std::move(q)));
}

void Experiment::TrainModels() {
  if (trained_) return;
  ps3_model_ = core::TrainPs3(ctx_, training_, config_.ps3);
  lss_model_ = core::TrainLss(ctx_, training_, config_.lss);
  trained_ = true;
}

std::unique_ptr<core::PartitionPicker> Experiment::MakeRandom() const {
  return std::make_unique<core::RandomPicker>(ctx_);
}

std::unique_ptr<core::PartitionPicker> Experiment::MakeRandomFilter() const {
  return std::make_unique<core::RandomFilterPicker>(ctx_);
}

std::unique_ptr<core::PartitionPicker> Experiment::MakeLss() const {
  assert(trained_);
  return std::make_unique<core::LssPicker>(ctx_, &lss_model_);
}

std::unique_ptr<core::PartitionPicker> Experiment::MakePs3() const {
  assert(trained_);
  return std::make_unique<core::Ps3Picker>(ctx_, &ps3_model_);
}

std::unique_ptr<core::PartitionPicker> Experiment::MakePs3With(
    const core::Ps3Model* model) const {
  return std::make_unique<core::Ps3Picker>(ctx_, model);
}

std::unique_ptr<core::PartitionPicker> Experiment::MakeOracle(
    const core::Ps3Model* model) const {
  auto picker = std::make_unique<core::Ps3Picker>(ctx_, model);
  // Memoize contributions per query: the oracle re-scans the whole table,
  // and evaluation sweeps call Pick for the same query many times.
  auto cache = std::make_shared<
      std::unordered_map<std::string, std::vector<double>>>();
  picker->set_oracle([this, cache](const query::Query& q) {
    std::string key = q.ToString(laid_out_->schema());
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    auto answers = query::EvaluateAllPartitions(q, *parts_);
    auto exact = query::ExactAnswer(q, answers);
    auto contrib = core::ComputeContributions(q, answers, exact);
    cache->emplace(std::move(key), contrib);
    return contrib;
  });
  return picker;
}

size_t Experiment::BudgetFromFraction(double frac) const {
  double want = frac * static_cast<double>(parts_->num_partitions());
  size_t budget = static_cast<size_t>(want + 0.5);
  return std::max<size_t>(1, budget);
}

query::ErrorMetrics Experiment::EvaluateQuery(
    const core::PartitionPicker& picker, const TestQuery& test,
    double budget_frac, int runs, uint64_t seed) const {
  size_t budget = BudgetFromFraction(budget_frac);
  query::ErrorMetrics acc;
  for (int r = 0; r < runs; ++r) {
    RandomEngine rng(seed + static_cast<uint64_t>(r) * 92821ULL);
    core::Selection sel = picker.Pick(test.query, budget, &rng, nullptr);
    auto estimate =
        query::CombineWeighted(test.query, test.answers, sel.parts);
    acc += query::ComputeErrorMetrics(test.query, test.exact, estimate);
  }
  acc /= static_cast<double>(std::max(1, runs));
  return acc;
}

query::ErrorMetrics Experiment::Evaluate(const core::PartitionPicker& picker,
                                         double budget_frac, int runs,
                                         uint64_t seed) const {
  query::ErrorMetrics acc;
  for (const auto& t : tests_) {
    acc += EvaluateQuery(picker, t, budget_frac, runs, seed);
  }
  if (!tests_.empty()) acc /= static_cast<double>(tests_.size());
  return acc;
}

}  // namespace ps3::eval
