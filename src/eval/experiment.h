// End-to-end experiment harness shared by the bench binaries: builds a
// dataset + layout + partitioning + statistics + featurizer, trains the
// PS3 and LSS models, and evaluates pickers on a held-out query set under
// varying sampling budgets (§5.1).
#ifndef PS3_EVAL_EXPERIMENT_H_
#define PS3_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/lss_picker.h"
#include "core/picker.h"
#include "core/ps3_model.h"
#include "core/ps3_picker.h"
#include "core/random_picker.h"
#include "core/training_data.h"
#include "query/metrics.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace ps3::eval {

struct ExperimentConfig {
  std::string dataset = "aria";
  size_t rows = 80000;
  size_t partitions = 400;
  /// Sort columns for the layout; empty uses the dataset default;
  /// {"__random__"} shuffles.
  std::vector<std::string> layout;
  size_t train_queries = 96;
  size_t test_queries = 48;
  /// Skip workload generation and exact evaluation (stats-only benches).
  bool build_workload = true;
  uint64_t seed = 7;
  core::Ps3Options ps3;
  core::LssOptions lss;
  workload::GeneratorOptions generator;

  /// Applies PS3_FAST / PS3_ROWS / PS3_PARTS / PS3_TRAINQ / PS3_TESTQ
  /// environment overrides for quick smoke runs.
  void ApplyEnvOverrides();
};

/// One held-out test query with its cached exact evaluation.
struct TestQuery {
  query::Query query;
  std::vector<query::PartitionAnswer> answers;
  query::QueryAnswer exact;
  double true_selectivity = 1.0;  ///< fraction of rows passing predicate
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  /// Trains the PS3 and LSS models (slow part; separated so that benches
  /// that only need statistics can skip it).
  void TrainModels();

  const ExperimentConfig& config() const { return config_; }
  const core::PickerContext& ctx() const { return ctx_; }
  const storage::PartitionedTable& table() const { return *parts_; }
  const stats::TableStats& stats() const { return *stats_; }
  const core::TrainingData& training_data() const { return training_; }
  const core::Ps3Model& ps3_model() const { return ps3_model_; }
  core::Ps3Model* mutable_ps3_model() { return &ps3_model_; }
  const core::LssModel& lss_model() const { return lss_model_; }
  const std::vector<TestQuery>& tests() const { return tests_; }
  const workload::QueryGenerator& generator() const { return *generator_; }

  /// Replaces the held-out test set (e.g. with TPC-H template queries).
  void SetTests(std::vector<query::Query> queries);

  // Picker factories (models must be trained for lss/ps3/oracle).
  std::unique_ptr<core::PartitionPicker> MakeRandom() const;
  std::unique_ptr<core::PartitionPicker> MakeRandomFilter() const;
  std::unique_ptr<core::PartitionPicker> MakeLss() const;
  std::unique_ptr<core::PartitionPicker> MakePs3() const;
  /// PS3 with a custom model (lesion studies, alpha sweeps, ...).
  std::unique_ptr<core::PartitionPicker> MakePs3With(
      const core::Ps3Model* model) const;
  /// PS3 whose funnel uses true contributions instead of regressors.
  std::unique_ptr<core::PartitionPicker> MakeOracle(
      const core::Ps3Model* model) const;

  size_t BudgetFromFraction(double frac) const;

  /// Average error of `picker` over the full test set at one budget
  /// fraction, averaged over `runs` random repetitions.
  query::ErrorMetrics Evaluate(const core::PartitionPicker& picker,
                               double budget_frac, int runs,
                               uint64_t seed = 1) const;

  /// Same, restricted to one test query.
  query::ErrorMetrics EvaluateQuery(const core::PartitionPicker& picker,
                                    const TestQuery& test, double budget_frac,
                                    int runs, uint64_t seed = 1) const;

 private:
  TestQuery BuildTest(query::Query q) const;

  ExperimentConfig config_;
  workload::DatasetBundle bundle_;
  std::shared_ptr<storage::Table> laid_out_;
  std::unique_ptr<storage::PartitionedTable> parts_;
  std::unique_ptr<stats::TableStats> stats_;
  std::unique_ptr<featurize::Featurizer> featurizer_;
  std::unique_ptr<workload::QueryGenerator> generator_;
  core::PickerContext ctx_;
  core::TrainingData training_;
  std::vector<TestQuery> tests_;
  core::Ps3Model ps3_model_;
  core::LssModel lss_model_;
  bool trained_ = false;
};

/// The budget grid used by most figures (fractions of partitions read).
std::vector<double> DefaultBudgets();

}  // namespace ps3::eval

#endif  // PS3_EVAL_EXPERIMENT_H_
