// Cluster cost model for Table 3. The paper measures query latency and
// total compute time on SCOPE clusters; we replace the cluster with a
// small scheduling simulation: reading a fraction f of partitions spawns
// f*N tasks with heavy-tailed durations over W workers plus a fixed job
// startup cost. Total compute is the sum of task durations (near linear in
// f); latency is the simulated makespan (sublinear gains, dominated by
// startup and stragglers), matching the shape the paper reports.
#ifndef PS3_EVAL_COST_MODEL_H_
#define PS3_EVAL_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace ps3::eval {

struct ClusterModel {
  size_t total_partitions = 2844;  ///< TPC-H* sf=1000 partition count
  size_t workers = 256;            ///< concurrent task slots for this job
  double task_mean_s = 30.0;       ///< mean per-partition scan time
  double task_sigma = 0.6;         ///< lognormal shape (stragglers)
  double startup_s = 20.0;         ///< job submission / scheduling floor
  uint64_t seed = 2020;
};

struct CostEstimate {
  double latency_s = 0.0;        ///< simulated makespan incl. startup
  double compute_s = 0.0;        ///< sum of task durations
};

/// Simulates reading `ceil(fraction * total_partitions)` partitions.
CostEstimate SimulateRead(const ClusterModel& model, double fraction);

}  // namespace ps3::eval

#endif  // PS3_EVAL_COST_MODEL_H_
