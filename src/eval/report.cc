#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"

namespace ps3::eval {

void Report::SetHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Report::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Report::Render() const {
  std::vector<size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::string out = "== " + title_ + " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      out.append(widths[i] - row[i].size() + 2, ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

void Report::Print() const {
  std::fputs(Render().c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

std::string Num(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string Pct(double v, int digits) {
  return StrFormat("%.*f%%", digits, v * 100.0);
}

}  // namespace ps3::eval
