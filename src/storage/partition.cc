#include "storage/partition.h"

#include "storage/table.h"

namespace ps3::storage {

double Partition::NumericAt(size_t col, size_t r) const {
  return table_->column(col).NumericAt(begin_ + r);
}

int32_t Partition::CodeAt(size_t col, size_t r) const {
  return table_->column(col).CodeAt(begin_ + r);
}

const double* Partition::NumericSpan(size_t col) const {
  return table_->column(col).NumericSpan(begin_);
}

const int32_t* Partition::CodeSpan(size_t col) const {
  return table_->column(col).CodeSpan(begin_);
}

}  // namespace ps3::storage
