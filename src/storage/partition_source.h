// The partition-provider seam between the query engine's multi-shard
// fan-out and whatever holds the bytes: a resident ShardedTable, the io
// layer's memory-budgeted partition cache, or a cold on-disk store.
//
// The evaluator scans a PartitionSource shard by shard, acquiring each
// partition just before it runs the kernels and releasing it right after.
// Acquire returns a *pinned* partition: a scan-ready view plus an
// ownership token that keeps the backing memory alive (and, for cached
// sources, non-evictable) for the token's lifetime. Resident sources pin
// nothing; cold sources pin cache entries. Because the view is the same
// storage::Partition type either way, every kernel, accumulator, and
// reduction runs identically — which is what makes cold-scan answers
// bit-exact with resident-scan answers.
//
// Acquire and WillScanShard carry the scan's ColumnSet hint (computed by
// query/compiler from the compiled query): the set of columns the scan
// will actually touch. Out-of-core sources read and stage only those
// column segments; a pruned acquire may hand back a view whose
// unreferenced columns are empty, so the hint must cover every column
// the caller reads. Pruning affects bytes moved, never answers.
#ifndef PS3_STORAGE_PARTITION_SOURCE_H_
#define PS3_STORAGE_PARTITION_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/query_control.h"
#include "common/status.h"
#include "storage/column_set.h"
#include "storage/sharded_table.h"

namespace ps3::storage {

/// Per-scan control handed down the acquire/prefetch seam: the query's
/// admission class (routes out-of-core read-ahead to the right share of
/// the prefetch budget) and its cancel/deadline token (lets a cold-load
/// wait abort instead of riding out the IO). Both advisory-or-abort:
/// they change when and whether bytes move, never what a successful scan
/// answers.
struct ScanControl {
  QueryClass query_class = QueryClass::kBatch;
  /// Nullable; borrowed for the duration of the call.
  const CancelToken* cancel = nullptr;
};

/// A scan-ready partition plus the token that keeps it alive. The token
/// is opaque: a cache pin for out-of-core sources, null for resident
/// tables (whose lifetime the caller already guarantees).
class PinnedPartition {
 public:
  explicit PinnedPartition(Partition part,
                           std::shared_ptr<const void> pin = nullptr)
      : part_(part), pin_(std::move(pin)) {}

  const Partition& view() const { return part_; }

 private:
  Partition part_;
  std::shared_ptr<const void> pin_;
};

/// Shard-structured partition provider for the evaluator's fan-out.
/// Implementations must expose the *same global partition numbering* as
/// the flat table (shards partition [0, num_partitions)), so per-partition
/// answers merge by global index regardless of where the bytes live.
class PartitionSource {
 public:
  virtual ~PartitionSource() = default;

  virtual const Schema& schema() const = 0;
  virtual size_t num_partitions() const = 0;
  virtual size_t num_shards() const = 0;
  /// Global partition indices owned by shard `s`, ascending.
  virtual const std::vector<size_t>& shard(size_t s) const = 0;

  /// Pins partition `global_index` for scanning. May block (cold load).
  /// Thread-safe: the fan-out calls this from concurrent pool lanes.
  /// `columns` is the projection contract: the caller promises to touch
  /// only those columns, and the source may leave the rest empty.
  virtual Result<PinnedPartition> Acquire(size_t global_index,
                                          const ColumnSet& columns) const = 0;

  /// Unhinted acquire: every column materialized.
  Result<PinnedPartition> Acquire(size_t global_index) const {
    return Acquire(global_index, ColumnSet::All());
  }

  /// Control-aware acquire: like Acquire(index, columns), but carrying
  /// the scan's class and cancel token so cold sources can abort a
  /// pending load (returning the token's Status with every pin already
  /// taken released) instead of completing IO for a dead query. The
  /// default ignores the control and delegates, so sources that never
  /// block (resident tables, test fakes) need not override it.
  virtual Result<PinnedPartition> Acquire(size_t global_index,
                                          const ColumnSet& columns,
                                          const ScanControl& control) const {
    (void)control;
    return Acquire(global_index, columns);
  }

  /// Advisory: the scan cursor has entered shard `s` (fired once per
  /// shard per scan, from whichever lane gets there first), and will read
  /// only `columns`. Out-of-core sources use it to stage upcoming shards'
  /// column segments ahead of the scan; it must not affect results, only
  /// timing.
  virtual void WillScanShard(size_t s, const ColumnSet& columns) const {
    (void)s;
    (void)columns;
  }

  void WillScanShard(size_t s) const { WillScanShard(s, ColumnSet::All()); }

  /// Control-aware scan-entry hint: the class routes an out-of-core
  /// source's read-ahead to the right share of the prefetch byte budget
  /// (batch staging may not starve interactive cold loads). Advisory like
  /// the 2-arg form; the default ignores the control and delegates.
  virtual void WillScanShard(size_t s, const ColumnSet& columns,
                             const ScanControl& control) const {
    (void)control;
    WillScanShard(s, columns);
  }

  /// Advisory read-ahead hook with an *explicit* shard plan: the scan has
  /// entered plan[current] and will touch only `columns` of the plan's
  /// partitions. This is how a filtered view of this source (a picked
  /// subset, see PickedSource) routes its prefetch hints: the base source
  /// stages upcoming shards of *the view's plan*, so read-ahead budget is
  /// never spent on partitions the view pruned. Default no-op; like
  /// WillScanShard it must not affect results, only timing.
  virtual void StageHint(const std::vector<std::vector<size_t>>& plan,
                         size_t current, const ColumnSet& columns) const {
    (void)plan;
    (void)current;
    (void)columns;
  }

  /// Control-aware plan hint, for views that must forward the scan's
  /// class/token along with their filtered plan. Default delegates to the
  /// classless form.
  virtual void StageHint(const std::vector<std::vector<size_t>>& plan,
                         size_t current, const ColumnSet& columns,
                         const ScanControl& control) const {
    (void)control;
    StageHint(plan, current, columns);
  }

  /// Planning-time accounting: encoded (on-disk) bytes a fully-cold scan
  /// of the given partitions restricted to `columns` would move. Resident
  /// sources return 0 (nothing moves). Deterministic by contract —
  /// derived from the manifest, never from live cache state — so
  /// approximate answers can report bytes_moved identically for any
  /// cache budget or prior scan history.
  virtual uint64_t ColdScanBytes(const std::vector<size_t>& partitions,
                                 const ColumnSet& columns) const {
    (void)partitions;
    (void)columns;
    return 0;
  }

  /// Global indices of partitions this source *cannot* serve — an
  /// Acquire on any of them is guaranteed to fail (permanently lost in
  /// the backing store's fault plan). Sorted ascending. The scheduler's
  /// degradation path plans around exactly this set: kFail names it in
  /// the failure Status, kApproximate re-plans the scan over its
  /// complement. Resident sources (and any source without a fault
  /// model) return empty — every partition reachable.
  virtual std::vector<size_t> UnreachablePartitions() const { return {}; }
};

/// Resident adapter: a ShardedTable viewed as a PartitionSource. Acquire
/// never fails, pins nothing (the table is borrowed, per the existing
/// evaluator contract), and ignores the column hint — every column is
/// already resident; WillScanShard is a no-op. The table must outlive
/// the source.
class ResidentShardedSource : public PartitionSource {
 public:
  explicit ResidentShardedSource(const ShardedTable& table) : table_(table) {}

  const Schema& schema() const override { return table_.schema(); }
  size_t num_partitions() const override { return table_.num_partitions(); }
  size_t num_shards() const override { return table_.num_shards(); }
  const std::vector<size_t>& shard(size_t s) const override {
    return table_.shard(s);
  }
  Result<PinnedPartition> Acquire(size_t global_index,
                                  const ColumnSet& columns) const override {
    (void)columns;
    return PinnedPartition(table_.partition(global_index));
  }
  using PartitionSource::Acquire;

 private:
  const ShardedTable& table_;
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_PARTITION_SOURCE_H_
