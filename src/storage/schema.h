// Table schema: column names and types. PS3 supports numeric columns
// (doubles; dates are stored as day numbers) and categorical columns
// (dictionary-encoded strings).
#ifndef PS3_STORAGE_SCHEMA_H_
#define PS3_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ps3::storage {

enum class ColumnType {
  kNumeric,      ///< double-valued; includes dates stored as day ordinals
  kCategorical,  ///< dictionary-encoded string
};

struct FieldDef {
  std::string name;
  ColumnType type;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldDef> fields);

  size_t num_columns() const { return fields_.size(); }
  const FieldDef& field(size_t i) const { return fields_[i]; }
  const std::vector<FieldDef>& fields() const { return fields_; }

  /// Index of a column by name, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Index of a column by name; error status if absent.
  Result<size_t> GetColumnIndex(const std::string& name) const;

  bool IsNumeric(size_t col) const {
    return fields_[col].type == ColumnType::kNumeric;
  }
  bool IsCategorical(size_t col) const {
    return fields_[col].type == ColumnType::kCategorical;
  }

 private:
  std::vector<FieldDef> fields_;
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_SCHEMA_H_
