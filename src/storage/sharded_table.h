// Sharded view over a partitioned table: N shards, each owning a set of
// partitions, for multi-shard query fan-out on many-core / multi-node
// style service workloads.
//
// Sharding never moves rows: it assigns the *partitions* of an underlying
// PartitionedTable to shards, either as contiguous runs (kRange) or by a
// hash of the partition index (kHash). Global partition boundaries are
// therefore identical for every shard count, which is what lets the
// evaluator's multi-shard fan-out produce answers bit-identical to the
// single-table scan: each partition's accumulators see exactly the same
// rows in the same order, and partials are merged back by global partition
// index.
#ifndef PS3_STORAGE_SHARDED_TABLE_H_
#define PS3_STORAGE_SHARDED_TABLE_H_

#include <cstddef>
#include <vector>

#include "storage/table.h"

namespace ps3::storage {

/// How partitions are assigned to shards.
enum class ShardAssignment {
  kRange,  ///< shard s owns a contiguous run of partition indices
  kHash,   ///< partition p lands on shard Mix64(p) % num_shards
};

/// The partition→shard assignment used by ShardedTable, exposed so
/// out-of-core sources (io::ColdShardedSource) shard a spilled table
/// *identically* to the resident path — the precondition for cold scans
/// being bit-exact with resident scans. `num_shards` is clamped to
/// [1, num_partitions]; each shard's list is ascending.
std::vector<std::vector<size_t>> AssignShards(size_t num_partitions,
                                              size_t num_shards,
                                              ShardAssignment assignment);

class ShardedTable {
 public:
  /// Shards an existing partitioning. `num_shards` is clamped to
  /// [1, partition count]; under kHash a shard may still end up empty
  /// (hash collisions), which the fan-out handles.
  ShardedTable(PartitionedTable table, size_t num_shards,
               ShardAssignment assignment = ShardAssignment::kRange);

  /// Convenience: partition the table and shard it in one step.
  ShardedTable(std::shared_ptr<const Table> table, size_t num_partitions,
               size_t num_shards,
               ShardAssignment assignment = ShardAssignment::kRange);

  const PartitionedTable& partitioned() const { return table_; }
  const Schema& schema() const { return table_.schema(); }
  size_t num_shards() const { return shards_.size(); }
  /// Total partitions across all shards (== the underlying table's count).
  size_t num_partitions() const { return table_.num_partitions(); }
  ShardAssignment assignment() const { return assignment_; }

  /// Global partition indices owned by shard `s`, ascending.
  const std::vector<size_t>& shard(size_t s) const { return shards_[s]; }

  /// Partition by *global* index (shared numbering with the flat table).
  Partition partition(size_t global_index) const {
    return table_.partition(global_index);
  }

 private:
  void Assign(size_t num_shards);

  PartitionedTable table_;
  ShardAssignment assignment_;
  std::vector<std::vector<size_t>> shards_;
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_SHARDED_TABLE_H_
