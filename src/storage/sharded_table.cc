#include "storage/sharded_table.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace ps3::storage {

ShardedTable::ShardedTable(PartitionedTable table, size_t num_shards,
                           ShardAssignment assignment)
    : table_(std::move(table)), assignment_(assignment) {
  Assign(num_shards);
}

ShardedTable::ShardedTable(std::shared_ptr<const Table> table,
                           size_t num_partitions, size_t num_shards,
                           ShardAssignment assignment)
    : table_(std::move(table), num_partitions), assignment_(assignment) {
  Assign(num_shards);
}

std::vector<std::vector<size_t>> AssignShards(size_t num_partitions,
                                              size_t num_shards,
                                              ShardAssignment assignment) {
  num_shards = std::max<size_t>(1, std::min(num_shards, num_partitions));
  std::vector<std::vector<size_t>> shards(num_shards);
  if (assignment == ShardAssignment::kRange) {
    // Near-equal contiguous runs: first (n % S) shards get one extra.
    const size_t base = num_partitions / num_shards;
    const size_t extra = num_partitions % num_shards;
    size_t next = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t len = base + (s < extra ? 1 : 0);
      shards[s].reserve(len);
      for (size_t k = 0; k < len; ++k) shards[s].push_back(next++);
    }
    assert(next == num_partitions);
  } else {
    // Hash placement: deterministic, layout-independent spread. Ascending
    // insertion keeps each shard's list sorted.
    for (size_t p = 0; p < num_partitions; ++p) {
      shards[Mix64(p) % num_shards].push_back(p);
    }
  }
  return shards;
}

void ShardedTable::Assign(size_t num_shards) {
  shards_ = AssignShards(table_.num_partitions(), num_shards, assignment_);
}

}  // namespace ps3::storage
