#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ps3::storage {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (const auto& f : schema_.fields()) {
    columns_.push_back(f.type == ColumnType::kNumeric
                           ? Column::MakeNumeric()
                           : Column::MakeCategorical());
  }
}

Table Table::FromColumns(Schema schema, std::vector<Column> columns) {
  Table out(std::move(schema));
  assert(columns.size() == out.schema_.num_columns());
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t c = 0; c < columns.size(); ++c) {
    assert(columns[c].size() == rows);
    assert((columns[c].type() == ColumnType::kNumeric) ==
           out.schema_.IsNumeric(c));
  }
  out.columns_ = std::move(columns);
  out.num_rows_ = rows;
  return out;
}

Table Table::FromPrunedColumns(Schema schema, std::vector<Column> columns,
                               size_t num_rows) {
  Table out(std::move(schema));
  assert(columns.size() == out.schema_.num_columns());
  for (size_t c = 0; c < columns.size(); ++c) {
    assert(columns[c].size() == 0 || columns[c].size() == num_rows);
    assert((columns[c].type() == ColumnType::kNumeric) ==
           out.schema_.IsNumeric(c));
    (void)c;
  }
  out.columns_ = std::move(columns);
  out.num_rows_ = num_rows;
  return out;
}

Result<const Column*> Table::GetColumn(const std::string& name) const {
  auto idx = schema_.GetColumnIndex(name);
  if (!idx.ok()) return idx.status();
  return &columns_[*idx];
}

void Table::AppendRow(const std::vector<double>& numerics,
                      const std::vector<std::string>& categoricals) {
  size_t ni = 0, ci = 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (schema_.IsNumeric(c)) {
      assert(ni < numerics.size());
      columns_[c].AppendNumeric(numerics[ni++]);
    } else {
      assert(ci < categoricals.size());
      columns_[c].AppendCategorical(categoricals[ci++]);
    }
  }
  assert(ni == numerics.size() && ci == categoricals.size());
  ++num_rows_;
}

void Table::Seal() {
  for (const auto& col : columns_) {
    assert(col.size() == num_rows_);
    (void)col;
  }
}

Table Table::PermuteRows(const std::vector<size_t>& perm) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].Permute(perm);
  }
  out.num_rows_ = perm.size();
  return out;
}

Result<Table> Table::SortedBy(
    const std::vector<std::string>& sort_cols) const {
  std::vector<size_t> key_idx;
  key_idx.reserve(sort_cols.size());
  for (const auto& name : sort_cols) {
    auto idx = schema_.GetColumnIndex(name);
    if (!idx.ok()) return idx.status();
    key_idx.push_back(*idx);
  }
  std::vector<size_t> perm(num_rows_);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (size_t k : key_idx) {
      double va = columns_[k].SortKeyAt(a);
      double vb = columns_[k].SortKeyAt(b);
      if (va < vb) return true;
      if (va > vb) return false;
    }
    return false;
  });
  return PermuteRows(perm);
}

Table Table::Shuffled(RandomEngine* rng) const {
  std::vector<size_t> perm(num_rows_);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(&perm, rng);
  return PermuteRows(perm);
}

PartitionedTable::PartitionedTable(std::shared_ptr<const Table> table,
                                   size_t num_partitions)
    : table_(std::move(table)) {
  assert(num_partitions > 0);
  const size_t rows = table_->num_rows();
  num_partitions = std::min(num_partitions, std::max<size_t>(rows, 1));
  bounds_.reserve(num_partitions);
  // Near-equal split: first (rows % P) partitions get one extra row.
  const size_t base = rows / num_partitions;
  const size_t extra = rows % num_partitions;
  size_t begin = 0;
  for (size_t i = 0; i < num_partitions; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    bounds_.emplace_back(begin, begin + len);
    begin += len;
  }
  assert(begin == rows);
}

}  // namespace ps3::storage
