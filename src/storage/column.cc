#include "storage/column.h"

#include <cassert>

namespace ps3::storage {

int32_t Dictionary::GetOrAdd(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

int32_t Dictionary::Find(const std::string& value) const {
  auto it = index_.find(value);
  return it == index_.end() ? -1 : it->second;
}

// The constructor leaves dict_ null; the factories decide whether the
// column gets a fresh dictionary or shares an existing one (the pruned-
// assembly hot path builds placeholder categorical columns per fetch, so
// a throwaway allocation here would be pure churn).
Column::Column(ColumnType type) : type_(type) {
  if (type_ == ColumnType::kNumeric) {
    numeric_ = std::make_shared<std::vector<double>>();
  } else {
    codes_ = std::make_shared<std::vector<int32_t>>();
  }
}

Column Column::MakeNumeric() { return Column(ColumnType::kNumeric); }

Column Column::MakeCategorical() {
  Column col(ColumnType::kCategorical);
  col.dict_ = std::make_shared<Dictionary>();
  return col;
}

Column Column::MakeCategorical(std::shared_ptr<Dictionary> dict) {
  assert(dict != nullptr);
  Column col(ColumnType::kCategorical);
  col.dict_ = std::move(dict);
  return col;
}

// Appends run at build time, before a column is ever copied; mutating a
// shared buffer would silently change every table that shares it, so
// exclusive ownership is asserted on every append path.

void Column::AppendNumeric(double v) {
  assert(is_numeric());
  assert(numeric_.use_count() == 1);
  numeric_->push_back(v);
}

void Column::AppendCategorical(const std::string& v) {
  assert(!is_numeric());
  assert(codes_.use_count() == 1);
  codes_->push_back(dict_->GetOrAdd(v));
}

void Column::AppendCode(int32_t code) {
  assert(!is_numeric());
  assert(code >= 0 && static_cast<size_t>(code) < dict_->size());
  assert(codes_.use_count() == 1);
  codes_->push_back(code);
}

void Column::AppendNumerics(const double* v, size_t n) {
  assert(is_numeric());
  assert(numeric_.use_count() == 1);
  numeric_->insert(numeric_->end(), v, v + n);
}

void Column::AppendCodes(const int32_t* v, size_t n) {
  assert(!is_numeric());
  assert(codes_.use_count() == 1);
#ifndef NDEBUG
  for (size_t i = 0; i < n; ++i) {
    assert(v[i] >= 0 && static_cast<size_t>(v[i]) < dict_->size());
  }
#endif
  codes_->insert(codes_->end(), v, v + n);
}

Column Column::Permute(const std::vector<size_t>& perm) const {
  Column out(type_);
  if (is_numeric()) {
    out.numeric_->reserve(perm.size());
    for (size_t src : perm) out.numeric_->push_back((*numeric_)[src]);
  } else {
    out.dict_ = dict_;
    out.codes_->reserve(perm.size());
    for (size_t src : perm) out.codes_->push_back((*codes_)[src]);
  }
  return out;
}

}  // namespace ps3::storage
