// A Partition is a lightweight view over a contiguous row range of a Table.
#ifndef PS3_STORAGE_PARTITION_H_
#define PS3_STORAGE_PARTITION_H_

#include <cstddef>
#include <cstdint>

namespace ps3::storage {

class Table;
class Column;

class Partition {
 public:
  Partition(const Table* table, size_t begin_row, size_t end_row)
      : table_(table), begin_(begin_row), end_(end_row) {}

  const Table& table() const { return *table_; }
  size_t begin_row() const { return begin_; }
  size_t end_row() const { return end_; }
  size_t num_rows() const { return end_ - begin_; }

  /// Numeric value of column `col` at partition-local row `r`.
  double NumericAt(size_t col, size_t r) const;
  /// Dictionary code of categorical column `col` at partition-local row `r`.
  int32_t CodeAt(size_t col, size_t r) const;

  /// Contiguous typed views over the partition's row range; index with
  /// partition-local rows [0, num_rows()). The column's type must match.
  const double* NumericSpan(size_t col) const;
  const int32_t* CodeSpan(size_t col) const;

 private:
  const Table* table_;
  size_t begin_;
  size_t end_;
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_PARTITION_H_
