// The column-projection hint that flows from the query compiler down to
// whatever holds a partition's bytes. A ColumnSet names the columns a
// scan will actually read (predicate columns + aggregate-expression
// columns + GROUP BY columns); out-of-core sources use it to seek and
// decode only those segments instead of rehydrating whole partitions.
//
// The hint is a *contract*, not advice: a source that prunes by it may
// hand back a partition whose unrequested columns are empty, so the set
// must cover every column the scan touches. It never affects answers —
// requested columns rehydrate bit-identical either way — only bytes
// moved. An empty set is valid (COUNT(*) with no predicate reads no
// column at all; row counts come from partition metadata).
#ifndef PS3_STORAGE_COLUMN_SET_H_
#define PS3_STORAGE_COLUMN_SET_H_

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace ps3::storage {

class ColumnSet {
 public:
  /// Every column (the no-pruning default; Contains is true for any
  /// index, so it is valid for any arity).
  static ColumnSet All() {
    ColumnSet s;
    s.all_ = true;
    return s;
  }

  /// Exactly the given columns (sorted, deduplicated). An empty vector
  /// means "no columns".
  static ColumnSet Of(std::vector<size_t> cols) {
    ColumnSet s;
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    s.cols_ = std::move(cols);
    return s;
  }

  bool is_all() const { return all_; }

  bool Contains(size_t col) const {
    return all_ || std::binary_search(cols_.begin(), cols_.end(), col);
  }

  /// Sorted member columns; only meaningful when !is_all().
  const std::vector<size_t>& columns() const { return cols_; }

  /// Concrete ascending index list for a table of `num_columns` columns:
  /// every index for All(), otherwise the members below `num_columns`.
  std::vector<size_t> Resolve(size_t num_columns) const {
    if (all_) {
      std::vector<size_t> out(num_columns);
      std::iota(out.begin(), out.end(), 0);
      return out;
    }
    std::vector<size_t> out;
    out.reserve(cols_.size());
    for (size_t c : cols_) {
      if (c < num_columns) out.push_back(c);
    }
    return out;
  }

 private:
  bool all_ = false;
  std::vector<size_t> cols_;  ///< sorted, unique; empty when all_
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_COLUMN_SET_H_
