// PickedSource: a picker's partition subset presented to the evaluator
// as a PartitionSource view over an arbitrary base source (paper §4 —
// partition pruning on the serving path).
//
// The view keeps the base's schema, global partition numbering, and
// shard *structure*, but filters every shard's partition list down to
// the picked set. The evaluator's fan-out therefore only ever acquires
// picked partitions — pruned (partition, column) segments are never
// fetched — and per-partition answers still land in globally-indexed
// slots, so the weighted combine addresses them exactly like an exact
// scan's. Empty shards contribute no scan units.
//
// Prefetch hints follow the pruned plan too: WillScanShard on the view
// forwards to the base's StageHint with the view's *filtered* shard
// lists, so an out-of-core base stages upcoming picked segments only —
// read-ahead budget is never spent on partitions this view pruned.
#ifndef PS3_STORAGE_PICKED_SOURCE_H_
#define PS3_STORAGE_PICKED_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/column_set.h"
#include "storage/partition_source.h"

namespace ps3::storage {

class PickedSource : public PartitionSource {
 public:
  /// Borrows `base`, which must outlive the view and any scan over it.
  /// `picked` holds global partition indices: ascending, unique, all
  /// < base.num_partitions(). Picks outside any base shard are ignored.
  PickedSource(const PartitionSource& base, const std::vector<size_t>& picked)
      : base_(base), shards_(base.num_shards()) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      const std::vector<size_t>& full = base.shard(s);
      // Both lists are ascending: one merge-intersection pass per shard.
      auto it = picked.begin();
      for (size_t p : full) {
        while (it != picked.end() && *it < p) ++it;
        if (it == picked.end()) break;
        if (*it == p) shards_[s].push_back(p);
      }
    }
  }

  const Schema& schema() const override { return base_.schema(); }
  /// The *base* count: global numbering is preserved so per-partition
  /// answers merge by global index (pruned slots simply stay empty).
  size_t num_partitions() const override { return base_.num_partitions(); }
  size_t num_shards() const override { return shards_.size(); }
  const std::vector<size_t>& shard(size_t s) const override {
    return shards_[s];
  }

  Result<PinnedPartition> Acquire(size_t global_index,
                                  const ColumnSet& columns) const override {
    return base_.Acquire(global_index, columns);
  }
  Result<PinnedPartition> Acquire(size_t global_index,
                                  const ColumnSet& columns,
                                  const ScanControl& control) const override {
    return base_.Acquire(global_index, columns, control);
  }
  using PartitionSource::Acquire;

  void WillScanShard(size_t s, const ColumnSet& columns) const override {
    base_.StageHint(shards_, s, columns);
  }
  /// The scan's class/token ride along with the filtered plan, so an
  /// out-of-core base charges this view's read-ahead to the right class
  /// share.
  void WillScanShard(size_t s, const ColumnSet& columns,
                     const ScanControl& control) const override {
    base_.StageHint(shards_, s, columns, control);
  }
  using PartitionSource::WillScanShard;

  uint64_t ColdScanBytes(const std::vector<size_t>& partitions,
                         const ColumnSet& columns) const override {
    return base_.ColdScanBytes(partitions, columns);
  }

  /// Loss is a property of the backing store, not of this view's
  /// filter: forwarded so degraded re-planning sees through stacked
  /// views.
  std::vector<size_t> UnreachablePartitions() const override {
    return base_.UnreachablePartitions();
  }

 private:
  const PartitionSource& base_;
  std::vector<std::vector<size_t>> shards_;  ///< base shards ∩ picked
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_PICKED_SOURCE_H_
