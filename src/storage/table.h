// In-memory columnar table plus the layout/partitioning machinery.
//
// PS3 treats a "partition" as the finest granularity the storage layer
// tracks statistics for; it never re-partitions data (layout agnostic,
// §2.1). Here a PartitionedTable is a Table plus contiguous row ranges.
// Layouts are produced by sorting or shuffling the table *before*
// partitioning, mirroring the paper's "sorted by column X" setups.
#ifndef PS3_STORAGE_TABLE_H_
#define PS3_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/partition.h"
#include "storage/schema.h"

namespace ps3::storage {

class Table {
 public:
  explicit Table(Schema schema);

  /// Builds a table directly from materialized columns — the io layer's
  /// rehydration path (a spilled partition becomes a standalone table whose
  /// categorical columns share the store's dictionaries). Column types and
  /// sizes must match the schema.
  static Table FromColumns(Schema schema, std::vector<Column> columns);

  /// Like FromColumns, but for column-pruned rehydration: any column may
  /// be *empty* (a scan that declared it unreferenced never touches it),
  /// and the row count is supplied explicitly since column 0 may be one
  /// of the pruned ones. Non-empty columns must hold exactly `num_rows`.
  static Table FromPrunedColumns(Schema schema, std::vector<Column> columns,
                                 size_t num_rows);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Column by name; error if absent.
  Result<const Column*> GetColumn(const std::string& name) const;

  /// Row-appender used by generators. Values must match schema arity and
  /// types: numeric fields read from `numerics` in column order, categorical
  /// fields from `categoricals` in column order.
  void AppendRow(const std::vector<double>& numerics,
                 const std::vector<std::string>& categoricals);

  /// Marks row-append complete (validates column lengths).
  void Seal();

  /// New table with rows sorted by the given columns (lexicographic on
  /// column list; numeric order for numeric columns, code order for
  /// categoricals). Stable sort, so ties keep ingest order.
  Result<Table> SortedBy(const std::vector<std::string>& sort_cols) const;

  /// New table with rows in uniformly random order.
  Table Shuffled(RandomEngine* rng) const;

 private:
  Table PermuteRows(const std::vector<size_t>& perm) const;

  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// A table cut into `num_partitions` contiguous, near-equal row ranges.
class PartitionedTable {
 public:
  PartitionedTable(std::shared_ptr<const Table> table, size_t num_partitions);

  const Table& table() const { return *table_; }
  const Schema& schema() const { return table_->schema(); }
  size_t num_partitions() const { return bounds_.size(); }

  Partition partition(size_t i) const {
    return Partition(table_.get(), bounds_[i].first, bounds_[i].second);
  }

  /// Rows in partition i.
  size_t partition_rows(size_t i) const {
    return bounds_[i].second - bounds_[i].first;
  }

 private:
  std::shared_ptr<const Table> table_;
  std::vector<std::pair<size_t, size_t>> bounds_;  // [begin, end) per part
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_TABLE_H_
