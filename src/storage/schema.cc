#include "storage/schema.h"

namespace ps3::storage {

Schema::Schema(std::vector<FieldDef> fields) : fields_(std::move(fields)) {}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::GetColumnIndex(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) return Status::NotFound("no column named '" + name + "'");
  return static_cast<size_t>(idx);
}

}  // namespace ps3::storage
