// Columnar storage. A Column is either numeric (vector<double>) or
// categorical (vector<int32_t> codes plus a shared Dictionary mapping
// code -> string). All rows are dense; PS3's query scope has no NULLs.
//
// Value buffers are held by shared_ptr, so copying a Column shares the
// underlying data instead of duplicating it — the io layer's column-
// granular partition cache assembles scan views from cached segments
// with pointer copies, not memcpys. Appends are a build-time operation:
// they must only run while the column still exclusively owns its buffer
// (asserted), after which columns are treated as immutable.
#ifndef PS3_STORAGE_COLUMN_H_
#define PS3_STORAGE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"

namespace ps3::storage {

/// Append-only string dictionary shared by one categorical column.
class Dictionary {
 public:
  /// Code for `value`, inserting it if new.
  int32_t GetOrAdd(const std::string& value);

  /// Code for `value`, or -1 if absent.
  int32_t Find(const std::string& value) const;

  const std::string& ValueOf(int32_t code) const { return values_[code]; }
  size_t size() const { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, int32_t> index_;
};

class Column {
 public:
  /// Creates an empty numeric column.
  static Column MakeNumeric();
  /// Creates an empty categorical column with a fresh dictionary.
  static Column MakeCategorical();
  /// Creates an empty categorical column bound to an existing shared
  /// dictionary. Rehydration path: partitions loaded from a spilled table
  /// share the store's dictionaries, so codes keep their meaning and
  /// dictionary sizes (hence the dense group-id decision) match the
  /// resident table's exactly.
  static Column MakeCategorical(std::shared_ptr<Dictionary> dict);

  ColumnType type() const { return type_; }
  bool is_numeric() const { return type_ == ColumnType::kNumeric; }

  size_t size() const {
    return is_numeric() ? numeric_->size() : codes_->size();
  }

  void AppendNumeric(double v);
  void AppendCategorical(const std::string& v);
  void AppendCode(int32_t code);

  /// Bulk appenders for rehydrating spilled partitions.
  void AppendNumerics(const double* v, size_t n);
  /// Every code must be a valid index into the column's dictionary.
  void AppendCodes(const int32_t* v, size_t n);

  double NumericAt(size_t row) const { return (*numeric_)[row]; }
  int32_t CodeAt(size_t row) const { return (*codes_)[row]; }
  const std::string& StringAt(size_t row) const {
    return dict_->ValueOf((*codes_)[row]);
  }

  const std::vector<double>& numeric_data() const { return *numeric_; }
  const std::vector<int32_t>& codes() const { return *codes_; }

  /// Raw contiguous views for vectorized kernels. `row` must be <= size();
  /// the returned pointer covers rows [row, size()).
  const double* NumericSpan(size_t row = 0) const {
    return numeric_->data() + row;
  }
  const int32_t* CodeSpan(size_t row = 0) const {
    return codes_->data() + row;
  }
  Dictionary* dict() { return dict_.get(); }
  const Dictionary* dict() const { return dict_.get(); }
  /// Shared ownership of the dictionary (null for numeric columns); lets
  /// the io layer hand one dictionary to every rehydrated partition.
  const std::shared_ptr<Dictionary>& dict_ptr() const { return dict_; }

  /// Generic accessor used by sort/permutation logic: numeric value, or the
  /// code as a double for categoricals (codes preserve insertion order, not
  /// lexicographic order; layouts only need a deterministic order).
  double SortKeyAt(size_t row) const {
    return is_numeric() ? (*numeric_)[row]
                        : static_cast<double>((*codes_)[row]);
  }

  /// Returns a column with rows reordered as out[i] = in[perm[i]].
  /// The dictionary is shared with the source column.
  Column Permute(const std::vector<size_t>& perm) const;

 private:
  explicit Column(ColumnType type);

  ColumnType type_;
  /// Never null for their type (a numeric column always has a numeric_
  /// buffer, a categorical always has codes_); shared with every copy of
  /// this column.
  std::shared_ptr<std::vector<double>> numeric_;
  std::shared_ptr<std::vector<int32_t>> codes_;
  std::shared_ptr<Dictionary> dict_;
};

}  // namespace ps3::storage

#endif  // PS3_STORAGE_COLUMN_H_
